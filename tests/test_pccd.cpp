#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "core/miner.hpp"
#include "data/quest_gen.hpp"

namespace smpmine {
namespace {

Database quest_db() {
  QuestParams p;
  p.num_transactions = 300;
  p.avg_transaction_len = 8.0;
  p.avg_pattern_len = 3.0;
  p.num_patterns = 30;
  p.num_items = 50;
  p.seed = 404;
  return generate_quest(p);
}

TEST(Pccd, MatchesBruteForce) {
  const Database db = quest_db();
  MinerOptions opts;
  opts.min_support = 0.03;
  opts.algorithm = Algorithm::PCCD;
  opts.threads = 3;
  const MiningResult got = mine(db, opts);
  const auto reference = brute_force_frequent(db, opts.min_support);
  std::string diag;
  EXPECT_TRUE(levels_equal(got.levels, reference, &diag)) << diag;
}

TEST(Pccd, PerThreadCountersDowngradedToAtomic) {
  // LCA privatization is meaningless for private trees; PCCD must still
  // produce correct results when handed that configuration.
  const Database db = quest_db();
  MinerOptions opts;
  opts.min_support = 0.03;
  opts.algorithm = Algorithm::PCCD;
  opts.threads = 2;
  opts.placement = PlacementPolicy::LcaGpp;
  const MiningResult got = mine(db, opts);
  const auto reference = brute_force_frequent(db, opts.min_support);
  std::string diag;
  EXPECT_TRUE(levels_equal(got.levels, reference, &diag)) << diag;
}

TEST(Pccd, TreeNodesSumOverThreads) {
  const Database db = quest_db();
  MinerOptions one;
  one.min_support = 0.03;
  one.algorithm = Algorithm::PCCD;
  one.threads = 1;
  MinerOptions four = one;
  four.threads = 4;
  const MiningResult r1 = mine(db, one);
  const MiningResult r4 = mine(db, four);
  ASSERT_FALSE(r1.iterations.empty());
  ASSERT_EQ(r1.iterations.size(), r4.iterations.size());
  // Four private trees hold the same candidates split four ways, so total
  // node count grows (each tree has at least a root).
  EXPECT_GE(r4.iterations[0].tree_nodes, r1.iterations[0].tree_nodes);
  EXPECT_EQ(r4.iterations[0].candidates, r1.iterations[0].candidates);
}

TEST(Pccd, DuplicatedScanWorkVisibleInCounters) {
  // PCCD's defining cost: every thread scans the whole database. The summed
  // traversal work must therefore exceed CCPD's at equal thread count.
  const Database db = quest_db();
  MinerOptions ccpd;
  ccpd.min_support = 0.03;
  ccpd.threads = 4;
  MinerOptions pccd = ccpd;
  pccd.algorithm = Algorithm::PCCD;
  const MiningResult rc = mine(db, ccpd);
  const MiningResult rp = mine(db, pccd);
  EXPECT_GT(rp.traversal_work(), rc.traversal_work());
}

TEST(Pccd, GppPlacementStillCorrect) {
  const Database db = quest_db();
  MinerOptions opts;
  opts.min_support = 0.03;
  opts.algorithm = Algorithm::PCCD;
  opts.threads = 2;
  opts.placement = PlacementPolicy::GPP;
  const MiningResult got = mine(db, opts);
  const auto reference = brute_force_frequent(db, opts.min_support);
  std::string diag;
  EXPECT_TRUE(levels_equal(got.levels, reference, &diag)) << diag;
}

}  // namespace
}  // namespace smpmine
