// Phase-epoch validator tests (SMPMINE_CHECKED builds).
//
// The death tests drive real epoch-guarded structures — a FrozenTree and a
// PlacementArenas — through the production phase machinery (the flight
// recorder's PhaseScope, which forwards enter/exit to the epoch stack in
// checked builds) and expect the validator to abort printing BOTH phase
// names: the violating phase and the declared write-phase set. In
// non-checked builds the hooks are ((void)0) and everything here skips
// (tests/negative/phase_epoch_off_noop.cpp pins that expansion).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "data/database.hpp"
#include "hashtree/frozen_tree.hpp"
#include "hashtree/hash_tree.hpp"
#include "itemset/itemset.hpp"
#include "obs/flight/flight_recorder.hpp"
#include "util/phase_epoch.hpp"

namespace smpmine {
namespace {

class PhaseEpochTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!SMPMINE_CHECKED_ENABLED) {
      GTEST_SKIP() << "SMPMINE_CHECKED is off; epoch hooks compile to no-ops";
    }
    phaseepoch::reset_for_test();
  }

  // Reset on the way out too: when the suite runs under
  // SMPMINE_PHASE_EPOCH_DUMP, this binary's exit-time dump must not leak
  // fixture writes into the production phase-effects merge.
  void TearDown() override {
    if (SMPMINE_CHECKED_ENABLED) phaseepoch::reset_for_test();
  }
};

using PhaseEpochDeathTest = PhaseEpochTest;

Database small_db() {
  Database db;
  for (int t = 0; t < 12; ++t) {
    std::vector<item_t> txn;
    for (item_t i = 0; i < 4; ++i) {
      txn.push_back(static_cast<item_t>((t + i) % 8));
    }
    db.add_transaction(txn);
  }
  return db;
}

/// k=2 tree over all pairs of an 8-item universe; freeze runs inside a
/// production "freeze" phase scope so the epoch stamps are the real ones.
struct FrozenFixture {
  explicit FrozenFixture(CounterMode mode)
      : arenas(PlacementPolicy::SPP),
        policy(HashScheme::Interleaved, 2),
        tree({.k = 2, .fanout = 2, .leaf_threshold = 2, .counter_mode = mode},
             policy, arenas),
        frozen([this] {
          std::vector<item_t> base(8);
          for (item_t i = 0; i < 8; ++i) base[i] = i;
          for (const auto& pair : k_subsets(base, 2)) tree.insert(pair);
          obs::flight::PhaseScope freeze_scope("freeze", 2);
          return FrozenTree(tree, arenas);
        }()) {}
  PlacementArenas arenas;
  HashPolicy policy;
  HashTree tree;
  FrozenTree frozen;
};

TEST_F(PhaseEpochTest, EnterExitMaintainsCurrentPhase) {
  EXPECT_STREQ(phaseepoch::current(), "");
  {
    obs::flight::PhaseScope outer("count", 2);
    EXPECT_STREQ(phaseepoch::current(), "count");
    {
      obs::flight::PhaseScope inner("reduce", 2);
      EXPECT_STREQ(phaseepoch::current(), "reduce");
    }
    EXPECT_STREQ(phaseepoch::current(), "count");
  }
  EXPECT_STREQ(phaseepoch::current(), "");
}

TEST_F(PhaseEpochTest, EndIsIdempotentOnTheEpochStack) {
  obs::flight::PhaseScope scope("count", 2);
  scope.end();
  EXPECT_STREQ(phaseepoch::current(), "");
  scope.end();  // second end must not pop someone else's phase
  EXPECT_STREQ(phaseepoch::current(), "");
}

TEST_F(PhaseEpochTest, DeclaredWritePhasePasses) {
  const Database db = small_db();
  FrozenFixture fx(CounterMode::Atomic);  // freeze write already passed
  FlatCountContext ctx;
  fx.frozen.prepare_context(ctx);
  {
    obs::flight::PhaseScope count_scope("count", 2);
    fx.frozen.count_range(db, 0, db.size(), ctx);
  }
  EXPECT_GE(phaseepoch::observed_count(), 2u);  // freeze + count writes
}

TEST_F(PhaseEpochTest, OutsideAnyPhaseIsUnconstrained) {
  const Database db = small_db();
  FrozenFixture fx(CounterMode::Atomic);
  FlatCountContext ctx;
  fx.frozen.prepare_context(ctx);
  fx.frozen.count_range(db, 0, db.size(), ctx);  // no phase: must pass
}

TEST_F(PhaseEpochDeathTest, WriteOutsideDeclaredPhaseAbortsWithBothNames) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Database db = small_db();
  FrozenFixture fx(CounterMode::Atomic);
  FlatCountContext ctx;
  fx.frozen.prepare_context(ctx);
  // The violating phase AND the declared write-phase set must both be in
  // the abort message.
  EXPECT_DEATH(
      {
        obs::flight::PhaseScope select_scope("select", 2);
        fx.frozen.count_range(db, 0, db.size(), ctx);
      },
      "'FrozenTree::counts_' written in phase 'select'.*'count'");
}

TEST_F(PhaseEpochDeathTest, ArenaResetOutsideItsPhasesAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  PlacementArenas arenas(PlacementPolicy::SPP);
  EXPECT_DEATH(
      {
        obs::flight::PhaseScope count_scope("count", 3);
        arenas.reset();
      },
      "'PlacementArenas' written in phase 'count'.*'candgen'");
}

TEST_F(PhaseEpochDeathTest, UnbalancedExitAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(phaseepoch::exit("count"), "empty phase stack");
}

TEST_F(PhaseEpochTest, DumpWritesObservedEffects) {
  FrozenFixture fx(CounterMode::Atomic);  // freeze write recorded above
  std::string path = ::testing::TempDir() + "phase_epoch_dump.json";
  ASSERT_TRUE(phaseepoch::dump(path.c_str()));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("smpmine.phase_effects.runtime.v1"), std::string::npos);
  EXPECT_NE(json.find("\"structure\": \"FrozenTree::structure\""),
            std::string::npos);
  EXPECT_NE(json.find("\"phase\": \"freeze\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace smpmine
