// Crash-time flight dumps, end to end: a SIGSEGV inside the parallel count
// phase must leave a parseable smpmine.flight.v1 report naming the crashing
// thread's active phase and (checked builds) its held-lock stack.
//
// Death-test style is "threadsafe" throughout: the children spawn pool
// threads, and the style re-executes the binary so each child's statement
// runs in a process whose static init saw the env vars the parent set —
// exactly how the production SMPMINE_FLIGHT_DUMP / SMPMINE_FLIGHT_FAULT
// hooks are used from CI.
#include <gtest/gtest.h>
#include <signal.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/miner.hpp"
#include "data/quest_gen.hpp"
#include "obs/flight/flight_recorder.hpp"
#include "parallel/lock_order.hpp"
#include "parallel/spinlock.hpp"
#include "parallel/thread_pool.hpp"

namespace smpmine {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Restores (or clears) an env var on scope exit so a death test cannot
/// leak its hooks into later tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* prev = std::getenv(name);
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_prev_) {
      ::setenv(name_, prev_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_prev_ = false;
  std::string prev_;
};

Database small_db() {
  QuestParams p;
  p.num_transactions = 400;
  p.avg_transaction_len = 8.0;
  p.avg_pattern_len = 3.0;
  p.num_patterns = 40;
  p.num_items = 60;
  p.seed = 7;
  return generate_quest(p);
}

TEST(FlightCrashDeathTest, SegvHoldingNamedLockDumpsPhaseAndLockStack) {
  if (!SMPMINE_CHECKED_ENABLED) {
    GTEST_SKIP() << "held-lock mirror needs the checked lock hooks";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path =
      ::testing::TempDir() + "flight_crash_lock.dump";

  // Worker 1 of a real pool crashes mid-"count" while holding a named
  // SpinLock — the shape of a genuine counting-kernel fault.
  auto crash = [&path] {
    obs::flight::set_dump_path(path.c_str());
    obs::flight::install_crash_handler();
    ThreadPool pool(2);
    pool.run_spmd([](std::uint32_t tid) {
      if (tid != 1) return;
      SMPMINE_FLIGHT_PHASE("count", 2);
      static SpinLock lock;
      SMPMINE_LOCK_NAME(&lock, "CrashFixture::lock");
      lock.lock();
      volatile int* p = nullptr;
      *p = 1;  // SIGSEGV with the lock held, inside the phase
    });
  };
  EXPECT_EXIT(crash(), ::testing::KilledBySignal(SIGSEGV), "");

  const std::string text = read_file(path);
  ASSERT_FALSE(text.empty()) << "crash handler wrote no dump to " << path;
  EXPECT_EQ(text.rfind("smpmine.flight.v1\n", 0), 0u);
  EXPECT_NE(text.find("\nreason \"signal SIGSEGV\"\n"), std::string::npos);
  EXPECT_NE(text.find("\nend smpmine.flight.v1\n"), std::string::npos)
      << "dump truncated:\n" << text;

  // The crashing thread is the one marked as the dumper; its block carries
  // the active phase and the symbolized held lock.
  const std::size_t dumper = text.find(" dumper 1\n");
  ASSERT_NE(dumper, std::string::npos) << text;
  const std::string block =
      text.substr(dumper, text.find("\nend thread ", dumper) - dumper);
  EXPECT_NE(block.find("\nphase \"count\" arg 2\n"), std::string::npos)
      << block;
  EXPECT_NE(block.find(" \"SpinLock\" \"CrashFixture::lock\"\n"),
            std::string::npos)
      << block;
}

TEST(FlightCrashDeathTest, EnvFaultInjectionCrashesInsideMinerCountPhase) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path =
      ::testing::TempDir() + "flight_crash_env.dump";

  // Pure env-var plumbing, no explicit flight calls: the re-executed child
  // opens the dump fd and installs handlers at static init, caches the
  // fault phase, and mine_ccpd's count workers hit maybe_inject_fault.
  ScopedEnv dump_env("SMPMINE_FLIGHT_DUMP", path);
  ScopedEnv fault_env("SMPMINE_FLIGHT_FAULT", "count");
  auto mine_and_crash = [] {
    MinerOptions opts;
    opts.min_support = 0.03;
    opts.threads = 2;
    (void)mine_ccpd(small_db(), opts);
  };
  EXPECT_EXIT(mine_and_crash(), ::testing::KilledBySignal(SIGSEGV), "");

  const std::string text = read_file(path);
  ASSERT_FALSE(text.empty()) << "env-installed handler wrote nothing";
  EXPECT_NE(text.find("\nreason \"signal SIGSEGV\"\n"), std::string::npos);
  const std::size_t dumper = text.find(" dumper 1\n");
  ASSERT_NE(dumper, std::string::npos) << text;
  const std::string block =
      text.substr(dumper, text.find("\nend thread ", dumper) - dumper);
  EXPECT_NE(block.find("\nphase \"count\" arg 2\n"), std::string::npos)
      << block;
  // The injection site marks itself before faulting.
  EXPECT_NE(block.find("mark \"fault.inject\""), std::string::npos) << block;
  EXPECT_NE(text.find("\nend smpmine.flight.v1\n"), std::string::npos);
}

}  // namespace
}  // namespace smpmine
