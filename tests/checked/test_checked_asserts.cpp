// SMPMINE_ASSERT death tests: checked builds must turn invariant breaches
// into immediate aborts with a sourced message, and must stay silent on
// valid inputs. Skipped when SMPMINE_CHECKED is off.
#include <gtest/gtest.h>

#include <vector>

#include "data/database.hpp"
#include "hashtree/hash_tree.hpp"
#include "util/checked.hpp"

namespace smpmine {
namespace {

class CheckedAssertTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!checked::kCheckedBuild) {
      GTEST_SKIP() << "SMPMINE_CHECKED is off; asserts compile to no-ops";
    }
  }
};

TEST_F(CheckedAssertTest, DatabaseInRangeAccessIsQuiet) {
  Database db;
  const std::vector<item_t> txn{1, 2, 3};
  db.add_transaction(txn);
  EXPECT_EQ(db.transaction(0).size(), 3u);
  EXPECT_EQ(db.transaction_size(0), 3u);
}

// Death bodies live in lambdas: EXPECT_DEATH is a preprocessor macro, and
// commas in brace initializers like `{1, 2, 3}` would split its arguments.
TEST_F(CheckedAssertTest, DatabaseOutOfRangeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto out_of_range = [] {
    Database db;
    const std::vector<item_t> txn{1, 2, 3};
    db.add_transaction(txn);
    (void)db.transaction(1);
  };
  EXPECT_DEATH(out_of_range(), "transaction index out of range");
}

TEST_F(CheckedAssertTest, UnsortedCandidateInsertAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto unsorted_insert = [] {
    PlacementArenas arenas(PlacementPolicy::SPP);
    const HashPolicy policy(HashScheme::Interleaved, 4);
    HashTree tree({.k = 2, .fanout = 4, .leaf_threshold = 2}, policy, arenas);
    const std::vector<item_t> unsorted{7, 3};
    tree.insert(unsorted);
  };
  EXPECT_DEATH(unsorted_insert(), "must be sorted");
}

TEST_F(CheckedAssertTest, AssertMessageNamesTheSite) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The failure report carries the expression, file:line, and message —
  // the contract DESIGN.md documents for SMPMINE_ASSERT.
  auto empty_db_size = [] {
    Database db;
    (void)db.transaction_size(0);
  };
  EXPECT_DEATH(empty_db_size(),
               "smpmine-checked: assertion failed.*database\\.hpp");
}

}  // namespace
}  // namespace smpmine
