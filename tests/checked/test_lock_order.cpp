// Lock-order recorder tests (SMPMINE_CHECKED builds).
//
// The death tests drive deliberately inverted acquisitions through the real
// SpinLock/Mutex wrappers — the same instrumentation path production code
// takes — and expect the recorder to abort with both lock chains printed.
// In non-checked builds the hooks are ((void)0) and everything here skips.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "parallel/lock_order.hpp"
#include "parallel/mutex.hpp"
#include "parallel/spinlock.hpp"

namespace smpmine {
namespace {

class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!SMPMINE_CHECKED_ENABLED) {
      GTEST_SKIP() << "SMPMINE_CHECKED is off; lock hooks compile to no-ops";
    }
    lockorder::reset_for_test();
  }

  // Also reset on the way out: when the whole suite runs under
  // SMPMINE_LOCK_ORDER_DUMP, this binary's exit-time dump must not leak
  // fixture edges into the production lock-order merge.
  void TearDown() override {
    if (SMPMINE_CHECKED_ENABLED) lockorder::reset_for_test();
  }
};

using LockOrderDeathTest = LockOrderTest;

TEST_F(LockOrderTest, AcquireReleaseTracksHeldStack) {
  SpinLock a;
  Mutex b;
  EXPECT_EQ(lockorder::held_count(), 0u);
  a.lock();
  EXPECT_EQ(lockorder::held_count(), 1u);
  b.lock();
  EXPECT_EQ(lockorder::held_count(), 2u);
  b.unlock();
  a.unlock();
  EXPECT_EQ(lockorder::held_count(), 0u);
}

TEST_F(LockOrderTest, NestedAcquisitionRecordsOneEdge) {
  SpinLock a, b;
  a.lock();
  b.lock();  // edge &a -> &b
  b.unlock();
  a.unlock();
  EXPECT_EQ(lockorder::edge_count(), 1u);
  // The same nesting again must not add edges (thread-local fast path).
  a.lock();
  b.lock();
  b.unlock();
  a.unlock();
  EXPECT_EQ(lockorder::edge_count(), 1u);
}

TEST_F(LockOrderTest, TryLockPushesButAddsNoEdge) {
  SpinLock a, b;
  a.lock();
  ASSERT_TRUE(b.try_lock());  // held, but try: no ordering edge
  EXPECT_EQ(lockorder::held_count(), 2u);
  b.unlock();
  a.unlock();
  EXPECT_EQ(lockorder::edge_count(), 0u);
}

TEST_F(LockOrderTest, ConsistentOrderAcrossManyLocksIsQuiet) {
  SpinLock locks[4];
  for (int round = 0; round < 3; ++round) {
    for (auto& l : locks) l.lock();
    for (auto& l : locks) l.unlock();
  }
  EXPECT_EQ(lockorder::held_count(), 0u);
  EXPECT_EQ(lockorder::edge_count(), 3u);  // chain 0->1->2->3
}

// Death bodies live in lambdas: EXPECT_DEATH is a preprocessor macro, so a
// bare `SpinLock a, b;` inside its statement argument would split the
// argument list at the comma.
TEST_F(LockOrderDeathTest, AbbaInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto abba = [] {
    lockorder::reset_for_test();
    SpinLock a;
    SpinLock b;
    a.lock();  // order 1: A then B
    b.lock();
    b.unlock();
    a.unlock();
    b.lock();  // order 2: B then A — cycle
    a.lock();
  };
  EXPECT_DEATH(abba(), "lock-order cycle");
}

TEST_F(LockOrderDeathTest, AbbaAcrossLockKindsAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto mixed = [] {
    lockorder::reset_for_test();
    Mutex m;
    SpinLock s;
    m.lock();
    s.lock();
    s.unlock();
    m.unlock();
    s.lock();
    m.lock();
  };
  EXPECT_DEATH(mixed(), "lock-order cycle");
}

TEST_F(LockOrderDeathTest, TransitiveCycleAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A->B and B->C recorded; C->A closes a length-3 cycle no pairwise
  // check would see.
  auto transitive = [] {
    lockorder::reset_for_test();
    SpinLock a;
    SpinLock b;
    SpinLock c;
    a.lock();
    b.lock();
    b.unlock();
    a.unlock();
    b.lock();
    c.lock();
    c.unlock();
    b.unlock();
    c.lock();
    a.lock();
  };
  EXPECT_DEATH(transitive(), "lock-order cycle");
}

TEST_F(LockOrderTest, DumpWritesNamedEdgeGraph) {
  SpinLock a;
  Mutex b;
  lockorder::set_name(&a, "Fixture::a");
  lockorder::set_name(&b, "Fixture::b");
  a.lock();
  b.lock();  // edge Fixture::a -> Fixture::b
  b.unlock();
  a.unlock();

  const std::string path =
      ::testing::TempDir() + "lock_order_dump_test.json";
  ASSERT_TRUE(lockorder::dump(path.c_str()));

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"schema\": \"smpmine.lock_order.runtime.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("{\"from\": \"Fixture::a\", \"to\": \"Fixture::b\", "
                      "\"count\": 1}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"Fixture::a\", \"kind\": \"SpinLock\"}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"Fixture::b\", \"kind\": \"Mutex\"}"),
            std::string::npos);
}

TEST_F(LockOrderTest, DumpFallsBackToKindForUnnamedLocks) {
  SpinLock a;
  Mutex b;
  a.lock();
  b.lock();  // edge SpinLock -> Mutex at name level (both unnamed)
  b.unlock();
  a.unlock();

  const std::string path =
      ::testing::TempDir() + "lock_order_dump_unnamed.json";
  ASSERT_TRUE(lockorder::dump(path.c_str()));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find(
                "{\"from\": \"SpinLock\", \"to\": \"Mutex\", \"count\": 1}"),
            std::string::npos);
}

TEST_F(LockOrderTest, DumpIntoDirectoryWritesPerPidFile) {
  SpinLock a;
  SpinLock b;
  a.lock();
  b.lock();
  b.unlock();
  a.unlock();

  // Trailing '/' marks a directory target: the dump appends
  // lock_order.<pid>.json so parallel test processes never collide.
  ASSERT_TRUE(lockorder::dump(::testing::TempDir().c_str()));
  const std::string expected = ::testing::TempDir() + "lock_order." +
                               std::to_string(::getpid()) + ".json";
  std::ifstream in(expected);
  EXPECT_TRUE(in.is_open()) << "expected per-pid dump at " << expected;
}

TEST_F(LockOrderDeathTest, ExitDumpViaEnvVarContainsRecordedEdges) {
  // Regression: the graph must outlive static destruction. It is built on
  // the first acquisition — after the static-init-time atexit registration —
  // so a destructible singleton would be torn down before the exit-time
  // dump reads it and SMPMINE_LOCK_ORDER_DUMP files would all come out
  // empty. The threadsafe death-test style re-executes the whole binary,
  // so the child's static init sees the env var and the dump goes through
  // the production atexit path, not an explicit dump() call.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path =
      ::testing::TempDir() + "lock_order_exit_dump.json";
  const char* prev = std::getenv("SMPMINE_LOCK_ORDER_DUMP");
  const std::string saved = prev != nullptr ? prev : "";
  ASSERT_EQ(::setenv("SMPMINE_LOCK_ORDER_DUMP", path.c_str(), 1), 0);
  auto nest_and_exit = [] {
    static SpinLock a, b;
    lockorder::set_name(&a, "ExitFixture::a");
    lockorder::set_name(&b, "ExitFixture::b");
    a.lock();
    b.lock();  // edge ExitFixture::a -> ExitFixture::b
    b.unlock();
    a.unlock();
    std::exit(0);  // the atexit-registered dump must see the edge
  };
  EXPECT_EXIT(nest_and_exit(), ::testing::ExitedWithCode(0), "");
  if (prev != nullptr) {
    ::setenv("SMPMINE_LOCK_ORDER_DUMP", saved.c_str(), 1);
  } else {
    ::unsetenv("SMPMINE_LOCK_ORDER_DUMP");
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "expected exit-time dump at " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("{\"from\": \"ExitFixture::a\", "
                           "\"to\": \"ExitFixture::b\", \"count\": 1}"),
            std::string::npos)
      << "exit-time dump lost the recorded edge:\n"
      << buf.str();
}

TEST_F(LockOrderDeathTest, SelfReacquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto reacquire = [] {
    lockorder::reset_for_test();
    Mutex m;
    m.lock();
    // Directly reporting the second acquisition avoids blocking forever
    // in std::mutex before the recorder can object.
    lockorder::on_acquire(&m, "Mutex", false);
  };
  EXPECT_DEATH(reacquire(), "self-deadlock");
}

}  // namespace
}  // namespace smpmine
