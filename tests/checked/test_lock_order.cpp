// Lock-order recorder tests (SMPMINE_CHECKED builds).
//
// The death tests drive deliberately inverted acquisitions through the real
// SpinLock/Mutex wrappers — the same instrumentation path production code
// takes — and expect the recorder to abort with both lock chains printed.
// In non-checked builds the hooks are ((void)0) and everything here skips.
#include <gtest/gtest.h>

#include "parallel/lock_order.hpp"
#include "parallel/mutex.hpp"
#include "parallel/spinlock.hpp"

namespace smpmine {
namespace {

class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!SMPMINE_CHECKED_ENABLED) {
      GTEST_SKIP() << "SMPMINE_CHECKED is off; lock hooks compile to no-ops";
    }
    lockorder::reset_for_test();
  }
};

using LockOrderDeathTest = LockOrderTest;

TEST_F(LockOrderTest, AcquireReleaseTracksHeldStack) {
  SpinLock a;
  Mutex b;
  EXPECT_EQ(lockorder::held_count(), 0u);
  a.lock();
  EXPECT_EQ(lockorder::held_count(), 1u);
  b.lock();
  EXPECT_EQ(lockorder::held_count(), 2u);
  b.unlock();
  a.unlock();
  EXPECT_EQ(lockorder::held_count(), 0u);
}

TEST_F(LockOrderTest, NestedAcquisitionRecordsOneEdge) {
  SpinLock a, b;
  a.lock();
  b.lock();  // edge &a -> &b
  b.unlock();
  a.unlock();
  EXPECT_EQ(lockorder::edge_count(), 1u);
  // The same nesting again must not add edges (thread-local fast path).
  a.lock();
  b.lock();
  b.unlock();
  a.unlock();
  EXPECT_EQ(lockorder::edge_count(), 1u);
}

TEST_F(LockOrderTest, TryLockPushesButAddsNoEdge) {
  SpinLock a, b;
  a.lock();
  ASSERT_TRUE(b.try_lock());  // held, but try: no ordering edge
  EXPECT_EQ(lockorder::held_count(), 2u);
  b.unlock();
  a.unlock();
  EXPECT_EQ(lockorder::edge_count(), 0u);
}

TEST_F(LockOrderTest, ConsistentOrderAcrossManyLocksIsQuiet) {
  SpinLock locks[4];
  for (int round = 0; round < 3; ++round) {
    for (auto& l : locks) l.lock();
    for (auto& l : locks) l.unlock();
  }
  EXPECT_EQ(lockorder::held_count(), 0u);
  EXPECT_EQ(lockorder::edge_count(), 3u);  // chain 0->1->2->3
}

// Death bodies live in lambdas: EXPECT_DEATH is a preprocessor macro, so a
// bare `SpinLock a, b;` inside its statement argument would split the
// argument list at the comma.
TEST_F(LockOrderDeathTest, AbbaInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto abba = [] {
    lockorder::reset_for_test();
    SpinLock a;
    SpinLock b;
    a.lock();  // order 1: A then B
    b.lock();
    b.unlock();
    a.unlock();
    b.lock();  // order 2: B then A — cycle
    a.lock();
  };
  EXPECT_DEATH(abba(), "lock-order cycle");
}

TEST_F(LockOrderDeathTest, AbbaAcrossLockKindsAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto mixed = [] {
    lockorder::reset_for_test();
    Mutex m;
    SpinLock s;
    m.lock();
    s.lock();
    s.unlock();
    m.unlock();
    s.lock();
    m.lock();
  };
  EXPECT_DEATH(mixed(), "lock-order cycle");
}

TEST_F(LockOrderDeathTest, TransitiveCycleAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A->B and B->C recorded; C->A closes a length-3 cycle no pairwise
  // check would see.
  auto transitive = [] {
    lockorder::reset_for_test();
    SpinLock a;
    SpinLock b;
    SpinLock c;
    a.lock();
    b.lock();
    b.unlock();
    a.unlock();
    b.lock();
    c.lock();
    c.unlock();
    b.unlock();
    c.lock();
    a.lock();
  };
  EXPECT_DEATH(transitive(), "lock-order cycle");
}

TEST_F(LockOrderDeathTest, SelfReacquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto reacquire = [] {
    lockorder::reset_for_test();
    Mutex m;
    m.lock();
    // Directly reporting the second acquisition avoids blocking forever
    // in std::mutex before the recorder can object.
    lockorder::on_acquire(&m, "Mutex", false);
  };
  EXPECT_DEATH(reacquire(), "self-deadlock");
}

}  // namespace
}  // namespace smpmine
