// Stall-watchdog death tests: a wedged barrier (one party never arrives)
// goes silent after its first "barrier.wait" flight event, the watchdog
// notices the quiet window, dumps a smpmine.flight.v1 report, and — with an
// exit code configured, as CI death tests do — ends the process cleanly
// instead of hanging until the ctest timeout.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/flight/flight_recorder.hpp"
#include "parallel/barrier.hpp"

namespace smpmine {
namespace {

constexpr int kWatchdogExitCode = 86;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void expect_stall_dump(const std::string& text) {
  ASSERT_FALSE(text.empty()) << "watchdog wrote no dump";
  EXPECT_EQ(text.rfind("smpmine.flight.v1\n", 0), 0u);
  EXPECT_NE(text.find("\nreason \"stall\"\n"), std::string::npos);
  EXPECT_NE(text.find("\nend smpmine.flight.v1\n"), std::string::npos)
      << "dump truncated:\n" << text;
  // The wedged thread's last event is its (single) barrier-wait marker.
  EXPECT_NE(text.find("barrier_wait \"barrier.wait\""), std::string::npos)
      << text;
}

TEST(FlightWatchdogDeathTest, WedgedBarrierDumpsStallReportAndExits) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path =
      ::testing::TempDir() + "flight_watchdog_api.dump";

  auto wedge = [&path] {
    obs::flight::set_dump_path(path.c_str());
    obs::flight::set_current_thread_name("wedged main");
    obs::flight::start_watchdog(/*window_ms=*/100, kWatchdogExitCode);
    Barrier barrier(2);
    barrier.arrive_and_wait();  // the second party never arrives
  };
  EXPECT_EXIT(wedge(), ::testing::ExitedWithCode(kWatchdogExitCode), "");
  expect_stall_dump(read_file(path));
}

TEST(FlightWatchdogDeathTest, EnvConfiguredWatchdogCatchesTheSameStall) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path =
      ::testing::TempDir() + "flight_watchdog_env.dump";

  // Production shape: no code changes, just the env hooks read at static
  // init by the re-executed death-test child.
  ASSERT_EQ(::setenv("SMPMINE_FLIGHT_DUMP", path.c_str(), 1), 0);
  ASSERT_EQ(::setenv("SMPMINE_FLIGHT_WATCHDOG_MS", "100", 1), 0);
  ASSERT_EQ(::setenv("SMPMINE_FLIGHT_WATCHDOG_EXIT", "86", 1), 0);
  auto wedge = [] {
    Barrier barrier(3);
    barrier.arrive_and_wait();  // two parties short: wedged immediately
  };
  EXPECT_EXIT(wedge(), ::testing::ExitedWithCode(kWatchdogExitCode), "");
  ::unsetenv("SMPMINE_FLIGHT_DUMP");
  ::unsetenv("SMPMINE_FLIGHT_WATCHDOG_MS");
  ::unsetenv("SMPMINE_FLIGHT_WATCHDOG_EXIT");
  expect_stall_dump(read_file(path));
}

}  // namespace
}  // namespace smpmine
