#include "core/results_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/brute_force.hpp"
#include "core/miner.hpp"
#include "data/quest_gen.hpp"

namespace smpmine {
namespace {

MiningResult mined() {
  QuestParams p;
  p.num_transactions = 300;
  p.avg_transaction_len = 6.0;
  p.avg_pattern_len = 3.0;
  p.num_patterns = 20;
  p.num_items = 40;
  p.seed = 606;
  MinerOptions opts;
  opts.min_support = 0.04;
  return mine_sequential(generate_quest(p), opts);
}

TEST(ResultsIo, FrequentItemsetsRoundTrip) {
  const MiningResult result = mined();
  std::ostringstream os;
  save_frequent_itemsets(result.levels, os);
  std::istringstream is(os.str());
  const auto loaded = load_frequent_itemsets(is);
  std::string diag;
  EXPECT_TRUE(levels_equal(result.levels, loaded, &diag)) << diag;
}

TEST(ResultsIo, TextFormatShape) {
  std::vector<FrequentSet> levels;
  levels.emplace_back(1, std::vector<item_t>{3, 9}, std::vector<count_t>{7, 5});
  levels.emplace_back(2, std::vector<item_t>{3, 9}, std::vector<count_t>{4});
  std::ostringstream os;
  save_frequent_itemsets(levels, os);
  EXPECT_EQ(os.str(), "3 7\n9 5\n3 9 4\n");
}

TEST(ResultsIo, LoadRejectsMalformed) {
  std::istringstream bad_token("1 2 x\n");
  EXPECT_THROW(load_frequent_itemsets(bad_token), std::runtime_error);
  std::istringstream single_field("42\n");
  EXPECT_THROW(load_frequent_itemsets(single_field), std::runtime_error);
  std::istringstream unsorted("2 1 5\n");
  EXPECT_THROW(load_frequent_itemsets(unsorted), std::runtime_error);
  std::istringstream duplicate("1 1 5\n");
  EXPECT_THROW(load_frequent_itemsets(duplicate), std::runtime_error);
  // Level 2 present without level 1.
  std::istringstream gap("1 2 5\n");
  EXPECT_THROW(load_frequent_itemsets(gap), std::runtime_error);
}

TEST(ResultsIo, EmptyRoundTrip) {
  std::istringstream is("");
  EXPECT_TRUE(load_frequent_itemsets(is).empty());
}

TEST(ResultsIo, LoadToleratesArbitraryOrder) {
  // Records shuffled across levels and within a level still load sorted.
  std::istringstream is("3 9 4\n9 5\n3 7\n");
  const auto levels = load_frequent_itemsets(is);
  ASSERT_EQ(levels.size(), 2u);
  EXPECT_EQ(levels[0].itemset(0)[0], 3u);
  EXPECT_EQ(levels[0].itemset(1)[0], 9u);
  EXPECT_EQ(levels[1].count(0), 4u);
}

TEST(ResultsIo, RulesCsv) {
  const MiningResult result = mined();
  const auto rules = generate_rules(result, 0.6, 300);
  std::ostringstream os;
  save_rules_csv(rules, os);
  const std::string csv = os.str();
  // Header plus one line per rule.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            rules.size() + 1);
  EXPECT_EQ(csv.rfind("antecedent,consequent,support,confidence,lift,"
                      "support_count\n", 0),
            0u);
  // Every data line has exactly 5 commas.
  std::istringstream lines(csv);
  std::string line;
  std::getline(lines, line);  // header
  while (std::getline(lines, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 5) << line;
  }
}

TEST(ResultsIo, ReloadedLevelsDriveRuleGeneration) {
  // The use case: mine once, save, reload later for rule generation.
  const MiningResult result = mined();
  std::ostringstream os;
  save_frequent_itemsets(result.levels, os);
  std::istringstream is(os.str());
  MiningResult reloaded;
  reloaded.levels = load_frequent_itemsets(is);
  const auto original_rules = generate_rules(result, 0.7, 300);
  const auto reloaded_rules = generate_rules(reloaded, 0.7, 300);
  ASSERT_EQ(original_rules.size(), reloaded_rules.size());
  for (std::size_t i = 0; i < original_rules.size(); ++i) {
    EXPECT_EQ(original_rules[i].antecedent, reloaded_rules[i].antecedent);
    EXPECT_EQ(original_rules[i].consequent, reloaded_rules[i].consequent);
    EXPECT_DOUBLE_EQ(original_rules[i].confidence,
                     reloaded_rules[i].confidence);
  }
}

}  // namespace
}  // namespace smpmine
