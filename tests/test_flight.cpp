// Flight recorder unit tests: emission accounting, the runtime gate, the
// overwrite-oldest ring, thread naming, phase nesting, the lock mirror, the
// metric snapshot, and the dump format's structural markers. The dump is
// written through the production set_dump_path/write_dump path (raw
// write(2)); assertions are substring checks against the line-oriented
// smpmine.flight.v1 text, mirroring what tools/flight/smpmine_flight.py
// parses. Crash and stall behavior live in tests/checked/.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/flight/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace smpmine::obs::flight {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Truncates `path`, writes a fresh report into it, and returns the text.
std::string dump_to(const std::string& path, const char* reason = "test") {
  EXPECT_TRUE(set_dump_path(path.c_str()));
  EXPECT_TRUE(write_dump(reason));
  return read_file(path);
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(Flight, EmitCountsAndEnableGate) {
  ASSERT_TRUE(enabled()) << "flight recorder must be ON by default";
  const std::uint64_t before = event_count();
  emit(EventKind::Mark, "unit.mark", nullptr, 7);
  EXPECT_EQ(event_count(), before + 1);

  set_enabled(false);
  emit(EventKind::Mark, "unit.dropped");
  EXPECT_EQ(event_count(), before + 1) << "disabled emit must be dropped";
  set_enabled(true);
  EXPECT_EQ(lost_threads(), 0u);
}

TEST(Flight, ThreadNameDefaultsAndRenames) {
  // Before renaming, the thread has a stable auto-assigned "t<idx>" name.
  const char* auto_name = current_thread_name();
  ASSERT_NE(auto_name, nullptr);
  EXPECT_EQ(auto_name[0], 't');

  set_current_thread_name("flight main");
  EXPECT_STREQ(current_thread_name(), "flight main");

  // Truncation to kThreadNameBytes-1 without overflow.
  const std::string big(3 * kThreadNameBytes, 'n');
  set_current_thread_name(big.c_str());
  EXPECT_EQ(std::string(current_thread_name()).size(), kThreadNameBytes - 1);
  set_current_thread_name("flight main");
}

TEST(Flight, DumpHasHeaderBodyAndEndMarkers) {
  set_current_thread_name("flight main");
  emit(EventKind::Mark, "unit.dump.probe", "detail text", 42);
  const std::string text = dump_to(temp_path("flight_markers.dump"));

  EXPECT_EQ(text.rfind("smpmine.flight.v1\n", 0), 0u) << text;
  EXPECT_NE(text.find("\nreason \"test\"\n"), std::string::npos);
  EXPECT_NE(text.find("\npid "), std::string::npos);
  EXPECT_NE(text.find("\nbuild checked="), std::string::npos);
  EXPECT_NE(text.find("name \"flight main\""), std::string::npos);
  EXPECT_NE(text.find("ev "), std::string::npos);
  EXPECT_NE(text.find(" mark \"unit.dump.probe\" \"detail text\" 42"),
            std::string::npos);
  EXPECT_NE(text.find("\nend smpmine.flight.v1\n"), std::string::npos);
  EXPECT_GE(dump_count(), 1u);
}

TEST(Flight, IterationAppearsInDump) {
  iteration(5);
  const std::string text = dump_to(temp_path("flight_iteration.dump"));
  EXPECT_NE(text.find("\niteration 5\n"), std::string::npos) << text;
  iteration(0);
}

TEST(Flight, PhaseScopeNestingRestoresOuterPhase) {
  set_current_thread_name("flight main");
  PhaseScope outer("count", 3);
  {
    PhaseScope inner("candgen", 3);
    const std::string text = dump_to(temp_path("flight_phase_inner.dump"));
    EXPECT_NE(text.find("\nphase \"candgen\" arg 3\n"), std::string::npos);
  }
  const std::string text = dump_to(temp_path("flight_phase_outer.dump"));
  EXPECT_NE(text.find("\nphase \"count\" arg 3\n"), std::string::npos);
  EXPECT_EQ(text.find("\nphase \"candgen\""), std::string::npos)
      << "inner phase must be restored to the outer one on scope exit";
}

TEST(Flight, PhaseEndIsIdempotent) {
  const std::uint64_t before = event_count();
  PhaseScope span("select", 2);
  span.end();
  span.end();  // second end must not re-emit PhaseExit
  EXPECT_EQ(event_count(), before + 2);  // one enter + one exit
}

TEST(Flight, RingOverwritesOldestAndKeepsExitedThreads) {
  // A worker emits well past the ring capacity, then exits; the dump must
  // still show its record, capped at kRingEvents with the oldest overwritten.
  constexpr std::uint64_t kEmitted = kRingEvents + 50;
  std::thread worker([] {
    set_current_thread_name("ring worker");
    for (std::uint64_t i = 0; i < kEmitted; ++i) {
      emit(EventKind::Mark, "ring.mark", nullptr, i);
    }
  });
  worker.join();

  const std::string text = dump_to(temp_path("flight_ring.dump"));
  const std::size_t begin = text.find("name \"ring worker\"");
  ASSERT_NE(begin, std::string::npos);
  const std::size_t end = text.find("\nend thread ", begin);
  ASSERT_NE(end, std::string::npos);
  const std::string block = text.substr(begin, end - begin);

  EXPECT_NE(block.find("\nevents " + std::to_string(kRingEvents) + "\n"),
            std::string::npos);
  // Oldest surviving event is the first one not overwritten.
  EXPECT_EQ(block.find("\"ring.mark\" \"\" 0\n"), std::string::npos);
  EXPECT_NE(block.find("\"ring.mark\" \"\" " + std::to_string(kEmitted - 1)),
            std::string::npos);
  std::size_t ev_lines = 0;
  for (std::size_t pos = block.find("\nev "); pos != std::string::npos;
       pos = block.find("\nev ", pos + 1)) {
    ++ev_lines;
  }
  EXPECT_EQ(ev_lines, kRingEvents);
}

TEST(Flight, HeldLockStackWithSymbolicNames) {
  // Drives the lock mirror directly (the lock_order.cpp hooks forward here
  // in checked builds); the dump must resolve the registered name and drop
  // the entry again on release.
  set_current_thread_name("flight main");
  int lock_a = 0;
  int lock_b = 0;
  register_lock_name(&lock_a, "FlightTest::a");
  lock_acquired(&lock_a, "SpinLock");
  lock_acquired(&lock_b, "Mutex");  // never named: dumped with name ""

  std::string text = dump_to(temp_path("flight_locks_held.dump"));
  std::size_t begin = text.find("name \"flight main\"");
  ASSERT_NE(begin, std::string::npos);
  std::string block = text.substr(begin, text.find("\nend thread ", begin) -
                                             begin);
  EXPECT_NE(block.find("\nheld 2\n"), std::string::npos) << block;
  EXPECT_NE(block.find(" \"SpinLock\" \"FlightTest::a\"\n"),
            std::string::npos);
  EXPECT_NE(block.find(" \"Mutex\" \"\"\n"), std::string::npos);

  // Out-of-order release (a before b) must still empty the stack.
  lock_released(&lock_a);
  lock_released(&lock_b);
  text = dump_to(temp_path("flight_locks_released.dump"));
  begin = text.find("name \"flight main\"");
  ASSERT_NE(begin, std::string::npos);
  block = text.substr(begin, text.find("\nend thread ", begin) - begin);
  EXPECT_NE(block.find("\nheld 0\n"), std::string::npos) << block;
}

TEST(Flight, RegisteredMetricSnapshotsIntoDump) {
  static std::atomic<std::uint64_t> cell{41};
  register_metric("flight.test.cell", &cell, [](const void* obj) {
    return static_cast<const std::atomic<std::uint64_t>*>(obj)->load(
        std::memory_order_relaxed);
  });
  cell.store(42, std::memory_order_relaxed);  // read at dump time, not reg
  const std::string text = dump_to(temp_path("flight_metric.dump"));
  EXPECT_NE(text.find("\nmetric \"flight.test.cell\" 42\n"),
            std::string::npos);
}

TEST(Flight, SyncMetricsForDumpPullsRegistryCounters) {
  MetricsRegistry::instance().counter("flight.sync.probe").inc();
  sync_metrics_for_dump();
  const std::string text = dump_to(temp_path("flight_sync.dump"));
  EXPECT_NE(text.find("\nmetric \"flight.sync.probe\" 1\n"),
            std::string::npos);
}

TEST(Flight, WatchdogDumpsOnceOnStallWithoutKilling) {
  const std::string path = temp_path("flight_watchdog.dump");
  ASSERT_TRUE(set_dump_path(path.c_str()));
  emit(EventKind::Mark, "watchdog.arm");
  const std::uint64_t dumps_before = dump_count();

  start_watchdog(/*window_ms=*/50);  // no exit_code: process survives
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (dump_count() == dumps_before &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop_watchdog();

  ASSERT_GT(dump_count(), dumps_before) << "watchdog never fired";
  const std::string text = read_file(path);
  EXPECT_NE(text.find("\nreason \"stall\"\n"), std::string::npos);
  EXPECT_NE(text.find("\nend smpmine.flight.v1\n"), std::string::npos);
}

}  // namespace
}  // namespace smpmine::obs::flight
