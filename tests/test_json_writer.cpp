// obs::JsonWriter / json_escape / json_valid unit tests. The writer backs
// every JSON artifact the repo emits (Chrome traces, run manifests), so
// these tests pin the exact output bytes, not just validity.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <sstream>

#include "obs/json_writer.hpp"

namespace smpmine::obs {
namespace {

std::string doc(const std::function<void(JsonWriter&)>& build) {
  std::ostringstream os;
  JsonWriter w(os);
  build(w);
  return os.str();
}

TEST(JsonWriter, EmptyObjectAndArray) {
  EXPECT_EQ(doc([](JsonWriter& w) { w.begin_object().end_object(); }), "{}");
  EXPECT_EQ(doc([](JsonWriter& w) { w.begin_array().end_array(); }), "[]");
}

TEST(JsonWriter, ObjectMembersGetCommas) {
  const std::string s = doc([](JsonWriter& w) {
    w.begin_object();
    w.kv("a", 1);
    w.kv("b", "two");
    w.kv("c", true);
    w.end_object();
  });
  EXPECT_EQ(s, R"({"a":1,"b":"two","c":true})");
  EXPECT_TRUE(json_valid(s));
}

TEST(JsonWriter, NestedStructures) {
  const std::string s = doc([](JsonWriter& w) {
    w.begin_object();
    w.key("runs").begin_array();
    w.begin_object().kv("k", 2).end_object();
    w.begin_object().kv("k", 3).end_object();
    w.end_array();
    w.key("empty").begin_array().end_array();
    w.end_object();
  });
  EXPECT_EQ(s, R"({"runs":[{"k":2},{"k":3}],"empty":[]})");
  EXPECT_TRUE(json_valid(s));
}

TEST(JsonWriter, ArrayOfScalars) {
  const std::string s = doc([](JsonWriter& w) {
    w.begin_array();
    w.value(1).value(-2).value("x").null_value().value(false);
    w.end_array();
  });
  EXPECT_EQ(s, R"([1,-2,"x",null,false])");
  EXPECT_TRUE(json_valid(s));
}

TEST(JsonWriter, IntegralWidthsRoute) {
  const std::string s = doc([](JsonWriter& w) {
    w.begin_array();
    w.value(std::uint32_t{7});
    w.value(std::int16_t{-3});
    w.value(std::numeric_limits<std::uint64_t>::max());
    w.end_array();
  });
  EXPECT_EQ(s, "[7,-3,18446744073709551615]");
  EXPECT_TRUE(json_valid(s));
}

TEST(JsonWriter, DoublesRoundTripAndNonFiniteBecomesNull) {
  EXPECT_EQ(doc([](JsonWriter& w) { w.value(0.25); }), "0.25");
  EXPECT_EQ(doc([](JsonWriter& w) { w.value(-1.5e-9); }), "-1.5e-09");
  EXPECT_EQ(doc([](JsonWriter& w) {
    w.value(std::numeric_limits<double>::infinity());
  }), "null");
  EXPECT_EQ(doc([](JsonWriter& w) { w.value(std::nan("")); }), "null");
}

TEST(JsonWriter, KeysAndStringsAreEscaped) {
  const std::string s = doc([](JsonWriter& w) {
    w.begin_object();
    w.kv("a\"b", "tab\there\nline");
    w.end_object();
  });
  EXPECT_EQ(s, "{\"a\\\"b\":\"tab\\there\\nline\"}");
  EXPECT_TRUE(json_valid(s));
}

TEST(JsonEscape, ControlCharactersAndPassThrough) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("\\"), "\\\\");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape("caf\xc3\xa9"), "caf\xc3\xa9");  // UTF-8 untouched
}

TEST(JsonValid, AcceptsValidDocuments) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid("[]"));
  EXPECT_TRUE(json_valid("  {\"a\": [1, 2.5, -3e2, \"\\u00e9\"]} \n"));
  EXPECT_TRUE(json_valid("null"));
  EXPECT_TRUE(json_valid("-0.5"));
  EXPECT_TRUE(json_valid("\"str\""));
}

TEST(JsonValid, RejectsBrokenDocuments) {
  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid("{}{}"));        // trailing garbage
  EXPECT_FALSE(json_valid("{\"a\":}"));
  EXPECT_FALSE(json_valid("[1,]"));
  EXPECT_FALSE(json_valid("{\"a\" 1}"));
  EXPECT_FALSE(json_valid("01"));          // leading zero
  EXPECT_FALSE(json_valid("1."));          // bare decimal point
  EXPECT_FALSE(json_valid("\"unterminated"));
  EXPECT_FALSE(json_valid("\"bad\\q\""));  // unknown escape
  EXPECT_FALSE(json_valid("truthy"));
}

TEST(JsonValid, RejectsRunawayNesting) {
  std::string deep(300, '[');
  deep.append(300, ']');
  EXPECT_FALSE(json_valid(deep));  // kMaxDepth guard, not a stack overflow
  std::string ok(100, '[');
  ok.append(100, ']');
  EXPECT_TRUE(json_valid(ok));
}

}  // namespace
}  // namespace smpmine::obs
