// Randomized differential testing for generalized (taxonomy) mining:
// Basic must equal brute force on the extended database, and Cumulate must
// equal Basic minus exactly the item+ancestor-redundant itemsets, across
// random taxonomies and datasets.
#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "data/quest_gen.hpp"
#include "taxonomy/generalized.hpp"

namespace smpmine {
namespace {

struct TaxSetup {
  Database db;
  Taxonomy tax;
};

TaxSetup random_setup(std::uint64_t seed) {
  Rng rng(seed * 11400714819323198485ULL + 3);
  QuestParams p;
  p.num_transactions = 120 + static_cast<std::uint32_t>(rng.uniform(180));
  p.avg_transaction_len = 4.0 + static_cast<double>(rng.uniform(4));
  p.avg_pattern_len = 2.0 + static_cast<double>(rng.uniform(2));
  p.num_patterns = 12 + static_cast<std::uint32_t>(rng.uniform(20));
  p.num_items = 25 + static_cast<std::uint32_t>(rng.uniform(25));
  p.seed = seed;
  Database db = generate_quest(p);

  TaxonomyParams tp;
  tp.universe = p.num_items +
                10 + static_cast<item_t>(rng.uniform(20));
  tp.roots = 3 + static_cast<item_t>(rng.uniform(5));
  tp.levels = 2 + static_cast<std::uint32_t>(rng.uniform(3));
  tp.seed = seed ^ 0xBEEF;
  // Random forest over category ids above the leaf universe, then attach
  // leaves to random categories.
  Taxonomy tax(tp.universe);
  const item_t cat_begin = p.num_items;
  const item_t cats = tp.universe - cat_begin;
  for (item_t leaf = 0; leaf < p.num_items; ++leaf) {
    if (rng.uniform01() < 0.8) {  // some leaves stay uncategorized
      tax.add_edge(leaf, cat_begin + static_cast<item_t>(rng.uniform(cats)));
    }
  }
  // Chain some categories into deeper levels (skip edges that would cycle).
  for (item_t c = 0; c + 1 < cats; ++c) {
    if (rng.uniform01() < 0.5) {
      try {
        tax.add_edge(cat_begin + c,
                     cat_begin + c + 1 +
                         static_cast<item_t>(rng.uniform(cats - c - 1)));
      } catch (const std::invalid_argument&) {
        // cycle guard fired — fine for a random DAG
      }
    }
  }
  tax.freeze();
  return TaxSetup{std::move(db), std::move(tax)};
}

class GeneralizedDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneralizedDifferentialTest, BasicMatchesBruteForceOnExtendedDb) {
  const TaxSetup s = random_setup(GetParam());
  MinerOptions opts;
  opts.min_support = 0.04;
  opts.threads = 1 + GetParam() % 3;
  const MiningResult got =
      mine_generalized(s.db, s.tax, opts, GeneralizedAlgorithm::Basic);
  const auto reference =
      brute_force_frequent(extend_database(s.db, s.tax), opts.min_support);
  std::string diag;
  EXPECT_TRUE(levels_equal(got.levels, reference, &diag)) << diag;
}

TEST_P(GeneralizedDifferentialTest, CumulateIsBasicMinusRedundant) {
  const TaxSetup s = random_setup(GetParam());
  MinerOptions opts;
  opts.min_support = 0.04;
  const MiningResult basic =
      mine_generalized(s.db, s.tax, opts, GeneralizedAlgorithm::Basic);
  const MiningResult cumulate =
      mine_generalized(s.db, s.tax, opts, GeneralizedAlgorithm::Cumulate);

  // Level 1 identical; deeper levels: Cumulate = Basic \ redundant.
  ASSERT_FALSE(basic.levels.empty());
  for (std::size_t level = 0; level < basic.levels.size(); ++level) {
    const FrequentSet& fb = basic.levels[level];
    std::size_t kept = 0;
    for (std::size_t i = 0; i < fb.size(); ++i) {
      const auto itemset = fb.itemset(i);
      const bool redundant =
          level > 0 && s.tax.has_item_with_ancestor(itemset);
      const bool in_cumulate = level < cumulate.levels.size() &&
                               cumulate.levels[level].contains(itemset);
      EXPECT_EQ(in_cumulate, !redundant);
      kept += !redundant;
    }
    if (level < cumulate.levels.size()) {
      EXPECT_EQ(cumulate.levels[level].size(), kept);
    } else {
      EXPECT_EQ(kept, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneralizedDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 13),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace smpmine
