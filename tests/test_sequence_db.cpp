#include "seqpat/sequence_db.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace smpmine {
namespace {

TEST(SequenceDb, Empty) {
  SequenceDatabase db;
  EXPECT_TRUE(db.empty());
  EXPECT_EQ(db.num_customers(), 0u);
  EXPECT_EQ(db.total_transactions(), 0u);
  EXPECT_EQ(db.item_universe(), 0u);
}

TEST(SequenceDb, AddCustomersPreservesOrder) {
  SequenceDatabase db;
  const std::vector<std::vector<item_t>> c0{{3, 1}, {2}};
  const std::vector<std::vector<item_t>> c1{{5}};
  db.add_customer(c0);
  db.add_customer(c1);
  ASSERT_EQ(db.num_customers(), 2u);
  ASSERT_EQ(db.sequence_length(0), 2u);
  ASSERT_EQ(db.sequence_length(1), 1u);
  const auto t00 = db.transaction(0, 0);
  EXPECT_EQ(std::vector<item_t>(t00.begin(), t00.end()),
            (std::vector<item_t>{1, 3}));  // sorted
  EXPECT_EQ(db.transaction(0, 1)[0], 2u);
  EXPECT_EQ(db.transaction(1, 0)[0], 5u);
  EXPECT_EQ(db.item_universe(), 6u);
}

TEST(SequenceDb, EmptyTransactionsDropped) {
  SequenceDatabase db;
  const std::vector<std::vector<item_t>> c{{1}, {}, {2}};
  db.add_customer(c);
  EXPECT_EQ(db.sequence_length(0), 2u);
}

TEST(SequenceDb, CustomerWithNoTransactions) {
  SequenceDatabase db;
  db.add_customer(std::vector<std::vector<item_t>>{});
  EXPECT_EQ(db.num_customers(), 1u);
  EXPECT_EQ(db.sequence_length(0), 0u);
}

TEST(SequenceDb, DuplicateItemsDeduped) {
  SequenceDatabase db;
  const std::vector<std::vector<item_t>> c{{4, 4, 4}};
  db.add_customer(c);
  EXPECT_EQ(db.transaction(0, 0).size(), 1u);
}

TEST(SeqGen, DeterministicAndShaped) {
  SeqGenParams p;
  p.num_customers = 500;
  p.avg_transactions = 6.0;
  p.avg_transaction_len = 3.0;
  p.num_items = 50;
  p.seed = 11;
  const SequenceDatabase a = generate_sequences(p);
  const SequenceDatabase b = generate_sequences(p);
  ASSERT_EQ(a.num_customers(), 500u);
  ASSERT_EQ(a.total_transactions(), b.total_transactions());
  EXPECT_LE(a.item_universe(), 50u);
  // Mean sequence length in a sane band around the parameter.
  const double mean = static_cast<double>(a.total_transactions()) /
                      static_cast<double>(a.num_customers());
  EXPECT_GT(mean, 4.0);
  EXPECT_LT(mean, 8.0);
  for (std::size_t c = 0; c < 20; ++c) {
    ASSERT_EQ(a.sequence_length(c), b.sequence_length(c));
    for (std::size_t t = 0; t < a.sequence_length(c); ++t) {
      const auto ta = a.transaction(c, t);
      const auto tb = b.transaction(c, t);
      ASSERT_TRUE(std::equal(ta.begin(), ta.end(), tb.begin(), tb.end()));
    }
  }
}

TEST(SeqGen, PatternsInduceRepeatedSequences) {
  SeqGenParams p;
  p.num_customers = 2000;
  p.num_items = 100;
  p.seed = 13;
  const SequenceDatabase db = generate_sequences(p);
  // At least one ordered item pair (a then b in later transaction) must be
  // shared by many customers — that's what the planted patterns are for.
  std::map<std::pair<item_t, item_t>, std::uint32_t> pair_customers;
  for (std::size_t c = 0; c < db.num_customers(); ++c) {
    std::set<std::pair<item_t, item_t>> seen;
    for (std::size_t t1 = 0; t1 < db.sequence_length(c); ++t1) {
      for (std::size_t t2 = t1 + 1; t2 < db.sequence_length(c); ++t2) {
        for (const item_t a : db.transaction(c, t1)) {
          for (const item_t b : db.transaction(c, t2)) {
            seen.insert({a, b});
          }
        }
      }
    }
    for (const auto& pr : seen) ++pair_customers[pr];
  }
  std::uint32_t best = 0;
  for (const auto& [_, n] : pair_customers) best = std::max(best, n);
  // Random co-occurrence of a fixed ordered pair is far below 5%; only a
  // planted pattern clears it.
  EXPECT_GE(best, db.num_customers() / 20);
}

}  // namespace
}  // namespace smpmine
