#include "core/options.hpp"

#include <gtest/gtest.h>

namespace smpmine {
namespace {

TEST(Options, DefaultsAreValid) {
  MinerOptions opts;
  EXPECT_NO_THROW(opts.validate());
}

TEST(Options, BadSupportThrows) {
  MinerOptions opts;
  opts.min_support = 0.0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.min_support = -0.1;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.min_support = 1.01;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
}

TEST(Options, BadConfidenceThrows) {
  MinerOptions opts;
  opts.min_confidence = -0.2;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.min_confidence = 1.2;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
}

TEST(Options, LcaForcesPerThreadCounters) {
  MinerOptions opts;
  opts.placement = PlacementPolicy::LcaGpp;
  opts.counter_mode = CounterMode::Atomic;
  opts.validate();
  EXPECT_EQ(opts.counter_mode, CounterMode::PerThread);
}

TEST(Options, ZeroValuesNormalized) {
  MinerOptions opts;
  opts.threads = 0;
  opts.leaf_threshold = 0;
  opts.max_iterations = 0;
  opts.validate();
  EXPECT_EQ(opts.threads, 1u);
  EXPECT_EQ(opts.leaf_threshold, 1u);
  EXPECT_EQ(opts.max_iterations, 1u);
}

TEST(Options, FanoutClamping) {
  MinerOptions opts;
  opts.min_fanout = 8;
  opts.max_fanout = 4;  // inverted
  opts.fixed_fanout = 100;
  opts.validate();
  EXPECT_GE(opts.max_fanout, opts.min_fanout);
  EXPECT_LE(opts.fixed_fanout, opts.max_fanout);
  EXPECT_GE(opts.fixed_fanout, opts.min_fanout);
}

TEST(Options, SummaryMentionsKeyKnobs) {
  MinerOptions opts;
  opts.threads = 8;
  opts.placement = PlacementPolicy::LGPP;
  opts.validate();
  const std::string s = opts.summary();
  EXPECT_NE(s.find("P=8"), std::string::npos);
  EXPECT_NE(s.find("L-GPP"), std::string::npos);
  EXPECT_NE(s.find("CCPD"), std::string::npos);
}

TEST(Options, AlgorithmNames) {
  EXPECT_STREQ(to_string(Algorithm::CCPD), "CCPD");
  EXPECT_STREQ(to_string(Algorithm::PCCD), "PCCD");
}

}  // namespace
}  // namespace smpmine
