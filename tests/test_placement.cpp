#include "alloc/placement.hpp"

#include <gtest/gtest.h>

namespace smpmine {
namespace {

TEST(PlacementPolicy, Predicates) {
  EXPECT_FALSE(policy_uses_region(PlacementPolicy::Malloc));
  EXPECT_TRUE(policy_uses_region(PlacementPolicy::SPP));
  EXPECT_TRUE(policy_uses_region(PlacementPolicy::LcaGpp));

  EXPECT_TRUE(policy_localized(PlacementPolicy::LPP));
  EXPECT_TRUE(policy_localized(PlacementPolicy::LLPP));
  EXPECT_FALSE(policy_localized(PlacementPolicy::GPP));

  EXPECT_TRUE(policy_remaps(PlacementPolicy::GPP));
  EXPECT_TRUE(policy_remaps(PlacementPolicy::LGPP));
  EXPECT_TRUE(policy_remaps(PlacementPolicy::LcaGpp));
  EXPECT_FALSE(policy_remaps(PlacementPolicy::SPP));

  EXPECT_TRUE(policy_segregates_counters(PlacementPolicy::LSPP));
  EXPECT_TRUE(policy_segregates_counters(PlacementPolicy::LLPP));
  EXPECT_TRUE(policy_segregates_counters(PlacementPolicy::LGPP));
  EXPECT_FALSE(policy_segregates_counters(PlacementPolicy::GPP));
  EXPECT_FALSE(policy_segregates_counters(PlacementPolicy::LcaGpp));

  EXPECT_TRUE(policy_local_counters(PlacementPolicy::LcaGpp));
  EXPECT_FALSE(policy_local_counters(PlacementPolicy::LGPP));
}

TEST(PlacementPolicy, NamesRoundTrip) {
  for (const PlacementPolicy p : kAllPolicies) {
    const auto parsed = placement_from_string(to_string(p));
    ASSERT_TRUE(parsed.has_value()) << to_string(p);
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(placement_from_string("nonsense").has_value());
}

TEST(PlacementArenas, CountersAliasTreeUnlessSegregated) {
  PlacementArenas spp(PlacementPolicy::SPP);
  EXPECT_EQ(&spp.tree(), &spp.counters());

  PlacementArenas lspp(PlacementPolicy::LSPP);
  EXPECT_NE(&lspp.tree(), &lspp.counters());

  PlacementArenas lca(PlacementPolicy::LcaGpp);
  EXPECT_NE(&lca.tree(), &lca.counters());
}

TEST(PlacementArenas, MallocPolicyUsesMallocArena) {
  PlacementArenas arenas(PlacementPolicy::Malloc);
  auto* a = static_cast<char*>(arenas.tree().alloc(32, 8));
  auto* b = static_cast<char*>(arenas.tree().alloc(32, 8));
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
  // Unlike a region, malloc gives no contiguity guarantee; just verify both
  // blocks are usable and tracked.
  EXPECT_EQ(arenas.tree_stats().allocations, 2u);
}

TEST(PlacementArenas, ResetRecyclesAllArenas) {
  PlacementArenas arenas(PlacementPolicy::LGPP);
  arenas.tree().alloc(100, 8);
  arenas.counters().alloc(100, 8);
  arenas.remap_target().alloc(100, 8);
  arenas.reset();
  EXPECT_EQ(arenas.tree_stats().bytes_requested, 100u);  // cumulative stat
  // After reset the same storage is handed out again.
  void* p1 = arenas.tree().alloc(10, 8);
  arenas.reset();
  void* p2 = arenas.tree().alloc(10, 8);
  EXPECT_EQ(p1, p2);
}

TEST(PlacementArenas, PolicyIsRecorded) {
  for (const PlacementPolicy p : kAllPolicies) {
    PlacementArenas arenas(p);
    EXPECT_EQ(arenas.policy(), p);
  }
}

}  // namespace
}  // namespace smpmine
