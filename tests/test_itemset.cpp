#include "itemset/itemset.hpp"

#include <gtest/gtest.h>

namespace smpmine {
namespace {

std::vector<item_t> v(std::initializer_list<item_t> items) { return items; }

TEST(Itemset, CompareEqual) {
  EXPECT_EQ(compare_itemsets(v({1, 2, 3}), v({1, 2, 3})), 0);
  EXPECT_EQ(compare_itemsets({}, {}), 0);
}

TEST(Itemset, CompareLexicographic) {
  EXPECT_LT(compare_itemsets(v({1, 2, 3}), v({1, 2, 4})), 0);
  EXPECT_GT(compare_itemsets(v({2}), v({1, 9, 9})), 0);
  EXPECT_LT(compare_itemsets(v({1, 2}), v({1, 2, 0})), 0);  // prefix first
}

TEST(Itemset, SubsetBasic) {
  EXPECT_TRUE(is_subset_sorted(v({2, 4}), v({1, 2, 3, 4, 5})));
  EXPECT_FALSE(is_subset_sorted(v({2, 6}), v({1, 2, 3, 4, 5})));
  EXPECT_TRUE(is_subset_sorted({}, v({1})));
  EXPECT_TRUE(is_subset_sorted({}, {}));
  EXPECT_FALSE(is_subset_sorted(v({1}), {}));
}

TEST(Itemset, SubsetIdentity) {
  EXPECT_TRUE(is_subset_sorted(v({1, 2, 3}), v({1, 2, 3})));
}

TEST(Itemset, SubsetRequiresAllItems) {
  EXPECT_FALSE(is_subset_sorted(v({1, 2, 3, 4}), v({1, 2, 3})));
}

TEST(Itemset, SharesPrefix) {
  EXPECT_TRUE(shares_prefix(v({1, 2, 3}), v({1, 2, 9}), 2));
  EXPECT_FALSE(shares_prefix(v({1, 2, 3}), v({1, 3, 3}), 2));
  EXPECT_TRUE(shares_prefix(v({5}), v({9}), 0));  // empty prefix
  EXPECT_FALSE(shares_prefix(v({1}), v({1, 2}), 2));  // too short
}

TEST(Itemset, HashDistinguishes) {
  EXPECT_NE(hash_itemset(v({1, 2})), hash_itemset(v({2, 1})));
  EXPECT_NE(hash_itemset(v({1})), hash_itemset(v({1, 0})));
  EXPECT_EQ(hash_itemset(v({3, 7})), hash_itemset(v({3, 7})));
}

TEST(Itemset, Format) {
  EXPECT_EQ(format_itemset(v({1, 4, 5})), "(1, 4, 5)");
  EXPECT_EQ(format_itemset({}), "()");
}

TEST(KSubsets, CountMatchesBinomial) {
  const auto items = v({1, 2, 3, 4, 5});
  EXPECT_EQ(k_subsets(items, 1).size(), 5u);
  EXPECT_EQ(k_subsets(items, 2).size(), 10u);
  EXPECT_EQ(k_subsets(items, 3).size(), 10u);
  EXPECT_EQ(k_subsets(items, 5).size(), 1u);
  EXPECT_TRUE(k_subsets(items, 6).empty());
  EXPECT_TRUE(k_subsets(items, 0).empty());
}

TEST(KSubsets, LexicographicOrder) {
  // Paper Section 4.2 example: the 3-subsets of {A..E} as {1..5}.
  const auto subs = k_subsets(v({1, 2, 3, 4, 5}), 3);
  ASSERT_EQ(subs.size(), 10u);
  EXPECT_EQ(subs.front(), v({1, 2, 3}));
  EXPECT_EQ(subs[1], v({1, 2, 4}));
  EXPECT_EQ(subs.back(), v({3, 4, 5}));
  for (std::size_t i = 1; i < subs.size(); ++i) {
    EXPECT_LT(compare_itemsets(subs[i - 1], subs[i]), 0);
  }
}

TEST(KSubsets, AllDistinct) {
  const auto subs = k_subsets(v({0, 1, 2, 3, 4, 5, 6}), 4);
  for (std::size_t i = 0; i < subs.size(); ++i) {
    for (std::size_t j = i + 1; j < subs.size(); ++j) {
      EXPECT_NE(compare_itemsets(subs[i], subs[j]), 0);
    }
  }
}

}  // namespace
}  // namespace smpmine
