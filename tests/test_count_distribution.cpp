#include "distmem/count_distribution.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/brute_force.hpp"
#include "core/miner.hpp"
#include "data/quest_gen.hpp"
#include "distmem/channel.hpp"

namespace smpmine {
namespace {

TEST(Mailbox, FifoDelivery) {
  Mailbox box;
  box.send(Message{1, 10, {}});
  box.send(Message{2, 20, {}});
  EXPECT_EQ(box.receive().tag, 10u);
  EXPECT_EQ(box.receive().tag, 20u);
}

TEST(Mailbox, BlockingReceiveWakesOnSend) {
  Mailbox box;
  std::atomic<bool> got{false};
  std::thread receiver([&] {
    box.receive();
    got.store(true);
  });
  EXPECT_FALSE(got.load());
  box.send(Message{0, 1, {}});
  receiver.join();
  EXPECT_TRUE(got.load());
}

TEST(Cluster, MetersTraffic) {
  Cluster cluster(2);
  cluster.send(0, 1, 0, std::vector<std::byte>(100));
  cluster.send(1, 0, 0, std::vector<std::byte>(50));
  EXPECT_EQ(cluster.stats().messages, 2u);
  EXPECT_EQ(cluster.stats().bytes, 150u);
  EXPECT_EQ(cluster.receive(1).payload.size(), 100u);
  EXPECT_EQ(cluster.receive(0).payload.size(), 50u);
}

Database quest_db() {
  QuestParams p;
  p.num_transactions = 400;
  p.avg_transaction_len = 8.0;
  p.avg_pattern_len = 3.0;
  p.num_patterns = 30;
  p.num_items = 50;
  p.seed = 808;
  return generate_quest(p);
}

class CountDistTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CountDistTest, MatchesBruteForce) {
  const Database db = quest_db();
  MinerOptions opts;
  opts.min_support = 0.03;
  const CountDistributionResult r =
      mine_count_distribution(db, opts, GetParam());
  const auto reference = brute_force_frequent(db, opts.min_support);
  std::string diag;
  EXPECT_TRUE(levels_equal(r.mining.levels, reference, &diag)) << diag;
}

INSTANTIATE_TEST_SUITE_P(Nodes, CountDistTest, ::testing::Values(1, 2, 3, 8),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(CountDist, CommunicationScalesWithNodesAndCandidates) {
  const Database db = quest_db();
  MinerOptions opts;
  opts.min_support = 0.03;
  const CountDistributionResult one = mine_count_distribution(db, opts, 1);
  const CountDistributionResult four = mine_count_distribution(db, opts, 4);
  // A single node exchanges nothing; four nodes exchange
  // 2*(nodes-1) messages per all-reduce round.
  EXPECT_EQ(one.comm.bytes, 0u);
  EXPECT_GT(four.comm.bytes, 0u);
  // Volume is bounded below by (nodes-1) x counters x 4 bytes (the gather
  // half alone).
  EXPECT_GE(four.comm.bytes,
            3ull * four.counters_exchanged * sizeof(count_t));
  EXPECT_EQ(one.counters_exchanged, four.counters_exchanged);
}

TEST(CountDist, TreeMemoryDuplicatedPerNode) {
  const Database db = quest_db();
  MinerOptions opts;
  opts.min_support = 0.03;
  const CountDistributionResult one = mine_count_distribution(db, opts, 1);
  const CountDistributionResult four = mine_count_distribution(db, opts, 4);
  EXPECT_GT(one.total_tree_bytes, 0u);
  EXPECT_EQ(four.total_tree_bytes, one.total_tree_bytes * 4);
}

TEST(CountDist, CcpdExchangesNothing) {
  // The shared-memory contrast: identical results, zero messages, one tree.
  const Database db = quest_db();
  MinerOptions opts;
  opts.min_support = 0.03;
  opts.threads = 4;
  const MiningResult ccpd = mine_ccpd(db, opts);
  const CountDistributionResult cd = mine_count_distribution(db, opts, 4);
  std::string diag;
  EXPECT_TRUE(levels_equal(ccpd.levels, cd.mining.levels, &diag)) << diag;
}

}  // namespace
}  // namespace smpmine
