#include "core/rules.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/miner.hpp"
#include "itemset/itemset.hpp"

namespace smpmine {
namespace {

/// The paper's worked database: supports are known exactly.
///   sup(1)=3 sup(2)=2 sup(4)=3 sup(5)=3
///   sup(1,2)=2 sup(1,4)=2 sup(1,5)=2 sup(4,5)=3 sup(1,4,5)=2
MiningResult example_result() {
  Database db;
  db.add_transaction(std::vector<item_t>{1, 4, 5});
  db.add_transaction(std::vector<item_t>{1, 2});
  db.add_transaction(std::vector<item_t>{3, 4, 5});
  db.add_transaction(std::vector<item_t>{1, 2, 4, 5});
  MinerOptions opts;
  opts.min_support = 0.5;
  return mine_sequential(db, opts);
}

const Rule* find_rule(const std::vector<Rule>& rules,
                      std::vector<item_t> ante, std::vector<item_t> cons) {
  for (const Rule& r : rules) {
    if (r.antecedent == ante && r.consequent == cons) return &r;
  }
  return nullptr;
}

TEST(Rules, ConfidencesExact) {
  const auto rules = generate_rules(example_result(), 0.0, 4);
  // 2 => 1 has confidence sup(1,2)/sup(2) = 2/2 = 1.
  const Rule* r = find_rule(rules, {2}, {1});
  ASSERT_NE(r, nullptr);
  EXPECT_DOUBLE_EQ(r->confidence, 1.0);
  EXPECT_DOUBLE_EQ(r->support, 0.5);
  // lift = conf / (sup(1)/4) = 1 / 0.75.
  EXPECT_DOUBLE_EQ(r->lift, 4.0 / 3.0);

  // 1 => 2 has confidence 2/3.
  const Rule* rev = find_rule(rules, {1}, {2});
  ASSERT_NE(rev, nullptr);
  EXPECT_DOUBLE_EQ(rev->confidence, 2.0 / 3.0);

  // 4 => 5 has confidence 3/3 = 1.
  const Rule* r45 = find_rule(rules, {4}, {5});
  ASSERT_NE(r45, nullptr);
  EXPECT_DOUBLE_EQ(r45->confidence, 1.0);
}

TEST(Rules, ThresholdFilters) {
  const auto all = generate_rules(example_result(), 0.0, 4);
  const auto strict = generate_rules(example_result(), 0.9, 4);
  EXPECT_LT(strict.size(), all.size());
  for (const Rule& r : strict) EXPECT_GE(r.confidence, 0.9);
}

TEST(Rules, MultiItemConsequents) {
  // 1 => (4,5): conf = sup(1,4,5)/sup(1) = 2/3.
  const auto rules = generate_rules(example_result(), 0.0, 4);
  const Rule* r = find_rule(rules, {1}, {4, 5});
  ASSERT_NE(r, nullptr);
  EXPECT_DOUBLE_EQ(r->confidence, 2.0 / 3.0);
  // (4,5) => 1: conf = 2/3.
  const Rule* r2 = find_rule(rules, {4, 5}, {1});
  ASSERT_NE(r2, nullptr);
  EXPECT_DOUBLE_EQ(r2->confidence, 2.0 / 3.0);
}

TEST(Rules, AllRulesFromK3Itemset) {
  // (1,4,5) yields 6 rules (3 single-item + 3 two-item consequents) at
  // min_confidence 0; together with the 8 from the four 2-itemsets that's
  // every rule of the example.
  const auto rules = generate_rules(example_result(), 0.0, 4);
  int from_145 = 0;
  for (const Rule& r : rules) {
    std::vector<item_t> whole(r.antecedent);
    whole.insert(whole.end(), r.consequent.begin(), r.consequent.end());
    std::sort(whole.begin(), whole.end());
    if (whole == std::vector<item_t>{1, 4, 5}) ++from_145;
  }
  EXPECT_EQ(from_145, 6);
  EXPECT_EQ(rules.size(), 14u);
}

TEST(Rules, SortedByConfidenceThenSupport) {
  const auto rules = generate_rules(example_result(), 0.0, 4);
  for (std::size_t i = 1; i < rules.size(); ++i) {
    const bool ordered =
        rules[i - 1].confidence > rules[i].confidence ||
        (rules[i - 1].confidence == rules[i].confidence &&
         rules[i - 1].support >= rules[i].support);
    EXPECT_TRUE(ordered) << i;
  }
}

TEST(Rules, AntiMonotonePruningLosesNothing) {
  // Exhaustively enumerate rules of the example by brute force and check
  // the ap-genrules expansion found every rule above threshold.
  const MiningResult result = example_result();
  const double min_conf = 0.7;
  const auto rules = generate_rules(result, min_conf, 4);

  std::size_t expected = 0;
  for (std::size_t level = 1; level < result.levels.size(); ++level) {
    const FrequentSet& fk = result.levels[level];
    for (std::size_t x = 0; x < fk.size(); ++x) {
      const auto items = fk.itemset(x);
      const std::vector<item_t> all(items.begin(), items.end());
      // Every proper non-empty subset as consequent.
      for (std::size_t ylen = 1; ylen < all.size(); ++ylen) {
        for (const auto& y : k_subsets(all, ylen)) {
          std::vector<item_t> ante;
          std::set_difference(all.begin(), all.end(), y.begin(), y.end(),
                              std::back_inserter(ante));
          const count_t* sup_ante =
              result.levels[ante.size() - 1].find_count(ante);
          ASSERT_NE(sup_ante, nullptr);
          const double conf =
              static_cast<double>(fk.count(x)) / *sup_ante;
          if (conf >= min_conf) {
            ++expected;
            EXPECT_NE(find_rule(rules, ante, y), nullptr)
                << format_itemset(ante) << " => " << format_itemset(y);
          }
        }
      }
    }
  }
  EXPECT_EQ(rules.size(), expected);
}

TEST(Rules, EmptyResultYieldsNoRules) {
  MiningResult empty;
  EXPECT_TRUE(generate_rules(empty, 0.5, 100).empty());
}

TEST(Rules, ToStringMentionsMetrics) {
  const auto rules = generate_rules(example_result(), 0.9, 4);
  ASSERT_FALSE(rules.empty());
  const std::string s = rules.front().to_string();
  EXPECT_NE(s.find("=>"), std::string::npos);
  EXPECT_NE(s.find("conf="), std::string::npos);
  EXPECT_NE(s.find("lift="), std::string::npos);
}

}  // namespace
}  // namespace smpmine
