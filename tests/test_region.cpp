#include "alloc/region.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

namespace smpmine {
namespace {

TEST(Region, AllocationsAreWritable) {
  Region region(4096);
  auto* p = static_cast<char*>(region.alloc(100, 1));
  std::memset(p, 0xAB, 100);
  EXPECT_EQ(static_cast<unsigned char>(p[99]), 0xAB);
}

TEST(Region, ConsecutiveAllocationsAreContiguous) {
  Region region(1 << 16);
  auto* a = static_cast<char*>(region.alloc(24, 8));
  auto* b = static_cast<char*>(region.alloc(24, 8));
  // Placement is the point of the region: back-to-back within one chunk.
  EXPECT_EQ(b, a + 24);
}

TEST(Region, RespectsAlignment) {
  Region region;
  for (std::size_t align : {1u, 2u, 4u, 8u, 16u, 64u, 256u}) {
    void* p = region.alloc(3, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align=" << align;
  }
}

TEST(Region, GrowsBeyondOneChunk) {
  Region region(1024);
  for (int i = 0; i < 100; ++i) region.alloc(100, 8);
  EXPECT_GT(region.stats().chunks, 1u);
  EXPECT_EQ(region.stats().allocations, 100u);
}

TEST(Region, OversizedAllocationGetsDedicatedChunk) {
  Region region(1024);
  auto* p = static_cast<char*>(region.alloc(10000, 8));
  std::memset(p, 1, 10000);
  EXPECT_GE(region.stats().bytes_reserved, 10000u);
}

TEST(Region, ResetReusesFirstChunk) {
  Region region(4096);
  void* first = region.alloc(16, 8);
  region.alloc(5000, 8);  // forces a second chunk
  region.reset();
  EXPECT_EQ(region.bytes_used(), 0u);
  EXPECT_LE(region.stats().chunks, 1u);
  void* again = region.alloc(16, 8);
  EXPECT_EQ(again, first);  // same storage recycled
}

TEST(Region, ReleaseDropsEverything) {
  Region region;
  region.alloc(100, 8);
  region.release();
  EXPECT_EQ(region.stats().chunks, 0u);
  EXPECT_EQ(region.stats().bytes_reserved, 0u);
  // Usable again after release.
  EXPECT_NE(region.alloc(8, 8), nullptr);
}

TEST(Region, ZeroByteAllocationsAreDistinct) {
  Region region;
  void* a = region.alloc(0, 1);
  void* b = region.alloc(0, 1);
  EXPECT_NE(a, b);
}

TEST(Region, StatsTrackRequests) {
  Region region;
  region.alloc(10, 1);
  region.alloc(20, 1);
  EXPECT_EQ(region.stats().allocations, 2u);
  EXPECT_EQ(region.stats().bytes_requested, 30u);
}

TEST(Region, ConcurrentAllocationsDoNotOverlap) {
  Region region(1 << 16);
  constexpr int kThreads = 4;
  constexpr int kPer = 2000;
  std::vector<std::vector<char*>> ptrs(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        auto* p = static_cast<char*>(region.alloc(16, 8));
        std::memset(p, t + 1, 16);
        ptrs[t].push_back(p);
      }
    });
  }
  for (auto& w : workers) w.join();
  // Every block still holds its writer's pattern => no overlap.
  for (int t = 0; t < kThreads; ++t) {
    for (char* p : ptrs[t]) {
      for (int b = 0; b < 16; ++b) ASSERT_EQ(p[b], t + 1);
    }
  }
  EXPECT_EQ(region.stats().allocations,
            static_cast<std::uint64_t>(kThreads) * kPer);
}

TEST(MallocArena, AllocatesAndTracks) {
  MallocArena arena;
  auto* p = static_cast<char*>(arena.alloc(64, 8));
  std::memset(p, 0x5A, 64);
  EXPECT_EQ(arena.stats().allocations, 1u);
  EXPECT_EQ(arena.stats().bytes_requested, 64u);
}

TEST(MallocArena, OveralignedAllocation) {
  MallocArena arena;
  void* p = arena.alloc(64, 128);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 128, 0u);
}

TEST(MallocArena, ReleaseResetsStats) {
  MallocArena arena;
  arena.alloc(10, 8);
  arena.alloc(10, 8);
  arena.release();
  EXPECT_EQ(arena.stats().chunks, 0u);
  EXPECT_NE(arena.alloc(10, 8), nullptr);
}

}  // namespace
}  // namespace smpmine
