#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace smpmine {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  const std::string out = t.render();
  std::istringstream is(out);
  std::string header, rule, row1, row2;
  std::getline(is, header);
  std::getline(is, rule);
  std::getline(is, row1);
  std::getline(is, row2);
  EXPECT_NE(header.find("name"), std::string::npos);
  EXPECT_EQ(rule.find_first_not_of('-'), std::string::npos);
  // Value column starts at the same offset in every row.
  EXPECT_EQ(row1.find('1'), row2.find("12345"));
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(TextTable, PctFormatting) {
  EXPECT_EQ(TextTable::pct(0.25, 1), "25.0%");
  EXPECT_EQ(TextTable::pct(1.0, 0), "100%");
}

TEST(TextTable, EmptyTableRendersHeaderOnly) {
  TextTable t({"x"});
  const std::string out = t.render();
  EXPECT_NE(out.find('x'), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);  // header + rule
}

}  // namespace
}  // namespace smpmine
