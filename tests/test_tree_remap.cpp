#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "alloc/alloc_stats.hpp"
#include "hashtree/hash_tree.hpp"
#include "itemset/itemset.hpp"

namespace smpmine {
namespace {

std::vector<std::vector<item_t>> make_candidates(item_t universe,
                                                 std::size_t k) {
  std::vector<item_t> base(universe);
  for (item_t i = 0; i < universe; ++i) base[i] = i;
  return k_subsets(base, k);
}

std::map<std::vector<item_t>, count_t> snapshot(const HashTree& tree) {
  std::map<std::vector<item_t>, count_t> out;
  tree.for_each_candidate([&](const Candidate& cand) {
    const auto view = cand.view(tree.k());
    out[std::vector<item_t>(view.begin(), view.end())] = *cand.count;
  });
  return out;
}

class RemapTest : public ::testing::TestWithParam<PlacementPolicy> {};

TEST_P(RemapTest, PreservesCandidatesAndCounts) {
  PlacementArenas arenas(GetParam());
  const HashPolicy policy(HashScheme::Bitonic, 3);
  const CounterMode counter = policy_local_counters(GetParam())
                                  ? CounterMode::PerThread
                                  : CounterMode::Atomic;
  HashTree tree(
      {.k = 3, .fanout = 3, .leaf_threshold = 2, .counter_mode = counter},
      policy, arenas);
  const auto candidates = make_candidates(12, 3);
  for (const auto& c : candidates) tree.insert(c);

  // Put nonzero counts in before remapping so value preservation is tested.
  const std::vector<item_t> txn{0, 1, 2, 3, 4, 5, 6, 7};
  CountContext ctx = tree.make_context(SubsetCheck::FrameLocal);
  tree.count_transaction(txn, ctx);
  if (counter == CounterMode::PerThread) {
    tree.candidate_index();
    tree.reduce_into_shared(ctx, 0, tree.num_candidates());
  }
  const auto before = snapshot(tree);
  const TreeStats stats_before = tree.stats();

  tree.remap_depth_first();

  EXPECT_EQ(snapshot(tree), before);
  const TreeStats stats_after = tree.stats();
  EXPECT_EQ(stats_after.nodes, stats_before.nodes);
  EXPECT_EQ(stats_after.leaves, stats_before.leaves);
  EXPECT_EQ(stats_after.candidates, stats_before.candidates);

  // Counting still works on the remapped tree.
  CountContext ctx2 = tree.make_context(SubsetCheck::FrameLocal);
  tree.count_transaction(txn, ctx2);
  EXPECT_EQ(ctx2.hits, ctx.hits);
}

INSTANTIATE_TEST_SUITE_P(Policies, RemapTest,
                         ::testing::Values(PlacementPolicy::GPP,
                                           PlacementPolicy::LGPP,
                                           PlacementPolicy::LcaGpp),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           std::erase(name, '-');
                           return name;
                         });

TEST(Remap, NodeIdsAreDfsDense) {
  PlacementArenas arenas(PlacementPolicy::GPP);
  const HashPolicy policy(HashScheme::Interleaved, 3);
  HashTree tree({.k = 3, .fanout = 3, .leaf_threshold = 2}, policy, arenas);
  for (const auto& c : make_candidates(10, 3)) tree.insert(c);
  tree.remap_depth_first();
  // After remap the ids are freshly assigned 0..N-1.
  EXPECT_GT(tree.num_nodes(), 1u);
  const TreeStats stats = tree.stats();
  EXPECT_EQ(stats.nodes, tree.num_nodes());
}

TEST(Remap, ImprovesTraceLocality) {
  // Build with a deliberately scrambled insertion order so creation order
  // diverges from traversal order, then verify the depth-first remap tightens
  // the counting-access trace.
  PlacementArenas arenas(PlacementPolicy::GPP);
  const HashPolicy policy(HashScheme::Interleaved, 3);
  HashTree tree({.k = 3, .fanout = 3, .leaf_threshold = 2}, policy, arenas);
  auto candidates = make_candidates(14, 3);
  // Reverse order maximizes divergence between creation and DFS order.
  for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
    tree.insert(*it);
  }
  std::vector<item_t> txn(14);
  for (item_t i = 0; i < 14; ++i) txn[i] = i;

  std::vector<std::uintptr_t> before_trace;
  tree.access_trace(txn, before_trace);
  const LocalityReport before = analyze_trace(before_trace);

  tree.remap_depth_first();
  std::vector<std::uintptr_t> after_trace;
  tree.access_trace(txn, after_trace);
  const LocalityReport after = analyze_trace(after_trace);

  ASSERT_EQ(before.touches, after.touches);  // same traversal shape
  // The remapped tree packs the traversal into a tighter address range.
  EXPECT_LT(after.mean_stride, before.mean_stride);
  EXPECT_GE(after.same_line_rate, before.same_line_rate);
}

TEST(Remap, TraceCoversWholeTreeForFullTransaction) {
  PlacementArenas arenas(PlacementPolicy::GPP);
  const HashPolicy policy(HashScheme::Interleaved, 2);
  HashTree tree({.k = 2, .fanout = 2, .leaf_threshold = 1}, policy, arenas);
  for (const auto& c : make_candidates(6, 2)) tree.insert(c);
  std::vector<item_t> txn{0, 1, 2, 3, 4, 5};
  std::vector<std::uintptr_t> trace;
  tree.access_trace(txn, trace);
  // Every candidate block must appear in the trace (the transaction covers
  // the whole item universe).
  std::size_t cand_appearances = 0;
  tree.for_each_candidate([&](const Candidate& cand) {
    const auto addr = reinterpret_cast<std::uintptr_t>(&cand);
    for (const auto a : trace) {
      if (a == addr) {
        ++cand_appearances;
        break;
      }
    }
  });
  EXPECT_EQ(cand_appearances, tree.num_candidates());
}

}  // namespace
}  // namespace smpmine
