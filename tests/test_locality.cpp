#include "alloc/alloc_stats.hpp"

#include <gtest/gtest.h>

namespace smpmine {
namespace {

TEST(Locality, EmptyTrace) {
  const LocalityReport r = analyze_trace({});
  EXPECT_EQ(r.touches, 0u);
  EXPECT_EQ(r.distinct_lines, 0u);
}

TEST(Locality, SingleTouch) {
  const LocalityReport r = analyze_trace({0x1000});
  EXPECT_EQ(r.touches, 1u);
  EXPECT_EQ(r.distinct_lines, 1u);
  EXPECT_EQ(r.distinct_pages, 1u);
  EXPECT_DOUBLE_EQ(r.line_reuse, 1.0);
}

TEST(Locality, AllSameLine) {
  // Four touches inside one 64B line.
  const LocalityReport r = analyze_trace({0x1000, 0x1008, 0x1010, 0x103F});
  EXPECT_EQ(r.distinct_lines, 1u);
  EXPECT_DOUBLE_EQ(r.same_line_rate, 1.0);
  EXPECT_DOUBLE_EQ(r.line_reuse, 4.0);
}

TEST(Locality, AlternatingFarLines) {
  const LocalityReport r =
      analyze_trace({0x1000, 0x100000, 0x1000, 0x100000});
  EXPECT_EQ(r.distinct_lines, 2u);
  EXPECT_EQ(r.distinct_pages, 2u);
  EXPECT_DOUBLE_EQ(r.same_line_rate, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_stride, static_cast<double>(0x100000 - 0x1000));
}

TEST(Locality, SequentialScanBeatsRandom) {
  std::vector<std::uintptr_t> sequential, scattered;
  for (std::uintptr_t i = 0; i < 256; ++i) {
    sequential.push_back(0x10000 + i * 16);
    scattered.push_back(0x10000 + (i * 2654435761u % 4096) * 64);
  }
  const LocalityReport seq = analyze_trace(sequential);
  const LocalityReport rnd = analyze_trace(scattered);
  EXPECT_LT(seq.distinct_lines, rnd.distinct_lines);
  EXPECT_GT(seq.same_line_rate, rnd.same_line_rate);
  EXPECT_LT(seq.mean_stride, rnd.mean_stride);
}

TEST(Locality, PageCounting) {
  // 3 touches across exactly 2 pages.
  const LocalityReport r = analyze_trace({0x0, 0xFFF, 0x1000});
  EXPECT_EQ(r.distinct_pages, 2u);
}

}  // namespace
}  // namespace smpmine
