// TSan-targeted frozen flat counting kernel: multiple threads count into
// one FrozenTree's shared counter array (atomic increments / per-slot
// spinlocks / privatized local counts + disjoint-slot reduction), plus the
// end-to-end CCPD race with the flat kernel engaged through the pool's
// bulk-synchronous iteration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/brute_force.hpp"
#include "core/miner.hpp"
#include "data/quest_gen.hpp"
#include "hashtree/frozen_tree.hpp"
#include "hashtree/hash_tree.hpp"
#include "itemset/itemset.hpp"

namespace smpmine {
namespace {

constexpr int kThreads = 4;

/// Tiny database where every transaction hits many candidates, maximizing
/// counter contention per unit of work.
Database dense_db() {
  Database db;
  for (int t = 0; t < 40; ++t) {
    std::vector<item_t> txn;
    for (item_t i = 0; i < 6; ++i) {
      txn.push_back(static_cast<item_t>((t + i) % 10));
    }
    db.add_transaction(txn);
  }
  return db;
}

/// Builds a k=2 tree over all pairs of the db's universe, then freezes it.
/// Build and freeze are sequential — the concurrent counting is under test.
struct FrozenFixture {
  explicit FrozenFixture(CounterMode mode)
      : arenas(PlacementPolicy::SPP),
        policy(HashScheme::Interleaved, 2),
        tree({.k = 2, .fanout = 2, .leaf_threshold = 2, .counter_mode = mode},
             policy, arenas),
        frozen([this] {
          std::vector<item_t> base(10);
          for (item_t i = 0; i < 10; ++i) base[i] = i;
          for (const auto& pair : k_subsets(base, 2)) tree.insert(pair);
          return FrozenTree(tree, arenas);
        }()) {}
  PlacementArenas arenas;
  HashPolicy policy;
  HashTree tree;
  FrozenTree frozen;
};

/// Every thread counts the whole database, so each slot's final support
/// must be exactly kThreads * (single-threaded support).
void stress_frozen_counters(CounterMode mode) {
  const Database db = dense_db();

  FrozenFixture reference(mode);
  {
    FlatCountContext ctx;
    reference.frozen.prepare_context(ctx);
    reference.frozen.count_range(db, 0, db.size(), ctx);
    if (mode == CounterMode::PerThread) {
      reference.frozen.reduce_into_shared(
          ctx, 0, reference.frozen.num_candidates());
    }
  }

  FrozenFixture shared(mode);
  std::vector<FlatCountContext> contexts(kThreads);
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      FlatCountContext& ctx = contexts[w];
      shared.frozen.prepare_context(ctx);
      shared.frozen.count_range(db, 0, db.size(), ctx);
    });
  }
  for (auto& w : workers) w.join();

  if (mode == CounterMode::PerThread) {
    // LCA reduction: threads take disjoint slot ranges, each summing every
    // context's privatized counts into the shared slot counter.
    const std::uint32_t n = shared.frozen.num_candidates();
    const std::uint32_t per = (n + kThreads - 1) / kThreads;
    std::vector<std::thread> reducers;
    for (int w = 0; w < kThreads; ++w) {
      reducers.emplace_back([&, w] {
        const std::uint32_t begin =
            std::min(n, static_cast<std::uint32_t>(w) * per);
        const std::uint32_t end = std::min(n, begin + per);
        for (const FlatCountContext& ctx : contexts) {
          shared.frozen.reduce_into_shared(ctx, begin, end);
        }
      });
    }
    for (auto& r : reducers) r.join();
  }

  const std::uint32_t n = shared.frozen.num_candidates();
  ASSERT_EQ(n, reference.frozen.num_candidates());
  for (std::uint32_t slot = 0; slot < n; ++slot) {
    ASSERT_EQ(shared.frozen.slot_count(slot),
              reference.frozen.slot_count(slot) * kThreads)
        << "slot " << slot;
  }
}

TEST(RaceFlatKernel, AtomicIncrementsAreExact) {
  stress_frozen_counters(CounterMode::Atomic);
}

TEST(RaceFlatKernel, LockedIncrementsAreExact) {
  stress_frozen_counters(CounterMode::Locked);
}

TEST(RaceFlatKernel, PerThreadReductionIsExact) {
  stress_frozen_counters(CounterMode::PerThread);
}

class FlatKernelEndToEndRace : public ::testing::TestWithParam<CounterMode> {
};

TEST_P(FlatKernelEndToEndRace, ParallelFlatMatchesSequential) {
  QuestParams p;
  p.num_transactions = 150;
  p.avg_transaction_len = 8.0;
  p.avg_pattern_len = 3.0;
  p.num_patterns = 15;
  p.num_items = 30;
  p.seed = 11;
  const Database db = generate_quest(p);

  MinerOptions seq;
  seq.min_support = 0.05;
  seq.counter_mode = GetParam();
  seq.count_kernel = CountKernel::Flat;
  const MiningResult expect = mine_ccpd(db, seq);

  MinerOptions par = seq;
  par.threads = kThreads;
  par.parallel_candgen_threshold = 1;  // force the parallel build too
  const MiningResult got = mine_ccpd(db, par);

  std::string diag;
  EXPECT_TRUE(levels_equal(got.levels, expect.levels, &diag)) << diag;
}

INSTANTIATE_TEST_SUITE_P(CounterModes, FlatKernelEndToEndRace,
                         ::testing::Values(CounterMode::Atomic,
                                           CounterMode::Locked,
                                           CounterMode::PerThread),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           std::erase_if(name,
                                         [](char c) { return c == '-'; });
                           return name;
                         });

}  // namespace
}  // namespace smpmine
