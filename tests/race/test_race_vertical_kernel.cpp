// TSan-targeted vertical counting kernel: concurrent tid-bitmap builds
// over disjoint word partitions, multiple threads AND+popcount-counting
// into one FrozenTree's shared counters (atomic / locked / privatized +
// reduce), and the end-to-end CCPD race with the vertical kernel forced.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/brute_force.hpp"
#include "core/miner.hpp"
#include "data/quest_gen.hpp"
#include "hashtree/frozen_tree.hpp"
#include "hashtree/hash_tree.hpp"
#include "hashtree/vertical_index.hpp"
#include "itemset/itemset.hpp"

namespace smpmine {
namespace {

constexpr int kThreads = 4;

/// Tiny database where every transaction hits many candidates, maximizing
/// counter contention per unit of work.
Database dense_db() {
  Database db;
  for (int t = 0; t < 40; ++t) {
    std::vector<item_t> txn;
    for (item_t i = 0; i < 6; ++i) {
      txn.push_back(static_cast<item_t>((t + i) % 10));
    }
    db.add_transaction(txn);
  }
  return db;
}

std::vector<item_t> universe_items() {
  std::vector<item_t> items(10);
  for (item_t i = 0; i < 10; ++i) items[i] = i;
  return items;
}

/// Builds a k=2 tree over all pairs of the db's universe, then freezes it.
/// Build and freeze are sequential — the concurrent counting is under test.
struct FrozenFixture {
  explicit FrozenFixture(CounterMode mode)
      : arenas(PlacementPolicy::SPP),
        policy(HashScheme::Interleaved, 2),
        tree({.k = 2, .fanout = 2, .leaf_threshold = 2, .counter_mode = mode},
             policy, arenas),
        frozen([this] {
          for (const auto& pair : k_subsets(universe_items(), 2)) {
            tree.insert(pair);
          }
          return FrozenTree(tree, arenas);
        }()) {}
  PlacementArenas arenas;
  HashPolicy policy;
  HashTree tree;
  FrozenTree frozen;
};

/// Sequentially built index over the whole universe: one partition covers
/// every bitmap word.
struct IndexFixture {
  IndexFixture(const Database& db, PlacementArenas& arenas)
      : tracked(universe_items()), vidx(db, tracked, arenas) {
    vidx.build_partition(db, 0, 1);
  }
  std::vector<item_t> tracked;
  VerticalIndex vidx;
};

/// Every thread counts the whole slot range, so each slot's final support
/// must be exactly kThreads * (single-threaded support).
void stress_vertical_counters(CounterMode mode) {
  const Database db = dense_db();

  FrozenFixture reference(mode);
  IndexFixture ref_index(db, reference.arenas);
  {
    FlatCountContext ctx;
    reference.frozen.prepare_context(ctx);
    reference.frozen.count_slots_vertical(
        ref_index.vidx, 0, reference.frozen.num_candidates(), ctx);
    if (mode == CounterMode::PerThread) {
      reference.frozen.reduce_into_shared(
          ctx, 0, reference.frozen.num_candidates());
    }
  }

  FrozenFixture shared(mode);
  IndexFixture shared_index(db, shared.arenas);
  std::vector<FlatCountContext> contexts(kThreads);
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      FlatCountContext& ctx = contexts[w];
      shared.frozen.prepare_context(ctx);
      shared.frozen.count_slots_vertical(
          shared_index.vidx, 0, shared.frozen.num_candidates(), ctx);
    });
  }
  for (auto& w : workers) w.join();

  if (mode == CounterMode::PerThread) {
    // LCA reduction: threads take disjoint slot ranges, each summing every
    // context's privatized counts into the shared slot counter.
    const std::uint32_t n = shared.frozen.num_candidates();
    const std::uint32_t per = (n + kThreads - 1) / kThreads;
    std::vector<std::thread> reducers;
    for (int w = 0; w < kThreads; ++w) {
      reducers.emplace_back([&, w] {
        const std::uint32_t begin =
            std::min(n, static_cast<std::uint32_t>(w) * per);
        const std::uint32_t end = std::min(n, begin + per);
        for (const FlatCountContext& ctx : contexts) {
          shared.frozen.reduce_into_shared(ctx, begin, end);
        }
      });
    }
    for (auto& r : reducers) r.join();
  }

  const std::uint32_t n = shared.frozen.num_candidates();
  ASSERT_EQ(n, reference.frozen.num_candidates());
  for (std::uint32_t slot = 0; slot < n; ++slot) {
    ASSERT_EQ(shared.frozen.slot_count(slot),
              reference.frozen.slot_count(slot) * kThreads)
        << "slot " << slot;
  }
}

TEST(RaceVerticalKernel, AtomicIncrementsAreExact) {
  stress_vertical_counters(CounterMode::Atomic);
}

TEST(RaceVerticalKernel, LockedIncrementsAreExact) {
  stress_vertical_counters(CounterMode::Locked);
}

TEST(RaceVerticalKernel, PerThreadReductionIsExact) {
  stress_vertical_counters(CounterMode::PerThread);
}

/// The production pattern: threads own disjoint slot ranges, each writing
/// a slot's full support exactly once. Final counters must equal the
/// single-threaded reference exactly (no multiplication).
TEST(RaceVerticalKernel, DisjointSlotRangesMatchReference) {
  const Database db = dense_db();

  FrozenFixture reference(CounterMode::Atomic);
  IndexFixture ref_index(db, reference.arenas);
  {
    FlatCountContext ctx;
    reference.frozen.prepare_context(ctx);
    reference.frozen.count_slots_vertical(
        ref_index.vidx, 0, reference.frozen.num_candidates(), ctx);
  }

  FrozenFixture shared(CounterMode::Atomic);
  IndexFixture shared_index(db, shared.arenas);
  const std::uint32_t n = shared.frozen.num_candidates();
  const std::uint32_t per = (n + kThreads - 1) / kThreads;
  std::vector<FlatCountContext> contexts(kThreads);
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      const std::uint32_t begin =
          std::min(n, static_cast<std::uint32_t>(w) * per);
      const std::uint32_t end = std::min(n, begin + per);
      FlatCountContext& ctx = contexts[w];
      shared.frozen.prepare_context(ctx);
      shared.frozen.count_slots_vertical(shared_index.vidx, begin, end, ctx);
    });
  }
  for (auto& w : workers) w.join();

  for (std::uint32_t slot = 0; slot < n; ++slot) {
    ASSERT_EQ(shared.frozen.slot_count(slot),
              reference.frozen.slot_count(slot))
        << "slot " << slot;
  }
}

/// Word-partitioned concurrent bitmap build: kThreads builders each own a
/// disjoint word range of every row. The resulting counts must match an
/// index built by one thread.
TEST(RaceVerticalKernel, ParallelBuildMatchesSequentialBuild) {
  const Database db = dense_db();

  FrozenFixture reference(CounterMode::Atomic);
  IndexFixture ref_index(db, reference.arenas);
  {
    FlatCountContext ctx;
    reference.frozen.prepare_context(ctx);
    reference.frozen.count_slots_vertical(
        ref_index.vidx, 0, reference.frozen.num_candidates(), ctx);
  }

  FrozenFixture shared(CounterMode::Atomic);
  const std::vector<item_t> tracked = universe_items();
  VerticalIndex vidx(db, tracked, shared.arenas);
  {
    std::vector<std::thread> builders;
    for (int w = 0; w < kThreads; ++w) {
      builders.emplace_back([&, w] {
        vidx.build_partition(db, static_cast<std::uint32_t>(w), kThreads);
      });
    }
    for (auto& b : builders) b.join();
  }

  {
    FlatCountContext ctx;
    shared.frozen.prepare_context(ctx);
    shared.frozen.count_slots_vertical(vidx, 0,
                                       shared.frozen.num_candidates(), ctx);
  }

  const std::uint32_t n = shared.frozen.num_candidates();
  ASSERT_EQ(n, reference.frozen.num_candidates());
  for (std::uint32_t slot = 0; slot < n; ++slot) {
    ASSERT_EQ(shared.frozen.slot_count(slot),
              reference.frozen.slot_count(slot))
        << "slot " << slot;
  }
}

class VerticalKernelEndToEndRace
    : public ::testing::TestWithParam<CounterMode> {};

TEST_P(VerticalKernelEndToEndRace, ParallelVerticalMatchesSequential) {
  QuestParams p;
  p.num_transactions = 150;
  p.avg_transaction_len = 8.0;
  p.avg_pattern_len = 3.0;
  p.num_patterns = 15;
  p.num_items = 30;
  p.seed = 11;
  const Database db = generate_quest(p);

  MinerOptions seq;
  seq.min_support = 0.05;
  seq.counter_mode = GetParam();
  seq.count_kernel = CountKernel::Vertical;
  const MiningResult expect = mine_ccpd(db, seq);

  MinerOptions par = seq;
  par.threads = kThreads;
  par.parallel_candgen_threshold = 1;  // force the parallel build too
  const MiningResult got = mine_ccpd(db, par);

  std::string diag;
  EXPECT_TRUE(levels_equal(got.levels, expect.levels, &diag)) << diag;
}

INSTANTIATE_TEST_SUITE_P(CounterModes, VerticalKernelEndToEndRace,
                         ::testing::Values(CounterMode::Atomic,
                                           CounterMode::Locked,
                                           CounterMode::PerThread),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           std::erase_if(name,
                                         [](char c) { return c == '-'; });
                           return name;
                         });

}  // namespace
}  // namespace smpmine
