// TSan: the telemetry sampler reads live ledger shards, the metrics
// registry, and the flight high-water table while miner threads write all
// three. The ledger cells are relaxed atomics with a documented
// single-writer/concurrent-reader protocol — this test is how that claim
// is enforced rather than asserted: a 1ms sampler (two orders hotter than
// the documented default) races full CCPD and PCCD mines at 4 threads.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/miner.hpp"
#include "data/quest_gen.hpp"
#include "obs/json_writer.hpp"
#include "obs/ledger/telemetry.hpp"

namespace smpmine {
namespace {

TEST(RaceTelemetry, SamplerRacesMiners) {
  QuestParams p;
  p.num_transactions = 6000;
  p.avg_transaction_len = 10.0;
  p.num_items = 150;
  p.seed = 7;
  const Database db = generate_quest(p);

  const std::string path =
      ::testing::TempDir() + "/smpmine_race_telemetry.jsonl";
  std::remove(path.c_str());
  obs::ledger::TelemetryOptions topts;
  topts.period_ms = 1;
  topts.path = path;
  ASSERT_TRUE(obs::ledger::start(topts));

  std::uint64_t frequent = 0;
  for (const Algorithm algo : {Algorithm::CCPD, Algorithm::PCCD}) {
    MinerOptions opts;
    opts.min_support = 0.01;
    opts.threads = 4;
    opts.algorithm = algo;
    const MiningResult r = mine(db, opts);
    // Functional result is unaffected by the concurrent sampling.
    if (frequent == 0) {
      frequent = r.total_frequent();
    } else {
      EXPECT_EQ(r.total_frequent(), frequent);
    }
    EXPECT_FALSE(r.run_ledger.empty());
  }

  obs::ledger::stop();
  EXPECT_GE(obs::ledger::records_written(), 2u);

  // Every emitted line is a complete JSON document even though the
  // sampled state was moving underneath.
  std::ifstream is(path);
  ASSERT_TRUE(is.is_open());
  std::string line;
  std::uint64_t lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    EXPECT_TRUE(obs::json_valid(line)) << "line " << lines;
  }
  EXPECT_EQ(lines, obs::ledger::records_written());
}

}  // namespace
}  // namespace smpmine
