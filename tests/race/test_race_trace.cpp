// TSan-targeted stress over the observability layer: many threads hammer
// trace emission and metric increments while another thread concurrently
// exports — exactly the publication protocol ThreadTraceBuffer's
// release/acquire size_ is supposed to make race-free (the exporter may
// read a prefix of a live buffer, never a torn event).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace smpmine::obs {
namespace {

TEST(RaceTrace, ConcurrentEmitAndExport) {
  if (!kTraceCompiled) GTEST_SKIP() << "built with SMPMINE_TRACING=OFF";
  constexpr int kEmitters = 8;
  constexpr int kEventsPerEmitter = 4000;

  Tracer& tracer = Tracer::instance();
  tracer.reset();
  tracer.set_capacity(kEventsPerEmitter);  // exact fit: no drops expected
  tracer.set_enabled(true);

  Counter& hammered = MetricsRegistry::instance().counter("race.trace.hits");
  hammered.reset();

  std::atomic<bool> emitting{true};
  std::vector<std::thread> threads;
  threads.reserve(kEmitters + 1);
  for (int t = 0; t < kEmitters; ++t) {
    threads.emplace_back([t, &hammered] {
      set_current_thread_name("hammer " + std::to_string(t));
      for (int i = 0; i < kEventsPerEmitter; ++i) {
        if (i % 2 == 0) {
          SMPMINE_TRACE_SPAN_ARG("race.span", "i", i);
        } else {
          SMPMINE_TRACE_INSTANT("race.instant");
        }
        hammered.inc();
      }
    });
  }
  // Concurrent exporter: reads live buffers while emitters publish. Every
  // event it sees must be fully written (release/acquire on size_).
  threads.emplace_back([&emitting, &tracer] {
    while (emitting.load(std::memory_order_relaxed)) {
      std::uint64_t seen = 0;
      tracer.for_each_event([&seen](std::uint32_t, std::string_view,
                                    const TraceEvent& ev) {
        ASSERT_NE(ev.name, nullptr);
        ASSERT_NE(ev.name[0], '\0');
        ++seen;
      });
      std::ostringstream os;
      tracer.write_chrome_trace(os);
      ASSERT_TRUE(json_valid(os.str()));
      (void)seen;
    }
  });

  for (int t = 0; t < kEmitters; ++t) threads[t].join();
  emitting.store(false, std::memory_order_relaxed);
  threads.back().join();

  // set_thread_name registers each emitter's buffer before its first event,
  // so the exact-fit capacity holds every event: none dropped, all visible.
  EXPECT_EQ(hammered.value(),
            static_cast<std::uint64_t>(kEmitters) * kEventsPerEmitter);
  EXPECT_EQ(tracer.dropped_total(), 0u);
  std::uint64_t total = 0;
  tracer.for_each_event(
      [&total](std::uint32_t, std::string_view, const TraceEvent&) {
        ++total;
      });
  EXPECT_EQ(total,
            static_cast<std::uint64_t>(kEmitters) * kEventsPerEmitter);

  tracer.set_enabled(false);
  tracer.reset();
}

TEST(RaceTrace, ConcurrentRegistrationAndReset) {
  if (!kTraceCompiled) GTEST_SKIP() << "built with SMPMINE_TRACING=OFF";
  // Threads whose first-ever emission races the others': exercises the
  // enabled() fast path and lazy buffer registration under contention.
  Tracer& tracer = Tracer::instance();
  tracer.reset();
  tracer.set_capacity(1u << 10);
  tracer.set_enabled(true);

  constexpr int kThreads = 8;
  std::atomic<int> started{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&started] {
      started.fetch_add(1, std::memory_order_relaxed);
      for (int i = 0; i < 1000; ++i) {
        SMPMINE_TRACE_INSTANT("race.reg");
        if (i % 128 == 0) std::this_thread::yield();
      }
    });
  }
  while (started.load(std::memory_order_relaxed) < kThreads) {
    std::this_thread::yield();
  }
  for (auto& th : threads) th.join();

  std::uint64_t total = 0;
  tracer.for_each_event(
      [&total](std::uint32_t, std::string_view, const TraceEvent&) {
        ++total;
      });
  EXPECT_EQ(total + tracer.dropped_total(),
            static_cast<std::uint64_t>(kThreads) * 1000);

  tracer.set_enabled(false);
  tracer.reset();
}

}  // namespace
}  // namespace smpmine::obs
