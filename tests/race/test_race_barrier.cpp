// TSan-targeted Barrier stress: the sense-reversing protocol must give a
// happens-before edge from every pre-barrier write to every post-barrier
// read. All cross-thread traffic here is over plain (non-atomic) slots, so
// a broken barrier is a TSan report and usually also a wrong checksum.
#include "parallel/barrier.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace smpmine {
namespace {

constexpr std::uint32_t kThreads = 4;

TEST(RaceBarrier, PhaseWritesVisibleAfterBarrier) {
  // Round r: each thread writes slot[tid] = r*tid, barrier, then every
  // thread sums ALL slots (plain reads of other threads' writes).
  constexpr int kRounds = 200;
  Barrier barrier(kThreads);
  std::vector<std::uint64_t> slots(kThreads, 0);
  std::vector<std::thread> workers;
  for (std::uint32_t tid = 0; tid < kThreads; ++tid) {
    workers.emplace_back([&, tid] {
      for (int r = 1; r <= kRounds; ++r) {
        slots[tid] = static_cast<std::uint64_t>(r) * tid;
        barrier.arrive_and_wait();
        std::uint64_t sum = 0;
        for (const auto s : slots) sum += s;
        const std::uint64_t expect =
            static_cast<std::uint64_t>(r) * (kThreads * (kThreads - 1)) / 2;
        ASSERT_EQ(sum, expect) << "round " << r << " tid " << tid;
        // Second barrier: nobody may start writing round r+1 before every
        // thread finished reading round r.
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& w : workers) w.join();
}

TEST(RaceBarrier, SenseReversalSurvivesManyGenerations) {
  // >= 3 generations back-to-back with no reinitialization; each generation
  // ping-pongs a plain token between producer and the rest.
  constexpr int kGenerations = 500;
  Barrier barrier(kThreads);
  std::uint64_t token = 0;  // written by thread 0 only, read by everyone
  std::vector<std::thread> workers;
  for (std::uint32_t tid = 0; tid < kThreads; ++tid) {
    workers.emplace_back([&, tid] {
      for (int g = 1; g <= kGenerations; ++g) {
        if (tid == 0) token = static_cast<std::uint64_t>(g) * 31;
        barrier.arrive_and_wait();
        ASSERT_EQ(token, static_cast<std::uint64_t>(g) * 31);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& w : workers) w.join();
}

TEST(RaceBarrier, ThreadPoolBarrierInsideSpmd) {
  // The pool's shared barrier, as CCPD uses it: phase 1 writes, barrier,
  // phase 2 reads a neighbour's phase-1 value.
  constexpr int kRounds = 100;
  ThreadPool pool(kThreads);
  std::vector<std::uint64_t> produced(pool.size(), 0);
  std::vector<std::uint64_t> consumed(pool.size(), 0);
  for (int r = 1; r <= kRounds; ++r) {
    pool.run_spmd([&, r](std::uint32_t tid) {
      produced[tid] = static_cast<std::uint64_t>(r) + tid;
      pool.barrier().arrive_and_wait();
      const std::uint32_t neighbour = (tid + 1) % pool.size();
      consumed[tid] = produced[neighbour];
    });
    for (std::uint32_t tid = 0; tid < pool.size(); ++tid) {
      const std::uint32_t neighbour = (tid + 1) % pool.size();
      ASSERT_EQ(consumed[tid], static_cast<std::uint64_t>(r) + neighbour);
    }
  }
}

}  // namespace
}  // namespace smpmine
