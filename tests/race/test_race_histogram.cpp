// TSan-targeted stress over Histogram: many threads record into their own
// shards while another thread repeatedly merges snapshots and a third
// resets mid-flight. The shard cells are relaxed atomics owned by one
// writer each; TSan must see no data race, and after joining the final
// snapshot must account for every sample exactly once.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace smpmine::obs {
namespace {

TEST(RaceHistogram, ConcurrentRecordAndSnapshot) {
  constexpr int kRecorders = 8;
  constexpr int kPerThread = 50000;
  Histogram h;

  std::atomic<bool> recording{true};
  std::vector<std::thread> threads;
  threads.reserve(kRecorders + 1);
  for (int t = 0; t < kRecorders; ++t) {
    threads.emplace_back([t, &h] {
      HistogramShard& shard = h.local_shard();
      for (int i = 0; i < kPerThread; ++i) {
        shard.record(static_cast<std::uint64_t>(i % (1 << (t + 1))));
      }
    });
  }
  // Concurrent merger: snapshots while recorders publish. Any observed
  // prefix is valid; count must never exceed the final total and the
  // internal invariant count == sum(buckets) must hold in every snapshot.
  threads.emplace_back([&recording, &h] {
    constexpr std::uint64_t kTotal =
        static_cast<std::uint64_t>(kRecorders) * kPerThread;
    while (recording.load()) {
      const HistogramSummary s = h.snapshot();
      std::uint64_t from_buckets = 0;
      for (const std::uint64_t b : s.buckets) from_buckets += b;
      ASSERT_EQ(s.count, from_buckets);
      ASSERT_LE(s.count, kTotal);
    }
  });
  for (int t = 0; t < kRecorders; ++t) threads[t].join();
  recording.store(false);
  threads.back().join();

  const HistogramSummary s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kRecorders) * kPerThread);
}

TEST(RaceHistogram, ResetUnderFire) {
  constexpr int kRecorders = 4;
  constexpr int kPerThread = 50000;
  Histogram h;

  std::atomic<bool> recording{true};
  std::vector<std::thread> threads;
  threads.reserve(kRecorders + 1);
  for (int t = 0; t < kRecorders; ++t) {
    threads.emplace_back([&h] {
      HistogramShard& shard = h.local_shard();
      for (int i = 0; i < kPerThread; ++i) {
        shard.record(static_cast<std::uint64_t>(i));
      }
    });
  }
  // Reset storms while recorders run: records may land on either side of a
  // reset (documented, same as Counter::reset), but nothing may tear and
  // shard references must stay valid throughout.
  threads.emplace_back([&recording, &h] {
    while (recording.load()) h.reset();
  });
  for (int t = 0; t < kRecorders; ++t) threads[t].join();
  recording.store(false);
  threads.back().join();

  // With all recorders joined, a final reset drains everything.
  h.reset();
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST(RaceHistogram, WellKnownAccessorFromManyThreads) {
  // The accessor macro path: function-local static + thread_local shard
  // registration racing across threads, recording into the registry-owned
  // histogram the manifest exporter snapshots.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  const std::uint64_t before = MetricsRegistry::instance()
                                   .histogram("spinlock.spin_rounds")
                                   .snapshot()
                                   .count;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        metric::spinlock_spin_rounds().record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  const std::uint64_t after = MetricsRegistry::instance()
                                  .histogram("spinlock.spin_rounds")
                                  .snapshot()
                                  .count;
  EXPECT_EQ(after - before,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace smpmine::obs
