// TSan-targeted stress over the distmem channel: every node floods every
// other node's mailbox while readers drain and a stats() poller sums the
// per-sender meters mid-flight. This is exactly what the lock-free metering
// rework has to survive — the old design took one Cluster-wide mutex in
// send(), so nothing could race; now the meter is per-sender relaxed
// atomics and TSan checks the partitioning claim.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "distmem/channel.hpp"

namespace smpmine {
namespace {

TEST(RaceChannel, ConcurrentSendersReceiversAndStatsPoller) {
  constexpr std::uint32_t kNodes = 8;
  constexpr std::uint32_t kMessagesPerPair = 200;
  constexpr std::size_t kPayloadBytes = 24;

  Cluster cluster(kNodes);
  ASSERT_EQ(cluster.size(), kNodes);

  std::atomic<bool> sending{true};
  std::vector<std::thread> threads;
  threads.reserve(2 * kNodes + 1);

  // Every node sends kMessagesPerPair payloads to every *other* node —
  // many concurrent senders also share a target mailbox.
  for (std::uint32_t from = 0; from < kNodes; ++from) {
    threads.emplace_back([&cluster, from] {
      for (std::uint32_t round = 0; round < kMessagesPerPair; ++round) {
        for (std::uint32_t to = 0; to < kNodes; ++to) {
          if (to == from) continue;
          std::vector<std::byte> payload(kPayloadBytes,
                                         std::byte{static_cast<unsigned char>(
                                             from)});
          cluster.send(from, to, /*tag=*/round, std::move(payload));
        }
      }
    });
  }
  // Each node drains its own mailbox (Mailbox is MPSC).
  std::vector<std::uint64_t> received_bytes(kNodes, 0);
  for (std::uint32_t node = 0; node < kNodes; ++node) {
    threads.emplace_back([&cluster, &received_bytes, node] {
      const std::uint32_t expect = (kNodes - 1) * kMessagesPerPair;
      for (std::uint32_t i = 0; i < expect; ++i) {
        const Message m = cluster.receive(node);
        EXPECT_NE(m.from, node);
        received_bytes[node] += m.payload.size();
      }
    });
  }
  // Concurrent stats() reads: totals may be stale but never torn, and never
  // exceed the final tally.
  constexpr std::uint64_t kTotalMessages =
      static_cast<std::uint64_t>(kNodes) * (kNodes - 1) * kMessagesPerPair;
  threads.emplace_back([&cluster, &sending, kTotalMessages, kPayloadBytes] {
    while (sending.load(std::memory_order_relaxed)) {
      // No messages==bytes/payload invariant mid-flight: the two meters
      // are separate relaxed counters, so a poll can land between them.
      const CommStats mid = cluster.stats();
      ASSERT_LE(mid.messages, kTotalMessages);
      ASSERT_LE(mid.bytes, kTotalMessages * kPayloadBytes);
      std::this_thread::yield();
    }
  });

  for (std::uint32_t t = 0; t < 2 * kNodes; ++t) threads[t].join();
  sending.store(false, std::memory_order_relaxed);
  threads.back().join();

  const CommStats final_stats = cluster.stats();
  EXPECT_EQ(final_stats.messages, kTotalMessages);
  EXPECT_EQ(final_stats.bytes, kTotalMessages * kPayloadBytes);
  std::uint64_t drained = 0;
  for (const std::uint64_t b : received_bytes) drained += b;
  EXPECT_EQ(drained, kTotalMessages * kPayloadBytes);
}

}  // namespace
}  // namespace smpmine
