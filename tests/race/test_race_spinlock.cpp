// TSan-targeted SpinLock stress: short, high-contention scenarios over
// deliberately NON-atomic shared state, so any hole in the lock's
// acquire/release protocol shows up as a data-race report. Run via the
// `tsan` preset (ctest -L race); in uninstrumented builds these double as
// mutual-exclusion checks.
#include "parallel/spinlock.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace smpmine {
namespace {

constexpr int kThreads = 4;

TEST(RaceSpinLock, ContendedIncrementsArePublished) {
  SpinLock lock;
  std::uint64_t counter = 0;  // plain; the lock is the only protection
  constexpr int kIters = 4000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        SpinLockGuard guard(lock);
        ++counter;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(RaceSpinLock, TryLockSuccessesAreMutuallyExclusive) {
  SpinLock lock;
  std::uint64_t shared = 0;          // written only after a try_lock success
  std::vector<std::uint64_t> wins(kThreads, 0);
  constexpr int kAttempts = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kAttempts; ++i) {
        if (lock.try_lock()) {
          ++shared;
          ++wins[t];
          lock.unlock();
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  std::uint64_t total = 0;
  for (const auto w : wins) total += w;
  EXPECT_EQ(shared, total);
  EXPECT_GT(total, 0u);
}

TEST(RaceSpinLock, HandoffPublishesGuardedWrites) {
  // Writer fills a payload under the lock; readers snapshot it under the
  // lock and must never observe a torn mix of generations.
  struct Payload {
    std::uint64_t a = 0, b = 0;
  };
  SpinLock lock;
  Payload payload;
  bool done = false;
  constexpr int kRounds = 3000;

  std::thread writer([&] {
    for (int r = 1; r <= kRounds; ++r) {
      SpinLockGuard guard(lock);
      payload.a = static_cast<std::uint64_t>(r);
      payload.b = static_cast<std::uint64_t>(r) * 2;
    }
    SpinLockGuard guard(lock);
    done = true;
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads - 1; ++t) {
    readers.emplace_back([&] {
      for (;;) {
        Payload snap;
        bool stop;
        {
          SpinLockGuard guard(lock);
          snap = payload;
          stop = done;
        }
        ASSERT_EQ(snap.b, snap.a * 2);
        if (stop) return;
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(payload.a, static_cast<std::uint64_t>(kRounds));
}

TEST(RaceSpinLock, PaddedLockArrayStriping) {
  // Per-slot PaddedSpinLock guarding a per-slot plain counter — the
  // fine-grained pattern the hash tree uses per node, minus the tree.
  constexpr int kSlots = 8;
  constexpr int kIters = 3000;
  std::vector<PaddedSpinLock> locks(kSlots);
  std::vector<std::uint64_t> counts(kSlots, 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const int slot = (t + i) % kSlots;  // all threads visit all slots
        locks[slot].lock_acquire();
        ++counts[slot];
        locks[slot].unlock_release();
      }
    });
  }
  for (auto& w : workers) w.join();
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace smpmine
