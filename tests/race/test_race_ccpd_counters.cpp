// TSan-targeted shared support counters: every CounterMode's update
// discipline (atomic increments, per-candidate spinlocks, privatized
// accumulators + disjoint-range reduction), both in isolation against the
// shared hash tree and end-to-end through mine_ccpd's bulk-synchronous
// iteration over the ThreadPool.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/brute_force.hpp"
#include "core/miner.hpp"
#include "data/quest_gen.hpp"
#include "hashtree/hash_tree.hpp"
#include "itemset/itemset.hpp"

namespace smpmine {
namespace {

constexpr int kThreads = 4;

/// Tiny database where every transaction hits many candidates, maximizing
/// counter contention per unit of work.
Database dense_db() {
  Database db;
  for (int t = 0; t < 40; ++t) {
    // Overlapping windows over a 10-item universe.
    std::vector<item_t> txn;
    for (item_t i = 0; i < 6; ++i) {
      txn.push_back(static_cast<item_t>((t + i) % 10));
    }
    db.add_transaction(txn);
  }
  return db;
}

/// Builds a k=2 tree over all pairs of the db's universe (sequentially —
/// counting, not building, is under test here).
struct TreeFixture {
  explicit TreeFixture(CounterMode mode)
      : arenas(PlacementPolicy::SPP),
        policy(HashScheme::Interleaved, 2),
        tree({.k = 2, .fanout = 2, .leaf_threshold = 2, .counter_mode = mode},
             policy, arenas) {
    std::vector<item_t> base(10);
    for (item_t i = 0; i < 10; ++i) base[i] = i;
    for (const auto& pair : k_subsets(base, 2)) tree.insert(pair);
    if (mode == CounterMode::PerThread) {
      tree.candidate_index();  // must be materialized before parallel use
    }
  }
  PlacementArenas arenas;
  HashPolicy policy;
  HashTree tree;
};

std::vector<count_t> snapshot_counts(const HashTree& tree) {
  std::vector<count_t> counts(tree.num_candidates(), 0);
  tree.for_each_candidate(
      [&](const Candidate& cand) { counts[cand.id] = *cand.count; });
  return counts;
}

/// Every thread counts the whole database, so each candidate's final
/// support must be exactly kThreads * (single-threaded support).
void stress_shared_counters(CounterMode mode) {
  const Database db = dense_db();

  TreeFixture reference(mode);
  {
    CountContext ctx = reference.tree.make_context(SubsetCheck::FrameLocal);
    for (std::size_t t = 0; t < db.size(); ++t) {
      reference.tree.count_transaction(db.transaction(t), ctx);
    }
    if (mode == CounterMode::PerThread) {
      reference.tree.reduce_into_shared(ctx, 0,
                                        reference.tree.num_candidates());
    }
  }
  const std::vector<count_t> expected = snapshot_counts(reference.tree);

  TreeFixture shared(mode);
  std::vector<CountContext> contexts(kThreads);
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      CountContext ctx = shared.tree.make_context(SubsetCheck::FrameLocal);
      for (std::size_t t = 0; t < db.size(); ++t) {
        shared.tree.count_transaction(db.transaction(t), ctx);
      }
      contexts[w] = std::move(ctx);
    });
  }
  for (auto& w : workers) w.join();

  if (mode == CounterMode::PerThread) {
    // LCA reduction: threads take disjoint candidate-id ranges, each
    // summing every context's privatized counts into the shared counter.
    const std::uint32_t n = shared.tree.num_candidates();
    const std::uint32_t per = (n + kThreads - 1) / kThreads;
    std::vector<std::thread> reducers;
    for (int w = 0; w < kThreads; ++w) {
      reducers.emplace_back([&, w] {
        const std::uint32_t begin =
            std::min(n, static_cast<std::uint32_t>(w) * per);
        const std::uint32_t end = std::min(n, begin + per);
        for (const CountContext& ctx : contexts) {
          shared.tree.reduce_into_shared(ctx, begin, end);
        }
      });
    }
    for (auto& r : reducers) r.join();
  }

  const std::vector<count_t> got = snapshot_counts(shared.tree);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t id = 0; id < got.size(); ++id) {
    ASSERT_EQ(got[id], expected[id] * kThreads) << "candidate " << id;
  }
}

TEST(RaceCcpdCounters, AtomicIncrementsAreExact) {
  stress_shared_counters(CounterMode::Atomic);
}

TEST(RaceCcpdCounters, LockedIncrementsAreExact) {
  stress_shared_counters(CounterMode::Locked);
}

TEST(RaceCcpdCounters, PerThreadReductionIsExact) {
  stress_shared_counters(CounterMode::PerThread);
}

class CcpdEndToEndRace : public ::testing::TestWithParam<CounterMode> {};

TEST_P(CcpdEndToEndRace, ParallelMatchesSequential) {
  QuestParams p;
  p.num_transactions = 150;
  p.avg_transaction_len = 8.0;
  p.avg_pattern_len = 3.0;
  p.num_patterns = 15;
  p.num_items = 30;
  p.seed = 11;
  const Database db = generate_quest(p);

  MinerOptions seq;
  seq.min_support = 0.05;
  seq.counter_mode = GetParam();
  const MiningResult expect = mine_ccpd(db, seq);

  MinerOptions par = seq;
  par.threads = kThreads;
  par.parallel_candgen_threshold = 1;  // force the parallel build too
  const MiningResult got = mine_ccpd(db, par);

  std::string diag;
  EXPECT_TRUE(levels_equal(got.levels, expect.levels, &diag)) << diag;
}

INSTANTIATE_TEST_SUITE_P(CounterModes, CcpdEndToEndRace,
                         ::testing::Values(CounterMode::Atomic,
                                           CounterMode::Locked,
                                           CounterMode::PerThread),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           std::erase_if(name,
                                         [](char c) { return c == '-'; });
                           return name;
                         });

}  // namespace
}  // namespace smpmine
