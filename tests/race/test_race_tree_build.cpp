// TSan-targeted parallel hash-tree build: concurrent inserts with a tiny
// leaf threshold force constant leaf->internal conversions, which is the
// delicate window — one thread splitting a node while others descend past
// it on the lock-free read path (paper Section 3.1.4). Any flaw in the
// per-node lock discipline or the release-publish of `children` is a TSan
// report here.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "alloc/region.hpp"
#include "hashtree/hash_tree.hpp"
#include "itemset/itemset.hpp"

namespace smpmine {
namespace {

constexpr int kThreads = 4;

std::vector<std::vector<item_t>> all_combos(item_t universe, std::size_t k) {
  std::vector<item_t> base(universe);
  for (item_t i = 0; i < universe; ++i) base[i] = i;
  return k_subsets(base, k);
}

std::set<std::vector<item_t>> tree_contents(const HashTree& tree) {
  std::set<std::vector<item_t>> out;
  tree.for_each_candidate([&](const Candidate& cand) {
    const auto view = cand.view(tree.k());
    out.insert(std::vector<item_t>(view.begin(), view.end()));
  });
  return out;
}

/// Concurrent build with maximal split pressure; verified against a
/// sequential build of the same candidate set.
void stress_build(PlacementPolicy placement, CounterMode counter_mode) {
  const auto combos = all_combos(11, 3);  // 165 candidates
  const HashPolicy policy(HashScheme::Interleaved, 2);
  const HashTreeConfig config{
      .k = 3, .fanout = 2, .leaf_threshold = 1, .counter_mode = counter_mode};

  PlacementArenas seq_arenas(placement);
  HashTree seq_tree(config, policy, seq_arenas);
  for (const auto& c : combos) seq_tree.insert(c);

  // A few repetitions to widen the window for convert-while-descending
  // interleavings; each round is an independent tree.
  for (int round = 0; round < 3; ++round) {
    PlacementArenas arenas(placement);
    HashTree tree(config, policy, arenas);
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (std::size_t i = t; i < combos.size(); i += kThreads) {
          tree.insert(combos[i]);
        }
      });
    }
    for (auto& w : workers) w.join();

    ASSERT_EQ(tree.num_candidates(), combos.size());
    ASSERT_EQ(tree_contents(tree), tree_contents(seq_tree));
    const TreeStats stats = tree.stats();
    ASSERT_GT(stats.internal_nodes, 0u) << "no conversions — no contention";
  }
}

TEST(RaceTreeBuild, ConcurrentSplitsSppAtomic) {
  stress_build(PlacementPolicy::SPP, CounterMode::Atomic);
}

TEST(RaceTreeBuild, ConcurrentSplitsSppLocked) {
  stress_build(PlacementPolicy::SPP, CounterMode::Locked);
}

TEST(RaceTreeBuild, ConcurrentSplitsMallocAtomic) {
  stress_build(PlacementPolicy::Malloc, CounterMode::Atomic);
}

TEST(RaceTreeBuild, ConcurrentSplitsLppAtomic) {
  // LPP co-reserves node+header and listnode+itemset blocks — the layout
  // where adjacent allocations from different threads share cache lines.
  stress_build(PlacementPolicy::LPP, CounterMode::Atomic);
}

TEST(RaceTreeBuild, SharedArenaAllocationUnderContention) {
  // The arenas themselves are shared mutable state under the build; hammer
  // one Region from all threads and check the bump-pointer bookkeeping.
  Region region(1u << 12);  // small chunks force frequent grow()
  constexpr int kAllocs = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kAllocs; ++i) {
        auto* p = static_cast<std::uint32_t*>(
            region.alloc(sizeof(std::uint32_t), alignof(std::uint32_t)));
        *p = static_cast<std::uint32_t>(t);  // private once returned
        ASSERT_EQ(*p, static_cast<std::uint32_t>(t));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(region.stats().allocations,
            static_cast<std::uint64_t>(kThreads) * kAllocs);
}

}  // namespace
}  // namespace smpmine
