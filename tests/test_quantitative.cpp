#include "quant/quantitative.hpp"

#include <gtest/gtest.h>

#include "core/brute_force.hpp"

namespace smpmine {
namespace {

/// The S&A'96 style toy: age (numeric), married (categorical 0/1),
/// cars (categorical 0/1/2).
QuantTable people() {
  QuantTable table({{"age", AttrKind::Numeric, 2},
                    {"married", AttrKind::Categorical},
                    {"cars", AttrKind::Categorical}});
  table.add_row(std::vector<double>{23, 0, 1});
  table.add_row(std::vector<double>{25, 1, 1});
  table.add_row(std::vector<double>{29, 0, 0});
  table.add_row(std::vector<double>{34, 1, 2});
  table.add_row(std::vector<double>{38, 1, 2});
  return table;
}

TEST(QuantTable, ShapeChecks) {
  QuantTable t = people();
  EXPECT_EQ(t.num_rows(), 5u);
  EXPECT_EQ(t.num_attributes(), 3u);
  EXPECT_DOUBLE_EQ(t.value(3, 0), 34.0);
  EXPECT_THROW(t.add_row(std::vector<double>{1, 2}), std::invalid_argument);
  EXPECT_THROW(QuantTable({}), std::invalid_argument);
}

TEST(Discretize, CategoricalOneItemPerValue) {
  const QuantMapping m = discretize(people());
  // married: values {0,1} -> 2 items; cars: {0,1,2} -> 3 items.
  int married_items = 0, cars_items = 0;
  for (const QuantItem& item : m.items()) {
    if (item.attribute == 1) ++married_items;
    if (item.attribute == 2) ++cars_items;
  }
  EXPECT_EQ(married_items, 2);
  EXPECT_EQ(cars_items, 3);
}

TEST(Discretize, EquiDepthBasesAreDisjointAndCover) {
  const QuantTable t = people();
  const QuantMapping m = discretize(t);
  // age with 2 intervals over {23,25,29,34,38}: [23,25] and [29,38].
  std::vector<QuantItem> bases;
  for (const QuantItem& item : m.items()) {
    if (item.attribute == 0 && item.is_base) bases.push_back(item);
  }
  ASSERT_EQ(bases.size(), 2u);
  EXPECT_DOUBLE_EQ(bases[0].lo, 23.0);
  EXPECT_DOUBLE_EQ(bases[0].hi, 25.0);
  EXPECT_DOUBLE_EQ(bases[1].lo, 29.0);
  EXPECT_DOUBLE_EQ(bases[1].hi, 38.0);
}

TEST(Discretize, TiesNeverStraddleBoundaries) {
  QuantTable t({{"x", AttrKind::Numeric, 3}});
  for (const double v : {1.0, 1.0, 1.0, 1.0, 2.0, 3.0}) {
    t.add_row(std::vector<double>{v});
  }
  const QuantMapping m = discretize(t);
  for (const QuantItem& a : m.items()) {
    if (!a.is_base) continue;
    for (const QuantItem& b : m.items()) {
      if (!b.is_base || &a == &b) continue;
      EXPECT_TRUE(a.hi < b.lo || b.hi < a.lo)
          << "[" << a.lo << "," << a.hi << "] vs [" << b.lo << "," << b.hi
          << "]";
    }
  }
}

TEST(Discretize, MergedRangesRespectSupportCap) {
  QuantTable t({{"x", AttrKind::Numeric, 4}});
  for (int v = 0; v < 100; ++v) t.add_row(std::vector<double>{double(v)});
  const QuantMapping strict = discretize(t, 0.5);
  const QuantMapping loose = discretize(t, 1.1);
  auto ranges = [](const QuantMapping& m) {
    int n = 0;
    for (const QuantItem& item : m.items()) n += !item.is_base;
    return n;
  };
  // 4 equi-depth bases of 25 rows: cap 0.5 permits only single merges
  // (50 rows == cap fails the < test), so 3 ranges; uncapped allows all
  // C(4,2) = 6 consecutive ranges.
  EXPECT_EQ(ranges(strict), 3);
  EXPECT_EQ(ranges(loose), 6);
}

TEST(ToBoolean, RowGetsBaseAndCoveringRanges) {
  const QuantTable t = people();
  const QuantMapping m = discretize(t, 1.1);  // keep all ranges
  const Database db = to_boolean(t, m);
  ASSERT_EQ(db.size(), 5u);
  // Row 0 (age 23): base [23,25], the merged [23,38] range, married=0,
  // cars=1 -> 4 items.
  EXPECT_EQ(db.transaction_size(0), 4u);
}

TEST(Describe, RendersAttributeTerms) {
  const QuantTable t = people();
  const QuantMapping m = discretize(t);
  bool saw_range = false, saw_cat = false;
  for (item_t id = 0; id < m.universe(); ++id) {
    const std::string s = m.describe(id, t);
    if (s.find("age in [") != std::string::npos) saw_range = true;
    if (s.find("married = ") != std::string::npos) saw_cat = true;
  }
  EXPECT_TRUE(saw_range);
  EXPECT_TRUE(saw_cat);
}

TEST(MineQuantitative, FindsThePlantedRule) {
  // 200 rows: age >= 30 implies cars = 2, younger implies cars <= 1.
  QuantTable t({{"age", AttrKind::Numeric, 2},
                {"cars", AttrKind::Categorical}});
  for (int r = 0; r < 100; ++r) {
    t.add_row(std::vector<double>{20.0 + r % 10, r % 2 ? 1.0 : 0.0});
  }
  for (int r = 0; r < 100; ++r) {
    t.add_row(std::vector<double>{30.0 + r % 10, 2.0});
  }
  MinerOptions opts;
  opts.min_support = 0.2;
  opts.min_confidence = 0.9;
  const auto rules = mine_quantitative(t, opts);
  bool found = false;
  for (const QuantRule& rule : rules) {
    if (rule.text.find("age in [30, 39] => cars = 2") != std::string::npos) {
      found = true;
      EXPECT_GE(rule.confidence, 0.99);
      EXPECT_DOUBLE_EQ(rule.support, 0.5);
    }
  }
  EXPECT_TRUE(found) << "planted rule not mined";
}

TEST(MineQuantitative, NoSameAttributeItemsets) {
  QuantTable t({{"x", AttrKind::Numeric, 4}});
  for (int v = 0; v < 50; ++v) t.add_row(std::vector<double>{double(v % 10)});
  MinerOptions opts;
  opts.min_support = 0.05;
  opts.min_confidence = 0.0;
  // Single attribute => every multi-item candidate is same-attribute and
  // vetoed => no rules at all.
  EXPECT_TRUE(mine_quantitative(t, opts).empty());
}

TEST(MineQuantitative, MatchesBruteForceModuloVeto) {
  QuantTable t({{"a", AttrKind::Numeric, 3},
                {"b", AttrKind::Categorical}});
  for (int r = 0; r < 120; ++r) {
    t.add_row(std::vector<double>{double(r % 12), double(r % 3)});
  }
  const QuantMapping m = discretize(t, 0.6);
  const Database db = to_boolean(t, m);
  MinerOptions opts;
  opts.min_support = 0.1;
  opts.candidate_veto = [&m](std::span<const item_t> cand) {
    for (std::size_t i = 0; i < cand.size(); ++i) {
      for (std::size_t j = i + 1; j < cand.size(); ++j) {
        if (m.same_attribute(cand[i], cand[j])) return true;
      }
    }
    return false;
  };
  const MiningResult got = mine(db, opts);
  // Brute force on the boolean db, then drop same-attribute itemsets.
  const auto reference = brute_force_frequent(db, opts.min_support);
  for (std::size_t level = 0; level < got.levels.size(); ++level) {
    const FrequentSet& fk = got.levels[level];
    for (std::size_t i = 0; i < fk.size(); ++i) {
      const count_t* ref = reference[level].find_count(fk.itemset(i));
      ASSERT_NE(ref, nullptr);
      EXPECT_EQ(fk.count(i), *ref);
    }
  }
}

}  // namespace
}  // namespace smpmine
