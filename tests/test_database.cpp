#include "data/database.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace smpmine {
namespace {

Database make_db(std::initializer_list<std::vector<item_t>> txns) {
  Database db;
  for (const auto& t : txns) db.add_transaction(t);
  return db;
}

TEST(Database, EmptyDatabase) {
  Database db;
  EXPECT_TRUE(db.empty());
  EXPECT_EQ(db.size(), 0u);
  EXPECT_EQ(db.total_items(), 0u);
  EXPECT_EQ(db.item_universe(), 0u);
  EXPECT_DOUBLE_EQ(db.avg_transaction_size(), 0.0);
}

TEST(Database, TransactionsAreSorted) {
  Database db = make_db({{5, 1, 3}});
  const auto txn = db.transaction(0);
  EXPECT_EQ(std::vector<item_t>(txn.begin(), txn.end()),
            (std::vector<item_t>{1, 3, 5}));
}

TEST(Database, DuplicatesRemoved) {
  Database db = make_db({{2, 2, 7, 7, 7, 1}});
  const auto txn = db.transaction(0);
  EXPECT_EQ(std::vector<item_t>(txn.begin(), txn.end()),
            (std::vector<item_t>{1, 2, 7}));
  EXPECT_EQ(db.total_items(), 3u);
}

TEST(Database, MultipleTransactions) {
  Database db = make_db({{1, 4, 5}, {1, 2}, {3, 4, 5}, {1, 2, 4, 5}});
  EXPECT_EQ(db.size(), 4u);
  EXPECT_EQ(db.transaction_size(1), 2u);
  EXPECT_EQ(db.transaction(3)[3], 5u);
  EXPECT_EQ(db.total_items(), 12u);
  EXPECT_DOUBLE_EQ(db.avg_transaction_size(), 3.0);
}

TEST(Database, ItemUniverseIsMaxPlusOne) {
  Database db = make_db({{0, 9}, {4}});
  EXPECT_EQ(db.item_universe(), 10u);
}

TEST(Database, EmptyTransactionStored) {
  Database db = make_db({{}, {1}});
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.transaction_size(0), 0u);
  EXPECT_TRUE(db.transaction(0).empty());
}

TEST(Database, ClearResets) {
  Database db = make_db({{1, 2, 3}});
  db.clear();
  EXPECT_TRUE(db.empty());
  EXPECT_EQ(db.item_universe(), 0u);
  db.add_transaction(std::vector<item_t>{7});
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.item_universe(), 8u);
}

TEST(Database, StorageBytesGrow) {
  Database empty;
  Database db = make_db({{1, 2, 3, 4, 5}});
  EXPECT_GT(db.storage_bytes(), empty.storage_bytes());
}

TEST(Database, ReserveDoesNotChangeContents) {
  Database db;
  db.reserve(100, 1000);
  EXPECT_TRUE(db.empty());
  db.add_transaction(std::vector<item_t>{3, 1});
  EXPECT_EQ(db.transaction(0)[0], 1u);
}

TEST(Database, ItemZeroOnlyUniverse) {
  Database db = make_db({{0}});
  EXPECT_EQ(db.item_universe(), 1u);
}

}  // namespace
}  // namespace smpmine
