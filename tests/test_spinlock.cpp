#include "parallel/spinlock.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <thread>
#include <vector>

namespace smpmine {
namespace {

TEST(SpinLock, BasicLockUnlock) {
  SpinLock lock;
  lock.lock();
  lock.unlock();
  lock.lock();
  lock.unlock();
}

TEST(SpinLock, TryLock) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinLock, MutualExclusionUnderContention) {
  SpinLock lock;
  std::uint64_t counter = 0;  // deliberately non-atomic
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<SpinLock> guard(lock);
        ++counter;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(PaddedSpinLock, OccupiesFullCacheLine) {
  EXPECT_EQ(sizeof(PaddedSpinLock), kCacheLine);
  EXPECT_EQ(alignof(PaddedSpinLock), kCacheLine);
}

TEST(SpinLock, IsSingleByteSized) {
  // Embeddability in tree nodes is the design constraint.
  EXPECT_EQ(sizeof(SpinLock), 1u);
}

}  // namespace
}  // namespace smpmine
