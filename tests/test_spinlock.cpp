#include "parallel/spinlock.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace smpmine {
namespace {

TEST(SpinLock, BasicLockUnlock) {
  SpinLock lock;
  lock.lock();
  lock.unlock();
  lock.lock();
  lock.unlock();
}

TEST(SpinLock, TryLock) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinLock, TryLockOnHeldLockFailsWithoutSpinning) {
  // Regression for the TRY_ACQUIRE(true) annotation's semantics: try_lock
  // is a single-shot attempt — on a held lock it must return false
  // promptly, not spin/backoff like lock(). The holder never releases, so
  // any spin-until-free implementation would hang; bound the whole probe
  // loop to well under lock()'s contention timescale instead.
  SpinLock lock;
  lock.lock();
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 10000; ++i) {
    ASSERT_FALSE(lock.try_lock());
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(1))
      << "try_lock appears to spin while the lock is held";
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinLock, GuardProvidesMutualExclusion) {
  // SpinLockGuard is the annotated RAII guard library code must use; same
  // contract as std::lock_guard<SpinLock>.
  SpinLock lock;
  std::uint64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        SpinLockGuard guard(lock);
        ++counter;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(SpinLock, MutualExclusionUnderContention) {
  SpinLock lock;
  std::uint64_t counter = 0;  // deliberately non-atomic
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<SpinLock> guard(lock);
        ++counter;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(PaddedSpinLock, OccupiesFullCacheLine) {
  EXPECT_EQ(sizeof(PaddedSpinLock), kCacheLine);
  EXPECT_EQ(alignof(PaddedSpinLock), kCacheLine);
}

TEST(SpinLock, IsSingleByteSized) {
  // Embeddability in tree nodes is the design constraint.
  EXPECT_EQ(sizeof(SpinLock), 1u);
}

}  // namespace
}  // namespace smpmine
