// End-to-end correctness: the real miners against the brute-force
// reference on synthetic Quest data, across supports and thread counts.
#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "core/miner.hpp"
#include "data/quest_gen.hpp"

namespace smpmine {
namespace {

Database quest_db(std::uint64_t seed = 7) {
  QuestParams p;
  p.num_transactions = 400;
  p.avg_transaction_len = 8.0;
  p.avg_pattern_len = 3.0;
  p.num_patterns = 40;
  p.num_items = 60;
  p.seed = seed;
  return generate_quest(p);
}

class SupportSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(SupportSweepTest, SequentialMatchesBruteForce) {
  const Database db = quest_db();
  MinerOptions opts;
  opts.min_support = GetParam();
  const MiningResult mined = mine_sequential(db, opts);
  const auto reference = brute_force_frequent(db, GetParam());
  std::string diag;
  EXPECT_TRUE(levels_equal(mined.levels, reference, &diag)) << diag;
}

INSTANTIATE_TEST_SUITE_P(Supports, SupportSweepTest,
                         ::testing::Values(0.02, 0.05, 0.10, 0.25),
                         [](const auto& info) {
                           return "s" + std::to_string(static_cast<int>(
                                            info.param * 1000));
                         });

class ThreadSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ThreadSweepTest, CcpdMatchesSequential) {
  const Database db = quest_db();
  MinerOptions seq;
  seq.min_support = 0.03;
  const MiningResult expect = mine_sequential(db, seq);

  MinerOptions par = seq;
  par.threads = static_cast<std::uint32_t>(GetParam());
  par.parallel_candgen_threshold = 1;
  const MiningResult got = mine_ccpd(db, par);
  std::string diag;
  EXPECT_TRUE(levels_equal(got.levels, expect.levels, &diag)) << diag;
}

TEST_P(ThreadSweepTest, PccdMatchesSequential) {
  const Database db = quest_db();
  MinerOptions seq;
  seq.min_support = 0.03;
  const MiningResult expect = mine_sequential(db, seq);

  MinerOptions par = seq;
  par.threads = static_cast<std::uint32_t>(GetParam());
  par.algorithm = Algorithm::PCCD;
  const MiningResult got = mine(db, par);
  std::string diag;
  EXPECT_TRUE(levels_equal(got.levels, expect.levels, &diag)) << diag;
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweepTest, ::testing::Values(2, 3, 8),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param);
                         });

TEST(MinerIntegration, BalancedDbPartitionMatches) {
  const Database db = quest_db();
  MinerOptions opts;
  opts.min_support = 0.03;
  const MiningResult expect = mine_sequential(db, opts);
  opts.threads = 4;
  opts.db_partition = DbPartition::Balanced;
  const MiningResult got = mine_ccpd(db, opts);
  std::string diag;
  EXPECT_TRUE(levels_equal(got.levels, expect.levels, &diag)) << diag;
}

TEST(MinerIntegration, StatsAreInternallyConsistent) {
  const Database db = quest_db();
  MinerOptions opts;
  opts.min_support = 0.03;
  const MiningResult result = mine_sequential(db, opts);
  ASSERT_FALSE(result.iterations.empty());

  std::uint64_t frequent_from_stats = result.levels[0].size();
  for (const IterationStats& it : result.iterations) {
    EXPECT_GE(it.candidates, it.frequent);
    EXPECT_GT(it.fanout, 0u);
    EXPECT_GT(it.tree_nodes, 0u);
    EXPECT_GE(it.hits, it.frequent);  // every frequent candidate was hit
    frequent_from_stats += it.frequent;
  }
  EXPECT_EQ(frequent_from_stats, result.total_frequent());
  EXPECT_GT(result.total_seconds, 0.0);
  EXPECT_GE(result.work_speedup(), 1.0 - 1e-9);
}

TEST(MinerIntegration, FixedFanoutMatchesAdaptive) {
  const Database db = quest_db();
  MinerOptions a;
  a.min_support = 0.03;
  const MiningResult adaptive = mine_sequential(db, a);
  MinerOptions b = a;
  b.adaptive_fanout = false;
  b.fixed_fanout = 5;
  const MiningResult fixed = mine_sequential(db, b);
  std::string diag;
  EXPECT_TRUE(levels_equal(adaptive.levels, fixed.levels, &diag)) << diag;
}

TEST(MinerIntegration, DifferentSeedsDifferentResults) {
  MinerOptions opts;
  opts.min_support = 0.05;
  const MiningResult a = mine_sequential(quest_db(7), opts);
  const MiningResult b = mine_sequential(quest_db(8), opts);
  EXPECT_NE(a.total_frequent(), b.total_frequent());
}

TEST(MinerIntegration, EmptyDatabase) {
  Database db;
  MinerOptions opts;
  const MiningResult result = mine_sequential(db, opts);
  EXPECT_EQ(result.total_frequent(), 0u);
  EXPECT_TRUE(result.iterations.empty());
}

TEST(MinerIntegration, InvalidOptionsThrow) {
  MinerOptions opts;
  opts.min_support = 0.0;
  EXPECT_THROW(mine_sequential(quest_db(), opts), std::invalid_argument);
  opts.min_support = 1.5;
  EXPECT_THROW(mine_sequential(quest_db(), opts), std::invalid_argument);
}

}  // namespace
}  // namespace smpmine
