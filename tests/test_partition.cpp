#include "parallel/partition.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace smpmine {
namespace {

// Paper Section 3.1.2 worked example: P=3, F1 = {0..9}, w_i = 9-i.
const std::uint32_t kBins = 3;

std::vector<double> paper_weights() { return join_workloads(10); }

TEST(Partition, JoinWorkloads) {
  const auto w = join_workloads(4);
  EXPECT_EQ(w, (std::vector<double>{3, 2, 1, 0}));
  EXPECT_TRUE(join_workloads(0).empty());
}

TEST(Partition, BlockMatchesPaperExample) {
  // A0={0,1,2}, A1={3,4,5}, A2={6,7,8,9}; loads 24/15/6.
  const Assignment a = partition_block(paper_weights(), kBins);
  EXPECT_EQ(a.groups[0], (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(a.groups[1], (std::vector<std::uint32_t>{3, 4, 5}));
  EXPECT_EQ(a.groups[2], (std::vector<std::uint32_t>{6, 7, 8, 9}));
  EXPECT_EQ(a.loads, (std::vector<double>{24, 15, 6}));
}

TEST(Partition, InterleavedMatchesPaperExample) {
  // A0={0,3,6,9}, A1={1,4,7}, A2={2,5,8}; loads 18/15/12.
  const Assignment a = partition_interleaved(paper_weights(), kBins);
  EXPECT_EQ(a.groups[0], (std::vector<std::uint32_t>{0, 3, 6, 9}));
  EXPECT_EQ(a.groups[1], (std::vector<std::uint32_t>{1, 4, 7}));
  EXPECT_EQ(a.groups[2], (std::vector<std::uint32_t>{2, 5, 8}));
  EXPECT_EQ(a.loads, (std::vector<double>{18, 15, 12}));
}

TEST(Partition, BitonicMatchesPaperExample) {
  // A0={0,5,6}, A1={1,4,7}, A2={2,3,8,9}; loads 16/15/14.
  const Assignment a = partition_bitonic(paper_weights(), kBins);
  EXPECT_EQ(a.groups[0], (std::vector<std::uint32_t>{0, 5, 6}));
  EXPECT_EQ(a.groups[1], (std::vector<std::uint32_t>{1, 4, 7}));
  EXPECT_EQ(a.groups[2], (std::vector<std::uint32_t>{2, 3, 8, 9}));
  EXPECT_EQ(a.loads, (std::vector<double>{16, 15, 14}));
}

TEST(Partition, BitonicPerfectWhenDivisible) {
  // n mod 2P == 0 => perfect balance (paper's claim).
  const Assignment a = partition_bitonic(join_workloads(12), 3);
  EXPECT_DOUBLE_EQ(a.imbalance(), 1.0);
  EXPECT_DOUBLE_EQ(a.loads[0], a.loads[1]);
  EXPECT_DOUBLE_EQ(a.loads[1], a.loads[2]);
}

TEST(Partition, GreedyBalancesArbitraryWeights) {
  const std::vector<double> w{10, 9, 1, 1, 1, 1, 1, 1};
  const Assignment a = partition_greedy(w, 2);
  // Greedy: 10 -> bin0, 9 -> bin1, then 1s alternate; loads 13/12.
  EXPECT_DOUBLE_EQ(a.loads[0] + a.loads[1], 25.0);
  EXPECT_LE(a.imbalance(), 13.0 / 12.5 + 1e-12);
}

TEST(Partition, EveryElementAssignedExactlyOnce) {
  const auto w = join_workloads(23);
  for (const auto scheme : {PartitionScheme::Block, PartitionScheme::Interleaved,
                            PartitionScheme::Bitonic}) {
    const Assignment a = partition(scheme, w, 4);
    std::vector<int> seen(w.size(), 0);
    for (const auto& group : a.groups) {
      for (const std::uint32_t e : group) ++seen[e];
    }
    for (const int s : seen) EXPECT_EQ(s, 1) << to_string(scheme);
  }
}

TEST(Partition, ElementToBin) {
  const Assignment a = partition_bitonic(paper_weights(), kBins);
  const auto bin_of = a.element_to_bin(10);
  EXPECT_EQ(bin_of[0], 0u);
  EXPECT_EQ(bin_of[5], 0u);
  EXPECT_EQ(bin_of[9], 2u);
  const auto sparse = a.element_to_bin(12);
  EXPECT_EQ(sparse[11], UINT32_MAX);
}

TEST(Partition, LoadsMatchGroupSums) {
  const std::vector<double> w{5.5, 2.25, 7.0, 0.0, 3.5};
  for (const auto scheme : {PartitionScheme::Block, PartitionScheme::Interleaved,
                            PartitionScheme::Bitonic}) {
    const Assignment a = partition(scheme, w, 2);
    for (std::size_t b = 0; b < a.groups.size(); ++b) {
      double sum = 0.0;
      for (const std::uint32_t e : a.groups[b]) sum += w[e];
      EXPECT_DOUBLE_EQ(sum, a.loads[b]) << to_string(scheme);
    }
  }
}

TEST(Partition, MoreBinsThanElements) {
  const Assignment a = partition_bitonic(join_workloads(2), 8);
  double total = 0.0;
  for (const double l : a.loads) total += l;
  EXPECT_DOUBLE_EQ(total, 1.0);
  EXPECT_EQ(a.groups.size(), 8u);
}

TEST(Partition, EmptyInput) {
  for (const auto scheme : {PartitionScheme::Block, PartitionScheme::Interleaved,
                            PartitionScheme::Bitonic}) {
    const Assignment a = partition(scheme, {}, 3);
    EXPECT_EQ(a.groups.size(), 3u);
    EXPECT_DOUBLE_EQ(a.imbalance(), 1.0) << to_string(scheme);
  }
}

// Property sweep (paper's ordering claim): on the triangular join workload,
// bitonic never balances worse than interleaved, which never balances worse
// than block.
class PartitionOrderingTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PartitionOrderingTest, BitonicBeatsInterleavedBeatsBlock) {
  const auto [n, bins] = GetParam();
  const auto w = join_workloads(static_cast<std::size_t>(n));
  const double block =
      partition_block(w, static_cast<std::uint32_t>(bins)).imbalance();
  const double inter =
      partition_interleaved(w, static_cast<std::uint32_t>(bins)).imbalance();
  const double bitonic =
      partition_bitonic(w, static_cast<std::uint32_t>(bins)).imbalance();
  EXPECT_LE(bitonic, inter + 1e-9) << "n=" << n << " bins=" << bins;
  // Block is only guaranteed worst when each bin holds several elements
  // (the paper's regime); at n ~ bins the floor split can luck out.
  if (n >= 2 * bins) {
    EXPECT_LE(inter, block + 1e-9) << "n=" << n << " bins=" << bins;
  }
  EXPECT_GE(bitonic, 1.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionOrderingTest,
    ::testing::Combine(::testing::Values(10, 16, 25, 64, 100, 333, 1000),
                       ::testing::Values(2, 3, 4, 8, 12)));

}  // namespace
}  // namespace smpmine
