// Histogram metric type: log2 bucket geometry, per-thread shard merging,
// summary statistics (conservative bucket-bound percentiles), per-run
// deltas, and the run-manifest JSON serialization.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include "core/miner.hpp"
#include "core/results_io.hpp"
#include "data/quest_gen.hpp"

namespace smpmine::obs {
namespace {

TEST(Histogram, BucketGeometry) {
  // Bucket 0 is exactly {0}; bucket i >= 1 covers [2^(i-1), 2^i).
  EXPECT_EQ(HistogramShard::bucket_index(0), 0u);
  EXPECT_EQ(HistogramShard::bucket_index(1), 1u);
  EXPECT_EQ(HistogramShard::bucket_index(2), 2u);
  EXPECT_EQ(HistogramShard::bucket_index(3), 2u);
  EXPECT_EQ(HistogramShard::bucket_index(4), 3u);
  EXPECT_EQ(HistogramShard::bucket_index(~std::uint64_t{0}), 64u);
  EXPECT_EQ(histogram_bucket_lo(0), 0u);
  EXPECT_EQ(histogram_bucket_hi(0), 0u);
  for (std::uint32_t i = 1; i < kHistogramBuckets; ++i) {
    // Buckets tile the u64 range: contiguous, no gaps, no overlap, and
    // both endpoints map back to the bucket that owns them.
    EXPECT_EQ(histogram_bucket_lo(i), histogram_bucket_hi(i - 1) + 1) << i;
    EXPECT_EQ(HistogramShard::bucket_index(histogram_bucket_lo(i)), i);
    EXPECT_EQ(HistogramShard::bucket_index(histogram_bucket_hi(i)), i);
  }
  EXPECT_EQ(histogram_bucket_hi(64), ~std::uint64_t{0});
}

TEST(Histogram, RecordAndSummary) {
  Histogram h;
  HistogramShard& shard = h.local_shard();
  for (const std::uint64_t v : {0u, 1u, 2u, 3u, 1000u}) shard.record(v);
  const HistogramSummary s = h.snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum, 1006u);
  EXPECT_DOUBLE_EQ(s.mean(), 1006.0 / 5.0);
  EXPECT_EQ(s.buckets[0], 1u);  // {0}
  EXPECT_EQ(s.buckets[1], 1u);  // {1}
  EXPECT_EQ(s.buckets[2], 2u);  // {2, 3}
  EXPECT_EQ(s.buckets[10], 1u);  // 1000 in [512, 1024)
  // Percentiles are conservative upper bounds of the owning bucket.
  EXPECT_EQ(s.percentile(0.0), 0u);
  EXPECT_EQ(s.percentile(0.5), 3u);
  EXPECT_EQ(s.percentile(1.0), 1023u);
  EXPECT_EQ(s.max_bound(), 1023u);
}

TEST(Histogram, EmptySummary) {
  Histogram h;
  const HistogramSummary s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.percentile(0.99), 0u);
  EXPECT_EQ(s.max_bound(), 0u);
}

TEST(Histogram, ShardMergeAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  Histogram h;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &h] {
      // One shard per thread, cached as call sites do. Each thread records
      // a power of two, so every thread owns a distinct bucket (t + 1).
      HistogramShard& shard = h.local_shard();
      const std::uint64_t value = std::uint64_t{1} << t;
      for (int i = 0; i < kPerThread; ++i) shard.record(value);
    });
  }
  for (auto& th : threads) th.join();
  const HistogramSummary s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(s.buckets[t + 1], static_cast<std::uint64_t>(kPerThread)) << t;
  }
}

TEST(Histogram, DeltaSince) {
  Histogram h;
  HistogramShard& shard = h.local_shard();
  shard.record(5);
  shard.record(100);
  const HistogramSummary before = h.snapshot();
  shard.record(7);
  shard.record(7);
  const HistogramSummary delta = h.snapshot().delta_since(before);
  EXPECT_EQ(delta.count, 2u);
  EXPECT_EQ(delta.sum, 14u);
  EXPECT_EQ(delta.buckets[HistogramShard::bucket_index(7)], 2u);
  EXPECT_EQ(delta.buckets[HistogramShard::bucket_index(100)], 0u);
}

TEST(Histogram, ResetKeepsShardAddresses) {
  Histogram h;
  HistogramShard& shard = h.local_shard();
  shard.record(42);
  h.reset();
  EXPECT_EQ(h.snapshot().count, 0u);
  // The cached reference must stay usable after reset (threads outlive it).
  shard.record(43);
  const HistogramSummary s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.sum, 43u);
}

TEST(Histogram, WellKnownNamesPreRegistered) {
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  bool spin = false;
  bool tile = false;
  for (const auto& [name, summary] : snap.histograms) {
    spin |= name == "spinlock.spin_rounds";
    tile |= name == "flatkernel.tile_ns";
  }
  EXPECT_TRUE(spin);
  EXPECT_TRUE(tile);
}

TEST(Histogram, ManifestJsonCarriesHistograms) {
  QuestParams p;
  p.num_transactions = 200;
  p.avg_transaction_len = 6.0;
  p.avg_pattern_len = 3.0;
  p.num_patterns = 15;
  p.num_items = 30;
  p.seed = 7;
  const Database db = generate_quest(p);
  MinerOptions opts;
  opts.min_support = 0.05;
  const MiningResult result = mine_sequential(db, opts);

  metric::flatkernel_tile_ns().record(900);  // one known sample

  smpmine::RunManifest m =
      make_run_manifest("test", "synthetic", db, opts, result);
  std::ostringstream os;
  write_run_manifest(m, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\":\"smpmine.run.v3\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"spinlock.spin_rounds\""), std::string::npos);
  EXPECT_NE(json.find("\"flatkernel.tile_ns\""), std::string::npos);
  // The summary block: count/sum/percentiles plus the trimmed bucket list.
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

}  // namespace
}  // namespace smpmine::obs
