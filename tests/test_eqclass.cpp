#include "itemset/eqclass.hpp"

#include <gtest/gtest.h>

namespace smpmine {
namespace {

TEST(EqClass, F1IsOneClass) {
  // k=2: the common prefix has length 0, so all of F1 is one class.
  const FrequentSet f1(1, {1, 2, 4, 5}, {3, 2, 3, 3});
  const auto classes = build_equivalence_classes(f1);
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0].begin, 0u);
  EXPECT_EQ(classes[0].end, 4u);
}

TEST(EqClass, SplitsByPrefix) {
  // F2 = {(1,2),(1,4),(1,5),(4,5)} -> classes {1,*} and {4,*}.
  const FrequentSet f2(2, {1, 2, 1, 4, 1, 5, 4, 5}, {2, 2, 2, 3});
  const auto classes = build_equivalence_classes(f2);
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0].size(), 3u);
  EXPECT_EQ(classes[1].size(), 1u);
}

TEST(EqClass, ThreeItemPrefixes) {
  // F3 with prefixes (1,2), (1,3), (2,3).
  const FrequentSet f3(3, {1, 2, 3, 1, 2, 4, 1, 3, 4, 2, 3, 4},
                       {5, 5, 5, 5});
  const auto classes = build_equivalence_classes(f3);
  ASSERT_EQ(classes.size(), 3u);
  EXPECT_EQ(classes[0].size(), 2u);
  EXPECT_EQ(classes[1].size(), 1u);
  EXPECT_EQ(classes[2].size(), 1u);
}

TEST(EqClass, EmptySet) {
  EXPECT_TRUE(build_equivalence_classes(FrequentSet(2)).empty());
}

TEST(GenUnits, WeightsAreJoinCounts) {
  const FrequentSet f1(1, {1, 2, 4, 5}, {3, 2, 3, 3});
  const auto classes = build_equivalence_classes(f1);
  const auto units = generation_units(classes, 2);
  // Class of 4 members: members 0,1,2 generate 3,2,1 pairs; member 3 none.
  ASSERT_EQ(units.size(), 3u);
  EXPECT_DOUBLE_EQ(units[0].weight, 3.0);
  EXPECT_DOUBLE_EQ(units[1].weight, 2.0);
  EXPECT_DOUBLE_EQ(units[2].weight, 1.0);
}

TEST(GenUnits, TailClassesDroppedForLargeK) {
  // k=4 -> the last k-2 = 2 classes cannot generate surviving candidates.
  const FrequentSet f3(3, {1, 2, 3, 1, 2, 4, 1, 3, 4, 2, 3, 4},
                       {5, 5, 5, 5});
  const auto classes = build_equivalence_classes(f3);
  ASSERT_EQ(classes.size(), 3u);
  const auto units = generation_units(classes, 4);
  // Only class 0 (prefix (1,2), 2 members) survives; 1 unit of weight 1.
  ASSERT_EQ(units.size(), 1u);
  EXPECT_EQ(units[0].cls, 0u);
  EXPECT_DOUBLE_EQ(units[0].weight, 1.0);
}

TEST(GenUnits, NoTailDropAtK2) {
  const FrequentSet f1(1, {1, 2, 3}, {9, 9, 9});
  const auto classes = build_equivalence_classes(f1);
  EXPECT_EQ(generation_units(classes, 2).size(), 2u);
}

TEST(GenUnits, SingletonClassesProduceNothing) {
  const FrequentSet f2(2, {1, 2, 3, 4}, {5, 5});
  const auto classes = build_equivalence_classes(f2);
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_TRUE(generation_units(classes, 3).empty());
}

TEST(BalanceGeneration, PartitionsAllUnits) {
  const FrequentSet f1(1, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
                       {9, 9, 9, 9, 9, 9, 9, 9, 9, 9});
  const auto classes = build_equivalence_classes(f1);
  const auto units = generation_units(classes, 2);
  for (const auto scheme :
       {PartitionScheme::Block, PartitionScheme::Interleaved,
        PartitionScheme::Bitonic}) {
    const auto batches = balance_generation(units, 3, scheme);
    std::size_t total = 0;
    double weight = 0.0;
    for (const auto& b : batches) {
      total += b.size();
      for (const GenUnit& u : b) weight += u.weight;
    }
    EXPECT_EQ(total, units.size()) << to_string(scheme);
    EXPECT_DOUBLE_EQ(weight, 45.0) << to_string(scheme);
  }
}

TEST(BalanceGeneration, BitonicBalancesBest) {
  const FrequentSet f1(1, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
                       {9, 9, 9, 9, 9, 9, 9, 9, 9, 9});
  const auto classes = build_equivalence_classes(f1);
  const auto units = generation_units(classes, 2);
  auto max_weight = [](const std::vector<std::vector<GenUnit>>& batches) {
    double worst = 0.0;
    for (const auto& b : batches) {
      double w = 0.0;
      for (const GenUnit& u : b) w += u.weight;
      worst = std::max(worst, w);
    }
    return worst;
  };
  const double block =
      max_weight(balance_generation(units, 3, PartitionScheme::Block));
  const double bitonic =
      max_weight(balance_generation(units, 3, PartitionScheme::Bitonic));
  EXPECT_LT(bitonic, block);
  EXPECT_NEAR(bitonic, 15.0, 1.0);  // 45 weight over 3 bins
}

TEST(TotalJoinPairs, SumsBinomials) {
  const FrequentSet f2(2, {1, 2, 1, 4, 1, 5, 4, 5}, {2, 2, 2, 3});
  const auto classes = build_equivalence_classes(f2);
  // C(3,2) + C(1,2) = 3 + 0.
  EXPECT_DOUBLE_EQ(total_join_pairs(classes), 3.0);
}

}  // namespace
}  // namespace smpmine
