// Section 5.1's three SPP variations: common / individual / grouped
// regions. Same mining results, different block routing.
#include <gtest/gtest.h>

#include "alloc/placement.hpp"
#include "core/brute_force.hpp"
#include "core/miner.hpp"
#include "data/quest_gen.hpp"

namespace smpmine {
namespace {

TEST(SppVariants, CommonRoutesEverythingToOneArena) {
  PlacementArenas arenas(PlacementPolicy::SPP, SppVariant::Common);
  Arena* first = &arenas.tree(BlockKind::Node);
  for (const BlockKind kind :
       {BlockKind::HashTable, BlockKind::ListHeader, BlockKind::ListNode,
        BlockKind::Itemset}) {
    EXPECT_EQ(&arenas.tree(kind), first);
  }
}

TEST(SppVariants, IndividualRoutesEachKindSeparately) {
  PlacementArenas arenas(PlacementPolicy::SPP, SppVariant::Individual);
  const BlockKind kinds[] = {BlockKind::Node, BlockKind::HashTable,
                             BlockKind::ListHeader, BlockKind::ListNode,
                             BlockKind::Itemset};
  for (std::size_t i = 0; i < std::size(kinds); ++i) {
    for (std::size_t j = i + 1; j < std::size(kinds); ++j) {
      EXPECT_NE(&arenas.tree(kinds[i]), &arenas.tree(kinds[j]))
          << i << " vs " << j;
    }
  }
}

TEST(SppVariants, GroupedSplitsSkeletonFromLeafContents) {
  PlacementArenas arenas(PlacementPolicy::SPP, SppVariant::Grouped);
  EXPECT_EQ(&arenas.tree(BlockKind::Node), &arenas.tree(BlockKind::HashTable));
  EXPECT_EQ(&arenas.tree(BlockKind::Node),
            &arenas.tree(BlockKind::ListHeader));
  EXPECT_EQ(&arenas.tree(BlockKind::ListNode),
            &arenas.tree(BlockKind::Itemset));
  EXPECT_NE(&arenas.tree(BlockKind::Node), &arenas.tree(BlockKind::ListNode));
}

TEST(SppVariants, MallocIgnoresVariant) {
  PlacementArenas arenas(PlacementPolicy::Malloc, SppVariant::Individual);
  EXPECT_EQ(arenas.variant(), SppVariant::Common);
  EXPECT_EQ(&arenas.tree(BlockKind::Node), &arenas.tree(BlockKind::Itemset));
}

TEST(SppVariants, ResetRecyclesExtraRegions) {
  PlacementArenas arenas(PlacementPolicy::SPP, SppVariant::Individual);
  void* a1 = arenas.tree(BlockKind::Itemset).alloc(32, 8);
  arenas.reset();
  void* a2 = arenas.tree(BlockKind::Itemset).alloc(32, 8);
  EXPECT_EQ(a1, a2);
}

TEST(SppVariants, TreeStatsAggregateAcrossRegions) {
  PlacementArenas arenas(PlacementPolicy::SPP, SppVariant::Individual);
  arenas.tree(BlockKind::Node).alloc(100, 8);
  arenas.tree(BlockKind::Itemset).alloc(100, 8);
  EXPECT_EQ(arenas.tree_stats().bytes_requested, 200u);
  EXPECT_EQ(arenas.tree_stats().allocations, 2u);
}

class VariantMiningTest : public ::testing::TestWithParam<SppVariant> {};

TEST_P(VariantMiningTest, ResultsIdenticalAcrossVariants) {
  QuestParams p;
  p.num_transactions = 300;
  p.avg_transaction_len = 7.0;
  p.avg_pattern_len = 3.0;
  p.num_patterns = 25;
  p.num_items = 50;
  p.seed = 4242;
  const Database db = generate_quest(p);

  MinerOptions opts;
  opts.min_support = 0.03;
  opts.threads = 2;
  opts.spp_variant = GetParam();
  const MiningResult got = mine(db, opts);
  const auto reference = brute_force_frequent(db, opts.min_support);
  std::string diag;
  EXPECT_TRUE(levels_equal(got.levels, reference, &diag)) << diag;
}

INSTANTIATE_TEST_SUITE_P(Variants, VariantMiningTest,
                         ::testing::Values(SppVariant::Common,
                                           SppVariant::Individual,
                                           SppVariant::Grouped),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

}  // namespace
}  // namespace smpmine
