// Edge-case and regression tests for the miners that the main integration
// suite doesn't cover: iteration caps, adaptive-parallelism thresholds,
// locality instrumentation, and statistics population.
#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "core/miner.hpp"
#include "data/quest_gen.hpp"

namespace smpmine {
namespace {

Database quest_db() {
  QuestParams p;
  p.num_transactions = 400;
  p.avg_transaction_len = 8.0;
  p.avg_pattern_len = 3.0;
  p.num_patterns = 40;
  p.num_items = 60;
  p.seed = 31337;
  return generate_quest(p);
}

TEST(MinerEdge, MaxIterationsCapsDepth) {
  const Database db = quest_db();
  MinerOptions opts;
  opts.min_support = 0.02;
  opts.max_iterations = 3;
  const MiningResult r = mine_sequential(db, opts);
  EXPECT_LE(r.levels.size(), 3u);
  for (const auto& it : r.iterations) EXPECT_LE(it.k, 3u);
}

TEST(MinerEdge, AdaptiveParallelismThresholdDoesNotChangeResults) {
  // Above the threshold candidate generation runs sequentially even with
  // multiple counting threads (Section 3.1.3); results must be identical.
  const Database db = quest_db();
  MinerOptions parallel_gen;
  parallel_gen.min_support = 0.02;
  parallel_gen.threads = 4;
  parallel_gen.parallel_candgen_threshold = 1;
  MinerOptions sequential_gen = parallel_gen;
  sequential_gen.parallel_candgen_threshold = 1'000'000;

  const MiningResult a = mine_ccpd(db, parallel_gen);
  const MiningResult b = mine_ccpd(db, sequential_gen);
  std::string diag;
  EXPECT_TRUE(levels_equal(a.levels, b.levels, &diag)) << diag;
  // The sequential path reports a perfectly "balanced" generation.
  for (const auto& it : b.iterations) {
    EXPECT_DOUBLE_EQ(it.candgen_imbalance, 1.0);
  }
}

TEST(MinerEdge, LocalityCollectionDoesNotChangeResults) {
  const Database db = quest_db();
  MinerOptions plain;
  plain.min_support = 0.02;
  plain.threads = 2;
  MinerOptions instrumented = plain;
  instrumented.collect_locality = true;
  instrumented.placement = PlacementPolicy::GPP;

  const MiningResult a = mine_ccpd(db, plain);
  const MiningResult b = mine_ccpd(db, instrumented);
  std::string diag;
  EXPECT_TRUE(levels_equal(a.levels, b.levels, &diag)) << diag;
  // And the instrumentation actually fired.
  bool any = false;
  for (const auto& it : b.iterations) {
    any |= it.locality_distinct_lines > 0;
  }
  EXPECT_TRUE(any);
}

TEST(MinerEdge, CounterSharingMetricReflectsPolicy) {
  const Database db = quest_db();
  auto sharing_of = [&](PlacementPolicy placement) {
    MinerOptions opts;
    opts.min_support = 0.02;
    opts.placement = placement;
    opts.collect_locality = true;
    const MiningResult r = mine_ccpd(db, opts);
    double worst = 0.0;
    for (const auto& it : r.iterations) {
      worst = std::max(worst, it.counter_itemset_line_sharing);
    }
    return worst;
  };
  // Inline counters share lines with itemset data; segregated and
  // privatized counters never do.
  EXPECT_GT(sharing_of(PlacementPolicy::SPP), 0.9);
  EXPECT_DOUBLE_EQ(sharing_of(PlacementPolicy::LSPP), 0.0);
  EXPECT_DOUBLE_EQ(sharing_of(PlacementPolicy::LcaGpp), 0.0);
}

TEST(MinerEdge, BusyTimesPopulated) {
  const Database db = quest_db();
  MinerOptions opts;
  opts.min_support = 0.02;
  opts.threads = 3;
  opts.parallel_candgen_threshold = 1;
  const MiningResult r = mine_ccpd(db, opts);
  ASSERT_FALSE(r.iterations.empty());
  for (const auto& it : r.iterations) {
    EXPECT_GE(it.count_busy_sum, it.count_busy_max);
    EXPECT_GE(it.candgen_busy_sum, it.candgen_busy_max);
    EXPECT_GE(it.modeled_parallel_seconds(), 0.0);
  }
  EXPECT_GT(r.modeled_total_seconds(), 0.0);
}

TEST(MinerEdge, SingleTransactionDatabase) {
  Database db;
  db.add_transaction(std::vector<item_t>{1, 2, 3});
  MinerOptions opts;
  opts.min_support = 0.9;  // absolute count 1
  const MiningResult r = mine_sequential(db, opts);
  // Everything in the transaction is frequent: 3 + 3 + 1 itemsets.
  EXPECT_EQ(r.total_frequent(), 7u);
}

TEST(MinerEdge, AllIdenticalTransactions) {
  Database db;
  for (int i = 0; i < 50; ++i) {
    db.add_transaction(std::vector<item_t>{2, 4, 6, 8});
  }
  MinerOptions opts;
  opts.min_support = 1.0;
  const MiningResult r = mine_sequential(db, opts);
  // All 2^4 - 1 non-empty subsets are frequent with count 50.
  EXPECT_EQ(r.total_frequent(), 15u);
  for (const auto& level : r.levels) {
    for (std::size_t i = 0; i < level.size(); ++i) {
      EXPECT_EQ(level.count(i), 50u);
    }
  }
}

TEST(MinerEdge, DisjointTransactionsNoPairs) {
  Database db;
  for (item_t i = 0; i < 20; ++i) {
    db.add_transaction(std::vector<item_t>{static_cast<item_t>(2 * i),
                                           static_cast<item_t>(2 * i + 1)});
  }
  MinerOptions opts;
  opts.min_support = 0.05;  // count 1: every item and pair qualifies
  const MiningResult r = mine_sequential(db, opts);
  ASSERT_EQ(r.levels.size(), 2u);
  EXPECT_EQ(r.levels[0].size(), 40u);
  EXPECT_EQ(r.levels[1].size(), 20u);  // only the co-occurring pairs
}

TEST(MinerEdge, LargeLeafThresholdDegeneratesGracefully) {
  // Threshold larger than any candidate set: the tree stays a single leaf
  // (linear scan) and must still be exact.
  const Database db = quest_db();
  MinerOptions opts;
  opts.min_support = 0.05;
  opts.leaf_threshold = 1'000'000;
  opts.adaptive_fanout = false;
  opts.fixed_fanout = 2;
  const MiningResult got = mine_sequential(db, opts);
  const auto reference = brute_force_frequent(db, opts.min_support);
  std::string diag;
  EXPECT_TRUE(levels_equal(got.levels, reference, &diag)) << diag;
}

TEST(MinerEdge, TinyLeafThresholdStillExact) {
  const Database db = quest_db();
  MinerOptions opts;
  opts.min_support = 0.05;
  opts.leaf_threshold = 1;
  const MiningResult got = mine_sequential(db, opts);
  const auto reference = brute_force_frequent(db, opts.min_support);
  std::string diag;
  EXPECT_TRUE(levels_equal(got.levels, reference, &diag)) << diag;
}

}  // namespace
}  // namespace smpmine
