#include "taxonomy/generalized.hpp"

#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "data/quest_gen.hpp"
#include "itemset/itemset.hpp"

namespace smpmine {
namespace {

/// Items: 0 jacket, 1 ski pants, 3 shirts, 5 shoes, 7 hiking boots.
/// Categories: 2 outerwear (0,1), 4 clothes (2,3), 6 footwear (5,7).
Taxonomy clothes() {
  Taxonomy tax(8);
  tax.add_edge(0, 2);
  tax.add_edge(1, 2);
  tax.add_edge(2, 4);
  tax.add_edge(3, 4);
  tax.add_edge(5, 6);
  tax.add_edge(7, 6);
  tax.freeze();
  return tax;
}

/// Srikant & Agrawal's running example database (leaf items only):
///   T1 {shirts}, T2 {jacket, hiking boots}, T3 {ski pants, hiking boots},
///   T4 {shoes}, T5 {shoes}, T6 {jacket}.
Database sa_example() {
  Database db;
  db.add_transaction(std::vector<item_t>{3});
  db.add_transaction(std::vector<item_t>{0, 7});
  db.add_transaction(std::vector<item_t>{1, 7});
  db.add_transaction(std::vector<item_t>{5});
  db.add_transaction(std::vector<item_t>{5});
  db.add_transaction(std::vector<item_t>{0});
  return db;
}

TEST(Generalized, ExtendDatabaseAddsAncestors) {
  const Database ext = extend_database(sa_example(), clothes());
  ASSERT_EQ(ext.size(), 6u);
  // T2 {jacket, hiking boots} -> {0, 2, 4, 6, 7}.
  const auto t2 = ext.transaction(1);
  EXPECT_EQ(std::vector<item_t>(t2.begin(), t2.end()),
            (std::vector<item_t>{0, 2, 4, 6, 7}));
  // T1 {shirts} -> {3, 4}.
  const auto t1 = ext.transaction(0);
  EXPECT_EQ(std::vector<item_t>(t1.begin(), t1.end()),
            (std::vector<item_t>{3, 4}));
}

TEST(Generalized, CategorySupportsMatchHandCounts) {
  // From the S&A example (minsup 30% => count 2):
  //   sup(outerwear)=3 (T2,T3,T6), sup(clothes)=4, sup(footwear)=4,
  //   sup({outerwear, hiking boots})=2.
  MinerOptions opts;
  opts.min_support = 0.3;
  const MiningResult r =
      mine_generalized(sa_example(), clothes(), opts,
                       GeneralizedAlgorithm::Basic);
  const std::vector<item_t> outerwear{2};
  const std::vector<item_t> clothes_cat{4};
  const std::vector<item_t> footwear{6};
  ASSERT_GE(r.levels.size(), 2u);
  ASSERT_NE(r.levels[0].find_count(outerwear), nullptr);
  EXPECT_EQ(*r.levels[0].find_count(outerwear), 3u);
  EXPECT_EQ(*r.levels[0].find_count(clothes_cat), 4u);
  EXPECT_EQ(*r.levels[0].find_count(footwear), 4u);
  const std::vector<item_t> ow_boots{2, 7};
  ASSERT_NE(r.levels[1].find_count(ow_boots), nullptr);
  EXPECT_EQ(*r.levels[1].find_count(ow_boots), 2u);
}

TEST(Generalized, CumulateDropsRedundantItemsets) {
  MinerOptions opts;
  opts.min_support = 0.3;
  const MiningResult basic = mine_generalized(
      sa_example(), clothes(), opts, GeneralizedAlgorithm::Basic);
  const MiningResult cumulate = mine_generalized(
      sa_example(), clothes(), opts, GeneralizedAlgorithm::Cumulate);

  const Taxonomy tax = clothes();
  // Basic keeps item+ancestor itemsets like {jacket, outerwear}; Cumulate
  // must not emit any.
  bool basic_has_redundant = false;
  for (std::size_t level = 1; level < basic.levels.size(); ++level) {
    for (std::size_t i = 0; i < basic.levels[level].size(); ++i) {
      basic_has_redundant |=
          tax.has_item_with_ancestor(basic.levels[level].itemset(i));
    }
  }
  EXPECT_TRUE(basic_has_redundant);
  for (std::size_t level = 1; level < cumulate.levels.size(); ++level) {
    for (std::size_t i = 0; i < cumulate.levels[level].size(); ++i) {
      EXPECT_FALSE(tax.has_item_with_ancestor(
          cumulate.levels[level].itemset(i)))
          << format_itemset(cumulate.levels[level].itemset(i));
    }
  }

  // And Cumulate keeps every non-redundant itemset Basic found.
  for (std::size_t level = 0; level < cumulate.levels.size(); ++level) {
    for (std::size_t i = 0; i < basic.levels[level].size(); ++i) {
      const auto itemset = basic.levels[level].itemset(i);
      if (tax.has_item_with_ancestor(itemset)) continue;
      EXPECT_TRUE(cumulate.levels[level].contains(itemset))
          << format_itemset(itemset);
    }
  }
}

TEST(Generalized, MatchesBruteForceOnExtendedDb) {
  QuestParams p;
  p.num_transactions = 300;
  p.avg_transaction_len = 6.0;
  p.avg_pattern_len = 3.0;
  p.num_patterns = 20;
  p.num_items = 40;  // leaf items 0..39; categories 40..55 added below
  p.seed = 77;
  const Database db = generate_quest(p);

  Taxonomy tax(56);
  for (item_t leaf = 0; leaf < 40; ++leaf) {
    tax.add_edge(leaf, 40 + leaf % 12);         // level-1 categories
  }
  for (item_t mid = 40; mid < 52; ++mid) {
    tax.add_edge(mid, 52 + mid % 4);            // level-2 categories
  }
  tax.freeze();

  MinerOptions opts;
  opts.min_support = 0.05;
  opts.threads = 3;
  const MiningResult got =
      mine_generalized(db, tax, opts, GeneralizedAlgorithm::Basic);
  const auto reference =
      brute_force_frequent(extend_database(db, tax), opts.min_support);
  std::string diag;
  EXPECT_TRUE(levels_equal(got.levels, reference, &diag)) << diag;
}

TEST(Generalized, CumulateCountsMatchBasicOnKeptItemsets) {
  QuestParams p;
  p.num_transactions = 200;
  p.avg_transaction_len = 5.0;
  p.avg_pattern_len = 2.5;
  p.num_patterns = 15;
  p.num_items = 30;
  p.seed = 88;
  const Database db = generate_quest(p);
  Taxonomy tax(40);
  for (item_t leaf = 0; leaf < 30; ++leaf) tax.add_edge(leaf, 30 + leaf % 10);
  tax.freeze();

  MinerOptions opts;
  opts.min_support = 0.05;
  const MiningResult basic =
      mine_generalized(db, tax, opts, GeneralizedAlgorithm::Basic);
  const MiningResult cum =
      mine_generalized(db, tax, opts, GeneralizedAlgorithm::Cumulate);
  for (std::size_t level = 0; level < cum.levels.size(); ++level) {
    const FrequentSet& fc = cum.levels[level];
    for (std::size_t i = 0; i < fc.size(); ++i) {
      const count_t* basic_count =
          basic.levels[level].find_count(fc.itemset(i));
      ASSERT_NE(basic_count, nullptr);
      EXPECT_EQ(fc.count(i), *basic_count);
    }
  }
}

TEST(Generalized, InterestFilterDropsPredictedRules) {
  // Construct a case where a specialized rule is fully predicted by its
  // generalization: children split a parent's support evenly.
  // parent 2 has children 0 and 1; item 3 co-occurs with both equally.
  Database db;
  for (int i = 0; i < 20; ++i) db.add_transaction(std::vector<item_t>{0, 3});
  for (int i = 0; i < 20; ++i) db.add_transaction(std::vector<item_t>{1, 3});
  Taxonomy tax(4);
  tax.add_edge(0, 2);
  tax.add_edge(1, 2);
  tax.freeze();

  MinerOptions opts;
  opts.min_support = 0.2;
  const MiningResult r =
      mine_generalized(db, tax, opts, GeneralizedAlgorithm::Cumulate);
  auto rules = generate_rules(r, 0.5, db.size());
  ASSERT_FALSE(rules.empty());

  // {0,3} has support exactly sup({2,3}) * sup(0)/sup(2) = 40 * 0.5 = 20:
  // perfectly predicted, so at min_interest 1.1 it must be dropped while
  // the generalized rule {2}=>{3} (no ancestors) survives.
  const auto filtered =
      filter_interesting_rules(rules, tax, r, 1.1, db.size());
  bool has_specialized = false, has_general = false;
  for (const Rule& rule : filtered) {
    std::vector<item_t> whole(rule.antecedent);
    whole.insert(whole.end(), rule.consequent.begin(), rule.consequent.end());
    std::sort(whole.begin(), whole.end());
    if (whole == std::vector<item_t>{0, 3}) has_specialized = true;
    if (whole == std::vector<item_t>{2, 3}) has_general = true;
  }
  EXPECT_FALSE(has_specialized);
  EXPECT_TRUE(has_general);

  // With min_interest 0 everything passes.
  EXPECT_EQ(filter_interesting_rules(rules, tax, r, 0.0, db.size()).size(),
            rules.size());
}

TEST(Generalized, FlatTaxonomyIsPlainMining) {
  QuestParams p;
  p.num_transactions = 200;
  p.avg_transaction_len = 5.0;
  p.avg_pattern_len = 2.5;
  p.num_patterns = 15;
  p.num_items = 30;
  p.seed = 99;
  const Database db = generate_quest(p);
  const Taxonomy tax(30);  // no edges
  MinerOptions opts;
  opts.min_support = 0.05;
  const MiningResult generalized = mine_generalized(db, tax, opts);
  const MiningResult plain = mine(db, opts);
  std::string diag;
  EXPECT_TRUE(levels_equal(generalized.levels, plain.levels, &diag)) << diag;
}

}  // namespace
}  // namespace smpmine
