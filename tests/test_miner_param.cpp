// Configuration-space property: every optimization knob and placement
// policy changes performance, never results. A fixed dataset is mined under
// each configuration and compared against the plain-baseline output.
#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "core/miner.hpp"
#include "data/quest_gen.hpp"

namespace smpmine {
namespace {

const Database& fixture_db() {
  static const Database db = [] {
    QuestParams p;
    p.num_transactions = 500;
    p.avg_transaction_len = 9.0;
    p.avg_pattern_len = 3.5;
    p.num_patterns = 50;
    p.num_items = 80;
    p.seed = 2024;
    return generate_quest(p);
  }();
  return db;
}

const MiningResult& baseline() {
  static const MiningResult result = [] {
    MinerOptions opts;
    opts.min_support = 0.02;
    opts.balance = PartitionScheme::Block;
    opts.hash_scheme = HashScheme::Interleaved;
    opts.subset_check = SubsetCheck::LeafVisited;
    opts.placement = PlacementPolicy::Malloc;
    return mine_sequential(fixture_db(), opts);
  }();
  return result;
}

struct Config {
  const char* name;
  PlacementPolicy placement;
  CounterMode counter;
  SubsetCheck check;
  HashScheme scheme;
  PartitionScheme balance;
  std::uint32_t threads;
};

class ConfigEquivalenceTest : public ::testing::TestWithParam<Config> {};

TEST_P(ConfigEquivalenceTest, SameFrequentItemsets) {
  const Config& cfg = GetParam();
  MinerOptions opts;
  opts.min_support = 0.02;
  opts.placement = cfg.placement;
  opts.counter_mode = cfg.counter;
  opts.subset_check = cfg.check;
  opts.hash_scheme = cfg.scheme;
  opts.balance = cfg.balance;
  opts.threads = cfg.threads;
  opts.parallel_candgen_threshold = 1;
  const MiningResult got = mine_ccpd(fixture_db(), opts);
  std::string diag;
  EXPECT_TRUE(levels_equal(got.levels, baseline().levels, &diag)) << diag;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ConfigEquivalenceTest,
    ::testing::Values(
        // Every placement policy, sequential.
        Config{"Malloc1", PlacementPolicy::Malloc, CounterMode::Atomic,
               SubsetCheck::FrameLocal, HashScheme::Indirection,
               PartitionScheme::Bitonic, 1},
        Config{"SPP1", PlacementPolicy::SPP, CounterMode::Atomic,
               SubsetCheck::FrameLocal, HashScheme::Indirection,
               PartitionScheme::Bitonic, 1},
        Config{"LPP1", PlacementPolicy::LPP, CounterMode::Atomic,
               SubsetCheck::FrameLocal, HashScheme::Indirection,
               PartitionScheme::Bitonic, 1},
        Config{"GPP1", PlacementPolicy::GPP, CounterMode::Atomic,
               SubsetCheck::FrameLocal, HashScheme::Indirection,
               PartitionScheme::Bitonic, 1},
        Config{"LSPP1", PlacementPolicy::LSPP, CounterMode::Atomic,
               SubsetCheck::FrameLocal, HashScheme::Indirection,
               PartitionScheme::Bitonic, 1},
        Config{"LLPP1", PlacementPolicy::LLPP, CounterMode::Atomic,
               SubsetCheck::FrameLocal, HashScheme::Indirection,
               PartitionScheme::Bitonic, 1},
        Config{"LGPP1", PlacementPolicy::LGPP, CounterMode::Atomic,
               SubsetCheck::FrameLocal, HashScheme::Indirection,
               PartitionScheme::Bitonic, 1},
        Config{"LCAGPP1", PlacementPolicy::LcaGpp, CounterMode::PerThread,
               SubsetCheck::FrameLocal, HashScheme::Indirection,
               PartitionScheme::Bitonic, 1},
        // Every placement policy, parallel.
        Config{"Malloc4", PlacementPolicy::Malloc, CounterMode::Atomic,
               SubsetCheck::FrameLocal, HashScheme::Indirection,
               PartitionScheme::Bitonic, 4},
        Config{"SPP4", PlacementPolicy::SPP, CounterMode::Atomic,
               SubsetCheck::FrameLocal, HashScheme::Indirection,
               PartitionScheme::Bitonic, 4},
        Config{"LPP4", PlacementPolicy::LPP, CounterMode::Atomic,
               SubsetCheck::FrameLocal, HashScheme::Indirection,
               PartitionScheme::Bitonic, 4},
        Config{"GPP4", PlacementPolicy::GPP, CounterMode::Atomic,
               SubsetCheck::FrameLocal, HashScheme::Indirection,
               PartitionScheme::Bitonic, 4},
        Config{"LGPP4", PlacementPolicy::LGPP, CounterMode::Atomic,
               SubsetCheck::FrameLocal, HashScheme::Indirection,
               PartitionScheme::Bitonic, 4},
        Config{"LCAGPP4", PlacementPolicy::LcaGpp, CounterMode::PerThread,
               SubsetCheck::FrameLocal, HashScheme::Indirection,
               PartitionScheme::Bitonic, 4},
        // Counter disciplines under contention.
        Config{"Locked4", PlacementPolicy::SPP, CounterMode::Locked,
               SubsetCheck::FrameLocal, HashScheme::Indirection,
               PartitionScheme::Bitonic, 4},
        Config{"LockedSeg4", PlacementPolicy::LSPP, CounterMode::Locked,
               SubsetCheck::FrameLocal, HashScheme::Indirection,
               PartitionScheme::Bitonic, 4},
        // Subset-check strategies.
        Config{"LeafVisited4", PlacementPolicy::SPP, CounterMode::Atomic,
               SubsetCheck::LeafVisited, HashScheme::Indirection,
               PartitionScheme::Bitonic, 4},
        Config{"VisitedFlags4", PlacementPolicy::SPP, CounterMode::Atomic,
               SubsetCheck::VisitedFlags, HashScheme::Indirection,
               PartitionScheme::Bitonic, 4},
        // Hash schemes.
        Config{"ModHash4", PlacementPolicy::SPP, CounterMode::Atomic,
               SubsetCheck::FrameLocal, HashScheme::Interleaved,
               PartitionScheme::Bitonic, 4},
        Config{"ClosedBitonic4", PlacementPolicy::SPP, CounterMode::Atomic,
               SubsetCheck::FrameLocal, HashScheme::Bitonic,
               PartitionScheme::Bitonic, 4},
        // Generation balancing schemes.
        Config{"BlockGen4", PlacementPolicy::SPP, CounterMode::Atomic,
               SubsetCheck::FrameLocal, HashScheme::Indirection,
               PartitionScheme::Block, 4},
        Config{"InterleavedGen4", PlacementPolicy::SPP, CounterMode::Atomic,
               SubsetCheck::FrameLocal, HashScheme::Indirection,
               PartitionScheme::Interleaved, 4}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace smpmine
