#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace smpmine {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng rng(0);
  // A degenerate all-zero state would emit zeros forever.
  bool any_nonzero = false;
  for (int i = 0; i < 16; ++i) any_nonzero |= rng.next_u64() != 0;
  EXPECT_TRUE(any_nonzero);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1048576ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform(bound), bound);
    }
  }
}

TEST(Rng, UniformBoundOneIsZero) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(1), 0u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(0), 0u);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, SplitDecorrelates) {
  Rng parent(19);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

class RngMomentTest : public ::testing::TestWithParam<double> {};

TEST_P(RngMomentTest, PoissonMeanMatches) {
  const double mean = GetParam();
  Rng rng(23);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.poisson(mean);
  const double sample_mean = sum / n;
  // Standard error ~ sqrt(mean/n); allow 6 sigma.
  EXPECT_NEAR(sample_mean, mean, 6.0 * std::sqrt(mean / n) + 1e-9);
}

TEST_P(RngMomentTest, ExponentialMeanMatches) {
  const double mean = GetParam();
  if (mean <= 0.0) GTEST_SKIP();
  Rng rng(29);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.exponential(mean);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, mean, 6.0 * mean / std::sqrt(n));
}

INSTANTIATE_TEST_SUITE_P(Means, RngMomentTest,
                         ::testing::Values(0.25, 1.0, 4.0, 10.0, 20.0, 45.0));

TEST(Rng, NormalMoments) {
  Rng rng(31);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(3.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(37);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

}  // namespace
}  // namespace smpmine
