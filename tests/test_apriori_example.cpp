// The paper's worked example (Section 2.1.3):
//   D = {T1=(1,4,5), T2=(1,2), T3=(3,4,5), T4=(1,2,4,5)}, min support 2/4.
//   F1 = {(1),(2),(4),(5)}
//   C2 = all six pairs, F2 = {(1,2),(1,4),(1,5),(4,5)}
//   C3 = {(1,4,5)} (pruning kills (1,2,4) and (1,2,5)), F3 = {(1,4,5)}.
#include <gtest/gtest.h>

#include "core/miner.hpp"
#include "itemset/itemset.hpp"

namespace smpmine {
namespace {

Database example_db() {
  Database db;
  db.add_transaction(std::vector<item_t>{1, 4, 5});
  db.add_transaction(std::vector<item_t>{1, 2});
  db.add_transaction(std::vector<item_t>{3, 4, 5});
  db.add_transaction(std::vector<item_t>{1, 2, 4, 5});
  return db;
}

MinerOptions example_options() {
  MinerOptions opts;
  opts.min_support = 0.5;  // absolute count 2 of 4
  return opts;
}

void check_example(const MiningResult& result) {
  ASSERT_EQ(result.levels.size(), 3u);

  const FrequentSet& f1 = result.levels[0];
  ASSERT_EQ(f1.size(), 4u);
  EXPECT_EQ(f1.itemset(0)[0], 1u);
  EXPECT_EQ(f1.itemset(3)[0], 5u);

  const FrequentSet& f2 = result.levels[1];
  ASSERT_EQ(f2.size(), 4u);
  EXPECT_EQ(compare_itemsets(f2.itemset(0), std::vector<item_t>{1, 2}), 0);
  EXPECT_EQ(compare_itemsets(f2.itemset(1), std::vector<item_t>{1, 4}), 0);
  EXPECT_EQ(compare_itemsets(f2.itemset(2), std::vector<item_t>{1, 5}), 0);
  EXPECT_EQ(compare_itemsets(f2.itemset(3), std::vector<item_t>{4, 5}), 0);
  EXPECT_EQ(f2.count(0), 2u);
  EXPECT_EQ(f2.count(3), 3u);

  const FrequentSet& f3 = result.levels[2];
  ASSERT_EQ(f3.size(), 1u);
  EXPECT_EQ(compare_itemsets(f3.itemset(0), std::vector<item_t>{1, 4, 5}), 0);
  EXPECT_EQ(f3.count(0), 2u);
}

TEST(AprioriExample, SequentialMatchesPaper) {
  check_example(mine_sequential(example_db(), example_options()));
}

TEST(AprioriExample, CandidateCountsMatchPaper) {
  const MiningResult result =
      mine_sequential(example_db(), example_options());
  ASSERT_GE(result.iterations.size(), 2u);
  EXPECT_EQ(result.iterations[0].k, 2u);
  EXPECT_EQ(result.iterations[0].candidates, 6u);  // |C2| = 6
  EXPECT_EQ(result.iterations[1].k, 3u);
  EXPECT_EQ(result.iterations[1].candidates, 1u);  // |C3| = 1
  EXPECT_EQ(result.iterations[1].pruned, 2u);      // (1,2,4), (1,2,5)
}

TEST(AprioriExample, ParallelCcpdMatchesPaper) {
  MinerOptions opts = example_options();
  opts.threads = 4;
  opts.parallel_candgen_threshold = 1;  // force the parallel path
  check_example(mine_ccpd(example_db(), opts));
}

TEST(AprioriExample, PccdMatchesPaper) {
  MinerOptions opts = example_options();
  opts.threads = 2;
  opts.algorithm = Algorithm::PCCD;
  check_example(mine(example_db(), opts));
}

TEST(AprioriExample, HigherSupportStopsEarlier) {
  MinerOptions opts = example_options();
  opts.min_support = 0.75;  // absolute count 3
  const MiningResult result = mine_sequential(example_db(), opts);
  // F1 = {1,4,5}, F2 = {(4,5)} only, no F3.
  ASSERT_EQ(result.levels.size(), 2u);
  EXPECT_EQ(result.levels[0].size(), 3u);
  EXPECT_EQ(result.levels[1].size(), 1u);
  EXPECT_EQ(compare_itemsets(result.levels[1].itemset(0),
                             std::vector<item_t>{4, 5}),
            0);
}

TEST(AprioriExample, SupportAboveEverythingYieldsNothing) {
  MinerOptions opts = example_options();
  opts.min_support = 1.0;
  const MiningResult result = mine_sequential(example_db(), opts);
  EXPECT_EQ(result.total_frequent(), 0u);
}

}  // namespace
}  // namespace smpmine
