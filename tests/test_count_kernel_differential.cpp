// Count-kernel differential tests: the frozen flat kernel must produce
// bit-identical frequent sets (itemsets AND support counts) to the pointer
// walk across the full SubsetCheck x CounterMode matrix, for both miners
// and for single- and multi-threaded runs. The flat kernel ignores the
// subset-check knob (it always dedups frame-locally), so sweeping it here
// proves the choice really is count-neutral.
#include <gtest/gtest.h>

#include <string>

#include "core/brute_force.hpp"
#include "core/miner.hpp"
#include "data/quest_gen.hpp"

namespace smpmine {
namespace {

Database small_quest_db() {
  QuestParams p;
  p.num_transactions = 400;
  p.avg_transaction_len = 8.0;
  p.avg_pattern_len = 3.0;
  p.num_patterns = 30;
  p.num_items = 60;
  p.seed = 42;
  return generate_quest(p);
}

struct KernelCase {
  SubsetCheck check;
  CounterMode counters;
  std::uint32_t threads;
};

std::string case_name(const ::testing::TestParamInfo<KernelCase>& info) {
  std::string name = to_string(info.param.check);
  name += '_';
  name += to_string(info.param.counters);
  name += "_p";
  name += std::to_string(info.param.threads);
  std::erase_if(name, [](char c) { return c == '-'; });
  return name;
}

MinerOptions case_options(const KernelCase& c) {
  MinerOptions opts;
  opts.min_support = 0.02;
  opts.threads = c.threads;
  opts.subset_check = c.check;
  opts.counter_mode = c.counters;
  // LCA-GPP (the default placement) forces per-thread counters; use a
  // placement that honours the swept counter mode instead.
  opts.placement = c.counters == CounterMode::PerThread
                       ? PlacementPolicy::LcaGpp
                       : PlacementPolicy::SPP;
  return opts;
}

class CountKernelDifferentialTest
    : public ::testing::TestWithParam<KernelCase> {};

TEST_P(CountKernelDifferentialTest, CcpdFlatMatchesPointer) {
  const Database db = small_quest_db();
  MinerOptions opts = case_options(GetParam());

  opts.count_kernel = CountKernel::Pointer;
  const MiningResult pointer = mine_ccpd(db, opts);
  opts.count_kernel = CountKernel::Flat;
  const MiningResult flat = mine_ccpd(db, opts);
  SCOPED_TRACE(opts.summary());

  std::string diag;
  EXPECT_TRUE(levels_equal(pointer.levels, flat.levels, &diag)) << diag;
  // Both kernels agree with ground truth, not merely with each other.
  const auto reference = brute_force_frequent(db, opts.min_support);
  EXPECT_TRUE(levels_equal(flat.levels, reference, &diag)) << diag;
}

TEST_P(CountKernelDifferentialTest, PccdFlatMatchesPointer) {
  const Database db = small_quest_db();
  MinerOptions opts = case_options(GetParam());

  opts.count_kernel = CountKernel::Pointer;
  const MiningResult pointer = mine_pccd(db, opts);
  opts.count_kernel = CountKernel::Flat;
  const MiningResult flat = mine_pccd(db, opts);
  SCOPED_TRACE(opts.summary());

  std::string diag;
  EXPECT_TRUE(levels_equal(pointer.levels, flat.levels, &diag)) << diag;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CountKernelDifferentialTest,
    ::testing::ValuesIn([] {
      std::vector<KernelCase> cases;
      for (const SubsetCheck check :
           {SubsetCheck::LeafVisited, SubsetCheck::VisitedFlags,
            SubsetCheck::FrameLocal}) {
        for (const CounterMode counters :
             {CounterMode::Atomic, CounterMode::Locked,
              CounterMode::PerThread}) {
          for (const std::uint32_t threads : {1u, 4u}) {
            cases.push_back({check, counters, threads});
          }
        }
      }
      return cases;
    }()),
    case_name);

// The flat kernel records its tiling in the per-iteration stats; a run
// that claims the flat kernel but reports zero tiles would mean the
// fallback silently engaged.
TEST(CountKernelStats, FlatRunReportsTiles) {
  const Database db = small_quest_db();
  MinerOptions opts;
  opts.min_support = 0.02;
  opts.count_kernel = CountKernel::Flat;
  const MiningResult r = mine_ccpd(db, opts);
  ASSERT_FALSE(r.iterations.empty());
  for (const IterationStats& it : r.iterations) {
    if (it.candidates == 0) continue;
    EXPECT_GT(it.count_tiles, 0u) << "k=" << it.k;
    EXPECT_GT(it.count_tile_size, 0u) << "k=" << it.k;
    EXPECT_GE(it.freeze_seconds, 0.0);
  }
}

TEST(CountKernelStats, PointerRunReportsNoTiles) {
  const Database db = small_quest_db();
  MinerOptions opts;
  opts.min_support = 0.02;
  opts.count_kernel = CountKernel::Pointer;
  const MiningResult r = mine_ccpd(db, opts);
  ASSERT_FALSE(r.iterations.empty());
  for (const IterationStats& it : r.iterations) {
    EXPECT_EQ(it.count_tiles, 0u) << "k=" << it.k;
    EXPECT_EQ(it.freeze_seconds, 0.0) << "k=" << it.k;
  }
}

}  // namespace
}  // namespace smpmine
