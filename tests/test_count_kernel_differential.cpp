// Count-kernel differential tests: every frozen-layout kernel (flat,
// vertical, and the Auto chooser) must produce bit-identical frequent sets
// (itemsets AND support counts) to the pointer walk across the full
// SubsetCheck x CounterMode matrix, for both miners and for single- and
// multi-threaded runs. The frozen kernels ignore the subset-check knob
// (flat always dedups frame-locally; vertical never traverses), so
// sweeping it here proves the choice really is count-neutral. A second
// dimension sweeps the SIMD leaf-scan backend: every supported backend
// must match the scalar reference bit for bit.
#include <gtest/gtest.h>

#include <string>

#include "core/brute_force.hpp"
#include "core/miner.hpp"
#include "data/quest_gen.hpp"
#include "hashtree/count_kernel.hpp"
#include "util/cpu_features.hpp"

namespace smpmine {
namespace {

Database small_quest_db() {
  QuestParams p;
  p.num_transactions = 400;
  p.avg_transaction_len = 8.0;
  p.avg_pattern_len = 3.0;
  p.num_patterns = 30;
  p.num_items = 60;
  p.seed = 42;
  return generate_quest(p);
}

struct KernelCase {
  SubsetCheck check;
  CounterMode counters;
  std::uint32_t threads;
};

std::string case_name(const ::testing::TestParamInfo<KernelCase>& info) {
  std::string name = to_string(info.param.check);
  name += '_';
  name += to_string(info.param.counters);
  name += "_p";
  name += std::to_string(info.param.threads);
  std::erase_if(name, [](char c) { return c == '-'; });
  return name;
}

MinerOptions case_options(const KernelCase& c) {
  MinerOptions opts;
  opts.min_support = 0.02;
  opts.threads = c.threads;
  opts.subset_check = c.check;
  opts.counter_mode = c.counters;
  // LCA-GPP (the default placement) forces per-thread counters; use a
  // placement that honours the swept counter mode instead.
  opts.placement = c.counters == CounterMode::PerThread
                       ? PlacementPolicy::LcaGpp
                       : PlacementPolicy::SPP;
  return opts;
}

class CountKernelDifferentialTest
    : public ::testing::TestWithParam<KernelCase> {};

TEST_P(CountKernelDifferentialTest, CcpdFlatMatchesPointer) {
  const Database db = small_quest_db();
  MinerOptions opts = case_options(GetParam());

  opts.count_kernel = CountKernel::Pointer;
  const MiningResult pointer = mine_ccpd(db, opts);
  opts.count_kernel = CountKernel::Flat;
  const MiningResult flat = mine_ccpd(db, opts);
  SCOPED_TRACE(opts.summary());

  std::string diag;
  EXPECT_TRUE(levels_equal(pointer.levels, flat.levels, &diag)) << diag;
  // Both kernels agree with ground truth, not merely with each other.
  const auto reference = brute_force_frequent(db, opts.min_support);
  EXPECT_TRUE(levels_equal(flat.levels, reference, &diag)) << diag;
}

TEST_P(CountKernelDifferentialTest, PccdFlatMatchesPointer) {
  const Database db = small_quest_db();
  MinerOptions opts = case_options(GetParam());

  opts.count_kernel = CountKernel::Pointer;
  const MiningResult pointer = mine_pccd(db, opts);
  opts.count_kernel = CountKernel::Flat;
  const MiningResult flat = mine_pccd(db, opts);
  SCOPED_TRACE(opts.summary());

  std::string diag;
  EXPECT_TRUE(levels_equal(pointer.levels, flat.levels, &diag)) << diag;
}

TEST_P(CountKernelDifferentialTest, CcpdVerticalMatchesPointer) {
  const Database db = small_quest_db();
  MinerOptions opts = case_options(GetParam());

  opts.count_kernel = CountKernel::Pointer;
  const MiningResult pointer = mine_ccpd(db, opts);
  opts.count_kernel = CountKernel::Vertical;
  const MiningResult vertical = mine_ccpd(db, opts);
  SCOPED_TRACE(opts.summary());

  std::string diag;
  EXPECT_TRUE(levels_equal(pointer.levels, vertical.levels, &diag)) << diag;
  for (const IterationStats& it : vertical.iterations) {
    if (it.candidates == 0) continue;
    EXPECT_EQ(it.count_kernel_used, "vertical") << "k=" << it.k;
    EXPECT_GT(it.vert_rows, 0u) << "k=" << it.k;
    EXPECT_GT(it.vert_words, 0u) << "k=" << it.k;
  }
}

TEST_P(CountKernelDifferentialTest, PccdVerticalMatchesPointer) {
  const Database db = small_quest_db();
  MinerOptions opts = case_options(GetParam());

  opts.count_kernel = CountKernel::Pointer;
  const MiningResult pointer = mine_pccd(db, opts);
  opts.count_kernel = CountKernel::Vertical;
  const MiningResult vertical = mine_pccd(db, opts);
  SCOPED_TRACE(opts.summary());

  std::string diag;
  EXPECT_TRUE(levels_equal(pointer.levels, vertical.levels, &diag)) << diag;
}

TEST_P(CountKernelDifferentialTest, CcpdAutoMatchesPointer) {
  const Database db = small_quest_db();
  MinerOptions opts = case_options(GetParam());

  opts.count_kernel = CountKernel::Pointer;
  const MiningResult pointer = mine_ccpd(db, opts);
  opts.count_kernel = CountKernel::Auto;
  const MiningResult automatic = mine_ccpd(db, opts);
  SCOPED_TRACE(opts.summary());

  std::string diag;
  EXPECT_TRUE(levels_equal(pointer.levels, automatic.levels, &diag)) << diag;
  // Auto must resolve to a concrete kernel every iteration and record it.
  for (const IterationStats& it : automatic.iterations) {
    if (it.candidates == 0) continue;
    EXPECT_TRUE(it.count_kernel_used == "flat" ||
                it.count_kernel_used == "vertical" ||
                it.count_kernel_used == "pointer")
        << "k=" << it.k << " used=" << it.count_kernel_used;
    EXPECT_NE(it.count_kernel_used, "auto") << "k=" << it.k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CountKernelDifferentialTest,
    ::testing::ValuesIn([] {
      std::vector<KernelCase> cases;
      for (const SubsetCheck check :
           {SubsetCheck::LeafVisited, SubsetCheck::VisitedFlags,
            SubsetCheck::FrameLocal}) {
        for (const CounterMode counters :
             {CounterMode::Atomic, CounterMode::Locked,
              CounterMode::PerThread}) {
          for (const std::uint32_t threads : {1u, 4u}) {
            cases.push_back({check, counters, threads});
          }
        }
      }
      return cases;
    }()),
    case_name);

// The flat kernel records its tiling in the per-iteration stats; a run
// that claims the flat kernel but reports zero tiles would mean the
// fallback silently engaged.
TEST(CountKernelStats, FlatRunReportsTiles) {
  const Database db = small_quest_db();
  MinerOptions opts;
  opts.min_support = 0.02;
  opts.count_kernel = CountKernel::Flat;
  const MiningResult r = mine_ccpd(db, opts);
  ASSERT_FALSE(r.iterations.empty());
  for (const IterationStats& it : r.iterations) {
    if (it.candidates == 0) continue;
    EXPECT_GT(it.count_tiles, 0u) << "k=" << it.k;
    EXPECT_GT(it.count_tile_size, 0u) << "k=" << it.k;
    EXPECT_GE(it.freeze_seconds, 0.0);
  }
}

TEST(CountKernelStats, PointerRunReportsNoTiles) {
  const Database db = small_quest_db();
  MinerOptions opts;
  opts.min_support = 0.02;
  opts.count_kernel = CountKernel::Pointer;
  const MiningResult r = mine_ccpd(db, opts);
  ASSERT_FALSE(r.iterations.empty());
  for (const IterationStats& it : r.iterations) {
    EXPECT_EQ(it.count_tiles, 0u) << "k=" << it.k;
    EXPECT_EQ(it.freeze_seconds, 0.0) << "k=" << it.k;
    EXPECT_EQ(it.count_kernel_used, "pointer") << "k=" << it.k;
    EXPECT_EQ(it.vertbuild_seconds, 0.0) << "k=" << it.k;
  }
}

// Each iteration's manifest line must name the kernel that actually ran —
// the fixed kernels report themselves, and vertical runs charge a
// vertbuild and no tiles.
TEST(CountKernelStats, KernelUsedIsRecorded) {
  const Database db = small_quest_db();
  MinerOptions opts;
  opts.min_support = 0.02;

  opts.count_kernel = CountKernel::Flat;
  const MiningResult flat = mine_ccpd(db, opts);
  for (const IterationStats& it : flat.iterations) {
    if (it.candidates == 0) continue;
    EXPECT_EQ(it.count_kernel_used, "flat") << "k=" << it.k;
    EXPECT_EQ(it.vertbuild_seconds, 0.0) << "k=" << it.k;
  }

  opts.count_kernel = CountKernel::Vertical;
  const MiningResult vertical = mine_ccpd(db, opts);
  for (const IterationStats& it : vertical.iterations) {
    if (it.candidates == 0) continue;
    EXPECT_EQ(it.count_kernel_used, "vertical") << "k=" << it.k;
    EXPECT_EQ(it.count_tiles, 0u) << "k=" << it.k;
    EXPECT_EQ(it.count_tile_size, 0u) << "k=" << it.k;
    EXPECT_GE(it.vertbuild_seconds, 0.0) << "k=" << it.k;
  }
}

// The SIMD leaf-scan backends must match the scalar reference bit for bit:
// same frequent sets, same counts, same traversal work counters. Runs the
// whole miner under each supported backend (the override is clamped to
// what the host supports, so this test passes trivially-scalar on machines
// without AVX2/NEON).
TEST(SimdBackendDifferential, AllSupportedBackendsMatchScalar) {
  const Database db = small_quest_db();
  MinerOptions opts;
  opts.min_support = 0.02;
  opts.threads = 2;
  opts.count_kernel = CountKernel::Flat;

  const SimdBackend restore = simd_backend();
  set_simd_backend(SimdBackend::Scalar);
  const MiningResult scalar = mine_ccpd(db, opts);

  for (const SimdBackend backend : {SimdBackend::Avx2, SimdBackend::Neon}) {
    const SimdBackend actual = set_simd_backend(backend);
    if (actual != backend) continue;  // host cannot run this backend
    const MiningResult vec = mine_ccpd(db, opts);
    std::string diag;
    EXPECT_TRUE(levels_equal(scalar.levels, vec.levels, &diag))
        << to_string(backend) << ": " << diag;
    ASSERT_EQ(scalar.iterations.size(), vec.iterations.size());
    for (std::size_t i = 0; i < scalar.iterations.size(); ++i) {
      EXPECT_EQ(scalar.iterations[i].containment_checks,
                vec.iterations[i].containment_checks)
          << to_string(backend) << " k=" << scalar.iterations[i].k;
      EXPECT_EQ(scalar.iterations[i].hits, vec.iterations[i].hits)
          << to_string(backend) << " k=" << scalar.iterations[i].k;
    }
  }
  set_simd_backend(restore);
}

// Cost-model unit coverage: the chooser prefers vertical exactly when few
// deep candidates face a large database, degrades past kMaxK, and passes
// fixed kernels through.
TEST(CountKernelChooser, ResolvesRequestsAndCostModel) {
  KernelCostInputs in;
  in.k = 6;
  in.candidates = 10;
  in.distinct_items = 40;
  in.transactions = 100000;
  in.avg_transaction_len = 10.0;
  in.max_flat_k = 64;
  // 10 deep candidates against 100K transactions: vertical's word traffic
  // is orders of magnitude below a full horizontal scan.
  EXPECT_TRUE(vertical_wins(in));
  EXPECT_EQ(resolve_count_kernel(CountKernel::Auto, in),
            CountKernel::Vertical);

  // Early-iteration shape: many shallow candidates, vertical loses.
  in.k = 2;
  in.candidates = 200000;
  in.distinct_items = 800;
  EXPECT_FALSE(vertical_wins(in));
  EXPECT_EQ(resolve_count_kernel(CountKernel::Auto, in), CountKernel::Flat);

  // Fixed kernels pass through untouched.
  EXPECT_EQ(resolve_count_kernel(CountKernel::Pointer, in),
            CountKernel::Pointer);
  EXPECT_EQ(resolve_count_kernel(CountKernel::Flat, in), CountKernel::Flat);
  EXPECT_EQ(resolve_count_kernel(CountKernel::Vertical, in),
            CountKernel::Vertical);

  // Past the flat layout's bound everything degrades to the pointer walk.
  in.k = 65;
  EXPECT_EQ(resolve_count_kernel(CountKernel::Flat, in),
            CountKernel::Pointer);
  EXPECT_EQ(resolve_count_kernel(CountKernel::Vertical, in),
            CountKernel::Pointer);
  EXPECT_EQ(resolve_count_kernel(CountKernel::Auto, in),
            CountKernel::Pointer);
}

}  // namespace
}  // namespace smpmine
