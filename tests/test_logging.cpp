#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace smpmine {
namespace {

TEST(Logging, LevelRoundTrip) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  set_log_level(original);
}

TEST(Logging, SuppressedBelowThresholdDoesNotCrash) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Error);
  SMP_LOG_DEBUG("dropped %d", 1);
  SMP_LOG_INFO("dropped %s", "too");
  SMP_LOG_ERROR("emitted %d", 2);
  set_log_level(original);
}

TEST(Logging, LongMessageIsTruncatedSafely) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Error);
  const std::string big(4000, 'x');
  SMP_LOG_ERROR("%s", big.c_str());
  set_log_level(original);
}

}  // namespace
}  // namespace smpmine
