#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <cstdarg>
#include <cstring>
#include <regex>
#include <string>

#include "obs/flight/flight_recorder.hpp"

namespace smpmine {
namespace {

/// Variadic shim: format_log_line takes a va_list so logf can forward to
/// it; tests need a plain varargs front end.
std::size_t fmt_line(char* buf, std::size_t size, LogLevel level,
                     const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  const std::size_t len = format_log_line(buf, size, level, fmt, args);
  va_end(args);
  return len;
}

TEST(Logging, LevelRoundTrip) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  set_log_level(original);
}

TEST(Logging, SuppressedBelowThresholdDoesNotCrash) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Error);
  SMP_LOG_DEBUG("dropped %d", 1);
  SMP_LOG_INFO("dropped %s", "too");
  SMP_LOG_ERROR("emitted %d", 2);
  set_log_level(original);
}

TEST(Logging, LongMessageIsTruncatedSafely) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Error);
  const std::string big(4000, 'x');
  SMP_LOG_ERROR("%s", big.c_str());
  set_log_level(original);
}

TEST(Logging, LinePrefixHasTimestampThreadNameAndLevel) {
  obs::flight::set_current_thread_name("log fmt");
  char buf[256];
  const std::size_t len =
      fmt_line(buf, sizeof buf, LogLevel::Warn, "tree %s k=%d", "rebuilt", 3);
  const std::string line(buf);
  EXPECT_EQ(line.size(), len);
  // Pinned format: `[<sec>.<usec6>] [<thread>] [LEVEL] <message>\n`.
  const std::regex shape(
      R"(\[\d+\.\d{6}\] \[log fmt\] \[WARN\] tree rebuilt k=3\n)");
  EXPECT_TRUE(std::regex_match(line, shape)) << line;
}

TEST(Logging, LevelTagsMatchSeverity) {
  char buf[256];
  const struct {
    LogLevel level;
    const char* tag;
  } cases[] = {{LogLevel::Debug, "[DEBUG] "},
               {LogLevel::Info, "[INFO] "},
               {LogLevel::Warn, "[WARN] "},
               {LogLevel::Error, "[ERROR] "}};
  for (const auto& c : cases) {
    fmt_line(buf, sizeof buf, c.level, "x");
    EXPECT_NE(std::strstr(buf, c.tag), nullptr) << buf;
  }
}

TEST(Logging, FormatTruncatesIntoSmallBufferWithTrailingNewline) {
  char buf[48];
  const std::string big(500, 'y');
  const std::size_t len =
      fmt_line(buf, sizeof buf, LogLevel::Error, "%s", big.c_str());
  EXPECT_LT(len, sizeof buf);
  EXPECT_EQ(std::strlen(buf), len);
  EXPECT_EQ(buf[len - 1], '\n');
}

TEST(Logging, WarnAndErrorLandInFlightRingEvenWhenConsoleSuppressed) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Error);  // WARN is below the console threshold
  const std::uint64_t before = obs::flight::event_count();
  SMP_LOG_WARN("suppressed on console, kept in the black box %d", 1);
  EXPECT_EQ(obs::flight::event_count(), before + 1);
  SMP_LOG_ERROR("also recorded %d", 2);
  EXPECT_EQ(obs::flight::event_count(), before + 2);
  set_log_level(original);
}

}  // namespace
}  // namespace smpmine
