#include "core/stats.hpp"

#include <gtest/gtest.h>

namespace smpmine {
namespace {

MiningResult sample_result() {
  MiningResult r;
  r.levels.emplace_back(1, std::vector<item_t>{1, 2, 3},
                        std::vector<count_t>{10, 9, 8});
  r.levels.emplace_back(2, std::vector<item_t>{1, 2, 1, 3},
                        std::vector<count_t>{7, 6});
  IterationStats it;
  it.k = 2;
  it.candidates = 3;
  it.frequent = 2;
  it.fanout = 4;
  it.tree_nodes = 5;
  it.count_busy_sum = 4.0;
  it.count_busy_max = 1.0;
  it.internal_visits = 100;
  it.leaf_visits = 50;
  it.containment_checks = 25;
  it.candgen_seconds = 0.5;
  it.count_seconds = 1.5;
  r.iterations.push_back(it);
  r.total_seconds = 2.5;
  return r;
}

TEST(Stats, Totals) {
  const MiningResult r = sample_result();
  EXPECT_EQ(r.total_frequent(), 5u);
  EXPECT_EQ(r.total_candidates(), 3u);
  EXPECT_EQ(r.traversal_work(), 175u);
}

TEST(Stats, WorkSpeedup) {
  const MiningResult r = sample_result();
  EXPECT_DOUBLE_EQ(r.work_speedup(), 4.0);
  MiningResult empty;
  EXPECT_DOUBLE_EQ(empty.work_speedup(), 1.0);
}

TEST(Stats, PhaseTotal) {
  const MiningResult r = sample_result();
  EXPECT_DOUBLE_EQ(r.phase_total(&IterationStats::candgen_seconds), 0.5);
  EXPECT_DOUBLE_EQ(r.phase_total(&IterationStats::count_seconds), 1.5);
}

TEST(Stats, IterationTotalSeconds) {
  IterationStats it;
  it.candgen_seconds = 1;
  it.remap_seconds = 2;
  it.count_seconds = 3;
  it.reduce_seconds = 4;
  it.select_seconds = 5;
  EXPECT_DOUBLE_EQ(it.total_seconds(), 15.0);
}

TEST(Stats, ReportContainsIterationRows) {
  const std::string report = sample_result().report();
  EXPECT_NE(report.find("candidates"), std::string::npos);
  EXPECT_NE(report.find("total frequent itemsets: 5"), std::string::npos);
}

}  // namespace
}  // namespace smpmine
