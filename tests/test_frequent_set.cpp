#include "itemset/frequent_set.hpp"

#include <gtest/gtest.h>

namespace smpmine {
namespace {

FrequentSet make_f2() {
  // F2 from the paper's worked example: {(1,2),(1,4),(1,5),(4,5)}.
  return FrequentSet(2, {1, 2, 1, 4, 1, 5, 4, 5}, {2, 2, 2, 3});
}

TEST(FrequentSet, BasicAccessors) {
  const FrequentSet f = make_f2();
  EXPECT_EQ(f.k(), 2u);
  EXPECT_EQ(f.size(), 4u);
  EXPECT_FALSE(f.empty());
  EXPECT_EQ(f.itemset(1)[1], 4u);
  EXPECT_EQ(f.count(3), 3u);
}

TEST(FrequentSet, Contains) {
  const FrequentSet f = make_f2();
  const std::vector<item_t> yes{1, 4};
  const std::vector<item_t> no{2, 4};
  EXPECT_TRUE(f.contains(yes));
  EXPECT_FALSE(f.contains(no));
}

TEST(FrequentSet, ContainsRejectsWrongLength) {
  const FrequentSet f = make_f2();
  const std::vector<item_t> one{1};
  const std::vector<item_t> three{1, 4, 5};
  EXPECT_FALSE(f.contains(one));
  EXPECT_FALSE(f.contains(three));
}

TEST(FrequentSet, FindCount) {
  const FrequentSet f = make_f2();
  const std::vector<item_t> key{4, 5};
  const count_t* count = f.find_count(key);
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(*count, 3u);
  const std::vector<item_t> missing{2, 5};
  EXPECT_EQ(f.find_count(missing), nullptr);
}

TEST(FrequentSet, EmptySet) {
  const FrequentSet f(3);
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.k(), 3u);
  const std::vector<item_t> key{1, 2, 3};
  EXPECT_FALSE(f.contains(key));
  EXPECT_EQ(f.find_count(key), nullptr);
}

TEST(FrequentSet, ShapeMismatchThrows) {
  EXPECT_THROW(FrequentSet(2, {1, 2, 3}, {1}), std::invalid_argument);
  EXPECT_THROW(FrequentSet(0, {}, {}), std::invalid_argument);
}

TEST(FrequentSet, LargeIndexAllRecordsFindable) {
  // Exercise the linear-probing index past a few resizing thresholds.
  const std::size_t n = 5000;
  std::vector<item_t> flat;
  std::vector<count_t> counts;
  for (std::size_t i = 0; i < n; ++i) {
    flat.push_back(static_cast<item_t>(i / 70));
    flat.push_back(static_cast<item_t>(100 + i % 70));
    counts.push_back(static_cast<count_t>(i + 1));
  }
  const FrequentSet f(2, std::move(flat), std::move(counts));
  for (std::size_t i = 0; i < n; i += 97) {
    const std::vector<item_t> key{static_cast<item_t>(i / 70),
                                  static_cast<item_t>(100 + i % 70)};
    const count_t* c = f.find_count(key);
    ASSERT_NE(c, nullptr) << i;
    EXPECT_EQ(*c, i + 1);
  }
  const std::vector<item_t> absent{999, 999};
  EXPECT_FALSE(f.contains(absent));
}

TEST(FrequentSet, F1Works) {
  const FrequentSet f1(1, {1, 2, 4, 5}, {3, 2, 3, 3});
  EXPECT_EQ(f1.size(), 4u);
  const std::vector<item_t> four{4};
  ASSERT_NE(f1.find_count(four), nullptr);
  EXPECT_EQ(*f1.find_count(four), 3u);
}

}  // namespace
}  // namespace smpmine
