#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace smpmine {
namespace {

CliParser make_parser() {
  CliParser cli;
  cli.add_flag("threads", "worker count", "1");
  cli.add_flag("support", "min support", "0.005");
  cli.add_flag("full", "run full sizes");
  cli.add_flag("name", "dataset name");
  return cli;
}

bool parse(CliParser& cli, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return cli.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsForm) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--threads=8", "--support=0.001"}));
  EXPECT_EQ(cli.get_int("threads", 1), 8);
  EXPECT_DOUBLE_EQ(cli.get_double("support", 0.0), 0.001);
}

TEST(Cli, SpaceForm) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--threads", "4", "--name", "T10.I4.D100K"}));
  EXPECT_EQ(cli.get_int("threads", 1), 4);
  EXPECT_EQ(cli.get("name", ""), "T10.I4.D100K");
}

TEST(Cli, BooleanFlag) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--full"}));
  EXPECT_TRUE(cli.get_bool("full", false));
  EXPECT_FALSE(cli.get_bool("missing-but-unregistered", false));
}

TEST(Cli, BooleanFlagFollowedByFlag) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--full", "--threads=2"}));
  EXPECT_TRUE(cli.get_bool("full", false));
  EXPECT_EQ(cli.get_int("threads", 1), 2);
}

TEST(Cli, DefaultsWhenAbsent) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {}));
  EXPECT_EQ(cli.get_int("threads", 3), 3);
  EXPECT_FALSE(cli.has("threads"));
}

TEST(Cli, UnknownFlagFails) {
  CliParser cli = make_parser();
  EXPECT_FALSE(parse(cli, {"--bogus=1"}));
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli = make_parser();
  EXPECT_FALSE(parse(cli, {"--help"}));
  EXPECT_NE(cli.help("prog").find("--threads"), std::string::npos);
}

TEST(Cli, Positional) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"input.dat", "--threads=2", "more"}));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.dat");
  EXPECT_EQ(cli.positional()[1], "more");
}

}  // namespace
}  // namespace smpmine
