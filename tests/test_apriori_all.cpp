#include "seqpat/apriori_all.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/candidate_gen.hpp"
#include "seqpat/sequence_db.hpp"

namespace smpmine {
namespace {

/// The AS'95 running example (items renumbered 30->0, 40->1, 70->2,
/// 90->3, 60->4, 10->5, 20->6, 50->7... kept as the paper's ids instead):
/// customer sequences over items {10,20,30,40,50,60,70,90}:
///   C1: <(30) (90)>
///   C2: <(10,20) (30) (40,60,70)>
///   C3: <(30,50,70)>
///   C4: <(30) (40,70) (90)>
///   C5: <(90)>
/// At 25% support (count 2): litemsets {30},{40},{70},{40,70},{90};
/// maximal sequences <(30) (90)> and <(30) (40,70)>.
SequenceDatabase as95() {
  SequenceDatabase db;
  db.add_customer(std::vector<std::vector<item_t>>{{30}, {90}});
  db.add_customer(
      std::vector<std::vector<item_t>>{{10, 20}, {30}, {40, 60, 70}});
  db.add_customer(std::vector<std::vector<item_t>>{{30, 50, 70}});
  db.add_customer(std::vector<std::vector<item_t>>{{30}, {40, 70}, {90}});
  db.add_customer(std::vector<std::vector<item_t>>{{90}});
  return db;
}

std::set<std::vector<std::vector<item_t>>> pattern_set(
    const SeqMiningResult& result) {
  std::set<std::vector<std::vector<item_t>>> out;
  for (const SequencePattern& p : result.patterns) out.insert(p.elements);
  return out;
}

TEST(AprioriAll, LitemsetsMatchPaperExample) {
  SeqMineOptions opts;
  opts.min_support = 0.25;  // 2 of 5 customers
  const SeqMiningResult r = mine_sequences(as95(), opts);
  ASSERT_EQ(r.litemsets.size(), 2u);
  // Size-1: {30} x4, {40} x2, {70} x3, {90} x3.
  const FrequentSet& l1 = r.litemsets[0];
  ASSERT_EQ(l1.size(), 4u);
  const std::vector<item_t> i30{30}, i40{40}, i70{70}, i90{90};
  EXPECT_EQ(*l1.find_count(i30), 4u);
  EXPECT_EQ(*l1.find_count(i40), 2u);
  EXPECT_EQ(*l1.find_count(i70), 3u);
  EXPECT_EQ(*l1.find_count(i90), 3u);
  // Size-2: {40,70} x2 only.
  const FrequentSet& l2 = r.litemsets[1];
  ASSERT_EQ(l2.size(), 1u);
  const std::vector<item_t> i4070{40, 70};
  EXPECT_EQ(*l2.find_count(i4070), 2u);
}

TEST(AprioriAll, MaximalSequencesMatchPaperExample) {
  SeqMineOptions opts;
  opts.min_support = 0.25;
  const SeqMiningResult r = mine_sequences(as95(), opts);
  const auto patterns = pattern_set(r);
  // The paper's answer: <(30) (90)> and <(30) (40 70)>.
  EXPECT_TRUE(patterns.count({{30}, {90}}));
  EXPECT_TRUE(patterns.count({{30}, {40, 70}}));
  // Subsumed sequences must be gone: <(30)>, <(90)>, <(30) (40)> etc.
  EXPECT_FALSE(patterns.count({{30}}));
  EXPECT_FALSE(patterns.count({{90}}));
  EXPECT_FALSE(patterns.count({{30}, {40}}));
  EXPECT_FALSE(patterns.count({{40, 70}}));
}

TEST(AprioriAll, AllFrequentWhenMaximalOff) {
  SeqMineOptions opts;
  opts.min_support = 0.25;
  opts.maximal_only = false;
  const SeqMiningResult r = mine_sequences(as95(), opts);
  const auto patterns = pattern_set(r);
  EXPECT_TRUE(patterns.count({{30}}));
  EXPECT_TRUE(patterns.count({{40, 70}}));
  EXPECT_TRUE(patterns.count({{30}, {90}}));
  EXPECT_TRUE(patterns.count({{30}, {40, 70}}));
  // Support values verifiable: <(30) (90)> held by C1 and C4.
  for (const SequencePattern& p : r.patterns) {
    if (p.elements == std::vector<std::vector<item_t>>{{30}, {90}}) {
      EXPECT_EQ(p.customers, 2u);
      EXPECT_DOUBLE_EQ(p.support, 0.4);
    }
  }
}

TEST(AprioriAll, SequenceContainment) {
  using V = std::vector<std::vector<item_t>>;
  EXPECT_TRUE(sequence_contained(V{{3}, {4, 5}}, V{{3}, {4, 5}, {8}}));
  EXPECT_TRUE(sequence_contained(V{{3}}, V{{1, 3}}));
  EXPECT_TRUE(sequence_contained(V{{3}, {8}}, V{{7}, {3, 8}, {9}, {8}}));
  EXPECT_FALSE(sequence_contained(V{{3}, {5}}, V{{3, 5}}));  // same txn
  EXPECT_FALSE(sequence_contained(V{{5}, {3}}, V{{3}, {5}}));  // order
  EXPECT_TRUE(sequence_contained(V{}, V{{1}}));
  EXPECT_FALSE(sequence_contained(V{{1}}, V{}));
}

TEST(AprioriAll, RepeatedElementSequences) {
  // <(1) (1)> requires item 1 in two distinct transactions.
  SequenceDatabase db;
  for (int c = 0; c < 6; ++c) {
    db.add_customer(std::vector<std::vector<item_t>>{{1}, {1}});
  }
  for (int c = 0; c < 4; ++c) {
    db.add_customer(std::vector<std::vector<item_t>>{{1}});
  }
  SeqMineOptions opts;
  opts.min_support = 0.5;  // count 5
  const SeqMiningResult r = mine_sequences(db, opts);
  const auto patterns = pattern_set(r);
  EXPECT_TRUE(patterns.count({{1}, {1}}));
  EXPECT_FALSE(patterns.count({{1}, {1}, {1}}));  // only 0 customers
}

TEST(AprioriAll, ThreadCountDoesNotChangeResults) {
  SeqGenParams p;
  p.num_customers = 400;
  p.num_items = 40;
  p.avg_transactions = 5.0;
  p.seed = 21;
  const SequenceDatabase db = generate_sequences(p);
  SeqMineOptions one;
  one.min_support = 0.05;
  SeqMineOptions four = one;
  four.threads = 4;
  const SeqMiningResult a = mine_sequences(db, one);
  const SeqMiningResult b = mine_sequences(db, four);
  EXPECT_EQ(pattern_set(a), pattern_set(b));
  ASSERT_EQ(a.patterns.size(), b.patterns.size());
}

TEST(AprioriAll, BruteForceCrossCheck) {
  // Exhaustively verify supports: every mined pattern's customer count must
  // equal a direct scan, and no frequent 2-sequence may be missing.
  SeqGenParams p;
  p.num_customers = 120;
  p.num_items = 15;
  p.avg_transactions = 4.0;
  p.avg_transaction_len = 2.0;
  p.seed = 23;
  const SequenceDatabase db = generate_sequences(p);
  SeqMineOptions opts;
  opts.min_support = 0.1;
  opts.maximal_only = false;
  const SeqMiningResult r = mine_sequences(db, opts);
  const count_t min_count = absolute_support(opts.min_support,
                                             db.num_customers());

  auto customers_containing =
      [&](const std::vector<std::vector<item_t>>& pattern) {
        count_t n = 0;
        for (std::size_t c = 0; c < db.num_customers(); ++c) {
          std::vector<std::vector<item_t>> seq;
          for (std::size_t t = 0; t < db.sequence_length(c); ++t) {
            const auto txn = db.transaction(c, t);
            seq.emplace_back(txn.begin(), txn.end());
          }
          if (sequence_contained(pattern, seq)) ++n;
        }
        return n;
      };

  ASSERT_FALSE(r.patterns.empty());
  for (const SequencePattern& pattern : r.patterns) {
    EXPECT_EQ(pattern.customers, customers_containing(pattern.elements))
        << pattern.to_string();
    EXPECT_GE(pattern.customers, min_count);
  }

  // Completeness at length 2 over single-item elements.
  const auto mined = pattern_set(r);
  for (item_t a = 0; a < 15; ++a) {
    for (item_t b = 0; b < 15; ++b) {
      const std::vector<std::vector<item_t>> cand{{a}, {b}};
      if (customers_containing(cand) >= min_count) {
        EXPECT_TRUE(mined.count(cand)) << "<(" << a << ") (" << b << ")>";
      }
    }
  }
}

TEST(AprioriAll, EmptyDatabase) {
  SequenceDatabase db;
  SeqMineOptions opts;
  EXPECT_TRUE(mine_sequences(db, opts).patterns.empty());
}

TEST(AprioriAll, MaxLengthCap) {
  SequenceDatabase db;
  for (int c = 0; c < 4; ++c) {
    db.add_customer(std::vector<std::vector<item_t>>{{1}, {1}, {1}, {1}});
  }
  SeqMineOptions opts;
  opts.min_support = 1.0;
  opts.max_length = 2;
  opts.maximal_only = false;
  const SeqMiningResult r = mine_sequences(db, opts);
  for (const SequencePattern& p : r.patterns) {
    EXPECT_LE(p.length(), 2u);
  }
}

}  // namespace
}  // namespace smpmine
