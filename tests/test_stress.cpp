// Stress and adversarial-shape tests: pathological tree shapes under heavy
// concurrency, group-dedup counting, and the work-model invariants.
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <thread>

#include "core/miner.hpp"
#include "data/quest_gen.hpp"
#include "hashtree/hash_tree.hpp"
#include "itemset/itemset.hpp"

namespace smpmine {
namespace {

std::vector<std::vector<item_t>> combos(item_t universe, std::size_t k) {
  std::vector<item_t> base(universe);
  std::iota(base.begin(), base.end(), 0u);
  return k_subsets(base, k);
}

TEST(Stress, ConcurrentInsertsThresholdOneFanoutOne) {
  // Fanout 1 + threshold 1 forces a conversion cascade down to depth k on
  // nearly every insert — the worst case for the lock/convert protocol.
  PlacementArenas arenas(PlacementPolicy::SPP);
  const HashPolicy policy(HashScheme::Interleaved, 1);
  HashTree tree({.k = 3, .fanout = 1, .leaf_threshold = 1}, policy, arenas);
  const auto candidates = combos(16, 3);  // 560 candidates
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = t; i < candidates.size(); i += kThreads) {
        tree.insert(candidates[i]);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(tree.num_candidates(), candidates.size());
  std::set<std::vector<item_t>> seen;
  tree.for_each_candidate([&](const Candidate& cand) {
    const auto view = cand.view(3);
    seen.insert({view.begin(), view.end()});
  });
  EXPECT_EQ(seen.size(), candidates.size());
  // With fanout 1 everything lives in the single depth-3 leaf.
  const TreeStats stats = tree.stats();
  EXPECT_EQ(stats.max_depth, 3u);
}

TEST(Stress, ConcurrentInsertsHighContentionSameLeaf) {
  // All candidates share the same bucket path prefix, funneling every
  // thread through the same lock chain.
  PlacementArenas arenas(PlacementPolicy::LSPP);
  const HashPolicy policy(HashScheme::Interleaved, 8);
  HashTree tree({.k = 2, .fanout = 8, .leaf_threshold = 2}, policy, arenas);
  // Items all congruent mod 8 => one bucket at every level.
  std::vector<std::vector<item_t>> candidates;
  for (item_t a = 0; a < 40; a += 8) {
    for (item_t b = a + 8; b < 320; b += 8) {
      candidates.push_back({a, b});
    }
  }
  constexpr int kThreads = 6;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = t; i < candidates.size(); i += kThreads) {
        tree.insert(candidates[i]);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(tree.num_candidates(), candidates.size());
}

TEST(GroupDedup, CandidateCountedOncePerGroup) {
  PlacementArenas arenas(PlacementPolicy::SPP);
  const HashPolicy policy(HashScheme::Interleaved, 2);
  HashTree tree({.k = 2, .fanout = 2, .leaf_threshold = 4}, policy, arenas);
  tree.insert(std::vector<item_t>{1, 2});

  CountContext ctx = tree.make_context(SubsetCheck::FrameLocal);
  tree.enable_group_dedup(ctx);
  // Group 1: the itemset appears in three "transactions" — one count.
  HashTree::begin_group(ctx);
  for (int i = 0; i < 3; ++i) {
    tree.count_transaction(std::vector<item_t>{1, 2, 5}, ctx);
  }
  // Group 2: appears once — one more count.
  HashTree::begin_group(ctx);
  tree.count_transaction(std::vector<item_t>{0, 1, 2}, ctx);
  // Group 3: absent — nothing.
  HashTree::begin_group(ctx);
  tree.count_transaction(std::vector<item_t>{3, 4}, ctx);

  tree.for_each_candidate(
      [&](const Candidate& cand) { EXPECT_EQ(*cand.count, 2u); });
}

TEST(GroupDedup, DisabledContextCountsEveryTransaction) {
  PlacementArenas arenas(PlacementPolicy::SPP);
  const HashPolicy policy(HashScheme::Interleaved, 2);
  HashTree tree({.k = 2, .fanout = 2, .leaf_threshold = 4}, policy, arenas);
  tree.insert(std::vector<item_t>{1, 2});
  CountContext ctx = tree.make_context(SubsetCheck::FrameLocal);
  for (int i = 0; i < 3; ++i) {
    tree.count_transaction(std::vector<item_t>{1, 2}, ctx);
  }
  tree.for_each_candidate(
      [&](const Candidate& cand) { EXPECT_EQ(*cand.count, 3u); });
}

TEST(WorkModel, InvariantsHold) {
  QuestParams p;
  p.num_transactions = 1000;
  p.avg_transaction_len = 8.0;
  p.avg_pattern_len = 3.0;
  p.num_patterns = 40;
  p.num_items = 60;
  p.seed = 9090;
  const Database db = generate_quest(p);
  MinerOptions opts;
  opts.min_support = 0.02;
  opts.threads = 4;
  const MiningResult r = mine_ccpd(db, opts);
  for (const auto& it : r.iterations) {
    // Critical path never exceeds total work, and never exceeds P x path.
    EXPECT_LE(it.count_busy_max, it.count_busy_sum + 1e-9);
    EXPECT_LE(it.count_busy_sum, 4.0 * it.count_busy_max + 1e-9);
    EXPECT_LE(it.candgen_busy_max, it.candgen_busy_sum + 1e-9);
    EXPECT_GE(it.modeled_parallel_seconds(), it.count_busy_max - 1e-9);
  }
  const double speedup = r.work_speedup();
  EXPECT_GE(speedup, 1.0 - 1e-9);
  EXPECT_LE(speedup, 4.0 + 1e-9);
}

TEST(Stress, ManyIterationsDeepTree) {
  // A dataset engineered for deep iterations: one strong pattern of size 8
  // appearing in 60% of transactions drives F(k) out to k=8.
  Database db;
  const std::vector<item_t> core{1, 2, 3, 4, 5, 6, 7, 8};
  Rng rng(77);
  std::vector<item_t> txn;
  for (int t = 0; t < 500; ++t) {
    txn.clear();
    if (t % 5 != 0) txn.insert(txn.end(), core.begin(), core.end());
    for (int n = 0; n < 4; ++n) {
      txn.push_back(static_cast<item_t>(9 + rng.uniform(30)));
    }
    db.add_transaction(txn);
  }
  MinerOptions opts;
  opts.min_support = 0.5;
  const MiningResult r = mine_sequential(db, opts);
  ASSERT_EQ(r.levels.size(), 8u);
  // The deepest level holds exactly the core pattern.
  EXPECT_EQ(r.levels.back().size(), 1u);
  EXPECT_EQ(compare_itemsets(r.levels.back().itemset(0), core), 0);
}

}  // namespace
}  // namespace smpmine
