// End-to-end tests of the smpmine CLI binary (subprocess smoke tests).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace smpmine {
namespace {

#ifndef SMPMINE_CLI_PATH
#error "SMPMINE_CLI_PATH must be defined by the build"
#endif

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Runs the CLI, capturing stdout into a file; returns (exit_code, output).
std::pair<int, std::string> run_cli(const std::string& args) {
  const std::string out_path = temp_path("smpmine_cli_out.txt");
  const std::string cmd = std::string(SMPMINE_CLI_PATH) + " " + args + " > " +
                          out_path + " 2>/dev/null";
  const int status = std::system(cmd.c_str());
  std::ifstream is(out_path);
  std::stringstream ss;
  ss << is.rdbuf();
  std::remove(out_path.c_str());
  return {status, ss.str()};
}

TEST(CliTool, RequiresInputOrGenerate) {
  const auto [status, _] = run_cli("--support 0.1");
  EXPECT_NE(status, 0);
}

TEST(CliTool, MinesAFile) {
  const std::string db_path = temp_path("smpmine_cli_db.txt");
  {
    std::ofstream os(db_path);
    os << "1 4 5\n1 2\n3 4 5\n1 2 4 5\n";
  }
  const auto [status, out] =
      run_cli("--input " + db_path + " --support 0.5 --confidence 0.9 "
              "--itemsets --max-rules 0");
  EXPECT_EQ(status, 0);
  // The paper example's F3.
  EXPECT_NE(out.find("(1, 4, 5)"), std::string::npos);
  EXPECT_NE(out.find("total frequent itemsets: 9"), std::string::npos);
  std::remove(db_path.c_str());
}

TEST(CliTool, GeneratesAndSaves) {
  const std::string fi = temp_path("smpmine_cli_fi.txt");
  const std::string csv = temp_path("smpmine_cli_rules.csv");
  const auto [status, out] = run_cli(
      "--generate T5.I2.D100K --support 0.01 --threads 2 --max-rules 1 "
      "--save-itemsets " + fi + " --save-rules " + csv);
  EXPECT_EQ(status, 0);
  EXPECT_TRUE(std::filesystem::exists(fi));
  EXPECT_TRUE(std::filesystem::exists(csv));
  EXPECT_GT(std::filesystem::file_size(fi), 0u);
  std::remove(fi.c_str());
  std::remove(csv.c_str());
}

TEST(CliTool, RejectsBadFlags) {
  EXPECT_NE(run_cli("--generate T5.I2.D1K --placement bogus").first, 0);
  EXPECT_NE(run_cli("--generate T5.I2.D1K --algorithm bogus").first, 0);
  EXPECT_NE(run_cli("--generate NOT_A_NAME").first, 0);
  EXPECT_NE(run_cli("--input /nonexistent/nope.txt").first, 0);
  EXPECT_NE(run_cli("--generate T5.I2.D1K --support 0").first, 0);
}

TEST(CliTool, EveryPlacementRuns) {
  for (const char* placement :
       {"CCPD", "SPP", "LPP", "GPP", "L-SPP", "L-LPP", "L-GPP", "LCA-GPP"}) {
    const auto [status, out] = run_cli(
        std::string("--generate T5.I2.D1K --support 0.05 --no-rules "
                    "--placement ") + placement);
    EXPECT_EQ(status, 0) << placement;
    EXPECT_NE(out.find("total frequent itemsets"), std::string::npos)
        << placement;
  }
}

TEST(CliTool, PccdRuns) {
  const auto [status, out] = run_cli(
      "--generate T5.I2.D1K --support 0.05 --algorithm pccd --threads 2 "
      "--no-rules");
  EXPECT_EQ(status, 0);
  EXPECT_NE(out.find("PCCD"), std::string::npos);
}

}  // namespace
}  // namespace smpmine
