#include "taxonomy/taxonomy.hpp"

#include <gtest/gtest.h>

namespace smpmine {
namespace {

/// The classic clothes example:
///   0 jacket -> 2 outerwear -> 4 clothes
///   1 ski pants -> 2 outerwear
///   3 shirts -> 4 clothes
///   5 shoes -> 6 footwear, 7 hiking boots -> 6 footwear
Taxonomy clothes() {
  Taxonomy tax(8);
  tax.add_edge(0, 2);
  tax.add_edge(1, 2);
  tax.add_edge(2, 4);
  tax.add_edge(3, 4);
  tax.add_edge(5, 6);
  tax.add_edge(7, 6);
  return tax;
}

TEST(Taxonomy, DirectParents) {
  const Taxonomy tax = clothes();
  ASSERT_EQ(tax.parents(0).size(), 1u);
  EXPECT_EQ(tax.parents(0)[0], 2u);
  EXPECT_TRUE(tax.parents(4).empty());
}

TEST(Taxonomy, TransitiveAncestors) {
  const Taxonomy tax = clothes();
  const auto anc = tax.ancestors(0);
  EXPECT_EQ(std::vector<item_t>(anc.begin(), anc.end()),
            (std::vector<item_t>{2, 4}));
  EXPECT_TRUE(tax.ancestors(4).empty());
}

TEST(Taxonomy, IsAncestor) {
  const Taxonomy tax = clothes();
  EXPECT_TRUE(tax.is_ancestor(4, 0));
  EXPECT_TRUE(tax.is_ancestor(2, 1));
  EXPECT_FALSE(tax.is_ancestor(0, 4));  // not symmetric
  EXPECT_FALSE(tax.is_ancestor(6, 0));  // different subtree
  EXPECT_FALSE(tax.is_ancestor(0, 0));  // not reflexive
}

TEST(Taxonomy, MultipleParentsDag) {
  Taxonomy tax(4);
  tax.add_edge(0, 1);
  tax.add_edge(0, 2);
  tax.add_edge(1, 3);
  tax.add_edge(2, 3);  // diamond
  const auto anc = tax.ancestors(0);
  EXPECT_EQ(std::vector<item_t>(anc.begin(), anc.end()),
            (std::vector<item_t>{1, 2, 3}));  // 3 deduplicated
}

TEST(Taxonomy, RejectsCycles) {
  Taxonomy tax(3);
  tax.add_edge(0, 1);
  tax.add_edge(1, 2);
  EXPECT_THROW(tax.add_edge(2, 0), std::invalid_argument);
  EXPECT_THROW(tax.add_edge(0, 0), std::invalid_argument);
}

TEST(Taxonomy, RejectsOutOfRange) {
  Taxonomy tax(3);
  EXPECT_THROW(tax.add_edge(0, 3), std::invalid_argument);
  EXPECT_THROW(tax.add_edge(5, 1), std::invalid_argument);
}

TEST(Taxonomy, DuplicateEdgeIgnored) {
  Taxonomy tax(3);
  tax.add_edge(0, 1);
  tax.add_edge(0, 1);
  EXPECT_EQ(tax.num_edges(), 1u);
}

TEST(Taxonomy, HasItemWithAncestor) {
  const Taxonomy tax = clothes();
  const std::vector<item_t> redundant{0, 2};    // jacket + outerwear
  const std::vector<item_t> deep{0, 4};         // jacket + clothes
  const std::vector<item_t> fine{0, 3};         // jacket + shirts
  const std::vector<item_t> siblings{0, 1};     // jacket + ski pants
  EXPECT_TRUE(tax.has_item_with_ancestor(redundant));
  EXPECT_TRUE(tax.has_item_with_ancestor(deep));
  EXPECT_FALSE(tax.has_item_with_ancestor(fine));
  EXPECT_FALSE(tax.has_item_with_ancestor(siblings));
  EXPECT_FALSE(tax.has_item_with_ancestor({}));
}

TEST(Taxonomy, RootsAndLeaves) {
  const Taxonomy tax = clothes();
  // Roots: parentless items that actually head a subtree (4 clothes,
  // 6 footwear). Leaves: items with no children — what raw baskets hold.
  EXPECT_EQ(tax.roots(), (std::vector<item_t>{4, 6}));
  EXPECT_EQ(tax.leaves(), (std::vector<item_t>{0, 1, 3, 5, 7}));
}

TEST(Taxonomy, FreezeMakesQueriesConst) {
  Taxonomy tax = clothes();
  tax.freeze();
  const Taxonomy& frozen = tax;
  EXPECT_EQ(frozen.ancestors(0).size(), 2u);
}

TEST(RandomTaxonomy, ShapeAndDeterminism) {
  TaxonomyParams p;
  p.universe = 200;
  p.roots = 10;
  p.levels = 3;
  p.seed = 5;
  const Taxonomy a = make_random_taxonomy(p);
  const Taxonomy b = make_random_taxonomy(p);
  // Every non-root has at least one ancestor; roots have none.
  for (item_t i = 0; i < 10; ++i) EXPECT_TRUE(a.ancestors(i).empty());
  for (item_t i = 10; i < 200; ++i) {
    EXPECT_FALSE(a.ancestors(i).empty()) << i;
    EXPECT_LE(a.ancestors(i).size(), 2u);  // at most levels-1 ancestors
    // Determinism.
    const auto aa = a.ancestors(i);
    const auto bb = b.ancestors(i);
    EXPECT_TRUE(std::equal(aa.begin(), aa.end(), bb.begin(), bb.end()));
  }
}

TEST(RandomTaxonomy, DegenerateParams) {
  TaxonomyParams p;
  p.universe = 10;
  p.roots = 10;  // no room for interior items
  const Taxonomy tax = make_random_taxonomy(p);
  EXPECT_EQ(tax.num_edges(), 0u);
}

}  // namespace
}  // namespace smpmine
