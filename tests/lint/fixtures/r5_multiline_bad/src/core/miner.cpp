// R5 multi-line violating fixture: the invocation is split so the name
// string sits on the line after the macro token. A per-line scanner skips
// this site silently; the joined-text scanner must still flag the unknown
// phase name.
#include "core/stats.hpp"

namespace fixture {

void mine() {
  SMPMINE_TRACE_SPAN(
      "warmup");
}

}  // namespace fixture
