// R5 violating fixture: "warmup" is a bare span name with no matching
// warmup_seconds field in stats.hpp.
#include "core/stats.hpp"

namespace fixture {

void mine() {
  SMPMINE_TRACE_SPAN("warmup");
}

}  // namespace fixture
