// R1 passing fixture: every shared field of a lock-owning class is either
// GUARDED_BY, atomic, const, a sync primitive, or carries a lint-ok marker.
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

class Widget {
 public:
  void touch();

 private:
  mutable Mutex mu_;
  std::uint64_t guarded_value_ GUARDED_BY(mu_) = 0;
  std::vector<int> pointed_at_ PT_GUARDED_BY(mu_);
  std::atomic<std::uint32_t> lockfree_counter_{0};
  const std::uint32_t capacity_ = 8;
  Barrier phase_barrier_;
  std::condition_variable_any cv_;
  // lint-ok: R1 — written once in the constructor, read-only afterwards.
  std::uint32_t write_once_id_ = 0;
};

/// Capability classes are the locks themselves; their internals are exempt.
class CAPABILITY("mutex") TinyLock {
 public:
  void lock() ACQUIRE();
  void unlock() RELEASE();

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace fixture
