// R2 violating fixture: an ad-hoc /proc/self probe outside src/obs/perf
// and src/obs/ledger — its numbers can disagree with what the telemetry
// sampler reports for the same instant. The path only exists inside the
// string literal, so this also pins the strings-kept scanning.

namespace fixture {

long resident_pages() {
  std::ifstream statm("/proc/self/statm");
  long pages = 0;
  statm >> pages >> pages;
  return pages;
}

}  // namespace fixture
