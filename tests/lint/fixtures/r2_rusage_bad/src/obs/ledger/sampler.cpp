// Companion file proving the exemption: the same probe inside
// src/obs/ledger must not add a second finding to this fixture.

namespace fixture {

long rss_kb() {
  std::ifstream statm("/proc/self/statm");
  long pages = 0;
  statm >> pages >> pages;
  return pages * 4;
}

}  // namespace fixture
