// R1 passing fixture for the src/core scope extension: the lock-owning
// scheduler annotates every shared field or justifies it with a marker.
#pragma once

#include <cstdint>
#include <vector>

namespace fixture {

class WorkScheduler {
 public:
  std::uint32_t claim();

 private:
  mutable SpinLock mu_;
  std::vector<std::uint32_t> queue_ GUARDED_BY(mu_);
  std::uint64_t dispatched_ GUARDED_BY(mu_) = 0;
  std::atomic<std::uint32_t> outstanding_{0};
  const std::uint32_t capacity_ = 64;
  // lint-ok: R1 — set once before the pool starts, read-only afterwards.
  std::uint32_t num_workers_ = 0;
};

}  // namespace fixture
