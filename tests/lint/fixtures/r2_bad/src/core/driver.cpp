// R2 violating fixture: a raw std::thread outside src/parallel with no
// justification marker.
#include <thread>

namespace fixture {

void drive() {
  std::thread worker([] {});
  worker.join();
}

}  // namespace fixture
