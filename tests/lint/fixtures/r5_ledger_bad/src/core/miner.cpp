// R5 violating fixture: "warmup" is a ledger work phase with no matching
// warmup_seconds field — the ledger would silently record nothing and
// the work-unit column read 0.
#include "core/stats.hpp"

namespace fixture {

void mine(int n) {
  SMPMINE_LEDGER_WORK("warmup", n);
}

}  // namespace fixture
