// R5 fixture stats header: defines the phase vocabulary ledger work
// attributions must use.
#pragma once

namespace fixture {

struct IterationStats {
  double candgen_seconds = 0.0;
  double count_seconds = 0.0;
};

}  // namespace fixture
