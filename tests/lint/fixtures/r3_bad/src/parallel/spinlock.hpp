// R3 violating fixture: allowlisted file, but the relaxed site has no
// relaxed-ok comment explaining why the weakened ordering is safe.
#pragma once

#include <atomic>

namespace fixture {

class SpinLock {
 public:
  bool peek() { return flag_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace fixture
