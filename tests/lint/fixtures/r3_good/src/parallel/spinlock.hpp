// R3 passing fixture: this path is on the relaxed allowlist and every
// relaxed site carries a relaxed-ok justification.
#pragma once

#include <atomic>

namespace fixture {

class SpinLock {
 public:
  void lock() {
    while (flag_.exchange(true, std::memory_order_acquire)) {
      // relaxed-ok: test loop; the acquire exchange provides the ordering.
      while (flag_.load(std::memory_order_relaxed)) {
      }
    }
  }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace fixture
