// R5 violating fixture: "warmup" is a bare perf-phase name with no matching
// warmup_seconds field in stats.hpp.
#include "core/stats.hpp"

namespace fixture {

void mine() {
  SMPMINE_PERF_PHASE("warmup");
}

}  // namespace fixture
