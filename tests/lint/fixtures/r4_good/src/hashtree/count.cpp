// R4 passing fixture: the hot function touches only pre-placed memory; the
// cold helper may allocate freely; a vetted exception carries hot-ok.
#include <cstdint>
#include <vector>

namespace fixture {

SMPMINE_HOT std::uint64_t count_hits(const std::uint32_t* counts,
                                     std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += counts[i];
  return total;
}

SMPMINE_HOT void record_overflow(std::vector<std::uint32_t>& sink,
                                 std::uint32_t id) {
  // hot-ok: overflow path runs at most once per tree; growth is amortized
  // outside the per-transaction loop.
  sink.push_back(id);
}

std::vector<std::uint32_t> make_scratch(std::size_t n) {
  std::vector<std::uint32_t> scratch;
  scratch.resize(n);
  return scratch;
}

}  // namespace fixture
