// Outside src/parallel: wrappers only, or an explicitly justified raw use.
#include <vector>

namespace fixture {

void drive() {
  Mutex mu;
  MutexLock lk(mu);
  // lint-ok: R2 — simulation needs unpooled threads, one per node.
  std::vector<std::thread> nodes;
}

}  // namespace fixture
