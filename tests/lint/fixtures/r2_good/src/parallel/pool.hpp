// R2 passing fixture: raw threading primitives are fine inside
// src/parallel (this is where the wrappers are built), and a justified use
// elsewhere carries a lint-ok marker.
#pragma once

#include <mutex>
#include <thread>
#include <vector>

namespace fixture {

class Pool {
 private:
  std::mutex mu_;
  std::vector<std::thread> workers_ GUARDED_BY(mu_);
};

}  // namespace fixture
