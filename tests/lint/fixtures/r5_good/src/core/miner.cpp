// R5 passing fixture: bare span names match *_seconds fields; dotted names
// are subsystem events and exempt.
#include "core/stats.hpp"

namespace fixture {

void mine() {
  SMPMINE_TRACE_SPAN("candgen");
  SMPMINE_TRACE_SPAN_ARG("count", "k", 2);
  SMPMINE_TRACE_SPAN_ARG("iteration", "k", 2);
  SMPMINE_TRACE_SPAN("pool.task");
  SMPMINE_TRACE_PHASE(span, "count", "k", 2);
}

}  // namespace fixture
