// R5 cross-family passing fixture: the trace/perf/flight triple opening a
// phase body agrees on the phase name, including when clang-format wraps
// an invocation so its name string lands on the next line.
#include "core/stats.hpp"

namespace fixture {

void mine() {
  SMPMINE_TRACE_SPAN_ARG(
      "candgen", "k", 2);
  SMPMINE_PERF_PHASE("candgen");
  SMPMINE_FLIGHT_PHASE("candgen", 2);
}

}  // namespace fixture
