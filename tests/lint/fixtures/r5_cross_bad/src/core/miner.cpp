// R5 cross-family violating fixture: both names exist in stats.hpp, but
// the perf scope and the flight scope at the same site disagree — counter
// attribution and the flight dump would file the same work under
// different phases.
#include "core/stats.hpp"

namespace fixture {

void mine() {
  SMPMINE_PERF_PHASE("candgen");
  SMPMINE_FLIGHT_PHASE("count", 2);
}

}  // namespace fixture
