// R4 violating fixture: a SMPMINE_HOT function grows a container on the
// per-transaction path with no hot-ok justification.
#include <cstdint>
#include <vector>

namespace fixture {

SMPMINE_HOT void count_transaction(std::vector<std::uint32_t>& hits,
                                   std::uint32_t id) {
  hits.push_back(id);
}

}  // namespace fixture
