// Companion file proving the exemption: the same call inside
// src/obs/flight must not add a second finding to this fixture.

namespace fixture {

void install(void* sa) {
  sigaction(11, static_cast<struct sigaction*>(sa), nullptr);
}

}  // namespace fixture
