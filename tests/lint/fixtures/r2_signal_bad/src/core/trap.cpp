// R2 violating fixture: a sigaction outside src/obs/flight would silently
// replace the flight recorder's crash handlers.

namespace fixture {

void hijack(void* sa) {
  sigaction(11, static_cast<struct sigaction*>(sa), nullptr);
}

}  // namespace fixture
