// R1 passing fixture for the src/distmem scope extension: the metered
// mailbox annotates its queue and counters against the owning mutex.
#pragma once

#include <cstdint>
#include <deque>

namespace fixture {

class MeteredBox {
 public:
  void post();

 private:
  Mutex mu_;
  std::condition_variable_any cv_;
  std::deque<std::uint64_t> queue_ GUARDED_BY(mu_);
  std::uint64_t bytes_ GUARDED_BY(mu_) = 0;
  // lint-ok: R1 — const after construction; element type synchronizes
  // itself.
  std::vector<int> peers_;
};

}  // namespace fixture
