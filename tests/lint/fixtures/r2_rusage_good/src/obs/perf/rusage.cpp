// R2 passing fixture: getrusage inside src/obs/perf — the rusage perf
// backend is the other audited reader of the resource surface.

namespace fixture {

double thread_cpu_seconds() {
  rusage ru{};
  if (getrusage(RUSAGE_THREAD, &ru) != 0) return 0.0;
  return static_cast<double>(ru.ru_utime.tv_sec);
}

}  // namespace fixture
