// R2 passing fixture: resource probes (getrusage, /proc/self) are fine
// inside src/obs/ledger — the telemetry sampler is an audited reader.

namespace fixture {

long rss_kb() {
  std::ifstream statm("/proc/self/statm");
  long pages = 0;
  statm >> pages >> pages;
  return pages * 4;
}

}  // namespace fixture
