// R5 passing fixture: SMPMINE_PERF_PHASE names match *_seconds fields, so
// counter attribution and the stats tables agree on phase vocabulary.
#include "core/stats.hpp"

namespace fixture {

void mine() {
  {
    SMPMINE_PERF_PHASE("candgen");
  }

  {
    SMPMINE_TRACE_SPAN("count");
    SMPMINE_PERF_PHASE("count");
  }
}

}  // namespace fixture
