// R1 violating fixture: `unguarded_value_` lives in a lock-owning class with
// no GUARDED_BY annotation and no lint-ok justification.
#pragma once

#include <cstdint>

namespace fixture {

class Widget {
 public:
  void touch();

 private:
  mutable SpinLock mu_;
  std::uint64_t guarded_value_ GUARDED_BY(mu_) = 0;
  std::uint64_t unguarded_value_ = 0;
};

}  // namespace fixture
