// R5 passing fixture: SMPMINE_LEDGER_WORK names match *_seconds fields,
// so the work-unit columns and the stats tables agree on phase naming.
#include "core/stats.hpp"

namespace fixture {

void mine(int n) {
  SMPMINE_LEDGER_WORK("candgen", n);
  {
    SMPMINE_PERF_PHASE("count");
    SMPMINE_LEDGER_WORK("count", n * 2);
  }
}

}  // namespace fixture
