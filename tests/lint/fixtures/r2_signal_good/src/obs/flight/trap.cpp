// R2 passing fixture: signal-handler installation is fine *inside*
// src/obs/flight — this is the one directory that owns the crash-dump
// handler surface.

namespace fixture {

void install(void* sa, void* ss) {
  sigaltstack(static_cast<stack_t*>(ss), nullptr);
  sigemptyset(&static_cast<struct sigaction*>(sa)->sa_mask);
  sigaction(11, static_cast<struct sigaction*>(sa), nullptr);
  std::set_terminate(nullptr);
}

}  // namespace fixture
