// R1 violating fixture for the src/distmem scope extension: `bytes_` is a
// plain counter in a lock-owning class with no annotation or marker.
#pragma once

#include <cstdint>
#include <deque>

namespace fixture {

class MeteredBox {
 public:
  void post();

 private:
  Mutex mu_;
  std::deque<std::uint64_t> queue_ GUARDED_BY(mu_);
  std::uint64_t bytes_ = 0;
};

}  // namespace fixture
