// R2 passing fixture: perf_event_open via raw syscall is fine *inside*
// src/obs/perf — this is the one directory that owns the perf fd surface.

namespace fixture {

long open_cycles_counter(void* attr) {
  return syscall(__NR_perf_event_open, attr, 0, -1, -1, 0);
}

}  // namespace fixture
