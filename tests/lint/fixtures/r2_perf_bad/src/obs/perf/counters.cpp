// Companion file proving the exemption: the same call inside src/obs/perf
// must not add a second finding to this fixture.

namespace fixture {

long open_counter(void* attr) {
  return syscall(__NR_perf_event_open, attr, 0, -1, -1, 0);
}

}  // namespace fixture
