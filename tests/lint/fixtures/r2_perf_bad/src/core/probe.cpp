// R2 violating fixture: a raw perf_event_open syscall outside src/obs/perf
// bypasses backend selection and the per-thread fd lifecycle.

namespace fixture {

long probe() {
  return syscall(__NR_perf_event_open, nullptr, 0, -1, -1, 0);
}

}  // namespace fixture
