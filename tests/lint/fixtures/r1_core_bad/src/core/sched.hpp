// R1 violating fixture for the src/core scope extension: `dispatched_`
// lives in a lock-owning class with no annotation and no justification.
#pragma once

#include <cstdint>
#include <vector>

namespace fixture {

class WorkScheduler {
 public:
  std::uint32_t claim();

 private:
  mutable SpinLock mu_;
  std::vector<std::uint32_t> queue_ GUARDED_BY(mu_);
  std::uint64_t dispatched_ = 0;
};

}  // namespace fixture
