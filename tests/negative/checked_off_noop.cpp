// Compile-pair probe of the SMPMINE_CHECKED gate (see tests/CMakeLists.txt).
//
// probe() is constant-evaluated by the static_assert below. With
// SMPMINE_CHECKED_ENABLED=0 every hook macro expands to ((void)0) and the
// evaluation succeeds — proving the checked machinery really erases to
// nothing. With SMPMINE_CHECKED_ENABLED=1 the lock hooks expand to calls
// into the (non-constexpr) lock-order recorder, which cannot appear in a
// constant evaluation, so compilation must fail — proving the hooks really
// emit code when the gate is on.
#include "parallel/lock_order.hpp"
#include "util/checked.hpp"

namespace {

constexpr int probe() {
  int pseudo_lock = 0;
  SMPMINE_LOCK_ACQUIRED(&pseudo_lock, "probe");
  SMPMINE_ASSERT(pseudo_lock == 0, "probe invariant");
  SMPMINE_LOCK_TRY_ACQUIRED(&pseudo_lock, "probe");
  SMPMINE_LOCK_RELEASED(&pseudo_lock);
  return pseudo_lock;
}

static_assert(probe() == 0,
              "SMPMINE_CHECKED=OFF must compile the hooks to no-ops");

}  // namespace
