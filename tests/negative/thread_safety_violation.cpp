// NEGATIVE compile test — this file MUST NOT compile under
//   clang++ -Wthread-safety -Werror=thread-safety
// It mutates GUARDED_BY state without holding the guarding capability; the
// CTest entry `negative.thread_safety_violation` (registered only for Clang,
// see tests/CMakeLists.txt) invokes the compiler on it and is marked
// WILL_FAIL, so the analysis *rejecting* this file is what passes.
//
// It is exactly the bug class the annotations exist to catch: a refactor
// that moves a counter update out from under its node/counter lock.
#include "parallel/spinlock.hpp"
#include "util/thread_annotations.hpp"

namespace {

struct SharedCounter {
  smpmine::SpinLock lock;
  long value GUARDED_BY(lock) = 0;
};

// Correct: compiles warning-free — the scoped guard holds `lock` across the
// mutation, which discharges the GUARDED_BY requirement.
long locked_increment(SharedCounter& c) {
  smpmine::SpinLockGuard guard(c.lock);
  return ++c.value;
}

// BROKEN: writes the guarded field with no capability held. Clang emits
//   error: writing variable 'value' requires holding spinlock 'lock'
//   exclusively [-Werror,-Wthread-safety-analysis]
long racy_increment(SharedCounter& c) {
  return ++c.value;  // <- the intentional violation under test
}

}  // namespace

int main() {
  SharedCounter c;
  return static_cast<int>(locked_increment(c) + racy_increment(c));
}
