// Compile-pair probe that the SMPMINE_TRACE_* macros are true no-ops when
// tracing is compiled out, and real instrumentation when it is in.
//
// The trick: a constexpr function may not declare (or evaluate) an
// obs::ScopedSpan — its constructor reads the clock. So `noop_probe()`
// compiles exactly when every macro below expands to ((void)0):
//
//   negative.tracing_off_noop   -DSMPMINE_TRACING_ENABLED=0 -> must compile
//   negative.tracing_on_traces  (no define, macros live)     -> WILL_FAIL
//
// Registered for both outcomes in tests/CMakeLists.txt; together they pin
// the compile gate from both sides: OFF really erases the instrumentation,
// ON really emits it.
#include "obs/trace.hpp"

namespace {

constexpr int noop_probe() {
  SMPMINE_TRACE_SPAN("noop");
  SMPMINE_TRACE_SPAN_ARG("noop", "k", 1);
  SMPMINE_TRACE_PHASE(phase_span, "noop", "k", 1);
  SMPMINE_TRACE_PHASE_END(phase_span);
  SMPMINE_TRACE_INSTANT("noop");
  SMPMINE_TRACE_INSTANT_ARG("noop", "k", 1);
  return 0;
}

// Forces constant evaluation: even a compiler lenient about non-literal
// declarations in an uncalled constexpr function must reject evaluating
// one.
static_assert(noop_probe() == 0,
              "trace macros must be no-ops when tracing is compiled out");

}  // namespace

int main() { return noop_probe(); }
