// Compile-pair probe of the phase-epoch gate (see tests/CMakeLists.txt).
//
// probe() is constant-evaluated by the static_assert below. With
// SMPMINE_CHECKED_ENABLED=0 both hook macros expand to ((void)0) and
// PhaseEpoch is an empty struct, so the evaluation succeeds — proving the
// epoch validator really erases to nothing outside checked builds. With
// SMPMINE_CHECKED_ENABLED=1 the macros expand to calls into the
// (non-constexpr) validator, which cannot appear in a constant evaluation,
// so compilation must fail — proving the hooks really emit code when the
// gate is on.
#include "util/phase_epoch.hpp"

namespace {

constexpr int probe() {
  smpmine::phaseepoch::PhaseEpoch epoch;
  SMPMINE_PHASE_EPOCH_DECLARE(epoch, "probe", "freeze");
  SMPMINE_PHASE_EPOCH_WRITE(epoch);
  return 0;
}

static_assert(probe() == 0,
              "SMPMINE_CHECKED=OFF must compile the epoch hooks to no-ops");

}  // namespace
