#include "data/quest_gen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

namespace smpmine {
namespace {

QuestParams small_params() {
  QuestParams p;
  p.num_transactions = 5000;
  p.avg_transaction_len = 10.0;
  p.avg_pattern_len = 4.0;
  p.num_patterns = 200;
  p.num_items = 500;
  p.seed = 123;
  return p;
}

TEST(QuestGen, DeterministicForSeed) {
  const Database a = generate_quest(small_params());
  const Database b = generate_quest(small_params());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    const auto ta = a.transaction(t);
    const auto tb = b.transaction(t);
    ASSERT_TRUE(std::equal(ta.begin(), ta.end(), tb.begin(), tb.end()))
        << "transaction " << t;
  }
}

TEST(QuestGen, SeedChangesOutput) {
  QuestParams p = small_params();
  const Database a = generate_quest(p);
  p.seed = 124;
  const Database b = generate_quest(p);
  bool different = a.size() != b.size();
  for (std::size_t t = 0; !different && t < a.size(); ++t) {
    const auto ta = a.transaction(t);
    const auto tb = b.transaction(t);
    different = !std::equal(ta.begin(), ta.end(), tb.begin(), tb.end());
  }
  EXPECT_TRUE(different);
}

TEST(QuestGen, TransactionCountMatchesD) {
  const Database db = generate_quest(small_params());
  EXPECT_EQ(db.size(), 5000u);
}

TEST(QuestGen, ItemsWithinUniverse) {
  const Database db = generate_quest(small_params());
  EXPECT_LE(db.item_universe(), 500u);
}

TEST(QuestGen, MeanTransactionSizeNearT) {
  const Database db = generate_quest(small_params());
  // Corruption and dedup shift the mean; it must land in a broad band
  // around T.
  EXPECT_GT(db.avg_transaction_size(), 5.0);
  EXPECT_LT(db.avg_transaction_size(), 15.0);
}

TEST(QuestGen, NoEmptyTransactions) {
  const Database db = generate_quest(small_params());
  for (std::size_t t = 0; t < db.size(); ++t) {
    EXPECT_GE(db.transaction_size(t), 1u);
  }
}

TEST(QuestGen, PatternsInduceFrequentPairs) {
  // The whole point of the generator: shared maximal patterns make some
  // pairs far more frequent than independence would allow.
  const Database db = generate_quest(small_params());
  std::vector<count_t> counts(db.item_universe(), 0);
  std::map<std::pair<item_t, item_t>, count_t> pair_counts;
  for (std::size_t t = 0; t < db.size(); ++t) {
    const auto txn = db.transaction(t);
    for (std::size_t i = 0; i < txn.size(); ++i) {
      ++counts[txn[i]];
      for (std::size_t j = i + 1; j < txn.size(); ++j) {
        ++pair_counts[{txn[i], txn[j]}];
      }
    }
  }
  count_t best_pair = 0;
  for (const auto& [_, c] : pair_counts) best_pair = std::max(best_pair, c);
  // At 1% of D a pair is unambiguously a pattern artifact.
  EXPECT_GE(best_pair, db.size() / 100);
}

TEST(QuestGen, NameParsing) {
  const auto p = QuestParams::from_name("T10.I6.D400K");
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->avg_transaction_len, 10.0);
  EXPECT_DOUBLE_EQ(p->avg_pattern_len, 6.0);
  EXPECT_EQ(p->num_transactions, 400'000u);
}

TEST(QuestGen, NameParsingMillions) {
  const auto p = QuestParams::from_name("T10.I6.D2M");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->num_transactions, 2'000'000u);
}

TEST(QuestGen, NameParsingNoSuffix) {
  const auto p = QuestParams::from_name("T5.I2.D1234");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->num_transactions, 1234u);
}

TEST(QuestGen, NameParsingRejectsGarbage) {
  EXPECT_FALSE(QuestParams::from_name("garbage").has_value());
  EXPECT_FALSE(QuestParams::from_name("T0.I2.D100K").has_value());
  EXPECT_FALSE(QuestParams::from_name("T5.I2.D100Q").has_value());
}

TEST(QuestGen, NameRendering) {
  QuestParams p;
  p.avg_transaction_len = 10;
  p.avg_pattern_len = 6;
  p.num_transactions = 400'000;
  EXPECT_EQ(p.name(), "T10.I6.D400K");
  p.num_transactions = 1234;
  EXPECT_EQ(p.name(), "T10.I6.D1234");
}

TEST(QuestGen, NameRoundTrip) {
  for (const char* name : {"T5.I2.D100K", "T10.I4.D100K", "T15.I4.D100K",
                           "T20.I6.D100K", "T10.I6.D400K", "T10.I6.D800K",
                           "T10.I6.D1600K", "T10.I6.D3200K"}) {
    const auto p = QuestParams::from_name(name);
    ASSERT_TRUE(p.has_value()) << name;
    EXPECT_EQ(p->name(), name);
  }
}

TEST(QuestGen, ScaledShrinksOnlyD) {
  QuestParams p = small_params();
  const QuestParams s = scaled(p, 0.1);
  EXPECT_EQ(s.num_transactions, 500u);
  EXPECT_DOUBLE_EQ(s.avg_transaction_len, p.avg_transaction_len);
  EXPECT_DOUBLE_EQ(s.avg_pattern_len, p.avg_pattern_len);
  EXPECT_GE(scaled(p, 0.0).num_transactions, 1u);
}

}  // namespace
}  // namespace smpmine
