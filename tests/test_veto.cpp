// The candidate-veto domain-constraint hook (MinerOptions::candidate_veto).
#include <gtest/gtest.h>

#include <atomic>

#include "core/brute_force.hpp"
#include "core/miner.hpp"
#include "data/quest_gen.hpp"
#include "itemset/itemset.hpp"

namespace smpmine {
namespace {

Database quest_db() {
  QuestParams p;
  p.num_transactions = 300;
  p.avg_transaction_len = 7.0;
  p.avg_pattern_len = 3.0;
  p.num_patterns = 25;
  p.num_items = 50;
  p.seed = 717;
  return generate_quest(p);
}

TEST(CandidateVeto, NullVetoIsNoop) {
  const Database db = quest_db();
  MinerOptions opts;
  opts.min_support = 0.03;
  const MiningResult plain = mine(db, opts);
  opts.candidate_veto = nullptr;
  const MiningResult with_null = mine(db, opts);
  std::string diag;
  EXPECT_TRUE(levels_equal(plain.levels, with_null.levels, &diag)) << diag;
}

TEST(CandidateVeto, AlwaysFalseVetoIsNoop) {
  const Database db = quest_db();
  MinerOptions opts;
  opts.min_support = 0.03;
  const MiningResult plain = mine(db, opts);
  opts.candidate_veto = [](std::span<const item_t>) { return false; };
  const MiningResult vetoed = mine(db, opts);
  std::string diag;
  EXPECT_TRUE(levels_equal(plain.levels, vetoed.levels, &diag)) << diag;
}

TEST(CandidateVeto, FiltersExactlyTheVetoedItemsets) {
  // Veto: no itemset may contain item 0.
  const Database db = quest_db();
  MinerOptions opts;
  opts.min_support = 0.02;
  opts.candidate_veto = [](std::span<const item_t> cand) {
    return !cand.empty() && cand.front() == 0;
  };
  const MiningResult got = mine(db, opts);
  const auto reference = brute_force_frequent(db, opts.min_support);
  // F1 is untouched by the veto (it applies to joins, k >= 2).
  EXPECT_EQ(got.levels[0].size(), reference[0].size());
  // For deeper levels: itemsets with item 0 are gone, all others remain.
  for (std::size_t level = 1; level < reference.size(); ++level) {
    const FrequentSet& ref = reference[level];
    for (std::size_t i = 0; i < ref.size(); ++i) {
      const auto itemset = ref.itemset(i);
      const bool has_zero = itemset.front() == 0;
      const bool found = level < got.levels.size() &&
                         got.levels[level].contains(itemset);
      EXPECT_EQ(found, !has_zero) << format_itemset(itemset);
    }
  }
}

TEST(CandidateVeto, VetoedCountedAsPruned) {
  const Database db = quest_db();
  MinerOptions base;
  base.min_support = 0.03;
  const MiningResult plain = mine(db, base);

  MinerOptions vetoed = base;
  std::atomic<std::uint64_t> calls{0};
  vetoed.candidate_veto = [&calls](std::span<const item_t>) {
    calls.fetch_add(1, std::memory_order_relaxed);
    return true;  // kill every join survivor
  };
  const MiningResult got = mine(db, vetoed);
  ASSERT_FALSE(got.iterations.empty());
  const IterationStats& it = got.iterations.front();
  EXPECT_EQ(it.candidates, 0u);
  // pruned = subset-pruned + vetoed = everything the join produced.
  EXPECT_EQ(it.pruned,
            plain.iterations.front().candidates +
                plain.iterations.front().pruned);
  EXPECT_GT(calls.load(), 0u);
  EXPECT_EQ(got.levels.size(), 1u);  // only F1 survives
}

TEST(CandidateVeto, WorksWithParallelGeneration) {
  const Database db = quest_db();
  MinerOptions seq;
  seq.min_support = 0.03;
  seq.candidate_veto = [](std::span<const item_t> cand) {
    return cand.back() % 7 == 0;
  };
  MinerOptions par = seq;
  par.threads = 4;
  par.parallel_candgen_threshold = 1;
  const MiningResult a = mine(db, seq);
  const MiningResult b = mine(db, par);
  std::string diag;
  EXPECT_TRUE(levels_equal(a.levels, b.levels, &diag)) << diag;
}

TEST(CandidateVeto, WorksInPccd) {
  const Database db = quest_db();
  MinerOptions ccpd;
  ccpd.min_support = 0.03;
  ccpd.candidate_veto = [](std::span<const item_t> cand) {
    return cand.size() >= 2 && cand[0] % 2 == 0;
  };
  MinerOptions pccd = ccpd;
  pccd.algorithm = Algorithm::PCCD;
  pccd.threads = 3;
  const MiningResult a = mine(db, ccpd);
  const MiningResult b = mine(db, pccd);
  std::string diag;
  EXPECT_TRUE(levels_equal(a.levels, b.levels, &diag)) << diag;
}

TEST(CandidateVeto, ThrowingVetoPropagates) {
  const Database db = quest_db();
  MinerOptions opts;
  opts.min_support = 0.03;
  opts.threads = 3;
  opts.parallel_candgen_threshold = 1;
  opts.candidate_veto = [](std::span<const item_t>) -> bool {
    throw std::runtime_error("constraint oracle failed");
  };
  EXPECT_THROW(mine(db, opts), std::runtime_error);
}

}  // namespace
}  // namespace smpmine
