#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>

namespace smpmine {
namespace {

TEST(ThreadPool, RunsEveryTid) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.run_spmd([&](std::uint32_t tid) { hits[tid].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.run_spmd([&](std::uint32_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, RepeatedDispatch) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.run_spmd([&](std::uint32_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 150);
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run_spmd([](std::uint32_t tid) {
                 if (tid == 2) throw std::runtime_error("boom");
               }),
               std::runtime_error);
  // Pool still usable after a failed dispatch.
  std::atomic<int> ok{0};
  pool.run_spmd([&](std::uint32_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

TEST(ThreadPool, ParallelForBlockedCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> seen(103);
  pool.parallel_for_blocked(103, [&](std::size_t begin, std::size_t end,
                                     std::uint32_t) {
    for (std::size_t i = begin; i < end; ++i) seen[i].fetch_add(1);
  });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadPool, ParallelForBlockedGivesContiguousBlocks) {
  ThreadPool pool(4);
  std::vector<std::pair<std::size_t, std::size_t>> ranges(4, {0, 0});
  pool.parallel_for_blocked(
      100, [&](std::size_t begin, std::size_t end, std::uint32_t tid) {
        ranges[tid] = {begin, end};
      });
  EXPECT_EQ(ranges[0], (std::pair<std::size_t, std::size_t>{0, 25}));
  EXPECT_EQ(ranges[3], (std::pair<std::size_t, std::size_t>{75, 100}));
}

TEST(ThreadPool, ParallelForSmallerThanPool) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.parallel_for_blocked(3, [&](std::size_t begin, std::size_t end,
                                   std::uint32_t) {
    calls.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(calls.load(), 3);
}

TEST(Barrier, SynchronizesPhases) {
  constexpr std::uint32_t kThreads = 4;
  ThreadPool pool(kThreads);
  std::atomic<int> phase1{0};
  std::vector<int> observed(kThreads, -1);
  pool.run_spmd([&](std::uint32_t tid) {
    phase1.fetch_add(1);
    pool.barrier().arrive_and_wait();
    observed[tid] = phase1.load();  // must see all arrivals
    pool.barrier().arrive_and_wait();
  });
  for (const int o : observed) EXPECT_EQ(o, static_cast<int>(kThreads));
}

TEST(Barrier, ReusableManyTimes) {
  constexpr std::uint32_t kThreads = 3;
  ThreadPool pool(kThreads);
  std::atomic<int> counter{0};
  pool.run_spmd([&](std::uint32_t) {
    for (int round = 0; round < 100; ++round) {
      counter.fetch_add(1);
      pool.barrier().arrive_and_wait();
      // After each barrier the counter is a multiple of kThreads.
      EXPECT_EQ(counter.load() % kThreads, 0u);
      pool.barrier().arrive_and_wait();
    }
  });
  EXPECT_EQ(counter.load(), 300);
}

}  // namespace
}  // namespace smpmine
