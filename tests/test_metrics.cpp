// obs::MetricsRegistry unit tests: registration idempotence, snapshots,
// the pre-registered instrumentation names, and exactness under concurrent
// increments. Names used here are test-local ("test.metrics.*") so cases
// cannot interfere through the process-global registry.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace smpmine::obs {
namespace {

std::optional<std::uint64_t> counter_value(const MetricsSnapshot& snap,
                                           const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  return std::nullopt;
}

TEST(Metrics, RegistrationIsIdempotent) {
  auto& reg = MetricsRegistry::instance();
  Counter& a = reg.counter("test.metrics.idem");
  Counter& b = reg.counter("test.metrics.idem");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = reg.gauge("test.metrics.idem_gauge");
  Gauge& g2 = reg.gauge("test.metrics.idem_gauge");
  EXPECT_EQ(&g1, &g2);
}

TEST(Metrics, CounterIncrementsShowInSnapshot) {
  auto& reg = MetricsRegistry::instance();
  Counter& c = reg.counter("test.metrics.inc");
  c.reset();
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  const auto v = counter_value(reg.snapshot(), "test.metrics.inc");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42u);
}

TEST(Metrics, GaugeIsLastWriterWins) {
  auto& reg = MetricsRegistry::instance();
  Gauge& g = reg.gauge("test.metrics.gauge");
  g.set(7);
  g.set(-3);
  EXPECT_EQ(g.value(), -3);
  const auto snap = reg.snapshot();
  bool found = false;
  for (const auto& [n, v] : snap.gauges) {
    if (n == "test.metrics.gauge") {
      found = true;
      EXPECT_EQ(v, -3);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Metrics, WellKnownCountersArePreRegistered) {
  // A zero is information; a missing key is a schema change. Every
  // instrumentation counter must appear in a snapshot even if its
  // instrumented path never ran in this process.
  const auto snap = MetricsRegistry::instance().snapshot();
  for (const char* name :
       {"spinlock.contended_acquires", "spinlock.acquire_spins",
        "barrier.waits", "barrier.wait_ns", "barrier.yields",
        "pool.spmd_dispatches", "pool.tasks", "hashtree.inserts",
        "hashtree.leaf_conversions", "trace.dropped_events"}) {
    EXPECT_TRUE(counter_value(snap, name).has_value()) << name;
  }
}

TEST(Metrics, WellKnownAccessorsHitTheRegistry) {
  Counter& via_accessor = metric::spinlock_contended_acquires();
  Counter& via_name =
      MetricsRegistry::instance().counter("spinlock.contended_acquires");
  EXPECT_EQ(&via_accessor, &via_name);
}

TEST(Metrics, ResetValuesZeroesButKeepsAddresses) {
  auto& reg = MetricsRegistry::instance();
  Counter& c = reg.counter("test.metrics.reset");
  c.inc(5);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&c, &reg.counter("test.metrics.reset"));  // name survived
}

TEST(Metrics, ConcurrentIncrementsAreExact) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  Counter& c = MetricsRegistry::instance().counter("test.metrics.concurrent");
  c.reset();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Metrics, ConcurrentRegistrationIsSafe) {
  // Mixed lookups of overlapping names from many threads must agree on one
  // Counter per name (the registry mutex, exercised for TSan too).
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &seen] {
      auto& reg = MetricsRegistry::instance();
      for (int round = 0; round < 100; ++round) {
        reg.counter("test.metrics.shared" + std::to_string(round % 4)).inc();
      }
      seen[t] = &reg.counter("test.metrics.shared0");
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
}

}  // namespace
}  // namespace smpmine::obs
