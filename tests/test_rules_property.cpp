// Property tests for rule generation on mined Quest data: every emitted
// rule's metrics must be re-derivable from the frequent-set supports, and
// the rule set must be exactly the brute-force enumeration above the
// confidence threshold.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/miner.hpp"
#include "core/rules.hpp"
#include "data/quest_gen.hpp"
#include "itemset/itemset.hpp"

namespace smpmine {
namespace {

struct Fixture {
  MiningResult result;
  std::size_t d;
};

const Fixture& mined_fixture() {
  static const Fixture fixture = [] {
    QuestParams p;
    p.num_transactions = 500;
    p.avg_transaction_len = 7.0;
    p.avg_pattern_len = 3.0;
    p.num_patterns = 25;
    p.num_items = 40;
    p.seed = 555;
    const Database db = generate_quest(p);
    MinerOptions opts;
    opts.min_support = 0.04;
    return Fixture{mine_sequential(db, opts), db.size()};
  }();
  return fixture;
}

const count_t* lookup(const MiningResult& r, std::span<const item_t> items) {
  if (items.empty() || items.size() > r.levels.size()) return nullptr;
  return r.levels[items.size() - 1].find_count(items);
}

class RuleConfidenceTest : public ::testing::TestWithParam<double> {};

TEST_P(RuleConfidenceTest, EveryRuleVerifiable) {
  const auto& [result, d] = mined_fixture();
  const double min_conf = GetParam();
  const auto rules = generate_rules(result, min_conf, d);

  for (const Rule& rule : rules) {
    // Antecedent and consequent are disjoint, sorted, non-empty.
    ASSERT_FALSE(rule.antecedent.empty());
    ASSERT_FALSE(rule.consequent.empty());
    EXPECT_TRUE(std::is_sorted(rule.antecedent.begin(), rule.antecedent.end()));
    EXPECT_TRUE(std::is_sorted(rule.consequent.begin(), rule.consequent.end()));
    std::vector<item_t> overlap;
    std::set_intersection(rule.antecedent.begin(), rule.antecedent.end(),
                          rule.consequent.begin(), rule.consequent.end(),
                          std::back_inserter(overlap));
    EXPECT_TRUE(overlap.empty());

    // Metrics re-derivable from the levels.
    std::vector<item_t> whole(rule.antecedent);
    whole.insert(whole.end(), rule.consequent.begin(), rule.consequent.end());
    std::sort(whole.begin(), whole.end());
    const count_t* sup_whole = lookup(result, whole);
    const count_t* sup_ante = lookup(result, rule.antecedent);
    const count_t* sup_cons = lookup(result, rule.consequent);
    ASSERT_NE(sup_whole, nullptr);
    ASSERT_NE(sup_ante, nullptr);
    ASSERT_NE(sup_cons, nullptr);
    EXPECT_EQ(rule.support_count, *sup_whole);
    EXPECT_DOUBLE_EQ(rule.confidence,
                     static_cast<double>(*sup_whole) / *sup_ante);
    EXPECT_GE(rule.confidence, min_conf);
    EXPECT_DOUBLE_EQ(rule.support,
                     static_cast<double>(*sup_whole) / static_cast<double>(d));
    EXPECT_DOUBLE_EQ(rule.lift, rule.confidence * static_cast<double>(d) /
                                    static_cast<double>(*sup_cons));
  }
}

TEST_P(RuleConfidenceTest, CompleteAgainstBruteForce) {
  const auto& [result, d] = mined_fixture();
  const double min_conf = GetParam();
  const auto rules = generate_rules(result, min_conf, d);

  std::set<std::pair<std::vector<item_t>, std::vector<item_t>>> emitted;
  for (const Rule& r : rules) emitted.insert({r.antecedent, r.consequent});
  EXPECT_EQ(emitted.size(), rules.size()) << "duplicate rules";

  std::size_t expected = 0;
  for (std::size_t level = 1; level < result.levels.size(); ++level) {
    const FrequentSet& fk = result.levels[level];
    for (std::size_t x = 0; x < fk.size(); ++x) {
      const auto items = fk.itemset(x);
      const std::vector<item_t> all(items.begin(), items.end());
      for (std::size_t ylen = 1; ylen < all.size(); ++ylen) {
        for (const auto& y : k_subsets(all, ylen)) {
          std::vector<item_t> ante;
          std::set_difference(all.begin(), all.end(), y.begin(), y.end(),
                              std::back_inserter(ante));
          const count_t* sup_ante = lookup(result, ante);
          ASSERT_NE(sup_ante, nullptr);
          if (static_cast<double>(fk.count(x)) / *sup_ante >= min_conf) {
            ++expected;
            EXPECT_TRUE(emitted.count({ante, y}))
                << format_itemset(ante) << " => " << format_itemset(y);
          }
        }
      }
    }
  }
  EXPECT_EQ(rules.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, RuleConfidenceTest,
                         ::testing::Values(0.3, 0.6, 0.9, 1.0),
                         [](const auto& info) {
                           return "c" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

}  // namespace
}  // namespace smpmine
