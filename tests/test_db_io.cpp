#include "data/db_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace smpmine {
namespace {

Database sample_db() {
  Database db;
  db.add_transaction(std::vector<item_t>{1, 4, 5});
  db.add_transaction(std::vector<item_t>{1, 2});
  db.add_transaction(std::vector<item_t>{});
  db.add_transaction(std::vector<item_t>{3, 4, 5});
  return db;
}

bool same_contents(const Database& a, const Database& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t t = 0; t < a.size(); ++t) {
    const auto ta = a.transaction(t);
    const auto tb = b.transaction(t);
    if (!std::equal(ta.begin(), ta.end(), tb.begin(), tb.end())) return false;
  }
  return true;
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(DbIo, AsciiStreamRoundTrip) {
  const Database db = sample_db();
  std::ostringstream os;
  save_ascii(db, os);
  std::istringstream is(os.str());
  const Database loaded = load_ascii(is);
  EXPECT_TRUE(same_contents(db, loaded));
}

TEST(DbIo, AsciiFormatIsOneLinePerTransaction) {
  std::ostringstream os;
  save_ascii(sample_db(), os);
  EXPECT_EQ(os.str(), "1 4 5\n1 2\n\n3 4 5\n");
}

TEST(DbIo, AsciiFileRoundTrip) {
  const std::string path = temp_path("smpmine_ascii_test.txt");
  const Database db = sample_db();
  save_ascii(db, path);
  const Database loaded = load_ascii(path);
  EXPECT_TRUE(same_contents(db, loaded));
  std::remove(path.c_str());
}

TEST(DbIo, AsciiMalformedTokenThrows) {
  std::istringstream is("1 2 3\n4 x 5\n");
  EXPECT_THROW(load_ascii(is), std::runtime_error);
}

TEST(DbIo, AsciiNegativeItemThrows) {
  std::istringstream is("1 -2 3\n");
  EXPECT_THROW(load_ascii(is), std::runtime_error);
}

TEST(DbIo, AsciiMissingFileThrows) {
  EXPECT_THROW(load_ascii(std::string("/nonexistent/nope.txt")),
               std::runtime_error);
}

TEST(DbIo, BinaryRoundTrip) {
  const std::string path = temp_path("smpmine_bin_test.bin");
  const Database db = sample_db();
  save_binary(db, path);
  const Database loaded = load_binary(path);
  EXPECT_TRUE(same_contents(db, loaded));
  std::remove(path.c_str());
}

TEST(DbIo, BinaryBadMagicThrows) {
  const std::string path = temp_path("smpmine_badmagic.bin");
  std::ofstream(path, std::ios::binary) << "not a smpmine file at all......";
  EXPECT_THROW(load_binary(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(DbIo, BinaryTruncatedThrows) {
  const std::string path = temp_path("smpmine_trunc.bin");
  save_binary(sample_db(), path);
  // Chop the file to half its size.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(load_binary(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(DbIo, EmptyDatabaseRoundTrips) {
  const std::string path = temp_path("smpmine_empty.bin");
  Database db;
  save_binary(db, path);
  EXPECT_EQ(load_binary(path).size(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace smpmine
