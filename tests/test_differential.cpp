// Randomized differential testing: across random generator seeds and
// mining configurations, the hash-tree miners must agree exactly with the
// brute-force reference. Any divergence in candidate generation, hashing,
// traversal dedup, counter handling, or placement surfaces here.
#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "core/miner.hpp"
#include "data/quest_gen.hpp"
#include "util/rng.hpp"

namespace smpmine {
namespace {

Database random_db(std::uint64_t seed) {
  // Derive structurally diverse parameters from the seed itself.
  Rng rng(seed);
  QuestParams p;
  p.num_transactions = 150 + static_cast<std::uint32_t>(rng.uniform(350));
  p.avg_transaction_len = 4.0 + static_cast<double>(rng.uniform(8));
  p.avg_pattern_len = 2.0 + static_cast<double>(rng.uniform(3));
  p.num_patterns = 10 + static_cast<std::uint32_t>(rng.uniform(40));
  p.num_items = 20 + static_cast<std::uint32_t>(rng.uniform(60));
  p.correlation = 0.1 + 0.4 * rng.uniform01();
  p.seed = seed * 2654435761u + 1;
  return generate_quest(p);
}

/// A randomized but seed-deterministic miner configuration.
MinerOptions random_options(std::uint64_t seed) {
  Rng rng(seed ^ 0xABCDEF);
  MinerOptions opts;
  opts.min_support = 0.02 + 0.06 * rng.uniform01();
  opts.threads = 1 + static_cast<std::uint32_t>(rng.uniform(6));
  opts.parallel_candgen_threshold =
      static_cast<std::uint32_t>(rng.uniform(3)) == 0 ? 1 : 64;
  const PlacementPolicy policies[] = {
      PlacementPolicy::Malloc, PlacementPolicy::SPP,  PlacementPolicy::LPP,
      PlacementPolicy::GPP,    PlacementPolicy::LSPP, PlacementPolicy::LLPP,
      PlacementPolicy::LGPP,   PlacementPolicy::LcaGpp};
  opts.placement = policies[rng.uniform(std::size(policies))];
  const SubsetCheck checks[] = {SubsetCheck::LeafVisited,
                                SubsetCheck::VisitedFlags,
                                SubsetCheck::FrameLocal};
  opts.subset_check = checks[rng.uniform(std::size(checks))];
  const HashScheme schemes[] = {HashScheme::Interleaved, HashScheme::Bitonic,
                                HashScheme::Indirection};
  opts.hash_scheme = schemes[rng.uniform(std::size(schemes))];
  const PartitionScheme balances[] = {PartitionScheme::Block,
                                      PartitionScheme::Interleaved,
                                      PartitionScheme::Bitonic};
  opts.balance = balances[rng.uniform(std::size(balances))];
  const CounterMode counters[] = {CounterMode::Atomic, CounterMode::Locked};
  if (!policy_local_counters(opts.placement)) {
    opts.counter_mode = counters[rng.uniform(std::size(counters))];
  }
  const DbPartition parts[] = {DbPartition::Block, DbPartition::Balanced,
                               DbPartition::Adaptive};
  opts.db_partition = parts[rng.uniform(std::size(parts))];
  const SppVariant variants[] = {SppVariant::Common, SppVariant::Individual,
                                 SppVariant::Grouped};
  opts.spp_variant = variants[rng.uniform(std::size(variants))];
  opts.leaf_threshold = 1 + static_cast<std::uint32_t>(rng.uniform(16));
  if (rng.uniform01() < 0.3) {
    opts.adaptive_fanout = false;
    opts.fixed_fanout = 2 + static_cast<std::uint32_t>(rng.uniform(14));
  }
  if (rng.uniform01() < 0.3) opts.algorithm = Algorithm::PCCD;
  return opts;
}

class DifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialTest, RandomConfigMatchesBruteForce) {
  const std::uint64_t seed = GetParam();
  const Database db = random_db(seed);
  const MinerOptions opts = random_options(seed);
  SCOPED_TRACE(opts.summary());

  const MiningResult got = mine(db, opts);
  const auto reference = brute_force_frequent(db, opts.min_support);
  std::string diag;
  EXPECT_TRUE(levels_equal(got.levels, reference, &diag)) << diag;
}

TEST_P(DifferentialTest, RerunIsDeterministic) {
  const std::uint64_t seed = GetParam();
  const Database db = random_db(seed);
  const MinerOptions opts = random_options(seed);
  const MiningResult a = mine(db, opts);
  const MiningResult b = mine(db, opts);
  std::string diag;
  EXPECT_TRUE(levels_equal(a.levels, b.levels, &diag)) << diag;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 25),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace smpmine
