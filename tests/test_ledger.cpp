// Parallel-efficiency ledger: recording, snapshots, decomposition, and the
// v3 manifest / telemetry carriage.
//
// The ledger is global and accumulates across tests (shards are never
// freed), so every assertion works on snapshot deltas — the same protocol
// the miners use — never on absolute totals.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/miner.hpp"
#include "core/results_io.hpp"
#include "data/quest_gen.hpp"
#include "obs/json_writer.hpp"
#include "obs/ledger/efficiency.hpp"
#include "obs/ledger/ledger.hpp"
#include "obs/ledger/telemetry.hpp"

namespace smpmine::obs::ledger {
namespace {

LedgerSnapshot snap() { return Ledger::instance().snapshot(); }

/// Burns thread CPU time so CLOCK_THREAD_CPUTIME_ID visibly advances.
void burn_cpu() {
  volatile std::uint64_t x = 1;
  for (int i = 0; i < 2'000'000; ++i) x = x * 2654435761u + 1;
}

TEST(LedgerPhases, NameRoundTrip) {
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const PhaseId p = static_cast<PhaseId>(i);
    EXPECT_EQ(phase_from_name(phase_name(p)), p) << phase_name(p);
  }
  EXPECT_EQ(phase_from_name("bogus"), PhaseId::kNone);
  EXPECT_EQ(phase_from_name(nullptr), PhaseId::kNone);
  EXPECT_STREQ(phase_name(PhaseId::kNone), "?");
}

TEST(LedgerScopeTest, RecordsWallCpuAndEntries) {
  const LedgerSnapshot before = snap();
  {
    LedgerScope scope("count");
    burn_cpu();
  }
  const PhaseAgg agg = snap().delta_since(before).agg(PhaseId::Count);
  EXPECT_EQ(agg.entries, 1u);
  EXPECT_GT(agg.wall_max_ns, 0u);
  EXPECT_GT(agg.cpu_sum_ns, 0u);
  // A busy loop's CPU time cannot exceed its wall time (same thread).
  EXPECT_LE(agg.cpu_sum_ns, agg.wall_max_ns * 2);  // 2x: clock granularity
}

TEST(LedgerScopeTest, UnknownPhaseRecordsNothing) {
  const LedgerSnapshot before = snap();
  {
    LedgerScope scope("no-such-phase");
    add_work(42);  // current phase is kNone: dropped
  }
  EXPECT_TRUE(snap().delta_since(before).empty());
}

TEST(LedgerScopeTest, NestedScopeRestoresOuterPhase) {
  const LedgerSnapshot before = snap();
  {
    LedgerScope outer("candgen");
    {
      LedgerScope inner("count");
      add_work(7);  // -> count
    }
    add_work(5);  // -> candgen again (restored, not kNone)
  }
  const LedgerSnapshot d = snap().delta_since(before);
  EXPECT_EQ(d.agg(PhaseId::Count).work_units, 7u);
  EXPECT_EQ(d.agg(PhaseId::Candgen).work_units, 5u);
}

TEST(LedgerScopeTest, NamedWorkNeedsNoScope) {
  const LedgerSnapshot before = snap();
  SMPMINE_LEDGER_WORK("vertbuild", 11);
  EXPECT_EQ(snap().delta_since(before).agg(PhaseId::Vertbuild).work_units,
            11u);
}

TEST(LedgerScopeTest, DisabledGateDropsEverything) {
  set_enabled(false);
  const LedgerSnapshot before = snap();
  {
    LedgerScope scope("count");
    add_work(100);
  }
  set_enabled(true);
  EXPECT_TRUE(snap().delta_since(before).empty());
}

TEST(LedgerSnapshotTest, DeltaSaturatesAndHandlesNewThreads) {
  // delta is field-wise saturating: a "before" larger than "after" (clock
  // weirdness, reset in between) yields 0, never underflow.
  LedgerSnapshot before, after;
  before.threads.resize(1);
  after.threads.resize(2);  // one shard registered in between
  before.threads[0].phases[0].work_units = 100;
  after.threads[0].phases[0].work_units = 40;
  after.threads[1].phases[0].work_units = 7;
  const LedgerSnapshot d = after.delta_since(before);
  EXPECT_EQ(d.threads[0].phases[0].work_units, 0u);
  EXPECT_EQ(d.threads[1].phases[0].work_units, 7u);  // counts from zero
}

TEST(LedgerSnapshotTest, AggKeepsSumAndMaxApart) {
  LedgerSnapshot s;
  s.threads.resize(3);
  for (std::size_t t = 0; t < 3; ++t) {
    PhaseCounts& c = s.threads[t].phases[
        static_cast<std::size_t>(PhaseId::Count)];
    c.wall_ns = 100 * (t + 1);
    c.cpu_ns = 50 * (t + 1);
    c.work_units = 10;
    c.entries = 1;
  }
  const PhaseAgg a = s.agg(PhaseId::Count);
  EXPECT_EQ(a.threads_active, 3u);
  EXPECT_EQ(a.wall_sum_ns, 600u);
  EXPECT_EQ(a.wall_max_ns, 300u);
  EXPECT_EQ(a.cpu_sum_ns, 300u);
  EXPECT_EQ(a.cpu_max_ns, 150u);
  EXPECT_EQ(a.work_units, 30u);
  // The third thread row is idle in every other phase.
  EXPECT_EQ(s.agg(PhaseId::Remap).threads_active, 0u);
}

TEST(LedgerSnapshotTest, MultiThreadShardsMerge) {
  const LedgerSnapshot before = snap();
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([] {
      LedgerScope scope("count");
      add_work(10);
      burn_cpu();
    });
  }
  for (auto& w : workers) w.join();
  const PhaseAgg agg = snap().delta_since(before).agg(PhaseId::Count);
  EXPECT_EQ(agg.threads_active, 3u);
  EXPECT_EQ(agg.work_units, 30u);
  EXPECT_EQ(agg.entries, 3u);
  EXPECT_LT(agg.wall_max_ns, agg.wall_sum_ns);  // three distinct rows
}

// ---------------------------------------------------------------------------
// Decomposition.
// ---------------------------------------------------------------------------

TEST(EfficiencyTest, SyntheticIdentityAndBins) {
  // 4 threads, one parallel phase: wall 100ms, cpu per thread
  // {100, 60, 60, 60}ms with 10ms of lock wait on the slow thread; plus a
  // serial 20ms remap on thread 0.
  LedgerSnapshot s;
  s.threads.resize(4);
  const auto count_i = static_cast<std::size_t>(PhaseId::Count);
  for (std::size_t t = 0; t < 4; ++t) {
    PhaseCounts& c = s.threads[t].phases[count_i];
    c.wall_ns = 100'000'000;
    c.cpu_ns = t == 0 ? 100'000'000 : 60'000'000;
    c.entries = 1;
  }
  s.threads[0].phases[count_i].lock_wait_ns = 10'000'000;
  PhaseCounts& remap = s.threads[0].phases[
      static_cast<std::size_t>(PhaseId::Remap)];
  remap.wall_ns = 20'000'000;
  remap.cpu_ns = 20'000'000;
  remap.entries = 1;

  const EfficiencyDecomposition e = decompose(s, 4);
  EXPECT_EQ(e.threads, 4u);
  EXPECT_NEAR(e.wall_seconds, 0.12, 1e-9);
  EXPECT_NEAR(e.budget_seconds, 0.48, 1e-9);
  // Serial fraction of wall: 20ms of 120ms.
  EXPECT_NEAR(e.serial_fraction, 20.0 / 120.0, 1e-9);
  // The bins are exhaustive: work + losses == 1 exactly.
  EXPECT_NEAR(e.work_fraction + e.loss_total(), 1.0, 1e-12);
  EXPECT_GT(e.imbalance_loss, 0.0);   // 60ms threads idle behind the 100ms one
  EXPECT_GT(e.contention_loss, 0.0);  // the lock wait
  EXPECT_GT(e.serial_loss, 0.0);      // 3 threads idle through remap
  const auto count_row = std::find_if(
      e.phases.begin(), e.phases.end(),
      [](const PhaseEfficiency& p) { return p.phase == PhaseId::Count; });
  ASSERT_NE(count_row, e.phases.end());
  EXPECT_TRUE(count_row->parallel);
  EXPECT_EQ(count_row->threads_active, 4u);
  EXPECT_GT(count_row->imbalance, 0.0);
}

TEST(EfficiencyTest, EmptySnapshotIsAllZero) {
  const EfficiencyDecomposition e = decompose(LedgerSnapshot{}, 4);
  EXPECT_EQ(e.budget_seconds, 0.0);
  EXPECT_EQ(e.work_fraction + e.loss_total(), 0.0);
}

// ---------------------------------------------------------------------------
// End-to-end through the miners and the v3 manifest.
// ---------------------------------------------------------------------------

Database tiny_db() {
  QuestParams p;
  p.num_transactions = 4000;
  p.avg_transaction_len = 8.0;
  p.num_items = 200;
  p.seed = 42;
  return generate_quest(p);
}

TEST(LedgerEndToEnd, MinerPopulatesLedgerAndIdentityHolds) {
  const Database db = tiny_db();
  for (const Algorithm algo : {Algorithm::CCPD, Algorithm::PCCD}) {
    MinerOptions opts;
    opts.min_support = 0.01;
    opts.threads = 2;
    opts.algorithm = algo;
    const MiningResult r = mine(db, opts);
    ASSERT_FALSE(r.run_ledger.empty());
    const EfficiencyDecomposition& e = r.run_efficiency;
    EXPECT_GT(e.budget_seconds, 0.0);
    // Acceptance: the bins sum to the budget — way inside the +-2pt gate.
    EXPECT_NEAR(e.work_fraction + e.loss_total(), 1.0, 1e-6);
    // Counting work units were recorded by whichever kernel ran.
    EXPECT_GT(r.run_ledger.agg(PhaseId::Count).work_units, 0u);
    EXPECT_GT(r.run_ledger.agg(PhaseId::F1).work_units, 0u);
    for (const IterationStats& it : r.iterations) {
      if (it.efficiency.budget_seconds == 0.0) continue;
      EXPECT_NEAR(it.efficiency.work_fraction + it.efficiency.loss_total(),
                  1.0, 1e-6);
    }
  }
}

TEST(LedgerEndToEnd, ManifestV3CarriesLedgerAndEfficiency) {
  const Database db = tiny_db();
  MinerOptions opts;
  opts.min_support = 0.01;
  opts.threads = 2;
  const MiningResult r = mine(db, opts);
  const RunManifest m = make_run_manifest("test", "tiny", db, opts, r);
  std::ostringstream os;
  write_run_manifest(m, os);
  const std::string doc = os.str();
  EXPECT_TRUE(obs::json_valid(doc)) << doc.substr(0, 400);
  EXPECT_NE(doc.find("\"schema\":\"smpmine.run.v3\""), std::string::npos);
  // v3 additions present at run level and per iteration...
  EXPECT_NE(doc.find("\"ledger\""), std::string::npos);
  EXPECT_NE(doc.find("\"efficiency\""), std::string::npos);
  EXPECT_NE(doc.find("\"per_thread\""), std::string::npos);
  EXPECT_NE(doc.find("\"imbalance_loss\""), std::string::npos);
  // ...and the v2 surface intact (strict superset).
  for (const char* key : {"\"totals\"", "\"perf\"", "\"iterations\"",
                          "\"metrics\"", "\"histograms\"", "\"cpu\""}) {
    EXPECT_NE(doc.find(key), std::string::npos) << key;
  }
}

// ---------------------------------------------------------------------------
// Telemetry sampler.
// ---------------------------------------------------------------------------

TEST(TelemetryTest, StreamsValidJsonlAndStops) {
  const std::string path =
      ::testing::TempDir() + "/smpmine_telemetry_test.jsonl";
  std::remove(path.c_str());
  TelemetryOptions topts;
  topts.period_ms = 5;
  topts.path = path;
  ASSERT_TRUE(start(topts));
  EXPECT_TRUE(running());
  EXPECT_FALSE(start(topts));  // only one sampler
  {
    LedgerScope scope("count");
    add_work(123);
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }
  stop();
  EXPECT_FALSE(running());
  stop();  // idempotent

  std::ifstream is(path);
  ASSERT_TRUE(is.is_open());
  std::string line;
  std::uint64_t lines = 0;
  bool saw_ledger = false;
  while (std::getline(is, line)) {
    ++lines;
    EXPECT_TRUE(obs::json_valid(line)) << "line " << lines << ": " << line;
    EXPECT_NE(line.find("smpmine.telemetry.v1"), std::string::npos);
    if (line.find("\"work_units\"") != std::string::npos) saw_ledger = true;
  }
  // Record 0 at start, the final record at stop, and >=1 periodic sample
  // over a 40ms window at 5ms.
  EXPECT_GE(lines, 3u);
  EXPECT_EQ(lines, records_written());
  EXPECT_TRUE(saw_ledger);  // the count-phase progress made it out
}

TEST(TelemetryTest, EmptyPathRefusesToStart) {
  TelemetryOptions topts;
  topts.path = "";
  EXPECT_FALSE(start(topts));
  EXPECT_FALSE(running());
}

}  // namespace
}  // namespace smpmine::obs::ledger
