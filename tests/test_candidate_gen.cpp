#include "core/candidate_gen.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "itemset/itemset.hpp"

namespace smpmine {
namespace {

std::set<std::vector<item_t>> collect(const FrequentSet& f,
                                      std::size_t k) {
  const auto classes = build_equivalence_classes(f);
  const auto units = generation_units(classes, k);
  std::set<std::vector<item_t>> out;
  generate_candidates_emit(f, classes, units,
                           [&](std::span<const item_t> cand) {
                             out.insert({cand.begin(), cand.end()});
                           });
  return out;
}

TEST(CandidateGen, C2IsAllPairs) {
  const FrequentSet f1(1, {1, 2, 4, 5}, {3, 2, 3, 3});
  const auto c2 = collect(f1, 2);
  const std::set<std::vector<item_t>> expect{{1, 2}, {1, 4}, {1, 5},
                                             {2, 4}, {2, 5}, {4, 5}};
  EXPECT_EQ(c2, expect);
}

TEST(CandidateGen, PaperC3PruningExample) {
  // F2 = {(1,2),(1,4),(1,5),(4,5)}: the join yields (1,2,4),(1,2,5),(1,4,5)
  // but (2,4) and (2,5) are infrequent, so only (1,4,5) survives.
  const FrequentSet f2(2, {1, 2, 1, 4, 1, 5, 4, 5}, {2, 2, 2, 3});
  const auto classes = build_equivalence_classes(f2);
  const auto units = generation_units(classes, 3);
  std::set<std::vector<item_t>> survivors;
  const CandGenCounters counters = generate_candidates_emit(
      f2, classes, units, [&](std::span<const item_t> cand) {
        survivors.insert({cand.begin(), cand.end()});
      });
  EXPECT_EQ(counters.generated, 1u);
  EXPECT_EQ(counters.pruned, 2u);
  EXPECT_EQ(survivors, (std::set<std::vector<item_t>>{{1, 4, 5}}));
}

TEST(CandidateGen, NoJoinAcrossClasses) {
  // F2 = {(1,2),(3,4)}: different prefixes, no candidate.
  const FrequentSet f2(2, {1, 2, 3, 4}, {5, 5});
  EXPECT_TRUE(collect(f2, 3).empty());
}

TEST(CandidateGen, FullyFrequentTriangleJoins) {
  // All pairs over {1,2,3} frequent -> C3 = {(1,2,3)}.
  const FrequentSet f2(2, {1, 2, 1, 3, 2, 3}, {5, 5, 5});
  EXPECT_EQ(collect(f2, 3),
            (std::set<std::vector<item_t>>{{1, 2, 3}}));
}

TEST(CandidateGen, CandidatesAreSortedItemsets) {
  const FrequentSet f1(1, {3, 7, 11, 20}, {9, 9, 9, 9});
  for (const auto& cand : collect(f1, 2)) {
    EXPECT_LT(cand[0], cand[1]);
  }
}

TEST(CandidateGen, SplitUnitsEqualWholeUnits) {
  // Generating from partitioned unit batches yields the same set as one
  // batch — the invariant parallel candgen relies on.
  std::vector<item_t> flat;
  std::vector<count_t> counts;
  for (item_t i = 0; i < 12; ++i) {
    flat.push_back(i);
    counts.push_back(100 - i);
  }
  const FrequentSet f1(1, std::move(flat), std::move(counts));
  const auto classes = build_equivalence_classes(f1);
  const auto units = generation_units(classes, 2);

  std::set<std::vector<item_t>> whole;
  generate_candidates_emit(f1, classes, units,
                           [&](std::span<const item_t> cand) {
                             whole.insert({cand.begin(), cand.end()});
                           });

  std::set<std::vector<item_t>> split;
  for (const auto& batch :
       balance_generation(units, 3, PartitionScheme::Bitonic)) {
    generate_candidates_emit(f1, classes, batch,
                             [&](std::span<const item_t> cand) {
                               auto [_, inserted] = split.insert(
                                   {cand.begin(), cand.end()});
                               EXPECT_TRUE(inserted) << "duplicate candidate";
                             });
  }
  EXPECT_EQ(split, whole);
  EXPECT_EQ(whole.size(), 66u);
}

TEST(AbsoluteSupport, CeilingSemantics) {
  EXPECT_EQ(absolute_support(0.005, 1000), 5u);
  EXPECT_EQ(absolute_support(0.0051, 1000), 6u);  // ceil
  EXPECT_EQ(absolute_support(0.5, 4), 2u);
  EXPECT_EQ(absolute_support(0.0001, 10), 1u);  // floor of 1
}

TEST(ComputeF1, CountsAndThresholds) {
  Database db;
  db.add_transaction(std::vector<item_t>{1, 4, 5});
  db.add_transaction(std::vector<item_t>{1, 2});
  db.add_transaction(std::vector<item_t>{3, 4, 5});
  db.add_transaction(std::vector<item_t>{1, 2, 4, 5});
  ThreadPool pool(2);
  const FrequentSet f1 = compute_f1(db, 2, pool);
  ASSERT_EQ(f1.size(), 4u);  // items 1,2,4,5 (3 appears once)
  EXPECT_EQ(f1.itemset(0)[0], 1u);
  EXPECT_EQ(f1.count(0), 3u);
  EXPECT_EQ(f1.itemset(1)[0], 2u);
  EXPECT_EQ(f1.count(1), 2u);
  const std::vector<item_t> three{3};
  EXPECT_FALSE(f1.contains(three));
}

TEST(ComputeF1, EmptyDatabase) {
  Database db;
  ThreadPool pool(2);
  EXPECT_TRUE(compute_f1(db, 1, pool).empty());
}

}  // namespace
}  // namespace smpmine
