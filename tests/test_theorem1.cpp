// Property tests for Theorem 1 (paper Section 4.1): per-leaf occupancy
// bounds of the bitonic hash function, and the bitonic-vs-interleaved
// distribution claim.
//
// Setting: items I = {0..d-1}, fanout H with d/(2H) integral, iteration k.
// Every k-itemset maps to the leaf given by its per-item hash values. The
// theorem bounds each leaf's occupancy against the average |G|/H^k within
// [e^{-k^2/(d/H)}, e^{+k^2/(d/H)}], and the text shows the bitonic function
// puts a (1 - 1/H)^{k-1} fraction of leaves near the average versus at most
// 2/3 for the interleaved function.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "hashtree/hash_policy.hpp"
#include "itemset/itemset.hpp"

namespace smpmine {
namespace {

/// Leaf occupancy histogram: leaf signature (hash path) -> #itemsets.
std::map<std::vector<std::uint32_t>, std::uint64_t> leaf_loads(
    const HashPolicy& policy, item_t d, std::size_t k) {
  std::vector<item_t> base(d);
  for (item_t i = 0; i < d; ++i) base[i] = i;
  std::map<std::vector<std::uint32_t>, std::uint64_t> loads;
  for (const auto& itemset : k_subsets(base, k)) {
    std::vector<std::uint32_t> leaf(k);
    for (std::size_t j = 0; j < k; ++j) leaf[j] = policy.bucket(itemset[j]);
    ++loads[leaf];
  }
  return loads;
}

double binomial(std::uint64_t n, std::uint64_t k) {
  double b = 1.0;
  for (std::uint64_t i = 0; i < k; ++i) {
    b *= static_cast<double>(n - i) / static_cast<double>(i + 1);
  }
  return b;
}

struct TheoremCase {
  item_t d;
  std::uint32_t h;
  std::uint32_t k;
};

class Theorem1Test : public ::testing::TestWithParam<TheoremCase> {};

TEST_P(Theorem1Test, BitonicLoadsWithinBounds) {
  const auto [d, h, k] = GetParam();
  ASSERT_EQ(d % (2 * h), 0u) << "theorem precondition d/2H integral";
  ASSERT_GT(h, k) << "theorem precondition H > k";
  const HashPolicy bitonic(HashScheme::Bitonic, h);
  const auto loads = leaf_loads(bitonic, d, k);

  const double total_leaves = std::pow(static_cast<double>(h), k);
  const double average = binomial(d, k) / total_leaves;
  const double bound = std::exp(static_cast<double>(k) * k /
                                (static_cast<double>(d) / h));
  // Enumerate every leaf signature, including empty leaves — a zero-load
  // leaf would violate the lower bound.
  std::vector<std::uint32_t> leaf(k, 0);
  const auto total = static_cast<std::uint64_t>(total_leaves);
  for (std::uint64_t code = 0; code < total; ++code) {
    std::uint64_t rest = code;
    for (std::uint32_t j = 0; j < k; ++j) {
      leaf[j] = static_cast<std::uint32_t>(rest % h);
      rest /= h;
    }
    const auto it = loads.find(leaf);
    const double load =
        it == loads.end() ? 0.0 : static_cast<double>(it->second);
    const double ratio = load / average;
    EXPECT_LE(ratio, bound + 1e-9) << "leaf code " << code;
    EXPECT_GE(ratio, 1.0 / bound - 1e-9) << "leaf code " << code;
  }
}

TEST_P(Theorem1Test, BitonicSpreadsTighterThanInterleaved) {
  const auto [d, h, k] = GetParam();
  if (h < 2) GTEST_SKIP();
  const auto bitonic_loads = leaf_loads(HashPolicy(HashScheme::Bitonic, h), d, k);
  const auto mod_loads =
      leaf_loads(HashPolicy(HashScheme::Interleaved, h), d, k);

  auto stddev = [](const std::map<std::vector<std::uint32_t>, std::uint64_t>&
                       loads,
                   double total_leaves) {
    double sum = 0.0, sq = 0.0;
    for (const auto& [_, load] : loads) {
      sum += static_cast<double>(load);
      sq += static_cast<double>(load) * static_cast<double>(load);
    }
    // Empty leaves count as zero-load leaves.
    const double mean = sum / total_leaves;
    return std::sqrt(std::max(0.0, sq / total_leaves - mean * mean));
  };
  const double total_leaves = std::pow(static_cast<double>(h), k);
  // The paper's distribution claim: far more bitonic leaves sit near the
  // average, i.e. the occupancy spread is tighter.
  EXPECT_LE(stddev(bitonic_loads, total_leaves),
            stddev(mod_loads, total_leaves) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Theorem1Test,
    ::testing::Values(TheoremCase{12, 3, 2}, TheoremCase{16, 4, 2},
                      TheoremCase{16, 4, 3}, TheoremCase{20, 5, 3},
                      TheoremCase{24, 4, 3}, TheoremCase{24, 6, 2},
                      TheoremCase{24, 6, 4}, TheoremCase{30, 5, 4}),
    [](const auto& info) {
      return "d" + std::to_string(info.param.d) + "H" +
             std::to_string(info.param.h) + "k" + std::to_string(info.param.k);
    });

TEST(Theorem1, GoodLeavesSitCloserToAverage) {
  // For bitonic under the theorem's H > k precondition, a leaf (a1..ak) has
  // capacity close to the average iff a_i != a_{i+1} for all i — there are
  // H(H-1)^{k-1} such "good" leaves. Check the characterization as a mean
  // relative-deviation separation: good leaves deviate less than bad ones.
  struct Case {
    item_t d;
    std::uint32_t h, k;
  };
  for (const Case c : {Case{16, 4, 2}, Case{24, 4, 3}, Case{60, 3, 2}}) {
    ASSERT_GT(c.h, c.k);
    const HashPolicy bitonic(HashScheme::Bitonic, c.h);
    const auto loads = leaf_loads(bitonic, c.d, c.k);
    const double average = binomial(c.d, c.k) / std::pow(c.h, c.k);

    double good_dev = 0.0, bad_dev = 0.0;
    int good_n = 0, bad_n = 0;
    for (const auto& [leaf, load] : loads) {
      bool good = true;
      for (std::size_t i = 0; i + 1 < leaf.size(); ++i) {
        if (leaf[i] == leaf[i + 1]) good = false;
      }
      const double dev =
          std::abs(static_cast<double>(load) - average) / average;
      if (good) {
        good_dev += dev;
        ++good_n;
      } else {
        bad_dev += dev;
        ++bad_n;
      }
    }
    ASSERT_GT(good_n, 0);
    ASSERT_GT(bad_n, 0);
    // The good-leaf count matches the H(H-1)^{k-1} analysis (all leaves are
    // occupied at these sizes, so the loads map covers every signature).
    const double expected_good =
        c.h * std::pow(c.h - 1.0, static_cast<double>(c.k) - 1.0);
    EXPECT_EQ(static_cast<double>(good_n), expected_good)
        << "d=" << c.d << " H=" << c.h << " k=" << c.k;
    EXPECT_LT(good_dev / good_n, bad_dev / bad_n)
        << "d=" << c.d << " H=" << c.h << " k=" << c.k;
  }
}

}  // namespace
}  // namespace smpmine
