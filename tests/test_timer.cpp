#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace smpmine {
namespace {

TEST(WallTimer, MonotoneAndResettable) {
  WallTimer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  t.reset();
  EXPECT_LT(t.seconds(), b + 1.0);
}

TEST(WallTimer, MeasuresSleep) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.seconds(), 0.015);
  EXPECT_GE(t.nanos(), 15'000'000u);
}

TEST(PhaseTimes, AccumulatesByName) {
  PhaseTimes pt;
  pt.add("count", 1.0);
  pt.add("count", 2.0);
  pt.add("build", 0.5);
  EXPECT_DOUBLE_EQ(pt.get("count"), 3.0);
  EXPECT_DOUBLE_EQ(pt.get("build"), 0.5);
  EXPECT_DOUBLE_EQ(pt.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(pt.total(), 3.5);
}

TEST(PhaseTimes, MergeSumsPhases) {
  PhaseTimes a, b;
  a.add("x", 1.0);
  b.add("x", 2.0);
  b.add("y", 4.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.get("x"), 3.0);
  EXPECT_DOUBLE_EQ(a.get("y"), 4.0);
}

TEST(ScopedPhase, RecordsOnDestruction) {
  PhaseTimes pt;
  {
    ScopedPhase phase(pt, "scope");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(pt.get("scope"), 0.0);
}

}  // namespace
}  // namespace smpmine
