// Unit tests for the sense-reversing Barrier (functional behaviour; the
// TSan-facing stress lives in tests/race/test_race_barrier.cpp).
#include "parallel/barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace smpmine {
namespace {

TEST(Barrier, ReportsParties) {
  Barrier barrier(3);
  EXPECT_EQ(barrier.parties(), 3u);
}

TEST(Barrier, SinglePartyNeverBlocks) {
  // Degenerate case: with one party, every arrival is the last arrival —
  // arrive_and_wait must return immediately, any number of times.
  Barrier barrier(1);
  for (int i = 0; i < 100; ++i) barrier.arrive_and_wait();
  EXPECT_EQ(barrier.parties(), 1u);
}

TEST(Barrier, BlocksUntilAllPartiesArrive) {
  Barrier barrier(2);
  std::atomic<bool> other_passed{false};
  std::thread other([&] {
    barrier.arrive_and_wait();
    other_passed.store(true, std::memory_order_release);
  });
  // Until this thread arrives, the other must stay blocked. A sleep can't
  // prove blocking, but it reliably catches a barrier that lets parties
  // through early.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(other_passed.load(std::memory_order_acquire));
  barrier.arrive_and_wait();
  other.join();
  EXPECT_TRUE(other_passed.load(std::memory_order_acquire));
}

TEST(Barrier, ReusableAcrossPhasesWithoutReinit) {
  // Bulk-synchronous phase structure, as CCPD uses it: each phase's writes
  // must be complete before any thread starts the next phase.
  constexpr std::uint32_t kThreads = 4;
  constexpr int kPhases = 25;
  Barrier barrier(kThreads);
  std::vector<std::atomic<int>> arrivals(kPhases);
  for (auto& a : arrivals) a.store(0);

  std::vector<std::thread> workers;
  for (std::uint32_t tid = 0; tid < kThreads; ++tid) {
    workers.emplace_back([&] {
      for (int p = 0; p < kPhases; ++p) {
        arrivals[p].fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier, the whole phase must have checked in.
        ASSERT_EQ(arrivals[p].load(), static_cast<int>(kThreads));
      }
    });
  }
  for (auto& w : workers) w.join();
}

TEST(Barrier, SenseReversalOverThreeGenerations) {
  // >= 3 consecutive generations through one barrier object: the sense bit
  // flips 0->1->0->1, so generation 3 reuses generation 1's sense value —
  // exactly the wrap a sense-reversal bug (e.g. resetting the count too
  // late) would corrupt. Lockstep counters make a missed or early release
  // visible as a value mismatch.
  constexpr std::uint32_t kThreads = 3;
  constexpr int kGenerations = 3;
  Barrier barrier(kThreads);
  std::vector<std::atomic<int>> generation(kThreads);
  for (auto& g : generation) g.store(0);

  std::vector<std::thread> workers;
  for (std::uint32_t tid = 0; tid < kThreads; ++tid) {
    workers.emplace_back([&, tid] {
      for (int g = 1; g <= kGenerations; ++g) {
        generation[tid].store(g);
        barrier.arrive_and_wait();
        for (std::uint32_t other = 0; other < kThreads; ++other) {
          ASSERT_EQ(generation[other].load(), g)
              << "generation " << g << ": thread " << other << " astray";
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& w : workers) w.join();
}

TEST(Barrier, OversubscribedMorePartiesThanCores) {
  // More parties than hardware threads: the yield path in the wait loop
  // must keep everything moving.
  const std::uint32_t parties =
      std::max(2u, std::thread::hardware_concurrency() * 2);
  Barrier barrier(parties);
  std::atomic<int> sum{0};
  std::vector<std::thread> workers;
  for (std::uint32_t tid = 0; tid < parties; ++tid) {
    workers.emplace_back([&] {
      sum.fetch_add(1);
      barrier.arrive_and_wait();
      ASSERT_EQ(sum.load(), static_cast<int>(parties));
    });
  }
  for (auto& w : workers) w.join();
}

}  // namespace
}  // namespace smpmine
