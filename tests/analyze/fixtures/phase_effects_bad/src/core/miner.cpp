// Phase-effects violating fixture: the count scope — opened by an
// invocation clang-format split across lines, which a per-line scanner
// would silently skip — writes a structure field of the frozen tree.
// After freeze the structure is read-only; only the counter plane may
// change, so the frozen-tree contract check must fire.
#include <optional>

namespace fixture {

class FrozenTree {
 public:
  explicit FrozenTree(int n) : num_nodes_(n) {}
  void clobber(int n) { num_nodes_ = n; }
  int nodes() const { return num_nodes_; }

 private:
  int num_nodes_ = 0;
};

void iteration() {
  std::optional<FrozenTree> frozen;
  {
    SMPMINE_TRACE_SPAN("freeze");
    frozen.emplace(4);
  }
  {
    SMPMINE_TRACE_SPAN(
        "count");
    frozen->clobber(7);
  }
}

}  // namespace fixture
