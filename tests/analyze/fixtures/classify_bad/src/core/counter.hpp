// classify violating fixture: `value_` lives in a lock-owning class with
// no annotation, no marker, and no suppression entry.
#pragma once

#include <cstdint>

namespace fixture {

class Counter {
 public:
  void bump();

 private:
  mutable SpinLock mu_;
  std::uint64_t hits_ GUARDED_BY(mu_) = 0;
  std::uint64_t value_ = 0;
};

}  // namespace fixture
