// Phase-effects violating fixture: candgen seeds the accumulator and
// count reads it — a cross-phase write/read pair on a field with no
// protected lattice class, no phase-ok marker, no phase suppression, and
// no entry in the checked-in baseline. The gate must demand an audited
// baseline entry.
namespace fixture {

class Accumulator {
 public:
  void seed(int v) { total_ = v; }
  int read_total() const { return total_; }

 private:
  int total_ = 0;
};

void iteration(Accumulator& acc) {
  {
    SMPMINE_TRACE_SPAN("candgen");
    acc.seed(2);
  }
  {
    SMPMINE_TRACE_SPAN("count");
    (void)acc.read_total();
  }
}

}  // namespace fixture
