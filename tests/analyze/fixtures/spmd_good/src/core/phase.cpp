// SPMD-reachability passing fixture: the phase-written counter is atomic;
// the per-thread table is indexed by thread id at every access
// (thread-partitioned by construction).
#include <atomic>
#include <cstdint>
#include <vector>

namespace fixture {

class Accumulator {
 public:
  void bump(std::uint32_t tid) {
    total_.fetch_add(1);
    locals_[tid] += 1;
  }

 private:
  std::atomic<std::uint64_t> total_{0};
  std::vector<std::uint64_t> locals_;
};

void count_phase(ThreadPool& pool, Accumulator& acc) {
  pool.run_spmd([&](std::uint32_t tid) { acc.bump(tid); });
}

}  // namespace fixture
