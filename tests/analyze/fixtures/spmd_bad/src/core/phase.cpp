// SPMD-reachability fixture: `total_` is written by a method reachable
// from a run_spmd parallel-phase body, with no protection story.
#include <cstdint>

namespace fixture {

class Accumulator {
 public:
  void bump() { ++total_; }

 private:
  std::uint64_t total_ = 0;
};

void count_phase(ThreadPool& pool, Accumulator& acc) {
  pool.run_spmd([&](std::uint32_t tid) {
    (void)tid;
    acc.bump();
  });
}

}  // namespace fixture
