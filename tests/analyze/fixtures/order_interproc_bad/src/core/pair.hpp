// interprocedural fixture: holder() takes a_ and calls grab_b(), which
// takes b_ — the a_ -> b_ edge exists only through the call graph. The
// empty baseline forces the edge to be reported, proving propagation.
#pragma once

namespace fixture {

class Pair {
 public:
  void holder() {
    SpinLockGuard ga(a_);
    grab_b();
  }

  void grab_b() {
    SpinLockGuard gb(b_);
  }

 private:
  SpinLock a_;
  SpinLock b_;
};

}  // namespace fixture
