// lock-order passing fixture: a_ and b_ nest in one direction only, and
// the baseline records that audited edge.
#pragma once

#include <cstdint>

namespace fixture {

class Pair {
 public:
  void both() {
    SpinLockGuard ga(a_);
    SpinLockGuard gb(b_);
  }

  void only_a() { SpinLockGuard ga(a_); }

 private:
  SpinLock a_;
  SpinLock b_;
};

}  // namespace fixture
