// classify passing fixture: every field of the lock-owning class has a
// protection story — annotation, atomic, const, or a justified marker —
// and every access of the guarded field holds (or REQUIRES) its lock.
#pragma once

#include <cstdint>

namespace fixture {

class Counter {
 public:
  void bump() {
    SpinLockGuard g(mu_);
    ++value_;
  }

  std::uint64_t read_locked() const REQUIRES(mu_) { return value_; }

  std::uint64_t snapshot() const {
    SpinLockGuard g(mu_);
    return read_locked();
  }

 private:
  mutable SpinLock mu_;
  std::uint64_t value_ GUARDED_BY(mu_) = 0;
  std::atomic<std::uint64_t> generation_{0};
  const std::uint32_t capacity_ = 16;
  // analyze-ok: written once before the counter is shared.
  std::uint32_t owner_tid_ = 0;
};

}  // namespace fixture
