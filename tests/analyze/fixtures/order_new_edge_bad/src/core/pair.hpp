// baseline-gate violating fixture: the a_ -> b_ nesting is real and
// acyclic, but the checked-in baseline does not record it — the gate must
// demand an audit (--update-baseline), not silently accept the edge.
#pragma once

namespace fixture {

class Pair {
 public:
  void both() {
    SpinLockGuard ga(a_);
    SpinLockGuard gb(b_);
  }

 private:
  SpinLock a_;
  SpinLock b_;
};

}  // namespace fixture
