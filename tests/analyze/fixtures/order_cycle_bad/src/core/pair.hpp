// lock-order violating fixture: fwd() nests a_ -> b_ while rev() nests
// b_ -> a_ — a static ABBA cycle. Both edges are in the baseline, so the
// failure must come from the cycle check, not the baseline diff.
#pragma once

namespace fixture {

class Pair {
 public:
  void fwd() {
    SpinLockGuard ga(a_);
    SpinLockGuard gb(b_);
  }

  void rev() {
    SpinLockGuard gb(b_);
    SpinLockGuard ga(a_);
  }

 private:
  SpinLock a_;
  SpinLock b_;
};

}  // namespace fixture
