// Phase-effects passing fixture: the frozen tree is constructed inside
// the freeze scope (its structure writes land in the constructor and its
// member-init list), the count scope only bumps the counter plane — both
// within the frozen-tree contract — and the one genuine cross-phase
// hazard (reduce publishes Accumulator::total_, select reads it) carries
// a written justification in the checked-in baseline.
#include <cstdint>
#include <optional>

namespace fixture {

class FrozenTree {
 public:
  explicit FrozenTree(int n) : num_nodes_(n) { counts_ = nullptr; }
  void count_range(int s) { ++counts_[s]; }
  int nodes() const { return num_nodes_; }

 private:
  int num_nodes_ = 0;
  std::uint32_t* counts_ = nullptr;
};

class Accumulator {
 public:
  void publish(int total) { total_ = total; }
  int read_total() const { return total_; }

 private:
  int total_ = 0;
};

void iteration(Accumulator& acc) {
  std::optional<FrozenTree> frozen;
  {
    SMPMINE_TRACE_SPAN("freeze");
    frozen.emplace(4);
  }
  {
    SMPMINE_PERF_PHASE("count");
    frozen->count_range(frozen->nodes());
  }
  {
    SMPMINE_TRACE_SPAN("reduce");
    acc.publish(3);
  }
  {
    SMPMINE_TRACE_SPAN("select");
    (void)acc.read_total();
  }
}

}  // namespace fixture
