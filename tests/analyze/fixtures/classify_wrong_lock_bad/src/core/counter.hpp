// wrong-lock fixture: `value_` is GUARDED_BY(mu_) but `read` accesses it
// holding nothing and declaring no REQUIRES(mu_).
#pragma once

#include <cstdint>

namespace fixture {

class Counter {
 public:
  void bump() {
    SpinLockGuard g(mu_);
    ++value_;
  }

  std::uint64_t read() const { return value_; }

 private:
  mutable SpinLock mu_;
  std::uint64_t value_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
