// inference fixture: `value_` is unannotated (a finding) but every access
// sits under mu_, so the finding must carry a suggested GUARDED_BY patch.
#pragma once

#include <cstdint>

namespace fixture {

class Counter {
 public:
  void bump() {
    SpinLockGuard g(mu_);
    ++value_;
  }

  std::uint64_t snapshot() const {
    SpinLockGuard g(mu_);
    return value_;
  }

 private:
  mutable SpinLock mu_;
  std::uint64_t value_ = 0;
};

}  // namespace fixture
