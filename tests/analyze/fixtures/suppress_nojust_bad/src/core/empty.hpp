// Fixture for the suppression-justification gate; the source tree is
// irrelevant — the unjustified directive in suppressions.txt must make the
// analyzer exit 2 before any check runs.
#pragma once
