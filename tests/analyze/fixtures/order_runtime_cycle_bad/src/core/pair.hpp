// runtime-merge violating fixture: the static graph only ever sees
// a_ -> b_, but a checked-build run dumped the reverse nesting — the
// merged graph has an ABBA cycle no single source shows.
#pragma once

namespace fixture {

class Pair {
 public:
  void fwd() {
    SpinLockGuard ga(a_);
    SpinLockGuard gb(b_);
  }

 private:
  SpinLock a_;
  SpinLock b_;
};

}  // namespace fixture
