#include "hashtree/hash_policy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace smpmine {
namespace {

TEST(HashPolicy, InterleavedIsMod) {
  const HashPolicy p(HashScheme::Interleaved, 4);
  for (item_t i = 0; i < 32; ++i) EXPECT_EQ(p.bucket(i), i % 4);
}

TEST(HashPolicy, BitonicClosedForm) {
  // H=3: pattern 0,1,2,2,1,0 repeating with period 6.
  const HashPolicy p(HashScheme::Bitonic, 3);
  const std::vector<std::uint32_t> expect{0, 1, 2, 2, 1, 0};
  for (item_t i = 0; i < 60; ++i) {
    EXPECT_EQ(p.bucket(i), expect[i % 6]) << i;
  }
}

TEST(HashPolicy, BitonicBucketInRange) {
  for (std::uint32_t h : {1u, 2u, 5u, 16u, 127u}) {
    const HashPolicy p(HashScheme::Bitonic, h);
    for (item_t i = 0; i < 1000; ++i) EXPECT_LT(p.bucket(i), h);
  }
}

TEST(HashPolicy, IndirectionMatchesPaperTable1) {
  // F1 = 10 frequent items, H=3 => hash values 0,1,2,2,1,0,0,1,2,2
  // (paper Table 1, from the bitonic partitioning A0={0,5,6}, A1={1,4,7},
  // A2={2,3,8,9}).
  std::vector<item_t> f1{10, 11, 12, 13, 14, 15, 16, 17, 18, 19};
  const HashPolicy p(3, f1, 20);
  const std::vector<std::uint32_t> expect{0, 1, 2, 2, 1, 0, 0, 1, 2, 2};
  for (std::size_t label = 0; label < 10; ++label) {
    EXPECT_EQ(p.bucket(f1[label]), expect[label]) << "label " << label;
  }
}

TEST(HashPolicy, IndirectionInfrequentFallsBackToMod) {
  std::vector<item_t> f1{5, 7};
  const HashPolicy p(3, f1, 10);
  // Items 0..9 outside {5,7} use mod 3.
  EXPECT_EQ(p.bucket(4), 4u % 3);
  EXPECT_EQ(p.bucket(9), 0u);
  // Items beyond the universe also fall back.
  EXPECT_EQ(p.bucket(100), 100u % 3);
}

TEST(HashPolicy, IndirectionBalancesLabelWorkloads) {
  // With n divisible by 2H the bitonic label partition is perfect: each
  // bucket holds n/H labels.
  std::vector<item_t> f1(24);
  for (item_t i = 0; i < 24; ++i) f1[i] = i;
  const HashPolicy p(4, f1, 24);
  std::vector<int> sizes(4, 0);
  for (item_t i = 0; i < 24; ++i) ++sizes[p.bucket(i)];
  for (const int s : sizes) EXPECT_EQ(s, 6);
}

TEST(HashPolicy, IndirectionRequiresF1Constructor) {
  EXPECT_THROW(HashPolicy(HashScheme::Indirection, 4), std::invalid_argument);
}

TEST(HashPolicy, ZeroFanoutRejected) {
  EXPECT_THROW(HashPolicy(HashScheme::Interleaved, 0), std::invalid_argument);
}

TEST(AdaptiveFanout, MatchesClosedForm) {
  // H = ceil((pairs/T)^(1/k)), evaluated away from exact integer powers to
  // dodge floating-point rounding of pow().
  EXPECT_EQ(adaptive_fanout(1010.0, 2, 10), 11u);  // sqrt(101) = 10.05
  EXPECT_EQ(adaptive_fanout(950.0, 2, 10), 10u);   // sqrt(95)  = 9.75
  EXPECT_EQ(adaptive_fanout(7900.0, 3, 1), 20u);   // cbrt(7900) = 19.92
}

TEST(AdaptiveFanout, Clamps) {
  EXPECT_EQ(adaptive_fanout(1.0, 2, 100, 4, 64), 4u);    // floor
  EXPECT_EQ(adaptive_fanout(1e12, 2, 1, 2, 64), 64u);    // ceiling
  EXPECT_EQ(adaptive_fanout(0.0, 2, 8, 3, 64), 3u);      // degenerate
}

TEST(AdaptiveFanout, GrowsWithPairsShrinksWithThreshold) {
  const std::uint32_t a = adaptive_fanout(1e4, 2, 8);
  const std::uint32_t b = adaptive_fanout(1e6, 2, 8);
  const std::uint32_t c = adaptive_fanout(1e6, 2, 64);
  EXPECT_LT(a, b);
  EXPECT_LT(c, b);
}

TEST(HashPolicy, SchemeNames) {
  EXPECT_STREQ(to_string(HashScheme::Interleaved), "interleaved");
  EXPECT_STREQ(to_string(HashScheme::Bitonic), "bitonic");
  EXPECT_STREQ(to_string(HashScheme::Indirection), "indirection");
}

}  // namespace
}  // namespace smpmine
