#include "data/db_partition.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace smpmine {
namespace {

Database uniform_db(std::size_t n, std::size_t len) {
  Database db;
  std::vector<item_t> txn(len);
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t i = 0; i < len; ++i) {
      txn[i] = static_cast<item_t>(i);
    }
    db.add_transaction(txn);
  }
  return db;
}

/// First half tiny transactions, second half huge ones — the skew the
/// balanced heuristic exists for.
Database skewed_db() {
  Database db;
  for (int t = 0; t < 50; ++t) {
    db.add_transaction(std::vector<item_t>{1, 2});
  }
  for (int t = 0; t < 50; ++t) {
    std::vector<item_t> big(20);
    for (item_t i = 0; i < 20; ++i) big[i] = i;
    db.add_transaction(big);
  }
  return db;
}

TEST(DbPartition, BlockTilesExactly) {
  const Database db = uniform_db(103, 5);
  const DbRanges r = partition_database(db, 4, DbPartition::Block);
  EXPECT_EQ(r.threads(), 4u);
  EXPECT_EQ(r.begin(0), 0u);
  EXPECT_EQ(r.end(3), 103u);
  for (std::uint32_t t = 0; t + 1 < 4; ++t) {
    EXPECT_EQ(r.end(t), r.begin(t + 1));
  }
}

TEST(DbPartition, BlockEqualCounts) {
  const Database db = uniform_db(100, 5);
  const DbRanges r = partition_database(db, 4, DbPartition::Block);
  for (std::uint32_t t = 0; t < 4; ++t) {
    EXPECT_EQ(r.end(t) - r.begin(t), 25u);
  }
}

TEST(DbPartition, SingleThreadGetsAll) {
  const Database db = uniform_db(10, 3);
  for (const auto how : {DbPartition::Block, DbPartition::Balanced}) {
    const DbRanges r = partition_database(db, 1, how);
    EXPECT_EQ(r.begin(0), 0u);
    EXPECT_EQ(r.end(0), 10u);
  }
}

TEST(DbPartition, MoreThreadsThanTransactions) {
  const Database db = uniform_db(3, 2);
  const DbRanges r = partition_database(db, 8, DbPartition::Block);
  std::uint64_t covered = 0;
  for (std::uint32_t t = 0; t < 8; ++t) covered += r.end(t) - r.begin(t);
  EXPECT_EQ(covered, 3u);
}

TEST(DbPartition, BalancedTilesExactly) {
  const Database db = skewed_db();
  const DbRanges r = partition_database(db, 4, DbPartition::Balanced);
  EXPECT_EQ(r.begin(0), 0u);
  EXPECT_EQ(r.end(3), db.size());
  for (std::uint32_t t = 0; t + 1 < 4; ++t) {
    EXPECT_EQ(r.end(t), r.begin(t + 1));
    EXPECT_LE(r.begin(t), r.end(t));
  }
}

TEST(DbPartition, BalancedBeatsBlockOnSkew) {
  const Database db = skewed_db();
  const double block_imb =
      ranges_imbalance(db, partition_database(db, 2, DbPartition::Block));
  const double bal_imb =
      ranges_imbalance(db, partition_database(db, 2, DbPartition::Balanced));
  // Block split puts all the heavy transactions in thread 1.
  EXPECT_GT(block_imb, 1.5);
  EXPECT_LT(bal_imb, block_imb);
}

TEST(DbPartition, UniformDbBothSchemesBalanced) {
  const Database db = uniform_db(100, 8);
  for (const auto how : {DbPartition::Block, DbPartition::Balanced}) {
    const double imb =
        ranges_imbalance(db, partition_database(db, 4, how));
    EXPECT_NEAR(imb, 1.0, 0.01) << to_string(how);
  }
}

TEST(TransactionWorkload, GrowsPolynomially) {
  // O(min(l^k, l^(l-k))) per the paper: longer transactions cost far more.
  const double w5 = transaction_workload(5, 6);
  const double w10 = transaction_workload(10, 6);
  const double w20 = transaction_workload(20, 6);
  EXPECT_GT(w10, 2.0 * w5);
  EXPECT_GT(w20, 4.0 * w10);
  EXPECT_DOUBLE_EQ(transaction_workload(0, 6), 0.0);
}

TEST(TransactionWorkload, ShortTransactionCountsOnlyFeasibleK) {
  // len=2, horizon=6: only C(2,1)+C(2,2) contribute.
  EXPECT_DOUBLE_EQ(transaction_workload(2, 6), (2.0 + 1.0) / 6.0);
}

TEST(TransactionWorkload, CapDoesNotOverflow) {
  const double w = transaction_workload(10000, 6);
  EXPECT_TRUE(std::isfinite(w));
  EXPECT_GT(w, 0.0);
}

}  // namespace
}  // namespace smpmine
