#include "hashtree/hash_tree.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "data/quest_gen.hpp"
#include "itemset/itemset.hpp"

namespace smpmine {
namespace {

Database small_db() {
  QuestParams p;
  p.num_transactions = 300;
  p.avg_transaction_len = 8.0;
  p.avg_pattern_len = 3.0;
  p.num_patterns = 30;
  p.num_items = 30;
  p.seed = 99;
  return generate_quest(p);
}

/// Reference supports computed by direct containment over the database.
std::map<std::vector<item_t>, count_t> reference_counts(
    const Database& db, const std::vector<std::vector<item_t>>& candidates) {
  std::map<std::vector<item_t>, count_t> out;
  for (const auto& cand : candidates) out[cand] = 0;
  for (std::size_t t = 0; t < db.size(); ++t) {
    const auto txn = db.transaction(t);
    for (const auto& cand : candidates) {
      if (is_subset_sorted(cand, txn)) ++out[cand];
    }
  }
  return out;
}

std::vector<std::vector<item_t>> make_candidates(item_t universe,
                                                 std::size_t k) {
  std::vector<item_t> base(universe);
  for (item_t i = 0; i < universe; ++i) base[i] = i;
  return k_subsets(base, k);
}

struct CountCase {
  SubsetCheck check;
  CounterMode counter;
  HashScheme scheme;
  std::uint32_t fanout;
  std::uint32_t threshold;
};

class TreeCountTest : public ::testing::TestWithParam<CountCase> {};

TEST_P(TreeCountTest, CountsMatchReference) {
  const CountCase& tc = GetParam();
  const Database db = small_db();
  const std::size_t k = 3;
  const auto candidates = make_candidates(20, k);

  PlacementArenas arenas(tc.counter == CounterMode::PerThread
                             ? PlacementPolicy::LcaGpp
                             : PlacementPolicy::SPP);
  const HashPolicy policy = [&] {
    if (tc.scheme == HashScheme::Indirection) {
      std::vector<item_t> f1(20);
      for (item_t i = 0; i < 20; ++i) f1[i] = i;
      return HashPolicy(tc.fanout, f1, db.item_universe());
    }
    return HashPolicy(tc.scheme, tc.fanout);
  }();
  HashTree tree({.k = static_cast<std::uint32_t>(k),
                 .fanout = tc.fanout,
                 .leaf_threshold = tc.threshold,
                 .counter_mode = tc.counter},
                policy, arenas);
  for (const auto& c : candidates) tree.insert(c);
  if (tc.counter == CounterMode::PerThread) tree.candidate_index();

  CountContext ctx = tree.make_context(tc.check);
  for (std::size_t t = 0; t < db.size(); ++t) {
    tree.count_transaction(db.transaction(t), ctx);
  }
  if (tc.counter == CounterMode::PerThread) {
    tree.reduce_into_shared(ctx, 0, tree.num_candidates());
  }

  const auto expect = reference_counts(db, candidates);
  std::size_t verified = 0;
  tree.for_each_candidate([&](const Candidate& cand) {
    const auto view = cand.view(k);
    const std::vector<item_t> key(view.begin(), view.end());
    ASSERT_TRUE(expect.count(key));
    EXPECT_EQ(*cand.count, expect.at(key)) << format_itemset(key);
    ++verified;
  });
  EXPECT_EQ(verified, candidates.size());
}

std::string case_name(const ::testing::TestParamInfo<CountCase>& info) {
  // Built via ostringstream rather than string += to sidestep GCC 12's
  // -Wrestrict false positive in libstdc++ (PR 105329) under -Werror.
  const CountCase& tc = info.param;
  std::ostringstream os;
  switch (tc.check) {
    case SubsetCheck::LeafVisited: os << "Leaf"; break;
    case SubsetCheck::VisitedFlags: os << "Flags"; break;
    case SubsetCheck::FrameLocal: os << "Frame"; break;
  }
  switch (tc.counter) {
    case CounterMode::Atomic: os << "Atomic"; break;
    case CounterMode::Locked: os << "Locked"; break;
    case CounterMode::PerThread: os << "LCA"; break;
  }
  switch (tc.scheme) {
    case HashScheme::Interleaved: os << "Mod"; break;
    case HashScheme::Bitonic: os << "Bitonic"; break;
    case HashScheme::Indirection: os << "Indir"; break;
  }
  os << 'H' << tc.fanout << 'T' << tc.threshold;
  return os.str();
}

INSTANTIATE_TEST_SUITE_P(
    Modes, TreeCountTest,
    ::testing::Values(
        // Every subset-check strategy against every counter mode.
        CountCase{SubsetCheck::LeafVisited, CounterMode::Atomic,
                  HashScheme::Interleaved, 3, 2},
        CountCase{SubsetCheck::VisitedFlags, CounterMode::Atomic,
                  HashScheme::Interleaved, 3, 2},
        CountCase{SubsetCheck::FrameLocal, CounterMode::Atomic,
                  HashScheme::Interleaved, 3, 2},
        CountCase{SubsetCheck::LeafVisited, CounterMode::Locked,
                  HashScheme::Bitonic, 4, 3},
        CountCase{SubsetCheck::VisitedFlags, CounterMode::Locked,
                  HashScheme::Bitonic, 4, 3},
        CountCase{SubsetCheck::FrameLocal, CounterMode::Locked,
                  HashScheme::Bitonic, 4, 3},
        CountCase{SubsetCheck::LeafVisited, CounterMode::PerThread,
                  HashScheme::Indirection, 3, 2},
        CountCase{SubsetCheck::VisitedFlags, CounterMode::PerThread,
                  HashScheme::Indirection, 3, 2},
        CountCase{SubsetCheck::FrameLocal, CounterMode::PerThread,
                  HashScheme::Indirection, 3, 2},
        // Degenerate shapes.
        CountCase{SubsetCheck::FrameLocal, CounterMode::Atomic,
                  HashScheme::Interleaved, 1, 1},
        CountCase{SubsetCheck::LeafVisited, CounterMode::Atomic,
                  HashScheme::Interleaved, 16, 1},
        CountCase{SubsetCheck::FrameLocal, CounterMode::Atomic,
                  HashScheme::Bitonic, 16, 64}),
    case_name);

TEST(TreeCount, ShortTransactionsSkipped) {
  PlacementArenas arenas(PlacementPolicy::SPP);
  const HashPolicy policy(HashScheme::Interleaved, 2);
  HashTree tree({.k = 3, .fanout = 2, .leaf_threshold = 2}, policy, arenas);
  tree.insert(std::vector<item_t>{1, 2, 3});
  CountContext ctx = tree.make_context(SubsetCheck::FrameLocal);
  tree.count_transaction(std::vector<item_t>{1, 2}, ctx);  // len < k
  tree.count_transaction(std::vector<item_t>{}, ctx);
  tree.for_each_candidate(
      [&](const Candidate& cand) { EXPECT_EQ(*cand.count, 0u); });
}

TEST(TreeCount, ExactLengthTransaction) {
  PlacementArenas arenas(PlacementPolicy::SPP);
  const HashPolicy policy(HashScheme::Interleaved, 2);
  HashTree tree({.k = 3, .fanout = 2, .leaf_threshold = 2}, policy, arenas);
  tree.insert(std::vector<item_t>{1, 2, 3});
  tree.insert(std::vector<item_t>{1, 2, 4});
  CountContext ctx = tree.make_context(SubsetCheck::FrameLocal);
  tree.count_transaction(std::vector<item_t>{1, 2, 3}, ctx);
  std::map<std::vector<item_t>, count_t> got;
  tree.for_each_candidate([&](const Candidate& cand) {
    const auto view = cand.view(3);
    got[std::vector<item_t>(view.begin(), view.end())] = *cand.count;
  });
  const std::vector<item_t> abc{1, 2, 3};
  const std::vector<item_t> abd{1, 2, 4};
  EXPECT_EQ(got[abc], 1u);
  EXPECT_EQ(got[abd], 0u);
}

TEST(TreeCount, EmptyTreeTraversalIsHarmless) {
  PlacementArenas arenas(PlacementPolicy::SPP);
  const HashPolicy policy(HashScheme::Interleaved, 2);
  HashTree tree({.k = 2, .fanout = 2, .leaf_threshold = 2}, policy, arenas);
  CountContext ctx = tree.make_context(SubsetCheck::FrameLocal);
  tree.count_transaction(std::vector<item_t>{1, 2, 3}, ctx);
  EXPECT_EQ(ctx.hits, 0u);
}

TEST(TreeCount, ShortCircuitDoesLessWorkOnDuplicateBuckets) {
  // Items 0..9 with fanout 2: every transaction has many duplicate-bucket
  // item pairs, so the short-circuit strategies must visit fewer internal
  // nodes than the leaf-only baseline while producing the same hits.
  PlacementArenas arenas(PlacementPolicy::SPP);
  const HashPolicy policy(HashScheme::Interleaved, 2);
  HashTree tree({.k = 3, .fanout = 2, .leaf_threshold = 2}, policy, arenas);
  for (const auto& c : make_candidates(10, 3)) tree.insert(c);

  const std::vector<item_t> txn{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  CountContext base = tree.make_context(SubsetCheck::LeafVisited);
  tree.count_transaction(txn, base);
  CountContext flags = tree.make_context(SubsetCheck::VisitedFlags);
  tree.count_transaction(txn, flags);
  CountContext frame = tree.make_context(SubsetCheck::FrameLocal);
  tree.count_transaction(txn, frame);

  EXPECT_EQ(base.hits, flags.hits);
  EXPECT_EQ(base.hits, frame.hits);
  EXPECT_GT(base.internal_visits, flags.internal_visits);
  // The two short-circuit implementations prune identically.
  EXPECT_EQ(flags.internal_visits, frame.internal_visits);
  EXPECT_EQ(flags.leaf_visits, frame.leaf_visits);
}

}  // namespace
}  // namespace smpmine
