#include "hashtree/hash_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "itemset/itemset.hpp"

namespace smpmine {
namespace {

/// All size-k combinations over [0, universe).
std::vector<std::vector<item_t>> all_combos(item_t universe, std::size_t k) {
  std::vector<item_t> base(universe);
  for (item_t i = 0; i < universe; ++i) base[i] = i;
  return k_subsets(base, k);
}

std::set<std::vector<item_t>> tree_contents(const HashTree& tree) {
  std::set<std::vector<item_t>> out;
  tree.for_each_candidate([&](const Candidate& cand) {
    const auto view = cand.view(tree.k());
    out.insert(std::vector<item_t>(view.begin(), view.end()));
  });
  return out;
}

TEST(HashTreeBuild, InsertAndEnumerate) {
  PlacementArenas arenas(PlacementPolicy::SPP);
  const HashPolicy policy(HashScheme::Interleaved, 2);
  HashTree tree({.k = 3, .fanout = 2, .leaf_threshold = 2}, policy, arenas);

  const auto combos = all_combos(6, 3);
  for (const auto& c : combos) tree.insert(c);

  EXPECT_EQ(tree.num_candidates(), combos.size());
  const auto contents = tree_contents(tree);
  EXPECT_EQ(contents.size(), combos.size());
  for (const auto& c : combos) EXPECT_TRUE(contents.count(c)) << c[0];
}

TEST(HashTreeBuild, DenseCandidateIds) {
  PlacementArenas arenas(PlacementPolicy::SPP);
  const HashPolicy policy(HashScheme::Interleaved, 3);
  HashTree tree({.k = 2, .fanout = 3, .leaf_threshold = 4}, policy, arenas);
  for (const auto& c : all_combos(8, 2)) tree.insert(c);
  std::set<std::uint32_t> ids;
  tree.for_each_candidate([&](const Candidate& c) { ids.insert(c.id); });
  EXPECT_EQ(ids.size(), tree.num_candidates());
  EXPECT_EQ(*ids.begin(), 0u);
  EXPECT_EQ(*ids.rbegin(), tree.num_candidates() - 1);
}

TEST(HashTreeBuild, LeafConversionKeepsThresholdWhereConvertible) {
  PlacementArenas arenas(PlacementPolicy::SPP);
  const HashPolicy policy(HashScheme::Interleaved, 4);
  const std::uint32_t threshold = 3;
  HashTree tree({.k = 2, .fanout = 4, .leaf_threshold = threshold}, policy,
                arenas);
  for (const auto& c : all_combos(12, 2)) tree.insert(c);

  const TreeStats stats = tree.stats();
  EXPECT_GT(stats.internal_nodes, 0u);  // conversions happened
  EXPECT_LE(stats.max_depth, 2u);       // never deeper than k
  EXPECT_EQ(stats.candidates, 66u);
}

TEST(HashTreeBuild, DepthKLeavesMayExceedThreshold) {
  // All candidates share every bucket: with fanout 1 the tree degenerates
  // to a depth-k chain whose final leaf holds everything.
  PlacementArenas arenas(PlacementPolicy::SPP);
  const HashPolicy policy(HashScheme::Interleaved, 1);
  HashTree tree({.k = 2, .fanout = 1, .leaf_threshold = 2}, policy, arenas);
  const auto combos = all_combos(6, 2);
  for (const auto& c : combos) tree.insert(c);
  const TreeStats stats = tree.stats();
  EXPECT_EQ(stats.max_depth, 2u);
  EXPECT_EQ(stats.candidates, combos.size());
  EXPECT_DOUBLE_EQ(stats.max_leaf_occupancy,
                   static_cast<double>(combos.size()));
}

TEST(HashTreeBuild, StatsCountNodesConsistently) {
  PlacementArenas arenas(PlacementPolicy::SPP);
  const HashPolicy policy(HashScheme::Bitonic, 3);
  HashTree tree({.k = 3, .fanout = 3, .leaf_threshold = 2}, policy, arenas);
  for (const auto& c : all_combos(9, 3)) tree.insert(c);
  const TreeStats stats = tree.stats();
  EXPECT_EQ(stats.nodes, stats.internal_nodes + stats.leaves);
  EXPECT_EQ(stats.nodes, tree.num_nodes());
  EXPECT_GE(stats.leaves, stats.occupied_leaves);
  EXPECT_GT(stats.bytes_used, 0u);
  EXPECT_GE(stats.max_leaf_occupancy, stats.mean_leaf_occupancy);
}

TEST(HashTreeBuild, CandidateIndexMapsIds) {
  PlacementArenas arenas(PlacementPolicy::SPP);
  const HashPolicy policy(HashScheme::Interleaved, 3);
  HashTree tree({.k = 2, .fanout = 3, .leaf_threshold = 4}, policy, arenas);
  for (const auto& c : all_combos(10, 2)) tree.insert(c);
  const auto& index = tree.candidate_index();
  ASSERT_EQ(index.size(), tree.num_candidates());
  for (std::uint32_t id = 0; id < index.size(); ++id) {
    ASSERT_NE(index[id], nullptr);
    EXPECT_EQ(index[id]->id, id);
  }
}

class ParallelBuildTest : public ::testing::TestWithParam<PlacementPolicy> {};

TEST_P(ParallelBuildTest, ConcurrentInsertsEqualSequential) {
  const auto combos = all_combos(14, 3);  // 364 candidates, forces splits

  PlacementArenas seq_arenas(GetParam());
  const HashPolicy policy(HashScheme::Bitonic, 3);
  HashTree seq_tree({.k = 3, .fanout = 3, .leaf_threshold = 2}, policy,
                    seq_arenas);
  for (const auto& c : combos) seq_tree.insert(c);

  PlacementArenas par_arenas(GetParam());
  HashTree par_tree({.k = 3, .fanout = 3, .leaf_threshold = 2}, policy,
                    par_arenas);
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = t; i < combos.size(); i += kThreads) {
        par_tree.insert(combos[i]);
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(par_tree.num_candidates(), seq_tree.num_candidates());
  EXPECT_EQ(tree_contents(par_tree), tree_contents(seq_tree));
}

INSTANTIATE_TEST_SUITE_P(Policies, ParallelBuildTest,
                         ::testing::Values(PlacementPolicy::Malloc,
                                           PlacementPolicy::SPP,
                                           PlacementPolicy::LPP,
                                           PlacementPolicy::LSPP,
                                           PlacementPolicy::LLPP),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           name.erase(
                               std::remove(name.begin(), name.end(), '-'),
                               name.end());
                           return name;
                         });

}  // namespace
}  // namespace smpmine
