// Perf counter sessions and phase attribution. The software backend is
// deterministic on every machine, so those tests always run; the hardware
// path depends on perf_event_open being usable in this kernel/container and
// skips (not fails) when the probe says no.
#include "obs/perf/perf_counters.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace smpmine::obs::perf {
namespace {

// Enough work that CLOCK_THREAD_CPUTIME_ID visibly advances.
std::uint64_t burn_cpu() {
  volatile std::uint64_t acc = 1;
  for (int i = 0; i < 2'000'000; ++i) acc = acc * 2862933555777941757ULL + 3;
  return acc;
}

TEST(PerfBackend, StringRoundTrip) {
  EXPECT_STREQ(to_string(PerfBackend::Off), "off");
  EXPECT_STREQ(to_string(PerfBackend::Hardware), "hardware");
  EXPECT_STREQ(to_string(PerfBackend::Software), "software");
  EXPECT_EQ(backend_from_string("off"), PerfBackend::Off);
  EXPECT_EQ(backend_from_string("auto"), PerfBackend::Auto);
  EXPECT_EQ(backend_from_string("hw"), PerfBackend::Hardware);
  EXPECT_EQ(backend_from_string("hardware"), PerfBackend::Hardware);
  EXPECT_EQ(backend_from_string("sw"), PerfBackend::Software);
  EXPECT_EQ(backend_from_string("software"), PerfBackend::Software);
  EXPECT_EQ(backend_from_string("bogus"), std::nullopt);
  EXPECT_EQ(backend_from_string(""), std::nullopt);
}

TEST(PerfBackend, OffDisablesSampling) {
  init(PerfBackend::Off);
  EXPECT_EQ(active_backend(), PerfBackend::Off);
  PerfCounterSet out;
  EXPECT_FALSE(sample_current_thread(out));

  PhasePerfRegistry::instance().reset();
  {
    SMPMINE_PERF_PHASE("count");
    burn_cpu();
  }
  EXPECT_TRUE(PhasePerfRegistry::instance().snapshot().empty());
}

TEST(PerfBackend, SoftwareBackendFillsRusageBlock) {
  ASSERT_EQ(init(PerfBackend::Software), PerfBackend::Software);
  PerfCounterSet a;
  ASSERT_TRUE(sample_current_thread(a));
  burn_cpu();
  PerfCounterSet b;
  ASSERT_TRUE(sample_current_thread(b));
  const PerfCounterSet d = b.delta_since(a);
  EXPECT_GT(d.task_clock_ns, 0u);
  // The hardware block stays zero under the software backend...
  EXPECT_EQ(d.cycles, 0u);
  EXPECT_EQ(d.instructions, 0u);
  // ...so the derived rates degrade to 0 instead of dividing by zero.
  EXPECT_DOUBLE_EQ(d.ipc(), 0.0);
  EXPECT_DOUBLE_EQ(d.llc_miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(d.stall_fraction(), 0.0);
  EXPECT_GT(b.max_rss_kb, 0u);
}

TEST(PerfBackend, DeltaSubtractionSaturates) {
  PerfCounterSet older;
  older.task_clock_ns = 100;
  PerfCounterSet newer;
  newer.task_clock_ns = 40;  // non-monotonic reading (multiplex scaling)
  const PerfCounterSet d = newer.delta_since(older);
  EXPECT_EQ(d.task_clock_ns, 0u);  // saturates instead of wrapping to 2^64
}

TEST(PerfBackend, AccumulateSumsAndKeepsRssMax) {
  PerfCounterSet total;
  PerfCounterSet a;
  a.task_clock_ns = 10;
  a.max_rss_kb = 500;
  a.samples = 1;
  PerfCounterSet b;
  b.task_clock_ns = 32;
  b.max_rss_kb = 400;
  b.samples = 1;
  total += a;
  total += b;
  EXPECT_EQ(total.task_clock_ns, 42u);
  EXPECT_EQ(total.samples, 2u);
  EXPECT_EQ(total.max_rss_kb, 500u);  // high-water mark, not a sum
}

TEST(PerfScope, AttributesWorkToPhase) {
  ASSERT_EQ(init(PerfBackend::Software), PerfBackend::Software);
  PhasePerfRegistry::instance().reset();
  {
    SMPMINE_PERF_PHASE("count");
    burn_cpu();
  }
  {
    SMPMINE_PERF_PHASE("count");
    burn_cpu();
  }
  {
    SMPMINE_PERF_PHASE("candgen");
    burn_cpu();
  }
  const PhasePerfSnapshot snap = PhasePerfRegistry::instance().snapshot();
  ASSERT_EQ(snap.size(), 2u);
  // Snapshot order is name-sorted (map iteration).
  EXPECT_EQ(snap[0].first, "candgen");
  EXPECT_EQ(snap[1].first, "count");
  EXPECT_EQ(snap[0].second.samples, 1u);
  EXPECT_EQ(snap[1].second.samples, 2u);
  EXPECT_GT(snap[1].second.task_clock_ns, 0u);
}

TEST(PerfScope, SnapshotDeltaOmitsQuietPhases) {
  ASSERT_EQ(init(PerfBackend::Software), PerfBackend::Software);
  PhasePerfRegistry::instance().reset();
  {
    SMPMINE_PERF_PHASE("candgen");
    burn_cpu();
  }
  const PhasePerfSnapshot before = PhasePerfRegistry::instance().snapshot();
  {
    SMPMINE_PERF_PHASE("count");
    burn_cpu();
  }
  const PhasePerfSnapshot delta = delta_since(before);
  // candgen did not run between the snapshots, so only count appears.
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta[0].first, "count");
  EXPECT_EQ(delta[0].second.samples, 1u);
}

TEST(PerfHardware, GroupCountsWhenAvailable) {
  if (!hardware_available()) {
    GTEST_SKIP() << "perf_event_open unusable here (container/paranoid "
                    "setting); hardware backend untestable";
  }
  ASSERT_EQ(init(PerfBackend::Hardware), PerfBackend::Hardware);
  PerfCounterSet a;
  ASSERT_TRUE(sample_current_thread(a));
  burn_cpu();
  PerfCounterSet b;
  ASSERT_TRUE(sample_current_thread(b));
  const PerfCounterSet d = b.delta_since(a);
  EXPECT_GT(d.cycles, 0u);
  EXPECT_GT(d.instructions, 0u);
  EXPECT_GT(d.ipc(), 0.0);
  EXPECT_GT(d.task_clock_ns, 0u);
}

TEST(PerfHardware, ExplicitRequestDegradesToSoftware) {
  // Hardware request on a machine without the PMU must still profile: the
  // return value reports the downgrade, sampling keeps working.
  const PerfBackend active = init(PerfBackend::Hardware);
  if (hardware_available()) {
    EXPECT_EQ(active, PerfBackend::Hardware);
  } else {
    EXPECT_EQ(active, PerfBackend::Software);
  }
  EXPECT_EQ(active_backend(), active);
  PerfCounterSet out;
  EXPECT_TRUE(sample_current_thread(out));
}

}  // namespace
}  // namespace smpmine::obs::perf
