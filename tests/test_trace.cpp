// obs::Tracer unit tests: span/instant round-trips through the macros,
// concurrent emission onto per-thread tracks, drop-on-full accounting, the
// runtime enable gate, and Chrome trace-event export validity.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_writer.hpp"
#include "obs/trace.hpp"

namespace smpmine::obs {
namespace {

// Each case starts from an empty, enabled tracer and leaves the process
// gate off. reset() is safe here: no other thread emits between cases.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kTraceCompiled) GTEST_SKIP() << "built with SMPMINE_TRACING=OFF";
    Tracer::instance().reset();
    Tracer::instance().set_capacity(1u << 12);
    Tracer::instance().set_enabled(true);
  }
  void TearDown() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().reset();
  }

  struct Collected {
    std::uint32_t track;
    std::string thread_name;
    TraceEvent ev;
  };

  static std::vector<Collected> collect() {
    std::vector<Collected> out;
    Tracer::instance().for_each_event(
        [&out](std::uint32_t track, std::string_view name,
               const TraceEvent& ev) {
          out.push_back({track, std::string(name), ev});
        });
    return out;
  }
};

TEST_F(TraceTest, SpanAndInstantRoundTrip) {
  {
    SMPMINE_TRACE_SPAN_ARG("unit.span", "k", 3);
    SMPMINE_TRACE_INSTANT("unit.instant");
  }
  const auto events = collect();
  ASSERT_EQ(events.size(), 2u);
  // Emission order: the instant fires inside the span, the span on scope
  // exit.
  EXPECT_STREQ(events[0].ev.name, "unit.instant");
  EXPECT_TRUE(events[0].ev.instant);
  EXPECT_EQ(events[0].ev.dur_ns, 0u);
  EXPECT_STREQ(events[1].ev.name, "unit.span");
  EXPECT_FALSE(events[1].ev.instant);
  EXPECT_STREQ(events[1].ev.arg_name, "k");
  EXPECT_EQ(events[1].ev.arg_value, 3u);
  // The span contains the instant in time.
  EXPECT_LE(events[1].ev.start_ns, events[0].ev.start_ns);
  EXPECT_GE(events[1].ev.start_ns + events[1].ev.dur_ns,
            events[0].ev.start_ns);
}

TEST_F(TraceTest, PhaseEndIsIdempotent) {
  SMPMINE_TRACE_PHASE(span, "unit.phase", "k", 2);
  SMPMINE_TRACE_PHASE_END(span);
  SMPMINE_TRACE_PHASE_END(span);  // second end must not re-emit
  const auto events = collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].ev.name, "unit.phase");
}

TEST_F(TraceTest, ConcurrentEmittersGetDisjointOrderedTracks) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      set_current_thread_name("emitter " + std::to_string(t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        SMPMINE_TRACE_SPAN("unit.burst");
      }
    });
  }
  for (auto& th : threads) th.join();

  std::map<std::uint32_t, std::vector<TraceEvent>> by_track;
  std::map<std::uint32_t, std::string> names;
  for (const auto& c : collect()) {
    by_track[c.track].push_back(c.ev);
    names[c.track] = c.thread_name;
  }
  ASSERT_EQ(by_track.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [track, events] : by_track) {
    EXPECT_EQ(events.size(), static_cast<std::size_t>(kSpansPerThread));
    EXPECT_TRUE(names[track].rfind("emitter ", 0) == 0) << names[track];
    // Sequential same-scope spans: start timestamps are monotone within a
    // track (each span ends before the next begins).
    for (std::size_t i = 1; i < events.size(); ++i) {
      EXPECT_GE(events[i].start_ns,
                events[i - 1].start_ns + events[i - 1].dur_ns);
    }
  }
  EXPECT_EQ(Tracer::instance().dropped_total(), 0u);
}

TEST_F(TraceTest, FullBufferDropsAndCounts) {
  constexpr std::uint32_t kCapacity = 16;
  constexpr std::uint32_t kEmitted = 100;
  Tracer::instance().reset();
  Tracer::instance().set_capacity(kCapacity);
  const std::uint64_t dropped_metric_before =
      metric::trace_dropped_events().value();
  for (std::uint32_t i = 0; i < kEmitted; ++i) {
    SMPMINE_TRACE_INSTANT("unit.flood");
  }
  EXPECT_EQ(collect().size(), kCapacity);
  EXPECT_EQ(Tracer::instance().dropped_total(), kEmitted - kCapacity);
  EXPECT_EQ(metric::trace_dropped_events().value() - dropped_metric_before,
            kEmitted - kCapacity);
}

TEST_F(TraceTest, DisabledEmitsNothing) {
  Tracer::instance().set_enabled(false);
  SMPMINE_TRACE_SPAN("unit.off");
  SMPMINE_TRACE_INSTANT("unit.off");
  EXPECT_TRUE(collect().empty());
}

TEST_F(TraceTest, ResetDiscardsAndReregisters) {
  SMPMINE_TRACE_INSTANT("unit.before");
  Tracer::instance().reset();
  SMPMINE_TRACE_INSTANT("unit.after");
  const auto events = collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].ev.name, "unit.after");
}

TEST_F(TraceTest, ChromeTraceExportIsValidJson) {
  set_current_thread_name("main \"quoted\"");  // escaping through export
  {
    SMPMINE_TRACE_SPAN_ARG("unit.export", "k", 9);
    SMPMINE_TRACE_INSTANT_ARG("unit.mark", "depth", 2);
  }
  std::ostringstream os;
  Tracer::instance().write_chrome_trace(os);
  const std::string trace = os.str();
  EXPECT_TRUE(json_valid(trace)) << trace;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"unit.export\""), std::string::npos);
  EXPECT_NE(trace.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(trace.find("main \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
}

TEST_F(TraceTest, ChromeTraceExportsDropCountsPerTrackAndTotal) {
  constexpr std::uint32_t kCapacity = 16;
  constexpr std::uint32_t kEmitted = 100;
  Tracer::instance().reset();
  Tracer::instance().set_capacity(kCapacity);
  set_current_thread_name("drop track");
  for (std::uint32_t i = 0; i < kEmitted; ++i) {
    SMPMINE_TRACE_INSTANT("unit.flood");
  }
  std::ostringstream os;
  Tracer::instance().write_chrome_trace(os);
  const std::string trace = os.str();
  EXPECT_TRUE(json_valid(trace)) << trace;
  // Per-track truncation marker: an instant carrying this track's count.
  EXPECT_NE(trace.find("\"name\":\"trace.dropped\""), std::string::npos);
  const std::string dropped =
      std::to_string(kEmitted - kCapacity);
  EXPECT_NE(trace.find("\"dropped\":" + dropped), std::string::npos)
      << trace;
  // Process-level sum so readers need not walk the instants.
  EXPECT_NE(trace.find("\"trace_dropped_total\":" + dropped),
            std::string::npos);
}

TEST_F(TraceTest, ChromeTraceDropMarkersPresentEvenWithoutDrops) {
  // A zero count must still be exported — absence would be ambiguous.
  SMPMINE_TRACE_INSTANT("unit.no.drops");
  std::ostringstream os;
  Tracer::instance().write_chrome_trace(os);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("\"name\":\"trace.dropped\""), std::string::npos);
  EXPECT_NE(trace.find("\"dropped\":0"), std::string::npos);
  EXPECT_NE(trace.find("\"trace_dropped_total\":0"), std::string::npos);
}

}  // namespace
}  // namespace smpmine::obs
