// Sequential-pattern mining: AprioriAll (Agrawal & Srikant, ICDE'95).
//
// Four phases over a customer-sequence database:
//   1. Litemset phase — frequent itemsets where support counts *customers*
//      (a customer contributes once however often the itemset recurs in its
//      transactions). Runs on the full CCPD hash-tree machinery with
//      group-dedup counting, so every paper optimization applies.
//   2. Transformation — each customer sequence becomes a sequence of
//      litemset-id sets (transactions reduced to the litemsets they
//      contain; empty transactions dropped).
//   3. Sequence phase — Apriori-style candidate sequences over litemset
//      ids (join on overlapping k-2 interiors, subsequence pruning),
//      support = customers whose transformed sequence contains the
//      candidate in order.
//   4. Maximal phase — optionally drop patterns contained in a longer
//      frequent pattern (containment by per-element itemset inclusion).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "itemset/frequent_set.hpp"
#include "seqpat/sequence_db.hpp"

namespace smpmine {

/// A mined sequential pattern: ordered elements, each a sorted itemset.
struct SequencePattern {
  std::vector<std::vector<item_t>> elements;
  count_t customers = 0;  ///< customers containing the pattern
  double support = 0.0;   ///< customers / |C|

  std::size_t length() const { return elements.size(); }
  /// "<(1,2) (3)> sup=0.4" rendering.
  std::string to_string() const;
};

struct SeqMineOptions {
  /// Minimum support as a fraction of customers.
  double min_support = 0.25;
  std::uint32_t threads = 1;
  /// Cap on pattern length (elements).
  std::uint32_t max_length = 16;
  /// Keep only maximal patterns (phase 4); false returns all frequent ones.
  bool maximal_only = true;
  /// Knobs forwarded to the litemset phase's hash tree (hash scheme,
  /// leaf threshold, subset check, placement).
  MinerOptions itemset_options;
};

struct SeqMiningResult {
  std::vector<SequencePattern> patterns;
  /// Phase-1 litemsets by size (levels[i] has k = i+1), customer-supports.
  std::vector<FrequentSet> litemsets;
  std::uint64_t candidate_sequences = 0;  ///< generated across iterations
  double litemset_seconds = 0.0;
  double transform_seconds = 0.0;
  double sequence_seconds = 0.0;
};

/// True when sequence `a` is contained in `b`: an order-preserving mapping
/// of a's elements onto distinct elements of b with per-element itemset
/// inclusion (the AS'95 containment relation).
bool sequence_contained(
    const std::vector<std::vector<item_t>>& a,
    const std::vector<std::vector<item_t>>& b);

SeqMiningResult mine_sequences(const SequenceDatabase& db,
                               const SeqMineOptions& options);

}  // namespace smpmine
