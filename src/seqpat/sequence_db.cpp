#include "seqpat/sequence_db.hpp"

#include <algorithm>

namespace smpmine {

void SequenceDatabase::add_customer(
    std::span<const std::vector<item_t>> transactions) {
  for (const auto& txn : transactions) {
    if (txn.empty()) continue;
    const std::size_t start = items_.size();
    items_.insert(items_.end(), txn.begin(), txn.end());
    auto begin = items_.begin() + static_cast<std::ptrdiff_t>(start);
    std::sort(begin, items_.end());
    items_.erase(std::unique(begin, items_.end()), items_.end());
    universe_ = std::max<item_t>(universe_, items_.back() + 1);
    txn_offsets_.push_back(items_.size());
  }
  customer_offsets_.push_back(txn_offsets_.size() - 1);
}

SequenceDatabase generate_sequences(const SeqGenParams& p) {
  Rng rng(p.seed);

  // Pattern pool: each sequence pattern is a short sequence of small
  // itemsets over the item universe, with an exponential popularity weight.
  struct SeqPattern {
    std::vector<std::vector<item_t>> elements;
    double weight;
  };
  std::vector<SeqPattern> patterns(p.num_seq_patterns);
  double weight_sum = 0.0;
  for (auto& pat : patterns) {
    const std::uint32_t elems =
        std::max<std::uint32_t>(2, rng.poisson(p.avg_pattern_elements));
    pat.elements.resize(elems);
    for (auto& element : pat.elements) {
      const std::uint32_t len =
          std::max<std::uint32_t>(1, rng.poisson(p.avg_element_len));
      for (std::uint32_t i = 0; i < len; ++i) {
        element.push_back(static_cast<item_t>(rng.uniform(p.num_items)));
      }
      std::sort(element.begin(), element.end());
      element.erase(std::unique(element.begin(), element.end()),
                    element.end());
    }
    pat.weight = rng.exponential(1.0);
    weight_sum += pat.weight;
  }
  std::vector<double> cumulative;
  double run = 0.0;
  for (const auto& pat : patterns) {
    run += pat.weight / weight_sum;
    cumulative.push_back(run);
  }
  if (!cumulative.empty()) cumulative.back() = 1.0;

  SequenceDatabase db;
  std::vector<std::vector<item_t>> sequence;
  for (std::uint32_t c = 0; c < p.num_customers; ++c) {
    const std::uint32_t txns =
        std::max<std::uint32_t>(1, rng.poisson(p.avg_transactions));
    sequence.assign(txns, {});
    for (auto& txn : sequence) {
      const std::uint32_t len =
          std::max<std::uint32_t>(1, rng.poisson(p.avg_transaction_len));
      for (std::uint32_t i = 0; i < len; ++i) {
        txn.push_back(static_cast<item_t>(rng.uniform(p.num_items)));
      }
    }
    // Weave one popular pattern through the sequence (its elements land on
    // increasing transaction positions).
    if (!patterns.empty() && rng.uniform01() < p.pattern_rate) {
      const auto it = std::upper_bound(cumulative.begin(), cumulative.end(),
                                       rng.uniform01());
      const SeqPattern& pat = patterns[static_cast<std::size_t>(
          std::min<std::ptrdiff_t>(it - cumulative.begin(),
                                   static_cast<std::ptrdiff_t>(patterns.size()) - 1))];
      if (pat.elements.size() <= sequence.size()) {
        // Choose increasing positions via a partial selection.
        std::size_t pos = 0;
        const std::size_t slack = sequence.size() - pat.elements.size();
        for (std::size_t e = 0; e < pat.elements.size(); ++e) {
          pos += rng.uniform(slack / pat.elements.size() + 1);
          sequence[pos].insert(sequence[pos].end(), pat.elements[e].begin(),
                               pat.elements[e].end());
          ++pos;
        }
      }
    }
    db.add_customer(sequence);
  }
  return db;
}

}  // namespace smpmine
