// Customer-sequence database for sequential-pattern mining.
//
// The paper's conclusion claims its machinery transfers to "sequential
// patterns (Agrawal and Srikant, 1995)"; this module supplies the data
// model: each customer owns a time-ordered sequence of transactions
// (itemsets). Storage is flat (one item array + two offset tables) for the
// same scan-locality reasons as Database.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace smpmine {

class SequenceDatabase {
 public:
  SequenceDatabase() {
    txn_offsets_.push_back(0);
    customer_offsets_.push_back(0);
  }

  /// Appends one customer's transaction sequence, in time order. Each
  /// transaction is sorted and de-duplicated; empty transactions are
  /// dropped (they carry no information).
  void add_customer(std::span<const std::vector<item_t>> transactions);

  std::size_t num_customers() const { return customer_offsets_.size() - 1; }
  bool empty() const { return num_customers() == 0; }

  /// Number of transactions of customer c.
  std::size_t sequence_length(std::size_t c) const {
    return customer_offsets_[c + 1] - customer_offsets_[c];
  }

  /// The t-th transaction (0-based, time order) of customer c.
  std::span<const item_t> transaction(std::size_t c, std::size_t t) const {
    const std::size_t idx = customer_offsets_[c] + t;
    return {items_.data() + txn_offsets_[idx],
            items_.data() + txn_offsets_[idx + 1]};
  }

  std::size_t total_transactions() const { return txn_offsets_.size() - 1; }
  std::size_t total_items() const { return items_.size(); }

  /// Largest item id seen plus one.
  item_t item_universe() const { return universe_; }

 private:
  std::vector<item_t> items_;
  std::vector<std::uint64_t> txn_offsets_;       // per transaction
  std::vector<std::uint64_t> customer_offsets_;  // into txn_offsets_ index
  item_t universe_ = 0;
};

/// Synthetic customer-sequence generator in the spirit of Agrawal &
/// Srikant's (ICDE'95) procedure: a pool of potential frequent *sequences*
/// whose elements are drawn from a pool of potential frequent *itemsets*;
/// customers interleave pattern occurrences with noise.
struct SeqGenParams {
  std::uint32_t num_customers = 10'000;   ///< |C|
  double avg_transactions = 8.0;          ///< transactions per customer
  double avg_transaction_len = 3.0;       ///< items per transaction
  std::uint32_t num_items = 200;          ///< N
  std::uint32_t num_seq_patterns = 30;    ///< Ns
  double avg_pattern_elements = 3.0;      ///< elements per seq pattern
  double avg_element_len = 2.0;           ///< items per pattern element
  double pattern_rate = 0.6;              ///< P(customer carries a pattern)
  std::uint64_t seed = 1995;
};

SequenceDatabase generate_sequences(const SeqGenParams& params);

}  // namespace smpmine
