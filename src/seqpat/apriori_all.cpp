#include "seqpat/apriori_all.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "core/candidate_gen.hpp"
#include "hashtree/hash_tree.hpp"
#include "itemset/eqclass.hpp"
#include "itemset/itemset.hpp"
#include "parallel/thread_pool.hpp"
#include "util/timer.hpp"

namespace smpmine {
namespace {

using Seq = std::vector<std::uint32_t>;  // litemset ids, time order

struct SeqHash {
  std::size_t operator()(const Seq& s) const {
    std::size_t h = 1469598103934665603ULL;
    for (const std::uint32_t v : s) {
      h ^= v;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

/// One customer's transformed sequence: per (non-empty) transaction, the
/// sorted ids of litemsets it contains, plus a bitmap of every id present
/// anywhere in the sequence (a cheap containment prefilter).
struct TransformedCustomer {
  std::vector<std::vector<std::uint32_t>> txns;
  // analyze-ok: partitioned by ownership — transform_phase blocks the
  // customer range, so each TransformedCustomer has exactly one writer;
  // the counting phase that follows the pool barrier only reads.
  std::vector<std::uint64_t> id_bitmap;

  bool has_id(std::uint32_t id) const {
    return (id_bitmap[id >> 6] >> (id & 63)) & 1u;
  }
  void set_id(std::uint32_t id) {
    id_bitmap[id >> 6] |= std::uint64_t{1} << (id & 63);
  }
};

FrequentSet select_frequent_tree(const HashTree& tree, count_t min_count) {
  const std::size_t k = tree.k();
  std::vector<const Candidate*> survivors;
  tree.for_each_candidate([&](const Candidate& cand) {
    if (*cand.count >= min_count) survivors.push_back(&cand);
  });
  std::sort(survivors.begin(), survivors.end(),
            [k](const Candidate* a, const Candidate* b) {
              return compare_itemsets(a->view(k), b->view(k)) < 0;
            });
  if (survivors.empty()) return FrequentSet(k);
  std::vector<item_t> flat;
  std::vector<count_t> counts;
  for (const Candidate* cand : survivors) {
    const auto view = cand->view(k);
    flat.insert(flat.end(), view.begin(), view.end());
    counts.push_back(*cand->count);
  }
  return FrequentSet(k, std::move(flat), std::move(counts));
}

/// Phase 1: frequent itemsets with *customer* support. CCPD structure with
/// group-dedup counting: a candidate is counted once per customer no matter
/// how many of the customer's transactions contain it.
std::vector<FrequentSet> litemset_phase(const SequenceDatabase& db,
                                        count_t min_count,
                                        const SeqMineOptions& opts,
                                        ThreadPool& pool) {
  std::vector<FrequentSet> levels;
  const item_t universe = db.item_universe();
  if (universe == 0) return levels;
  const std::uint32_t threads = pool.size();

  // F1 with per-item customer stamps.
  std::vector<std::vector<count_t>> partial(threads,
                                            std::vector<count_t>(universe, 0));
  pool.parallel_for_blocked(
      db.num_customers(),
      [&](std::size_t begin, std::size_t end, std::uint32_t tid) {
        std::vector<std::uint32_t> stamp(universe, 0);
        auto& counts = partial[tid];
        for (std::size_t c = begin; c < end; ++c) {
          const auto customer_stamp = static_cast<std::uint32_t>(c + 1);
          for (std::size_t t = 0; t < db.sequence_length(c); ++t) {
            for (const item_t item : db.transaction(c, t)) {
              if (stamp[item] != customer_stamp) {
                stamp[item] = customer_stamp;
                ++counts[item];
              }
            }
          }
        }
      });
  std::vector<item_t> f1_items;
  std::vector<count_t> f1_counts;
  for (item_t i = 0; i < universe; ++i) {
    count_t total = 0;
    for (const auto& p : partial) total += p[i];
    if (total >= min_count) {
      f1_items.push_back(i);
      f1_counts.push_back(total);
    }
  }
  if (f1_items.empty()) return levels;
  levels.emplace_back(1, std::move(f1_items), std::move(f1_counts));

  const MinerOptions& base = opts.itemset_options;
  PlacementArenas arenas(base.placement);
  for (std::uint32_t k = 2;; ++k) {
    const FrequentSet& prev = levels.back();
    if (prev.size() < 2) break;
    const std::vector<EqClass> classes = build_equivalence_classes(prev);
    const std::vector<GenUnit> units = generation_units(classes, k);
    if (units.empty()) break;

    const std::uint32_t fanout = adaptive_fanout(
        total_join_pairs(classes), k, base.leaf_threshold, base.min_fanout,
        base.max_fanout);
    const HashPolicy policy =
        base.hash_scheme == HashScheme::Indirection
            ? HashPolicy(fanout, levels.front().flat(), universe)
            : HashPolicy(base.hash_scheme, fanout);
    arenas.reset();
    HashTree tree({k, fanout, base.leaf_threshold, CounterMode::Atomic},
                  policy, arenas);
    generate_candidates(prev, classes, units, tree);
    if (tree.num_candidates() == 0) break;

    pool.parallel_for_blocked(
        db.num_customers(),
        [&](std::size_t begin, std::size_t end, std::uint32_t) {
          CountContext ctx = tree.make_context(base.subset_check);
          tree.enable_group_dedup(ctx);
          for (std::size_t c = begin; c < end; ++c) {
            HashTree::begin_group(ctx);
            for (std::size_t t = 0; t < db.sequence_length(c); ++t) {
              tree.count_transaction(db.transaction(c, t), ctx);
            }
          }
        });

    FrequentSet fk = select_frequent_tree(tree, min_count);
    if (fk.empty()) break;
    levels.push_back(std::move(fk));
  }
  return levels;
}

/// Flattened litemset table: id -> (level, index) view.
struct LitemsetTable {
  std::vector<std::span<const item_t>> views;
  std::vector<count_t> customer_counts;
};

LitemsetTable flatten(const std::vector<FrequentSet>& levels) {
  LitemsetTable table;
  for (const FrequentSet& level : levels) {
    for (std::size_t i = 0; i < level.size(); ++i) {
      table.views.push_back(level.itemset(i));
      table.customer_counts.push_back(level.count(i));
    }
  }
  return table;
}

/// Phase 2: transform each customer into sequences of litemset-id sets.
std::vector<TransformedCustomer> transform_phase(const SequenceDatabase& db,
                                                 const LitemsetTable& table,
                                                 ThreadPool& pool) {
  std::vector<TransformedCustomer> out(db.num_customers());
  const std::size_t bitmap_words = (table.views.size() + 63) / 64;
  pool.parallel_for_blocked(
      db.num_customers(),
      [&](std::size_t begin, std::size_t end, std::uint32_t) {
        for (std::size_t c = begin; c < end; ++c) {
          TransformedCustomer& seq = out[c];
          seq.id_bitmap.assign(bitmap_words, 0);
          for (std::size_t t = 0; t < db.sequence_length(c); ++t) {
            const auto txn = db.transaction(c, t);
            std::vector<std::uint32_t> ids;
            for (std::uint32_t id = 0; id < table.views.size(); ++id) {
              if (table.views[id].size() <= txn.size() &&
                  is_subset_sorted(table.views[id], txn)) {
                ids.push_back(id);
                seq.set_id(id);
              }
            }
            if (!ids.empty()) seq.txns.push_back(std::move(ids));
          }
        }
      });
  return out;
}

/// True when the ordered ids of `cand` appear in order in `customer`
/// (each id a member of a strictly later transaction's id set). The bitmap
/// prefilter rejects most candidates before the positional scan.
bool contains_sequence(const TransformedCustomer& customer, const Seq& cand) {
  for (const std::uint32_t id : cand) {
    if (!customer.has_id(id)) return false;
  }
  std::size_t pos = 0;
  for (const std::uint32_t id : cand) {
    while (pos < customer.txns.size() &&
           !std::binary_search(customer.txns[pos].begin(),
                               customer.txns[pos].end(), id)) {
      ++pos;
    }
    if (pos == customer.txns.size()) return false;
    ++pos;
  }
  return true;
}

/// Specialized length-2 counting: instead of testing |L1|^2 candidates per
/// customer, enumerate the ordered id pairs the customer actually contains
/// (deduplicated) into flat per-thread counters — the standard counting
/// inversion for the quadratic C2.
std::vector<count_t> count_pairs(
    const std::vector<TransformedCustomer>& transformed, std::size_t ids,
    ThreadPool& pool) {
  std::vector<std::vector<count_t>> partial(
      pool.size(), std::vector<count_t>(ids * ids, 0));
  pool.parallel_for_blocked(
      transformed.size(),
      [&](std::size_t begin, std::size_t end, std::uint32_t tid) {
        auto& counts = partial[tid];
        std::unordered_set<std::uint64_t> seen;
        for (std::size_t c = begin; c < end; ++c) {
          const auto& txns = transformed[c].txns;
          seen.clear();
          // Suffix id-sets: pair (a, b) is contained iff a occurs at some
          // position with b anywhere strictly later.
          for (std::size_t i = 0; i + 1 < txns.size(); ++i) {
            for (const std::uint32_t a : txns[i]) {
              for (std::size_t j = i + 1; j < txns.size(); ++j) {
                for (const std::uint32_t b : txns[j]) {
                  const std::uint64_t key =
                      (static_cast<std::uint64_t>(a) << 32) | b;
                  if (seen.insert(key).second) {
                    ++counts[a * ids + b];
                  }
                }
              }
            }
          }
        }
      });
  std::vector<count_t> total(ids * ids, 0);
  for (const auto& p : partial) {
    for (std::size_t i = 0; i < total.size(); ++i) total[i] += p[i];
  }
  return total;
}

/// AprioriAll join + subsequence pruning: candidates of length k from the
/// frequent (k-1)-sequences.
std::vector<Seq> join_sequences(const std::vector<Seq>& prev) {
  if (prev.empty()) return {};
  const std::size_t len = prev.front().size();
  std::unordered_set<Seq, SeqHash> frequent(prev.begin(), prev.end());

  // Index by the drop-first interior so the join is linear in matches.
  std::unordered_map<Seq, std::vector<std::uint32_t>, SeqHash> by_tail;
  for (std::uint32_t i = 0; i < prev.size(); ++i) {
    by_tail[Seq(prev[i].begin() + 1, prev[i].end())].push_back(i);
  }

  std::vector<Seq> candidates;
  Seq head_key;
  for (const Seq& s2 : prev) {
    head_key.assign(s2.begin(), s2.end() - 1);
    const auto it = by_tail.find(head_key);
    if (it == by_tail.end()) continue;
    for (const std::uint32_t i : it->second) {
      Seq cand(prev[i]);
      cand.push_back(s2.back());
      // Prune: every (k-1)-subsequence must be frequent. Dropping the
      // first or last element gives the generators; check the interiors.
      bool prune = false;
      for (std::size_t drop = 1; drop + 1 < cand.size() && !prune; ++drop) {
        Seq sub;
        sub.reserve(len);
        for (std::size_t j = 0; j < cand.size(); ++j) {
          if (j != drop) sub.push_back(cand[j]);
        }
        prune = !frequent.count(sub);
      }
      if (!prune) candidates.push_back(std::move(cand));
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

}  // namespace

std::string SequencePattern::to_string() const {
  std::ostringstream os;
  os << '<';
  for (std::size_t i = 0; i < elements.size(); ++i) {
    if (i) os << ' ';
    os << format_itemset(elements[i]);
  }
  os << "> sup=" << support;
  return os.str();
}

bool sequence_contained(const std::vector<std::vector<item_t>>& a,
                        const std::vector<std::vector<item_t>>& b) {
  std::size_t pos = 0;
  for (const auto& element : a) {
    while (pos < b.size() && !is_subset_sorted(element, b[pos])) ++pos;
    if (pos == b.size()) return false;
    ++pos;
  }
  return true;
}

SeqMiningResult mine_sequences(const SequenceDatabase& db,
                               const SeqMineOptions& options) {
  SeqMiningResult result;
  if (db.empty()) return result;
  const count_t min_count =
      absolute_support(options.min_support, db.num_customers());
  ThreadPool pool(options.threads);

  // Phase 1: litemsets.
  WallTimer phase_timer;
  result.litemsets = litemset_phase(db, min_count, options, pool);
  result.litemset_seconds = phase_timer.seconds();
  if (result.litemsets.empty()) return result;
  const LitemsetTable table = flatten(result.litemsets);

  // Phase 2: transformation.
  phase_timer.reset();
  const std::vector<TransformedCustomer> transformed =
      transform_phase(db, table, pool);
  result.transform_seconds = phase_timer.seconds();

  // Phase 3: sequence iterations.
  phase_timer.reset();
  struct Found {
    Seq seq;
    count_t customers;
  };
  std::vector<Found> all_frequent;
  std::vector<Seq> current;
  for (std::uint32_t id = 0; id < table.views.size(); ++id) {
    current.push_back(Seq{id});
    all_frequent.push_back({Seq{id}, table.customer_counts[id]});
  }

  const std::size_t num_ids = table.views.size();
  // The quadratic C2 uses the counting inversion (enumerate contained
  // pairs per customer) unless the flat pair-counter array would be
  // unreasonable; beyond that, candidate lists stay small and the direct
  // subsequence scan with the bitmap prefilter wins.
  // 2048^2 counters = 16 MB per thread; beyond that the flat array stops
  // paying for itself and the candidate-scan path takes over.
  const bool flat_pairs = num_ids > 0 && num_ids <= 2048 &&
                          options.max_length >= 2;
  if (flat_pairs) {
    result.candidate_sequences += num_ids * num_ids;
    const std::vector<count_t> pair_counts =
        count_pairs(transformed, num_ids, pool);
    std::vector<Seq> next;
    for (std::uint32_t a = 0; a < num_ids; ++a) {
      for (std::uint32_t b = 0; b < num_ids; ++b) {
        const count_t total = pair_counts[a * num_ids + b];
        if (total >= min_count) {
          next.push_back(Seq{a, b});
          all_frequent.push_back({Seq{a, b}, total});
        }
      }
    }
    current = std::move(next);
  }

  for (std::uint32_t len = flat_pairs ? 3 : 2;
       len <= options.max_length && !current.empty(); ++len) {
    const std::vector<Seq> candidates =
        len == 2 ? [&] {
          // C2 = all ordered pairs, repetition allowed.
          std::vector<Seq> pairs;
          pairs.reserve(current.size() * current.size());
          for (const Seq& a : current) {
            for (const Seq& b : current) {
              pairs.push_back(Seq{a[0], b[0]});
            }
          }
          return pairs;
        }()
                 : join_sequences(current);
    if (candidates.empty()) break;
    result.candidate_sequences += candidates.size();

    // Count customers containing each candidate (per-thread counters,
    // customers block-partitioned).
    std::vector<std::vector<count_t>> partial(
        pool.size(), std::vector<count_t>(candidates.size(), 0));
    pool.parallel_for_blocked(
        transformed.size(),
        [&](std::size_t begin, std::size_t end, std::uint32_t tid) {
          auto& counts = partial[tid];
          for (std::size_t c = begin; c < end; ++c) {
            for (std::size_t i = 0; i < candidates.size(); ++i) {
              if (contains_sequence(transformed[c], candidates[i])) {
                ++counts[i];
              }
            }
          }
        });

    std::vector<Seq> next;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      count_t total = 0;
      for (const auto& p : partial) total += p[i];
      if (total >= min_count) {
        next.push_back(candidates[i]);
        all_frequent.push_back({candidates[i], total});
      }
    }
    if (next.empty()) break;
    current = std::move(next);
  }
  result.sequence_seconds = phase_timer.seconds();

  // Materialize patterns (ids -> itemsets).
  for (const Found& f : all_frequent) {
    SequencePattern pattern;
    pattern.customers = f.customers;
    pattern.support = static_cast<double>(f.customers) /
                      static_cast<double>(db.num_customers());
    for (const std::uint32_t id : f.seq) {
      const auto view = table.views[id];
      pattern.elements.emplace_back(view.begin(), view.end());
    }
    result.patterns.push_back(std::move(pattern));
  }

  // Phase 4: maximal filter. Order by (length, total items) descending so
  // a potential container is always examined before anything it contains
  // (containment implies >= on both keys, with equality only for equal
  // patterns).
  if (options.maximal_only) {
    auto total_items = [](const SequencePattern& p) {
      std::size_t n = 0;
      for (const auto& e : p.elements) n += e.size();
      return n;
    };
    std::sort(result.patterns.begin(), result.patterns.end(),
              [&](const SequencePattern& a, const SequencePattern& b) {
                if (a.length() != b.length()) return a.length() > b.length();
                return total_items(a) > total_items(b);
              });
    std::vector<SequencePattern> maximal;
    for (SequencePattern& pattern : result.patterns) {
      bool contained = false;
      for (const SequencePattern& keeper : maximal) {
        if (sequence_contained(pattern.elements, keeper.elements)) {
          contained = true;
          break;
        }
      }
      if (!contained) maximal.push_back(std::move(pattern));
    }
    result.patterns = std::move(maximal);
  }

  // Stable presentation order: longer first, then by support.
  std::sort(result.patterns.begin(), result.patterns.end(),
            [](const SequencePattern& a, const SequencePattern& b) {
              if (a.length() != b.length()) return a.length() > b.length();
              if (a.customers != b.customers) return a.customers > b.customers;
              return a.elements < b.elements;
            });
  return result;
}

}  // namespace smpmine
