#include "taxonomy/taxonomy.hpp"

#include <algorithm>
#include <stdexcept>

namespace smpmine {

Taxonomy::Taxonomy(item_t universe)
    : parents_(universe),
      has_child_(universe, false),
      ancestor_cache_(universe) {}

bool Taxonomy::reaches(item_t from, item_t target) const {
  if (from == target) return true;
  for (const item_t p : parents_[from]) {
    if (reaches(p, target)) return true;
  }
  return false;
}

void Taxonomy::add_edge(item_t child, item_t parent) {
  if (child >= universe() || parent >= universe()) {
    throw std::invalid_argument("Taxonomy::add_edge: item out of range");
  }
  if (child == parent) {
    throw std::invalid_argument("Taxonomy::add_edge: self edge");
  }
  // Adding child->parent creates a cycle iff child is already reachable
  // upward from parent.
  if (reaches(parent, child)) {
    throw std::invalid_argument("Taxonomy::add_edge: would create a cycle");
  }
  auto& ps = parents_[child];
  if (std::find(ps.begin(), ps.end(), parent) == ps.end()) {
    ps.push_back(parent);
    has_child_[parent] = true;
    ++edges_;
    // Any cached ancestor set may now be stale.
    for (auto& entry : ancestor_cache_) entry.reset();
  }
}

std::span<const item_t> Taxonomy::ancestors(item_t item) const {
  auto& cached = ancestor_cache_[item];
  if (!cached.has_value()) {
    std::vector<item_t> out;
    std::vector<item_t> stack(parents_[item].begin(), parents_[item].end());
    while (!stack.empty()) {
      const item_t a = stack.back();
      stack.pop_back();
      out.push_back(a);
      stack.insert(stack.end(), parents_[a].begin(), parents_[a].end());
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    cached = std::move(out);
  }
  return *cached;
}

void Taxonomy::freeze() {
  for (item_t i = 0; i < universe(); ++i) ancestors(i);
}

bool Taxonomy::is_ancestor(item_t a, item_t item) const {
  const auto anc = ancestors(item);
  return std::binary_search(anc.begin(), anc.end(), a);
}

bool Taxonomy::has_item_with_ancestor(std::span<const item_t> itemset) const {
  // itemset is sorted; ancestor sets are sorted — for each member, check
  // whether any *other* member is among its ancestors.
  for (const item_t item : itemset) {
    const auto anc = ancestors(item);
    if (anc.empty()) continue;
    for (const item_t other : itemset) {
      if (other != item && std::binary_search(anc.begin(), anc.end(), other)) {
        return true;
      }
    }
  }
  return false;
}

std::vector<item_t> Taxonomy::roots() const {
  std::vector<item_t> out;
  for (item_t i = 0; i < universe(); ++i) {
    if (parents_[i].empty() && has_child_[i]) out.push_back(i);
  }
  return out;
}

std::vector<item_t> Taxonomy::leaves() const {
  std::vector<item_t> out;
  for (item_t i = 0; i < universe(); ++i) {
    if (!has_child_[i]) out.push_back(i);
  }
  return out;
}

Taxonomy make_random_taxonomy(const TaxonomyParams& params) {
  Taxonomy tax(params.universe);
  if (params.levels < 2 || params.roots == 0 ||
      params.roots >= params.universe) {
    return tax;  // degenerate: flat item space
  }
  Rng rng(params.seed);
  // ids [0, roots) are level 0; the rest are split evenly over levels
  // 1..levels-1, each item parented one level up.
  const item_t interior = params.universe - params.roots;
  const std::uint32_t lower_levels = params.levels - 1;
  const item_t per_level = std::max<item_t>(1, interior / lower_levels);

  item_t level_begin = 0;          // start of the parent level
  item_t level_size = params.roots;
  item_t next = params.roots;
  for (std::uint32_t level = 1; level < params.levels && next < params.universe;
       ++level) {
    const item_t count =
        level + 1 == params.levels
            ? params.universe - next  // last level takes the remainder
            : std::min<item_t>(per_level, params.universe - next);
    for (item_t i = 0; i < count; ++i) {
      const item_t child = next + i;
      const item_t parent =
          level_begin + static_cast<item_t>(rng.uniform(level_size));
      tax.add_edge(child, parent);
    }
    level_begin = next;
    level_size = count;
    next += count;
  }
  tax.freeze();
  return tax;
}

}  // namespace smpmine
