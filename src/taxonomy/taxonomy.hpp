// Item taxonomies for multi-level (generalized) association mining.
//
// The paper's conclusion claims its techniques apply directly to
// "multi-level (taxonomies) associations (Srikant and Agrawal, 1995)";
// this module supplies that application: an is-a hierarchy over items
// (a DAG, typically a forest — e.g. jacket -> outerwear -> clothes) with
// transitive-ancestor queries, plus a synthetic taxonomy generator for the
// benches.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace smpmine {

class Taxonomy {
 public:
  /// `universe` is the number of item ids the taxonomy may mention
  /// (0..universe-1); interior category items share the same id space, as
  /// in Srikant & Agrawal's formulation.
  explicit Taxonomy(item_t universe);

  /// Declares `child` is-a `parent`. Throws std::invalid_argument on out-of
  /// -range ids, self-edges, or an edge that would create a cycle.
  void add_edge(item_t child, item_t parent);

  item_t universe() const { return static_cast<item_t>(parents_.size()); }

  /// Direct parents of an item.
  std::span<const item_t> parents(item_t item) const {
    return parents_[item];
  }

  /// All transitive ancestors of an item, deduplicated, sorted. Memoized;
  /// the first call for each item does the DFS (not thread-safe until
  /// freeze() has been called).
  std::span<const item_t> ancestors(item_t item) const;

  /// Precomputes every ancestor set so later queries are read-only (and
  /// therefore safe from concurrent miner threads).
  void freeze();

  /// True when `a` is a (transitive) ancestor of `item`.
  bool is_ancestor(item_t a, item_t item) const;

  /// True when the sorted itemset contains any item together with one of
  /// its ancestors — such itemsets are redundant (support equals that of
  /// the itemset without the ancestor) and Cumulate prunes them.
  bool has_item_with_ancestor(std::span<const item_t> itemset) const;

  /// Items with no parents.
  std::vector<item_t> roots() const;

  /// Leaf items (no children) — the items that appear in raw transactions.
  std::vector<item_t> leaves() const;

  std::size_t num_edges() const { return edges_; }

 private:
  bool reaches(item_t from, item_t target) const;

  std::vector<std::vector<item_t>> parents_;
  std::vector<bool> has_child_;
  // analyze-ok: memoization cache with a warm-before-share contract —
  // mine_generalized pre-warms every entry single-threaded (and freeze()
  // exists for other callers) before the concurrent candidate-veto phase,
  // which then only reads. Concurrent first-touch would be a real race.
  mutable std::vector<std::optional<std::vector<item_t>>> ancestor_cache_;
  std::size_t edges_ = 0;
};

/// Parameters for the synthetic taxonomy of Srikant & Agrawal's data
/// generator: `roots` top-level categories over a `universe` of items;
/// each non-root gets one parent drawn from the previous level, with
/// `levels` levels in total.
struct TaxonomyParams {
  item_t universe = 1000;
  item_t roots = 30;
  std::uint32_t levels = 4;
  std::uint64_t seed = 7;
};

/// Builds a random forest taxonomy: level 0 = roots, the remaining ids are
/// spread over levels 1..levels-1, each with a random parent in the level
/// above. Deterministic per seed.
Taxonomy make_random_taxonomy(const TaxonomyParams& params);

}  // namespace smpmine
