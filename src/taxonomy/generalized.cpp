#include "taxonomy/generalized.hpp"

#include <algorithm>

namespace smpmine {

const char* to_string(GeneralizedAlgorithm a) {
  switch (a) {
    case GeneralizedAlgorithm::Basic: return "basic";
    case GeneralizedAlgorithm::Cumulate: return "cumulate";
  }
  return "?";
}

Database extend_database(const Database& db, const Taxonomy& taxonomy) {
  Database extended;
  extended.reserve(db.size(), db.total_items() * 2);
  std::vector<item_t> txn;
  for (std::size_t t = 0; t < db.size(); ++t) {
    const auto original = db.transaction(t);
    txn.assign(original.begin(), original.end());
    for (const item_t item : original) {
      if (item < taxonomy.universe()) {
        const auto anc = taxonomy.ancestors(item);
        txn.insert(txn.end(), anc.begin(), anc.end());
      }
    }
    extended.add_transaction(txn);  // sorts + dedups
  }
  return extended;
}

MiningResult mine_generalized(const Database& db, const Taxonomy& taxonomy,
                              MinerOptions options,
                              GeneralizedAlgorithm algorithm) {
  const Database extended = extend_database(db, taxonomy);
  if (algorithm == GeneralizedAlgorithm::Cumulate) {
    // Pre-warm every ancestor set so the veto below only ever *reads* the
    // taxonomy's memoization cache — the veto runs concurrently from the
    // candidate-generation threads. (extend_database already warmed every
    // item that occurs in a transaction; items that never occur cannot
    // reach a candidate, but warming all of them costs nothing and removes
    // the reasoning burden.)
    for (item_t i = 0; i < taxonomy.universe(); ++i) taxonomy.ancestors(i);
    // Cumulate's pruning: an itemset containing both an item and its
    // ancestor has exactly the support of the itemset without the ancestor
    // — pure redundancy, vetoed before it ever enters the hash tree.
    options.candidate_veto = [&taxonomy](std::span<const item_t> cand) {
      return taxonomy.has_item_with_ancestor(cand);
    };
  }
  // Support counting happens over the extended transactions; min_support
  // stays a fraction of |D| (extension does not change |D|).
  return mine(extended, options);
}

namespace {

const count_t* item_support(const MiningResult& result, item_t item) {
  if (result.levels.empty()) return nullptr;
  const item_t key[1] = {item};
  return result.levels[0].find_count(std::span<const item_t>(key, 1));
}

}  // namespace

std::vector<Rule> filter_interesting_rules(std::vector<Rule> rules,
                                           const Taxonomy& taxonomy,
                                           const MiningResult& result,
                                           double min_interest,
                                           std::size_t num_transactions) {
  (void)num_transactions;  // supports are compared as raw counts
  auto predicted_by_ancestor = [&](const Rule& rule) {
    // One-step generalizations: replace one item by one of its direct
    // parents; if that generalized itemset is frequent, it predicts this
    // rule's support as sup(gen) * sup(item)/sup(parent).
    std::vector<item_t> whole(rule.antecedent);
    whole.insert(whole.end(), rule.consequent.begin(), rule.consequent.end());
    std::sort(whole.begin(), whole.end());

    for (std::size_t i = 0; i < whole.size(); ++i) {
      const item_t item = whole[i];
      if (item >= taxonomy.universe()) continue;
      for (const item_t parent : taxonomy.parents(item)) {
        std::vector<item_t> gen(whole);
        gen[i] = parent;
        std::sort(gen.begin(), gen.end());
        if (std::adjacent_find(gen.begin(), gen.end()) != gen.end()) continue;
        if (taxonomy.has_item_with_ancestor(gen)) continue;
        if (gen.size() > result.levels.size()) continue;
        const count_t* sup_gen =
            result.levels[gen.size() - 1].find_count(gen);
        if (sup_gen == nullptr) continue;
        const count_t* sup_item = item_support(result, item);
        const count_t* sup_parent = item_support(result, parent);
        if (sup_item == nullptr || sup_parent == nullptr || *sup_parent == 0) {
          continue;
        }
        const double expected = static_cast<double>(*sup_gen) *
                                static_cast<double>(*sup_item) /
                                static_cast<double>(*sup_parent);
        if (static_cast<double>(rule.support_count) <
            min_interest * expected) {
          return true;  // the ancestor rule explains this one
        }
      }
    }
    return false;
  };

  std::erase_if(rules, predicted_by_ancestor);
  return rules;
}

}  // namespace smpmine
