// Generalized (multi-level) association mining over a taxonomy —
// Srikant & Agrawal, "Mining Generalized Association Rules" (VLDB'95),
// the application the paper's conclusion points at.
//
// An itemset may mix items from any taxonomy level; its support counts
// transactions whose items *or their ancestors* cover it. Two algorithms:
//   - Basic:    extend every transaction with all ancestors, run Apriori.
//   - Cumulate: Basic plus its pruning optimizations — drop candidates
//               containing an item together with its ancestor (their
//               support is identical to the reduced itemset's, so they are
//               pure redundancy), implemented through the miner's
//               candidate-veto hook.
// Both run on the full parallel CCPD machinery, so every paper
// optimization (balancing, short-circuiting, placement) applies unchanged.
#pragma once

#include "core/miner.hpp"
#include "core/rules.hpp"
#include "taxonomy/taxonomy.hpp"

namespace smpmine {

enum class GeneralizedAlgorithm { Basic, Cumulate };

const char* to_string(GeneralizedAlgorithm a);

/// The "extended database": every transaction unioned with the ancestors
/// of its items (sorted, deduplicated). Support of a generalized itemset
/// over the original database equals its plain support over this one.
Database extend_database(const Database& db, const Taxonomy& taxonomy);

/// Mines generalized frequent itemsets. `options.candidate_veto` is
/// overridden internally when `algorithm` is Cumulate.
MiningResult mine_generalized(const Database& db, const Taxonomy& taxonomy,
                              MinerOptions options,
                              GeneralizedAlgorithm algorithm =
                                  GeneralizedAlgorithm::Cumulate);

/// Generalized rule post-filter (Srikant & Agrawal's R-interest measure,
/// applied between a rule and its one-step generalizations): a rule is kept
/// unless some rule in the set with every item replaced by an ancestor
/// "predicts" its support within factor `min_interest` — i.e. drop
/// X => Y when a generalization X' => Y' exists with
///   support(X ∪ Y) < min_interest * E[support], where
///   E[support] = support(X' ∪ Y') * Π_i sup(x_i)/sup(x'_i).
/// `levels` supplies the item supports; `num_transactions` scales them.
std::vector<Rule> filter_interesting_rules(
    std::vector<Rule> rules, const Taxonomy& taxonomy,
    const MiningResult& result, double min_interest,
    std::size_t num_transactions);

}  // namespace smpmine
