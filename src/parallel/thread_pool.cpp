#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace smpmine {

void Barrier::yield_now() noexcept { std::this_thread::yield(); }

ThreadPool::ThreadPool(std::uint32_t threads)
    : threads_(std::max<std::uint32_t>(threads, 1)), barrier_(threads_) {
  SMPMINE_LOCK_NAME(&mu_, "ThreadPool::mu_");
  workers_.reserve(threads_ - 1);
  for (std::uint32_t tid = 1; tid < threads_; ++tid) {
    workers_.emplace_back([this, tid] { worker_loop(tid); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock g(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::execute_as(const std::function<void(std::uint32_t)>& job,
                            std::uint32_t tid) {
  obs::metric::pool_tasks().inc();
  SMPMINE_TRACE_SPAN_ARG("pool.task", "tid", tid);
  try {
    job(tid);
  } catch (...) {
    MutexLock g(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::worker_loop(std::uint32_t tid) {
  // One trace track per persistent worker; the master (tid 0) keeps the
  // caller's track, named by the tool entry point.
  obs::set_current_thread_name("worker " + std::to_string(tid));
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::uint32_t)>* job = nullptr;
    {
      MutexLock lk(mu_);
      while (!shutdown_ && epoch_ == seen_epoch) cv_start_.wait(lk);
      if (shutdown_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    execute_as(*job, tid);
    {
      MutexLock g(mu_);
      if (--running_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::run_spmd(const std::function<void(std::uint32_t)>& body) {
  obs::metric::pool_spmd_dispatches().inc();
  // Dispatch heartbeat for the flight recorder: a run that wedges between
  // dispatches (vs inside one) is distinguishable in the dump.
  obs::flight::emit(obs::flight::EventKind::Mark, "pool.spmd", nullptr,
                    threads_);
  SMPMINE_TRACE_SPAN("pool.spmd");
  if (threads_ == 1) {
    // Inline fast path; still a task execution for the pool.tasks metric
    // so tasks == threads x dispatches holds at every thread count.
    obs::metric::pool_tasks().inc();
    body(0);
    return;
  }
  {
    MutexLock g(mu_);
    job_ = &body;
    running_ = threads_ - 1;
    first_error_ = nullptr;
    ++epoch_;
  }
  cv_start_.notify_all();
  execute_as(body, 0);
  std::exception_ptr error;
  {
    MutexLock lk(mu_);
    while (running_ != 0) cv_done_.wait(lk);
    job_ = nullptr;
    error = first_error_;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for_blocked(
    std::size_t n, const std::function<void(std::size_t, std::size_t,
                                            std::uint32_t)>& body) {
  const std::size_t per = (n + threads_ - 1) / threads_;
  run_spmd([&](std::uint32_t tid) {
    const std::size_t begin = std::min(n, tid * per);
    const std::size_t end = std::min(n, begin + per);
    if (begin < end) body(begin, end, tid);
  });
}

}  // namespace smpmine
