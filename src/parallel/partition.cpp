#include "parallel/partition.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/checked.hpp"

namespace smpmine {

const char* to_string(PartitionScheme s) {
  switch (s) {
    case PartitionScheme::Block: return "block";
    case PartitionScheme::Interleaved: return "interleaved";
    case PartitionScheme::Bitonic: return "bitonic";
  }
  return "?";
}

double Assignment::imbalance() const {
  if (loads.empty()) return 1.0;
  const double max_load = *std::max_element(loads.begin(), loads.end());
  const double mean =
      std::accumulate(loads.begin(), loads.end(), 0.0) /
      static_cast<double>(loads.size());
  return mean > 0.0 ? max_load / mean : 1.0;
}

std::vector<std::uint32_t> Assignment::element_to_bin(std::size_t n) const {
  std::vector<std::uint32_t> bin_of(n, std::numeric_limits<std::uint32_t>::max());
  for (std::uint32_t b = 0; b < groups.size(); ++b) {
    for (std::uint32_t e : groups[b]) bin_of[e] = b;
  }
  return bin_of;
}

std::vector<double> join_workloads(std::size_t n) {
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = static_cast<double>(n - i - 1);
  }
  return w;
}

namespace {

Assignment make_empty(std::uint32_t bins) {
  Assignment a;
  a.groups.resize(bins);
  a.loads.assign(bins, 0.0);
  return a;
}

void assign(Assignment& a, std::uint32_t bin, std::uint32_t element,
            double weight) {
  a.groups[bin].push_back(element);
  a.loads[bin] += weight;
}

std::uint32_t least_loaded(const Assignment& a) {
  std::uint32_t best = 0;
  for (std::uint32_t b = 1; b < a.loads.size(); ++b) {
    if (a.loads[b] < a.loads[best]) best = b;
  }
  return best;
}

#if SMPMINE_CHECKED_ENABLED
/// Checked-build postcondition shared by every scheme: the bins tile
/// [0, n) — each element assigned to exactly one bin. A partitioner that
/// drops an element silently under-counts supports; one that duplicates an
/// element double-counts them.
void check_covers(const Assignment& a, std::size_t n) {
  std::vector<bool> seen(n, false);
  for (const auto& group : a.groups) {
    for (const std::uint32_t e : group) {
      SMPMINE_ASSERT(e < n, "partition assigned an out-of-range element");
      SMPMINE_ASSERT(!seen[e], "partition assigned an element twice");
      seen[e] = true;
    }
  }
  for (std::size_t e = 0; e < n; ++e) {
    SMPMINE_ASSERT(seen[e], "partition dropped an element");
  }
}
#define SMPMINE_CHECK_COVERS(a, n) check_covers((a), (n))
#else
#define SMPMINE_CHECK_COVERS(a, n) ((void)0)
#endif

}  // namespace

Assignment partition_block(const std::vector<double>& weights,
                           std::uint32_t bins) {
  Assignment a = make_empty(bins);
  const std::size_t n = weights.size();
  // floor(n/bins) per bin, remainder to the last — the paper's example
  // assigns {0,1,2}, {3,4,5}, {6,7,8,9} for n=10, P=3.
  const std::size_t per = std::max<std::size_t>(1, n / bins);
  for (std::size_t i = 0; i < n; ++i) {
    const auto bin = static_cast<std::uint32_t>(std::min<std::size_t>(
        i / per, bins - 1));
    assign(a, bin, static_cast<std::uint32_t>(i), weights[i]);
  }
  SMPMINE_CHECK_COVERS(a, weights.size());
  return a;
}

Assignment partition_interleaved(const std::vector<double>& weights,
                                 std::uint32_t bins) {
  Assignment a = make_empty(bins);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    assign(a, static_cast<std::uint32_t>(i % bins),
           static_cast<std::uint32_t>(i), weights[i]);
  }
  SMPMINE_CHECK_COVERS(a, weights.size());
  return a;
}

Assignment partition_bitonic(const std::vector<double>& weights,
                             std::uint32_t bins) {
  Assignment a = make_empty(bins);
  const std::size_t n = weights.size();
  const std::size_t group = 2u * bins;
  const std::size_t full = n / group * group;
  // Full groups: element j of the group pairs with (group-1-j); pair p of
  // the group goes to bin p. For the triangular workload w_i = n-i-1 both
  // pair members sum to the same constant, so every bin gets equal weight.
  for (std::size_t base = 0; base < full; base += group) {
    for (std::size_t j = 0; j < bins; ++j) {
      const auto lo = static_cast<std::uint32_t>(base + j);
      const auto hi = static_cast<std::uint32_t>(base + group - 1 - j);
      assign(a, static_cast<std::uint32_t>(j), lo, weights[lo]);
      assign(a, static_cast<std::uint32_t>(j), hi, weights[hi]);
    }
  }
  // Remainder (n mod 2P != 0): heaviest-first greedy onto least-loaded bins.
  std::vector<std::uint32_t> rest(n - full);
  std::iota(rest.begin(), rest.end(), static_cast<std::uint32_t>(full));
  std::stable_sort(rest.begin(), rest.end(),
                   [&](std::uint32_t x, std::uint32_t y) {
                     return weights[x] > weights[y];
                   });
  for (std::uint32_t e : rest) assign(a, least_loaded(a), e, weights[e]);
  for (auto& g : a.groups) std::sort(g.begin(), g.end());
  SMPMINE_CHECK_COVERS(a, weights.size());
  return a;
}

Assignment partition_greedy(const std::vector<double>& weights,
                            std::uint32_t bins) {
  Assignment a = make_empty(bins);
  std::vector<std::uint32_t> order(weights.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t x, std::uint32_t y) {
                     return weights[x] > weights[y];
                   });
  for (std::uint32_t e : order) assign(a, least_loaded(a), e, weights[e]);
  for (auto& g : a.groups) std::sort(g.begin(), g.end());
  SMPMINE_CHECK_COVERS(a, weights.size());
  return a;
}

Assignment partition(PartitionScheme scheme, const std::vector<double>& weights,
                     std::uint32_t bins) {
  switch (scheme) {
    case PartitionScheme::Block: return partition_block(weights, bins);
    case PartitionScheme::Interleaved:
      return partition_interleaved(weights, bins);
    case PartitionScheme::Bitonic: return partition_bitonic(weights, bins);
  }
  return make_empty(bins);
}

}  // namespace smpmine
