// Sense-reversing centralized barrier.
//
// The CCPD iteration structure is bulk-synchronous: build tree -> barrier ->
// count support -> barrier -> reduce/select. A sense-reversing barrier is
// reusable across phases without re-initialization.
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/ledger/ledger_hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace smpmine {

// Thread-safety-analysis note: Barrier deliberately carries no capability
// annotations. Its two fields are std::atomic and self-synchronizing — the
// release-store of `sense_` by the last arriver paired with the acquire-load
// in every waiter is the happens-before edge that makes "everything written
// before the barrier is visible after it" hold. There is no lock anyone
// could be REQUIRES'd to hold; the race test suite (tests/race/
// test_race_barrier.cpp under TSan) is what checks this protocol.
class Barrier {
 public:
  /// Acquire-loads of `sense_` spun before each yield_now(). Pure spinning
  /// deadlocks progress on an oversubscribed host (more threads than
  /// cores); yielding on every miss wastes the common same-core-count case.
  /// Yields taken are counted in the `barrier.yields` metric, so an
  /// oversubscribed run is visible in the run manifest.
  static constexpr std::uint32_t kSpinsBeforeYield = 1024;

  /// Wait episodes longer than this land a "barrier.late" flight event on
  /// the *last arriver's* ring (trace builds), so a stall dump names who
  /// was late, not only who waited. 1 ms: an order of magnitude above a
  /// healthy phase-end wait, well under the watchdog window.
  static constexpr std::uint64_t kLateArrivalNs = 1'000'000;

  explicit Barrier(std::uint32_t parties) : parties_(parties) {}

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Blocks until all parties arrive. Safe to call repeatedly. Trace
  /// builds account the wait (barrier.waits / barrier.wait_ns metrics) —
  /// the paper's barrier-imbalance cost, directly.
  void arrive_and_wait() noexcept {
    // relaxed-ok: sense_ only flips inside this function, after every party
    // has arrived; the acq_rel fetch_add below orders the episode.
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
#if SMPMINE_TRACING_ENABLED
      // Close the wait episode the first waiter opened — before the sense
      // flip, while every on-time party is still parked, so the exchange
      // cannot clobber the next episode's start. (A straggler between its
      // fetch_add and its CAS below can still re-plant this episode's
      // timestamp; that only overstates one later diagnostic, tolerated.)
      // relaxed-ok: diagnostic timestamp; the sense_ release below orders
      // the episode.
      const std::uint64_t episode =
          episode_start_.exchange(0, std::memory_order_relaxed);
      if (episode != 0) {
        const std::uint64_t episode_ns = obs::now_ns() - episode;
        if (episode_ns >= kLateArrivalNs) {
          // Emitted by the LAST arriver on its own ring: the thread that
          // made everyone else wait is the one the dump points at.
          obs::flight::emit(obs::flight::EventKind::BarrierWait,
                            "barrier.late",
                            obs::ledger::current_phase_name(), episode_ns);
        }
      }
#endif
      // relaxed-ok: the release store of sense_ next line publishes the
      // reset before any party can re-enter the barrier.
      arrived_.store(0, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
#if SMPMINE_TRACING_ENABLED
      const std::uint64_t wait_start = obs::now_ns();
      // First waiter opens the episode; later waiters lose the CAS.
      std::uint64_t expected = 0;
      // relaxed-ok: diagnostic timestamp, ordered by the barrier protocol.
      episode_start_.compare_exchange_strong(expected, wait_start,
                                             std::memory_order_relaxed);
#endif
      std::uint64_t yields = 0;
      std::uint32_t spins = 0;
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        if (++spins > kSpinsBeforeYield) {
          if (yields == 0) {
            // One flight event per wait episode, at the first yield: a
            // wedged barrier leaves "barrier.wait" as each stuck thread's
            // last event and then goes silent — exactly the signature the
            // stall watchdog turns into a dump. Emitting per-yield would
            // instead keep resetting the watchdog's last-event clock.
            obs::flight::emit(obs::flight::EventKind::BarrierWait,
                              "barrier.wait", nullptr, parties_);
          }
          yield_now();
          ++yields;
          spins = 0;
        }
      }
#if SMPMINE_TRACING_ENABLED
      const std::uint64_t wait_ns = obs::now_ns() - wait_start;
      obs::metric::barrier_waits().inc();
      obs::metric::barrier_wait_ns().inc(wait_ns);
      // Per-phase attribution: the ledger cell of the waiter's current (or
      // just-closed) phase plus the barrier.wait_ns.<phase> histogram.
      obs::ledger::add_barrier_wait(wait_ns);
#endif
      // The yield path already paid a syscall; one relaxed add is noise.
      // Counted in all builds so oversubscription stays observable even
      // with the tracing instrumentation compiled out.
      if (yields > 0) obs::metric::barrier_yields().inc(yields);
    }
  }

  std::uint32_t parties() const { return parties_; }

 private:
  static void yield_now() noexcept;

  const std::uint32_t parties_;
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<bool> sense_{false};
  /// now_ns() when the current wait episode's first waiter parked; 0 when
  /// no episode is open. Written only in trace builds.
  std::atomic<std::uint64_t> episode_start_{0};
};

}  // namespace smpmine
