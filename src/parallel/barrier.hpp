// Sense-reversing centralized barrier.
//
// The CCPD iteration structure is bulk-synchronous: build tree -> barrier ->
// count support -> barrier -> reduce/select. A sense-reversing barrier is
// reusable across phases without re-initialization.
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace smpmine {

// Thread-safety-analysis note: Barrier deliberately carries no capability
// annotations. Its two fields are std::atomic and self-synchronizing — the
// release-store of `sense_` by the last arriver paired with the acquire-load
// in every waiter is the happens-before edge that makes "everything written
// before the barrier is visible after it" hold. There is no lock anyone
// could be REQUIRES'd to hold; the race test suite (tests/race/
// test_race_barrier.cpp under TSan) is what checks this protocol.
class Barrier {
 public:
  /// Acquire-loads of `sense_` spun before each yield_now(). Pure spinning
  /// deadlocks progress on an oversubscribed host (more threads than
  /// cores); yielding on every miss wastes the common same-core-count case.
  /// Yields taken are counted in the `barrier.yields` metric, so an
  /// oversubscribed run is visible in the run manifest.
  static constexpr std::uint32_t kSpinsBeforeYield = 1024;

  explicit Barrier(std::uint32_t parties) : parties_(parties) {}

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Blocks until all parties arrive. Safe to call repeatedly. Trace
  /// builds account the wait (barrier.waits / barrier.wait_ns metrics) —
  /// the paper's barrier-imbalance cost, directly.
  void arrive_and_wait() noexcept {
    // relaxed-ok: sense_ only flips inside this function, after every party
    // has arrived; the acq_rel fetch_add below orders the episode.
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      // relaxed-ok: the release store of sense_ next line publishes the
      // reset before any party can re-enter the barrier.
      arrived_.store(0, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
#if SMPMINE_TRACING_ENABLED
      const std::uint64_t wait_start = obs::now_ns();
#endif
      std::uint64_t yields = 0;
      std::uint32_t spins = 0;
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        if (++spins > kSpinsBeforeYield) {
          if (yields == 0) {
            // One flight event per wait episode, at the first yield: a
            // wedged barrier leaves "barrier.wait" as each stuck thread's
            // last event and then goes silent — exactly the signature the
            // stall watchdog turns into a dump. Emitting per-yield would
            // instead keep resetting the watchdog's last-event clock.
            obs::flight::emit(obs::flight::EventKind::BarrierWait,
                              "barrier.wait", nullptr, parties_);
          }
          yield_now();
          ++yields;
          spins = 0;
        }
      }
#if SMPMINE_TRACING_ENABLED
      obs::metric::barrier_waits().inc();
      obs::metric::barrier_wait_ns().inc(obs::now_ns() - wait_start);
#endif
      // The yield path already paid a syscall; one relaxed add is noise.
      // Counted in all builds so oversubscription stays observable even
      // with the tracing instrumentation compiled out.
      if (yields > 0) obs::metric::barrier_yields().inc(yields);
    }
  }

  std::uint32_t parties() const { return parties_; }

 private:
  static void yield_now() noexcept;

  const std::uint32_t parties_;
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<bool> sense_{false};
};

}  // namespace smpmine
