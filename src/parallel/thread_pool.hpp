// SPMD thread pool.
//
// CCPD is an SPMD algorithm: P workers execute the same iteration body over
// different data, synchronizing at barriers. The pool keeps P-1 persistent
// workers (the calling thread is worker 0) so repeated phases don't pay
// thread spawn costs, and exposes both SPMD dispatch and a chunked
// parallel-for convenience.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "parallel/barrier.hpp"
#include "parallel/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace smpmine {

class ThreadPool {
 public:
  /// Creates a pool of `threads` workers total (including the caller).
  explicit ThreadPool(std::uint32_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::uint32_t size() const { return threads_; }

  /// Runs `body(tid)` on every worker, tid in [0, size()). Blocks until all
  /// complete. The first exception thrown by any worker is rethrown here.
  void run_spmd(const std::function<void(std::uint32_t)>& body);

  /// Chunked parallel-for over [0, n): each worker gets one contiguous
  /// block, mirroring the paper's blocked database partitioning.
  void parallel_for_blocked(std::size_t n,
                            const std::function<void(std::size_t, std::size_t,
                                                     std::uint32_t)>& body);

  /// Barrier shared by all workers of the current run_spmd call.
  Barrier& barrier() { return barrier_; }

 private:
  void worker_loop(std::uint32_t tid);
  /// Runs `job(tid)`, parking the first exception in first_error_. The job
  /// is passed in (snapshotted under mu_ by the caller) rather than read
  /// from job_, so the call itself needs no capability.
  void execute_as(const std::function<void(std::uint32_t)>& job,
                  std::uint32_t tid);

  const std::uint32_t threads_;
  Barrier barrier_;
  // lint-ok: R1 — populated in the constructor before any worker can touch
  // the pool, joined in the destructor; never mutated in between.
  std::vector<std::thread> workers_;

  // Control plane: every field below is dispatch/join state shared between
  // the master and the persistent workers, guarded by mu_. (The data plane —
  // whatever `body` touches — synchronizes via SpinLock/atomics/Barrier.)
  mutable Mutex mu_;
  std::condition_variable_any cv_start_;
  std::condition_variable_any cv_done_;
  const std::function<void(std::uint32_t)>* job_ GUARDED_BY(mu_) = nullptr;
  std::uint64_t epoch_ GUARDED_BY(mu_) = 0;
  std::uint32_t running_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::exception_ptr first_error_ GUARDED_BY(mu_);
};

}  // namespace smpmine
