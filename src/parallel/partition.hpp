// Computation-balancing partition schemes (paper Section 3.1.2).
//
// Candidate generation assigns each frequent (k-1)-itemset i of an
// equivalence class of size n the workload w_i = n - i - 1 (the number of
// join pairs it generates). The paper compares three ways of spreading that
// triangular workload over P processors — block, interleaved, and bitonic —
// and generalizes bitonic to multiple classes with a greedy max-first /
// least-loaded assignment. The same machinery balances the hash tree by
// substituting the fan-out H for P (Section 4.1).
#pragma once

#include <cstdint>
#include <vector>

namespace smpmine {

enum class PartitionScheme { Block, Interleaved, Bitonic };

const char* to_string(PartitionScheme s);

/// Result of partitioning weighted elements into `bins` groups.
struct Assignment {
  /// groups[b] lists element indices assigned to bin b.
  std::vector<std::vector<std::uint32_t>> groups;
  /// loads[b] is the total weight in bin b.
  std::vector<double> loads;

  /// max load / mean load; 1.0 is perfect balance.
  double imbalance() const;
  /// Inverse mapping: element index -> bin. Elements absent from every
  /// group map to UINT32_MAX.
  std::vector<std::uint32_t> element_to_bin(std::size_t n) const;
};

/// w_i = n - i - 1 for i in [0, n): the join workload of the i-th member of
/// a single equivalence class with n members.
std::vector<double> join_workloads(std::size_t n);

/// Contiguous blocks of ceil(n/bins) elements (paper example: loads 24/15/6).
Assignment partition_block(const std::vector<double>& weights,
                           std::uint32_t bins);

/// Round-robin by index, bin = i mod bins (paper example: 18/15/12).
Assignment partition_interleaved(const std::vector<double>& weights,
                                 std::uint32_t bins);

/// Bitonic pairing: within each consecutive group of 2*bins elements, pair
/// element j with (2*bins-1-j) — for the triangular join workload each pair
/// carries identical weight. Leftover elements (n mod 2*bins != 0) are
/// assigned greedily to the least-loaded bin, which reproduces the paper's
/// worked example A0={0,5,6}, A1={1,4,7}, A2={2,3,8,9} (loads 16/15/14).
Assignment partition_bitonic(const std::vector<double>& weights,
                             std::uint32_t bins);

/// Greedy max-first / least-loaded assignment over arbitrary weights — the
/// multiple-equivalence-class generalization of bitonic partitioning.
/// Ties go to the lowest-indexed bin so results are deterministic.
Assignment partition_greedy(const std::vector<double>& weights,
                            std::uint32_t bins);

/// Dispatch by scheme. Block/Interleaved/Bitonic as above; schemes are
/// stable for equal inputs so parallel runs are reproducible.
Assignment partition(PartitionScheme scheme, const std::vector<double>& weights,
                     std::uint32_t bins);

}  // namespace smpmine
