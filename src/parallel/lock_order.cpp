#include "parallel/lock_order.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

// The recorder is the one place in the library allowed to use a raw
// std::mutex: it must not report into itself, so it synchronizes with an
// uninstrumented primitive. (src/parallel/ is inside lint rule R2's
// allowed scope.)

namespace smpmine::lockorder {
namespace {

struct Held {
  const void* lock;
  const char* kind;
};

/// The lock chain (and thread) that first established an ordering edge —
/// the "other stack" printed when a cycle is found.
struct EdgeInfo {
  std::vector<Held> chain;  ///< held stack at creation, acquiree last
  std::size_t thread_hash;
};

struct Graph {
  // The recorder cannot use the instrumented Mutex (it would recurse into
  // itself), so this raw std::mutex carries no capability annotation and
  // the members below use lint markers instead of GUARDED_BY.
  std::mutex mu;
  /// adj[a][b] exists iff "b acquired while a held" has been observed.
  /// lint-ok: R1 — guarded by mu (std::mutex is not a Clang capability).
  std::unordered_map<const void*,
                     std::unordered_map<const void*, EdgeInfo>>
      adj;
  /// lint-ok: R1 — guarded by mu (std::mutex is not a Clang capability).
  std::uint64_t generation = 0;
};

Graph& graph() {
  static Graph g;
  return g;
}

thread_local std::vector<Held> t_held;
/// Edges this thread has already pushed into the graph: lets repeat
/// acquisitions of a known nesting skip the global mutex entirely, so the
/// steady-state checked overhead is a thread-local hash probe.
thread_local std::unordered_set<std::uint64_t> t_seen_edges;
thread_local std::uint64_t t_seen_generation = 0;

std::uint64_t edge_key(const void* from, const void* to) {
  // Mix the halves; collisions only cost a redundant trip to the graph.
  const auto a = reinterpret_cast<std::uintptr_t>(from);
  const auto b = reinterpret_cast<std::uintptr_t>(to);
  return (static_cast<std::uint64_t>(a) * 0x9e3779b97f4a7c15ULL) ^
         static_cast<std::uint64_t>(b);
}

std::size_t this_thread_hash() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

void print_chain(const char* label, const std::vector<Held>& chain) {
  std::fprintf(stderr, "  %s:\n", label);
  for (const Held& h : chain) {
    std::fprintf(stderr, "    %s @ %p\n", h.kind, h.lock);
  }
}

/// DFS: does `from` reach `target` in the edge graph? Fills `path` with the
/// node sequence (from ... target) when found. Caller holds graph().mu.
bool reaches(const Graph& g, const void* from, const void* target,
             std::vector<const void*>& path,
             std::unordered_set<const void*>& visited) {
  if (from == target) {
    path.push_back(from);
    return true;
  }
  if (!visited.insert(from).second) return false;
  const auto it = g.adj.find(from);
  if (it == g.adj.end()) return false;
  for (const auto& [next, info] : it->second) {
    if (reaches(g, next, target, path, visited)) {
      path.insert(path.begin(), from);
      return true;
    }
  }
  return false;
}

[[noreturn]] void report_cycle(Graph& g, const Held& attempt,
                               const std::vector<const void*>& path) {
  std::fprintf(stderr,
               "smpmine-checked: lock-order cycle detected acquiring %s @ %p\n",
               attempt.kind, attempt.lock);
  std::vector<Held> current = t_held;
  current.push_back(attempt);
  print_chain("this thread holds (acquisition order, attempted last)",
              current);
  // Walk the reverse path attempt ->* held-top and print the recorded chain
  // for each edge: together they are the other order's lock chain(s).
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto it = g.adj.find(path[i]);
    if (it == g.adj.end()) continue;
    const auto eit = it->second.find(path[i + 1]);
    if (eit == it->second.end()) continue;
    std::fprintf(stderr,
                 "  conflicting order %p -> %p first recorded on thread "
                 "%#zx:\n",
                 path[i], path[i + 1], eit->second.thread_hash);
    print_chain("recorded chain (acquisition order)", eit->second.chain);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void on_acquire(const void* lock, const char* kind, bool is_try) noexcept {
  for (const Held& h : t_held) {
    if (h.lock == lock) {
      std::fprintf(stderr,
                   "smpmine-checked: lock-order cycle detected: thread "
                   "re-acquired %s @ %p it already holds (self-deadlock on a "
                   "non-reentrant lock)\n",
                   kind, lock);
      print_chain("this thread holds (acquisition order)", t_held);
      std::fflush(stderr);
      std::abort();
    }
  }

  const Held attempt{lock, kind};
  if (!t_held.empty() && !is_try) {
    Graph& g = graph();
    const void* from = t_held.back().lock;
    const std::uint64_t key = edge_key(from, lock);
    bool known = false;
    {
      // Generation check: reset_for_test() invalidates cached edge sets.
      std::lock_guard<std::mutex> guard(g.mu);
      if (t_seen_generation != g.generation) {
        t_seen_edges.clear();
        t_seen_generation = g.generation;
      }
      known = t_seen_edges.count(key) != 0;
      if (!known) {
        auto& edges = g.adj[from];
        if (edges.find(lock) == edges.end()) {
          // New edge from -> lock: a cycle exists iff lock already reaches
          // from through previously recorded orders.
          std::vector<const void*> path;
          std::unordered_set<const void*> visited;
          if (reaches(g, lock, from, path, visited)) {
            report_cycle(g, attempt, path);
          }
          std::vector<Held> chain = t_held;
          chain.push_back(attempt);
          edges.emplace(lock,
                        EdgeInfo{std::move(chain), this_thread_hash()});
        }
        t_seen_edges.insert(key);
      }
    }
  }
  t_held.push_back(attempt);
}

void on_release(const void* lock) noexcept {
  for (std::size_t i = t_held.size(); i-- > 0;) {
    if (t_held[i].lock == lock) {
      t_held.erase(t_held.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
  // Releasing a lock the recorder never saw acquired: tolerated (a lock
  // constructed before SMPMINE_CHECKED hooks existed in this TU), ignored.
}

std::size_t held_count() noexcept { return t_held.size(); }

std::size_t edge_count() noexcept {
  Graph& g = graph();
  std::lock_guard<std::mutex> guard(g.mu);
  std::size_t n = 0;
  for (const auto& [from, edges] : g.adj) n += edges.size();
  return n;
}

void reset_for_test() noexcept {
  Graph& g = graph();
  std::lock_guard<std::mutex> guard(g.mu);
  g.adj.clear();
  ++g.generation;
  t_held.clear();
  t_seen_edges.clear();
  t_seen_generation = g.generation;
}

}  // namespace smpmine::lockorder
