#include "parallel/lock_order.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include "obs/flight/flight_recorder.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

// The recorder is the one place in the library allowed to use a raw
// std::mutex: it must not report into itself, so it synchronizes with an
// uninstrumented primitive. (src/parallel/ is inside lint rule R2's
// allowed scope.)

namespace smpmine::lockorder {
namespace {

struct Held {
  const void* lock;
  const char* kind;
};

/// The lock chain (and thread) that first established an ordering edge —
/// the "other stack" printed when a cycle is found. Symbolic names are
/// resolved and frozen at creation time: arena address reuse can later
/// place a *different* named lock on a dead edge endpoint's address, and a
/// dump-time lookup would silently relabel the edge (e.g. a recorded
/// HTNode::lock -> Region::mu_ masquerading as FrozenTree::locks_ ->
/// Region::mu_ once a frozen counter-lock array lands on the node's old
/// address). Locks register their names at construction, before any
/// acquisition, so creation-time resolution sees the live identity.
struct EdgeInfo {
  std::vector<Held> chain;  ///< held stack at creation, acquiree last
  std::size_t thread_hash;
  const char* from_name;  ///< symbolic name at creation, or nullptr
  const char* to_name;    ///< symbolic name at creation, or nullptr
};

struct Graph {
  // The recorder cannot use the instrumented Mutex (it would recurse into
  // itself), so this raw std::mutex carries no capability annotation and
  // the members below use lint markers instead of GUARDED_BY.
  std::mutex mu;
  /// adj[a][b] exists iff "b acquired while a held" has been observed.
  /// lint-ok: R1 — guarded by mu (std::mutex is not a Clang capability).
  std::unordered_map<const void*,
                     std::unordered_map<const void*, EdgeInfo>>
      adj;
  /// Symbolic names registered via set_name (string literals, not owned).
  /// lint-ok: R1 — guarded by mu (std::mutex is not a Clang capability).
  std::unordered_map<const void*, const char*> names;
  /// lint-ok: R1 — guarded by mu (std::mutex is not a Clang capability).
  std::uint64_t generation = 0;
};

Graph& graph() {
  // Intentionally leaked: the graph is constructed on the first acquisition,
  // which happens AFTER the static-init-time atexit(dump_at_exit)
  // registration below — so a function-local `static Graph` would be
  // destroyed (in reverse construction order) before the exit-time dump
  // reads it, and every SMPMINE_LOCK_ORDER_DUMP file would come out empty.
  // Leaking also keeps late acquisitions during static destruction safe.
  static Graph* g = new Graph;
  return *g;
}

thread_local std::vector<Held> t_held;
/// Edges this thread has already pushed into the graph: lets repeat
/// acquisitions of a known nesting skip the global mutex entirely, so the
/// steady-state checked overhead is a thread-local hash probe.
thread_local std::unordered_set<std::uint64_t> t_seen_edges;
thread_local std::uint64_t t_seen_generation = 0;

std::uint64_t edge_key(const void* from, const void* to) {
  // Mix the halves; collisions only cost a redundant trip to the graph.
  const auto a = reinterpret_cast<std::uintptr_t>(from);
  const auto b = reinterpret_cast<std::uintptr_t>(to);
  return (static_cast<std::uint64_t>(a) * 0x9e3779b97f4a7c15ULL) ^
         static_cast<std::uint64_t>(b);
}

std::size_t this_thread_hash() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

void print_chain(const char* label, const std::vector<Held>& chain) {
  std::fprintf(stderr, "  %s:\n", label);
  for (const Held& h : chain) {
    std::fprintf(stderr, "    %s @ %p\n", h.kind, h.lock);
  }
}

/// DFS: does `from` reach `target` in the edge graph? Fills `path` with the
/// node sequence (from ... target) when found. Caller holds graph().mu.
bool reaches(const Graph& g, const void* from, const void* target,
             std::vector<const void*>& path,
             std::unordered_set<const void*>& visited) {
  if (from == target) {
    path.push_back(from);
    return true;
  }
  if (!visited.insert(from).second) return false;
  const auto it = g.adj.find(from);
  if (it == g.adj.end()) return false;
  for (const auto& [next, info] : it->second) {
    if (reaches(g, next, target, path, visited)) {
      path.insert(path.begin(), from);
      return true;
    }
  }
  return false;
}

[[noreturn]] void report_cycle(Graph& g, const Held& attempt,
                               const std::vector<const void*>& path) {
  std::fprintf(stderr,
               "smpmine-checked: lock-order cycle detected acquiring %s @ %p\n",
               attempt.kind, attempt.lock);
  std::vector<Held> current = t_held;
  current.push_back(attempt);
  print_chain("this thread holds (acquisition order, attempted last)",
              current);
  // Walk the reverse path attempt ->* held-top and print the recorded chain
  // for each edge: together they are the other order's lock chain(s).
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto it = g.adj.find(path[i]);
    if (it == g.adj.end()) continue;
    const auto eit = it->second.find(path[i + 1]);
    if (eit == it->second.end()) continue;
    std::fprintf(stderr,
                 "  conflicting order %p -> %p first recorded on thread "
                 "%#zx:\n",
                 path[i], path[i + 1], eit->second.thread_hash);
    print_chain("recorded chain (acquisition order)", eit->second.chain);
  }
  std::fflush(stderr);
  std::abort();
}

/// Minimal JSON string escape for lock names/kinds (string literals we
/// control, so backslash/quote coverage is plenty).
void json_escape_into(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
}

/// Resolves an address to its symbolic name, falling back to the lock's
/// kind string ("SpinLock"/"Mutex") for unnamed locks. Caller holds
/// graph().mu; `kinds` is the address->kind map rebuilt from edge chains.
const char* node_name(const Graph& g,
                      const std::unordered_map<const void*, const char*>& kinds,
                      const void* lock) {
  const auto nit = g.names.find(lock);
  if (nit != g.names.end()) return nit->second;
  const auto kit = kinds.find(lock);
  return kit != kinds.end() ? kit->second : "Anon";
}

/// Exit-time dump: registered once at static-init time so every checked
/// process honors SMPMINE_LOCK_ORDER_DUMP without opt-in code in main().
void dump_at_exit() {
  const char* path = std::getenv("SMPMINE_LOCK_ORDER_DUMP");
  if (path != nullptr && *path != '\0') dump(path);
}

struct DumpAtExitRegistrar {
  DumpAtExitRegistrar() {
    if (std::getenv("SMPMINE_LOCK_ORDER_DUMP") != nullptr) {
      std::atexit(dump_at_exit);
    }
  }
};
DumpAtExitRegistrar dump_registrar;

}  // namespace

void on_acquire(const void* lock, const char* kind, bool is_try) noexcept {
  for (const Held& h : t_held) {
    if (h.lock == lock) {
      std::fprintf(stderr,
                   "smpmine-checked: lock-order cycle detected: thread "
                   "re-acquired %s @ %p it already holds (self-deadlock on a "
                   "non-reentrant lock)\n",
                   kind, lock);
      print_chain("this thread holds (acquisition order)", t_held);
      std::fflush(stderr);
      std::abort();
    }
  }

  const Held attempt{lock, kind};
  if (!t_held.empty() && !is_try) {
    Graph& g = graph();
    const void* from = t_held.back().lock;
    const std::uint64_t key = edge_key(from, lock);
    bool known = false;
    {
      // Generation check: reset_for_test() invalidates cached edge sets.
      std::lock_guard<std::mutex> guard(g.mu);
      if (t_seen_generation != g.generation) {
        t_seen_edges.clear();
        t_seen_generation = g.generation;
      }
      known = t_seen_edges.count(key) != 0;
      if (!known) {
        auto& edges = g.adj[from];
        if (edges.find(lock) == edges.end()) {
          // New edge from -> lock: a cycle exists iff lock already reaches
          // from through previously recorded orders.
          std::vector<const void*> path;
          std::unordered_set<const void*> visited;
          if (reaches(g, lock, from, path, visited)) {
            report_cycle(g, attempt, path);
          }
          std::vector<Held> chain = t_held;
          chain.push_back(attempt);
          const auto name_of = [&g](const void* l) -> const char* {
            const auto nit = g.names.find(l);
            return nit != g.names.end() ? nit->second : nullptr;
          };
          edges.emplace(lock,
                        EdgeInfo{std::move(chain), this_thread_hash(),
                                 name_of(from), name_of(lock)});
        }
        t_seen_edges.insert(key);
      }
    }
  }
  t_held.push_back(attempt);
  // Mirror into the flight recorder's signal-visible held stack, so crash
  // dumps show what each thread held without touching the graph mutex.
  obs::flight::lock_acquired(lock, kind);
}

void on_release(const void* lock) noexcept {
  obs::flight::lock_released(lock);
  for (std::size_t i = t_held.size(); i-- > 0;) {
    if (t_held[i].lock == lock) {
      t_held.erase(t_held.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
  // Releasing a lock the recorder never saw acquired: tolerated (a lock
  // constructed before SMPMINE_CHECKED hooks existed in this TU), ignored.
}

void set_name(const void* lock, const char* name) noexcept {
  Graph& g = graph();
  {
    std::lock_guard<std::mutex> guard(g.mu);
    g.names[lock] = name;
  }
  // Mirror into the flight recorder's lock-free table: crash dumps resolve
  // held-lock addresses to these names from signal context.
  obs::flight::register_lock_name(lock, name);
}

bool dump(const char* path) noexcept {
  try {
    Graph& g = graph();
    std::lock_guard<std::mutex> guard(g.mu);

    // Address -> kind, recovered from the recorded chains (the graph itself
    // keys on addresses only).
    std::unordered_map<const void*, const char*> kinds;
    for (const auto& [from, edges] : g.adj) {
      for (const auto& [to, info] : edges) {
        for (const Held& h : info.chain) kinds[h.lock] = h.kind;
      }
    }

    // Collapse address-level edges to name-level edges, preferring the
    // names frozen into each EdgeInfo at creation (see the EdgeInfo
    // comment: dump-time lookup would mislabel edges whose endpoint
    // addresses were reused by a later named lock). std::map keeps the
    // output deterministic given the same edge set.
    std::map<std::pair<std::string, std::string>, std::uint64_t> name_edges;
    std::map<std::string, const char*> nodes;  // name -> kind
    for (const auto& [from, edges] : g.adj) {
      for (const auto& [to, info] : edges) {
        const char* from_name = info.from_name != nullptr
                                    ? info.from_name
                                    : node_name(g, kinds, from);
        const char* to_name = info.to_name != nullptr
                                  ? info.to_name
                                  : node_name(g, kinds, to);
        ++name_edges[{from_name, to_name}];
        const auto kit_from = kinds.find(from);
        const auto kit_to = kinds.find(to);
        nodes.emplace(from_name,
                      kit_from != kinds.end() ? kit_from->second : "?");
        nodes.emplace(to_name, kit_to != kinds.end() ? kit_to->second : "?");
      }
    }

    // Resolve "path is a directory" (or trailing '/') to a per-pid file so
    // a parallel ctest run can aim every test process at one merge dir.
    std::string out_path = path;
    struct stat st {};
    const bool is_dir =
        (!out_path.empty() && out_path.back() == '/') ||
        (::stat(out_path.c_str(), &st) == 0 && S_ISDIR(st.st_mode));
    if (is_dir) {
      if (out_path.back() != '/') out_path.push_back('/');
      out_path += "lock_order." + std::to_string(::getpid()) + ".json";
    }

    std::string json;
    json.reserve(256 + 64 * name_edges.size());
    json += "{\n  \"schema\": \"smpmine.lock_order.runtime.v1\",\n";
    json += "  \"pid\": " + std::to_string(::getpid()) + ",\n";
    json += "  \"nodes\": [\n";
    bool first = true;
    for (const auto& [name, kind] : nodes) {
      json += first ? "    " : ",\n    ";
      first = false;
      json += "{\"name\": \"";
      json_escape_into(json, name.c_str());
      json += "\", \"kind\": \"";
      json_escape_into(json, kind);
      json += "\"}";
    }
    json += "\n  ],\n  \"edges\": [\n";
    first = true;
    for (const auto& [pair, count] : name_edges) {
      json += first ? "    " : ",\n    ";
      first = false;
      json += "{\"from\": \"";
      json_escape_into(json, pair.first.c_str());
      json += "\", \"to\": \"";
      json_escape_into(json, pair.second.c_str());
      json += "\", \"count\": " + std::to_string(count) + "}";
    }
    json += "\n  ]\n}\n";

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr,
                   "smpmine-checked: cannot open lock-order dump '%s'\n",
                   out_path.c_str());
      return false;
    }
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    std::fclose(f);
    return ok;
  } catch (...) {
    return false;  // dump is best-effort diagnostics; never take down exit
  }
}

std::size_t held_count() noexcept { return t_held.size(); }

std::size_t edge_count() noexcept {
  Graph& g = graph();
  std::lock_guard<std::mutex> guard(g.mu);
  std::size_t n = 0;
  for (const auto& [from, edges] : g.adj) n += edges.size();
  return n;
}

void reset_for_test() noexcept {
  Graph& g = graph();
  std::lock_guard<std::mutex> guard(g.mu);
  g.adj.clear();
  g.names.clear();
  ++g.generation;
  t_held.clear();
  t_seen_edges.clear();
  t_seen_generation = g.generation;
}

}  // namespace smpmine::lockorder
