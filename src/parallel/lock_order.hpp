// Runtime lock-acquisition-order recorder (SMPMINE_CHECKED builds).
//
// Clang's static thread-safety analysis proves "this field is touched under
// its lock" but says nothing about the *order* locks nest in, and the
// fine-grained design here — a SpinLock embedded in every hash-tree node,
// per-candidate counter locks, arena locks taken during leaf conversion —
// is exactly the shape where an innocent refactor introduces an ABBA
// deadlock that only a 64-thread run on a loaded machine ever hits.
//
// Under the `checked` preset (SMPMINE_CHECKED_ENABLED=1) every SpinLock and
// Mutex acquisition/release reports here. The recorder keeps
//   - a per-thread stack of currently-held locks, and
//   - a process-wide directed graph with an edge A -> B for every observed
//     "B acquired while A was the most recently acquired held lock",
//     remembering the full lock chain and thread that first created the edge.
// Before a new edge A -> B is added it checks whether B already reaches A;
// if so the program has used the two orders AB and BA, and the recorder
// aborts printing BOTH lock chains — the current thread's and the recorded
// chain that established the reverse path. Re-acquiring a lock this thread
// already holds (self-deadlock for these non-reentrant primitives) aborts
// the same way. try_lock acquisitions push onto the held stack (they order
// *later* acquisitions) but never create edges themselves: a failed
// try_lock backs off instead of blocking, so it cannot deadlock.
//
// Known limits, by design: lock identity is the address, so memory reuse
// across Region::reset() can alias two generations of tree-node locks (in
// this codebase node locks only ever precede arena locks, so aliasing
// cannot fabricate a cycle); and the graph only grows — a checked run's
// memory is proportional to the number of distinct nesting pairs. The
// JSON dump is immune to one aliasing symptom: symbolic names are frozen
// into each edge when it is first recorded, so a later lock registering a
// name over a reused address cannot relabel old edges.
//
// Symbolic names and the JSON dump: addresses are meaningless across runs,
// so long-lived locks register a stable symbolic name ("Region::mu_",
// "HTNode::lock") via SMPMINE_LOCK_NAME at construction. When the
// environment variable SMPMINE_LOCK_ORDER_DUMP is set in a checked build,
// the recorder writes the acquisition graph as JSON at process exit, with
// address-level edges collapsed to name-level edges (unnamed locks fall
// back to their kind string). If the value names a directory (or ends in
// '/'), each process writes `lock_order.<pid>.json` inside it so a whole
// ctest run can feed one merge; otherwise the value is the output file.
// tools/analyze/smpmine_analyze.py merges these runtime graphs with the
// statically extracted acquisition graph and gates on cycles in the union.
//
// With SMPMINE_CHECKED_ENABLED=0 the hook macros are `((void)0)`: zero
// code, zero data on every lock operation.
#pragma once

#include <cstddef>

#ifndef SMPMINE_CHECKED_ENABLED
#define SMPMINE_CHECKED_ENABLED 0
#endif

namespace smpmine::lockorder {

/// Records a successful acquisition by the calling thread. `kind` must be a
/// string literal ("SpinLock", "Mutex"); `is_try` marks try_lock successes,
/// which are pushed but create no ordering edges. Aborts (after printing
/// both chains) on a cycle or a same-thread re-acquisition.
void on_acquire(const void* lock, const char* kind, bool is_try) noexcept;

/// Records a release by the calling thread (LIFO expected, out-of-order
/// tolerated).
void on_release(const void* lock) noexcept;

/// Registers a stable symbolic name for a lock address ("Region::mu_",
/// "HTNode::lock"). `name` must be a string literal (static storage); the
/// registry keeps the pointer, not a copy. Re-registration (e.g. arena
/// memory reuse placing a new node lock at an old address) overwrites —
/// last writer wins, which matches the liveness of the address.
void set_name(const void* lock, const char* name) noexcept;

/// Writes the acquisition graph recorded so far as JSON to `path`
/// (name-level nodes and edges; see the header comment for the schema).
/// Returns false when the file cannot be opened. Safe to call at any time;
/// the exit-time dump triggered by SMPMINE_LOCK_ORDER_DUMP uses this.
bool dump(const char* path) noexcept;

/// Locks the calling thread currently holds (test hook).
std::size_t held_count() noexcept;

/// Distinct ordering edges recorded so far (test hook).
std::size_t edge_count() noexcept;

/// Drops the global graph and this thread's stack. Callers must be
/// single-threaded with respect to lock activity (tests only). Other
/// threads' cached edge sets are invalidated via a generation counter.
void reset_for_test() noexcept;

}  // namespace smpmine::lockorder

#if SMPMINE_CHECKED_ENABLED
#define SMPMINE_LOCK_ACQUIRED(lock, kind) \
  ::smpmine::lockorder::on_acquire((lock), (kind), false)
#define SMPMINE_LOCK_TRY_ACQUIRED(lock, kind) \
  ::smpmine::lockorder::on_acquire((lock), (kind), true)
#define SMPMINE_LOCK_RELEASED(lock) ::smpmine::lockorder::on_release((lock))
#define SMPMINE_LOCK_NAME(lock, name) \
  ::smpmine::lockorder::set_name((lock), (name))
#else
#define SMPMINE_LOCK_ACQUIRED(lock, kind) ((void)0)
#define SMPMINE_LOCK_TRY_ACQUIRED(lock, kind) ((void)0)
#define SMPMINE_LOCK_RELEASED(lock) ((void)0)
#define SMPMINE_LOCK_NAME(lock, name) ((void)0)
#endif
