// Spinlocks for fine-grained hash-tree synchronization.
//
// The paper guards every hash-tree node with a lock during the parallel
// build, and (in non-privatized counter modes) each support counter with a
// lock. Those critical sections are a handful of instructions, so a TTAS
// spinlock with exponential backoff is the right primitive — a futex-based
// mutex would dominate the cost being measured.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/types.hpp"

namespace smpmine {

/// Test-and-test-and-set spinlock with bounded exponential backoff.
/// sizeof == 1 so it can be embedded inline in tree nodes (which is exactly
/// the false-sharing hazard Section 5.2 studies).
class SpinLock {
 public:
  void lock() noexcept {
    std::uint32_t backoff = 1;
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      // Test loop: spin on a plain load so the line stays shared until free.
      while (flag_.load(std::memory_order_relaxed)) {
        for (std::uint32_t i = 0; i < backoff; ++i) cpu_relax();
        if (backoff < 1024) backoff <<= 1;
      }
    }
  }

  bool try_lock() noexcept {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  static void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }

  std::atomic<bool> flag_{false};
};

/// SpinLock padded out to a full cache line — the "padding and aligning"
/// false-sharing remedy the paper evaluates (and rejects for candidate
/// counters because of the space cost; it remains right for a handful of
/// global locks).
struct alignas(kCacheLine) PaddedSpinLock {
  SpinLock lock;
  char pad[kCacheLine - sizeof(SpinLock)];
};

}  // namespace smpmine
