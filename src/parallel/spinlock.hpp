// Spinlocks for fine-grained hash-tree synchronization.
//
// The paper guards every hash-tree node with a lock during the parallel
// build, and (in non-privatized counter modes) each support counter with a
// lock. Those critical sections are a handful of instructions, so a TTAS
// spinlock with exponential backoff is the right primitive — a futex-based
// mutex would dominate the cost being measured.
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/ledger/ledger_hooks.hpp"
#include "obs/trace.hpp"
#include "parallel/lock_order.hpp"
#include "util/thread_annotations.hpp"
#include "util/types.hpp"

namespace smpmine {

/// Test-and-test-and-set spinlock with bounded exponential backoff.
/// sizeof == 1 so it can be embedded inline in tree nodes (which is exactly
/// the false-sharing hazard Section 5.2 studies).
///
/// Annotated as a Clang capability: under the `tidy` preset, reads/writes of
/// GUARDED_BY(lock) state without lock() held are compile errors.
///
/// Trace builds (SMPMINE_TRACING, the default) count contended
/// acquisitions and test-loop rounds into the metrics registry — the
/// direct measurement of the CCPD shared-tree locking cost. The counters
/// live off-lock (process-global), so sizeof stays 1 and the uncontended
/// fast path is untouched; SMPMINE_TRACING=OFF compiles the accounting out
/// entirely.
///
/// Checked builds (SMPMINE_CHECKED, see lock_order.hpp) additionally
/// report every acquire/release to the lock-order recorder, which aborts
/// on a cyclic acquisition order; the hooks are ((void)0) otherwise.
class CAPABILITY("spinlock") SpinLock {
 public:
  /// Upper bound on the exponential backoff (cpu_relax() reps per round).
  static constexpr std::uint32_t kMaxBackoff = 1024;

  void lock() noexcept ACQUIRE() {
    std::uint32_t backoff = 1;
#if SMPMINE_TRACING_ENABLED
    std::uint64_t spin_rounds = 0;
    std::uint64_t wait_start_ns = 0;
#endif
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) {
#if SMPMINE_TRACING_ENABLED
        if (spin_rounds != 0) {
          obs::metric::spinlock_contended_acquires().inc();
          obs::metric::spinlock_acquire_spins().inc(spin_rounds);
          // The histogram exposes the contention *tail* (p99 spin rounds)
          // that the sum-counter above averages away; the counter stays for
          // manifest compatibility.
          obs::metric::spinlock_spin_rounds().record(spin_rounds);
          // Contention loss in *time*, attributed to the waiter's current
          // phase — what the efficiency decomposition charges as
          // contention_loss. Contended path only; the uncontended acquire
          // stays clock-free. (wait_clock_ns, not obs::now_ns: keeps this
          // header off the Tracer so link-minimal tools stay minimal.)
          obs::ledger::add_lock_wait(obs::ledger::wait_clock_ns() -
                                     wait_start_ns);
        }
#endif
        SMPMINE_LOCK_ACQUIRED(this, "SpinLock");
        return;
      }
#if SMPMINE_TRACING_ENABLED
      if (wait_start_ns == 0) wait_start_ns = obs::ledger::wait_clock_ns();
#endif
      // relaxed-ok: test loop — spin on a plain load so the cache line stays
      // shared until free; the acquire exchange above provides the ordering.
      while (flag_.load(std::memory_order_relaxed)) {
        for (std::uint32_t i = 0; i < backoff; ++i) cpu_relax();
#if SMPMINE_TRACING_ENABLED
        ++spin_rounds;
#endif
        if (backoff < kMaxBackoff) backoff <<= 1;
      }
    }
  }

  /// Single-shot acquire attempt: never spins, never backs off. On a held
  /// lock the first relaxed load fails and we return false immediately —
  /// the exchange only runs when the lock was observed free.
  bool try_lock() noexcept TRY_ACQUIRE(true) {
    // relaxed-ok: the first load is a contention filter only; acquisition
    // ordering comes from the acquire exchange that follows.
    if (flag_.load(std::memory_order_relaxed) ||
        flag_.exchange(true, std::memory_order_acquire)) {
      return false;
    }
    SMPMINE_LOCK_TRY_ACQUIRED(this, "SpinLock");
    return true;
  }

  void unlock() noexcept RELEASE() {
    SMPMINE_LOCK_RELEASED(this);
    flag_.store(false, std::memory_order_release);
  }

 private:
  static void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }

  std::atomic<bool> flag_{false};
};

/// RAII guard for SpinLock. Functionally identical to
/// std::lock_guard<SpinLock>, but carries SCOPED_CAPABILITY so Clang's
/// thread-safety analysis sees the acquire/release (std::lock_guard is not
/// annotated and is invisible to the analysis) — use this in library code.
class SCOPED_CAPABILITY SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) noexcept ACQUIRE(lock)
      : lock_(lock) {
    lock_.lock();
  }
  ~SpinLockGuard() RELEASE() { lock_.unlock(); }

  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

/// SpinLock padded out to a full cache line — the "padding and aligning"
/// false-sharing remedy the paper evaluates (and rejects for candidate
/// counters because of the space cost; it remains right for a handful of
/// global locks). Forwarding lock/unlock make it a capability (and a
/// Lockable) in its own right.
struct alignas(kCacheLine) CAPABILITY("spinlock") PaddedSpinLock {
  SpinLock lock;
  char pad[kCacheLine - sizeof(SpinLock)];

  void lock_acquire() noexcept ACQUIRE() { lock.lock(); }
  void unlock_release() noexcept RELEASE() { lock.unlock(); }
};

}  // namespace smpmine
