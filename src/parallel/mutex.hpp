// Annotated mutex wrapper.
//
// std::mutex, std::lock_guard and std::unique_lock carry no Clang capability
// annotations, so code synchronized with them is invisible to
// -Wthread-safety. This header wraps std::mutex as a CAPABILITY and provides
// a SCOPED_CAPABILITY guard that is also BasicLockable, so it can be handed
// to std::condition_variable_any::wait. Blocking/sleeping synchronization in
// this codebase (ThreadPool control plane) uses these; the fine-grained hot
// paths use SpinLock (spinlock.hpp).
#pragma once

#include <mutex>

#include "parallel/lock_order.hpp"
#include "util/thread_annotations.hpp"

namespace smpmine {

/// std::mutex annotated as a Clang capability.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
    mu_.lock();
    SMPMINE_LOCK_ACQUIRED(this, "Mutex");
  }
  bool try_lock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    SMPMINE_LOCK_TRY_ACQUIRED(this, "Mutex");
    return true;
  }
  void unlock() RELEASE() {
    SMPMINE_LOCK_RELEASED(this);
    mu_.unlock();
  }

 private:
  std::mutex mu_;
};

/// RAII guard over Mutex. BasicLockable (lock/unlock), so a held guard can
/// be passed to std::condition_variable_any::wait — the wait's internal
/// release/reacquire happens through the guard and nets out to "still held",
/// which matches what the static analysis assumes across the call.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // For condition_variable_any::wait only; the capability state tracked by
  // the analysis is unchanged across a wait.
  void lock() NO_THREAD_SAFETY_ANALYSIS { mu_.lock(); }
  void unlock() NO_THREAD_SAFETY_ANALYSIS { mu_.unlock(); }

 private:
  Mutex& mu_;
};

}  // namespace smpmine
