// Annotated mutex wrapper.
//
// std::mutex, std::lock_guard and std::unique_lock carry no Clang capability
// annotations, so code synchronized with them is invisible to
// -Wthread-safety. This header wraps std::mutex as a CAPABILITY and provides
// a SCOPED_CAPABILITY guard that is also BasicLockable, so it can be handed
// to std::condition_variable_any::wait. Blocking/sleeping synchronization in
// this codebase (ThreadPool control plane) uses these; the fine-grained hot
// paths use SpinLock (spinlock.hpp).
#pragma once

#include <cstdint>
#include <mutex>

#include "obs/ledger/ledger_hooks.hpp"
#include "parallel/lock_order.hpp"
#include "util/thread_annotations.hpp"

// obs/trace.hpp includes this header, so its SMPMINE_TRACING_ENABLED
// default is not visible here; replicate it (builds with SMPMINE_TRACING=OFF
// define the macro globally).
#ifndef SMPMINE_TRACING_ENABLED
#define SMPMINE_TRACING_ENABLED 1
#endif

namespace smpmine {

/// std::mutex annotated as a Clang capability.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
#if SMPMINE_TRACING_ENABLED
    // Contended path only: time the blocking acquire and charge it to the
    // waiter's current phase in the efficiency ledger. add_lock_wait never
    // registers state (it reads an already-registered thread shard), so the
    // ledger's own Mutex contending here cannot recurse.
    if (!mu_.try_lock()) {
      const std::uint64_t t0 = obs::ledger::wait_clock_ns();
      mu_.lock();
      obs::ledger::add_lock_wait(obs::ledger::wait_clock_ns() - t0);
    }
#else
    mu_.lock();
#endif
    SMPMINE_LOCK_ACQUIRED(this, "Mutex");
  }
  bool try_lock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    SMPMINE_LOCK_TRY_ACQUIRED(this, "Mutex");
    return true;
  }
  void unlock() RELEASE() {
    SMPMINE_LOCK_RELEASED(this);
    mu_.unlock();
  }

 private:
  std::mutex mu_;
};

/// RAII guard over Mutex. BasicLockable (lock/unlock), so a held guard can
/// be passed to std::condition_variable_any::wait — the wait's internal
/// release/reacquire happens through the guard and nets out to "still held",
/// which matches what the static analysis assumes across the call.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // For condition_variable_any::wait only; the capability state tracked by
  // the analysis is unchanged across a wait.
  void lock() NO_THREAD_SAFETY_ANALYSIS { mu_.lock(); }
  void unlock() NO_THREAD_SAFETY_ANALYSIS { mu_.unlock(); }

 private:
  Mutex& mu_;
};

}  // namespace smpmine
