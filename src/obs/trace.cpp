#include "obs/trace.hpp"

#include <fstream>
#include <stdexcept>

#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"

namespace smpmine::obs {

namespace {

/// Per-thread cache of the registered buffer. The generation stamp lets
/// Tracer::reset() invalidate every thread's cache without touching TLS of
/// other threads: a stale generation forces re-registration.
struct TlsSlot {
  ThreadTraceBuffer* buffer = nullptr;
  std::uint64_t generation = ~std::uint64_t{0};
};

thread_local TlsSlot tls_slot;

}  // namespace

Tracer& Tracer::instance() {
  // Leaked on purpose (same reasoning as MetricsRegistry): worker threads
  // may emit during static destruction of other objects.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

ThreadTraceBuffer& Tracer::local_buffer() {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (tls_slot.buffer == nullptr || tls_slot.generation != gen) {
    MutexLock g(mu_);
    const auto track = static_cast<std::uint32_t>(tracks_.size());
    auto buffer = std::make_unique<ThreadTraceBuffer>(track, capacity_);
    tls_slot.buffer = buffer.get();
    tls_slot.generation = gen;
    tracks_.push_back(
        Track{std::move(buffer), "thread " + std::to_string(track)});
  }
  return *tls_slot.buffer;
}

void Tracer::set_thread_name(std::string name) {
  ThreadTraceBuffer& buffer = local_buffer();  // ensure registered
  MutexLock g(mu_);
  tracks_[buffer.track()].name = std::move(name);
}

void Tracer::set_capacity(std::uint32_t events_per_thread) {
  MutexLock g(mu_);
  capacity_ = events_per_thread;
}

void Tracer::reset() {
  MutexLock g(mu_);
  tracks_.clear();
  // Release pairs with the acquire in local_buffer: a thread that sees the
  // new generation cannot still use a freed buffer pointer.
  generation_.fetch_add(1, std::memory_order_release);
}

std::uint64_t Tracer::dropped_total() const {
  std::uint64_t total = 0;
  MutexLock g(mu_);
  for (const Track& t : tracks_) total += t.buffer->dropped();
  return total;
}

void Tracer::for_each_event(
    const std::function<void(std::uint32_t, std::string_view,
                             const TraceEvent&)>& fn) const {
  MutexLock g(mu_);
  for (const Track& t : tracks_) {
    const std::uint32_t n = t.buffer->size();
    for (std::uint32_t i = 0; i < n; ++i) {
      fn(t.buffer->track(), t.name, t.buffer->event(i));
    }
  }
}

namespace {

void write_event_args(JsonWriter& w, const TraceEvent& ev) {
  if (ev.arg_name == nullptr && !ev.has_perf) return;
  w.key("args").begin_object();
  if (ev.arg_name != nullptr) w.kv(ev.arg_name, ev.arg_value);
  if (ev.has_perf) {
    w.kv("ipc", static_cast<double>(ev.perf_ipc_milli) / 1e3);
    w.kv("llc_miss_rate", static_cast<double>(ev.perf_llc_miss_milli) / 1e3);
    w.kv("stall_fraction", static_cast<double>(ev.perf_stall_milli) / 1e3);
  }
  w.end_object();
}

}  // namespace

void Tracer::write_chrome_trace(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_object();
  w.key("traceEvents").begin_array();
  std::uint64_t dropped_total = 0;
  {
    MutexLock g(mu_);
    for (const Track& t : tracks_) {
      // Track naming metadata so Perfetto shows "worker 3", not "tid 3".
      w.begin_object()
          .kv("ph", "M")
          .kv("pid", 0)
          .kv("tid", t.buffer->track())
          .kv("name", "thread_name");
      w.key("args").begin_object().kv("name", t.name).end_object();
      w.end_object();

      // A truncated track must say so in the artifact itself: one instant
      // per track carrying its drop count (0 included — absence would be
      // indistinguishable from a schema that never emitted it).
      const std::uint64_t dropped = t.buffer->dropped();
      dropped_total += dropped;
      w.begin_object()
          .kv("ph", "i")
          .kv("pid", 0)
          .kv("tid", t.buffer->track())
          .kv("name", "trace.dropped")
          .kv("ts", 0.0)
          .kv("s", "t");
      w.key("args").begin_object().kv("dropped", dropped).end_object();
      w.end_object();

      const std::uint32_t n = t.buffer->size();
      for (std::uint32_t i = 0; i < n; ++i) {
        const TraceEvent& ev = t.buffer->event(i);
        w.begin_object()
            .kv("ph", ev.instant ? "i" : "X")
            .kv("pid", 0)
            .kv("tid", t.buffer->track())
            .kv("name", ev.name)
            .kv("ts", static_cast<double>(ev.start_ns) / 1e3);
        if (ev.instant) {
          w.kv("s", "t");  // instant scope: thread
        } else {
          w.kv("dur", static_cast<double>(ev.dur_ns) / 1e3);
        }
        write_event_args(w, ev);
        w.end_object();
      }
    }
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  // Process-level total so a reader need not sum the per-track instants.
  w.kv("trace_dropped_total", dropped_total);
  w.end_object();
  os << '\n';
}

void Tracer::save_chrome_trace(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("save_chrome_trace: cannot open " + path);
  }
  write_chrome_trace(os);
  if (!os) {
    throw std::runtime_error("save_chrome_trace: write failure on " + path);
  }
}

}  // namespace smpmine::obs
