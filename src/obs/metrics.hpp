// Process-wide registry of named monotonic counters and gauges.
//
// The contention the paper's optimizations attack — hash-tree lock waits in
// CCPD, barrier imbalance, spin wasted in TTAS backoff — is invisible in
// wall-clock phase times. These counters make it a number: instrumented
// call sites (spinlock.hpp, barrier.hpp, thread_pool.cpp, tree_build.cpp)
// bump process-global atomics, and the run-manifest exporter snapshots the
// registry so every CLI/bench run records its contention profile.
//
// Overhead policy: a Counter is one relaxed fetch_add on a dedicated
// atomic. Call sites cache the Counter& (the `metric::` accessors below are
// function-local statics), so the registry's mutex-protected name lookup is
// paid once per process, never on the hot path. Hot-loop call sites
// (spinlock spins, hash-tree inserts) are additionally compiled out
// entirely when SMPMINE_TRACING=OFF — see trace.hpp for the gate.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "parallel/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/types.hpp"

namespace smpmine::obs {

/// Monotonic counter. Address-stable for the life of the process once
/// registered; increments are relaxed (counters are totals, not
/// synchronization).
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    // relaxed-ok: counters are pure totals; readers sample after runs
    // quiesce (or tolerate a stale snapshot), so no ordering is needed.
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    // relaxed-ok: see inc().
    return value_.load(std::memory_order_relaxed);
  }
  // relaxed-ok: reset happens between runs, with no concurrent writers.
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-writer-wins instantaneous value (e.g. configured thread count).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    // relaxed-ok: last-writer-wins by design; the gauge carries no
    // happens-before obligation for other data.
    value_.store(v, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    // relaxed-ok: see set().
    return value_.load(std::memory_order_relaxed);
  }
  // relaxed-ok: reset happens between runs, with no concurrent writers.
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// ---------------------------------------------------------------------------
// Histograms: log2-bucketed value distributions. A sum-only counter hides
// exactly what the paper's contention story is about — a lock that spins 2
// rounds a million times and one that spins a million rounds twice have the
// same spin total but opposite remedies. Buckets make the tail a number.
// ---------------------------------------------------------------------------

/// Bucket i holds values whose bit width is i: bucket 0 is exactly {0},
/// bucket i >= 1 covers [2^(i-1), 2^i). 64-bit values need bit widths
/// 0..64, hence 65 buckets.
inline constexpr std::uint32_t kHistogramBuckets = 65;

/// Lower bound of bucket `i` (0 for the zero bucket).
constexpr std::uint64_t histogram_bucket_lo(std::uint32_t i) noexcept {
  return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}
/// Inclusive upper bound of bucket `i`.
constexpr std::uint64_t histogram_bucket_hi(std::uint32_t i) noexcept {
  return i >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << i) - 1;
}

/// One thread's private slice of a Histogram. Only the owning thread
/// records (a relaxed fetch_add on its own cache lines — no locks, no
/// cross-thread write traffic); mergers read the same atomics relaxed from
/// any thread and tolerate a momentarily stale view. Cache-line aligned so
/// two threads' shards never false-share.
class alignas(kCacheLine) HistogramShard {
 public:
  static std::uint32_t bucket_index(std::uint64_t v) noexcept {
    return static_cast<std::uint32_t>(std::bit_width(v));
  }

  void record(std::uint64_t v) noexcept {
    // relaxed-ok: shard cells are pure totals owned by one writer; readers
    // merge a snapshot and tolerate missing the most recent samples.
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    // relaxed-ok: see above.
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t bucket(std::uint32_t i) const noexcept {
    // relaxed-ok: merge-time read of a monotonic total.
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    // relaxed-ok: merge-time read of a monotonic total.
    return sum_.load(std::memory_order_relaxed);
  }
  /// Zeroes the shard in place (between runs; concurrent records may land
  /// on either side of the reset, as with Counter::reset).
  void reset() noexcept {
    for (auto& b : buckets_) {
      // relaxed-ok: reset happens between runs, no ordering needed.
      b.store(0, std::memory_order_relaxed);
    }
    // relaxed-ok: see above.
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

/// Merged view of a Histogram across all shards, as serialized into run
/// manifests. Percentiles are bucket upper bounds (conservative: the true
/// value is <= the reported one).
struct HistogramSummary {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  double mean() const noexcept {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
  /// Upper bound of the bucket containing the p-th percentile, p in [0,1].
  std::uint64_t percentile(double p) const noexcept;
  /// Upper bound of the highest non-empty bucket (0 when empty).
  std::uint64_t max_bound() const noexcept;
  /// Bucket-wise difference `*this - before` (for per-run deltas).
  HistogramSummary delta_since(const HistogramSummary& before) const noexcept;
};

/// Named distribution metric: a list of per-thread shards, merged on
/// snapshot. Address-stable for the life of the process once registered;
/// shards are never freed (threads may outlive any reset), only zeroed.
class Histogram {
 public:
  Histogram() { SMPMINE_LOCK_NAME(&mu_, "Histogram::mu_"); }

  /// Registers (once) and returns the calling thread's shard. Callers cache
  /// the result in thread_local storage (see the accessor macro below), so
  /// the registry mutex is paid once per thread, never on the record path.
  HistogramShard& local_shard() EXCLUDES(mu_);

  /// Merged view over all shards (relaxed reads; safe while recording).
  HistogramSummary snapshot() const EXCLUDES(mu_);

  /// Zeroes every shard; shard addresses (and thread caches) survive.
  void reset() EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::vector<std::unique_ptr<HistogramShard>> shards_ GUARDED_BY(mu_);
};

/// Point-in-time copy of every registered metric, name-sorted (std::map
/// iteration order), as the manifest exporter serializes it.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSummary>> histograms;
};

/// Name -> metric registry. Registration is idempotent: counter("x") always
/// returns the same Counter&. The well-known instrumentation names (below)
/// are pre-registered at construction so snapshots carry them even when the
/// instrumented paths never ran (a zero is information; a missing key is a
/// schema change).
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(std::string_view name) EXCLUDES(mu_);
  Gauge& gauge(std::string_view name) EXCLUDES(mu_);
  Histogram& histogram(std::string_view name) EXCLUDES(mu_);

  MetricsSnapshot snapshot() const EXCLUDES(mu_);

  /// Visits every registered counter under the registry mutex. The `name`
  /// pointer handed to `fn` stays valid (and address-stable) for the
  /// process lifetime: the registry is leaked and std::map nodes never
  /// move. The flight recorder uses this to snapshot counters into crash
  /// dumps (obs/flight/flight_metrics.cpp).
  void for_each_counter(
      const std::function<void(const char* name, const Counter& c)>& fn) const
      EXCLUDES(mu_);

  /// Zeroes every value; names (and addresses) persist. For tests and for
  /// benches that want per-run deltas.
  void reset_values() EXCLUDES(mu_);

 private:
  MetricsRegistry();

  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GUARDED_BY(mu_);
};

// ---------------------------------------------------------------------------
// Well-known instrumentation counters. Each accessor caches the registry
// lookup in a function-local static, so an instrumented hot path pays one
// relaxed fetch_add, nothing else.
// ---------------------------------------------------------------------------
namespace metric {

#define SMPMINE_OBS_WELL_KNOWN_COUNTER(fn, name)                     \
  inline Counter& fn() {                                             \
    static Counter& c = MetricsRegistry::instance().counter(name);   \
    return c;                                                        \
  }

/// Lock acquisitions that found the lock held (SpinLock slow path).
SMPMINE_OBS_WELL_KNOWN_COUNTER(spinlock_contended_acquires,
                               "spinlock.contended_acquires")
/// Test-loop rounds spun across all contended acquisitions.
SMPMINE_OBS_WELL_KNOWN_COUNTER(spinlock_acquire_spins,
                               "spinlock.acquire_spins")
/// Barrier arrivals that had to wait for stragglers.
SMPMINE_OBS_WELL_KNOWN_COUNTER(barrier_waits, "barrier.waits")
/// Nanoseconds spent waiting at barriers, summed over threads.
SMPMINE_OBS_WELL_KNOWN_COUNTER(barrier_wait_ns, "barrier.wait_ns")
/// yield_now() calls from oversubscribed barrier waits.
SMPMINE_OBS_WELL_KNOWN_COUNTER(barrier_yields, "barrier.yields")
/// run_spmd dispatches issued by the pool master.
SMPMINE_OBS_WELL_KNOWN_COUNTER(pool_spmd_dispatches, "pool.spmd_dispatches")
/// Per-worker task executions (threads x dispatches).
SMPMINE_OBS_WELL_KNOWN_COUNTER(pool_tasks, "pool.tasks")
/// Candidate insertions into hash trees.
SMPMINE_OBS_WELL_KNOWN_COUNTER(hashtree_inserts, "hashtree.inserts")
/// Leaf -> internal conversions during tree builds.
SMPMINE_OBS_WELL_KNOWN_COUNTER(hashtree_leaf_conversions,
                               "hashtree.leaf_conversions")
/// Pointer-tree -> frozen CSR snapshots (one per iteration per tree when
/// the flat kernel is active).
SMPMINE_OBS_WELL_KNOWN_COUNTER(flatkernel_freezes, "flatkernel.freezes")
/// Transaction tiles processed by the flat counting kernel.
SMPMINE_OBS_WELL_KNOWN_COUNTER(flatkernel_tiles, "flatkernel.tiles")
/// CSR-row software prefetches issued by the flat counting kernel.
SMPMINE_OBS_WELL_KNOWN_COUNTER(flatkernel_prefetches,
                               "flatkernel.prefetches")
/// Vertical tid-bitmap index builds (one per vertical-kernel iteration per
/// arena bundle).
SMPMINE_OBS_WELL_KNOWN_COUNTER(vertkernel_builds, "vertkernel.builds")
/// Bitmap rows allocated across vertical index builds (one per tracked
/// frequent item).
SMPMINE_OBS_WELL_KNOWN_COUNTER(vertkernel_rows, "vertkernel.rows")
/// u64 words allocated across vertical index builds (rows x words).
SMPMINE_OBS_WELL_KNOWN_COUNTER(vertkernel_row_words, "vertkernel.row_words")
/// Candidate slots counted by the vertical AND+popcount kernel.
SMPMINE_OBS_WELL_KNOWN_COUNTER(vertkernel_slots, "vertkernel.slots")
/// Trace events discarded because a thread buffer filled up.
SMPMINE_OBS_WELL_KNOWN_COUNTER(trace_dropped_events, "trace.dropped_events")

#undef SMPMINE_OBS_WELL_KNOWN_COUNTER

// Histogram accessors return the calling thread's shard directly: the
// registry lookup is a function-local static (once per process) and the
// shard registration a function-local thread_local (once per thread), so a
// hot-path record() is a relaxed fetch_add on thread-private cache lines.
#define SMPMINE_OBS_WELL_KNOWN_HISTOGRAM(fn, name)                      \
  inline HistogramShard& fn() {                                         \
    static Histogram& h = MetricsRegistry::instance().histogram(name);  \
    thread_local HistogramShard& shard = h.local_shard();               \
    return shard;                                                       \
  }

/// Spin-round distribution of contended SpinLock acquisitions (the tail
/// the spinlock.acquire_spins sum cannot show).
SMPMINE_OBS_WELL_KNOWN_HISTOGRAM(spinlock_spin_rounds,
                                 "spinlock.spin_rounds")
/// Wall nanoseconds per flat-kernel transaction tile.
SMPMINE_OBS_WELL_KNOWN_HISTOGRAM(flatkernel_tile_ns, "flatkernel.tile_ns")
/// Wall nanoseconds per vertical-kernel candidate slot (AND+popcount over
/// the slot's k rows).
SMPMINE_OBS_WELL_KNOWN_HISTOGRAM(vertkernel_slot_ns, "vertkernel.slot_ns")

#undef SMPMINE_OBS_WELL_KNOWN_HISTOGRAM

}  // namespace metric

}  // namespace smpmine::obs
