// Process-wide registry of named monotonic counters and gauges.
//
// The contention the paper's optimizations attack — hash-tree lock waits in
// CCPD, barrier imbalance, spin wasted in TTAS backoff — is invisible in
// wall-clock phase times. These counters make it a number: instrumented
// call sites (spinlock.hpp, barrier.hpp, thread_pool.cpp, tree_build.cpp)
// bump process-global atomics, and the run-manifest exporter snapshots the
// registry so every CLI/bench run records its contention profile.
//
// Overhead policy: a Counter is one relaxed fetch_add on a dedicated
// atomic. Call sites cache the Counter& (the `metric::` accessors below are
// function-local statics), so the registry's mutex-protected name lookup is
// paid once per process, never on the hot path. Hot-loop call sites
// (spinlock spins, hash-tree inserts) are additionally compiled out
// entirely when SMPMINE_TRACING=OFF — see trace.hpp for the gate.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "parallel/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace smpmine::obs {

/// Monotonic counter. Address-stable for the life of the process once
/// registered; increments are relaxed (counters are totals, not
/// synchronization).
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    // relaxed-ok: counters are pure totals; readers sample after runs
    // quiesce (or tolerate a stale snapshot), so no ordering is needed.
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    // relaxed-ok: see inc().
    return value_.load(std::memory_order_relaxed);
  }
  // relaxed-ok: reset happens between runs, with no concurrent writers.
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-writer-wins instantaneous value (e.g. configured thread count).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    // relaxed-ok: last-writer-wins by design; the gauge carries no
    // happens-before obligation for other data.
    value_.store(v, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    // relaxed-ok: see set().
    return value_.load(std::memory_order_relaxed);
  }
  // relaxed-ok: reset happens between runs, with no concurrent writers.
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Point-in-time copy of every registered metric, name-sorted (std::map
/// iteration order), as the manifest exporter serializes it.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
};

/// Name -> metric registry. Registration is idempotent: counter("x") always
/// returns the same Counter&. The well-known instrumentation names (below)
/// are pre-registered at construction so snapshots carry them even when the
/// instrumented paths never ran (a zero is information; a missing key is a
/// schema change).
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(std::string_view name) EXCLUDES(mu_);
  Gauge& gauge(std::string_view name) EXCLUDES(mu_);

  MetricsSnapshot snapshot() const EXCLUDES(mu_);

  /// Zeroes every value; names (and addresses) persist. For tests and for
  /// benches that want per-run deltas.
  void reset_values() EXCLUDES(mu_);

 private:
  MetricsRegistry();

  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GUARDED_BY(mu_);
};

// ---------------------------------------------------------------------------
// Well-known instrumentation counters. Each accessor caches the registry
// lookup in a function-local static, so an instrumented hot path pays one
// relaxed fetch_add, nothing else.
// ---------------------------------------------------------------------------
namespace metric {

#define SMPMINE_OBS_WELL_KNOWN_COUNTER(fn, name)                     \
  inline Counter& fn() {                                             \
    static Counter& c = MetricsRegistry::instance().counter(name);   \
    return c;                                                        \
  }

/// Lock acquisitions that found the lock held (SpinLock slow path).
SMPMINE_OBS_WELL_KNOWN_COUNTER(spinlock_contended_acquires,
                               "spinlock.contended_acquires")
/// Test-loop rounds spun across all contended acquisitions.
SMPMINE_OBS_WELL_KNOWN_COUNTER(spinlock_acquire_spins,
                               "spinlock.acquire_spins")
/// Barrier arrivals that had to wait for stragglers.
SMPMINE_OBS_WELL_KNOWN_COUNTER(barrier_waits, "barrier.waits")
/// Nanoseconds spent waiting at barriers, summed over threads.
SMPMINE_OBS_WELL_KNOWN_COUNTER(barrier_wait_ns, "barrier.wait_ns")
/// yield_now() calls from oversubscribed barrier waits.
SMPMINE_OBS_WELL_KNOWN_COUNTER(barrier_yields, "barrier.yields")
/// run_spmd dispatches issued by the pool master.
SMPMINE_OBS_WELL_KNOWN_COUNTER(pool_spmd_dispatches, "pool.spmd_dispatches")
/// Per-worker task executions (threads x dispatches).
SMPMINE_OBS_WELL_KNOWN_COUNTER(pool_tasks, "pool.tasks")
/// Candidate insertions into hash trees.
SMPMINE_OBS_WELL_KNOWN_COUNTER(hashtree_inserts, "hashtree.inserts")
/// Leaf -> internal conversions during tree builds.
SMPMINE_OBS_WELL_KNOWN_COUNTER(hashtree_leaf_conversions,
                               "hashtree.leaf_conversions")
/// Pointer-tree -> frozen CSR snapshots (one per iteration per tree when
/// the flat kernel is active).
SMPMINE_OBS_WELL_KNOWN_COUNTER(flatkernel_freezes, "flatkernel.freezes")
/// Transaction tiles processed by the flat counting kernel.
SMPMINE_OBS_WELL_KNOWN_COUNTER(flatkernel_tiles, "flatkernel.tiles")
/// CSR-row software prefetches issued by the flat counting kernel.
SMPMINE_OBS_WELL_KNOWN_COUNTER(flatkernel_prefetches,
                               "flatkernel.prefetches")
/// Trace events discarded because a thread buffer filled up.
SMPMINE_OBS_WELL_KNOWN_COUNTER(trace_dropped_events, "trace.dropped_events")

#undef SMPMINE_OBS_WELL_KNOWN_COUNTER

}  // namespace metric

}  // namespace smpmine::obs
