// Low-overhead thread-local event tracer with Chrome trace-event export.
//
// The paper's figures are all statements about *where time goes inside an
// iteration* — candidate-generation imbalance (Fig 8), lock contention on
// the shared CCPD tree, barrier waits, placement effects (Figs 12-13). The
// tracer records exactly that: per-thread begin/end spans around each
// phase (candgen / remap / count / reduce / select, the IterationStats
// names) plus instant events, and exports one Chrome trace-event track per
// worker thread, loadable in Perfetto or chrome://tracing.
//
// Design for overhead:
//  - Events land in a fixed-capacity per-thread buffer owned by the
//    calling thread: emission is one array write plus a release store of
//    the size — no locks, no allocation, no cross-thread traffic. A full
//    buffer drops (and counts) new events rather than overwriting, which
//    keeps the exporter race-free against live emitters.
//  - Every macro first checks Tracer::enabled(), a single relaxed atomic
//    load, so an untraced run pays one predictable branch per site.
//  - With SMPMINE_TRACING=OFF (CMake option -> SMPMINE_TRACING_ENABLED=0)
//    the macros — and the lock/tree instrumentation gated on the same
//    define — compile to `((void)0)`: zero code, zero data, verified by
//    tests/negative/tracing_off_noop.cpp.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/flight/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "parallel/mutex.hpp"
#include "util/thread_annotations.hpp"

#ifndef SMPMINE_TRACING_ENABLED
#define SMPMINE_TRACING_ENABLED 1
#endif

namespace smpmine::obs {

/// True when the trace macros compile to real instrumentation.
inline constexpr bool kTraceCompiled = SMPMINE_TRACING_ENABLED != 0;

/// One recorded event. `name` and `arg_name` must be pointers to static
/// storage (string literals at the instrumentation sites) — the buffer
/// stores the pointers, never copies.
struct TraceEvent {
  std::uint64_t start_ns = 0;  ///< relative to the Tracer epoch
  std::uint64_t dur_ns = 0;    ///< 0 for instant events
  const char* name = nullptr;
  const char* arg_name = nullptr;  ///< nullptr when the event carries no arg
  std::uint64_t arg_value = 0;
  bool instant = false;
  /// Hardware-counter attribution from a perf phase scope (obs/perf),
  /// milli-scaled so three uint32s cover the useful ranges: IPC 0-4M,
  /// rates 0-1000. Rendered under "args" when has_perf is set.
  bool has_perf = false;
  std::uint32_t perf_ipc_milli = 0;
  std::uint32_t perf_llc_miss_milli = 0;
  std::uint32_t perf_stall_milli = 0;
};

/// Fixed-capacity single-producer event buffer. Only the owning thread
/// writes; the exporter (any thread) reads `[0, size())` after an acquire
/// load of size_, which pairs with the producer's release publish — safe
/// even while the owner keeps emitting (later events are simply not seen).
class ThreadTraceBuffer {
 public:
  ThreadTraceBuffer(std::uint32_t track, std::uint32_t capacity)
      : events_(capacity), track_(track) {}

  ThreadTraceBuffer(const ThreadTraceBuffer&) = delete;
  ThreadTraceBuffer& operator=(const ThreadTraceBuffer&) = delete;

  /// Owner-thread only. Drops (and counts) when full.
  void emit(const TraceEvent& ev) noexcept {
    // relaxed-ok: size_ has a single writer (this thread); the release
    // store below is what publishes the event to the exporter.
    const std::uint32_t slot = size_.load(std::memory_order_relaxed);
    if (slot >= events_.size()) {
      // relaxed-ok: dropped_ is a pure total read after runs quiesce.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      metric::trace_dropped_events().inc();
      return;
    }
    events_[slot] = ev;
    size_.store(slot + 1, std::memory_order_release);
  }

  std::uint32_t size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }
  const TraceEvent& event(std::uint32_t i) const noexcept {
    return events_[i];
  }
  std::uint64_t dropped() const noexcept {
    // relaxed-ok: exporters read drop totals after the run quiesces.
    return dropped_.load(std::memory_order_relaxed);
  }
  std::uint32_t track() const noexcept { return track_; }

 private:
  // analyze-ok: single-writer ring — only the owning thread writes slots,
  // and the release store of size_ in emit() publishes each one before the
  // exporter's acquire load in size() can expose it (tests/race/
  // test_race_trace.cpp checks the protocol under TSan).
  std::vector<TraceEvent> events_;
  std::atomic<std::uint32_t> size_{0};
  std::atomic<std::uint64_t> dropped_{0};
  const std::uint32_t track_;
};

/// Process-wide trace collector: owns one ThreadTraceBuffer per emitting
/// thread (registered lazily on first emission), assigns track ids and
/// names, and exports the Chrome trace-event JSON.
class Tracer {
 public:
  static Tracer& instance();

  /// Runtime gate every macro checks first. Off by default; the CLI/bench
  /// --trace flag turns it on before mining starts.
  static bool enabled() noexcept {
    // relaxed-ok: the gate is advisory — it decides whether an event is
    // recorded, and is flipped before worker threads are launched.
    return enabled_flag().load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    // relaxed-ok: see enabled().
    enabled_flag().store(on, std::memory_order_relaxed);
  }

  /// Nanoseconds since the tracer epoch (steady clock).
  std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// The calling thread's buffer, registering it on first use.
  ThreadTraceBuffer& local_buffer() EXCLUDES(mu_);

  /// Names the calling thread's track in the exported trace (ThreadPool
  /// workers call this with "worker <tid>").
  void set_thread_name(std::string name) EXCLUDES(mu_);

  /// Capacity (events) for buffers registered after this call; existing
  /// buffers keep theirs. Default 1 << 16 per thread.
  void set_capacity(std::uint32_t events_per_thread) EXCLUDES(mu_);

  /// Discards all buffers and invalidates every thread's cached pointer.
  /// Callers must guarantee no thread is emitting concurrently (tests call
  /// this between cases; production code never needs it).
  void reset() EXCLUDES(mu_);

  /// Events dropped across all buffers (capacity overflow).
  std::uint64_t dropped_total() const EXCLUDES(mu_);

  /// Visits every recorded event (export order: track by track, emission
  /// order within a track). Safe while emitters run; events published
  /// after the visit starts may be missed.
  void for_each_event(
      const std::function<void(std::uint32_t track,
                               std::string_view thread_name,
                               const TraceEvent& ev)>& fn) const EXCLUDES(mu_);

  /// Chrome trace-event JSON: {"traceEvents":[...]}, one "X" (complete)
  /// event per span, "i" per instant, "M" thread_name metadata per track.
  /// Loadable in Perfetto / chrome://tracing.
  void write_chrome_trace(std::ostream& os) const EXCLUDES(mu_);
  /// Throws std::runtime_error when the file cannot be written.
  void save_chrome_trace(const std::string& path) const;

 private:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {
    SMPMINE_LOCK_NAME(&mu_, "Tracer::mu_");
  }

  static std::atomic<bool>& enabled_flag() noexcept {
    static std::atomic<bool> flag{false};
    return flag;
  }

  struct Track {
    std::unique_ptr<ThreadTraceBuffer> buffer;
    std::string name;
  };

  static constexpr std::uint32_t kDefaultCapacity = 1u << 16;

  mutable Mutex mu_;
  std::vector<Track> tracks_ GUARDED_BY(mu_);
  std::uint32_t capacity_ GUARDED_BY(mu_) = kDefaultCapacity;
  /// Bumped by reset(); threads re-register when their cached generation
  /// is stale.
  std::atomic<std::uint64_t> generation_{0};
  const std::chrono::steady_clock::time_point epoch_;
};

/// Shorthand for Tracer::instance().now_ns().
inline std::uint64_t now_ns() noexcept { return Tracer::instance().now_ns(); }

namespace detail {

inline void emit_event(std::uint64_t start_ns, std::uint64_t dur_ns,
                       const char* name, const char* arg_name,
                       std::uint64_t arg_value, bool instant) noexcept {
  Tracer::instance().local_buffer().emit(
      TraceEvent{start_ns, dur_ns, name, arg_name, arg_value, instant});
}

inline void trace_instant(const char* name, const char* arg_name = nullptr,
                          std::uint64_t arg_value = 0) noexcept {
  if (!Tracer::enabled()) return;
  emit_event(now_ns(), 0, name, arg_name, arg_value, true);
}

}  // namespace detail

/// RAII span: records a complete event covering its lifetime. Declared by
/// the SMPMINE_TRACE_SPAN macros; `name`/`arg_name` must be string
/// literals (static storage).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* arg_name = nullptr,
                      std::uint64_t arg_value = 0) noexcept {
    if (!Tracer::enabled()) return;
    name_ = name;
    arg_name_ = arg_name;
    arg_value_ = arg_value;
    start_ns_ = now_ns();
  }
  ~ScopedSpan() { end(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Ends the span now instead of at scope exit; idempotent. Lets straight-
  /// line phase code (candgen ... count in one scope) close one span before
  /// the next without artificial blocks.
  void end() noexcept {
    if (name_ == nullptr) return;
    detail::emit_event(start_ns_, now_ns() - start_ns_, name_, arg_name_,
                       arg_value_, false);
    name_ = nullptr;
  }

 private:
  const char* name_ = nullptr;  ///< nullptr: disabled at ctor or ended
  const char* arg_name_ = nullptr;
  std::uint64_t arg_value_ = 0;
  std::uint64_t start_ns_ = 0;
};

#if SMPMINE_TRACING_ENABLED
/// Names the calling thread's track in exported traces, and registers the
/// same name with the flight recorder so crash dumps and log-line prefixes
/// agree with the trace — one naming registry, three consumers.
inline void set_current_thread_name(std::string name) {
  flight::set_current_thread_name(name.c_str());
  Tracer::instance().set_thread_name(std::move(name));
}
#else
/// Tracing compiled out: the flight recorder (always on) still needs the
/// name for crash dumps and log prefixes.
inline void set_current_thread_name(std::string name) {
  flight::set_current_thread_name(name.c_str());
}
#endif

}  // namespace smpmine::obs

// ---------------------------------------------------------------------------
// Instrumentation macros. With SMPMINE_TRACING_ENABLED=0 every one expands
// to ((void)0): no object, no call, no data — see the overhead policy above.
// ---------------------------------------------------------------------------
#define SMPMINE_OBS_CONCAT_(a, b) a##b
#define SMPMINE_OBS_CONCAT(a, b) SMPMINE_OBS_CONCAT_(a, b)

#if SMPMINE_TRACING_ENABLED

/// Scoped span covering the rest of the enclosing scope.
#define SMPMINE_TRACE_SPAN(name) \
  ::smpmine::obs::ScopedSpan SMPMINE_OBS_CONCAT(smpmine_span_, __LINE__)(name)
/// Scoped span with one integer argument (rendered under "args" in the
/// trace), e.g. SMPMINE_TRACE_SPAN_ARG("count", "k", k).
#define SMPMINE_TRACE_SPAN_ARG(name, arg_name, arg_value)                  \
  ::smpmine::obs::ScopedSpan SMPMINE_OBS_CONCAT(smpmine_span_, __LINE__)(  \
      name, arg_name, static_cast<std::uint64_t>(arg_value))
/// Named span variable for phases that end mid-scope: close it with
/// SMPMINE_TRACE_PHASE_END(var) (scope exit also closes it).
#define SMPMINE_TRACE_PHASE(var, name, arg_name, arg_value) \
  ::smpmine::obs::ScopedSpan var(name, arg_name,            \
                                 static_cast<std::uint64_t>(arg_value))
#define SMPMINE_TRACE_PHASE_END(var) (var).end()
/// Zero-duration instant event.
#define SMPMINE_TRACE_INSTANT(name) ::smpmine::obs::detail::trace_instant(name)
#define SMPMINE_TRACE_INSTANT_ARG(name, arg_name, arg_value)       \
  ::smpmine::obs::detail::trace_instant(                           \
      name, arg_name, static_cast<std::uint64_t>(arg_value))

#else  // SMPMINE_TRACING_ENABLED == 0: all no-ops

#define SMPMINE_TRACE_SPAN(name) ((void)0)
#define SMPMINE_TRACE_SPAN_ARG(name, arg_name, arg_value) ((void)0)
#define SMPMINE_TRACE_PHASE(var, name, arg_name, arg_value) ((void)0)
#define SMPMINE_TRACE_PHASE_END(var) ((void)0)
#define SMPMINE_TRACE_INSTANT(name) ((void)0)
#define SMPMINE_TRACE_INSTANT_ARG(name, arg_name, arg_value) ((void)0)

#endif  // SMPMINE_TRACING_ENABLED
