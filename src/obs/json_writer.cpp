#include "obs/json_writer.hpp"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace smpmine::obs {

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;  // the key already placed the comma
  }
  if (!stack_.empty()) {
    assert(stack_.back() == Frame::Array &&
           "object members need key() before value()");
    if (has_members_.back()) os_ << ',';
    has_members_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Frame::Object);
  has_members_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!stack_.empty() && stack_.back() == Frame::Object && !after_key_);
  os_ << '}';
  stack_.pop_back();
  has_members_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Frame::Array);
  has_members_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back() == Frame::Array && !after_key_);
  os_ << ']';
  stack_.pop_back();
  has_members_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  assert(!stack_.empty() && stack_.back() == Frame::Object && !after_key_);
  if (has_members_.back()) os_ << ',';
  has_members_.back() = true;
  os_ << '"' << json_escape(name) << "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null_value();
  before_value();
  // Shortest-ish round-trippable decimal; %.17g would be exact but renders
  // 0.1 as 0.10000000000000001, and timing values don't need that.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::null_value() {
  before_value();
  os_ << "null";
  return *this;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Recursive-descent JSON checker (syntax only, no value materialization).
struct Validator {
  std::string_view text;
  // analyze-ok: function-local instance (validate_json), never shared —
  // the cursor mutates on one thread for the lifetime of one call.
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 256;

  bool eof() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos;
    }
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool string() {
    if (eof() || peek() != '"') return false;
    ++pos;
    while (!eof()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        if (eof()) return false;
        const char e = text[pos++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(peek()))) {
              return false;
            }
            ++pos;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return false;
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    return true;
  }

  bool number() {
    if (!eof() && peek() == '-') ++pos;
    if (eof()) return false;
    if (peek() == '0') {
      ++pos;
    } else if (!digits()) {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++pos;
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos;
      if (!digits()) return false;
    }
    return true;
  }

  bool value() {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    if (eof()) return false;
    bool ok = false;
    switch (peek()) {
      case '{': ok = object(); break;
      case '[': ok = array(); break;
      case '"': ok = string(); break;
      case 't': ok = literal("true"); break;
      case 'f': ok = literal("false"); break;
      case 'n': ok = literal("null"); break;
      default:  ok = number(); break;
    }
    --depth;
    return ok;
  }

  bool object() {
    ++pos;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (eof() || peek() != ':') return false;
      ++pos;
      if (!value()) return false;
      skip_ws();
      if (eof()) return false;
      if (peek() == '}') {
        ++pos;
        return true;
      }
      if (peek() != ',') return false;
      ++pos;
    }
  }

  bool array() {
    ++pos;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos;
      return true;
    }
    for (;;) {
      if (!value()) return false;
      skip_ws();
      if (eof()) return false;
      if (peek() == ']') {
        ++pos;
        return true;
      }
      if (peek() != ',') return false;
      ++pos;
    }
  }
};

}  // namespace

bool json_valid(std::string_view text) {
  Validator v{text};
  if (!v.value()) return false;
  v.skip_ws();
  return v.eof();
}

}  // namespace smpmine::obs
