#include "obs/metrics.hpp"

#include <algorithm>

namespace smpmine::obs {

std::uint64_t HistogramSummary::percentile(double p) const noexcept {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the percentile sample, 1-based; ceil so p=1.0 lands on the
  // last sample and p=0.0 on the first.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(p * static_cast<double>(count) + 0.5));
  std::uint64_t seen = 0;
  for (std::uint32_t i = 0; i < kHistogramBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) return histogram_bucket_hi(i);
  }
  return max_bound();
}

std::uint64_t HistogramSummary::max_bound() const noexcept {
  for (std::uint32_t i = kHistogramBuckets; i-- > 0;) {
    if (buckets[i] != 0) return histogram_bucket_hi(i);
  }
  return 0;
}

HistogramSummary HistogramSummary::delta_since(
    const HistogramSummary& before) const noexcept {
  HistogramSummary d;
  d.count = count - before.count;
  d.sum = sum - before.sum;
  for (std::uint32_t i = 0; i < kHistogramBuckets; ++i) {
    d.buckets[i] = buckets[i] - before.buckets[i];
  }
  return d;
}

HistogramShard& Histogram::local_shard() {
  MutexLock g(mu_);
  shards_.push_back(std::make_unique<HistogramShard>());
  return *shards_.back();
}

HistogramSummary Histogram::snapshot() const {
  HistogramSummary out;
  MutexLock g(mu_);
  for (const auto& shard : shards_) {
    for (std::uint32_t i = 0; i < kHistogramBuckets; ++i) {
      out.buckets[i] += shard->bucket(i);
    }
    out.sum += shard->sum();
  }
  for (const std::uint64_t b : out.buckets) out.count += b;
  return out;
}

void Histogram::reset() {
  MutexLock g(mu_);
  for (const auto& shard : shards_) shard->reset();
}

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked on purpose: instrumented call sites cache Counter& in static
  // storage and may fire from worker threads during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::MetricsRegistry() {
  SMPMINE_LOCK_NAME(&mu_, "MetricsRegistry::mu_");
  // Pre-register the well-known names so every snapshot carries the full
  // schema, zeros included. Must not go through the metric:: accessors —
  // their function-local statics would recurse into instance().
  MutexLock g(mu_);
  for (const char* name :
       {"spinlock.contended_acquires", "spinlock.acquire_spins",
        "barrier.waits", "barrier.wait_ns", "barrier.yields",
        "pool.spmd_dispatches", "pool.tasks", "hashtree.inserts",
        "hashtree.leaf_conversions", "flatkernel.freezes",
        "flatkernel.tiles", "flatkernel.prefetches",
        "vertkernel.builds", "vertkernel.rows", "vertkernel.row_words",
        "vertkernel.slots", "trace.dropped_events"}) {
    counters_.emplace(name, std::make_unique<Counter>());
  }
  for (const char* name : {"spinlock.spin_rounds", "flatkernel.tile_ns",
                           "vertkernel.slot_ns"}) {
    histograms_.emplace(name, std::make_unique<Histogram>());
  }
}

Counter& MetricsRegistry::counter(std::string_view name) {
  MutexLock g(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  MutexLock g(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  MutexLock g(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  MutexLock g(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.emplace_back(name, hist->snapshot());
  }
  return snap;
}

void MetricsRegistry::for_each_counter(
    const std::function<void(const char* name, const Counter& c)>& fn) const {
  MutexLock g(mu_);
  for (const auto& [name, counter] : counters_) {
    fn(name.c_str(), *counter);
  }
}

void MetricsRegistry::reset_values() {
  MutexLock g(mu_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
  for (const auto& [name, hist] : histograms_) hist->reset();
}

}  // namespace smpmine::obs
