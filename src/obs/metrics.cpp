#include "obs/metrics.hpp"

namespace smpmine::obs {

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked on purpose: instrumented call sites cache Counter& in static
  // storage and may fire from worker threads during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::MetricsRegistry() {
  // Pre-register the well-known names so every snapshot carries the full
  // schema, zeros included. Must not go through the metric:: accessors —
  // their function-local statics would recurse into instance().
  MutexLock g(mu_);
  for (const char* name :
       {"spinlock.contended_acquires", "spinlock.acquire_spins",
        "barrier.waits", "barrier.wait_ns", "barrier.yields",
        "pool.spmd_dispatches", "pool.tasks", "hashtree.inserts",
        "hashtree.leaf_conversions", "flatkernel.freezes",
        "flatkernel.tiles", "flatkernel.prefetches",
        "trace.dropped_events"}) {
    counters_.emplace(name, std::make_unique<Counter>());
  }
}

Counter& MetricsRegistry::counter(std::string_view name) {
  MutexLock g(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  MutexLock g(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  MutexLock g(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  return snap;
}

void MetricsRegistry::reset_values() {
  MutexLock g(mu_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
}

}  // namespace smpmine::obs
