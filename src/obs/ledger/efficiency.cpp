#include "obs/ledger/efficiency.hpp"

#include <algorithm>

namespace smpmine::obs::ledger {

namespace {
constexpr double kNsPerSec = 1e9;
}  // namespace

EfficiencyDecomposition decompose(const LedgerSnapshot& snapshot,
                                  std::uint32_t threads) {
  EfficiencyDecomposition d;
  d.threads = std::max<std::uint32_t>(threads, 1);
  const double p = static_cast<double>(d.threads);

  double work_s = 0.0, serial_s = 0.0, imbalance_s = 0.0;
  double contention_s = 0.0, overhead_s = 0.0, serial_wall_s = 0.0;

  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const PhaseId phase = static_cast<PhaseId>(i);
    const PhaseAgg a = snapshot.agg(phase);
    if (a.threads_active == 0) continue;

    const double wall = static_cast<double>(a.wall_max_ns) / kNsPerSec;
    // Clamp CPU readings to the wall bound: CLOCK_THREAD_CPUTIME_ID can
    // nose ahead of CLOCK_MONOTONIC by a few microseconds, and the binning
    // identity (see header) needs cpu_max <= wall.
    const double cpu_max = std::min(
        static_cast<double>(a.cpu_max_ns) / kNsPerSec, wall);
    const double cpu_sum = std::min(
        static_cast<double>(a.cpu_sum_ns) / kNsPerSec,
        cpu_max * static_cast<double>(a.threads_active));
    const double lock = std::min(
        static_cast<double>(a.lock_wait_ns) / kNsPerSec, cpu_sum);

    PhaseEfficiency pe;
    pe.phase = phase;
    pe.parallel = a.threads_active > 1;
    pe.threads_active = a.threads_active;
    pe.wall_seconds = wall;
    pe.cpu_sum_seconds = cpu_sum;
    pe.cpu_max_seconds = cpu_max;
    pe.barrier_wait_seconds =
        static_cast<double>(a.barrier_wait_ns) / kNsPerSec;
    pe.lock_wait_seconds = lock;
    pe.work_units = a.work_units;
    if (pe.parallel && cpu_max > 0.0) {
      const double mean = cpu_sum / static_cast<double>(a.threads_active);
      pe.imbalance = 1.0 - mean / cpu_max;
    }
    d.phases.push_back(pe);

    d.wall_seconds += wall;
    if (pe.parallel) {
      work_s += cpu_sum - lock;
      contention_s += lock;
      imbalance_s += p * cpu_max - cpu_sum;
      overhead_s += p * (wall - cpu_max);
    } else {
      const double work = std::min(cpu_sum, wall);
      work_s += work;
      serial_s += p * wall - work;
      serial_wall_s += wall;
    }
  }

  d.budget_seconds = p * d.wall_seconds;
  if (d.budget_seconds > 0.0) {
    work_s = std::max(work_s, 0.0);
    d.work_fraction = work_s / d.budget_seconds;
    d.serial_loss = serial_s / d.budget_seconds;
    d.imbalance_loss = imbalance_s / d.budget_seconds;
    d.contention_loss = contention_s / d.budget_seconds;
    // Residual closes the identity exactly even after clamping.
    d.overhead_loss = 1.0 - d.work_fraction - d.serial_loss -
                      d.imbalance_loss - d.contention_loss;
  }
  if (d.wall_seconds > 0.0) {
    d.serial_fraction = serial_wall_s / d.wall_seconds;
  }
  return d;
}

}  // namespace smpmine::obs::ledger
