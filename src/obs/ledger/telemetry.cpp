#include "obs/ledger/telemetry.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <ctime>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "obs/json_writer.hpp"
#include "obs/ledger/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/flight/flight_recorder.hpp"
#include "parallel/mutex.hpp"

namespace smpmine::obs::ledger {

namespace {

std::uint64_t monotonic_ns() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

/// Resident-set size in KiB from /proc/self/statm (0 when unreadable).
// lint-ok: R2 — this *is* the centralized sampling point the R2 resource-
// sampling rule funnels everything else towards (src/obs/ledger is exempt;
// the marker documents intent for readers, not the linter).
std::uint64_t rss_kb() {
  std::ifstream statm("/proc/self/statm");
  std::uint64_t total_pages = 0, resident_pages = 0;
  if (!(statm >> total_pages >> resident_pages)) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  return resident_pages * static_cast<std::uint64_t>(page > 0 ? page : 4096) /
         1024;
}

struct Sampler {
  TelemetryOptions options;
  std::ofstream out;
  // lint-ok: R2 — the sampler must keep its own wall-clock cadence while
  // every pool thread is busy mining; a dedicated raw thread (never a pool
  // worker) is the point. Diagnostics-only and joined in stop().
  std::thread thread;
  std::atomic<bool> stop_flag{false};
  std::uint64_t start_ns = 0;
  std::uint64_t seq = 0;
  std::map<std::string, std::uint64_t> prev_counters;
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> prev_hists;
};

Mutex& control_mu() {
  static Mutex* mu = [] {
    auto* m = new Mutex();
    SMPMINE_LOCK_NAME(m, "telemetry::control_mu");
    return m;
  }();
  return *mu;
}

Sampler* g_sampler = nullptr;           // guarded by control_mu()
std::atomic<bool> g_running{false};
std::atomic<std::uint64_t> g_records{0};

void write_record(Sampler& s) {
  const MetricsSnapshot metrics = MetricsRegistry::instance().snapshot();
  const LedgerSnapshot ledger = Ledger::instance().snapshot();

  std::ostringstream line;
  JsonWriter w(line);
  w.begin_object();
  w.kv("schema", "smpmine.telemetry.v1");
  w.kv("seq", s.seq);
  w.kv("uptime_ns", monotonic_ns() - s.start_ns);
  w.kv("period_ms", s.options.period_ms);
  w.kv("rss_kb", rss_kb());

  // Counter deltas since the previous record (non-zero only: a telemetry
  // stream is read for movement, and zeros are most of the registry).
  w.key("counters").begin_object();
  for (const auto& [name, value] : metrics.counters) {
    const std::uint64_t prev = s.prev_counters[name];
    if (value != prev) w.kv(name, value - prev);
    s.prev_counters[name] = value;
  }
  w.end_object();

  w.key("gauges").begin_object();
  for (const auto& [name, value] : metrics.gauges) {
    if (value != 0) w.kv(name, value);
  }
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& [name, summary] : metrics.histograms) {
    auto& prev = s.prev_hists[name];
    if (summary.count != prev.first || summary.sum != prev.second) {
      w.key(name).begin_object();
      w.kv("count", summary.count - prev.first);
      w.kv("sum", summary.sum - prev.second);
      w.end_object();
    }
    prev = {summary.count, summary.sum};
  }
  w.end_object();

  // Ledger progress: cumulative per-phase totals (cheap monotonic cursors
  // a consumer can difference itself; per-thread detail stays in the run
  // manifest).
  w.key("ledger").begin_object();
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const PhaseAgg a = ledger.agg(static_cast<PhaseId>(i));
    if (a.entries == 0 && a.work_units == 0) continue;
    w.key(phase_name(static_cast<PhaseId>(i))).begin_object();
    w.kv("entries", a.entries);
    w.kv("threads", a.threads_active);
    w.kv("wall_sum_ns", a.wall_sum_ns);
    w.kv("wall_max_ns", a.wall_max_ns);
    w.kv("cpu_sum_ns", a.cpu_sum_ns);
    w.kv("work_units", a.work_units);
    w.kv("barrier_wait_ns", a.barrier_wait_ns);
    w.kv("lock_wait_ns", a.lock_wait_ns);
    w.end_object();
  }
  w.end_object();

  // Arena / structure high-water marks mirrored from the flight recorder
  // ("hwm.tree_bytes", "hwm.candidates", ...).
  w.key("hwm").begin_object();
  for (const auto& [name, value] : flight::high_water_snapshot()) {
    w.kv(name, value);
  }
  w.end_object();

  w.end_object();
  s.out << line.str() << '\n';
  s.out.flush();
  ++s.seq;
  g_records.fetch_add(1);
}

void sampler_loop(Sampler* s) {
  flight::set_current_thread_name("telemetry");
  while (!s->stop_flag.load()) {
    write_record(*s);
    // Sleep in short slices so stop() never waits a full period.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(s->options.period_ms);
    while (!s->stop_flag.load() &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min<std::uint32_t>(s->options.period_ms, 10)));
    }
  }
  write_record(*s);  // final record: the run's closing totals
}

}  // namespace

bool start(const TelemetryOptions& options) {
  if (options.path.empty()) return false;
  MutexLock lock(control_mu());
  if (g_sampler != nullptr) return false;
  auto* s = new Sampler();
  s->options = options;
  s->options.period_ms = std::max<std::uint32_t>(options.period_ms, 1);
  s->out.open(options.path, std::ios::out | std::ios::app);
  if (!s->out) {
    delete s;
    return false;
  }
  s->start_ns = monotonic_ns();
  g_records.store(0);
  // lint-ok: R2 — see the Sampler::thread declaration above.
  s->thread = std::thread(sampler_loop, s);
  g_sampler = s;
  g_running.store(true);
  return true;
}

void stop() {
  Sampler* s = nullptr;
  {
    MutexLock lock(control_mu());
    s = g_sampler;
    g_sampler = nullptr;
  }
  if (s == nullptr) return;
  s->stop_flag.store(true);
  if (s->thread.joinable()) s->thread.join();
  g_running.store(false);
  delete s;
}

bool running() noexcept { return g_running.load(); }

std::uint64_t records_written() noexcept { return g_records.load(); }

}  // namespace smpmine::obs::ledger
