// Efficiency decomposition over a ledger snapshot (the speedup autopsy).
//
// The paper's Fig 11 speedups flatten against an Amdahl ceiling; this file
// names the losses. Over one iteration (or one run) with P configured
// threads, the thread-seconds budget is `P × Σ_phase wall_max(phase)`.
// Every nanosecond of that budget lands in exactly one bin:
//
//   work        — thread CPU time net of lock waits (useful mining)
//   contention  — measured SpinLock/Mutex wait (spin burns CPU, so it is
//                 carved out of the CPU total, not added on top)
//   imbalance   — P·cpu_max − cpu_sum per parallel phase: budget idled by
//                 threads that finished early while the slowest thread of
//                 the phase was still working (the barrier-wait story)
//   serial      — (P−1 threads idle + master stall) during phases only one
//                 thread entered
//   overhead    — P·(wall_max − cpu_max) per parallel phase: the slowest
//                 thread itself was off-CPU (scheduling, page faults,
//                 oversubscription) — the residual
//
// The bins are exhaustive and exclusive by construction, so the emitted
// fractions always satisfy work + serial + imbalance + contention +
// overhead = 1; scripts/efficiency_report.py checks that identity and
// lines the losses up against measured speedup across thread counts.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/ledger/ledger.hpp"

namespace smpmine::obs::ledger {

/// One phase's row of the decomposition.
struct PhaseEfficiency {
  PhaseId phase = PhaseId::kNone;
  bool parallel = false;        ///< >1 threads entered the phase
  std::uint32_t threads_active = 0;
  double wall_seconds = 0.0;    ///< max over threads (phase duration)
  double cpu_sum_seconds = 0.0; ///< busy thread-seconds inside the phase
  double cpu_max_seconds = 0.0; ///< slowest thread's busy time
  double imbalance = 0.0;       ///< 1 − mean/max of per-thread CPU (0: serial)
  double barrier_wait_seconds = 0.0;
  double lock_wait_seconds = 0.0;
  std::uint64_t work_units = 0;
};

/// Whole-snapshot decomposition. All `*_loss` fields plus `work_fraction`
/// are fractions of the `P × wall` thread-seconds budget and sum to 1.
struct EfficiencyDecomposition {
  std::uint32_t threads = 1;      ///< configured P (budget multiplier)
  double wall_seconds = 0.0;      ///< Σ phase wall_max
  double budget_seconds = 0.0;    ///< threads × wall_seconds
  double serial_fraction = 0.0;   ///< serial-phase wall / total wall
  double work_fraction = 0.0;
  double serial_loss = 0.0;
  double imbalance_loss = 0.0;
  double contention_loss = 0.0;
  double overhead_loss = 0.0;
  std::vector<PhaseEfficiency> phases;  ///< only phases with activity

  double loss_total() const noexcept {
    return serial_loss + imbalance_loss + contention_loss + overhead_loss;
  }
};

/// Decomposes a (delta) snapshot for a run configured with `threads`
/// threads. Tolerates clock skew by clamping CPU totals to the wall bound
/// before binning, so the identity holds exactly even on noisy clocks.
EfficiencyDecomposition decompose(const LedgerSnapshot& snapshot,
                                  std::uint32_t threads);

}  // namespace smpmine::obs::ledger
