#include "obs/ledger/ledger.hpp"

#include <ctime>
#include <cstring>
#include <string>

#include "obs/metrics.hpp"

namespace smpmine::obs::ledger {

namespace {

const char* const kPhaseNames[kNumPhases] = {
    "f1",        "candgen", "remap",  "freeze",
    "vertbuild", "count",   "reduce", "select",
};

std::atomic<bool> g_enabled{true};

// Current / most-recently-closed phase of the calling thread. The "last"
// slot is what lets the run_spmd end-of-body barrier wait (which happens
// after the body's scopes closed) still attribute to the phase that just
// ran instead of vanishing into "other".
thread_local PhaseId tls_current = PhaseId::kNone;
thread_local PhaseId tls_last = PhaseId::kNone;
thread_local LedgerShard* tls_shard = nullptr;

std::uint64_t clock_ns(clockid_t id) noexcept {
  timespec ts{};
  clock_gettime(id, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

/// The calling thread's shard, registering on first use. Returns nullptr
/// only while the very registration is in flight (re-entrancy from the
/// Mutex wait hook) — callers treat that as "drop the sample".
LedgerShard* shard() {
  if (tls_shard == nullptr) tls_shard = &Ledger::instance().local_shard();
  return tls_shard;
}

/// Per-phase barrier-wait histograms ("barrier.wait_ns.<phase>", plus
/// ".other" for waits outside any phase — pool spin-up, shutdown). Dotted
/// names are subsystem events, so R5's phase-vocabulary check skips them.
HistogramShard& barrier_hist_shard(std::size_t idx) {
  static std::array<Histogram*, kNumPhases + 1>& hists = *[] {
    auto* a = new std::array<Histogram*, kNumPhases + 1>{};
    auto& reg = MetricsRegistry::instance();
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      (*a)[i] = &reg.histogram(std::string("barrier.wait_ns.") +
                               kPhaseNames[i]);
    }
    (*a)[kNumPhases] = &reg.histogram("barrier.wait_ns.other");
    return a;
  }();
  thread_local std::array<HistogramShard*, kNumPhases + 1> shards{};
  if (shards[idx] == nullptr) shards[idx] = &hists[idx]->local_shard();
  return *shards[idx];
}

}  // namespace

const char* phase_name(PhaseId p) noexcept {
  return p < PhaseId::kNone ? kPhaseNames[static_cast<std::size_t>(p)] : "?";
}

PhaseId phase_from_name(const char* name) noexcept {
  if (name == nullptr) return PhaseId::kNone;
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    if (std::strcmp(name, kPhaseNames[i]) == 0) {
      return static_cast<PhaseId>(i);
    }
  }
  return PhaseId::kNone;
}

// ---------------------------------------------------------------------------
// Snapshot types.
// ---------------------------------------------------------------------------

PhaseCounts& PhaseCounts::operator+=(const PhaseCounts& o) noexcept {
  wall_ns += o.wall_ns;
  cpu_ns += o.cpu_ns;
  work_units += o.work_units;
  barrier_wait_ns += o.barrier_wait_ns;
  lock_wait_ns += o.lock_wait_ns;
  entries += o.entries;
  return *this;
}

namespace {
std::uint64_t sat_sub(std::uint64_t a, std::uint64_t b) noexcept {
  return a > b ? a - b : 0;
}
}  // namespace

PhaseCounts PhaseCounts::delta_since(const PhaseCounts& before) const noexcept {
  PhaseCounts d;
  d.wall_ns = sat_sub(wall_ns, before.wall_ns);
  d.cpu_ns = sat_sub(cpu_ns, before.cpu_ns);
  d.work_units = sat_sub(work_units, before.work_units);
  d.barrier_wait_ns = sat_sub(barrier_wait_ns, before.barrier_wait_ns);
  d.lock_wait_ns = sat_sub(lock_wait_ns, before.lock_wait_ns);
  d.entries = sat_sub(entries, before.entries);
  return d;
}

LedgerSnapshot LedgerSnapshot::delta_since(const LedgerSnapshot& before) const {
  LedgerSnapshot d;
  d.threads.reserve(threads.size());
  for (std::size_t t = 0; t < threads.size(); ++t) {
    ThreadLedger row;
    row.thread = threads[t].thread;
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      row.phases[p] = t < before.threads.size()
                          ? threads[t].phases[p].delta_since(
                                before.threads[t].phases[p])
                          : threads[t].phases[p];
    }
    d.threads.push_back(row);
  }
  return d;
}

PhaseAgg LedgerSnapshot::agg(PhaseId p) const noexcept {
  PhaseAgg a;
  const std::size_t i = static_cast<std::size_t>(p);
  for (const ThreadLedger& row : threads) {
    const PhaseCounts& c = row.phases[i];
    if (!c.any()) continue;
    ++a.threads_active;
    a.wall_sum_ns += c.wall_ns;
    a.wall_max_ns = std::max(a.wall_max_ns, c.wall_ns);
    a.cpu_sum_ns += c.cpu_ns;
    a.cpu_max_ns = std::max(a.cpu_max_ns, c.cpu_ns);
    a.work_units += c.work_units;
    a.barrier_wait_ns += c.barrier_wait_ns;
    a.lock_wait_ns += c.lock_wait_ns;
    a.entries += c.entries;
  }
  return a;
}

bool LedgerSnapshot::empty() const noexcept {
  for (const ThreadLedger& row : threads) {
    for (const PhaseCounts& c : row.phases) {
      if (c.any()) return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Shard / registry.
// ---------------------------------------------------------------------------

PhaseCounts LedgerShard::read(PhaseId p) const noexcept {
  const Cell& c = cell(p);
  PhaseCounts out;
  // relaxed-ok: sampler-side read of single-writer totals; a momentarily
  // stale or cross-field-torn view only shifts one sample.
  out.wall_ns = c.wall_ns.load(std::memory_order_relaxed);
  // relaxed-ok: see above.
  out.cpu_ns = c.cpu_ns.load(std::memory_order_relaxed);
  // relaxed-ok: see above.
  out.work_units = c.work_units.load(std::memory_order_relaxed);
  // relaxed-ok: see above.
  out.barrier_wait_ns = c.barrier_wait_ns.load(std::memory_order_relaxed);
  // relaxed-ok: see above.
  out.lock_wait_ns = c.lock_wait_ns.load(std::memory_order_relaxed);
  // relaxed-ok: see above.
  out.entries = c.entries.load(std::memory_order_relaxed);
  return out;
}

Ledger& Ledger::instance() {
  static Ledger* g = new Ledger();  // leaked: shards outlive static dtors
  return *g;
}

LedgerShard& Ledger::local_shard() {
  MutexLock lock(mu_);
  shards_.push_back(std::make_unique<LedgerShard>());
  shards_.back()->thread_index_ =
      static_cast<std::uint32_t>(shards_.size() - 1);
  return *shards_.back();
}

LedgerSnapshot Ledger::snapshot() const {
  LedgerSnapshot s;
  MutexLock lock(mu_);
  s.threads.reserve(shards_.size());
  for (const auto& sh : shards_) {
    ThreadLedger row;
    row.thread = sh->thread_index_;
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      row.phases[p] = sh->read(static_cast<PhaseId>(p));
    }
    s.threads.push_back(row);
  }
  return s;
}

void Ledger::reset() {
  MutexLock lock(mu_);
  for (auto& sh : shards_) {
    for (auto& c : sh->cells_) {
      // relaxed-ok: reset happens between runs, no concurrent writers.
      c.wall_ns.store(0, std::memory_order_relaxed);
      // relaxed-ok: see above.
      c.cpu_ns.store(0, std::memory_order_relaxed);
      // relaxed-ok: see above.
      c.work_units.store(0, std::memory_order_relaxed);
      // relaxed-ok: see above.
      c.barrier_wait_ns.store(0, std::memory_order_relaxed);
      // relaxed-ok: see above.
      c.lock_wait_ns.store(0, std::memory_order_relaxed);
      // relaxed-ok: see above.
      c.entries.store(0, std::memory_order_relaxed);
    }
  }
}

bool enabled() noexcept {
  // relaxed-ok: a stale gate read only delays enable/disable by one sample.
  return g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  // relaxed-ok: see enabled().
  g_enabled.store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Recording.
// ---------------------------------------------------------------------------

LedgerScope::LedgerScope(const char* name) noexcept {
  if (!enabled()) return;
  const PhaseId p = phase_from_name(name);
  if (p == PhaseId::kNone) return;
  phase_ = p;
  prev_ = tls_current;
  tls_current = p;
  wall_start_ns_ = clock_ns(CLOCK_MONOTONIC);
  cpu_start_ns_ = clock_ns(CLOCK_THREAD_CPUTIME_ID);
}

LedgerScope::~LedgerScope() noexcept {
  if (phase_ == PhaseId::kNone) return;
  const std::uint64_t cpu = sat_sub(clock_ns(CLOCK_THREAD_CPUTIME_ID),
                                    cpu_start_ns_);
  const std::uint64_t wall = sat_sub(clock_ns(CLOCK_MONOTONIC),
                                     wall_start_ns_);
  if (LedgerShard* sh = shard()) sh->add_span(phase_, wall, cpu);
  tls_current = prev_;
  tls_last = phase_;
}

PhaseId attribution_phase() noexcept {
  return tls_current != PhaseId::kNone ? tls_current : tls_last;
}

void add_work(std::uint64_t units) noexcept {
  if (!enabled() || units == 0) return;
  const PhaseId p = tls_current;
  if (p == PhaseId::kNone) return;
  if (LedgerShard* sh = shard()) sh->add_work(p, units);
}

void add_work(const char* phase, std::uint64_t units) noexcept {
  if (!enabled() || units == 0) return;
  const PhaseId p = phase_from_name(phase);
  if (p == PhaseId::kNone) return;
  if (LedgerShard* sh = shard()) sh->add_work(p, units);
}

void add_barrier_wait(std::uint64_t ns) noexcept {
  if (!enabled()) return;
  const PhaseId p = attribution_phase();
  const std::size_t idx = static_cast<std::size_t>(p);  // kNone -> "other"
  barrier_hist_shard(idx).record(ns);
  if (p == PhaseId::kNone) return;
  if (LedgerShard* sh = shard()) sh->add_barrier_wait(p, ns);
}

void add_lock_wait(std::uint64_t ns) noexcept {
  if (!enabled()) return;
  const PhaseId p = attribution_phase();
  if (p == PhaseId::kNone) return;
  // Dropped (not registered) while this very thread's shard registration
  // holds Ledger::mu_ — see shard().
  if (tls_shard != nullptr) tls_shard->add_lock_wait(p, ns);
}

const char* current_phase_name() noexcept {
  const PhaseId p = attribution_phase();
  return p == PhaseId::kNone ? nullptr : phase_name(p);
}

std::uint64_t wait_clock_ns() noexcept { return clock_ns(CLOCK_MONOTONIC); }

}  // namespace smpmine::obs::ledger
