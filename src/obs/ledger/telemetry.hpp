// Continuous telemetry: a background sampler streaming JSONL records.
//
// Run manifests are post-mortem (written after the run) and flight dumps
// are crash-time; a long-lived mining run (ROADMAP's daemon) needs a live
// signal. `start()` spawns one sampler thread that every `period_ms`
// appends a single-line `smpmine.telemetry.v1` JSON record to `path`:
// metric counter/histogram deltas since the previous sample, the ledger's
// per-phase progress, resident-set size, and the flight recorder's
// high-water marks. Records are line-delimited so a consumer can `tail -f`
// the file; every line is a complete JSON document (the tests check each
// against obs::json_valid).
//
// Overhead: the sampler reads the same relaxed shard atomics the mining
// threads write, so the mining side pays nothing it was not already
// paying; the sampler's own work (two registry snapshots and one write)
// happens off the mining threads. The budget — under 2% on
// bench_count_kernel — is measured by that bench's interleaved on/off
// telemetry block, the same method as the flight recorder's.
#pragma once

#include <cstdint>
#include <string>

namespace smpmine::obs::ledger {

struct TelemetryOptions {
  std::uint32_t period_ms = 100;  ///< sampling period (clamped to >= 1)
  std::string path;               ///< JSONL output, appended; "" disables
};

/// Starts the sampler thread (writing record 0 immediately). Returns false
/// — with the sampler not running — when `path` is empty or cannot be
/// opened, or when a sampler is already running.
bool start(const TelemetryOptions& options);

/// Writes one final record, stops and joins the sampler. Idempotent.
void stop();

bool running() noexcept;

/// Records written since start() (tests; also the final count after stop).
std::uint64_t records_written() noexcept;

}  // namespace smpmine::obs::ledger
