// Declaration-only hooks for the synchronization wrappers.
//
// barrier.hpp / spinlock.hpp / mutex.hpp feed measured wait nanoseconds
// into the parallel-efficiency ledger (ledger.hpp), but the ledger's own
// registry is built on those same wrappers — including ledger.hpp from
// them would be circular. This header breaks the cycle: declarations only,
// no includes back into obs. Definitions live in obs/ledger/ledger.cpp.
#pragma once

#include <cstdint>

namespace smpmine::obs::ledger {

/// Adds `ns` of barrier-wait time to the calling thread's current (or, if
/// none is open, most recently closed) phase, and records it into the
/// per-phase `barrier.wait_ns.<phase>` histogram. No-op before the thread's
/// first phase scope. Never blocks, never allocates after first use.
void add_barrier_wait(std::uint64_t ns) noexcept;

/// Same, for lock acquisition waits (SpinLock spin time, Mutex blocking).
void add_lock_wait(std::uint64_t ns) noexcept;

/// Static-storage name of the phase waits are currently attributed to
/// ("count", ...), or nullptr when the thread has not entered a phase yet.
/// Safe to pass as a flight-recorder `detail`.
const char* current_phase_name() noexcept;

/// CLOCK_MONOTONIC nanoseconds, for the wrappers to time their own waits.
/// mutex.hpp cannot include obs/trace.hpp for obs::now_ns() (trace.hpp
/// includes mutex.hpp), so the clock is exposed through this hook header.
std::uint64_t wait_clock_ns() noexcept;

}  // namespace smpmine::obs::ledger
