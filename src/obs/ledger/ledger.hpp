// Parallel-efficiency ledger: per-thread × per-phase × per-iteration work
// accounting.
//
// Spans say when a phase ran, perf counters say what the hardware did, the
// flight recorder says what just happened — but none of them can decompose
// a measured speedup into the paper's Fig 11 losses (serial fraction,
// barrier imbalance, lock contention, residual overhead). The ledger
// closes that gap. Every `SMPMINE_PERF_PHASE` scope (see perf_counters.hpp
// — PerfScope opens a LedgerScope regardless of the perf backend) records
// wall time and thread CPU time into the calling thread's cache-line-
// padded shard; the synchronization wrappers (Barrier, SpinLock, Mutex)
// add their measured wait nanoseconds to the thread's *current* phase via
// ledger_hooks.hpp; and the counting kernels / miners add work units
// (tiles counted, transactions scanned, candidates generated, vertical
// slots). Miners snapshot the ledger per iteration (delta_since), store
// the delta in IterationStats, and efficiency.hpp turns it into the loss
// decomposition emitted in manifest schema v3.
//
// Overhead policy: recording is a handful of relaxed fetch_adds on
// thread-private cache lines plus two clock reads per phase scope — per
// iteration per thread, never per transaction. Cells are atomics (not
// plain fields) only because the telemetry sampler (telemetry.hpp) reads
// the live shards concurrently; each cell has exactly one writer.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/ledger/ledger_hooks.hpp"
#include "parallel/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/types.hpp"

namespace smpmine::obs::ledger {

// ---------------------------------------------------------------------------
// Phase vocabulary. Fixed at the level-synchronous SPMD phases both miners
// share (the same names as the `<phase>_seconds` fields in core/stats.hpp,
// which lint rule R5 keeps in agreement with every trace/perf macro site).
// ---------------------------------------------------------------------------

enum class PhaseId : std::uint8_t {
  F1 = 0,
  Candgen,
  Remap,
  Freeze,
  Vertbuild,
  Count,
  Reduce,
  Select,
  kNone,  ///< sentinel: not a phase; unattributed / unknown name
};

inline constexpr std::size_t kNumPhases = 8;

/// Static-storage lowercase name ("candgen", ...); "?" for kNone.
const char* phase_name(PhaseId p) noexcept;

/// Inverse of phase_name; returns kNone for names outside the vocabulary
/// (tests and future phases degrade to "unattributed", never UB).
PhaseId phase_from_name(const char* name) noexcept;

// ---------------------------------------------------------------------------
// Snapshot types (plain values, copyable; what IterationStats stores).
// ---------------------------------------------------------------------------

/// One thread's totals for one phase.
struct PhaseCounts {
  std::uint64_t wall_ns = 0;          ///< time inside the phase scope
  std::uint64_t cpu_ns = 0;           ///< CLOCK_THREAD_CPUTIME_ID delta
  std::uint64_t work_units = 0;       ///< tiles / transactions / slots / cands
  std::uint64_t barrier_wait_ns = 0;  ///< measured Barrier wait
  std::uint64_t lock_wait_ns = 0;     ///< measured SpinLock/Mutex wait
  std::uint64_t entries = 0;          ///< scope activations

  PhaseCounts& operator+=(const PhaseCounts& o) noexcept;
  /// Saturating field-wise `*this - before` (for per-iteration deltas).
  PhaseCounts delta_since(const PhaseCounts& before) const noexcept;
  bool any() const noexcept { return entries != 0 || barrier_wait_ns != 0 ||
                                     lock_wait_ns != 0 || work_units != 0; }
};

/// One thread's row of the per-thread phase table.
struct ThreadLedger {
  std::uint32_t thread = 0;  ///< shard registration index, not a TID
  std::array<PhaseCounts, kNumPhases> phases{};
};

/// Cross-thread aggregation of one phase — the two views satellite work
/// keeps distinct: `wall_max_ns` (phase duration as a barrier-synchronized
/// region) vs `cpu_sum_ns` (total busy thread-seconds spent inside it).
struct PhaseAgg {
  std::uint64_t wall_max_ns = 0;
  std::uint64_t wall_sum_ns = 0;
  std::uint64_t cpu_sum_ns = 0;
  std::uint64_t cpu_max_ns = 0;
  std::uint64_t work_units = 0;
  std::uint64_t barrier_wait_ns = 0;
  std::uint64_t lock_wait_ns = 0;
  std::uint64_t entries = 0;
  std::uint32_t threads_active = 0;  ///< threads with any activity
};

/// Point-in-time copy of every shard (full per-thread phase table).
struct LedgerSnapshot {
  std::vector<ThreadLedger> threads;

  /// Field-wise saturating delta; `before` may have fewer threads (new
  /// shards registered in between count from zero).
  LedgerSnapshot delta_since(const LedgerSnapshot& before) const;
  PhaseAgg agg(PhaseId p) const noexcept;
  bool empty() const noexcept;
};

// ---------------------------------------------------------------------------
// Recording side.
// ---------------------------------------------------------------------------

/// One thread's private slice of the ledger. Only the owning thread
/// records; the telemetry sampler reads the same atomics relaxed from its
/// own thread and tolerates a momentarily stale (or torn across fields)
/// view. Cache-line aligned so two threads' shards never false-share.
class alignas(kCacheLine) LedgerShard {
 public:
  void add_span(PhaseId p, std::uint64_t wall_ns,
                std::uint64_t cpu_ns) noexcept {
    Cell& c = cell(p);
    // relaxed-ok: shard cells are single-writer totals; the sampler reads
    // a snapshot and tolerates missing the most recent additions.
    c.wall_ns.fetch_add(wall_ns, std::memory_order_relaxed);
    // relaxed-ok: see above.
    c.cpu_ns.fetch_add(cpu_ns, std::memory_order_relaxed);
    // relaxed-ok: see above.
    c.entries.fetch_add(1, std::memory_order_relaxed);
  }
  void add_work(PhaseId p, std::uint64_t units) noexcept {
    // relaxed-ok: single-writer total, see add_span.
    cell(p).work_units.fetch_add(units, std::memory_order_relaxed);
  }
  void add_barrier_wait(PhaseId p, std::uint64_t ns) noexcept {
    // relaxed-ok: single-writer total, see add_span.
    cell(p).barrier_wait_ns.fetch_add(ns, std::memory_order_relaxed);
  }
  void add_lock_wait(PhaseId p, std::uint64_t ns) noexcept {
    // relaxed-ok: single-writer total, see add_span.
    cell(p).lock_wait_ns.fetch_add(ns, std::memory_order_relaxed);
  }

  /// Relaxed read of one phase's totals (sampler / snapshot path).
  PhaseCounts read(PhaseId p) const noexcept;

  std::uint32_t thread_index() const noexcept { return thread_index_; }

 private:
  friend class Ledger;

  struct Cell {
    std::atomic<std::uint64_t> wall_ns{0};
    std::atomic<std::uint64_t> cpu_ns{0};
    std::atomic<std::uint64_t> work_units{0};
    std::atomic<std::uint64_t> barrier_wait_ns{0};
    std::atomic<std::uint64_t> lock_wait_ns{0};
    std::atomic<std::uint64_t> entries{0};
  };

  Cell& cell(PhaseId p) noexcept {
    return cells_[static_cast<std::size_t>(p)];
  }
  const Cell& cell(PhaseId p) const noexcept {
    return cells_[static_cast<std::size_t>(p)];
  }

  std::array<Cell, kNumPhases> cells_{};
  std::uint32_t thread_index_ = 0;
};

/// Process-wide shard registry. Shards are never freed (pool threads
/// outlive any reset), only zeroed; addresses (and the thread_local caches
/// holding them) stay valid for the process lifetime.
class Ledger {
 public:
  static Ledger& instance();

  /// Registers (once) and returns the calling thread's shard. The result
  /// is cached thread_local by the recording helpers, so the registry
  /// mutex is paid once per thread.
  LedgerShard& local_shard() EXCLUDES(mu_);

  /// Merged per-thread table (relaxed reads; safe while recording).
  LedgerSnapshot snapshot() const EXCLUDES(mu_);

  /// Zeroes every cell; shard addresses survive. Tests only — production
  /// callers take snapshot deltas instead, so concurrent runs compose.
  void reset() EXCLUDES(mu_);

 private:
  Ledger() { SMPMINE_LOCK_NAME(&mu_, "Ledger::mu_"); }

  mutable Mutex mu_;
  std::vector<std::unique_ptr<LedgerShard>> shards_ GUARDED_BY(mu_);
};

/// Runtime gate (default on). Off turns scopes and hooks into cheap no-ops;
/// the overhead budget is measured with the gate *on* (bench_count_kernel's
/// telemetry block), so there is rarely a reason to turn it off.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// RAII phase scope: stamps wall + thread-CPU clocks, maintains the calling
/// thread's current-phase attribution (restoring the previous phase on
/// exit, and remembering this phase as "last closed" so the run_spmd
/// end-of-body barrier wait still attributes here). Opened by PerfScope at
/// every SMPMINE_PERF_PHASE site; `name` must be static storage. Unknown
/// names record nothing but still cost the clock reads, so keep phase
/// names inside the R5 vocabulary.
class LedgerScope {
 public:
  explicit LedgerScope(const char* name) noexcept;
  ~LedgerScope() noexcept;
  LedgerScope(const LedgerScope&) = delete;
  LedgerScope& operator=(const LedgerScope&) = delete;

 private:
  PhaseId phase_ = PhaseId::kNone;  ///< kNone: inactive (disabled/unknown)
  PhaseId prev_ = PhaseId::kNone;
  std::uint64_t wall_start_ns_ = 0;
  std::uint64_t cpu_start_ns_ = 0;
};

/// Adds work units to the calling thread's *current* phase (no-op outside
/// any phase scope or when disabled).
void add_work(std::uint64_t units) noexcept;

/// Adds work units to an explicitly named phase — the form the counting
/// kernels use (their batch loops run inside the miners' count scopes, but
/// naming the phase keeps the attribution correct even from helpers called
/// outside a scope). Prefer the macro below: lint rule R5 checks the name
/// against the stats.hpp vocabulary.
void add_work(const char* phase, std::uint64_t units) noexcept;

/// The phase waits/work currently attribute to (current scope, else the
/// thread's most recently closed scope, else kNone).
PhaseId attribution_phase() noexcept;

}  // namespace smpmine::obs::ledger

/// Work-unit recording with an R5-checked phase name:
///   SMPMINE_LEDGER_WORK("count", tiles);
/// Always compiled (one relaxed fetch_add when the ledger is enabled);
/// call at batch granularity, never per element.
#define SMPMINE_LEDGER_WORK(name, units) \
  ::smpmine::obs::ledger::add_work((name), (units))
