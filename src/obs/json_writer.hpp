// Minimal streaming JSON writer (and validator) for run artifacts.
//
// Every machine-readable artifact the repo emits — the Chrome trace-event
// file, the run-manifest JSON from results_io, bench manifests — goes
// through this one writer, so escaping and number formatting are decided
// in exactly one place instead of ad-hoc string building at each call
// site. The writer is strictly streaming (no DOM): begin/end pairs push
// and pop a small state stack that inserts commas automatically, so a
// million-event trace costs no memory beyond the ostream buffer.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace smpmine::obs {

/// Streaming JSON emitter. Usage:
///
///   JsonWriter w(os);
///   w.begin_object();
///   w.kv("tool", "smpmine_cli");
///   w.key("iterations").begin_array();
///   ...
///   w.end_array();
///   w.end_object();
///
/// Misuse (a key outside an object, unbalanced begin/end) is an assertion
/// in debug builds and emits structurally broken JSON in release — the
/// tests validate every emitted document with json_valid().
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the member name (with escaping); must be followed by a value.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  /// Non-finite doubles have no JSON spelling; they are emitted as null.
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  /// Any other integral type routes to the signed/unsigned 64-bit overload.
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  JsonWriter& value(T v) {
    if constexpr (std::is_signed_v<T>) {
      return value(static_cast<std::int64_t>(v));
    } else {
      return value(static_cast<std::uint64_t>(v));
    }
  }
  JsonWriter& null_value();

  /// key(k) followed by value(v).
  template <typename T>
  JsonWriter& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

 private:
  enum class Frame : std::uint8_t { Object, Array };

  /// Comma/indent bookkeeping before a value or key is emitted.
  void before_value();

  std::ostream& os_;
  std::vector<Frame> stack_;
  std::vector<bool> has_members_;  // parallel to stack_
  bool after_key_ = false;
};

/// Escapes `s` for inclusion inside a JSON string literal (no quotes
/// added): ", \, and control characters become escape sequences; other
/// bytes (including UTF-8 multibyte sequences) pass through.
std::string json_escape(std::string_view s);

/// True when `text` is exactly one syntactically valid JSON value with no
/// trailing garbage. Covers the full grammar the writer can emit (and
/// general JSON numbers/strings); used by the exporter tests so a writer
/// regression cannot ship structurally broken artifacts.
bool json_valid(std::string_view text);

}  // namespace smpmine::obs
