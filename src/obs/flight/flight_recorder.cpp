#include "obs/flight/flight_recorder.hpp"

#include "util/phase_epoch.hpp"

#include <fcntl.h>
#include <time.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
// The watchdog needs a real thread; see the lint-ok at its definition.
#include <chrono>
#include <thread>

#ifndef SMPMINE_CHECKED_ENABLED
#define SMPMINE_CHECKED_ENABLED 0
#endif
#ifndef SMPMINE_TRACING_ENABLED
#define SMPMINE_TRACING_ENABLED 1
#endif

namespace smpmine::obs::flight {
namespace {

// ---------------------------------------------------------------------------
// Per-thread records. Everything the signal-time dumper walks is a fixed
// atomic array published with release stores: no locks anywhere on this
// path, and no memory is ever freed (records leak by design — a crashing
// thread's ring must stay readable while other threads keep running).
// ---------------------------------------------------------------------------

struct HeldSlot {
  std::atomic<const void*> addr{nullptr};
  std::atomic<const char*> kind{nullptr};
};

// Hard-coded rather than util/types.hpp's kCacheLine so the flight core
// keeps its include surface signal-audit-small; 64 matches kCacheLine.
constexpr std::size_t kRecordAlign = 64;

struct alignas(kRecordAlign) ThreadRecord {
  static constexpr std::uint32_t kMask = kRingEvents - 1;

  // analyze-ok: single-writer ring — only the owning thread writes slots;
  // the dumper is a crash/stall-time reader that tolerates a torn wrapping
  // slot (the decoder flags malformed records instead of trusting them).
  Event events[kRingEvents];
  std::atomic<std::uint64_t> head{0};  ///< total events; slot = (head-1)&kMask

  // analyze-ok: written by the owning thread under set_current_thread_name
  // before parallel phases start; dump readers tolerate torn text.
  char name[kThreadNameBytes] = {0};

  std::atomic<const char*> phase{nullptr};
  std::atomic<std::uint64_t> phase_arg{0};

  /// Held-lock mirror (checked builds): entries [0, held_depth) are live.
  HeldSlot held[kMaxHeldLocks];
  std::atomic<std::uint32_t> held_depth{0};
};

std::atomic<ThreadRecord*> g_threads[kMaxThreads];
std::atomic<std::uint32_t> g_thread_count{0};
std::atomic<std::uint64_t> g_lost_threads{0};

std::atomic<bool> g_enabled{true};
std::atomic<std::uint32_t> g_seq{0};
std::atomic<std::uint64_t> g_events_total{0};
std::atomic<std::uint64_t> g_last_event_ns{0};
std::atomic<std::uint64_t> g_iteration{0};
std::atomic<std::uint64_t> g_dumps{0};

std::uint64_t raw_now_ns() noexcept {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::uint64_t epoch_ns() noexcept {
  // Constant after the first call; the races below read a stable value.
  static const std::uint64_t epoch = raw_now_ns();
  return epoch;
}

thread_local ThreadRecord* t_record = nullptr;
thread_local bool t_overflowed = false;

ThreadRecord* local_record() noexcept {
  if (t_record != nullptr) return t_record;
  if (t_overflowed) return nullptr;
  const std::uint32_t idx =
      // relaxed-ok: the index allocator only needs uniqueness; the release
      // store of the record pointer below is what publishes the slot.
      g_thread_count.fetch_add(1, std::memory_order_relaxed);
  if (idx >= kMaxThreads) {
    t_overflowed = true;
    // relaxed-ok: pure lost-thread tally read after the fact.
    g_lost_threads.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  auto* rec = new ThreadRecord();  // leaked: dumps outlive the thread
  std::snprintf(rec->name, sizeof rec->name, "t%u", idx);
  g_threads[idx].store(rec, std::memory_order_release);
  t_record = rec;
  return rec;
}

// ---------------------------------------------------------------------------
// Lock-free lock-name table: open-addressed, insert-only slots so the
// signal-time dumper can resolve addresses to "HTNode::lock" style names
// without the lock-order recorder's mutex.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kLockNameSlots = 1024;  // power of two

struct LockNameSlot {
  std::atomic<const void*> addr{nullptr};
  std::atomic<const char*> name{nullptr};
};
LockNameSlot g_lock_names[kLockNameSlots];

std::uint32_t lock_hash(const void* p) noexcept {
  auto v = reinterpret_cast<std::uintptr_t>(p);
  v ^= v >> 9;  // lock objects are >= 8 bytes apart; mix the low bits in
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(v) * 0x9e3779b97f4a7c15ull) >> 32);
}

const char* lookup_lock_name(const void* lock) noexcept {
  std::uint32_t i = lock_hash(lock) & (kLockNameSlots - 1);
  for (std::uint32_t probes = 0; probes < kLockNameSlots; ++probes) {
    // relaxed-ok: slot claims are published by the CAS in
    // register_lock_name; a miss only means "unnamed", never corruption.
    const void* a = g_lock_names[i].addr.load(std::memory_order_acquire);
    if (a == nullptr) return nullptr;
    if (a == lock) {
      return g_lock_names[i].name.load(std::memory_order_acquire);
    }
    i = (i + 1) & (kLockNameSlots - 1);
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Metric cells for the dump.
// ---------------------------------------------------------------------------

struct MetricCell {
  const char* name = nullptr;
  const void* obj = nullptr;
  std::uint64_t (*read)(const void*) = nullptr;
};
MetricCell g_metrics[kMaxMetrics];
std::atomic<std::uint32_t> g_metric_count{0};

// ---------------------------------------------------------------------------
// Async-signal-safe writer: fixed buffer flushed with raw write(2).
// ---------------------------------------------------------------------------

std::atomic<int> g_dump_fd{-1};  ///< pre-opened; -1 => stderr

struct DumpWriter {
  int fd;
  char buf[512];
  std::size_t len = 0;

  explicit DumpWriter(int f) noexcept : fd(f) {}

  void flush() noexcept {
    std::size_t off = 0;
    while (off < len) {
      const ::ssize_t n = ::write(fd, buf + off, len - off);
      if (n <= 0) break;  // best effort: never loop forever in a handler
      off += static_cast<std::size_t>(n);
    }
    len = 0;
  }
  void ch(char c) noexcept {
    if (len == sizeof buf) flush();
    buf[len++] = c;
  }
  void str(const char* s) noexcept {
    for (; *s != '\0'; ++s) ch(*s);
  }
  /// Quoted, escaped, length-capped string; tolerates null.
  void qstr(const char* s) noexcept {
    ch('"');
    if (s != nullptr) {
      for (std::size_t i = 0; s[i] != '\0' && i < 160; ++i) {
        const char c = s[i];
        if (c == '"' || c == '\\') {
          ch('\\');
          ch(c);
        } else if (c >= 32 && c < 127) {
          ch(c);
        } else {
          ch('?');
        }
      }
    }
    ch('"');
  }
  void u64(std::uint64_t v) noexcept {
    char digits[20];
    int n = 0;
    do {
      digits[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) ch(digits[--n]);
  }
  void hexptr(const void* p) noexcept {
    str("0x");
    auto v = reinterpret_cast<std::uintptr_t>(p);
    char digits[16];
    int n = 0;
    do {
      const auto d = static_cast<unsigned>(v & 0xf);
      digits[n++] = static_cast<char>(d < 10 ? '0' + d : 'a' + (d - 10));
      v >>= 4;
    } while (v != 0);
    while (n > 0) ch(digits[--n]);
  }
};

const char* kind_label(std::uint16_t kind) noexcept {
  switch (static_cast<EventKind>(kind)) {
    case EventKind::None: return "none";
    case EventKind::PhaseEnter: return "phase_enter";
    case EventKind::PhaseExit: return "phase_exit";
    case EventKind::Iteration: return "iteration";
    case EventKind::LockAcquire: return "lock_acquire";
    case EventKind::LockRelease: return "lock_release";
    case EventKind::LogWarn: return "log_warn";
    case EventKind::LogError: return "log_error";
    case EventKind::HighWater: return "high_water";
    case EventKind::Send: return "send";
    case EventKind::BarrierWait: return "barrier_wait";
    case EventKind::Mark: return "mark";
  }
  return "?";
}

/// The report body. Caller guarantees single entry (see write_dump).
void write_dump_locked(DumpWriter& w, const char* reason) noexcept {
  w.str("smpmine.flight.v1\n");
  w.str("reason ");
  w.qstr(reason);
  w.ch('\n');
  w.str("pid ");
  w.u64(static_cast<std::uint64_t>(::getpid()));
  w.ch('\n');
  w.str("t_ns ");
  w.u64(now_ns());
  w.ch('\n');
  w.str("build checked=");
  w.u64(SMPMINE_CHECKED_ENABLED);
  w.str(" tracing=");
  w.u64(SMPMINE_TRACING_ENABLED);
  w.ch('\n');
  w.str("iteration ");
  // relaxed-ok: dump-time sample of the latest published k.
  w.u64(g_iteration.load(std::memory_order_relaxed));
  w.ch('\n');
  w.str("events_total ");
  // relaxed-ok: dump-time sample of a monotonic tally.
  w.u64(g_events_total.load(std::memory_order_relaxed));
  w.ch('\n');
  w.str("lost_threads ");
  // relaxed-ok: dump-time sample of a monotonic tally.
  w.u64(g_lost_threads.load(std::memory_order_relaxed));
  w.ch('\n');

  const std::uint32_t metrics =
      g_metric_count.load(std::memory_order_acquire);
  for (std::uint32_t m = 0; m < metrics && m < kMaxMetrics; ++m) {
    const MetricCell& cell = g_metrics[m];
    if (cell.name == nullptr || cell.read == nullptr) continue;
    w.str("metric ");
    w.qstr(cell.name);
    w.ch(' ');
    w.u64(cell.read(cell.obj));
    w.ch('\n');
  }

  std::uint32_t threads = g_thread_count.load(std::memory_order_acquire);
  if (threads > kMaxThreads) threads = kMaxThreads;
  for (std::uint32_t t = 0; t < threads; ++t) {
    const ThreadRecord* rec = g_threads[t].load(std::memory_order_acquire);
    if (rec == nullptr) continue;

    w.str("thread ");
    w.u64(t);
    w.str(" name ");
    w.qstr(rec->name);
    w.str(" dumper ");  // 1 on the thread that wrote this dump — for a
                        // signal dump, the crashing thread itself
    w.u64(rec == t_record ? 1 : 0);
    w.ch('\n');

    w.str("phase ");
    // relaxed-ok: dump-time sample; the phase pointer is a static string
    // stored whole by PhaseScope.
    const char* phase = rec->phase.load(std::memory_order_relaxed);
    w.qstr(phase != nullptr ? phase : "");
    w.str(" arg ");
    // relaxed-ok: see above.
    w.u64(rec->phase_arg.load(std::memory_order_relaxed));
    w.ch('\n');

    std::uint32_t depth = rec->held_depth.load(std::memory_order_acquire);
    if (depth > kMaxHeldLocks) depth = kMaxHeldLocks;
    w.str("held ");
    w.u64(depth);
    w.ch('\n');
    for (std::uint32_t h = 0; h < depth; ++h) {
      // relaxed-ok: lock slots are owner-written before the depth publish;
      // a torn top-of-stack entry is tolerated diagnostics.
      const void* addr = rec->held[h].addr.load(std::memory_order_relaxed);
      // relaxed-ok: see above.
      const char* kind = rec->held[h].kind.load(std::memory_order_relaxed);
      w.str("lock ");
      w.hexptr(addr);
      w.ch(' ');
      w.qstr(kind);
      w.ch(' ');
      w.qstr(lookup_lock_name(addr));
      w.ch('\n');
    }

    const std::uint64_t head = rec->head.load(std::memory_order_acquire);
    const std::uint64_t n =
        head < kRingEvents ? head : static_cast<std::uint64_t>(kRingEvents);
    w.str("events ");
    w.u64(n);
    w.ch('\n');
    for (std::uint64_t i = head - n; i < head; ++i) {
      const Event& ev = rec->events[i & ThreadRecord::kMask];
      w.str("ev ");
      w.u64(ev.t_ns);
      w.ch(' ');
      w.u64(ev.seq);
      w.ch(' ');
      w.str(kind_label(ev.kind));
      w.ch(' ');
      w.qstr(ev.name);
      w.ch(' ');
      w.qstr(ev.detail);
      w.ch(' ');
      w.u64(ev.arg);
      w.ch('\n');
    }
    w.str("end thread ");
    w.u64(t);
    w.ch('\n');
  }
  w.str("end smpmine.flight.v1\n");
  w.flush();
}

// ---------------------------------------------------------------------------
// Crash handlers.
// ---------------------------------------------------------------------------

std::atomic<bool> g_dump_in_progress{false};
std::atomic<bool> g_handlers_installed{false};

const char* signal_reason(int sig) noexcept {
  switch (sig) {
    case SIGSEGV: return "signal SIGSEGV";
    case SIGBUS: return "signal SIGBUS";
    case SIGABRT: return "signal SIGABRT";
    case SIGFPE: return "signal SIGFPE";
  }
  return "signal";
}

// Signal-API note: this file is the one place allowed to install handlers
// (lint rule R2 confines sigaction/sigaltstack/std::set_terminate here),
// so crash handling stays centralized and handlers cannot fight.

void crash_handler(int sig) noexcept {
  // Freeze emission so racing threads stop touching the rings while the
  // dumper walks them, then dump exactly once even if a second thread
  // crashes (or the dumper itself faults — the reinstalled default
  // disposition below ends the process with a truncated-but-parseable
  // file rather than looping).
  set_enabled(false);
  if (!g_dump_in_progress.exchange(true)) {
    write_dump(signal_reason(sig));
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void terminate_handler() {
  set_enabled(false);
  if (!g_dump_in_progress.exchange(true)) {
    write_dump("terminate");
  }
  std::abort();  // SIGABRT: handler above is already disarmed by the guard
}

// ---------------------------------------------------------------------------
// Watchdog.
// ---------------------------------------------------------------------------

// lint-ok: R2 — the watchdog must outlive every pool and wake on wall
// time, not work; a dedicated raw thread (never a pool worker) is the
// point. It is diagnostics-only and joined in stop_watchdog().
std::thread* g_watchdog = nullptr;
std::atomic<bool> g_watchdog_stop{false};
std::atomic<std::uint64_t> g_watchdog_window_ms{0};
std::atomic<int> g_watchdog_exit_code{-1};
/// Events seen at the last stall dump: the watchdog re-arms only after new
/// events land, so one wedged barrier yields one report, not one per tick.
std::atomic<std::uint64_t> g_watchdog_reported{0};

void watchdog_loop() {
  set_current_thread_name("flight-watchdog");
  for (;;) {
    const std::uint64_t window =
        g_watchdog_window_ms.load(std::memory_order_acquire);
    std::uint64_t tick = window / 8;
    if (tick < 10) tick = 10;
    if (tick > 250) tick = 250;
    std::this_thread::sleep_for(std::chrono::milliseconds(tick));
    if (g_watchdog_stop.load(std::memory_order_acquire)) return;
    if (!enabled()) continue;
    // relaxed-ok: stall detection compares monotonic samples; an event
    // landing mid-check just delays the report one tick.
    const std::uint64_t total = g_events_total.load(std::memory_order_relaxed);
    // relaxed-ok: see above.
    const std::uint64_t last = g_last_event_ns.load(std::memory_order_relaxed);
    // relaxed-ok: see above.
    if (total == g_watchdog_reported.load(std::memory_order_relaxed)) {
      continue;  // nothing new since the last report (or never any events)
    }
    if (now_ns() - last > window * 1'000'000ull) {
      // relaxed-ok: see above.
      g_watchdog_reported.store(total, std::memory_order_relaxed);
      write_dump("stall");
      const int code = g_watchdog_exit_code.load(std::memory_order_acquire);
      if (code >= 0) ::_exit(code);
    }
  }
}

// ---------------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------------

const char* fault_phase() noexcept {
  static const char* phase = std::getenv("SMPMINE_FLIGHT_FAULT");
  return phase;
}

// ---------------------------------------------------------------------------
// Environment wiring: one registrar, constructed at static-init time like
// lock_order's DumpAtExitRegistrar, so plain env vars configure any
// binary — no opt-in code in main() required.
//   SMPMINE_FLIGHT=0                disable recording
//   SMPMINE_FLIGHT_DUMP=<path>      pre-open the dump fd + install handlers
//   SMPMINE_FLIGHT_WATCHDOG_MS=<n>  start the stall watchdog
//   SMPMINE_FLIGHT_WATCHDOG_EXIT=<c> watchdog exits <c> after dumping
//   SMPMINE_FLIGHT_FAULT=<phase>    crash inside the named phase
// ---------------------------------------------------------------------------

struct EnvRegistrar {
  EnvRegistrar() {
    (void)epoch_ns();  // pin the epoch before any thread emits
    if (const char* v = std::getenv("SMPMINE_FLIGHT");
        v != nullptr && v[0] == '0' && v[1] == '\0') {
      set_enabled(false);
    }
    if (const char* path = std::getenv("SMPMINE_FLIGHT_DUMP");
        path != nullptr && *path != '\0') {
      set_dump_path(path);
      install_crash_handler();
    }
    if (const char* ms = std::getenv("SMPMINE_FLIGHT_WATCHDOG_MS");
        ms != nullptr && *ms != '\0') {
      const long window = std::strtol(ms, nullptr, 10);
      if (window > 0) {
        int exit_code = -1;
        if (const char* ec = std::getenv("SMPMINE_FLIGHT_WATCHDOG_EXIT");
            ec != nullptr && *ec != '\0') {
          exit_code = static_cast<int>(std::strtol(ec, nullptr, 10));
        }
        start_watchdog(static_cast<std::uint64_t>(window), exit_code);
      }
    }
  }
};
EnvRegistrar env_registrar;

}  // namespace

bool enabled() noexcept {
  // relaxed-ok: the gate is advisory — it decides whether an event is
  // recorded, never data integrity.
  return g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  // relaxed-ok: see enabled().
  g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t now_ns() noexcept { return raw_now_ns() - epoch_ns(); }

void emit(EventKind kind, const char* name, const char* detail,
          std::uint64_t arg) noexcept {
  if (!enabled()) return;
  ThreadRecord* rec = local_record();
  if (rec == nullptr) return;
  Event ev;
  ev.t_ns = now_ns();
  ev.name = name;
  ev.detail = detail;
  ev.arg = arg;
  // relaxed-ok: seq is a cross-thread ordering hint for the decoder, not a
  // synchronization edge.
  ev.seq = g_seq.fetch_add(1, std::memory_order_relaxed);
  ev.kind = static_cast<std::uint16_t>(kind);
  // relaxed-ok: single writer (this thread); the dumper reads head with
  // acquire and tolerates the one in-flight slot.
  const std::uint64_t head = rec->head.load(std::memory_order_relaxed);
  rec->events[head & ThreadRecord::kMask] = ev;
  rec->head.store(head + 1, std::memory_order_release);
  // relaxed-ok: watchdog heartbeat samples; see watchdog_loop.
  g_last_event_ns.store(ev.t_ns, std::memory_order_relaxed);
  // relaxed-ok: monotonic tally.
  g_events_total.fetch_add(1, std::memory_order_relaxed);
}

void set_current_thread_name(const char* name) noexcept {
  ThreadRecord* rec = local_record();
  if (rec == nullptr || name == nullptr) return;
  std::strncpy(rec->name, name, sizeof rec->name - 1);
  rec->name[sizeof rec->name - 1] = '\0';
}

const char* current_thread_name() noexcept {
  ThreadRecord* rec = local_record();
  return rec != nullptr ? rec->name : "";
}

void iteration(std::uint64_t k) noexcept {
  // relaxed-ok: last-writer-wins sample shown in dumps.
  g_iteration.store(k, std::memory_order_relaxed);
  emit(EventKind::Iteration, "iteration", nullptr, k);
}

PhaseScope::PhaseScope(const char* name, std::uint64_t arg) noexcept {
#if SMPMINE_CHECKED_ENABLED
  // The phase-epoch contract does not depend on the flight recorder being
  // enabled: push before the runtime gate so checked builds always know the
  // calling thread's phase.
  phaseepoch::enter(name);
  epoch_name_ = name;
#endif
  if (!enabled()) return;
  ThreadRecord* rec = local_record();
  if (rec == nullptr) return;
  name_ = name;
  arg_ = arg;
  // relaxed-ok: the phase field is a dump-time sample; enter/exit events
  // carry the precise ordering.
  prev_name_ = rec->phase.load(std::memory_order_relaxed);
  // relaxed-ok: see above.
  prev_arg_ = rec->phase_arg.load(std::memory_order_relaxed);
  // relaxed-ok: see above.
  rec->phase.store(name, std::memory_order_relaxed);
  // relaxed-ok: see above.
  rec->phase_arg.store(arg, std::memory_order_relaxed);
  emit(EventKind::PhaseEnter, name, nullptr, arg);
}

void PhaseScope::end() noexcept {
#if SMPMINE_CHECKED_ENABLED
  if (epoch_name_ != nullptr) {
    phaseepoch::exit(epoch_name_);
    epoch_name_ = nullptr;
  }
#endif
  if (name_ == nullptr) return;
  emit(EventKind::PhaseExit, name_, nullptr, arg_);
  if (ThreadRecord* rec = local_record(); rec != nullptr) {
    // relaxed-ok: dump-time sample; see the constructor.
    rec->phase.store(prev_name_, std::memory_order_relaxed);
    // relaxed-ok: see above.
    rec->phase_arg.store(prev_arg_, std::memory_order_relaxed);
  }
  name_ = nullptr;
}

void lock_acquired(const void* lock, const char* kind) noexcept {
  if (!enabled()) return;
  ThreadRecord* rec = local_record();
  if (rec == nullptr) return;
  // relaxed-ok: held_depth has a single writer (this thread); the release
  // publish below pairs with the dumper's acquire.
  const std::uint32_t depth = rec->held_depth.load(std::memory_order_relaxed);
  if (depth < kMaxHeldLocks) {
    // relaxed-ok: slot writes precede the depth publish.
    rec->held[depth].addr.store(lock, std::memory_order_relaxed);
    // relaxed-ok: see above.
    rec->held[depth].kind.store(kind, std::memory_order_relaxed);
    rec->held_depth.store(depth + 1, std::memory_order_release);
  }
  emit(EventKind::LockAcquire, kind, lookup_lock_name(lock),
       reinterpret_cast<std::uintptr_t>(lock));
}

void lock_released(const void* lock) noexcept {
  if (!enabled()) return;
  ThreadRecord* rec = local_record();
  if (rec == nullptr) return;
  // relaxed-ok: single writer; see lock_acquired.
  const std::uint32_t depth = rec->held_depth.load(std::memory_order_relaxed);
  for (std::uint32_t i = depth; i-- > 0;) {
    // relaxed-ok: owner-thread read of owner-written slots.
    if (rec->held[i].addr.load(std::memory_order_relaxed) != lock) continue;
    for (std::uint32_t j = i + 1; j < depth; ++j) {
      // relaxed-ok: owner-thread compaction of an out-of-order release; a
      // concurrent dump can see a momentarily duplicated entry, tolerated.
      rec->held[j - 1].addr.store(
          rec->held[j].addr.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      // relaxed-ok: see above.
      rec->held[j - 1].kind.store(
          rec->held[j].kind.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    rec->held_depth.store(depth - 1, std::memory_order_release);
    break;
  }
  emit(EventKind::LockRelease, "release", lookup_lock_name(lock),
       reinterpret_cast<std::uintptr_t>(lock));
}

void register_lock_name(const void* lock, const char* name) noexcept {
  std::uint32_t i = lock_hash(lock) & (kLockNameSlots - 1);
  for (std::uint32_t probes = 0; probes < kLockNameSlots; ++probes) {
    const void* a = g_lock_names[i].addr.load(std::memory_order_acquire);
    if (a == lock) {
      g_lock_names[i].name.store(name, std::memory_order_release);
      return;
    }
    if (a == nullptr) {
      const void* expected = nullptr;
      if (g_lock_names[i].addr.compare_exchange_strong(
              expected, lock, std::memory_order_acq_rel)) {
        g_lock_names[i].name.store(name, std::memory_order_release);
        return;
      }
      if (expected == lock) {
        g_lock_names[i].name.store(name, std::memory_order_release);
        return;
      }
    }
    i = (i + 1) & (kLockNameSlots - 1);
  }
  // Table full: the dump falls back to addresses for this lock.
}

bool set_dump_path(const char* path) noexcept {
  const int fd = ::open(path, O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  const int old = g_dump_fd.exchange(fd, std::memory_order_acq_rel);
  if (old >= 0) ::close(old);
  return true;
}

void install_crash_handler() noexcept {
  if (g_handlers_installed.exchange(true)) return;

  // A dedicated stack: a SIGSEGV from stack overflow cannot run the dumper
  // on the exhausted stack. Fixed 64 KiB (SIGSTKSZ is a sysconf call, not
  // a constant, on modern glibc) — the dumper's frames are shallow.
  static char alt_stack[64 * 1024];
  stack_t ss{};
  ss.ss_sp = alt_stack;
  ss.ss_size = sizeof alt_stack;
  ::sigaltstack(&ss, nullptr);

  struct sigaction sa{};
  sa.sa_handler = crash_handler;
  sa.sa_flags = SA_ONSTACK;
  ::sigemptyset(&sa.sa_mask);
  for (const int sig : {SIGSEGV, SIGBUS, SIGABRT, SIGFPE}) {
    ::sigaction(sig, &sa, nullptr);
  }
  std::set_terminate(terminate_handler);
}

bool write_dump(const char* reason) noexcept {
  int fd = g_dump_fd.load(std::memory_order_acquire);
  if (fd < 0) fd = 2;
  DumpWriter w(fd);
  write_dump_locked(w, reason);
  // relaxed-ok: test-visible completion tally.
  g_dumps.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void start_watchdog(std::uint64_t window_ms, int exit_code) {
  g_watchdog_window_ms.store(window_ms, std::memory_order_release);
  g_watchdog_exit_code.store(exit_code, std::memory_order_release);
  if (g_watchdog != nullptr) return;  // re-arm only
  g_watchdog_stop.store(false, std::memory_order_release);
  // lint-ok: R2 — see the g_watchdog declaration above.
  g_watchdog = new std::thread(watchdog_loop);
}

void stop_watchdog() {
  if (g_watchdog == nullptr) return;
  g_watchdog_stop.store(true, std::memory_order_release);
  g_watchdog->join();
  delete g_watchdog;
  g_watchdog = nullptr;
}

void maybe_inject_fault(const char* phase) noexcept {
  const char* want = fault_phase();
  if (want == nullptr || phase == nullptr) return;
  if (std::strcmp(want, phase) != 0) return;
  emit(EventKind::Mark, "fault.inject", phase, 0);
  volatile int* null_page = nullptr;
  *null_page = 1;  // SIGSEGV inside the named phase, by request
}

namespace {

// Bounded name -> running-max table behind high_water(). The ring events
// give the crash-time view; this table keeps the maxima readable for the
// telemetry sampler. Same publication discipline as g_metrics: cells are
// append-only, the count is released after the cell is filled.
struct HwmCell {
  const char* name = nullptr;
  std::atomic<std::uint64_t> value{0};
};
constexpr std::uint32_t kMaxHwm = 64;
HwmCell g_hwm[kMaxHwm];
std::atomic<std::uint32_t> g_hwm_count{0};
std::atomic<std::uint32_t> g_hwm_claimed{0};

void note_high_water(const char* name, std::uint64_t value) noexcept {
  const std::uint32_t count = g_hwm_count.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (g_hwm[i].name == nullptr) continue;  // racing append, not ours
    if (g_hwm[i].name == name || std::strcmp(g_hwm[i].name, name) == 0) {
      // relaxed-ok: monotonic max; a lost race only re-runs the CAS.
      std::uint64_t cur = g_hwm[i].value.load(std::memory_order_relaxed);
      while (value > cur &&
             // relaxed-ok: see above.
             !g_hwm[i].value.compare_exchange_weak(
                 cur, value, std::memory_order_relaxed)) {
      }
      return;
    }
  }
  const std::uint32_t slot =
      g_hwm_claimed.fetch_add(1, std::memory_order_acq_rel);
  if (slot >= kMaxHwm) return;  // table full: the event still landed
  g_hwm[slot].name = name;
  // relaxed-ok: the release CAS on g_hwm_count publishes the cell.
  g_hwm[slot].value.store(value, std::memory_order_relaxed);
  // Max-CAS: a racing later slot must never shrink the published count.
  std::uint32_t cur = g_hwm_count.load(std::memory_order_acquire);
  while (slot + 1 > cur &&
         !g_hwm_count.compare_exchange_weak(cur, slot + 1,
                                            std::memory_order_release,
                                            std::memory_order_acquire)) {
  }
}

}  // namespace

void high_water(const char* name, std::uint64_t value) noexcept {
  if (name == nullptr) return;
  emit(EventKind::HighWater, name, nullptr, value);
  note_high_water(name, value);
}

std::vector<std::pair<const char*, std::uint64_t>> high_water_snapshot() {
  std::vector<std::pair<const char*, std::uint64_t>> out;
  const std::uint32_t count = g_hwm_count.load(std::memory_order_acquire);
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (g_hwm[i].name == nullptr) continue;  // racing append, cell not ready
    // relaxed-ok: sampler-side read of a monotonic max.
    out.emplace_back(g_hwm[i].name,
                     g_hwm[i].value.load(std::memory_order_relaxed));
  }
  return out;
}

void register_metric(const char* name, const void* obj,
                     std::uint64_t (*read)(const void*)) noexcept {
  if (name == nullptr || read == nullptr) return;
  const std::uint32_t count = g_metric_count.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < count && i < kMaxMetrics; ++i) {
    if (g_metrics[i].name == name ||
        std::strcmp(g_metrics[i].name, name) == 0) {
      return;
    }
  }
  if (count >= kMaxMetrics) return;
  g_metrics[count] = MetricCell{name, obj, read};
  g_metric_count.store(count + 1, std::memory_order_release);
}

std::uint64_t event_count() noexcept {
  // relaxed-ok: test-visible monotonic tally.
  return g_events_total.load(std::memory_order_relaxed);
}

std::uint64_t lost_threads() noexcept {
  // relaxed-ok: test-visible monotonic tally.
  return g_lost_threads.load(std::memory_order_relaxed);
}

std::uint64_t dump_count() noexcept {
  // relaxed-ok: test-visible monotonic tally.
  return g_dumps.load(std::memory_order_relaxed);
}

}  // namespace smpmine::obs::flight
