// Flight recorder: the always-on black box for every mining run.
//
// The tracer (obs/trace.hpp) explains runs that *finish* — it is opt-in,
// unbounded-ish, and exported cooperatively at exit. A crash, deadlock, or
// stalled barrier leaves nothing. This subsystem is the complement:
//
//  - Every thread owns a fixed-size **overwrite-oldest** ring of compact
//    events (phase enter/exit, iteration boundaries, lock acquire/release
//    mirrored from the lock-order recorder, candidate/tree high-water
//    marks, WARN/ERROR log lines). Emission is one array slot write plus
//    two relaxed atomics: no locks, no allocation, no cross-thread write
//    traffic. Strings are identified by static pointer, like TraceEvent.
//    It is ON by default; SMPMINE_FLIGHT=0 / --flight=off disables it.
//
//  - An **async-signal-safe crash dumper** (SIGSEGV/SIGBUS/SIGABRT/SIGFPE
//    and std::terminate) writes a `smpmine.flight.v1` report — per-thread
//    last events with thread names, each thread's currently-held lock
//    stack (checked builds), the active phase/iteration, a metrics
//    snapshot, and build identity — using only raw write(2) on a
//    pre-opened fd (SMPMINE_FLIGHT_DUMP=<path> env, or --flight-dump).
//
//  - A **stall watchdog** thread dumps the same report (without killing
//    the process) when no flight event lands for a configurable window,
//    turning a hung barrier into a readable report.
//
// Decoding: tools/flight/smpmine_flight.py pretty-prints and validates.
//
// Signal-safety rules for everything reachable from the dumper:
//   raw write(2) only — no stdio, no allocation, no locks, no C++ stream;
//   all shared state is lock-free (fixed atomic arrays published with
//   release stores); string pointers must be static storage. Concurrent
//   emitters can tear at most the wrapping slot of each ring — the dump
//   format is line-oriented so the decoder flags (rather than chokes on)
//   a torn record, and the handler re-entry guard turns a fault inside
//   the dumper into a truncated-but-parseable file.
//
// Layering: like parallel/lock_order.cpp, the core is compiled into
// smpmine_util — util/logging.cpp and the lock-order recorder (both in the
// base library) report into it, so it cannot live in smpmine_obs. The one
// piece that needs the metrics registry (sync_metrics_for_dump) is defined
// in obs/flight/flight_metrics.cpp inside smpmine_obs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace smpmine::obs::flight {

/// Events kept per thread (power of two; the ring overwrites oldest).
inline constexpr std::uint32_t kRingEvents = 256;
/// Thread records available process-wide; later registrations are counted
/// in lost_threads() and drop their events.
inline constexpr std::uint32_t kMaxThreads = 512;
/// Held-lock stack depth mirrored per thread (checked builds).
inline constexpr std::uint32_t kMaxHeldLocks = 16;
/// Metric cells snapshotted into a crash dump.
inline constexpr std::uint32_t kMaxMetrics = 96;
/// Thread-name bytes (including the terminating NUL).
inline constexpr std::uint32_t kThreadNameBytes = 32;

enum class EventKind : std::uint16_t {
  None = 0,
  PhaseEnter = 1,
  PhaseExit = 2,
  Iteration = 3,
  LockAcquire = 4,
  LockRelease = 5,
  LogWarn = 6,
  LogError = 7,
  HighWater = 8,
  Send = 9,
  BarrierWait = 10,
  Mark = 11,
};

/// One ring slot. `name`/`detail` must point to static storage (string
/// literals at the emit sites) — the ring stores pointers, never copies.
struct Event {
  std::uint64_t t_ns = 0;        ///< now_ns() at emission
  const char* name = nullptr;    ///< static string, never null once written
  const char* detail = nullptr;  ///< static string or nullptr
  std::uint64_t arg = 0;
  std::uint32_t seq = 0;  ///< global order hint across threads
  std::uint16_t kind = 0;
};

/// Runtime gate, default ON (env SMPMINE_FLIGHT=0 or --flight=off clears
/// it). One relaxed load per emit site.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Nanoseconds since the flight epoch (CLOCK_MONOTONIC, captured at
/// process start). Async-signal-safe.
std::uint64_t now_ns() noexcept;

/// Records one event into the calling thread's ring (registering the
/// thread on first use). Safe from any thread; never blocks, never
/// allocates after the thread's first event.
void emit(EventKind kind, const char* name, const char* detail = nullptr,
          std::uint64_t arg = 0) noexcept;

/// Convenience: a high-water-mark event ("hwm.candidates", value). Besides
/// the ring event, keeps a process-wide running max per name, readable via
/// high_water_snapshot() — the telemetry sampler streams those maxima.
/// `name` must be static storage (it is compared by pointer first).
void high_water(const char* name, std::uint64_t value) noexcept;

/// Name -> running-max pairs recorded by high_water(), in first-seen
/// order. Safe to call while emitters run (relaxed reads of a bounded
/// lock-free table).
std::vector<std::pair<const char*, std::uint64_t>> high_water_snapshot();

// --- thread identity -------------------------------------------------------

/// Copies `name` into the calling thread's record (truncated to
/// kThreadNameBytes-1). obs::set_current_thread_name forwards here, so the
/// tracer, the logger, and the flight dump share one naming registry.
void set_current_thread_name(const char* name) noexcept;

/// The calling thread's registered name ("t<idx>" until renamed), or "" if
/// the thread table overflowed. Pointer is stable for the thread's life.
const char* current_thread_name() noexcept;

// --- phases and iterations -------------------------------------------------

/// Marks the current mining iteration (k) process-wide and emits an
/// Iteration event on the calling thread.
void iteration(std::uint64_t k) noexcept;

/// RAII phase scope: emits PhaseEnter/PhaseExit and maintains the calling
/// thread's "active phase" field shown in dumps. Nesting restores the
/// previous phase. `name` must be a string literal.
class PhaseScope {
 public:
  PhaseScope(const char* name, std::uint64_t arg) noexcept;
  ~PhaseScope() { end(); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  /// Ends the phase now instead of at scope exit; idempotent.
  void end() noexcept;

 private:
  const char* name_ = nullptr;  ///< nullptr: disabled at ctor or ended
  std::uint64_t arg_ = 0;
  const char* prev_name_ = nullptr;
  std::uint64_t prev_arg_ = 0;
  /// Phase pushed onto the phase-epoch stack (util/phase_epoch.hpp) in
  /// SMPMINE_CHECKED builds; tracked separately from name_ because the
  /// epoch contract applies even when the flight recorder itself is
  /// disabled at runtime. Always nullptr in non-checked builds.
  const char* epoch_name_ = nullptr;
};

// --- lock-order mirror (called by parallel/lock_order.cpp, checked builds)

/// Pushes `lock` onto the calling thread's signal-visible held-lock stack
/// and emits a LockAcquire event.
void lock_acquired(const void* lock, const char* kind) noexcept;
/// Pops `lock` (out-of-order release tolerated) and emits LockRelease.
void lock_released(const void* lock) noexcept;
/// Mirrors SMPMINE_LOCK_NAME into a lock-free address->name table so dumps
/// print "HTNode::lock", not just an address. `name`: static storage.
void register_lock_name(const void* lock, const char* name) noexcept;

// --- crash dumper ----------------------------------------------------------

/// Pre-opens (creates/truncates) the dump fd. Returns false when the path
/// cannot be opened. Without a path, dumps go to stderr.
bool set_dump_path(const char* path) noexcept;

/// Installs the SIGSEGV/SIGBUS/SIGABRT/SIGFPE handlers (sigaltstack'd) and
/// the std::terminate hook. Idempotent. Also done automatically at static
/// init when SMPMINE_FLIGHT_DUMP is set in the environment.
void install_crash_handler() noexcept;

/// Writes a `smpmine.flight.v1` report now (reason: static string). Safe
/// from signal context; raw write(2) only. Returns false if nothing could
/// be written. Used by the handlers, the watchdog, and tests.
bool write_dump(const char* reason) noexcept;

// --- stall watchdog --------------------------------------------------------

/// Starts (or re-arms) the watchdog: when no flight event lands within
/// `window_ms`, it write_dump("stall")s — once per stall episode, without
/// killing the process — and re-arms when events resume. `exit_code` >= 0
/// makes it _exit(exit_code) after the dump (death tests / CI only).
void start_watchdog(std::uint64_t window_ms, int exit_code = -1);
/// Stops and joins the watchdog thread. Idempotent.
void stop_watchdog();

// --- fault injection (CI / death tests) ------------------------------------

/// Crashes with a null-pointer write when the environment variable
/// SMPMINE_FLIGHT_FAULT names `phase` (e.g. SMPMINE_FLIGHT_FAULT=count).
/// The env value is read once per process; no-op otherwise.
void maybe_inject_fault(const char* phase) noexcept;

// --- metrics snapshot ------------------------------------------------------

/// Registers a metric cell for the crash dump: `read(obj)` must be
/// async-signal-safe (a relaxed atomic load). `name` must stay valid for
/// the process lifetime. Duplicate names are ignored.
void register_metric(const char* name, const void* obj,
                     std::uint64_t (*read)(const void*)) noexcept;

/// Defined in obs/flight/flight_metrics.cpp (smpmine_obs): walks the
/// MetricsRegistry and register_metric()s every counter, so dumps carry a
/// metrics snapshot. Call after startup (CLI/bench do); cheap, idempotent.
void sync_metrics_for_dump();

// --- introspection (tests, bench) ------------------------------------------

std::uint64_t event_count() noexcept;   ///< events emitted process-wide
std::uint64_t lost_threads() noexcept;  ///< registrations past kMaxThreads
std::uint64_t dump_count() noexcept;    ///< write_dump completions

}  // namespace smpmine::obs::flight

// ---------------------------------------------------------------------------
// Instrumentation macros. The flight recorder has no compile-time gate (it
// is the always-on black box); every site pays one relaxed load when
// disabled at runtime.
// ---------------------------------------------------------------------------
#define SMPMINE_FLIGHT_CONCAT_(a, b) a##b
#define SMPMINE_FLIGHT_CONCAT(a, b) SMPMINE_FLIGHT_CONCAT_(a, b)

/// Scoped phase covering the rest of the enclosing scope. Phase names must
/// match an IterationStats *_seconds field (lint rule R5).
#define SMPMINE_FLIGHT_PHASE(name, arg)                                 \
  ::smpmine::obs::flight::PhaseScope SMPMINE_FLIGHT_CONCAT(             \
      smpmine_flight_, __LINE__)(name, static_cast<std::uint64_t>(arg))
/// Named phase variable for phases that end mid-scope: close it with
/// SMPMINE_FLIGHT_PHASE_END(var) (scope exit also closes it).
#define SMPMINE_FLIGHT_PHASE_NAMED(var, name, arg) \
  ::smpmine::obs::flight::PhaseScope var(name, static_cast<std::uint64_t>(arg))
#define SMPMINE_FLIGHT_PHASE_END(var) (var).end()
