// The one flight-recorder piece that may touch the metrics registry. The
// flight core lives in smpmine_util (logging and the lock-order recorder
// report into it) and must not depend on smpmine_obs; this translation
// unit lives in smpmine_obs and bridges the two at startup: it walks the
// registry once and hands each counter to register_metric() as a
// (name, object, reader) triple. From then on the crash dumper reads the
// counters through the function pointer — one relaxed atomic load each,
// async-signal-safe, no registry mutex anywhere near a signal handler.
#include "obs/flight/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace smpmine::obs::flight {

void sync_metrics_for_dump() {
  MetricsRegistry::instance().for_each_counter(
      [](const char* name, const Counter& c) {
        register_metric(name, &c, [](const void* obj) {
          return static_cast<const Counter*>(obj)->value();
        });
      });
}

}  // namespace smpmine::obs::flight
