// Per-thread hardware-counter phase profiling.
//
// The paper's argument is microarchitectural: CCPD's wins and the
// placement/balancing optimizations (Sections 4-5) are explained by cache
// misses, false sharing and lock waits, not by wall clock alone. This
// subsystem measures exactly that, per phase: every SMPMINE_PERF_PHASE
// scope samples the calling thread's counter session at entry and exit and
// accumulates the delta under the phase's name, so a run manifest can say
// "counting ran at IPC 1.9 with a 4% LLC miss rate" instead of only
// "counting took 1.2 s".
//
// Backends:
//  - hardware: one perf_event_open group per thread (cycles leader;
//    instructions, cache-references, cache-misses, stalled-cycles-backend
//    members, read atomically with PERF_FORMAT_GROUP and scaled for
//    multiplexing), plus getrusage(RUSAGE_THREAD) faults/context switches
//    and CLOCK_THREAD_CPUTIME_ID task time. Counter members the PMU lacks
//    (common for stalled-cycles-backend in VMs) read as zero.
//  - software: the rusage/clock subset only. Same PerfCounterSet shape, so
//    manifests keep one schema; the hardware-derived rates read as zero and
//    the manifest carries backend:"software".
//  - off: every scope is a no-op (the default until init() runs).
//
// Selection: init(Auto) probes perf_event_open once and picks hardware
// when the kernel allows it (perf_event_paranoid <= 2 covers user-space
// self-profiling; containers and lockdown fall back), software otherwise.
// The CLI and benches expose the choice as --perf-backend.
//
// Layering: sits inside src/obs (above util/parallel, below everything
// else). perf_event_open/syscall usage is confined to this directory —
// enforced by lint rule R2.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/ledger/ledger.hpp"
#include "obs/trace.hpp"
#include "parallel/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace smpmine::obs::perf {

enum class PerfBackend : std::uint8_t { Off, Auto, Hardware, Software };

/// "off" / "auto" / "hardware" / "software".
const char* to_string(PerfBackend backend) noexcept;
/// Accepts the CLI spellings: auto | hw | hardware | software | sw | off.
std::optional<PerfBackend> backend_from_string(std::string_view name) noexcept;

/// Counter readings (absolute at sample time, deltas after subtraction).
/// One shape for both backends: the hardware block is zero under the
/// software backend, the rusage block is filled by both.
struct PerfCounterSet {
  // Hardware group (zero under the software backend).
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t stalled_cycles_backend = 0;

  // Thread CPU time (CLOCK_THREAD_CPUTIME_ID), both backends.
  std::uint64_t task_clock_ns = 0;

  // getrusage(RUSAGE_THREAD), both backends.
  std::uint64_t minor_faults = 0;
  std::uint64_t major_faults = 0;
  std::uint64_t voluntary_ctx_switches = 0;
  std::uint64_t involuntary_ctx_switches = 0;
  /// Process high-water RSS in KiB. Not a delta: subtraction and
  /// accumulation keep the maximum observed value.
  std::uint64_t max_rss_kb = 0;

  /// Perf scopes folded into this set (1 per closed PerfScope).
  std::uint64_t samples = 0;

  PerfCounterSet& operator+=(const PerfCounterSet& other) noexcept;
  /// Component-wise `*this - start` (max_rss_kb keeps the end value).
  PerfCounterSet delta_since(const PerfCounterSet& start) const noexcept;

  // Derived attributions (0.0 when the denominator is zero, e.g. under the
  // software backend).
  double ipc() const noexcept;
  double llc_miss_rate() const noexcept;
  double stall_fraction() const noexcept;
};

/// Selects and activates a backend process-wide. Auto probes the hardware
/// backend and falls back to software; an explicit Hardware request also
/// falls back to software when the probe fails (callers can detect the
/// downgrade from the return value). Thread sessions re-open lazily after
/// a backend change. Returns the active backend.
PerfBackend init(PerfBackend requested);

/// The backend selected by the last init() (Off before any init).
PerfBackend active_backend() noexcept;

/// True when perf_event_open is usable for self-profiling in this process
/// (probed once, cached).
bool hardware_available();

/// Samples the calling thread's session into `out` (absolute readings).
/// Returns false when the backend is Off; under the hardware backend a
/// thread whose group cannot be opened degrades to the software fields.
/// Exposed for tests; production code goes through PerfScope.
bool sample_current_thread(PerfCounterSet& out);

/// name-sorted (phase, accumulated deltas) pairs.
using PhasePerfSnapshot = std::vector<std::pair<std::string, PerfCounterSet>>;

/// Process-wide per-phase accumulator. PerfScope destructors fold their
/// deltas in here under the phase's (static) name; the miners snapshot it
/// around each iteration to attribute counters per iteration, and the
/// manifest writer snapshots it once more for run totals.
class PhasePerfRegistry {
 public:
  static PhasePerfRegistry& instance();

  void accumulate(std::string_view phase, const PerfCounterSet& delta)
      EXCLUDES(mu_);
  PhasePerfSnapshot snapshot() const EXCLUDES(mu_);
  /// Forgets all phases (tests and per-run deltas in benches).
  void reset() EXCLUDES(mu_);

 private:
  PhasePerfRegistry() { SMPMINE_LOCK_NAME(&mu_, "PhasePerfRegistry::mu_"); }

  mutable Mutex mu_;
  std::map<std::string, PerfCounterSet, std::less<>> phases_ GUARDED_BY(mu_);
};

/// Per-phase deltas accumulated since `before` was snapshotted; phases
/// whose sample count did not change are omitted.
PhasePerfSnapshot delta_since(const PhasePerfSnapshot& before);

/// RAII phase scope: samples the thread's counter session at construction
/// and destruction, accumulates the delta into PhasePerfRegistry under
/// `phase` (which must be a string literal, like trace span names), and —
/// when the tracer is live — emits an instant event carrying the derived
/// IPC / LLC-miss-rate / stall-fraction so the attribution lands in the
/// Chrome trace next to the phase span it describes.
///
/// Every scope also opens a ledger::LedgerScope — the parallel-efficiency
/// ledger gets its wall/CPU attribution from the same SMPMINE_PERF_PHASE
/// sites, *independently* of the perf backend (the ledger member is
/// declared first so it is live even when the counter session is off).
class PerfScope {
 public:
  explicit PerfScope(const char* phase) noexcept;
  ~PerfScope();

  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;

 private:
  ledger::LedgerScope ledger_scope_;
  const char* phase_ = nullptr;  ///< nullptr: backend off / session failed
  PerfCounterSet start_;
};

}  // namespace smpmine::obs::perf

/// Companion to SMPMINE_TRACE_SPAN/PHASE at the phase sites: declares a
/// PerfScope covering the rest of the enclosing scope. `name` must be a
/// phase name from IterationStats (lint rule R5 checks, same as trace
/// spans). Runtime-gated on the active backend; a no-op costs one atomic
/// load.
#define SMPMINE_PERF_PHASE(name)              \
  ::smpmine::obs::perf::PerfScope SMPMINE_OBS_CONCAT(smpmine_perf_, \
                                                     __LINE__)(name)
