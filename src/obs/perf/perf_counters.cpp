#include "obs/perf/perf_counters.hpp"

#include <fcntl.h>
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <ctime>

namespace smpmine::obs::perf {

namespace {

// ---------------------------------------------------------------------------
// Backend state. No relaxed orderings here: backend flips happen once at
// startup (or between runs in tests) and the seq_cst loads on the sampling
// path are cheap next to a counter read.
// ---------------------------------------------------------------------------

std::atomic<std::uint8_t> g_backend{
    static_cast<std::uint8_t>(PerfBackend::Off)};
/// Bumped by init(); thread sessions re-open when their stamp is stale.
std::atomic<std::uint64_t> g_generation{0};

long sys_perf_event_open(perf_event_attr* attr, pid_t pid, int cpu,
                         int group_fd, unsigned long flags) {
  return ::syscall(__NR_perf_event_open, attr, pid, cpu, group_fd, flags);
}

perf_event_attr make_attr(std::uint32_t type, std::uint64_t config,
                          bool leader) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  // Self-profiling only: with kernel/hypervisor excluded the group opens
  // under perf_event_paranoid <= 2, the default on most distributions.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.disabled = leader ? 1 : 0;  // group starts when the leader is enabled
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return attr;
}

/// The group layout. The leader must be first; members that fail to open
/// (PMU without the event, VM without a stall counter) are simply absent
/// from the group and read as zero.
struct GroupMember {
  std::uint32_t type;
  std::uint64_t config;
  std::uint64_t PerfCounterSet::*field;
};

constexpr GroupMember kGroup[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, &PerfCounterSet::cycles},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS,
     &PerfCounterSet::instructions},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES,
     &PerfCounterSet::cache_references},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES,
     &PerfCounterSet::cache_misses},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND,
     &PerfCounterSet::stalled_cycles_backend},
};
constexpr int kGroupSize = static_cast<int>(std::size(kGroup));

/// One perf_event group owned by one thread. Opened lazily on first
/// sample under the hardware backend; closed when the thread exits or the
/// backend generation changes.
class ThreadPerfSession {
 public:
  ~ThreadPerfSession() { close_fds(); }

  /// True when the session is open for the current backend generation
  /// (opening it now if needed).
  bool ensure_open(std::uint64_t generation) {
    if (generation_ == generation) return leader_fd_ >= 0;
    close_fds();
    generation_ = generation;
    open_fds();
    return leader_fd_ >= 0;
  }

  /// Reads the whole group atomically and scales for multiplexing.
  bool read_group(PerfCounterSet& out) {
    if (leader_fd_ < 0) return false;
    // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr].
    std::uint64_t buf[3 + kGroupSize] = {};
    const ssize_t want =
        static_cast<ssize_t>(sizeof(std::uint64_t) * (3 + open_count_));
    if (::read(leader_fd_, buf, sizeof(buf)) < want) return false;
    const std::uint64_t time_enabled = buf[1];
    const std::uint64_t time_running = buf[2];
    for (int i = 0; i < kGroupSize; ++i) {
      const int slot = slot_[i];
      if (slot < 0) continue;
      std::uint64_t value = buf[3 + slot];
      // Scale for counter multiplexing: when the PMU rotated this group
      // out, extrapolate to the full enabled window.
      if (time_running != 0 && time_running < time_enabled) {
        value = static_cast<std::uint64_t>(
            static_cast<double>(value) * static_cast<double>(time_enabled) /
            static_cast<double>(time_running));
      }
      out.*(kGroup[i].field) = value;
    }
    return true;
  }

 private:
  void open_fds() {
    open_count_ = 0;
    for (int i = 0; i < kGroupSize; ++i) slot_[i] = -1;
    perf_event_attr leader = make_attr(kGroup[0].type, kGroup[0].config,
                                       /*leader=*/true);
    leader_fd_ = static_cast<int>(
        sys_perf_event_open(&leader, /*pid=*/0, /*cpu=*/-1,
                            /*group_fd=*/-1, PERF_FLAG_FD_CLOEXEC));
    if (leader_fd_ < 0) return;
    slot_[0] = open_count_++;
    member_fds_[0] = leader_fd_;
    for (int i = 1; i < kGroupSize; ++i) {
      perf_event_attr attr = make_attr(kGroup[i].type, kGroup[i].config,
                                       /*leader=*/false);
      const int fd = static_cast<int>(
          sys_perf_event_open(&attr, /*pid=*/0, /*cpu=*/-1, leader_fd_,
                              PERF_FLAG_FD_CLOEXEC));
      if (fd < 0) continue;  // member unsupported on this PMU: reads as zero
      member_fds_[open_count_] = fd;
      slot_[i] = open_count_++;
    }
    ::ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ::ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  }

  void close_fds() {
    for (int i = 0; i < open_count_; ++i) {
      if (member_fds_[i] >= 0) ::close(member_fds_[i]);
      member_fds_[i] = -1;
    }
    leader_fd_ = -1;
    open_count_ = 0;
  }

  int leader_fd_ = -1;
  int member_fds_[kGroupSize] = {-1, -1, -1, -1, -1};
  /// kGroup index -> position in the kernel's read buffer, -1 if unopened.
  int slot_[kGroupSize] = {-1, -1, -1, -1, -1};
  int open_count_ = 0;
  std::uint64_t generation_ = ~std::uint64_t{0};
};

thread_local ThreadPerfSession tls_session;

std::uint64_t thread_cputime_ns() {
  timespec ts{};
  if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

void fill_software_counters(PerfCounterSet& out) {
  out.task_clock_ns = thread_cputime_ns();
  rusage ru{};
  if (::getrusage(RUSAGE_THREAD, &ru) != 0) return;
  out.minor_faults = static_cast<std::uint64_t>(ru.ru_minflt);
  out.major_faults = static_cast<std::uint64_t>(ru.ru_majflt);
  out.voluntary_ctx_switches = static_cast<std::uint64_t>(ru.ru_nvcsw);
  out.involuntary_ctx_switches = static_cast<std::uint64_t>(ru.ru_nivcsw);
  out.max_rss_kb = static_cast<std::uint64_t>(ru.ru_maxrss);
}

std::uint32_t to_milli_clamped(double v) {
  if (v <= 0.0) return 0;
  const double milli = v * 1e3;
  constexpr double kMax = 4294967295.0;
  return milli >= kMax ? static_cast<std::uint32_t>(kMax)
                       : static_cast<std::uint32_t>(milli);
}

}  // namespace

const char* to_string(PerfBackend backend) noexcept {
  switch (backend) {
    case PerfBackend::Off:
      return "off";
    case PerfBackend::Auto:
      return "auto";
    case PerfBackend::Hardware:
      return "hardware";
    case PerfBackend::Software:
      return "software";
  }
  return "off";
}

std::optional<PerfBackend> backend_from_string(
    std::string_view name) noexcept {
  if (name == "auto") return PerfBackend::Auto;
  if (name == "hw" || name == "hardware") return PerfBackend::Hardware;
  if (name == "sw" || name == "software") return PerfBackend::Software;
  if (name == "off") return PerfBackend::Off;
  return std::nullopt;
}

PerfCounterSet& PerfCounterSet::operator+=(
    const PerfCounterSet& other) noexcept {
  cycles += other.cycles;
  instructions += other.instructions;
  cache_references += other.cache_references;
  cache_misses += other.cache_misses;
  stalled_cycles_backend += other.stalled_cycles_backend;
  task_clock_ns += other.task_clock_ns;
  minor_faults += other.minor_faults;
  major_faults += other.major_faults;
  voluntary_ctx_switches += other.voluntary_ctx_switches;
  involuntary_ctx_switches += other.involuntary_ctx_switches;
  if (other.max_rss_kb > max_rss_kb) max_rss_kb = other.max_rss_kb;
  samples += other.samples;
  return *this;
}

PerfCounterSet PerfCounterSet::delta_since(
    const PerfCounterSet& start) const noexcept {
  // Saturating subtraction: multiplex extrapolation and rusage can in rare
  // cases read non-monotonically; a phase delta must never wrap to 2^64.
  const auto sub = [](std::uint64_t end, std::uint64_t begin) {
    return end > begin ? end - begin : 0;
  };
  PerfCounterSet d;
  d.cycles = sub(cycles, start.cycles);
  d.instructions = sub(instructions, start.instructions);
  d.cache_references = sub(cache_references, start.cache_references);
  d.cache_misses = sub(cache_misses, start.cache_misses);
  d.stalled_cycles_backend =
      sub(stalled_cycles_backend, start.stalled_cycles_backend);
  d.task_clock_ns = sub(task_clock_ns, start.task_clock_ns);
  d.minor_faults = sub(minor_faults, start.minor_faults);
  d.major_faults = sub(major_faults, start.major_faults);
  d.voluntary_ctx_switches =
      sub(voluntary_ctx_switches, start.voluntary_ctx_switches);
  d.involuntary_ctx_switches =
      sub(involuntary_ctx_switches, start.involuntary_ctx_switches);
  d.max_rss_kb = max_rss_kb;
  d.samples = sub(samples, start.samples);
  return d;
}

double PerfCounterSet::ipc() const noexcept {
  if (cycles == 0) return 0.0;
  return static_cast<double>(instructions) / static_cast<double>(cycles);
}

double PerfCounterSet::llc_miss_rate() const noexcept {
  if (cache_references == 0) return 0.0;
  return static_cast<double>(cache_misses) /
         static_cast<double>(cache_references);
}

double PerfCounterSet::stall_fraction() const noexcept {
  if (cycles == 0) return 0.0;
  return static_cast<double>(stalled_cycles_backend) /
         static_cast<double>(cycles);
}

bool hardware_available() {
  // Probed once per process: open a minimal cycles counter on self, read
  // it, close it. Fails under perf_event_paranoid lockdown, seccomp
  // filters, or PMU-less VMs — everything the software backend covers.
  static const bool available = [] {
    perf_event_attr attr =
        make_attr(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES,
                  /*leader=*/false);
    attr.disabled = 0;
    const int fd = static_cast<int>(
        sys_perf_event_open(&attr, /*pid=*/0, /*cpu=*/-1,
                            /*group_fd=*/-1, PERF_FLAG_FD_CLOEXEC));
    if (fd < 0) return false;
    // A group-format read on a solo counter: nr + times + one value.
    std::uint64_t buf[4] = {};
    const bool readable = ::read(fd, buf, sizeof(buf)) >=
                          static_cast<ssize_t>(4 * sizeof(std::uint64_t));
    ::close(fd);
    return readable;
  }();
  return available;
}

PerfBackend init(PerfBackend requested) {
  PerfBackend chosen = requested;
  if (requested == PerfBackend::Auto || requested == PerfBackend::Hardware) {
    chosen = hardware_available() ? PerfBackend::Hardware
                                  : PerfBackend::Software;
  }
  g_backend.store(static_cast<std::uint8_t>(chosen));
  g_generation.fetch_add(1);
  return chosen;
}

PerfBackend active_backend() noexcept {
  return static_cast<PerfBackend>(g_backend.load());
}

bool sample_current_thread(PerfCounterSet& out) {
  const PerfBackend backend = active_backend();
  if (backend == PerfBackend::Off) return false;
  out = PerfCounterSet{};
  fill_software_counters(out);
  if (backend == PerfBackend::Hardware &&
      tls_session.ensure_open(g_generation.load())) {
    // A thread whose group fails to open (fd limits mid-run) degrades to
    // the software fields; the group reads stay zero.
    tls_session.read_group(out);
  }
  return true;
}

PhasePerfRegistry& PhasePerfRegistry::instance() {
  // Leaked on purpose, same as MetricsRegistry: PerfScope destructors on
  // worker threads may fire during static destruction.
  static PhasePerfRegistry* registry = new PhasePerfRegistry();
  return *registry;
}

void PhasePerfRegistry::accumulate(std::string_view phase,
                                   const PerfCounterSet& delta) {
  MutexLock g(mu_);
  auto it = phases_.find(phase);
  if (it == phases_.end()) {
    it = phases_.emplace(std::string(phase), PerfCounterSet{}).first;
  }
  it->second += delta;
}

PhasePerfSnapshot PhasePerfRegistry::snapshot() const {
  PhasePerfSnapshot out;
  MutexLock g(mu_);
  out.reserve(phases_.size());
  for (const auto& [phase, counters] : phases_) {
    out.emplace_back(phase, counters);
  }
  return out;
}

void PhasePerfRegistry::reset() {
  MutexLock g(mu_);
  phases_.clear();
}

PhasePerfSnapshot delta_since(const PhasePerfSnapshot& before) {
  const PhasePerfSnapshot now = PhasePerfRegistry::instance().snapshot();
  PhasePerfSnapshot out;
  for (const auto& [phase, counters] : now) {
    const auto it =
        std::find_if(before.begin(), before.end(),
                     [&](const auto& p) { return p.first == phase; });
    const PerfCounterSet delta =
        it == before.end() ? counters : counters.delta_since(it->second);
    if (delta.samples != 0) out.emplace_back(phase, delta);
  }
  return out;
}

PerfScope::PerfScope(const char* phase) noexcept : ledger_scope_(phase) {
  // The ledger member above records wall/CPU regardless of the perf
  // backend; everything below is counter-session-only.
  if (active_backend() == PerfBackend::Off) return;
  if (!sample_current_thread(start_)) return;
  phase_ = phase;
}

PerfScope::~PerfScope() {
  if (phase_ == nullptr) return;
  PerfCounterSet end;
  if (!sample_current_thread(end)) return;
  PerfCounterSet delta = end.delta_since(start_);
  delta.samples = 1;
  PhasePerfRegistry::instance().accumulate(phase_, delta);
  if constexpr (kTraceCompiled) {
    if (Tracer::enabled()) {
      TraceEvent ev;
      ev.start_ns = now_ns();
      ev.name = phase_;
      ev.arg_name = "task_clock_us";
      ev.arg_value = delta.task_clock_ns / 1000;
      ev.instant = true;
      ev.has_perf = true;
      ev.perf_ipc_milli = to_milli_clamped(delta.ipc());
      ev.perf_llc_miss_milli = to_milli_clamped(delta.llc_miss_rate());
      ev.perf_stall_milli = to_milli_clamped(delta.stall_fraction());
      Tracer::instance().local_buffer().emit(ev);
    }
  }
}

}  // namespace smpmine::obs::perf
