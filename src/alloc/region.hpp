// Custom memory placement library (paper Section 5).
//
// The paper replaces the Unix malloc with a custom allocator that (a) gives
// explicit control over *where* related blocks land, (b) frees a whole data
// structure at once, (c) reuses pre-allocated memory across iterations, and
// (d) keeps boundary-tag bookkeeping out of the cache. `Region` is that
// allocator: a chain of large chunks with bump-pointer allocation, O(1)
// whole-region reset, and no per-block headers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "parallel/spinlock.hpp"
#include "util/thread_annotations.hpp"
#include "util/types.hpp"

namespace smpmine {

/// Aggregate allocation statistics for one arena/region.
struct AllocStats {
  std::uint64_t allocations = 0;  ///< number of alloc() calls served
  std::uint64_t bytes_requested = 0;
  std::uint64_t bytes_reserved = 0;  ///< chunk memory held from the system
  std::uint64_t chunks = 0;          ///< number of discontiguous chunks
};

/// Abstract allocation interface used by the hash tree so one build/traverse
/// code path serves every placement policy.
class Arena {
 public:
  virtual ~Arena() = default;

  /// Returns `bytes` of storage aligned to `align`. Never returns nullptr;
  /// throws std::bad_alloc on exhaustion. Thread-safe: the parallel tree
  /// build allocates from shared arenas concurrently.
  virtual void* alloc(std::size_t bytes, std::size_t align) = 0;

  virtual AllocStats stats() const = 0;

  /// Typed convenience: allocates raw storage for `n` objects of T (no
  /// construction; callers placement-new into it).
  template <typename T>
  T* alloc_array(std::size_t n) {
    return static_cast<T*>(alloc(n * sizeof(T), alignof(T)));
  }
};

/// Bump-pointer region. Allocations are contiguous within a chunk in call
/// order — this *is* the placement mechanism: structures allocated
/// back-to-back share cache lines and pages.
class Region final : public Arena {
 public:
  /// `chunk_bytes` is the granularity of system requests. Allocations larger
  /// than a chunk get a dedicated chunk.
  explicit Region(std::size_t chunk_bytes = kDefaultChunkBytes);
  ~Region() override;

  Region(const Region&) = delete;
  Region& operator=(const Region&) = delete;

  void* alloc(std::size_t bytes, std::size_t align) override;
  AllocStats stats() const override;

  /// Drops every allocation but keeps the first chunk for reuse — the
  /// paper's "efficient reuse of pre-allocated memory" between iterations.
  void reset();

  /// Releases all chunks back to the system.
  void release();

  std::size_t bytes_used() const {
    SpinLockGuard guard(mu_);
    return used_;
  }

  static constexpr std::size_t kDefaultChunkBytes = 1u << 20;

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t offset = 0;
  };

  Chunk& grow(std::size_t min_bytes) REQUIRES(mu_);

  mutable SpinLock mu_;
  std::vector<Chunk> chunks_ GUARDED_BY(mu_);
  const std::size_t chunk_bytes_;  // set once in the constructor, then read-only
  std::size_t used_ GUARDED_BY(mu_) = 0;
  AllocStats stats_ GUARDED_BY(mu_);
};

/// Baseline arena backed by individual `operator new` calls — the paper's
/// "standard Unix malloc library" configuration (CCPD baseline). Blocks are
/// scattered wherever the general-purpose heap puts them.
class MallocArena final : public Arena {
 public:
  MallocArena() { SMPMINE_LOCK_NAME(&mu_, "MallocArena::mu_"); }
  ~MallocArena() override;

  MallocArena(const MallocArena&) = delete;
  MallocArena& operator=(const MallocArena&) = delete;

  void* alloc(std::size_t bytes, std::size_t align) override;
  AllocStats stats() const override;

  /// Frees every block (each one individually, as free() would).
  void release();

 private:
  struct Block {
    void* ptr;
    std::size_t align;
  };
  mutable SpinLock mu_;
  std::vector<Block> blocks_ GUARDED_BY(mu_);
  AllocStats stats_ GUARDED_BY(mu_);
};

}  // namespace smpmine
