#include "alloc/placement.hpp"

namespace smpmine {

bool policy_uses_region(PlacementPolicy p) {
  return p != PlacementPolicy::Malloc;
}

bool policy_localized(PlacementPolicy p) {
  return p == PlacementPolicy::LPP || p == PlacementPolicy::LLPP;
}

bool policy_remaps(PlacementPolicy p) {
  return p == PlacementPolicy::GPP || p == PlacementPolicy::LGPP ||
         p == PlacementPolicy::LcaGpp;
}

bool policy_segregates_counters(PlacementPolicy p) {
  return p == PlacementPolicy::LSPP || p == PlacementPolicy::LLPP ||
         p == PlacementPolicy::LGPP;
}

bool policy_local_counters(PlacementPolicy p) {
  return p == PlacementPolicy::LcaGpp;
}

std::string to_string(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::Malloc: return "CCPD";
    case PlacementPolicy::SPP: return "SPP";
    case PlacementPolicy::LPP: return "LPP";
    case PlacementPolicy::GPP: return "GPP";
    case PlacementPolicy::LSPP: return "L-SPP";
    case PlacementPolicy::LLPP: return "L-LPP";
    case PlacementPolicy::LGPP: return "L-GPP";
    case PlacementPolicy::LcaGpp: return "LCA-GPP";
  }
  return "?";
}

std::optional<PlacementPolicy> placement_from_string(const std::string& name) {
  if (name == "CCPD" || name == "malloc") return PlacementPolicy::Malloc;
  if (name == "SPP" || name == "spp") return PlacementPolicy::SPP;
  if (name == "LPP" || name == "lpp") return PlacementPolicy::LPP;
  if (name == "GPP" || name == "gpp") return PlacementPolicy::GPP;
  if (name == "L-SPP" || name == "lspp") return PlacementPolicy::LSPP;
  if (name == "L-LPP" || name == "llpp") return PlacementPolicy::LLPP;
  if (name == "L-GPP" || name == "lgpp") return PlacementPolicy::LGPP;
  if (name == "LCA-GPP" || name == "lca" || name == "lcagpp") {
    return PlacementPolicy::LcaGpp;
  }
  return std::nullopt;
}

const char* to_string(SppVariant v) {
  switch (v) {
    case SppVariant::Common: return "common";
    case SppVariant::Individual: return "individual";
    case SppVariant::Grouped: return "grouped";
  }
  return "?";
}

PlacementArenas::PlacementArenas(PlacementPolicy policy, SppVariant variant)
    : policy_(policy), variant_(variant) {
  // The arena bundle is recycled in candgen (reset), handed a remap region
  // in remap — pccd remaps inside its fused worker candgen phase — a freeze
  // region in freeze, and a tid-bitmap region in vertbuild; outside those
  // phases it is append-only.
  SMPMINE_PHASE_EPOCH_DECLARE(epoch_, "PlacementArenas", "candgen", "remap",
                              "freeze", "vertbuild");
  if (policy_uses_region(policy_)) {
    tree_ = std::make_unique<Region>();
  } else {
    tree_ = std::make_unique<MallocArena>();
    variant_ = SppVariant::Common;  // variants are region-policy features
  }
  if (policy_segregates_counters(policy_) || policy_local_counters(policy_)) {
    // LCA also keeps its (never-contended) global counter array out of the
    // read-only tree region.
    counters_ = std::make_unique<Region>();
  }
  switch (variant_) {
    case SppVariant::Common:
      break;  // kind_arena_ stays null => everything from tree_
    case SppVariant::Individual:
      // One region per block kind; tree_ serves kind Node.
      kind_arena_[static_cast<std::size_t>(BlockKind::Node)] = tree_.get();
      for (const BlockKind kind :
           {BlockKind::HashTable, BlockKind::ListHeader, BlockKind::ListNode,
            BlockKind::Itemset}) {
        extra_.push_back(std::make_unique<Region>());
        kind_arena_[static_cast<std::size_t>(kind)] = extra_.back().get();
      }
      break;
    case SppVariant::Grouped: {
      // Tree skeleton (HTN, HTNP, ILH) from tree_; leaf contents (LN,
      // itemsets) from one shared second region.
      extra_.push_back(std::make_unique<Region>());
      Region* leaf_region = extra_.back().get();
      kind_arena_[static_cast<std::size_t>(BlockKind::Node)] = tree_.get();
      kind_arena_[static_cast<std::size_t>(BlockKind::HashTable)] =
          tree_.get();
      kind_arena_[static_cast<std::size_t>(BlockKind::ListHeader)] =
          tree_.get();
      kind_arena_[static_cast<std::size_t>(BlockKind::ListNode)] = leaf_region;
      kind_arena_[static_cast<std::size_t>(BlockKind::Itemset)] = leaf_region;
      break;
    }
  }
}

AllocStats PlacementArenas::tree_stats() const {
  AllocStats total = tree_->stats();
  for (const auto& region : extra_) {
    const AllocStats s = region->stats();
    total.allocations += s.allocations;
    total.bytes_requested += s.bytes_requested;
    total.bytes_reserved += s.bytes_reserved;
    total.chunks += s.chunks;
  }
  return total;
}

Region& PlacementArenas::remap_target() {
  SMPMINE_PHASE_EPOCH_WRITE(epoch_);
  if (!remap_) remap_ = std::make_unique<Region>();
  return *remap_;
}

Region& PlacementArenas::freeze_target() {
  SMPMINE_PHASE_EPOCH_WRITE(epoch_);
  if (!freeze_) freeze_ = std::make_unique<Region>();
  return *freeze_;
}

Region& PlacementArenas::vertical_target() {
  SMPMINE_PHASE_EPOCH_WRITE(epoch_);
  if (!vertical_) vertical_ = std::make_unique<Region>();
  return *vertical_;
}

void PlacementArenas::reset() {
  SMPMINE_PHASE_EPOCH_WRITE(epoch_);
  if (policy_uses_region(policy_)) {
    static_cast<Region*>(tree_.get())->reset();
  } else {
    static_cast<MallocArena*>(tree_.get())->release();
  }
  for (auto& region : extra_) region->reset();
  if (counters_) static_cast<Region*>(counters_.get())->reset();
  if (remap_) remap_->reset();
  if (freeze_) freeze_->reset();
  if (vertical_) vertical_->reset();
}

}  // namespace smpmine
