// Locality diagnostics over a recorded access trace.
//
// Wall-clock locality effects are noisy on a shared 1-core container, so the
// benches also report deterministic proxies: given the sequence of addresses
// a traversal touches, how many distinct cache lines / pages does it span,
// and how far apart are consecutive touches? A placement policy that works
// shrinks all three.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace smpmine {

struct LocalityReport {
  std::uint64_t touches = 0;          ///< recorded accesses
  std::uint64_t distinct_lines = 0;   ///< distinct 64B cache lines
  std::uint64_t distinct_pages = 0;   ///< distinct 4KiB pages
  double mean_stride = 0.0;           ///< mean |addr[i+1]-addr[i]| in bytes
  double line_reuse = 0.0;            ///< touches per distinct line
  /// Fraction of consecutive touch pairs that land on the same cache line —
  /// the direct payoff of grouping related blocks.
  double same_line_rate = 0.0;
};

/// Computes the report for an address trace (order matters).
LocalityReport analyze_trace(const std::vector<std::uintptr_t>& trace);

}  // namespace smpmine
