// Placement policies for the hash tree (paper Section 5, Figure 5).
//
// Each policy names a combination of three orthogonal mechanisms:
//   1. where tree blocks come from  — scattered malloc vs one bump region,
//   2. whether the built tree is *remapped* depth-first (GPP),
//   3. where read-write state (locks + support counters) lives —
//      interleaved with tree data, a segregated region (L-*), or
//      per-thread private arrays with a final reduction (LCA).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "alloc/region.hpp"
#include "util/phase_epoch.hpp"

namespace smpmine {

enum class PlacementPolicy {
  Malloc,  ///< CCPD baseline: standard allocator, counters inline
  SPP,     ///< simple placement: one common region, creation order
  LPP,     ///< localized placement: reservation groups (LN,itemset),(HTN,ILH)
  GPP,     ///< global placement: SPP build + depth-first remap
  LSPP,    ///< SPP + segregated lock/counter region
  LLPP,    ///< LPP + segregated lock/counter region
  LGPP,    ///< GPP + segregated lock/counter region
  LcaGpp,  ///< GPP + per-thread local counter arrays (privatize & reduce)
};

/// True when tree blocks are served by a bump Region (everything but Malloc).
bool policy_uses_region(PlacementPolicy p);

/// True when (ListNode, itemset) and (HTN, list header) pairs are
/// co-reserved (LPP family).
bool policy_localized(PlacementPolicy p);

/// True when the tree is remapped depth-first after the build (GPP family).
bool policy_remaps(PlacementPolicy p);

/// True when locks + counters are segregated from read-only tree data.
bool policy_segregates_counters(PlacementPolicy p);

/// True when support counters are privatized per thread (LCA-GPP).
bool policy_local_counters(PlacementPolicy p);

std::string to_string(PlacementPolicy p);
std::optional<PlacementPolicy> placement_from_string(const std::string& name);

/// The hash tree's block kinds (paper Figure 3); placement variants route
/// each kind to a region.
enum class BlockKind {
  Node,        ///< HTN
  HashTable,   ///< HTNP pointer array
  ListHeader,  ///< ILH
  ListNode,    ///< LN
  Itemset,     ///< the candidate record
};
inline constexpr std::size_t kNumBlockKinds = 5;

/// Section 5.1's three SPP variations: where region-based policies draw
/// their tree blocks from.
enum class SppVariant {
  Common,      ///< all block kinds share one region (the paper's SPP)
  Individual,  ///< one region per block kind
  Grouped,     ///< program-semantics groups: tree skeleton (HTN, HTNP, ILH)
               ///< vs leaf contents (LN, itemsets)
};

const char* to_string(SppVariant v);

/// All policies in the order the paper's Figure 13 charts them.
inline constexpr PlacementPolicy kAllPolicies[] = {
    PlacementPolicy::Malloc, PlacementPolicy::SPP,  PlacementPolicy::LSPP,
    PlacementPolicy::LLPP,   PlacementPolicy::GPP,  PlacementPolicy::LGPP,
    PlacementPolicy::LcaGpp,
};

/// The bundle of arenas one hash tree draws from under a given policy.
/// Owns the backing memory; destroying it frees the whole tree at once
/// (the paper's "faster memory freeing option").
class PlacementArenas {
 public:
  explicit PlacementArenas(PlacementPolicy policy,
                           SppVariant variant = SppVariant::Common);

  PlacementPolicy policy() const { return policy_; }
  SppVariant variant() const { return variant_; }

  /// Arena for tree structure blocks. With the Common variant (or the
  /// Malloc policy) every kind maps to one arena; Individual/Grouped route
  /// kinds to their own regions.
  Arena& tree(BlockKind kind = BlockKind::Node) {
    Arena* a = kind_arena_[static_cast<std::size_t>(kind)];
    return a != nullptr ? *a : *tree_;
  }

  /// Arena for read-write blocks (locks + counters). Identical to tree()
  /// unless the policy segregates them.
  Arena& counters() { return counters_ ? *counters_ : *tree_; }

  /// Fresh region the depth-first remap copies into (GPP family only).
  Region& remap_target();

  /// Region the frozen flat counting kernel packs its CSR arrays into
  /// (lazily created; reset together with the other arenas). Structure
  /// arrays always come from a Region — contiguity is the kernel's point —
  /// while the frozen counters still come from counters(), preserving the
  /// L-* policies' read/write segregation.
  Region& freeze_target();

  /// Region the vertical kernel's tid-bitmap plane lives in (lazily
  /// created; reset together with the other arenas). One contiguous
  /// rows x words u64 block — built in vertbuild, read-only while
  /// counting, recycled with the iteration.
  Region& vertical_target();

  /// Recycles every arena for the next iteration's tree.
  void reset();

  /// Aggregate over every tree arena (one or several under the
  /// Individual/Grouped variants).
  AllocStats tree_stats() const;

 private:
  PlacementPolicy policy_;
  SppVariant variant_ = SppVariant::Common;
  std::unique_ptr<Arena> tree_;
  std::unique_ptr<Arena> counters_;  // null when not segregated
  std::unique_ptr<Region> remap_;    // lazily created
  std::unique_ptr<Region> freeze_;   // lazily created
  std::unique_ptr<Region> vertical_; // lazily created
  /// Extra regions for the Individual/Grouped variants; entries may alias.
  std::vector<std::unique_ptr<Region>> extra_;
  Arena* kind_arena_[kNumBlockKinds] = {};
  /// Phase-epoch stamp (SMPMINE_CHECKED validator, empty struct otherwise):
  /// reset/remap_target/freeze_target/vertical_target may only run in their
  /// declared phases (candgen / remap / freeze / vertbuild — see the
  /// constructor).
  phaseepoch::PhaseEpoch epoch_;
};

}  // namespace smpmine
