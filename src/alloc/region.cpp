#include "alloc/region.hpp"

#include <cstdlib>
#include <new>

#include "util/checked.hpp"

namespace smpmine {
namespace {

std::size_t align_up(std::size_t value, std::size_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

Region::Region(std::size_t chunk_bytes) : chunk_bytes_(chunk_bytes) {
  SMPMINE_LOCK_NAME(&mu_, "Region::mu_");
}

Region::~Region() = default;

Region::Chunk& Region::grow(std::size_t min_bytes) REQUIRES(mu_) {
  const std::size_t size = std::max(chunk_bytes_, min_bytes);
  Chunk chunk;
  chunk.data = std::make_unique<std::byte[]>(size);
  chunk.size = size;
  chunks_.push_back(std::move(chunk));
  stats_.chunks = chunks_.size();
  stats_.bytes_reserved += size;
  return chunks_.back();
}

void* Region::alloc(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  SMPMINE_ASSERT(align != 0 && (align & (align - 1)) == 0,
                 "allocation alignment must be a power of two");
  SpinLockGuard guard(mu_);
  Chunk* chunk = chunks_.empty() ? nullptr : &chunks_.back();
  std::size_t offset = 0;
  if (chunk != nullptr) {
    offset = align_up(
        reinterpret_cast<std::uintptr_t>(chunk->data.get()) + chunk->offset,
        align) -
        reinterpret_cast<std::uintptr_t>(chunk->data.get());
  }
  if (chunk == nullptr || offset + bytes > chunk->size) {
    // New chunks from make_unique are max_align_t-aligned; over-reserve so
    // any alignment request fits.
    chunk = &grow(bytes + align);
    offset = align_up(reinterpret_cast<std::uintptr_t>(chunk->data.get()),
                      align) -
             reinterpret_cast<std::uintptr_t>(chunk->data.get());
  }
  void* result = chunk->data.get() + offset;
  SMPMINE_ASSERT(reinterpret_cast<std::uintptr_t>(result) % align == 0,
                 "bump allocation violated the requested alignment");
  SMPMINE_ASSERT(offset + bytes <= chunk->size,
                 "bump allocation overran its chunk");
  chunk->offset = offset + bytes;
  used_ += bytes;
  ++stats_.allocations;
  stats_.bytes_requested += bytes;
  return result;
}

AllocStats Region::stats() const {
  SpinLockGuard guard(mu_);
  return stats_;
}

void Region::reset() {
  SpinLockGuard guard(mu_);
  if (chunks_.size() > 1) {
    chunks_.erase(chunks_.begin() + 1, chunks_.end());
  }
  if (!chunks_.empty()) {
    chunks_.front().offset = 0;
    stats_.bytes_reserved = chunks_.front().size;
  } else {
    stats_.bytes_reserved = 0;
  }
  stats_.chunks = chunks_.size();
  used_ = 0;
}

void Region::release() {
  SpinLockGuard guard(mu_);
  chunks_.clear();
  stats_.chunks = 0;
  stats_.bytes_reserved = 0;
  used_ = 0;
}

MallocArena::~MallocArena() { release(); }

void* MallocArena::alloc(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  void* ptr = nullptr;
  if (align > alignof(std::max_align_t)) {
    ptr = ::operator new(bytes, std::align_val_t(align));
  } else {
    ptr = ::operator new(bytes);
    align = 0;  // remember which delete to use
  }
  SpinLockGuard guard(mu_);
  blocks_.push_back(Block{ptr, align});
  ++stats_.allocations;
  stats_.bytes_requested += bytes;
  stats_.bytes_reserved += bytes;
  stats_.chunks = blocks_.size();  // every block is its own "chunk"
  return ptr;
}

AllocStats MallocArena::stats() const {
  SpinLockGuard guard(mu_);
  return stats_;
}

void MallocArena::release() {
  SpinLockGuard guard(mu_);
  for (const Block& b : blocks_) {
    if (b.align != 0) {
      ::operator delete(b.ptr, std::align_val_t(b.align));
    } else {
      ::operator delete(b.ptr);
    }
  }
  blocks_.clear();
  stats_.chunks = 0;
  stats_.bytes_reserved = 0;
}

}  // namespace smpmine
