#include "alloc/alloc_stats.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace smpmine {

LocalityReport analyze_trace(const std::vector<std::uintptr_t>& trace) {
  LocalityReport report;
  report.touches = trace.size();
  if (trace.empty()) return report;

  std::unordered_set<std::uintptr_t> lines;
  std::unordered_set<std::uintptr_t> pages;
  lines.reserve(trace.size());
  pages.reserve(trace.size() / 8 + 1);

  double stride_sum = 0.0;
  std::uint64_t same_line = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    lines.insert(trace[i] / kCacheLine);
    pages.insert(trace[i] / 4096);
    if (i > 0) {
      const auto a = trace[i - 1];
      const auto b = trace[i];
      stride_sum += static_cast<double>(a > b ? a - b : b - a);
      if (a / kCacheLine == b / kCacheLine) ++same_line;
    }
  }
  report.distinct_lines = lines.size();
  report.distinct_pages = pages.size();
  if (trace.size() > 1) {
    report.mean_stride = stride_sum / static_cast<double>(trace.size() - 1);
    report.same_line_rate =
        static_cast<double>(same_line) / static_cast<double>(trace.size() - 1);
  }
  report.line_reuse = static_cast<double>(report.touches) /
                      static_cast<double>(report.distinct_lines);
  return report;
}

}  // namespace smpmine
