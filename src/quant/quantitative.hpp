// Quantitative association mining — Srikant & Agrawal, "Mining Quantitative
// Association Rules in Large Relational Tables" (SIGMOD'96), the third
// application the paper's conclusion names.
//
// A relational table with numeric and categorical attributes is mapped to a
// boolean basket problem:
//   - categorical attributes: one item per distinct value,
//   - numeric attributes: equi-depth partitioning into base intervals, plus
//     items for *ranges* of consecutive intervals (merged while the range's
//     support stays below a cap — S&A's partial-completeness device, so
//     rules aren't lost to arbitrary interval boundaries),
//   - a candidate veto keeps itemsets from holding two items of the same
//     attribute (one value can't be in two disjoint values; nested ranges
//     are redundant).
// Mining then runs on the full CCPD machinery, and rules are rendered back
// in attribute terms ("age in [30,39] and married=yes => cars: 2").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/miner.hpp"
#include "core/rules.hpp"

namespace smpmine {

enum class AttrKind { Categorical, Numeric };

struct AttributeSpec {
  std::string name;
  AttrKind kind = AttrKind::Numeric;
  /// Base intervals for numeric attributes (ignored for categorical).
  std::uint32_t intervals = 4;
};

/// A row-major table of doubles; categorical values are coded as exact
/// doubles (e.g. enum ordinals).
class QuantTable {
 public:
  explicit QuantTable(std::vector<AttributeSpec> attributes);

  void add_row(std::span<const double> values);

  std::size_t num_rows() const { return rows_; }
  std::size_t num_attributes() const { return attrs_.size(); }
  const AttributeSpec& attribute(std::size_t a) const { return attrs_[a]; }
  double value(std::size_t row, std::size_t attr) const {
    return values_[row * attrs_.size() + attr];
  }

 private:
  std::vector<AttributeSpec> attrs_;
  std::vector<double> values_;
  std::size_t rows_ = 0;
};

/// The item vocabulary produced by discretization.
struct QuantItem {
  std::uint32_t attribute = 0;
  /// Closed value range [lo, hi]; categorical items have lo == hi.
  double lo = 0.0;
  double hi = 0.0;
  bool is_base = true;  ///< base interval/value vs merged range
};

class QuantMapping {
 public:
  const std::vector<QuantItem>& items() const { return items_; }
  item_t universe() const { return static_cast<item_t>(items_.size()); }

  /// Items matching (attribute, value): the base interval plus every merged
  /// range covering it.
  void items_for(std::uint32_t attribute, double value,
                 std::vector<item_t>& out) const;

  /// "age in [30.0, 39.0]" / "married = 1" rendering.
  std::string describe(item_t item, const QuantTable& table) const;

  /// True when the two items belong to the same attribute (the veto rule).
  bool same_attribute(item_t a, item_t b) const {
    return items_[a].attribute == items_[b].attribute;
  }

 private:
  friend QuantMapping discretize(const QuantTable&, double);
  std::vector<QuantItem> items_;
  /// per attribute: item ids, bases first then ranges.
  std::vector<std::vector<item_t>> by_attribute_;
};

/// Builds the vocabulary: equi-depth base intervals per numeric attribute,
/// distinct values per categorical one, and merged ranges of consecutive
/// base intervals while the merged support fraction stays < `max_support`
/// (S&A's cap; ranges at or above it carry no information).
QuantMapping discretize(const QuantTable& table, double max_support = 0.5);

/// Boolean conversion: row -> the items of each attribute value (base item
/// + covering ranges).
Database to_boolean(const QuantTable& table, const QuantMapping& mapping);

/// A rule rendered back into attribute terms.
struct QuantRule {
  std::string text;
  double support = 0.0;
  double confidence = 0.0;
  double lift = 0.0;
};

/// End-to-end: discretize, booleanize, mine with the same-attribute veto,
/// generate rules, and render them. `options.candidate_veto` is overridden.
std::vector<QuantRule> mine_quantitative(const QuantTable& table,
                                         MinerOptions options,
                                         double max_range_support = 0.5);

}  // namespace smpmine
