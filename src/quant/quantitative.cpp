#include "quant/quantitative.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

namespace smpmine {

QuantTable::QuantTable(std::vector<AttributeSpec> attributes)
    : attrs_(std::move(attributes)) {
  if (attrs_.empty()) {
    throw std::invalid_argument("QuantTable: need at least one attribute");
  }
  for (auto& spec : attrs_) {
    if (spec.kind == AttrKind::Numeric && spec.intervals == 0) {
      spec.intervals = 1;
    }
  }
}

void QuantTable::add_row(std::span<const double> values) {
  if (values.size() != attrs_.size()) {
    throw std::invalid_argument("QuantTable::add_row: width mismatch");
  }
  values_.insert(values_.end(), values.begin(), values.end());
  ++rows_;
}

QuantMapping discretize(const QuantTable& table, double max_support) {
  QuantMapping mapping;
  mapping.by_attribute_.resize(table.num_attributes());
  const std::size_t rows = table.num_rows();

  for (std::uint32_t a = 0; a < table.num_attributes(); ++a) {
    const AttributeSpec& spec = table.attribute(a);
    std::vector<item_t>& attr_items = mapping.by_attribute_[a];

    if (spec.kind == AttrKind::Categorical) {
      std::map<double, std::size_t> values;  // value -> count
      for (std::size_t r = 0; r < rows; ++r) ++values[table.value(r, a)];
      for (const auto& [value, _] : values) {
        attr_items.push_back(mapping.universe());
        mapping.items_.push_back(QuantItem{a, value, value, true});
      }
      continue;
    }

    // Numeric: equi-depth base intervals over the sorted values.
    std::vector<double> sorted(rows);
    for (std::size_t r = 0; r < rows; ++r) sorted[r] = table.value(r, a);
    std::sort(sorted.begin(), sorted.end());
    const std::uint32_t buckets =
        std::min<std::uint32_t>(spec.intervals,
                                std::max<std::size_t>(1, rows));
    struct Base {
      double lo, hi;
      std::size_t count;
    };
    std::vector<Base> bases;
    std::size_t begin = 0;
    for (std::uint32_t b = 0; b < buckets && begin < rows; ++b) {
      std::size_t end = std::max(begin + 1, rows * (b + 1) / buckets);
      // Extend over ties so equal values never straddle a boundary; this
      // keeps base ranges disjoint and the cursor counts exact.
      while (end < rows && sorted[end] == sorted[end - 1]) ++end;
      bases.push_back(Base{sorted[begin], sorted[end - 1], end - begin});
      begin = end;
    }

    for (const Base& base : bases) {
      attr_items.push_back(mapping.universe());
      mapping.items_.push_back(QuantItem{a, base.lo, base.hi, true});
    }
    // Merged ranges of consecutive base intervals, support-capped.
    const auto cap = static_cast<std::size_t>(
        max_support * static_cast<double>(rows));
    for (std::size_t lo = 0; lo < bases.size(); ++lo) {
      std::size_t count = bases[lo].count;
      for (std::size_t hi = lo + 1; hi < bases.size(); ++hi) {
        count += bases[hi].count;
        // Stop extending once the range's support *exceeds* the cap (S&A's
        // MAXSUP rule; a range that frequent carries no information).
        if (cap > 0 && count > cap) break;
        attr_items.push_back(mapping.universe());
        mapping.items_.push_back(
            QuantItem{a, bases[lo].lo, bases[hi].hi, false});
      }
    }
  }
  return mapping;
}

void QuantMapping::items_for(std::uint32_t attribute, double value,
                             std::vector<item_t>& out) const {
  for (const item_t id : by_attribute_[attribute]) {
    const QuantItem& item = items_[id];
    if (value >= item.lo && value <= item.hi) out.push_back(id);
  }
}

std::string QuantMapping::describe(item_t item,
                                   const QuantTable& table) const {
  const QuantItem& def = items_[item];
  const AttributeSpec& spec = table.attribute(def.attribute);
  std::ostringstream os;
  if (spec.kind == AttrKind::Categorical) {
    os << spec.name << " = " << def.lo;
  } else if (def.lo == def.hi) {
    os << spec.name << " = " << def.lo;
  } else {
    os << spec.name << " in [" << def.lo << ", " << def.hi << "]";
  }
  return os.str();
}

Database to_boolean(const QuantTable& table, const QuantMapping& mapping) {
  Database db;
  std::vector<item_t> txn;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    txn.clear();
    for (std::uint32_t a = 0; a < table.num_attributes(); ++a) {
      mapping.items_for(a, table.value(r, a), txn);
    }
    db.add_transaction(txn);
  }
  return db;
}

std::vector<QuantRule> mine_quantitative(const QuantTable& table,
                                         MinerOptions options,
                                         double max_range_support) {
  const QuantMapping mapping = discretize(table, max_range_support);
  const Database db = to_boolean(table, mapping);

  // Two items of one attribute are either nested (redundant) or disjoint
  // (unsatisfiable by a single row beyond range overlaps) — never useful.
  options.candidate_veto = [&mapping](std::span<const item_t> cand) {
    for (std::size_t i = 0; i < cand.size(); ++i) {
      for (std::size_t j = i + 1; j < cand.size(); ++j) {
        if (mapping.same_attribute(cand[i], cand[j])) return true;
      }
    }
    return false;
  };
  const MiningResult result = mine(db, options);
  const std::vector<Rule> rules =
      generate_rules(result, options.min_confidence, db.size());

  std::vector<QuantRule> out;
  out.reserve(rules.size());
  for (const Rule& rule : rules) {
    std::ostringstream os;
    for (std::size_t i = 0; i < rule.antecedent.size(); ++i) {
      if (i) os << " and ";
      os << mapping.describe(rule.antecedent[i], table);
    }
    os << " => ";
    for (std::size_t i = 0; i < rule.consequent.size(); ++i) {
      if (i) os << " and ";
      os << mapping.describe(rule.consequent[i], table);
    }
    out.push_back(QuantRule{os.str(), rule.support, rule.confidence,
                            rule.lift});
  }
  return out;
}

}  // namespace smpmine
