// Wall-clock and per-phase timing.
//
// The paper reports computation-time improvements broken down by phase
// (candidate generation, support counting, tree remapping, reduction); the
// benches and the miner's statistics both rely on these accumulators.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace smpmine {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { reset(); }

  void reset() { start_ = Clock::now(); }

  /// Seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Nanoseconds since construction or the last reset().
  std::uint64_t nanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-thread CPU-time stopwatch (CLOCK_THREAD_CPUTIME_ID).
///
/// On an oversubscribed host (more worker threads than cores) wall clocks
/// measure scheduling, not work: every thread's wall time approaches the
/// whole phase's elapsed time. CPU time measures the work a thread actually
/// executed, which is what the paper's computation-balance results are
/// about — the parallel benches build their work model from this.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() { reset(); }
  void reset();
  /// CPU seconds consumed by the calling thread since reset().
  double seconds() const;

 private:
  std::uint64_t start_ns_ = 0;
};

/// Accumulates elapsed time under named phases. Not thread-safe by design:
/// each worker keeps its own accumulator and the miner merges them.
class PhaseTimes {
 public:
  /// Adds `seconds` to the named phase.
  void add(const std::string& phase, double seconds);

  /// Total accumulated for one phase (0 if never recorded).
  double get(const std::string& phase) const;

  /// Sum over all phases.
  double total() const;

  /// Merge another accumulator into this one (used at thread join).
  void merge(const PhaseTimes& other);

  const std::map<std::string, double>& entries() const { return entries_; }

 private:
  std::map<std::string, double> entries_;
};

/// RAII helper: times a scope and adds it to a PhaseTimes entry.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimes& sink, std::string phase)
      : sink_(sink), phase_(std::move(phase)) {}
  ~ScopedPhase() { sink_.add(phase_, timer_.seconds()); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimes& sink_;
  std::string phase_;
  WallTimer timer_;
};

}  // namespace smpmine
