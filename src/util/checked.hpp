// SMPMINE_CHECKED invariant assertions.
//
// The mining algorithms rest on invariants the type system cannot see:
// itemsets stay sorted, equivalence classes tile the frequent set, every
// partition element lands in exactly one bin, counting contexts match the
// tree they were sized for. `SMPMINE_ASSERT` states those invariants in the
// code; the `checked` CMake preset (-DSMPMINE_CHECKED=ON, which defines
// SMPMINE_CHECKED_ENABLED=1) compiles them into real checks that abort with
// the failed expression and site. In every other build the macro expands to
// `((void)0)` — the condition expression is *not evaluated*, so checks may
// call arbitrarily expensive helpers (std::is_sorted over a hot-loop span)
// without taxing release binaries. tests/negative/checked_off_noop.cpp pins
// the expansion from both sides.
//
// SMPMINE_ASSERT is for algorithmic invariants that hold per call; for
// lock-acquisition-order checking see parallel/lock_order.hpp, the other
// half of the checked runtime.
#pragma once

#ifndef SMPMINE_CHECKED_ENABLED
#define SMPMINE_CHECKED_ENABLED 0
#endif

namespace smpmine::checked {

/// True when SMPMINE_ASSERT compiles to a real check.
inline constexpr bool kCheckedBuild = SMPMINE_CHECKED_ENABLED != 0;

/// Prints "smpmine-checked: assertion failed ..." with the expression, the
/// site, and `msg`, then aborts. Out-of-line so assertion sites stay one
/// compare-and-branch.
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const char* msg) noexcept;

}  // namespace smpmine::checked

#if SMPMINE_CHECKED_ENABLED
#define SMPMINE_ASSERT(expr, msg)                                      \
  ((expr) ? static_cast<void>(0)                                       \
          : ::smpmine::checked::assert_fail(#expr, __FILE__, __LINE__, msg))
#else
// The argument disappears at preprocessing time: no evaluation, no
// side effects, no codegen.
#define SMPMINE_ASSERT(expr, msg) ((void)0)
#endif
