#include "util/rng.hpp"

#include <cmath>

namespace smpmine {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // SplitMix64 expansion guarantees a non-zero state for any seed.
  for (auto& word : s_) word = splitmix64(seed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  if (bound <= 1) return 0;
  // Lemire's nearly-divisionless rejection method.
  __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next_u64()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  uniform(static_cast<std::uint64_t>(hi - lo + 1)));
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint32_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    double prod = uniform01();
    std::uint32_t n = 0;
    while (prod > limit) {
      ++n;
      prod *= uniform01();
    }
    return n;
  }
  // Normal approximation with continuity correction for large means.
  const double v = normal(mean, std::sqrt(mean));
  return v < 0.0 ? 0u : static_cast<std::uint32_t>(v + 0.5);
}

double Rng::exponential(double mean) {
  double u = uniform01();
  if (u >= 1.0) u = 0.9999999999999999;
  return -mean * std::log1p(-u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform01();
  if (u1 <= 0.0) u1 = 1e-300;
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(6.28318530717958647692 * u2);
}

Rng Rng::split() {
  // Derive a child seed from two draws; SplitMix re-expansion in the child
  // constructor decorrelates the streams.
  const std::uint64_t a = next_u64();
  const std::uint64_t b = next_u64();
  return Rng(a ^ rotl(b, 31) ^ 0xD2B74407B1CE6E93ULL);
}

}  // namespace smpmine
