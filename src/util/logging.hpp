// Minimal leveled logging to stderr.
//
// The library itself stays quiet by default (level = Warn); benches and
// examples raise the level for progress lines on long sweeps.
//
// Every line is prefixed `[<sec>.<usec>] [<thread>] [LEVEL] ` where the
// timestamp is the flight recorder's monotonic clock (obs/flight) and the
// thread name comes from the shared naming registry that the tracer and
// flight dumps also use — so a log line, a trace span, and a crash dump
// of the same moment correlate by eye.
#pragma once

#include <cstdarg>
#include <cstddef>
#include <string>

namespace smpmine {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging. Thread-safe (single write() per message).
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// Formats one complete log line (prefix + message + trailing newline)
/// into `buf`, exactly as logf() writes it, and returns the line length
/// (capped at size-1). Exposed so tests can pin the format.
std::size_t format_log_line(char* buf, std::size_t size, LogLevel level,
                            const char* fmt, std::va_list args);

#define SMP_LOG_DEBUG(...) ::smpmine::logf(::smpmine::LogLevel::Debug, __VA_ARGS__)
#define SMP_LOG_INFO(...) ::smpmine::logf(::smpmine::LogLevel::Info, __VA_ARGS__)
#define SMP_LOG_WARN(...) ::smpmine::logf(::smpmine::LogLevel::Warn, __VA_ARGS__)
#define SMP_LOG_ERROR(...) ::smpmine::logf(::smpmine::LogLevel::Error, __VA_ARGS__)

}  // namespace smpmine
