// Minimal leveled logging to stderr.
//
// The library itself stays quiet by default (level = Warn); benches and
// examples raise the level for progress lines on long sweeps.
#pragma once

#include <string>

namespace smpmine {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging. Thread-safe (single write() per message).
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define SMP_LOG_DEBUG(...) ::smpmine::logf(::smpmine::LogLevel::Debug, __VA_ARGS__)
#define SMP_LOG_INFO(...) ::smpmine::logf(::smpmine::LogLevel::Info, __VA_ARGS__)
#define SMP_LOG_WARN(...) ::smpmine::logf(::smpmine::LogLevel::Warn, __VA_ARGS__)
#define SMP_LOG_ERROR(...) ::smpmine::logf(::smpmine::LogLevel::Error, __VA_ARGS__)

}  // namespace smpmine
