// Phase-epoch validator (SMPMINE_CHECKED builds).
//
// The miners are level-synchronous: candgen -> remap -> freeze -> count ->
// reduce -> select, with barriers in between. Several shared structures are
// only safe because of that phase discipline — the FrozenTree's CSR/SoA
// arrays are written once in `freeze` and read-only for the whole `count`
// phase, the PlacementArenas regions are recycled in `candgen` and then
// append-only until the next iteration. tools/analyze/smpmine_analyze.py
// proves those effect sets statically (--checks phase-effects); this
// facility is the runtime half of the same contract, mirroring how
// parallel/lock_order.hpp pairs with the static lock-order baseline.
//
// Under the `checked` preset (SMPMINE_CHECKED_ENABLED=1):
//   - every flight-recorder PhaseScope (SMPMINE_FLIGHT_PHASE and friends,
//     which lint rule R5 keeps in lockstep with the trace/perf phase macros)
//     pushes its phase name onto a thread-local stack via enter()/exit(),
//     so current() names the innermost phase the calling thread is in;
//   - a guarded structure embeds a PhaseEpoch member, declare()s the set of
//     phases allowed to mutate it, and calls on_write() at each mutation
//     site. A write from any other phase aborts printing BOTH phase names —
//     the violating phase and the declared write-phase(s) plus the epoch
//     stamp (the phase that last legally wrote the structure);
//   - every (structure, phase) write actually observed is recorded in a
//     process-wide table. When SMPMINE_PHASE_EPOCH_DUMP is set the table is
//     dumped as JSON at exit (a directory value gets per-pid files, like
//     SMPMINE_LOCK_ORDER_DUMP), and the analyzer merges those runtime
//     effects into the phase_effects baseline gate.
//
// Writes outside any phase (current() == "") always pass: unit tests drive
// FrozenTree and PlacementArenas directly without the miners' phase scopes,
// and the contract only constrains code running inside a declared phase.
//
// With SMPMINE_CHECKED_ENABLED=0 every macro below is `((void)0)` — no
// evaluation, no state, no codegen (tests/negative/phase_epoch_off_noop.cpp
// pins the expansion from both sides) — and PhaseEpoch is an empty struct.
#pragma once

#include <cstddef>

#ifndef SMPMINE_CHECKED_ENABLED
#define SMPMINE_CHECKED_ENABLED 0
#endif

namespace smpmine::phaseepoch {

/// Pushes `name` (a string literal) onto the calling thread's phase stack.
/// Called by the flight recorder's PhaseScope constructor in checked builds.
void enter(const char* name) noexcept;

/// Pops the innermost phase. `name` must match the matching enter() (RAII
/// scoping guarantees LIFO; a mismatch aborts in checked builds).
void exit(const char* name) noexcept;

/// The calling thread's innermost phase name, or "" outside any phase.
const char* current() noexcept;

#if SMPMINE_CHECKED_ENABLED

/// Epoch stamp embedded in a guarded structure. declare() once (typically
/// in the owner's constructor), on_write() at every mutation site. All
/// methods are thread-safe; on_write from a phase outside the declared set
/// aborts with both phase names.
class PhaseEpoch {
 public:
  static constexpr std::size_t kMaxWritePhases = 4;

  /// Registers the structure's name and its allowed write phases. `name`
  /// and every phase must be string literals (static storage; pointers are
  /// kept, not copies). Call once before the first on_write.
  void declare(const char* name, const char* const* phases,
               std::size_t n_phases) noexcept;

  /// Records a mutation of the guarded structure from the calling thread's
  /// current phase. Allowed phases stamp the epoch and are logged into the
  /// process-wide observed-effects table; a disallowed phase aborts,
  /// printing the violating phase, the declared write-phase set, and the
  /// last stamp. Outside any phase this is a no-op pass.
  void on_write() const noexcept;

  /// The phase that last legally wrote the structure ("" before any).
  const char* last_write_phase() const noexcept;

 private:
  const char* name_ = "?";
  const char* phases_[kMaxWritePhases] = {};
  std::size_t n_phases_ = 0;
  // Stamp of the last legal write; mutable so const read paths
  // (FrozenTree::count_range and friends) can record their writes.
  mutable const char* stamp_ = nullptr;
};

#else  // !SMPMINE_CHECKED_ENABLED

/// Zero-size placeholder so guarded structures can embed a member
/// unconditionally; the hook macros never touch it in this configuration.
struct PhaseEpoch {};

#endif

/// Observed (structure, phase) write pairs recorded so far (test hook).
std::size_t observed_count() noexcept;

/// Drops the observed-effects table and the calling thread's phase stack.
/// Tests only; callers must be single-threaded with respect to phase
/// activity.
void reset_for_test() noexcept;

/// Writes the observed-effects table as JSON (schema
/// smpmine.phase_effects.runtime.v1) to `path`; a directory (or trailing
/// '/') gets `phase_effects.<pid>.json` inside it. Returns false when the
/// file cannot be opened. The exit-time dump triggered by
/// SMPMINE_PHASE_EPOCH_DUMP uses this.
bool dump(const char* path) noexcept;

}  // namespace smpmine::phaseepoch

#if SMPMINE_CHECKED_ENABLED
// `...` is the declared write-phase list (string literals).
#define SMPMINE_PHASE_EPOCH_DECLARE(epoch, structure, ...)             \
  do {                                                                 \
    static const char* const smpmine_epoch_phases[] = {__VA_ARGS__};   \
    (epoch).declare((structure), smpmine_epoch_phases,                 \
                    sizeof smpmine_epoch_phases /                      \
                        sizeof smpmine_epoch_phases[0]);               \
  } while (0)
#define SMPMINE_PHASE_EPOCH_WRITE(epoch) (epoch).on_write()
#else
#define SMPMINE_PHASE_EPOCH_DECLARE(epoch, structure, ...) ((void)0)
#define SMPMINE_PHASE_EPOCH_WRITE(epoch) ((void)0)
#endif
