#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace smpmine {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace smpmine
