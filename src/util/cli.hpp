// A small command-line flag parser for the bench/example binaries.
//
// Supports `--name=value`, `--name value`, boolean `--flag`, and collects
// positional arguments. Unknown flags are an error so typos in experiment
// sweeps fail loudly instead of silently running the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace smpmine {

class CliParser {
 public:
  /// Registers a flag with a help string; `def` is rendered in --help.
  void add_flag(const std::string& name, const std::string& help,
                const std::string& def = "");

  /// Parses argv. Returns false (after printing a message) on error or when
  /// --help was requested.
  bool parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders the registered flag table.
  std::string help(const std::string& program) const;

 private:
  struct FlagSpec {
    std::string help;
    std::string def;
  };
  std::map<std::string, FlagSpec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace smpmine
