#include "util/timer.hpp"

#include <ctime>

namespace smpmine {
namespace {

std::uint64_t thread_cpu_ns() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace

void ThreadCpuTimer::reset() { start_ns_ = thread_cpu_ns(); }

double ThreadCpuTimer::seconds() const {
  return static_cast<double>(thread_cpu_ns() - start_ns_) * 1e-9;
}

void PhaseTimes::add(const std::string& phase, double seconds) {
  entries_[phase] += seconds;
}

double PhaseTimes::get(const std::string& phase) const {
  auto it = entries_.find(phase);
  return it == entries_.end() ? 0.0 : it->second;
}

double PhaseTimes::total() const {
  double sum = 0.0;
  for (const auto& [_, secs] : entries_) sum += secs;
  return sum;
}

void PhaseTimes::merge(const PhaseTimes& other) {
  for (const auto& [phase, secs] : other.entries_) entries_[phase] += secs;
}

}  // namespace smpmine
