// Deterministic, seedable random-number generation.
//
// The Quest data generator and the property tests need a fast generator with
// reproducible streams that can be split per dataset. xoshiro256** is small,
// fast, and has well-understood statistical quality; we wrap it with the
// handful of distributions the paper's generation procedure calls for
// (uniform, Poisson, exponential, truncated normal).
#pragma once

#include <array>
#include <cstdint>

namespace smpmine {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  /// Seeds the four 64-bit words from a single seed via SplitMix64, which is
  /// the recommended seeding procedure for the xoshiro family.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Poisson-distributed value with the given mean. Uses Knuth's product
  /// method for small means (the generator only needs means <= ~20) and a
  /// normal approximation beyond that.
  std::uint32_t poisson(double mean);

  /// Exponentially distributed value with the given mean.
  double exponential(double mean);

  /// Normal via Box–Muller (one value per call; no caching to stay
  /// trivially copyable).
  double normal(double mean, double stddev);

  /// A new generator whose stream is decorrelated from this one. Used to
  /// hand independent streams to dataset generation phases.
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace smpmine
