// Phase-epoch validator implementation. See phase_epoch.hpp for the model.
//
// Layering: lives in smpmine_util (with the lock-order recorder and the
// flight recorder) because obs/flight/flight_recorder.cpp forwards its
// PhaseScope enter/exit here in checked builds.
#include "util/phase_epoch.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace smpmine::phaseepoch {

namespace {

/// Deepest phase nesting tracked per thread. Real code nests two deep
/// (iteration-level scope inside a worker phase is not a pattern here);
/// deeper pushes are counted and ignored so exit() stays balanced.
constexpr std::size_t kMaxPhaseDepth = 16;

struct PhaseStack {
  const char* names[kMaxPhaseDepth];
  std::size_t depth = 0;     // entries actually stored
  std::size_t overflow = 0;  // pushes past kMaxPhaseDepth
};

thread_local PhaseStack t_stack;

/// Process-wide observed (structure, phase) write pairs.
struct Observed {
  // lint-ok: R2 — checked-build diagnostics below the parallel/ layer; the
  // Mutex wrapper reports into the lock-order and flight recorders, which
  // would re-enter diagnostics from inside diagnostics (same reasoning as
  // the lock-order recorder's own graph mutex).
  std::mutex mu;
  // analyze-ok: guarded by mu — every access below takes o.mu first; the
  // recorder is outside the analyzer's TSA scope because Mutex-wrapper
  // layering is inverted here (see the R2 note above).
  std::vector<std::pair<const char*, const char*>> writes;
  // analyze-ok: guarded by mu — see `writes`.
  std::uint64_t generation = 1;  // bumped by reset_for_test
};

/// Intentionally leaked, same reasoning as the lock-order recorder's graph:
/// the table is first touched after the static-init-time
/// atexit(dump_at_exit) registration below, so a static object would be
/// destroyed before the atexit callback reads it and every
/// SMPMINE_PHASE_EPOCH_DUMP file would come out empty.
Observed& observed() {
  static Observed* o = new Observed;
  return *o;
}

// Writes this thread already pushed into the table, so steady-state
// on_write() is one thread-local hash probe, not a global mutex trip.
thread_local std::vector<std::uint64_t> t_seen;
thread_local std::uint64_t t_seen_generation = 0;

std::uint64_t pair_key(const char* structure, const char* phase) {
  const auto a = reinterpret_cast<std::uintptr_t>(structure);
  const auto b = reinterpret_cast<std::uintptr_t>(phase);
  return (static_cast<std::uint64_t>(a) * 0x9e3779b97f4a7c15ULL) ^
         static_cast<std::uint64_t>(b);
}

void record_write(const char* structure, const char* phase) noexcept {
  try {
    Observed& o = observed();
    const std::uint64_t key = pair_key(structure, phase);
    {
      // lint-ok: R2 — see the Observed declaration.
      std::lock_guard<std::mutex> guard(o.mu);
      if (t_seen_generation == o.generation) {
        for (std::uint64_t k : t_seen) {
          if (k == key) return;
        }
      } else {
        t_seen.clear();
        t_seen_generation = o.generation;
      }
      for (const auto& [s, p] : o.writes) {
        if (std::strcmp(s, structure) == 0 && std::strcmp(p, phase) == 0) {
          t_seen.push_back(key);
          return;
        }
      }
      o.writes.emplace_back(structure, phase);
      t_seen.push_back(key);
    }
  } catch (...) {
    // Recording is diagnostics; never take down the write path.
  }
}

void json_escape_into(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

/// atexit callback: a checked process honors SMPMINE_PHASE_EPOCH_DUMP
/// without opt-in code in main() (mirrors SMPMINE_LOCK_ORDER_DUMP).
void dump_at_exit() {
  const char* path = std::getenv("SMPMINE_PHASE_EPOCH_DUMP");
  if (path != nullptr && *path != '\0') dump(path);
}

struct DumpAtExitRegistrar {
  DumpAtExitRegistrar() {
    if (SMPMINE_CHECKED_ENABLED &&
        std::getenv("SMPMINE_PHASE_EPOCH_DUMP") != nullptr) {
      std::atexit(dump_at_exit);
    }
  }
};
DumpAtExitRegistrar dump_registrar;

}  // namespace

void enter(const char* name) noexcept {
  PhaseStack& st = t_stack;
  if (name == nullptr) name = "";
  if (st.depth < kMaxPhaseDepth) {
    st.names[st.depth++] = name;
  } else {
    ++st.overflow;
  }
}

void exit(const char* name) noexcept {
  PhaseStack& st = t_stack;
  if (st.overflow > 0) {
    --st.overflow;
    return;
  }
  if (st.depth == 0) {
    std::fprintf(stderr,
                 "smpmine-phase-epoch: exit('%s') with empty phase stack\n",
                 name != nullptr ? name : "");
    std::abort();
  }
  const char* top = st.names[st.depth - 1];
  if (name != nullptr && std::strcmp(top, name) != 0) {
    std::fprintf(stderr,
                 "smpmine-phase-epoch: exit('%s') does not match the "
                 "innermost phase '%s'\n",
                 name, top);
    std::abort();
  }
  --st.depth;
}

const char* current() noexcept {
  const PhaseStack& st = t_stack;
  return st.depth > 0 ? st.names[st.depth - 1] : "";
}

#if SMPMINE_CHECKED_ENABLED

void PhaseEpoch::declare(const char* name, const char* const* phases,
                         std::size_t n_phases) noexcept {
  name_ = name != nullptr ? name : "?";
  n_phases_ = n_phases < kMaxWritePhases ? n_phases : kMaxWritePhases;
  for (std::size_t i = 0; i < n_phases_; ++i) phases_[i] = phases[i];
  stamp_ = nullptr;
}

void PhaseEpoch::on_write() const noexcept {
  const char* phase = current();
  if (*phase == '\0') return;  // outside any phase: unconstrained (tests)
  for (std::size_t i = 0; i < n_phases_; ++i) {
    if (std::strcmp(phases_[i], phase) == 0) {
      stamp_ = phases_[i];
      record_write(name_, phases_[i]);
      return;
    }
  }
  // Violation: print BOTH phase names — the writer's and the declared
  // write-phase set (plus the stamp of the last legal write) — then abort.
  std::fprintf(stderr,
               "smpmine-phase-epoch: '%s' written in phase '%s' but its "
               "declared write phase%s ",
               name_, phase, n_phases_ == 1 ? " is" : "s are");
  for (std::size_t i = 0; i < n_phases_; ++i) {
    std::fprintf(stderr, "%s'%s'", i == 0 ? "" : ", ", phases_[i]);
  }
  if (stamp_ != nullptr) {
    std::fprintf(stderr, " (last legal write stamped in phase '%s')",
                 stamp_);
  }
  std::fprintf(stderr, "\n");
  std::abort();
}

const char* PhaseEpoch::last_write_phase() const noexcept {
  return stamp_ != nullptr ? stamp_ : "";
}

#endif  // SMPMINE_CHECKED_ENABLED

std::size_t observed_count() noexcept {
  Observed& o = observed();
  // lint-ok: R2 — see the Observed declaration.
  std::lock_guard<std::mutex> guard(o.mu);
  return o.writes.size();
}

void reset_for_test() noexcept {
  Observed& o = observed();
  // lint-ok: R2 — see the Observed declaration.
  std::lock_guard<std::mutex> guard(o.mu);
  o.writes.clear();
  ++o.generation;
  t_stack.depth = 0;
  t_stack.overflow = 0;
}

bool dump(const char* path) noexcept {
  try {
    Observed& o = observed();
    // lint-ok: R2 — see the Observed declaration.
    std::lock_guard<std::mutex> guard(o.mu);

    // Resolve "path is a directory" (or trailing '/') to a per-pid file so
    // a parallel ctest run can aim every test process at one merge dir.
    std::string out_path = path;
    struct stat st {};
    const bool is_dir =
        (!out_path.empty() && out_path.back() == '/') ||
        (::stat(out_path.c_str(), &st) == 0 && S_ISDIR(st.st_mode));
    if (is_dir) {
      if (out_path.back() != '/') out_path.push_back('/');
      out_path += "phase_effects." + std::to_string(::getpid()) + ".json";
    }

    std::string json;
    json.reserve(128 + 48 * o.writes.size());
    json += "{\n  \"schema\": \"smpmine.phase_effects.runtime.v1\",\n";
    json += "  \"pid\": " + std::to_string(::getpid()) + ",\n";
    json += "  \"writes\": [\n";
    bool first = true;
    for (const auto& [structure, phase] : o.writes) {
      json += first ? "    " : ",\n    ";
      first = false;
      json += "{\"structure\": \"";
      json_escape_into(json, structure);
      json += "\", \"phase\": \"";
      json_escape_into(json, phase);
      json += "\"}";
    }
    json += "\n  ]\n}\n";

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr,
                   "smpmine-checked: cannot open phase-epoch dump '%s'\n",
                   out_path.c_str());
      return false;
    }
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    std::fclose(f);
    return ok;
  } catch (...) {
    return false;  // dump is best-effort diagnostics; never take down exit
  }
}

}  // namespace smpmine::phaseepoch
