// CPU-feature detection and SIMD backend dispatch.
//
// The counting kernels carry three implementations of their hot inner
// loops — scalar, AVX2 and NEON — and pick one at runtime. Dispatch is
// two-layered:
//   compile time: a backend is only *built* on an architecture that can
//     express it (AVX2 functions are x86-64-only target("avx2") code,
//     NEON is compiled on AArch64 where it is baseline);
//   run time: a built backend only *runs* when the executing CPU reports
//     the feature (cpuid via __builtin_cpu_supports), so one x86-64 binary
//     is safe on pre-AVX2 silicon.
// The scalar path is always available and always produces bit-identical
// results; CI's simd-matrix job pins that equivalence byte-for-byte.
//
// `SMPMINE_SIMD=scalar|avx2|neon|auto` overrides the choice from the
// environment (downgrades always work; an upgrade the CPU lacks is
// ignored). set_simd_backend() does the same programmatically for benches
// that measure scalar-vs-SIMD on one binary.
#pragma once

namespace smpmine {

enum class SimdBackend {
  Scalar,  ///< portable fallback, reference semantics
  Avx2,    ///< x86-64 AVX2 (256-bit, 8 x u32 lanes)
  Neon,    ///< AArch64 Advanced SIMD (128-bit, 4 x u32 lanes)
};

const char* to_string(SimdBackend b);

/// Immutable facts about the executing CPU (detected once per process).
struct CpuFeatures {
  bool avx2 = false;  ///< x86-64 with AVX2 (runtime cpuid)
  bool neon = false;  ///< AArch64 (NEON is architecturally baseline there)
};

/// The executing CPU's features (cached after the first call).
const CpuFeatures& cpu_features();

/// The backend the counting kernels should use right now: the best
/// compiled-in backend the CPU supports, lowered by SMPMINE_SIMD or a
/// set_simd_backend() override. Never returns a backend that cannot run.
SimdBackend simd_backend();

/// Programmatic override (benches, tests, CI byte-for-byte checks).
/// Requests the CPU cannot honor are clamped to Scalar; returns the
/// backend actually in effect. Not thread-safe against concurrent
/// counting — switch between runs, not during one.
SimdBackend set_simd_backend(SimdBackend requested);

/// Drops any override (environment or programmatic) and re-reads
/// SMPMINE_SIMD on the next simd_backend() call. Test hook.
void reset_simd_backend_for_test();

}  // namespace smpmine
