// Fundamental scalar types shared across the smpmine library.
#pragma once

#include <cstddef>
#include <cstdint>

namespace smpmine {

/// An item identifier. The paper's datasets use N = 1000 distinct items;
/// 32 bits leaves ample headroom for real catalogues.
using item_t = std::uint32_t;

/// A transaction identifier.
using tid_t = std::uint32_t;

/// A support count (number of transactions containing an itemset).
using count_t = std::uint32_t;

/// Hardware destructive-interference size. The SGI Challenge used 128-byte
/// secondary-cache lines; 64 is the common x86 line and what false-sharing
/// padding must respect here.
inline constexpr std::size_t kCacheLine = 64;

}  // namespace smpmine
