// Function attributes with project-level contracts.
//
// SMPMINE_HOT marks the per-transaction hot paths — the hash-tree counting
// recursion and the subset-enumeration primitives that run once per
// (transaction, candidate-path) pair. Marking a function SMPMINE_HOT is a
// *contract*, not just an optimizer hint: its body must stay
// allocation-free. No `new`/`malloc`, no container growth
// (push_back/resize/reserve/...), because one allocation inside the
// counting loop turns the paper's memory-placement results into noise.
// tools/lint/smpmine_lint.py rule R4 enforces the contract mechanically;
// a deliberate exception needs a `// hot-ok: <reason>` comment on the
// offending line.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define SMPMINE_HOT __attribute__((hot))
#else
#define SMPMINE_HOT
#endif

// Software prefetch hint (read, moderate temporal locality). The frozen
// counting kernel issues these one CSR row ahead of the traversal; on
// compilers without the builtin the hint vanishes, never the semantics.
#if defined(__GNUC__) || defined(__clang__)
#define SMPMINE_PREFETCH(addr) __builtin_prefetch((addr))
#else
#define SMPMINE_PREFETCH(addr) ((void)0)
#endif
