// Clang thread-safety (capability) analysis macros.
//
// These expand to Clang's `__attribute__((...))` capability annotations when
// compiling with Clang and to nothing elsewhere (GCC, MSVC), so annotated
// headers stay portable. The analysis itself is enabled by the `tidy`
// CMake preset (`-Wthread-safety -Werror=thread-safety`); see the
// "Correctness tooling" section of DESIGN.md for the annotation discipline —
// which state gets GUARDED_BY, why the quiescent-phase hash-tree readers are
// deliberately unannotated, and how to extend coverage.
//
// Naming follows the Clang documentation's canonical mutex.h so the macros
// read the same as every other annotated codebase:
//   CAPABILITY(name)     — a class is a lock/capability (SpinLock, Mutex)
//   SCOPED_CAPABILITY    — RAII guard that acquires in ctor, releases in dtor
//   GUARDED_BY(mu)       — data member readable/writable only with mu held
//   PT_GUARDED_BY(mu)    — pointee (not the pointer) guarded by mu
//   ACQUIRE/RELEASE(...) — lock/unlock functions
//   TRY_ACQUIRE(b, ...)  — try-lock returning `b` on success
//   REQUIRES(mu)         — caller must already hold mu
//   EXCLUDES(mu)         — caller must NOT hold mu (non-reentrancy)
#pragma once

#if defined(__clang__) && !defined(SMPMINE_NO_THREAD_SAFETY_ANALYSIS)
#define SMPMINE_TSA(x) __attribute__((x))
#else
#define SMPMINE_TSA(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) SMPMINE_TSA(capability(x))
#define SCOPED_CAPABILITY SMPMINE_TSA(scoped_lockable)
#define GUARDED_BY(x) SMPMINE_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) SMPMINE_TSA(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) SMPMINE_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) SMPMINE_TSA(acquired_after(__VA_ARGS__))
#define REQUIRES(...) SMPMINE_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) SMPMINE_TSA(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) SMPMINE_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) SMPMINE_TSA(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) SMPMINE_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) SMPMINE_TSA(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) SMPMINE_TSA(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) SMPMINE_TSA(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  SMPMINE_TSA(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) SMPMINE_TSA(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) SMPMINE_TSA(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) SMPMINE_TSA(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) SMPMINE_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS SMPMINE_TSA(no_thread_safety_analysis)
