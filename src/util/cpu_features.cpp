#include "util/cpu_features.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace smpmine {

namespace {

CpuFeatures detect() {
  CpuFeatures f;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
#endif
#if defined(__aarch64__)
  // NEON (Advanced SIMD) is mandatory in AArch64; no runtime probe needed.
  f.neon = true;
#endif
  return f;
}

/// Best backend this binary both compiled in and this CPU supports.
SimdBackend best_supported() {
  const CpuFeatures& f = cpu_features();
#if defined(__x86_64__)
  if (f.avx2) return SimdBackend::Avx2;
#endif
#if defined(__aarch64__)
  if (f.neon) return SimdBackend::Neon;
#endif
  return SimdBackend::Scalar;
}

/// Clamp a request to what can actually execute here.
SimdBackend clamp(SimdBackend requested) {
  switch (requested) {
    case SimdBackend::Scalar:
      return SimdBackend::Scalar;
    case SimdBackend::Avx2:
      return best_supported() == SimdBackend::Avx2 ? SimdBackend::Avx2
                                                   : SimdBackend::Scalar;
    case SimdBackend::Neon:
      return best_supported() == SimdBackend::Neon ? SimdBackend::Neon
                                                   : SimdBackend::Scalar;
  }
  return SimdBackend::Scalar;
}

SimdBackend resolve_from_env() {
  const char* env = std::getenv("SMPMINE_SIMD");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) {
    return best_supported();
  }
  if (std::strcmp(env, "scalar") == 0) return SimdBackend::Scalar;
  if (std::strcmp(env, "avx2") == 0) return clamp(SimdBackend::Avx2);
  if (std::strcmp(env, "neon") == 0) return clamp(SimdBackend::Neon);
  // Unknown value: fail safe, loudly visible in manifests as "scalar".
  return SimdBackend::Scalar;
}

// Resolved backend, published once. -1 = unresolved; re-resolution after
// reset_simd_backend_for_test() is benign (the answer is deterministic).
std::atomic<int> g_backend{-1};

}  // namespace

const char* to_string(SimdBackend b) {
  switch (b) {
    case SimdBackend::Scalar: return "scalar";
    case SimdBackend::Avx2: return "avx2";
    case SimdBackend::Neon: return "neon";
  }
  return "?";
}

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = detect();
  return features;
}

SimdBackend simd_backend() {
  int cur = g_backend.load(std::memory_order_acquire);
  if (cur < 0) {
    cur = static_cast<int>(resolve_from_env());
    g_backend.store(cur, std::memory_order_release);
  }
  return static_cast<SimdBackend>(cur);
}

SimdBackend set_simd_backend(SimdBackend requested) {
  const SimdBackend actual = clamp(requested);
  g_backend.store(static_cast<int>(actual), std::memory_order_release);
  return actual;
}

void reset_simd_backend_for_test() {
  g_backend.store(-1, std::memory_order_release);
}

}  // namespace smpmine
