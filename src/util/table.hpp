// Fixed-width text table rendering for the benchmark harnesses.
//
// Every figure/table bench prints the same rows/series the paper reports;
// this helper keeps that output aligned and machine-greppable
// (`column: value` pairs separated by two spaces, one row per line).
#pragma once

#include <string>
#include <vector>

namespace smpmine {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends one row; the cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);
  static std::string pct(double fraction, int precision = 1);

  /// Renders with a header rule, columns padded to the widest cell.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace smpmine
