#include "util/logging.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>

#include "obs/flight/flight_recorder.hpp"

namespace smpmine {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

std::size_t format_log_line(char* buf, std::size_t size, LogLevel level,
                            const char* fmt, std::va_list args) {
  if (size < 2) return 0;
  const std::uint64_t t_ns = obs::flight::now_ns();
  const char* thread = obs::flight::current_thread_name();
  if (thread == nullptr || *thread == '\0') thread = "?";
  int n = std::snprintf(buf, size, "[%llu.%06llu] [%s] [%s] ",
                        static_cast<unsigned long long>(t_ns / 1'000'000'000),
                        static_cast<unsigned long long>(t_ns % 1'000'000'000 /
                                                        1'000),
                        thread, level_tag(level));
  if (n < 0) return 0;
  auto len = static_cast<std::size_t>(n);
  if (len < size - 2) {
    // Leave exactly one byte past the message region for the newline: a
    // truncated vsnprintf then NUL-terminates at size-2, and the '\n'
    // below overwrites that NUL so the line stays contiguous.
    const int m = std::vsnprintf(buf + len, size - len - 1, fmt, args);
    if (m > 0) len += static_cast<std::size_t>(m);
  }
  if (len > size - 2) len = size - 2;
  buf[len] = '\n';
  buf[len + 1] = '\0';
  return len + 1;
}

void logf(LogLevel level, const char* fmt, ...) {
  // WARN/ERROR lines always land in the flight ring (crash dumps should
  // carry the warnings that preceded the crash), even when the console
  // threshold drops them. `fmt` is a string literal at every call site
  // (enforced by the printf format attribute), so storing the pointer
  // matches the ring's static-string contract.
  if (level == LogLevel::Warn) {
    obs::flight::emit(obs::flight::EventKind::LogWarn, "log.warn", fmt);
  } else if (level == LogLevel::Error) {
    obs::flight::emit(obs::flight::EventKind::LogError, "log.error", fmt);
  }
  // relaxed-ok: the level gate is advisory; a racing set_log_level only
  // decides whether this one message appears, never data integrity.
  if (level < g_level.load(std::memory_order_relaxed)) return;
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  const std::size_t len = format_log_line(buf, sizeof buf, level, fmt, args);
  va_end(args);
  if (len == 0) return;
  std::fwrite(buf, 1, len, stderr);
}

}  // namespace smpmine
