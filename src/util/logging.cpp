#include "util/logging.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace smpmine {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void logf(LogLevel level, const char* fmt, ...) {
  // relaxed-ok: the level gate is advisory; a racing set_log_level only
  // decides whether this one message appears, never data integrity.
  if (level < g_level.load(std::memory_order_relaxed)) return;
  char buf[1024];
  int n = std::snprintf(buf, sizeof buf, "[%s] ", level_tag(level));
  va_list args;
  va_start(args, fmt);
  n += std::vsnprintf(buf + n, sizeof buf - static_cast<std::size_t>(n) - 2,
                      fmt, args);
  va_end(args);
  if (n < 0) return;
  auto len = static_cast<std::size_t>(n);
  if (len > sizeof buf - 2) len = sizeof buf - 2;
  buf[len] = '\n';
  std::fwrite(buf, 1, len + 1, stderr);
}

}  // namespace smpmine
