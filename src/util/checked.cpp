#include "util/checked.hpp"

#include <cstdio>
#include <cstdlib>

namespace smpmine::checked {

void assert_fail(const char* expr, const char* file, int line,
                 const char* msg) noexcept {
  // fprintf, not iostreams: the assertion may fire under a held lock or
  // inside a worker thread, and stdio is signal-safe enough for a
  // last-words message where iostream locale machinery is not.
  std::fprintf(stderr,
               "smpmine-checked: assertion failed: %s\n"
               "  %s:%d: %s\n",
               expr, file, line, msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace smpmine::checked
