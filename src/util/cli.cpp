#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace smpmine {

void CliParser::add_flag(const std::string& name, const std::string& help,
                         const std::string& def) {
  specs_[name] = FlagSpec{help, def};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(this->help(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    if (!specs_.count(name)) {
      std::fprintf(stderr, "unknown flag --%s (see --help)\n", name.c_str());
      return false;
    }
    if (!has_value) {
      // `--flag value` if the next token is not itself a flag, else boolean.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    values_[name] = value;
  }
  return true;
}

bool CliParser::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string CliParser::get(const std::string& name,
                           const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t CliParser::get_int(const std::string& name,
                                std::int64_t def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliParser::get_double(const std::string& name, double def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool CliParser::get_bool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::string CliParser::help(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name;
    if (!spec.def.empty()) os << " (default: " << spec.def << ")";
    os << "\n      " << spec.help << "\n";
  }
  return os.str();
}

}  // namespace smpmine
