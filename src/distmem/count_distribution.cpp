#include "distmem/count_distribution.hpp"

#include <cstring>
#include <thread>

#include "core/candidate_gen.hpp"
#include "core/miner.hpp"
#include "hashtree/hash_tree.hpp"
#include "util/timer.hpp"

namespace smpmine {
namespace {

std::vector<std::byte> pack(const std::vector<count_t>& counts) {
  std::vector<std::byte> bytes(counts.size() * sizeof(count_t));
  std::memcpy(bytes.data(), counts.data(), bytes.size());
  return bytes;
}

std::vector<count_t> unpack(const std::vector<std::byte>& bytes) {
  std::vector<count_t> counts(bytes.size() / sizeof(count_t));
  std::memcpy(counts.data(), bytes.data(), bytes.size());
  return counts;
}

/// Gather-to-root sum + broadcast. Every node passes its partial vector
/// and receives the global sum; all payloads are physically copied through
/// the metered cluster.
std::vector<count_t> allreduce(Cluster& cluster, std::uint32_t node,
                               std::uint32_t tag,
                               std::vector<count_t> local) {
  if (node != 0) {
    cluster.send(node, 0, tag, pack(local));
    return unpack(cluster.receive(node).payload);
  }
  for (std::uint32_t peer = 1; peer < cluster.size(); ++peer) {
    const std::vector<count_t> partial =
        unpack(cluster.receive(0).payload);
    for (std::size_t i = 0; i < local.size(); ++i) local[i] += partial[i];
  }
  for (std::uint32_t peer = 1; peer < cluster.size(); ++peer) {
    cluster.send(0, peer, tag + 1, pack(local));
  }
  return local;
}

FrequentSet select_from_counts(const HashTree& tree,
                               const std::vector<count_t>& counts,
                               count_t min_count) {
  const std::size_t k = tree.k();
  const auto& index = tree.candidate_index();
  std::vector<std::uint32_t> survivors;
  for (std::uint32_t id = 0; id < counts.size(); ++id) {
    if (counts[id] >= min_count) survivors.push_back(id);
  }
  std::sort(survivors.begin(), survivors.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return compare_itemsets(index[a]->view(k), index[b]->view(k)) <
                     0;
            });
  if (survivors.empty()) return FrequentSet(k);
  std::vector<item_t> flat;
  std::vector<count_t> packed;
  for (const std::uint32_t id : survivors) {
    const auto view = index[id]->view(k);
    flat.insert(flat.end(), view.begin(), view.end());
    packed.push_back(counts[id]);
  }
  return FrequentSet(k, std::move(flat), std::move(packed));
}

}  // namespace

CountDistributionResult mine_count_distribution(const Database& db,
                                                const MinerOptions& options,
                                                std::uint32_t nodes) {
  MinerOptions opts = options;
  opts.threads = 1;
  opts.validate();
  if (nodes == 0) nodes = 1;

  Cluster cluster(nodes);
  const count_t min_count = absolute_support(opts.min_support, db.size());
  const DbRanges ranges = partition_database(db, nodes, DbPartition::Block);

  CountDistributionResult result;
  std::uint64_t tree_bytes_node0 = 0;
  std::uint64_t counters_exchanged = 0;

  WallTimer total_timer;
  auto node_main = [&](std::uint32_t node) {
    // ---- F1: local item counts + all-reduce --------------------------------
    const item_t universe = db.item_universe();
    std::vector<count_t> item_counts(universe, 0);
    count_items_range(db, ranges.begin(node), ranges.end(node), item_counts);
    item_counts = allreduce(cluster, node, 0, std::move(item_counts));

    std::vector<item_t> f1_items;
    std::vector<count_t> f1_counts;
    for (item_t i = 0; i < universe; ++i) {
      if (item_counts[i] >= min_count) {
        f1_items.push_back(i);
        f1_counts.push_back(item_counts[i]);
      }
    }
    std::vector<FrequentSet> levels;
    if (!f1_items.empty()) {
      levels.emplace_back(1, std::move(f1_items), std::move(f1_counts));
    }

    PlacementArenas arenas(opts.placement, opts.spp_variant);
    for (std::uint32_t k = 2; !levels.empty() && k <= opts.max_iterations;
         ++k) {
      const FrequentSet& prev = levels.back();
      if (prev.size() < 2) break;
      IterationStats it;
      it.k = k;

      // Identical candidate generation on every node (sequential and
      // deterministic, so candidate ids agree across the cluster).
      const auto classes = build_equivalence_classes(prev);
      const auto units = generation_units(classes, k);
      if (units.empty()) break;
      const std::uint32_t fanout = adaptive_fanout(
          total_join_pairs(classes), k, opts.leaf_threshold, opts.min_fanout,
          opts.max_fanout);
      const HashPolicy policy = make_hash_policy(
          opts.hash_scheme, fanout, levels.front(), universe);
      arenas.reset();
      HashTree tree({k, fanout, opts.leaf_threshold, CounterMode::Atomic},
                    policy, arenas);
      const CandGenCounters gen =
          generate_candidates(prev, classes, units, tree);
      it.candidates = tree.num_candidates();
      it.pruned = gen.pruned;
      it.fanout = fanout;
      if (it.candidates == 0) {
        if (node == 0) result.mining.iterations.push_back(it);
        break;
      }

      // Local counting over this node's partition only.
      ThreadCpuTimer cpu;
      CountContext ctx = tree.make_context(opts.subset_check);
      for (std::uint64_t t = ranges.begin(node); t < ranges.end(node); ++t) {
        tree.count_transaction(db.transaction(t), ctx);
      }
      it.count_busy_sum = it.count_busy_max = cpu.seconds();
      it.internal_visits = ctx.internal_visits;
      it.leaf_visits = ctx.leaf_visits;
      it.containment_checks = ctx.containment_checks;
      it.hits = ctx.hits;

      // The algorithm's defining step: all-reduce |C(k)| partial counts.
      std::vector<count_t> counts(tree.num_candidates(), 0);
      tree.for_each_candidate(
          [&](const Candidate& cand) { counts[cand.id] = *cand.count; });
      counts = allreduce(cluster, node, 2 * k, std::move(counts));

      FrequentSet fk = select_from_counts(tree, counts, min_count);
      it.frequent = fk.size();
      if (node == 0) {
        const TreeStats ts = tree.stats();
        it.tree_nodes = ts.nodes;
        it.tree_bytes = ts.bytes_used;
        tree_bytes_node0 += ts.bytes_used;
        counters_exchanged += tree.num_candidates();
        result.mining.iterations.push_back(it);
      }
      if (fk.empty()) break;
      levels.push_back(std::move(fk));
    }
    if (node == 0) result.mining.levels = std::move(levels);
  };

  // lint-ok: R2 — the shared-nothing simulation deliberately bypasses the
  // ThreadPool: each "node" must be an independent thread with no shared
  // control plane, exactly what the distributed-memory comparison models.
  std::vector<std::thread> workers;
  for (std::uint32_t node = 1; node < nodes; ++node) {
    workers.emplace_back(node_main, node);
  }
  node_main(0);
  for (auto& w : workers) w.join();

  result.mining.total_seconds = total_timer.seconds();
  result.comm = cluster.stats();
  result.total_tree_bytes = tree_bytes_node0 * nodes;  // identical trees
  result.counters_exchanged = counters_exchanged;
  return result;
}

}  // namespace smpmine
