// In-process message-passing substrate.
//
// The paper contrasts its shared-memory algorithms with the
// distributed-memory parallelizations of Agrawal & Shafer (1996). To make
// that comparison runnable here, this module simulates a shared-nothing
// machine inside one process: "nodes" are threads that may communicate
// *only* through these mailboxes, and every transfer physically copies its
// payload and is metered — so the communication volume the paper argues
// about is measured, not estimated.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <vector>

#include "parallel/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace smpmine {

struct Message {
  std::uint32_t from = 0;
  std::uint32_t tag = 0;
  std::vector<std::byte> payload;
};

/// Multi-producer single-consumer mailbox with blocking receive.
class Mailbox {
 public:
  Mailbox() { SMPMINE_LOCK_NAME(&mu_, "Mailbox::mu_"); }

  void send(Message message) {
    {
      MutexLock lk(mu_);
      queue_.push_back(std::move(message));
    }
    cv_.notify_one();
  }

  /// Blocks until a message arrives.
  Message receive() {
    MutexLock lk(mu_);
    // Explicit predicate loop: condition_variable_any::wait releases and
    // reacquires through the guard, and spurious wakeups re-test here.
    while (queue_.empty()) cv_.wait(lk);
    Message m = std::move(queue_.front());
    queue_.pop_front();
    return m;
  }

 private:
  Mutex mu_;
  std::condition_variable_any cv_;
  std::deque<Message> queue_ GUARDED_BY(mu_);
};

/// Aggregate traffic statistics for one simulated cluster.
struct CommStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// A fixed-size cluster of mailboxes with traffic metering.
class Cluster {
 public:
  explicit Cluster(std::uint32_t nodes) : boxes_(nodes) {
    SMPMINE_LOCK_NAME(&stats_mu_, "Cluster::stats_mu_");
  }

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(boxes_.size());
  }

  /// Copies `payload` into node `to`'s mailbox and meters the transfer.
  void send(std::uint32_t from, std::uint32_t to, std::uint32_t tag,
            std::vector<std::byte> payload) {
    {
      MutexLock lk(stats_mu_);
      ++stats_.messages;
      stats_.bytes += payload.size();
    }
    boxes_[to].send(Message{from, tag, std::move(payload)});
  }

  Message receive(std::uint32_t node) { return boxes_[node].receive(); }

  CommStats stats() const {
    MutexLock lk(stats_mu_);
    return stats_;
  }

 private:
  // lint-ok: R1 — const after construction; each Mailbox synchronizes
  // itself, and stats_mu_ guards only the metering counters.
  std::vector<Mailbox> boxes_;
  mutable Mutex stats_mu_;
  CommStats stats_ GUARDED_BY(stats_mu_);
};

}  // namespace smpmine
