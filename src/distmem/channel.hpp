// In-process message-passing substrate.
//
// The paper contrasts its shared-memory algorithms with the
// distributed-memory parallelizations of Agrawal & Shafer (1996). To make
// that comparison runnable here, this module simulates a shared-nothing
// machine inside one process: "nodes" are threads that may communicate
// *only* through these mailboxes, and every transfer physically copies its
// payload and is metered — so the communication volume the paper argues
// about is measured, not estimated.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <vector>

#include "obs/flight/flight_recorder.hpp"
#include "parallel/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/types.hpp"

namespace smpmine {

struct Message {
  std::uint32_t from = 0;
  std::uint32_t tag = 0;
  std::vector<std::byte> payload;
};

/// Multi-producer single-consumer mailbox with blocking receive.
class Mailbox {
 public:
  Mailbox() { SMPMINE_LOCK_NAME(&mu_, "Mailbox::mu_"); }

  void send(Message message) {
    {
      MutexLock lk(mu_);
      queue_.push_back(std::move(message));
    }
    cv_.notify_one();
  }

  /// Blocks until a message arrives.
  Message receive() {
    MutexLock lk(mu_);
    // Explicit predicate loop: condition_variable_any::wait releases and
    // reacquires through the guard, and spurious wakeups re-test here.
    while (queue_.empty()) cv_.wait(lk);
    Message m = std::move(queue_.front());
    queue_.pop_front();
    return m;
  }

 private:
  Mutex mu_;
  std::condition_variable_any cv_;
  std::deque<Message> queue_ GUARDED_BY(mu_);
};

/// Aggregate traffic statistics for one simulated cluster.
struct CommStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// A fixed-size cluster of mailboxes with traffic metering.
///
/// Metering is per-sender: every transfer bumps the sending node's own
/// cache-line-padded relaxed atomics, merged at stats(). The earlier
/// design took one Cluster-wide mutex inside send(), which serialized
/// *every* transfer in the cluster through a single cache line — the
/// simulated interconnect had a real global lock in it.
class Cluster {
 public:
  explicit Cluster(std::uint32_t nodes)
      : boxes_(nodes), node_stats_(nodes) {}

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(boxes_.size());
  }

  /// Copies `payload` into node `to`'s mailbox and meters the transfer.
  void send(std::uint32_t from, std::uint32_t to, std::uint32_t tag,
            std::vector<std::byte> payload) {
    NodeStats& s = node_stats_[from];
    // relaxed-ok: metering counters are pure totals, partitioned by
    // sending node; stats() sums a quiesced (or tolerably stale) view.
    s.messages.fetch_add(1, std::memory_order_relaxed);
    // relaxed-ok: see above.
    s.bytes.fetch_add(payload.size(), std::memory_order_relaxed);
    obs::flight::emit(obs::flight::EventKind::Send, "distmem.send", nullptr,
                      payload.size());
    boxes_[to].send(Message{from, tag, std::move(payload)});
  }

  Message receive(std::uint32_t node) { return boxes_[node].receive(); }

  CommStats stats() const {
    CommStats total;
    for (const NodeStats& s : node_stats_) {
      // relaxed-ok: see send() — totals over partitioned counters.
      total.messages += s.messages.load(std::memory_order_relaxed);
      // relaxed-ok: see above.
      total.bytes += s.bytes.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  /// One sender's meter, alone on its cache line so concurrent senders
  /// never contend (the point of removing stats_mu_).
  struct alignas(kCacheLine) NodeStats {
    std::atomic<std::uint64_t> messages{0};
    std::atomic<std::uint64_t> bytes{0};
  };

  // lint-ok: R1 — const after construction; each Mailbox synchronizes
  // itself.
  std::vector<Mailbox> boxes_;
  // analyze-ok: partitioned by ownership — node_stats_[from] is only
  // written by node `from`'s sends (atomically); stats() reads relaxed.
  std::vector<NodeStats> node_stats_;
};

}  // namespace smpmine
