// Count Distribution (Agrawal & Shafer, 1996) on the simulated
// shared-nothing cluster — the strongest distributed-memory competitor the
// paper compares CCPD against (Section 7.1.2: "Count Distribution was
// shown to have superior performance among these three algorithms").
//
// Every node holds the *entire* candidate hash tree and a private database
// partition. Each iteration: generate candidates locally (identical on all
// nodes), count over the local partition, then all-reduce the partial
// counts — the only communication, but it moves |C(k)| counters per node
// per iteration and every node duplicates the whole tree. CCPD's
// shared-memory pitch is precisely that both costs vanish: one tree, zero
// exchanges. The bench puts numbers on that.
#pragma once

#include "core/options.hpp"
#include "core/stats.hpp"
#include "data/database.hpp"
#include "distmem/channel.hpp"

namespace smpmine {

struct CountDistributionResult {
  MiningResult mining;   ///< identical itemsets to the shared-memory miners
  CommStats comm;        ///< metered all-reduce traffic
  /// Aggregate tree bytes across nodes (each node duplicates the tree).
  std::uint64_t total_tree_bytes = 0;
  /// Per-iteration counters exchanged (|C(k)| summed over iterations).
  std::uint64_t counters_exchanged = 0;
};

/// Runs Count Distribution on `nodes` simulated shared-nothing nodes
/// (threads that communicate only through metered message passing).
/// `options.threads` is ignored; one thread per node. The all-reduce is a
/// gather-to-root + broadcast, the simplest scheme AS'96 describes.
CountDistributionResult mine_count_distribution(const Database& db,
                                                const MinerOptions& options,
                                                std::uint32_t nodes);

}  // namespace smpmine
