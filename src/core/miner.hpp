// Public mining facade.
//
// `mine()` runs the full frequent-itemset discovery (step 1 of the mining
// task) under the configured algorithm; `generate_rules()` (rules.hpp) is
// step 2. Everything the paper's figures measure is returned in
// MiningResult.
#pragma once

#include "core/options.hpp"
#include "core/stats.hpp"
#include "data/database.hpp"

namespace smpmine {

/// Mines all frequent itemsets of `db` per `options` (CCPD or PCCD).
/// Throws std::invalid_argument on bad options.
MiningResult mine(const Database& db, const MinerOptions& options);

/// CCPD: common candidate hash tree, partitioned database (Section 3.3).
MiningResult mine_ccpd(const Database& db, const MinerOptions& options);

/// PCCD: per-thread candidate trees, common database (Section 3.3).
MiningResult mine_pccd(const Database& db, const MinerOptions& options);

/// Sequential reference: the Section 2 algorithm (CCPD degenerates to it at
/// P=1; this wrapper pins threads=1 regardless of `options.threads`).
MiningResult mine_sequential(const Database& db, MinerOptions options);

/// Builds the iteration hash policy: Indirection derives the bitonic
/// indirection vector from F1; the closed-form schemes ignore it.
HashPolicy make_hash_policy(HashScheme scheme, std::uint32_t fanout,
                            const FrequentSet& f1, item_t universe);

}  // namespace smpmine
