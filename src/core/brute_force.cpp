#include "core/brute_force.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "core/candidate_gen.hpp"
#include "itemset/itemset.hpp"

namespace smpmine {

std::vector<FrequentSet> brute_force_frequent(const Database& db,
                                              double min_support,
                                              std::size_t max_len) {
  const count_t min_count = absolute_support(min_support, db.size());

  // Frequent single items first; longer itemsets can only use them, which
  // keeps the per-transaction subset enumeration tractable.
  std::map<item_t, count_t> item_counts;
  for (std::size_t t = 0; t < db.size(); ++t) {
    for (const item_t item : db.transaction(t)) ++item_counts[item];
  }
  std::vector<item_t> frequent_items;
  for (const auto& [item, count] : item_counts) {
    if (count >= min_count) frequent_items.push_back(item);
  }

  std::size_t longest = 0;
  std::vector<std::vector<item_t>> filtered(db.size());
  for (std::size_t t = 0; t < db.size(); ++t) {
    const auto txn = db.transaction(t);
    auto& ft = filtered[t];
    std::set_intersection(txn.begin(), txn.end(), frequent_items.begin(),
                          frequent_items.end(), std::back_inserter(ft));
    longest = std::max(longest, ft.size());
  }
  if (max_len == 0 || max_len > longest) max_len = longest;

  std::vector<FrequentSet> levels;
  for (std::size_t k = 1; k <= max_len; ++k) {
    std::map<std::vector<item_t>, count_t> counts;  // ordered => sorted F(k)
    for (const auto& txn : filtered) {
      for (auto& subset : k_subsets(txn, k)) ++counts[std::move(subset)];
    }
    std::vector<item_t> flat;
    std::vector<count_t> counted;
    for (const auto& [itemset, count] : counts) {
      if (count < min_count) continue;
      flat.insert(flat.end(), itemset.begin(), itemset.end());
      counted.push_back(count);
    }
    if (counted.empty()) break;
    levels.emplace_back(k, std::move(flat), std::move(counted));
  }
  return levels;
}

bool levels_equal(const std::vector<FrequentSet>& a,
                  const std::vector<FrequentSet>& b, std::string* diagnostic) {
  auto describe = [&](const std::string& what) {
    if (diagnostic != nullptr) *diagnostic = what;
    return false;
  };
  if (a.size() != b.size()) {
    std::ostringstream os;
    os << "level count differs: " << a.size() << " vs " << b.size();
    return describe(os.str());
  }
  for (std::size_t level = 0; level < a.size(); ++level) {
    const FrequentSet& fa = a[level];
    const FrequentSet& fb = b[level];
    if (fa.k() != fb.k() || fa.size() != fb.size()) {
      std::ostringstream os;
      os << "level " << level + 1 << " shape differs: k=" << fa.k() << "/"
         << fb.k() << " size=" << fa.size() << "/" << fb.size();
      return describe(os.str());
    }
    for (std::size_t i = 0; i < fa.size(); ++i) {
      if (compare_itemsets(fa.itemset(i), fb.itemset(i)) != 0 ||
          fa.count(i) != fb.count(i)) {
        std::ostringstream os;
        os << "level " << level + 1 << " record " << i << " differs: "
           << format_itemset(fa.itemset(i)) << " count " << fa.count(i)
           << " vs " << format_itemset(fb.itemset(i)) << " count "
           << fb.count(i);
        return describe(os.str());
      }
    }
  }
  return true;
}

}  // namespace smpmine
