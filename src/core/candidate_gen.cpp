#include "core/candidate_gen.hpp"

#include <cmath>
#include <vector>

namespace smpmine {

CandGenCounters generate_candidates_emit(
    const FrequentSet& f, std::span<const EqClass> classes,
    std::span<const GenUnit> units,
    const std::function<void(std::span<const item_t>)>& sink) {
  CandGenCounters counters;
  const std::size_t k = f.k() + 1;
  std::vector<item_t> candidate(k);
  std::vector<item_t> subset(k - 1);

  for (const GenUnit& unit : units) {
    const EqClass& cls = classes[unit.cls];
    const std::uint32_t a_idx = cls.begin + unit.member;
    const std::span<const item_t> a = f.itemset(a_idx);
    // x = A's items plus B's last item; A and B share the k-2 prefix and
    // A[k-2] < B[k-2] because the class is sorted.
    std::copy(a.begin(), a.end(), candidate.begin());

    for (std::uint32_t b_idx = a_idx + 1; b_idx < cls.end; ++b_idx) {
      candidate[k - 1] = f.itemset(b_idx)[k - 2];

      // Prune: the k-1 subsets obtained by dropping one *prefix* item; the
      // two generator subsets (drop x[k-2] -> B, drop x[k-1] -> A) are
      // frequent by construction.
      bool prune = false;
      if (k > 2) {
        for (std::size_t drop = 0; drop + 2 < k && !prune; ++drop) {
          std::size_t out = 0;
          for (std::size_t i = 0; i < k; ++i) {
            if (i != drop) subset[out++] = candidate[i];
          }
          prune = !f.contains(std::span<const item_t>(subset.data(), k - 1));
        }
      }
      if (prune) {
        ++counters.pruned;
      } else {
        sink(candidate);
        ++counters.generated;
      }
    }
  }
  return counters;
}

CandGenCounters generate_candidates(
    const FrequentSet& f, std::span<const EqClass> classes,
    std::span<const GenUnit> units, HashTree& tree,
    const std::function<bool(std::span<const item_t>)>& veto) {
  if (!veto) {
    return generate_candidates_emit(
        f, classes, units,
        [&tree](std::span<const item_t> cand) { tree.insert(cand); });
  }
  std::uint64_t vetoed = 0;
  CandGenCounters counters = generate_candidates_emit(
      f, classes, units, [&](std::span<const item_t> cand) {
        if (veto(cand)) {
          ++vetoed;
        } else {
          tree.insert(cand);
        }
      });
  counters.generated -= vetoed;
  counters.pruned += vetoed;
  return counters;
}

void count_items_range(const Database& db, std::uint64_t begin,
                       std::uint64_t end, std::span<count_t> counts) {
  for (std::uint64_t t = begin; t < end; ++t) {
    for (const item_t item : db.transaction(t)) {
      ++counts[item];
    }
  }
}

FrequentSet compute_f1(const Database& db, count_t min_count,
                       ThreadPool& pool) {
  const item_t universe = db.item_universe();
  if (universe == 0) return FrequentSet(1);

  const std::uint32_t threads = pool.size();
  std::vector<std::vector<count_t>> partial(
      threads, std::vector<count_t>(universe, 0));
  pool.parallel_for_blocked(
      db.size(), [&](std::size_t begin, std::size_t end, std::uint32_t tid) {
        count_items_range(db, begin, end, partial[tid]);
      });

  std::vector<count_t> total(universe, 0);
  for (const auto& part : partial) {
    for (item_t i = 0; i < universe; ++i) total[i] += part[i];
  }

  std::vector<item_t> flat;
  std::vector<count_t> counts;
  for (item_t i = 0; i < universe; ++i) {
    if (total[i] >= min_count) {
      flat.push_back(i);
      counts.push_back(total[i]);
    }
  }
  if (flat.empty()) return FrequentSet(1);
  return FrequentSet(1, std::move(flat), std::move(counts));
}

count_t absolute_support(double min_support, std::size_t num_transactions) {
  const double raw = min_support * static_cast<double>(num_transactions);
  const auto count = static_cast<count_t>(std::ceil(raw));
  return count > 0 ? count : 1;
}

}  // namespace smpmine
