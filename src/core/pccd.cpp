// PCCD: Partitioned Candidate trees, Common Database (paper Section 3.3).
//
// Candidates are split across threads; every thread owns a private hash
// tree over its share and scans the *entire* database each iteration. The
// paper implements it as the natural alternative to CCPD and finds it
// speeds *down* (every processor re-reads all of D); we keep it as that
// baseline. Since each tree is private there is no counter contention; the
// selection step merges the per-tree survivors.
#include <algorithm>
#include <memory>
#include <numeric>
#include <optional>

#include "core/candidate_gen.hpp"
#include "core/miner.hpp"
#include "core/select.hpp"
#include "hashtree/frozen_tree.hpp"
#include "hashtree/vertical_index.hpp"
#include "obs/flight/flight_recorder.hpp"
#include "obs/ledger/efficiency.hpp"
#include "obs/ledger/ledger.hpp"
#include "obs/perf/perf_counters.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace smpmine {

MiningResult mine_pccd(const Database& db, const MinerOptions& options) {
  MinerOptions opts = options;
  opts.validate();
  // Private trees never contend, and LCA's privatization is meaningless
  // without a shared tree.
  if (opts.counter_mode == CounterMode::PerThread) {
    opts.counter_mode = CounterMode::Atomic;
  }

  WallTimer total_timer;
  SMPMINE_TRACE_SPAN_ARG("mine.pccd", "threads", opts.threads);
  ThreadPool pool(opts.threads);
  const std::uint32_t threads = pool.size();
  MiningResult result;
  const count_t min_count = absolute_support(opts.min_support, db.size());

  // Ledger bracketing by snapshot deltas, as in ccpd.cpp.
  const obs::ledger::LedgerSnapshot ledger_run_before =
      obs::ledger::Ledger::instance().snapshot();

  {
    SMPMINE_TRACE_SPAN("f1");
    SMPMINE_PERF_PHASE("f1");
    SMPMINE_FLIGHT_PHASE("f1", 1);
    WallTimer f1_timer;
    SMPMINE_LEDGER_WORK("f1", db.size());
    result.levels.push_back(compute_f1(db, min_count, pool));
    result.f1_seconds = f1_timer.seconds();
  }

  std::vector<std::unique_ptr<PlacementArenas>> arenas;
  arenas.reserve(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    arenas.push_back(
        std::make_unique<PlacementArenas>(opts.placement, opts.spp_variant));
  }

  // One counting context per thread for the whole run: prepare_context
  // zero-fills in place each iteration, so steady-state iterations reuse
  // the high-water-mark capacity instead of reallocating (see R4).
  std::vector<CountContext> contexts(threads);
  std::vector<FlatCountContext> flat_contexts(threads);

  for (std::uint32_t k = 2; k <= opts.max_iterations; ++k) {
    const FrequentSet& prev = result.levels.back();
    if (prev.size() < 2) break;

    IterationStats it;
    it.k = k;
    SMPMINE_TRACE_SPAN_ARG("iteration", "k", k);
    // Flight recorder: iteration boundary + phase scopes (see ccpd.cpp).
    obs::flight::iteration(k);
    // Perf phase scopes mirror the trace spans; per-iteration registry
    // delta lands in it.perf (see ccpd.cpp).
    const obs::perf::PhasePerfSnapshot perf_before =
        obs::perf::PhasePerfRegistry::instance().snapshot();
    const obs::ledger::LedgerSnapshot ledger_before =
        obs::ledger::Ledger::instance().snapshot();

    // ---- candidate generation (sequential; the split is the point) -------
    // PCCD's candgen phase covers the sequential join *and* the parallel
    // per-thread tree build — mirroring what candgen_seconds measures.
    WallTimer candgen_timer;
    SMPMINE_TRACE_PHASE(candgen_span, "candgen", "k", k);
    SMPMINE_FLIGHT_PHASE_NAMED(candgen_flight, "candgen", k);
    const std::vector<EqClass> classes = build_equivalence_classes(prev);
    const std::vector<GenUnit> units = generation_units(classes, k);
    if (units.empty()) break;

    ThreadCpuTimer gen_cpu;
    std::vector<item_t> flat;  // all candidates, k items each
    std::uint64_t vetoed = 0;
    CandGenCounters gen;
    {
      SMPMINE_PERF_PHASE("candgen");
      gen = generate_candidates_emit(
          prev, classes, units, [&](std::span<const item_t> cand) {
            if (opts.candidate_veto && opts.candidate_veto(cand)) {
              ++vetoed;
              return;
            }
            flat.insert(flat.end(), cand.begin(), cand.end());
          });
    }
    gen.generated -= vetoed;
    gen.pruned += vetoed;
    SMPMINE_LEDGER_WORK("candgen", gen.generated);
    const double gen_cpu_seconds = gen_cpu.seconds();
    it.pruned = gen.pruned;
    it.candidates = gen.generated;
    if (it.candidates == 0) {
      it.perf = obs::perf::delta_since(perf_before);
      it.ledger = obs::ledger::Ledger::instance().snapshot().delta_since(
          ledger_before);
      it.efficiency = obs::ledger::decompose(it.ledger, threads);
      result.iterations.push_back(it);
      break;
    }

    const std::uint32_t fanout =
        opts.adaptive_fanout
            ? adaptive_fanout(total_join_pairs(classes), k,
                              opts.leaf_threshold, opts.min_fanout,
                              opts.max_fanout)
            : opts.fixed_fanout;
    it.fanout = fanout;
    const HashPolicy policy = make_hash_policy(
        opts.hash_scheme, fanout, result.levels.front(), db.item_universe());
    const HashTreeConfig tree_config{k, fanout, opts.leaf_threshold,
                                     opts.counter_mode};

    // ---- local tree build (parallel: each thread its own share) ----------
    std::vector<std::unique_ptr<HashTree>> trees(threads);
    std::vector<double> build_busy(threads, 0.0);
    const std::size_t num_candidates = it.candidates;
    pool.run_spmd([&](std::uint32_t tid) {
      SMPMINE_TRACE_SPAN_ARG("candgen.build", "k", k);
      SMPMINE_PERF_PHASE("candgen");
      SMPMINE_FLIGHT_PHASE("candgen", k);
      ThreadCpuTimer cpu;
      arenas[tid]->reset();
      trees[tid] =
          std::make_unique<HashTree>(tree_config, policy, *arenas[tid]);
      std::uint64_t inserted = 0;
      for (std::size_t c = tid; c < num_candidates; c += threads) {
        trees[tid]->insert(
            std::span<const item_t>(flat.data() + c * k, k));
        ++inserted;
      }
      SMPMINE_LEDGER_WORK("candgen", inserted);
      if (policy_remaps(opts.placement)) trees[tid]->remap_depth_first();
      build_busy[tid] = cpu.seconds();
    });
    it.candgen_seconds = candgen_timer.seconds();
    SMPMINE_TRACE_PHASE_END(candgen_span);
    SMPMINE_FLIGHT_PHASE_END(candgen_flight);
    obs::flight::high_water("hwm.candidates", it.candidates);
    it.candgen_busy_sum = gen_cpu_seconds + std::accumulate(
        build_busy.begin(), build_busy.end(), 0.0);
    it.candgen_busy_max = gen_cpu_seconds + *std::max_element(
        build_busy.begin(), build_busy.end());
    for (const auto& tree : trees) {
      const TreeStats ts = tree->stats();
      it.tree_nodes += ts.nodes;
      it.tree_bytes += ts.bytes_used;
    }
    obs::flight::high_water("hwm.tree_nodes", it.tree_nodes);
    obs::flight::high_water("hwm.tree_bytes", it.tree_bytes);

    // ---- kernel resolution ------------------------------------------------
    // Same chooser as CCPD (see ccpd.cpp): Auto applies the cost model,
    // frozen-layout kernels degrade to Pointer past kMaxK, and the
    // resolution is recorded per iteration.
    std::vector<item_t> tracked;
    CountKernel resolved;
    {
      KernelCostInputs ci;
      ci.k = k;
      ci.candidates = it.candidates;
      ci.transactions = db.size();
      ci.avg_transaction_len = db.avg_transaction_size();
      ci.max_flat_k = FrozenTree::kMaxK;
      if (opts.count_kernel == CountKernel::Vertical ||
          opts.count_kernel == CountKernel::Auto) {
        tracked = distinct_items(prev.flat());
        ci.distinct_items = tracked.size();
      }
      resolved = resolve_count_kernel(opts.count_kernel, ci);
    }
    it.count_kernel_used = to_string(resolved);
    const bool use_frozen = resolved != CountKernel::Pointer;
    const bool use_vertical = resolved == CountKernel::Vertical;

    // ---- freeze: each thread flattens its private tree -------------------
    // k > kMaxK falls back to the pointer kernel for this iteration only
    // (the frozen kernels gather candidates into a fixed-size stack
    // buffer). The vertical kernel freezes too: slots and counters.
    std::vector<std::unique_ptr<FrozenTree>> frozen(threads);
    if (use_frozen) {
      WallTimer freeze_timer;
      SMPMINE_TRACE_PHASE(freeze_span, "freeze", "k", k);
      // Unlike CCPD's master-serial freeze, this is an SPMD phase: track
      // per-thread CPU so the work model charges its critical path (busy
      // max), not the barrier-synchronized wall (see stats.hpp).
      std::vector<double> freeze_busy(threads, 0.0);
      pool.run_spmd([&](std::uint32_t tid) {
        SMPMINE_PERF_PHASE("freeze");
        SMPMINE_FLIGHT_PHASE("freeze", k);
        ThreadCpuTimer cpu;
        frozen[tid] =
            std::make_unique<FrozenTree>(*trees[tid], *arenas[tid]);
        freeze_busy[tid] = cpu.seconds();
      });
      SMPMINE_TRACE_PHASE_END(freeze_span);
      it.freeze_seconds = freeze_timer.seconds();
      it.freeze_busy_sum =
          std::accumulate(freeze_busy.begin(), freeze_busy.end(), 0.0);
      it.freeze_busy_max =
          *std::max_element(freeze_busy.begin(), freeze_busy.end());
      it.count_tile_size = use_vertical ? 0 : frozen.front()->tile_size();
    }

    // ---- vertical index build --------------------------------------------
    // One shared tid-bitmap index (PCCD trees partition the *candidates*,
    // not the database): allocated from thread 0's arena bundle on the
    // master, filled in parallel by word partitions.
    std::optional<VerticalIndex> vidx;
    if (use_vertical) {
      WallTimer vertbuild_timer;
      SMPMINE_TRACE_PHASE(vertbuild_span, "vertbuild", "k", k);
      SMPMINE_FLIGHT_PHASE_NAMED(vertbuild_flight, "vertbuild", k);
      {
        SMPMINE_PERF_PHASE("vertbuild");
        vidx.emplace(db, tracked, *arenas[0]);
      }
      pool.run_spmd([&](std::uint32_t tid) {
        SMPMINE_TRACE_SPAN_ARG("vertbuild", "k", k);
        SMPMINE_PERF_PHASE("vertbuild");
        SMPMINE_FLIGHT_PHASE("vertbuild", k);
        vidx->build_partition(db, tid, threads);
        // This thread's share of the bitmap plane (rows × its word range).
        SMPMINE_LEDGER_WORK("vertbuild",
                            vidx->rows() * (vidx->words() / threads + 1));
      });
      it.vertbuild_seconds = vertbuild_timer.seconds();
      it.vert_rows = vidx->rows();
      it.vert_words = vidx->words();
      SMPMINE_TRACE_PHASE_END(vertbuild_span);
      SMPMINE_FLIGHT_PHASE_END(vertbuild_flight);
    }

    // ---- support counting: every thread scans the whole database ---------
    WallTimer count_timer;
    SMPMINE_TRACE_PHASE(count_span, "count", "k", k);
    SMPMINE_FLIGHT_PHASE_NAMED(count_flight, "count", k);
    std::vector<double> busy(threads, 0.0);
    pool.run_spmd([&](std::uint32_t tid) {
      SMPMINE_PERF_PHASE("count");
      SMPMINE_FLIGHT_PHASE("count", k);
      obs::flight::maybe_inject_fault("count");
      ThreadCpuTimer busy_timer;
      if (use_vertical) {
        // Each thread intersects its own candidate share against the
        // shared index — the whole database per slot, no transaction scan.
        SMPMINE_TRACE_SPAN_ARG("count.vertical", "k", k);
        FlatCountContext& ctx = flat_contexts[tid];
        frozen[tid]->prepare_context(ctx);
        frozen[tid]->count_slots_vertical(
            *vidx, 0, frozen[tid]->num_candidates(), ctx);
      } else if (use_frozen) {
        SMPMINE_TRACE_SPAN_ARG("count.flat", "k", k);
        FlatCountContext& ctx = flat_contexts[tid];
        frozen[tid]->prepare_context(ctx);
        frozen[tid]->count_range(db, 0, db.size(), ctx);
      } else {
        SMPMINE_TRACE_SPAN_ARG("count", "k", k);
        CountContext& ctx = contexts[tid];
        trees[tid]->prepare_context(opts.subset_check, ctx);
        for (std::uint64_t t = 0; t < db.size(); ++t) {
          trees[tid]->count_transaction(db.transaction(t), ctx);
        }
        // Pointer kernel: the whole-database scan is the batch.
        SMPMINE_LEDGER_WORK("count", db.size());
      }
      busy[tid] = busy_timer.seconds();
    });
    it.count_seconds = count_timer.seconds();
    SMPMINE_TRACE_PHASE_END(count_span);
    SMPMINE_FLIGHT_PHASE_END(count_flight);
    it.count_busy_sum = std::accumulate(busy.begin(), busy.end(), 0.0);
    it.count_busy_max = *std::max_element(busy.begin(), busy.end());
    if (use_frozen) {
      for (std::uint32_t t = 0; t < threads; ++t) {
        const FlatCountContext& ctx = flat_contexts[t];
        it.internal_visits += ctx.internal_visits;
        it.leaf_visits += ctx.leaf_visits;
        it.containment_checks += ctx.containment_checks;
        it.hits += ctx.hits;
        it.count_tiles += ctx.tiles;
      }
    } else {
      for (std::uint32_t t = 0; t < threads; ++t) {
        const CountContext& ctx = contexts[t];
        it.internal_visits += ctx.internal_visits;
        it.leaf_visits += ctx.leaf_visits;
        it.containment_checks += ctx.containment_checks;
        it.hits += ctx.hits;
      }
    }

    // ---- reduce: publish frozen counters back into the Candidates --------
    if (use_frozen) {
      WallTimer reduce_timer;
      SMPMINE_TRACE_PHASE(reduce_span, "reduce", "k", k);
      SMPMINE_FLIGHT_PHASE("reduce", k);
      {
        SMPMINE_PERF_PHASE("reduce");
        for (std::uint32_t t = 0; t < threads; ++t) {
          frozen[t]->thaw_counts(*trees[t]);
        }
      }
      SMPMINE_TRACE_PHASE_END(reduce_span);
      it.reduce_seconds = reduce_timer.seconds();
    }

    // ---- selection: master merges per-tree survivors ----------------------
    WallTimer select_timer;
    SMPMINE_TRACE_PHASE(select_span, "select", "k", k);
    SMPMINE_FLIGHT_PHASE_NAMED(select_flight, "select", k);
    FrequentSet fk;
    {
      SMPMINE_PERF_PHASE("select");
      fk = select_frequent(trees, min_count);
    }
    SMPMINE_TRACE_PHASE_END(select_span);
    SMPMINE_FLIGHT_PHASE_END(select_flight);
    it.select_seconds = select_timer.seconds();
    it.frequent = fk.size();
    it.perf = obs::perf::delta_since(perf_before);
    it.ledger = obs::ledger::Ledger::instance().snapshot().delta_since(
        ledger_before);
    it.efficiency = obs::ledger::decompose(it.ledger, threads);
    const bool done = fk.size() == 0;
    if (!done) result.levels.push_back(std::move(fk));
    result.iterations.push_back(it);
    if (done) break;
  }

  result.run_ledger = obs::ledger::Ledger::instance().snapshot().delta_since(
      ledger_run_before);
  result.run_efficiency = obs::ledger::decompose(result.run_ledger, threads);
  result.total_seconds = total_timer.seconds();
  return result;
}

}  // namespace smpmine
