// Rule generation — step 2 of the mining task (paper Section 2).
//
// For every frequent itemset X, rules X-Y => Y are emitted when
// confidence = support(X) / support(X-Y) meets the threshold. Uses the
// ap-genrules expansion: consequents grow one item at a time, and a
// consequent that fails confidence prunes all of its supersets (confidence
// is anti-monotone in the consequent).
#pragma once

#include <string>
#include <vector>

#include "core/stats.hpp"
#include "util/types.hpp"

namespace smpmine {

struct Rule {
  std::vector<item_t> antecedent;
  std::vector<item_t> consequent;
  count_t support_count = 0;  ///< support count of antecedent ∪ consequent
  double support = 0.0;       ///< fraction of transactions
  double confidence = 0.0;
  double lift = 0.0;          ///< confidence / support(consequent)

  std::string to_string() const;
};

/// Generates all rules meeting `min_confidence` from the mined levels.
/// `num_transactions` converts counts to fractions. Rules are ordered by
/// descending confidence, ties by descending support.
std::vector<Rule> generate_rules(const MiningResult& result,
                                 double min_confidence,
                                 std::size_t num_transactions);

/// Parallel rule generation: frequent itemsets are independent rule
/// sources, so they are distributed over `threads` workers and the outputs
/// merged. Identical result (same rules, same order) as generate_rules.
std::vector<Rule> generate_rules_parallel(const MiningResult& result,
                                          double min_confidence,
                                          std::size_t num_transactions,
                                          std::uint32_t threads);

}  // namespace smpmine
