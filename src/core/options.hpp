// Miner configuration: every optimization the paper evaluates is a switch
// here, so each figure's bench is "same dataset, toggle one knob".
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "alloc/placement.hpp"
#include "data/db_partition.hpp"
#include "hashtree/count_kernel.hpp"
#include "hashtree/hash_policy.hpp"
#include "hashtree/hash_tree.hpp"
#include "parallel/partition.hpp"

namespace smpmine {

enum class Algorithm {
  CCPD,  ///< common candidate tree, partitioned database (the paper's pick)
  PCCD,  ///< partitioned candidate trees, common database (the baseline
         ///< shown to speed *down*)
};

const char* to_string(Algorithm a);

// CountKernel (Pointer / Flat / Vertical / Auto) and its per-iteration
// chooser live in hashtree/count_kernel.hpp, included above.

struct MinerOptions {
  /// Minimum support as a fraction of |D| (paper uses 0.5% and 0.1%).
  double min_support = 0.005;
  /// Minimum confidence for rule generation.
  double min_confidence = 0.5;

  std::uint32_t threads = 1;
  Algorithm algorithm = Algorithm::CCPD;

  // --- Section 3/4 optimizations -----------------------------------------
  /// COMP: candidate-generation balancing. Block is the unbalanced
  /// baseline; Bitonic is the optimized greedy scheme.
  PartitionScheme balance = PartitionScheme::Bitonic;
  /// TREE: hash-tree balancing. Interleaved (mod H) is the baseline;
  /// Indirection is the bitonic-partitioned hash function of Section 4.1.
  HashScheme hash_scheme = HashScheme::Indirection;
  /// Short-circuited subset checking. LeafVisited is the baseline.
  SubsetCheck subset_check = SubsetCheck::FrameLocal;
  /// Adaptive parallelism (Section 3.1.3): candidate generation runs
  /// sequentially when |F(k-1)| is below this threshold.
  std::uint32_t parallel_candgen_threshold = 64;

  // --- Section 5 placement ------------------------------------------------
  PlacementPolicy placement = PlacementPolicy::SPP;
  /// Section 5.1's SPP variation: common / individual / grouped regions.
  /// Ignored by the Malloc policy.
  SppVariant spp_variant = SppVariant::Common;
  /// Counter update discipline; forced to PerThread by LCA-GPP.
  CounterMode counter_mode = CounterMode::Atomic;

  // --- counting backend ---------------------------------------------------
  /// Support-counting kernel. Flat freezes each iteration's tree into an
  /// immutable CSR + SoA layout and counts with the tiled iterative kernel
  /// (freeze cost is measured per iteration as freeze_seconds). Pointer
  /// keeps the paper's recursive traversal; the traversal-mechanism
  /// studies (subset-check short-circuiting, placement locality) pin it
  /// because their subject *is* the pointer layout. The flat kernel's
  /// bucket dedup is FrameLocal's regardless of subset_check, so support
  /// counts are identical across all settings either way. Vertical counts
  /// through per-item tid-bitmaps (AND + popcount, vertical_index.hpp) —
  /// the late-iteration winner — and Auto picks Flat or Vertical each
  /// iteration via resolve_count_kernel's cost model. The kernel that
  /// actually ran is recorded per iteration in
  /// IterationStats::count_kernel_used.
  CountKernel count_kernel = CountKernel::Flat;

  // --- tree shape ----------------------------------------------------------
  std::uint32_t leaf_threshold = 8;  ///< paper's T
  bool adaptive_fanout = true;       ///< Section 3.1.1 sizing rule
  std::uint32_t fixed_fanout = 8;    ///< used when !adaptive_fanout
  std::uint32_t min_fanout = 2;
  std::uint32_t max_fanout = 512;

  // --- database -----------------------------------------------------------
  DbPartition db_partition = DbPartition::Block;

  /// Safety valve against runaway supports.
  std::uint32_t max_iterations = 32;

  /// Optional domain constraint: a candidate for which this returns true is
  /// dropped (counted as pruned) before insertion into the hash tree. Used
  /// by the generalized (taxonomy) miner to drop itemsets containing an
  /// item together with its ancestor; available to applications for any
  /// anti-monotone constraint. Must be thread-safe.
  std::function<bool(std::span<const item_t>)> candidate_veto;

  /// When set, the master thread samples counting-traversal address traces
  /// after each tree build and records locality metrics in IterationStats
  /// (used by the Fig 12/13 placement benches). Adds a small, measured
  /// overhead; off by default.
  bool collect_locality = false;
  /// Number of transactions sampled per iteration for the locality trace.
  std::uint32_t locality_sample = 32;

  /// Normalizes dependent fields (LCA-GPP implies PerThread counters) and
  /// throws std::invalid_argument on nonsensical settings.
  void validate();

  /// One-line summary for bench headers.
  std::string summary() const;
};

}  // namespace smpmine
