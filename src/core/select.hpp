// Frequent-itemset selection shared by the CCPD and PCCD miners.
//
// The original per-miner select_frequent collected Candidate pointers,
// sorted the pointers, then re-dereferenced each scattered block in a
// second copy pass — a pointer-chase per record on the phase's critical
// path. FrequentPacker instead packs survivors into contiguous flat
// storage in one pass over the tree(s) and sorts an index permutation of
// the packed records, so the sort and the final pack both stream.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "hashtree/hash_tree.hpp"
#include "itemset/frequent_set.hpp"
#include "util/types.hpp"

namespace smpmine {

/// Accumulates surviving candidates and finishes into a lexicographically
/// sorted FrequentSet.
class FrequentPacker {
 public:
  explicit FrequentPacker(std::size_t k) : k_(k) {}

  /// Pre-reserves for `n` survivors (one upfront allocation per arrays).
  void reserve(std::size_t n) {
    flat_.reserve(n * k_);
    counts_.reserve(n);
  }

  void add(std::span<const item_t> items, count_t count) {
    flat_.insert(flat_.end(), items.begin(), items.end());
    counts_.push_back(count);
  }

  std::size_t size() const { return counts_.size(); }

  /// Sorts the packed records lexicographically (via an index permutation
  /// over the contiguous storage) and builds F(k). Leaves the packer empty.
  FrequentSet finish();

 private:
  std::size_t k_;
  std::vector<item_t> flat_;
  std::vector<count_t> counts_;
};

/// One-pass selection over a single tree (CCPD): survivors are counted
/// first so the packer reserves exactly, then packed and sorted.
FrequentSet select_frequent(const HashTree& tree, count_t min_count);

/// Merged selection over per-thread trees (PCCD).
FrequentSet select_frequent(
    const std::vector<std::unique_ptr<HashTree>>& trees, count_t min_count);

}  // namespace smpmine
