#include "core/stats.hpp"

#include <sstream>

#include "util/table.hpp"

namespace smpmine {

std::string MiningResult::report() const {
  std::ostringstream os;
  TextTable table({"k", "candidates", "pruned", "frequent", "fanout",
                   "tree_nodes", "tree_KB", "leaf_occ(mean/max)", "time_s"});
  for (const auto& it : iterations) {
    table.add_row({std::to_string(it.k), std::to_string(it.candidates),
                   std::to_string(it.pruned), std::to_string(it.frequent),
                   std::to_string(it.fanout), std::to_string(it.tree_nodes),
                   TextTable::num(static_cast<double>(it.tree_bytes) / 1024.0, 1),
                   TextTable::num(it.mean_leaf_occupancy, 2) + "/" +
                       TextTable::num(it.max_leaf_occupancy, 0),
                   TextTable::num(it.total_seconds(), 4)});
  }
  os << table.render();
  os << "total frequent itemsets: " << total_frequent()
     << "  total time: " << total_seconds << " s"
     << "  work-speedup bound: " << work_speedup() << "\n";
  return os.str();
}

}  // namespace smpmine
