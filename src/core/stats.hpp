// Per-iteration and per-run mining statistics.
//
// The paper's evaluation reads off exactly these series: candidates and
// frequent itemsets per iteration (Fig 7), intermediate hash-tree size
// (Fig 6), computation-time improvements (Figs 8-10), speedup (Fig 11),
// and normalized execution times under placement policies (Figs 12-13).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "itemset/frequent_set.hpp"
#include "obs/ledger/efficiency.hpp"
#include "obs/ledger/ledger.hpp"
#include "obs/perf/perf_counters.hpp"
#include "util/timer.hpp"

namespace smpmine {

struct IterationStats {
  std::uint32_t k = 0;
  std::uint64_t candidates = 0;
  std::uint64_t pruned = 0;    ///< join pairs rejected by subset pruning
  std::uint64_t frequent = 0;

  // Tree shape (Fig 6 and the Theorem 1 balance study).
  std::uint32_t fanout = 0;
  std::uint64_t tree_nodes = 0;
  std::uint64_t tree_bytes = 0;
  double mean_leaf_occupancy = 0.0;
  double max_leaf_occupancy = 0.0;
  double leaf_occupancy_stddev = 0.0;

  // Phase wall times (seconds, master-observed). freeze_seconds is the
  // flat kernel's pointer-tree -> CSR snapshot (zero under the pointer
  // kernel); vertbuild_seconds is the vertical kernel's tid-bitmap index
  // construction (zero otherwise). Both are charged to the iteration total
  // so every kernel comparison includes its build cost.
  double candgen_seconds = 0.0;
  double remap_seconds = 0.0;
  double freeze_seconds = 0.0;
  double vertbuild_seconds = 0.0;
  double count_seconds = 0.0;
  double reduce_seconds = 0.0;
  double select_seconds = 0.0;

  /// Which counting kernel actually ran this iteration ("pointer", "flat"
  /// or "vertical") — resolve_count_kernel's output, which can differ from
  /// the requested kernel under Auto or the k > FrozenTree::kMaxK
  /// fallback.
  std::string count_kernel_used = "pointer";
  // Vertical-kernel shape (zero under the horizontal kernels).
  std::uint64_t vert_rows = 0;   ///< tid-bitmap rows (tracked items)
  std::uint64_t vert_words = 0;  ///< u64 words per row

  // Work model: per-thread CPU time in the parallel phases. On a machine
  // with fewer cores than threads, wall time measures scheduling rather
  // than work; CPU-time sum/max still measures balance, and the modeled
  // parallel time (max over threads per phase) is what the paper's
  // computation-balance improvements are about. The two views are kept
  // strictly apart: `*_busy_sum` is total thread-seconds (never a phase
  // duration), `*_busy_max` is the per-phase critical path — summing
  // per-thread seconds into a `*_seconds` field is the conflation the
  // ledger audit (PR 10) removed.
  double count_busy_sum = 0.0;
  double count_busy_max = 0.0;
  double candgen_busy_sum = 0.0;
  double candgen_busy_max = 0.0;
  // Freeze is master-serial under CCPD (sum == max == wall) but an SPMD
  // phase under PCCD, where charging its wall as serial time would
  // misclassify parallel work; the model below uses the max.
  double freeze_busy_sum = 0.0;
  double freeze_busy_max = 0.0;

  /// Imbalance of the candidate-generation partition (max/mean weight).
  double candgen_imbalance = 1.0;

  // Deterministic traversal work counters, summed over threads.
  std::uint64_t internal_visits = 0;
  std::uint64_t leaf_visits = 0;
  std::uint64_t containment_checks = 0;
  std::uint64_t hits = 0;

  // Flat-kernel mechanism counters (zero under the pointer kernel).
  std::uint64_t count_tiles = 0;       ///< transaction tiles, all threads
  std::uint32_t count_tile_size = 0;   ///< configured B (0 = pointer)

  // Locality diagnostics (populated when MinerOptions::collect_locality):
  // metrics of the counting-order address trace over a transaction sample.
  // A placement policy that works raises same-line rate and shrinks stride.
  double locality_same_line_rate = 0.0;
  double locality_mean_stride = 0.0;
  std::uint64_t locality_distinct_lines = 0;
  std::uint64_t locality_distinct_pages = 0;
  /// Fraction of candidates whose support counter shares a cache line with
  /// the candidate's read-only items — the false-sharing hazard the L-*
  /// policies eliminate (0 when counters are segregated or privatized).
  double counter_itemset_line_sharing = 0.0;

  /// Per-phase hardware/software counter deltas attributed to this
  /// iteration (empty when the perf backend is off). Phase names follow
  /// the *_seconds fields above.
  obs::perf::PhasePerfSnapshot perf;

  /// Parallel-efficiency ledger delta for this iteration: the per-thread ×
  /// per-phase wall/CPU/work/barrier-wait/lock-wait table recorded by the
  /// SMPMINE_PERF_PHASE scopes and the synchronization wrappers (empty
  /// when the ledger is disabled).
  obs::ledger::LedgerSnapshot ledger;
  /// Loss decomposition of `ledger` (serial / imbalance / contention /
  /// overhead fractions; see obs/ledger/efficiency.hpp).
  obs::ledger::EfficiencyDecomposition efficiency;

  double total_seconds() const {
    return candgen_seconds + remap_seconds + freeze_seconds +
           vertbuild_seconds + count_seconds + reduce_seconds +
           select_seconds;
  }

  /// Modeled parallel computation time of this iteration: critical path of
  /// the parallel phases (max per-thread CPU time) plus the serial phases.
  /// The freeze uses its busy max — master-serial under CCPD (where the
  /// max *is* the wall) but SPMD under PCCD, whose wall would overstate
  /// the critical path; the pre-busy-tracking wall is the fallback.
  double modeled_parallel_seconds() const {
    const double freeze = freeze_busy_max > 0.0 ? freeze_busy_max
                                                : freeze_seconds;
    return candgen_busy_max + remap_seconds + freeze +
           vertbuild_seconds + count_busy_max + reduce_seconds +
           select_seconds;
  }
};

struct MiningResult {
  /// levels[i] is F(i+1).
  std::vector<FrequentSet> levels;
  std::vector<IterationStats> iterations;
  double f1_seconds = 0.0;
  double total_seconds = 0.0;

  /// Whole-run ledger delta (f1 through the last iteration) and its
  /// efficiency decomposition — what the speedup-autopsy tooling and the
  /// fig11 bench read; empty when the ledger is disabled.
  obs::ledger::LedgerSnapshot run_ledger;
  obs::ledger::EfficiencyDecomposition run_efficiency;

  std::uint64_t total_frequent() const {
    std::uint64_t n = 0;
    for (const auto& level : levels) n += level.size();
    return n;
  }
  std::uint64_t total_candidates() const {
    std::uint64_t n = 0;
    for (const auto& it : iterations) n += it.candidates;
    return n;
  }
  /// Sum over iterations of per-phase times.
  double phase_total(double IterationStats::*field) const {
    double sum = 0.0;
    for (const auto& it : iterations) sum += it.*field;
    return sum;
  }
  /// Work-model speedup bound: total counting work / critical path.
  double work_speedup() const {
    double sum = 0.0, crit = 0.0;
    for (const auto& it : iterations) {
      sum += it.count_busy_sum;
      crit += it.count_busy_max;
    }
    return crit > 0.0 ? sum / crit : 1.0;
  }

  /// Modeled parallel computation time over all iterations (see
  /// IterationStats::modeled_parallel_seconds). The figure benches compare
  /// configurations on this quantity.
  double modeled_total_seconds() const {
    double sum = 0.0;
    for (const auto& it : iterations) sum += it.modeled_parallel_seconds();
    return sum;
  }
  /// Sum of traversal work counters, a machine-independent cost proxy.
  std::uint64_t traversal_work() const {
    std::uint64_t n = 0;
    for (const auto& it : iterations) {
      n += it.internal_visits + it.leaf_visits + it.containment_checks;
    }
    return n;
  }

  /// Multi-line human-readable report.
  std::string report() const;
};

}  // namespace smpmine
