// CCPD: Common Candidate tree, Partitioned Database (paper Section 3.3).
//
// Iteration k (bulk-synchronous over P threads):
//   1. candidate generation — equivalence-class join of F(k-1), balanced
//      over threads (COMP), inserted into one shared hash tree under
//      per-leaf locks; sequential below the adaptive-parallelism threshold.
//   2. optional GPP remap of the tree (depth-first, master thread).
//   3. support counting — each thread scans its database partition and
//      traverses the shared tree (subset-check strategy per options).
//   4. LCA reduction when counters are privatized.
//   5. selection — candidates meeting min-support become F(k).
#include <algorithm>
#include <numeric>
#include <optional>

#include "alloc/alloc_stats.hpp"
#include "core/candidate_gen.hpp"
#include "core/miner.hpp"
#include "core/select.hpp"
#include "hashtree/frozen_tree.hpp"
#include "hashtree/vertical_index.hpp"
#include "obs/flight/flight_recorder.hpp"
#include "obs/ledger/efficiency.hpp"
#include "obs/ledger/ledger.hpp"
#include "obs/perf/perf_counters.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace smpmine {

MiningResult mine_ccpd(const Database& db, const MinerOptions& options) {
  MinerOptions opts = options;
  opts.validate();

  WallTimer total_timer;
  SMPMINE_TRACE_SPAN_ARG("mine.ccpd", "threads", opts.threads);
  ThreadPool pool(opts.threads);
  const std::uint32_t threads = pool.size();
  MiningResult result;
  const count_t min_count = absolute_support(opts.min_support, db.size());

  // Parallel-efficiency ledger: snapshot-delta bracketing (never reset —
  // concurrent runs and benches compose through deltas).
  const obs::ledger::LedgerSnapshot ledger_run_before =
      obs::ledger::Ledger::instance().snapshot();

  {
    SMPMINE_TRACE_SPAN("f1");
    SMPMINE_PERF_PHASE("f1");
    SMPMINE_FLIGHT_PHASE("f1", 1);
    WallTimer f1_timer;
    SMPMINE_LEDGER_WORK("f1", db.size());
    result.levels.push_back(compute_f1(db, min_count, pool));
    result.f1_seconds = f1_timer.seconds();
  }

  // One arena bundle reused (reset) across iterations — the custom
  // library's pre-allocated-memory reuse.
  PlacementArenas arenas(opts.placement, opts.spp_variant);
  DbRanges ranges = partition_database(db, threads, opts.db_partition);

  // Per-thread counting contexts live across iterations: prepare_context
  // re-sizes in place, so once the high-water tree size is reached the
  // per-iteration counting setup allocates nothing.
  std::vector<CountContext> contexts(threads);
  std::vector<FlatCountContext> flat_contexts(threads);

  for (std::uint32_t k = 2; k <= opts.max_iterations; ++k) {
    const FrequentSet& prev = result.levels.back();
    if (prev.size() < 2) break;

    IterationStats it;
    it.k = k;
    // Master-track phase spans use the IterationStats names (candgen /
    // remap / freeze / count / reduce / select); worker-track spans of the
    // same name
    // inside the run_spmd bodies give the per-thread timeline the paper's
    // imbalance figures are about. SMPMINE_TRACE_PHASE because the phases
    // share this scope — each span is closed explicitly where the matching
    // WallTimer is read.
    SMPMINE_TRACE_SPAN_ARG("iteration", "k", k);
    // Flight recorder: iteration boundary + master-side phase scopes
    // (worker-side scopes live in the run_spmd bodies below), so a crash
    // dump names the phase every thread was in.
    obs::flight::iteration(k);
    // Hardware-counter attribution: perf phase scopes mirror the trace
    // spans (worker-side for the parallel phases, since counter sessions
    // are per-thread); the registry delta across this iteration lands in
    // it.perf.
    const obs::perf::PhasePerfSnapshot perf_before =
        obs::perf::PhasePerfRegistry::instance().snapshot();
    const obs::ledger::LedgerSnapshot ledger_before =
        obs::ledger::Ledger::instance().snapshot();

    // ---- candidate generation -------------------------------------------
    WallTimer candgen_timer;
    SMPMINE_TRACE_PHASE(candgen_span, "candgen", "k", k);
    SMPMINE_FLIGHT_PHASE_NAMED(candgen_flight, "candgen", k);
    const std::vector<EqClass> classes = build_equivalence_classes(prev);
    const std::vector<GenUnit> units = generation_units(classes, k);
    if (units.empty()) break;

    const std::uint32_t fanout =
        opts.adaptive_fanout
            ? adaptive_fanout(total_join_pairs(classes), k,
                              opts.leaf_threshold, opts.min_fanout,
                              opts.max_fanout)
            : opts.fixed_fanout;
    it.fanout = fanout;

    const HashPolicy policy = make_hash_policy(
        opts.hash_scheme, fanout, result.levels.front(), db.item_universe());
    arenas.reset();
    const HashTreeConfig tree_config{k, fanout, opts.leaf_threshold,
                                     opts.counter_mode};
    HashTree tree(tree_config, policy, arenas);

    CandGenCounters gen;
    const bool parallel_gen =
        threads > 1 && prev.size() >= opts.parallel_candgen_threshold;
    if (parallel_gen) {
      const auto batches = balance_generation(units, threads, opts.balance);
      double max_weight = 0.0, sum_weight = 0.0;
      for (const auto& batch : batches) {
        double w = 0.0;
        for (const GenUnit& u : batch) w += u.weight;
        max_weight = std::max(max_weight, w);
        sum_weight += w;
      }
      it.candgen_imbalance = sum_weight > 0.0
                                 ? max_weight * threads / sum_weight
                                 : 1.0;
      std::vector<CandGenCounters> per_thread(threads);
      std::vector<double> gen_busy(threads, 0.0);
      pool.run_spmd([&](std::uint32_t tid) {
        SMPMINE_TRACE_SPAN_ARG("candgen", "k", k);
        SMPMINE_PERF_PHASE("candgen");
        SMPMINE_FLIGHT_PHASE("candgen", k);
        ThreadCpuTimer cpu;
        per_thread[tid] = generate_candidates(prev, classes, batches[tid],
                                              tree, opts.candidate_veto);
        SMPMINE_LEDGER_WORK("candgen", per_thread[tid].generated);
        gen_busy[tid] = cpu.seconds();
      });
      for (const auto& c : per_thread) gen += c;
      it.candgen_busy_sum =
          std::accumulate(gen_busy.begin(), gen_busy.end(), 0.0);
      it.candgen_busy_max =
          *std::max_element(gen_busy.begin(), gen_busy.end());
    } else {
      SMPMINE_PERF_PHASE("candgen");
      ThreadCpuTimer cpu;
      gen = generate_candidates(prev, classes, units, tree,
                                opts.candidate_veto);
      SMPMINE_LEDGER_WORK("candgen", gen.generated);
      it.candgen_busy_sum = it.candgen_busy_max = cpu.seconds();
    }
    it.candgen_seconds = candgen_timer.seconds();
    SMPMINE_TRACE_PHASE_END(candgen_span);
    SMPMINE_FLIGHT_PHASE_END(candgen_flight);
    it.candidates = tree.num_candidates();
    obs::flight::high_water("hwm.candidates", it.candidates);
    it.pruned = gen.pruned;
    if (it.candidates == 0) {
      it.perf = obs::perf::delta_since(perf_before);
      it.ledger = obs::ledger::Ledger::instance().snapshot().delta_since(
          ledger_before);
      it.efficiency = obs::ledger::decompose(it.ledger, threads);
      result.iterations.push_back(it);
      break;
    }

    // ---- GPP remap --------------------------------------------------------
    {
      SMPMINE_TRACE_SPAN_ARG("remap", "k", k);
      SMPMINE_PERF_PHASE("remap");
      SMPMINE_FLIGHT_PHASE("remap", k);
      WallTimer remap_timer;
      if (policy_remaps(opts.placement)) tree.remap_depth_first();
      it.remap_seconds = remap_timer.seconds();
    }
    if (opts.counter_mode == CounterMode::PerThread) {
      tree.candidate_index();  // built single-threaded before parallel use
    }
    {
      const TreeStats ts = tree.stats();
      it.tree_nodes = ts.nodes;
      it.tree_bytes = ts.bytes_used;
      obs::flight::high_water("hwm.tree_nodes", ts.nodes);
      obs::flight::high_water("hwm.tree_bytes", ts.bytes_used);
      it.mean_leaf_occupancy = ts.mean_leaf_occupancy;
      it.max_leaf_occupancy = ts.max_leaf_occupancy;
      it.leaf_occupancy_stddev = ts.leaf_occupancy_stddev;
    }
    if (opts.collect_locality) {
      // Counting-order address trace over a transaction sample (master
      // thread, before counting starts).
      std::vector<std::uintptr_t> trace;
      const std::uint64_t sample =
          std::min<std::uint64_t>(db.size(), opts.locality_sample);
      const std::uint64_t stride = sample > 0 ? db.size() / sample : 1;
      for (std::uint64_t s = 0; s < sample; ++s) {
        tree.access_trace(db.transaction(s * stride), trace);
      }
      const LocalityReport report = analyze_trace(trace);
      it.locality_same_line_rate = report.same_line_rate;
      it.locality_mean_stride = report.mean_stride;
      it.locality_distinct_lines = report.distinct_lines;
      it.locality_distinct_pages = report.distinct_pages;

      std::uint64_t shared = 0, total = 0;
      tree.for_each_candidate([&](const Candidate& cand) {
        ++total;
        const auto counter_line =
            reinterpret_cast<std::uintptr_t>(cand.count) / kCacheLine;
        const auto first_line =
            reinterpret_cast<std::uintptr_t>(cand.items()) / kCacheLine;
        const auto last_line = reinterpret_cast<std::uintptr_t>(
                                   cand.items() + k) / kCacheLine;
        if (opts.counter_mode != CounterMode::PerThread &&
            (counter_line == first_line || counter_line == last_line)) {
          ++shared;
        }
      });
      it.counter_itemset_line_sharing =
          total > 0 ? static_cast<double>(shared) / static_cast<double>(total)
                    : 0.0;
    }

    // ---- kernel resolution -------------------------------------------------
    // Resolve the requested kernel to the one this iteration actually runs:
    // Auto applies the cost model, and any frozen-layout kernel degrades to
    // Pointer when k > kMaxK (unreachable at realistic supports). The
    // resolution is recorded so manifests show what really ran.
    std::vector<item_t> tracked;
    CountKernel resolved;
    {
      KernelCostInputs ci;
      ci.k = k;
      ci.candidates = it.candidates;
      ci.transactions = db.size();
      ci.avg_transaction_len = db.avg_transaction_size();
      ci.max_flat_k = FrozenTree::kMaxK;
      if (opts.count_kernel == CountKernel::Vertical ||
          opts.count_kernel == CountKernel::Auto) {
        // Every candidate joins two members of F(k-1), so its items are a
        // subset of F(k-1)'s distinct items — the bitmap rows needed.
        tracked = distinct_items(prev.flat());
        ci.distinct_items = tracked.size();
      }
      resolved = resolve_count_kernel(opts.count_kernel, ci);
    }
    it.count_kernel_used = to_string(resolved);
    const bool use_frozen = resolved != CountKernel::Pointer;
    const bool use_vertical = resolved == CountKernel::Vertical;

    // ---- freeze (frozen-layout kernels) -------------------------------------
    // Snapshot the quiescent tree into the CSR flat layout on the master;
    // the cost lands in freeze_seconds and thus in every kernel comparison.
    // The vertical kernel freezes too: it reads the SoA slot -> itemset
    // columns and the contiguous counter array.
    std::optional<FrozenTree> frozen;
    if (use_frozen) {
      SMPMINE_TRACE_SPAN_ARG("freeze", "k", k);
      SMPMINE_PERF_PHASE("freeze");
      SMPMINE_FLIGHT_PHASE("freeze", k);
      WallTimer freeze_timer;
      frozen.emplace(tree, arenas);
      it.freeze_seconds = freeze_timer.seconds();
      // Master-serial freeze: the busy max *is* the wall (see stats.hpp).
      it.freeze_busy_sum = it.freeze_busy_max = it.freeze_seconds;
      it.count_tile_size = use_vertical ? 0 : frozen->tile_size();
    }

    // ---- vertical index build ----------------------------------------------
    // Allocate the tid-bitmap plane on the master (arena write), then fill
    // it in parallel by word partitions — disjoint words per thread, no
    // shared writes. Charged to vertbuild_seconds, the vertical kernel's
    // analog of the freeze cost.
    std::optional<VerticalIndex> vidx;
    if (use_vertical) {
      WallTimer vertbuild_timer;
      SMPMINE_TRACE_PHASE(vertbuild_span, "vertbuild", "k", k);
      SMPMINE_FLIGHT_PHASE_NAMED(vertbuild_flight, "vertbuild", k);
      {
        SMPMINE_PERF_PHASE("vertbuild");
        vidx.emplace(db, tracked, arenas);
      }
      pool.run_spmd([&](std::uint32_t tid) {
        SMPMINE_TRACE_SPAN_ARG("vertbuild", "k", k);
        SMPMINE_PERF_PHASE("vertbuild");
        SMPMINE_FLIGHT_PHASE("vertbuild", k);
        vidx->build_partition(db, tid, threads);
        // This thread's share of the bitmap plane (rows × its word range).
        SMPMINE_LEDGER_WORK("vertbuild",
                            vidx->rows() * (vidx->words() / threads + 1));
      });
      it.vertbuild_seconds = vertbuild_timer.seconds();
      it.vert_rows = vidx->rows();
      it.vert_words = vidx->words();
      SMPMINE_TRACE_PHASE_END(vertbuild_span);
      SMPMINE_FLIGHT_PHASE_END(vertbuild_flight);
    }

    // ---- support counting -------------------------------------------------
    if (opts.db_partition == DbPartition::Adaptive) {
      // Re-cut for this iteration's C(l_t, k) workload; contiguous cuts
      // only move boundary transactions between threads.
      ranges = partition_database_for_iteration(db, threads, k);
    }
    WallTimer count_timer;
    SMPMINE_TRACE_PHASE(count_span, "count", "k", k);
    SMPMINE_FLIGHT_PHASE_NAMED(count_flight, "count", k);
    std::vector<double> busy(threads, 0.0);
    pool.run_spmd([&](std::uint32_t tid) {
      SMPMINE_PERF_PHASE("count");
      SMPMINE_FLIGHT_PHASE("count", k);
      obs::flight::maybe_inject_fault("count");
      ThreadCpuTimer busy_timer;
      if (use_vertical) {
        // Vertical parallelism is over candidate slots, not transactions:
        // every slot's AND+popcount already covers the whole database.
        SMPMINE_TRACE_SPAN_ARG("count.vertical", "k", k);
        FlatCountContext& ctx = flat_contexts[tid];
        frozen->prepare_context(ctx);
        const std::uint32_t n = frozen->num_candidates();
        const std::uint32_t per = (n + threads - 1) / threads;
        const std::uint32_t begin = std::min(n, tid * per);
        const std::uint32_t end = std::min(n, begin + per);
        frozen->count_slots_vertical(*vidx, begin, end, ctx);
      } else if (use_frozen) {
        SMPMINE_TRACE_SPAN_ARG("count.flat", "k", k);
        FlatCountContext& ctx = flat_contexts[tid];
        frozen->prepare_context(ctx);
        frozen->count_range(db, ranges.begin(tid), ranges.end(tid), ctx);
      } else {
        SMPMINE_TRACE_SPAN_ARG("count", "k", k);
        CountContext& ctx = contexts[tid];
        tree.prepare_context(opts.subset_check, ctx);
        for (std::uint64_t t = ranges.begin(tid); t < ranges.end(tid); ++t) {
          tree.count_transaction(db.transaction(t), ctx);
        }
        // Pointer kernel has no batch entry point inside hashtree/, so the
        // range loop is the batch: transactions scanned by this thread.
        SMPMINE_LEDGER_WORK("count", ranges.end(tid) - ranges.begin(tid));
      }
      busy[tid] = busy_timer.seconds();
    });
    it.count_seconds = count_timer.seconds();
    SMPMINE_TRACE_PHASE_END(count_span);
    SMPMINE_FLIGHT_PHASE_END(count_flight);
    it.count_busy_sum = std::accumulate(busy.begin(), busy.end(), 0.0);
    it.count_busy_max = *std::max_element(busy.begin(), busy.end());
    if (use_frozen) {
      for (const FlatCountContext& ctx : flat_contexts) {
        it.internal_visits += ctx.internal_visits;
        it.leaf_visits += ctx.leaf_visits;
        it.containment_checks += ctx.containment_checks;
        it.hits += ctx.hits;
        it.count_tiles += ctx.tiles;
      }
    } else {
      for (const CountContext& ctx : contexts) {
        it.internal_visits += ctx.internal_visits;
        it.leaf_visits += ctx.leaf_visits;
        it.containment_checks += ctx.containment_checks;
        it.hits += ctx.hits;
      }
    }

    // ---- LCA reduction + thaw ----------------------------------------------
    {
      SMPMINE_TRACE_SPAN_ARG("reduce", "k", k);
      SMPMINE_FLIGHT_PHASE("reduce", k);
      WallTimer reduce_timer;
      if (opts.counter_mode == CounterMode::PerThread) {
        const std::uint32_t n = tree.num_candidates();
        const std::uint32_t per = (n + threads - 1) / threads;
        pool.run_spmd([&](std::uint32_t tid) {
          SMPMINE_TRACE_SPAN_ARG("reduce", "k", k);
          SMPMINE_PERF_PHASE("reduce");
          SMPMINE_FLIGHT_PHASE("reduce", k);
          const std::uint32_t begin = std::min(n, tid * per);
          const std::uint32_t end = std::min(n, begin + per);
          if (use_frozen) {
            for (const FlatCountContext& ctx : flat_contexts) {
              frozen->reduce_into_shared(ctx, begin, end);
            }
          } else {
            for (const CountContext& ctx : contexts) {
              tree.reduce_into_shared(ctx, begin, end);
            }
          }
        });
      }
      // Publish the frozen supports back into the pointer tree so
      // selection and rule generation read counters as usual.
      if (use_frozen) frozen->thaw_counts(tree);
      it.reduce_seconds = reduce_timer.seconds();
    }

    // ---- selection ----------------------------------------------------------
    WallTimer select_timer;
    SMPMINE_TRACE_PHASE(select_span, "select", "k", k);
    SMPMINE_FLIGHT_PHASE_NAMED(select_flight, "select", k);
    FrequentSet fk;
    {
      SMPMINE_PERF_PHASE("select");
      fk = select_frequent(tree, min_count);
    }
    SMPMINE_TRACE_PHASE_END(select_span);
    SMPMINE_FLIGHT_PHASE_END(select_flight);
    it.select_seconds = select_timer.seconds();
    it.frequent = fk.size();
    it.perf = obs::perf::delta_since(perf_before);
    it.ledger = obs::ledger::Ledger::instance().snapshot().delta_since(
        ledger_before);
    it.efficiency = obs::ledger::decompose(it.ledger, threads);
    const bool done = fk.empty();
    if (!done) result.levels.push_back(std::move(fk));
    result.iterations.push_back(it);
    if (done) break;
  }

  result.run_ledger = obs::ledger::Ledger::instance().snapshot().delta_since(
      ledger_run_before);
  result.run_efficiency = obs::ledger::decompose(result.run_ledger, threads);
  result.total_seconds = total_timer.seconds();
  return result;
}

}  // namespace smpmine
