#include "core/select.hpp"

#include <algorithm>
#include <memory>
#include <numeric>

#include "itemset/itemset.hpp"

namespace smpmine {

FrequentSet FrequentPacker::finish() {
  const std::size_t n = counts_.size();
  if (n == 0) return FrequentSet(k_);

  // Sort an index permutation over the packed records: comparisons read
  // contiguous flat storage instead of chasing per-candidate blocks.
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  const item_t* flat = flat_.data();
  const std::size_t k = k_;
  std::sort(perm.begin(), perm.end(),
            [flat, k](std::uint32_t a, std::uint32_t b) {
              return compare_itemsets({flat + a * k, k}, {flat + b * k, k}) <
                     0;
            });

  std::vector<item_t> sorted_flat(n * k);
  std::vector<count_t> sorted_counts(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t src = perm[i];
    std::copy_n(flat + src * k, k, sorted_flat.begin() + i * k);
    sorted_counts[i] = counts_[src];
  }
  flat_.clear();
  counts_.clear();
  return FrequentSet(k, std::move(sorted_flat), std::move(sorted_counts));
}

FrequentSet select_frequent(const HashTree& tree, count_t min_count) {
  const std::size_t k = tree.k();
  std::size_t survivors = 0;
  tree.for_each_candidate([&](const Candidate& cand) {
    if (*cand.count >= min_count) ++survivors;
  });
  FrequentPacker packer(k);
  packer.reserve(survivors);
  tree.for_each_candidate([&](const Candidate& cand) {
    if (*cand.count >= min_count) packer.add(cand.view(k), *cand.count);
  });
  return packer.finish();
}

FrequentSet select_frequent(
    const std::vector<std::unique_ptr<HashTree>>& trees, count_t min_count) {
  if (trees.empty()) return FrequentSet(0);
  const std::size_t k = trees.front()->k();
  std::size_t survivors = 0;
  for (const auto& tree : trees) {
    tree->for_each_candidate([&](const Candidate& cand) {
      if (*cand.count >= min_count) ++survivors;
    });
  }
  FrequentPacker packer(k);
  packer.reserve(survivors);
  for (const auto& tree : trees) {
    tree->for_each_candidate([&](const Candidate& cand) {
      if (*cand.count >= min_count) packer.add(cand.view(k), *cand.count);
    });
  }
  return packer.finish();
}

}  // namespace smpmine
