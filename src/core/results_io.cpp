#include "core/results_io.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "itemset/itemset.hpp"

namespace smpmine {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what);
}

}  // namespace

void save_frequent_itemsets(const std::vector<FrequentSet>& levels,
                            std::ostream& os) {
  for (const FrequentSet& level : levels) {
    for (std::size_t i = 0; i < level.size(); ++i) {
      const auto items = level.itemset(i);
      for (const item_t item : items) os << item << ' ';
      os << level.count(i) << '\n';
    }
  }
  if (!os) fail("save_frequent_itemsets: write failure");
}

void save_frequent_itemsets(const std::vector<FrequentSet>& levels,
                            const std::string& path) {
  std::ofstream os(path);
  if (!os) fail("save_frequent_itemsets: cannot open " + path);
  save_frequent_itemsets(levels, os);
}

std::vector<FrequentSet> load_frequent_itemsets(std::istream& is) {
  // Gather records per level, then sort and pack.
  std::map<std::size_t, std::vector<std::pair<std::vector<item_t>, count_t>>>
      by_level;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::vector<std::uint64_t> fields;
    std::uint64_t v = 0;
    while (ls >> v) fields.push_back(v);
    if (!ls.eof() || fields.size() < 2) {
      fail("load_frequent_itemsets: malformed line " + std::to_string(lineno));
    }
    const auto count = static_cast<count_t>(fields.back());
    std::vector<item_t> items(fields.begin(), fields.end() - 1);
    if (!std::is_sorted(items.begin(), items.end()) ||
        std::adjacent_find(items.begin(), items.end()) != items.end()) {
      fail("load_frequent_itemsets: itemset not strictly sorted at line " +
           std::to_string(lineno));
    }
    by_level[items.size()].emplace_back(std::move(items), count);
  }

  std::vector<FrequentSet> levels;
  if (by_level.empty()) return levels;
  const std::size_t max_k = by_level.rbegin()->first;
  for (std::size_t k = 1; k <= max_k; ++k) {
    auto it = by_level.find(k);
    if (it == by_level.end()) {
      fail("load_frequent_itemsets: missing level " + std::to_string(k));
    }
    auto& records = it->second;
    std::sort(records.begin(), records.end(),
              [](const auto& a, const auto& b) {
                return compare_itemsets(a.first, b.first) < 0;
              });
    std::vector<item_t> flat;
    std::vector<count_t> counts;
    for (const auto& [items, count] : records) {
      flat.insert(flat.end(), items.begin(), items.end());
      counts.push_back(count);
    }
    levels.emplace_back(k, std::move(flat), std::move(counts));
  }
  return levels;
}

std::vector<FrequentSet> load_frequent_itemsets(const std::string& path) {
  std::ifstream is(path);
  if (!is) fail("load_frequent_itemsets: cannot open " + path);
  return load_frequent_itemsets(is);
}

void save_rules_csv(const std::vector<Rule>& rules, std::ostream& os) {
  os << "antecedent,consequent,support,confidence,lift,support_count\n";
  auto emit_items = [&os](const std::vector<item_t>& items) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i) os << ' ';
      os << items[i];
    }
  };
  for (const Rule& rule : rules) {
    emit_items(rule.antecedent);
    os << ',';
    emit_items(rule.consequent);
    os << ',' << rule.support << ',' << rule.confidence << ',' << rule.lift
       << ',' << rule.support_count << '\n';
  }
  if (!os) fail("save_rules_csv: write failure");
}

void save_rules_csv(const std::vector<Rule>& rules, const std::string& path) {
  std::ofstream os(path);
  if (!os) fail("save_rules_csv: cannot open " + path);
  save_rules_csv(rules, os);
}

}  // namespace smpmine
