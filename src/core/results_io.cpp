#include "core/results_io.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "itemset/itemset.hpp"
#include "obs/json_writer.hpp"
#include "util/cpu_features.hpp"

namespace smpmine {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what);
}

}  // namespace

void save_frequent_itemsets(const std::vector<FrequentSet>& levels,
                            std::ostream& os) {
  for (const FrequentSet& level : levels) {
    for (std::size_t i = 0; i < level.size(); ++i) {
      const auto items = level.itemset(i);
      for (const item_t item : items) os << item << ' ';
      os << level.count(i) << '\n';
    }
  }
  if (!os) fail("save_frequent_itemsets: write failure");
}

void save_frequent_itemsets(const std::vector<FrequentSet>& levels,
                            const std::string& path) {
  std::ofstream os(path);
  if (!os) fail("save_frequent_itemsets: cannot open " + path);
  save_frequent_itemsets(levels, os);
}

std::vector<FrequentSet> load_frequent_itemsets(std::istream& is) {
  // Gather records per level, then sort and pack.
  std::map<std::size_t, std::vector<std::pair<std::vector<item_t>, count_t>>>
      by_level;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::vector<std::uint64_t> fields;
    std::uint64_t v = 0;
    while (ls >> v) fields.push_back(v);
    if (!ls.eof() || fields.size() < 2) {
      fail("load_frequent_itemsets: malformed line " + std::to_string(lineno));
    }
    const auto count = static_cast<count_t>(fields.back());
    std::vector<item_t> items(fields.begin(), fields.end() - 1);
    if (!std::is_sorted(items.begin(), items.end()) ||
        std::adjacent_find(items.begin(), items.end()) != items.end()) {
      fail("load_frequent_itemsets: itemset not strictly sorted at line " +
           std::to_string(lineno));
    }
    by_level[items.size()].emplace_back(std::move(items), count);
  }

  std::vector<FrequentSet> levels;
  if (by_level.empty()) return levels;
  const std::size_t max_k = by_level.rbegin()->first;
  for (std::size_t k = 1; k <= max_k; ++k) {
    auto it = by_level.find(k);
    if (it == by_level.end()) {
      fail("load_frequent_itemsets: missing level " + std::to_string(k));
    }
    auto& records = it->second;
    std::sort(records.begin(), records.end(),
              [](const auto& a, const auto& b) {
                return compare_itemsets(a.first, b.first) < 0;
              });
    std::vector<item_t> flat;
    std::vector<count_t> counts;
    for (const auto& [items, count] : records) {
      flat.insert(flat.end(), items.begin(), items.end());
      counts.push_back(count);
    }
    levels.emplace_back(k, std::move(flat), std::move(counts));
  }
  return levels;
}

std::vector<FrequentSet> load_frequent_itemsets(const std::string& path) {
  std::ifstream is(path);
  if (!is) fail("load_frequent_itemsets: cannot open " + path);
  return load_frequent_itemsets(is);
}

void save_rules_csv(const std::vector<Rule>& rules, std::ostream& os) {
  os << "antecedent,consequent,support,confidence,lift,support_count\n";
  auto emit_items = [&os](const std::vector<item_t>& items) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i) os << ' ';
      os << items[i];
    }
  };
  for (const Rule& rule : rules) {
    emit_items(rule.antecedent);
    os << ',';
    emit_items(rule.consequent);
    os << ',' << rule.support << ',' << rule.confidence << ',' << rule.lift
       << ',' << rule.support_count << '\n';
  }
  if (!os) fail("save_rules_csv: write failure");
}

void save_rules_csv(const std::vector<Rule>& rules, const std::string& path) {
  std::ofstream os(path);
  if (!os) fail("save_rules_csv: cannot open " + path);
  save_rules_csv(rules, os);
}

namespace {

/// Digests go out as fixed-width hex strings: a raw 64-bit integer can
/// exceed the 2^53 range JavaScript-family JSON consumers read exactly.
std::string hex_digest(std::uint64_t digest) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, digest);
  return buf;
}

void write_counter_set(obs::JsonWriter& w,
                       const obs::perf::PerfCounterSet& c) {
  w.begin_object();
  w.kv("cycles", c.cycles);
  w.kv("instructions", c.instructions);
  w.kv("cache_references", c.cache_references);
  w.kv("cache_misses", c.cache_misses);
  w.kv("stalled_cycles_backend", c.stalled_cycles_backend);
  w.kv("task_clock_ns", c.task_clock_ns);
  w.kv("minor_faults", c.minor_faults);
  w.kv("major_faults", c.major_faults);
  w.kv("voluntary_ctx_switches", c.voluntary_ctx_switches);
  w.kv("involuntary_ctx_switches", c.involuntary_ctx_switches);
  w.kv("max_rss_kb", c.max_rss_kb);
  w.kv("samples", c.samples);
  w.kv("ipc", c.ipc());
  w.kv("llc_miss_rate", c.llc_miss_rate());
  w.kv("stall_fraction", c.stall_fraction());
  w.end_object();
}

void write_phase_perf(obs::JsonWriter& w,
                      const obs::perf::PhasePerfSnapshot& snapshot) {
  w.begin_object();
  for (const auto& [phase, counters] : snapshot) {
    w.key(phase);
    write_counter_set(w, counters);
  }
  w.end_object();
}

void write_histogram(obs::JsonWriter& w, const obs::HistogramSummary& h) {
  w.begin_object();
  w.kv("count", h.count);
  w.kv("sum", h.sum);
  w.kv("mean", h.mean());
  w.kv("p50", h.percentile(0.50));
  w.kv("p90", h.percentile(0.90));
  w.kv("p99", h.percentile(0.99));
  w.kv("max", h.max_bound());
  // Per-bucket counts, trimmed after the last populated log2 bucket
  // (bucket i covers [2^(i-1), 2^i)); readers zero-extend to 65.
  std::uint32_t last = 0;
  for (std::uint32_t i = 0; i < obs::kHistogramBuckets; ++i) {
    if (h.buckets[i] != 0) last = i + 1;
  }
  w.key("buckets").begin_array();
  for (std::uint32_t i = 0; i < last; ++i) w.value(h.buckets[i]);
  w.end_array();
  w.end_object();
}

void write_phase_counts(obs::JsonWriter& w,
                        const obs::ledger::PhaseCounts& c) {
  w.begin_object();
  w.kv("wall_ns", c.wall_ns);
  w.kv("cpu_ns", c.cpu_ns);
  w.kv("work_units", c.work_units);
  w.kv("barrier_wait_ns", c.barrier_wait_ns);
  w.kv("lock_wait_ns", c.lock_wait_ns);
  w.kv("entries", c.entries);
  w.end_object();
}

/// Per-phase aggregates (the wall_max vs cpu_sum views kept distinct) plus
/// the full per-thread phase table. Only phases/cells with activity are
/// emitted; readers treat absence as all-zero.
void write_ledger(obs::JsonWriter& w, const obs::ledger::LedgerSnapshot& s) {
  using obs::ledger::PhaseId;
  w.begin_object();
  w.kv("threads", static_cast<std::uint64_t>(s.threads.size()));
  w.key("phases").begin_object();
  for (std::size_t p = 0; p < obs::ledger::kNumPhases; ++p) {
    const auto id = static_cast<PhaseId>(p);
    const obs::ledger::PhaseAgg a = s.agg(id);
    if (a.entries == 0 && a.work_units == 0 && a.barrier_wait_ns == 0 &&
        a.lock_wait_ns == 0) {
      continue;
    }
    w.key(obs::ledger::phase_name(id)).begin_object();
    w.kv("wall_max_ns", a.wall_max_ns);
    w.kv("wall_sum_ns", a.wall_sum_ns);
    w.kv("cpu_sum_ns", a.cpu_sum_ns);
    w.kv("cpu_max_ns", a.cpu_max_ns);
    w.kv("work_units", a.work_units);
    w.kv("barrier_wait_ns", a.barrier_wait_ns);
    w.kv("lock_wait_ns", a.lock_wait_ns);
    w.kv("entries", a.entries);
    w.kv("threads_active", a.threads_active);
    w.end_object();
  }
  w.end_object();
  w.key("per_thread").begin_array();
  for (const obs::ledger::ThreadLedger& t : s.threads) {
    w.begin_object();
    w.kv("thread", t.thread);
    w.key("phases").begin_object();
    for (std::size_t p = 0; p < obs::ledger::kNumPhases; ++p) {
      const obs::ledger::PhaseCounts& c = t.phases[p];
      if (!c.any()) continue;
      w.key(obs::ledger::phase_name(static_cast<PhaseId>(p)));
      write_phase_counts(w, c);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_efficiency(obs::JsonWriter& w,
                      const obs::ledger::EfficiencyDecomposition& e) {
  w.begin_object();
  w.kv("threads", e.threads);
  w.kv("wall_seconds", e.wall_seconds);
  w.kv("budget_seconds", e.budget_seconds);
  w.kv("serial_fraction", e.serial_fraction);
  w.kv("work_fraction", e.work_fraction);
  w.kv("serial_loss", e.serial_loss);
  w.kv("imbalance_loss", e.imbalance_loss);
  w.kv("contention_loss", e.contention_loss);
  w.kv("overhead_loss", e.overhead_loss);
  w.key("phases").begin_object();
  for (const obs::ledger::PhaseEfficiency& pe : e.phases) {
    w.key(obs::ledger::phase_name(pe.phase)).begin_object();
    w.kv("parallel", pe.parallel);
    w.kv("threads_active", pe.threads_active);
    w.kv("wall_seconds", pe.wall_seconds);
    w.kv("cpu_sum_seconds", pe.cpu_sum_seconds);
    w.kv("cpu_max_seconds", pe.cpu_max_seconds);
    w.kv("imbalance", pe.imbalance);
    w.kv("barrier_wait_seconds", pe.barrier_wait_seconds);
    w.kv("lock_wait_seconds", pe.lock_wait_seconds);
    w.kv("work_units", pe.work_units);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

void write_iteration(obs::JsonWriter& w, const IterationStats& it) {
  w.begin_object();
  w.kv("k", it.k);
  w.kv("candidates", it.candidates);
  w.kv("pruned", it.pruned);
  w.kv("frequent", it.frequent);
  w.kv("fanout", it.fanout);
  w.kv("tree_nodes", it.tree_nodes);
  w.kv("tree_bytes", it.tree_bytes);
  w.kv("mean_leaf_occupancy", it.mean_leaf_occupancy);
  w.kv("max_leaf_occupancy", it.max_leaf_occupancy);
  w.kv("leaf_occupancy_stddev", it.leaf_occupancy_stddev);
  w.kv("candgen_seconds", it.candgen_seconds);
  w.kv("remap_seconds", it.remap_seconds);
  w.kv("freeze_seconds", it.freeze_seconds);
  w.kv("vertbuild_seconds", it.vertbuild_seconds);
  w.kv("count_seconds", it.count_seconds);
  w.kv("reduce_seconds", it.reduce_seconds);
  w.kv("select_seconds", it.select_seconds);
  w.kv("count_kernel_used", it.count_kernel_used);
  w.kv("vert_rows", it.vert_rows);
  w.kv("vert_words", it.vert_words);
  w.kv("candgen_busy_sum", it.candgen_busy_sum);
  w.kv("candgen_busy_max", it.candgen_busy_max);
  w.kv("count_busy_sum", it.count_busy_sum);
  w.kv("count_busy_max", it.count_busy_max);
  w.kv("candgen_imbalance", it.candgen_imbalance);
  w.kv("internal_visits", it.internal_visits);
  w.kv("leaf_visits", it.leaf_visits);
  w.kv("containment_checks", it.containment_checks);
  w.kv("hits", it.hits);
  w.kv("count_tiles", it.count_tiles);
  w.kv("count_tile_size", it.count_tile_size);
  w.kv("freeze_busy_sum", it.freeze_busy_sum);
  w.kv("freeze_busy_max", it.freeze_busy_max);
  w.key("perf");
  write_phase_perf(w, it.perf);
  w.key("ledger");
  write_ledger(w, it.ledger);
  w.key("efficiency");
  write_efficiency(w, it.efficiency);
  w.end_object();
}

void write_manifest_body(obs::JsonWriter& w, const RunManifest& m) {
  w.begin_object();
  w.kv("tool", m.tool);
  w.key("dataset").begin_object();
  w.kv("label", m.dataset);
  w.kv("digest", hex_digest(m.dataset_digest));
  w.kv("transactions", m.transactions);
  w.kv("avg_transaction_size", m.avg_transaction_size);
  w.end_object();
  w.key("options").begin_object();
  w.kv("summary", m.options);
  w.kv("algorithm", m.algorithm);
  w.kv("threads", m.threads);
  w.kv("min_support", m.min_support);
  w.end_object();
  w.key("totals").begin_object();
  w.kv("f1_seconds", m.f1_seconds);
  w.kv("total_seconds", m.total_seconds);
  w.kv("frequent", m.total_frequent);
  w.kv("candidates", m.total_candidates);
  w.end_object();
  w.key("perf").begin_object();
  w.kv("backend", m.perf_backend);
  w.key("phases");
  write_phase_perf(w, m.phase_perf);
  w.end_object();
  w.key("ledger");
  write_ledger(w, m.run_ledger);
  w.key("efficiency");
  write_efficiency(w, m.run_efficiency);
  w.key("cpu").begin_object();
  w.kv("avx2", m.cpu_avx2);
  w.kv("neon", m.cpu_neon);
  w.kv("simd_backend", m.simd_backend);
  w.end_object();
  w.key("iterations").begin_array();
  for (const IterationStats& it : m.iterations) write_iteration(w, it);
  w.end_array();
  w.key("metrics").begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, val] : m.metrics.counters) w.kv(name, val);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, val] : m.metrics.gauges) w.kv(name, val);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, hist] : m.metrics.histograms) {
    w.key(name);
    write_histogram(w, hist);
  }
  w.end_object();
  w.end_object();
  w.end_object();
}

}  // namespace

RunManifest make_run_manifest(std::string tool, std::string dataset_label,
                              const Database& db, const MinerOptions& opts,
                              const MiningResult& result) {
  RunManifest m;
  m.tool = std::move(tool);
  m.dataset = std::move(dataset_label);
  m.dataset_digest = db.digest();
  m.transactions = db.size();
  m.avg_transaction_size = db.avg_transaction_size();
  m.options = opts.summary();
  m.algorithm = to_string(opts.algorithm);
  m.threads = opts.threads;
  m.min_support = opts.min_support;
  m.f1_seconds = result.f1_seconds;
  m.total_seconds = result.total_seconds;
  m.total_frequent = result.total_frequent();
  m.total_candidates = result.total_candidates();
  m.iterations = result.iterations;
  m.run_ledger = result.run_ledger;
  m.run_efficiency = result.run_efficiency;
  m.metrics = obs::MetricsRegistry::instance().snapshot();
  m.perf_backend = obs::perf::to_string(obs::perf::active_backend());
  m.phase_perf = obs::perf::PhasePerfRegistry::instance().snapshot();
  m.cpu_avx2 = cpu_features().avx2;
  m.cpu_neon = cpu_features().neon;
  m.simd_backend = to_string(simd_backend());
  return m;
}

void write_run_manifest(const RunManifest& manifest, std::ostream& os) {
  obs::JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "smpmine.run.v3");
  w.key("run");
  write_manifest_body(w, manifest);
  w.end_object();
  os << '\n';
  if (!os) fail("write_run_manifest: write failure");
}

void save_run_manifest(const RunManifest& manifest, const std::string& path) {
  std::ofstream os(path);
  if (!os) fail("save_run_manifest: cannot open " + path);
  write_run_manifest(manifest, os);
}

void save_run_manifests(const std::vector<RunManifest>& runs,
                        const std::string& path) {
  std::ofstream os(path);
  if (!os) fail("save_run_manifests: cannot open " + path);
  obs::JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "smpmine.runs.v3");
  w.key("runs").begin_array();
  for (const RunManifest& m : runs) write_manifest_body(w, m);
  w.end_array();
  w.end_object();
  os << '\n';
  if (!os) fail("save_run_manifests: write failure");
}

}  // namespace smpmine
