// Serialization of mining outputs.
//
// Frequent itemsets round-trip through a plain text format (one itemset per
// line: the items then the support count), so results can be diffed,
// post-processed, or reloaded for rule generation without re-mining.
// Rules export to CSV for spreadsheet/BI consumption.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/rules.hpp"
#include "core/stats.hpp"

namespace smpmine {

/// Writes all levels: lines of "item item ... item <count>". Levels are
/// implied by line arity; within the file itemsets keep mining order.
void save_frequent_itemsets(const std::vector<FrequentSet>& levels,
                            std::ostream& os);
void save_frequent_itemsets(const std::vector<FrequentSet>& levels,
                            const std::string& path);

/// Parses the text format back into levels (sorted per level, as the miner
/// produces them). Throws std::runtime_error on malformed input.
std::vector<FrequentSet> load_frequent_itemsets(std::istream& is);
std::vector<FrequentSet> load_frequent_itemsets(const std::string& path);

/// CSV with header: antecedent;consequent (space-separated ids inside),
/// support, confidence, lift, support_count.
void save_rules_csv(const std::vector<Rule>& rules, std::ostream& os);
void save_rules_csv(const std::vector<Rule>& rules, const std::string& path);

}  // namespace smpmine
