// Serialization of mining outputs.
//
// Frequent itemsets round-trip through a plain text format (one itemset per
// line: the items then the support count), so results can be diffed,
// post-processed, or reloaded for rule generation without re-mining.
// Rules export to CSV for spreadsheet/BI consumption.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "core/rules.hpp"
#include "core/stats.hpp"
#include "data/database.hpp"
#include "obs/metrics.hpp"

namespace smpmine {

/// Writes all levels: lines of "item item ... item <count>". Levels are
/// implied by line arity; within the file itemsets keep mining order.
void save_frequent_itemsets(const std::vector<FrequentSet>& levels,
                            std::ostream& os);
void save_frequent_itemsets(const std::vector<FrequentSet>& levels,
                            const std::string& path);

/// Parses the text format back into levels (sorted per level, as the miner
/// produces them). Throws std::runtime_error on malformed input.
std::vector<FrequentSet> load_frequent_itemsets(std::istream& is);
std::vector<FrequentSet> load_frequent_itemsets(const std::string& path);

/// CSV with header: antecedent;consequent (space-separated ids inside),
/// support, confidence, lift, support_count.
void save_rules_csv(const std::vector<Rule>& rules, std::ostream& os);
void save_rules_csv(const std::vector<Rule>& rules, const std::string& path);

/// Everything needed to reproduce and interpret one mining run: which tool
/// ran, on what data (label + content digest), with which options, what
/// came out (totals + the full per-iteration stats series), and what the
/// observability counters saw. Serialized as JSON (schema
/// "smpmine.run.v3") through obs::JsonWriter.
///
/// Schema history: v2 extends v1 with a top-level "perf" block (backend
/// marker + per-phase hardware/software counter attribution), a "perf"
/// object per iteration, and "histograms" under "metrics". v3 extends v2
/// with the parallel-efficiency ledger: a "ledger" object (per-phase
/// aggregates + full per-thread phase table) and an "efficiency" object
/// (speedup-loss decomposition) per iteration and at run level. Each
/// version is a strict superset — a reader of any older version that
/// ignores unknown keys parses newer documents unchanged.
struct RunManifest {
  std::string tool;     ///< emitting binary, e.g. "smpmine_cli"
  std::string dataset;  ///< input path or generator name
  std::uint64_t dataset_digest = 0;  ///< Database::digest()
  std::uint64_t transactions = 0;
  double avg_transaction_size = 0.0;

  std::string options;  ///< MinerOptions::summary()
  std::string algorithm;
  std::uint32_t threads = 0;
  double min_support = 0.0;

  double f1_seconds = 0.0;
  double total_seconds = 0.0;
  std::uint64_t total_frequent = 0;
  std::uint64_t total_candidates = 0;
  std::vector<IterationStats> iterations;

  /// Counter/gauge/histogram values at manifest-creation time. For a
  /// single-run tool this is the run's totals; bench manifests record
  /// per-entry deltas.
  obs::MetricsSnapshot metrics;

  /// Active perf backend ("off" / "hardware" / "software") and the
  /// run-total per-phase counter attribution (empty when off).
  std::string perf_backend = "off";
  obs::perf::PhasePerfSnapshot phase_perf;

  /// Whole-run parallel-efficiency ledger delta and its loss decomposition
  /// (MiningResult::run_ledger / run_efficiency; empty when the ledger is
  /// disabled). Serialized as the run-level "ledger"/"efficiency" objects.
  obs::ledger::LedgerSnapshot run_ledger;
  obs::ledger::EfficiencyDecomposition run_efficiency;

  /// CPU feature/dispatch record: which SIMD features the host reports and
  /// which leaf-scan backend the run dispatched to (util/cpu_features.hpp),
  /// so result provenance includes the code path taken.
  bool cpu_avx2 = false;
  bool cpu_neon = false;
  std::string simd_backend = "scalar";
};

/// Builds a manifest from a finished run, snapshotting the global metrics
/// registry. `dataset_label` is the input path or generator name.
RunManifest make_run_manifest(std::string tool, std::string dataset_label,
                              const Database& db, const MinerOptions& opts,
                              const MiningResult& result);

/// Writes one manifest as a standalone JSON document.
void write_run_manifest(const RunManifest& manifest, std::ostream& os);
void save_run_manifest(const RunManifest& manifest, const std::string& path);

/// Writes several manifests as {"schema": ..., "runs": [...]} — the bench
/// artifact format (one entry per dataset x configuration).
void save_run_manifests(const std::vector<RunManifest>& runs,
                        const std::string& path);

}  // namespace smpmine
