#include "core/rules.hpp"

#include <algorithm>
#include <sstream>

#include "itemset/itemset.hpp"
#include "parallel/thread_pool.hpp"

namespace smpmine {
namespace {

const count_t* support_of(const MiningResult& result,
                          std::span<const item_t> items) {
  const std::size_t k = items.size();
  if (k == 0 || k > result.levels.size()) return nullptr;
  return result.levels[k - 1].find_count(items);
}

/// X minus Y for sorted itemsets (Y ⊆ X).
std::vector<item_t> difference(std::span<const item_t> x,
                               std::span<const item_t> y) {
  std::vector<item_t> out;
  out.reserve(x.size() - y.size());
  std::set_difference(x.begin(), x.end(), y.begin(), y.end(),
                      std::back_inserter(out));
  return out;
}

/// Apriori-style join over same-length consequents sharing an m-1 prefix.
std::vector<std::vector<item_t>> join_consequents(
    const std::vector<std::vector<item_t>>& hs) {
  std::vector<std::vector<item_t>> next;
  for (std::size_t i = 0; i < hs.size(); ++i) {
    for (std::size_t j = i + 1; j < hs.size(); ++j) {
      const auto& a = hs[i];
      const auto& b = hs[j];
      if (!std::equal(a.begin(), a.end() - 1, b.begin())) break;
      std::vector<item_t> merged(a);
      merged.push_back(b.back());
      next.push_back(std::move(merged));
    }
  }
  return next;
}

}  // namespace

std::string Rule::to_string() const {
  std::ostringstream os;
  os << format_itemset(antecedent) << " => " << format_itemset(consequent)
     << "  [sup=" << support << ", conf=" << confidence << ", lift=" << lift
     << "]";
  return os.str();
}

namespace {

/// ap-genrules expansion for one frequent itemset: 1-item consequents
/// first, survivors grown one item at a time (confidence is anti-monotone
/// in the consequent, so failed consequents prune their supersets).
void expand_itemset(const MiningResult& result, const FrequentSet& fk,
                    std::size_t x, double min_confidence, double d,
                    std::vector<Rule>& rules) {
  const std::size_t k = fk.k();
  const std::span<const item_t> items = fk.itemset(x);
  const count_t sup_x = fk.count(x);

  auto try_consequent = [&](const std::vector<item_t>& y) -> bool {
    const std::vector<item_t> ante = difference(items, y);
    const count_t* sup_ante = support_of(result, ante);
    if (sup_ante == nullptr || *sup_ante == 0) return false;
    const double conf =
        static_cast<double>(sup_x) / static_cast<double>(*sup_ante);
    if (conf < min_confidence) return false;
    const count_t* sup_y = support_of(result, y);
    Rule rule;
    rule.antecedent = ante;
    rule.consequent = y;
    rule.support_count = sup_x;
    rule.support = static_cast<double>(sup_x) / d;
    rule.confidence = conf;
    rule.lift = sup_y != nullptr && *sup_y > 0
                    ? conf * d / static_cast<double>(*sup_y)
                    : 0.0;
    rules.push_back(std::move(rule));
    return true;
  };

  std::vector<std::vector<item_t>> hs;
  for (const item_t item : items) {
    std::vector<item_t> y{item};
    if (try_consequent(y)) hs.push_back(std::move(y));
  }
  while (!hs.empty() && hs.front().size() + 1 < k) {
    std::vector<std::vector<item_t>> next;
    for (auto& y : join_consequents(hs)) {
      if (try_consequent(y)) next.push_back(std::move(y));
    }
    hs = std::move(next);
  }
}

void sort_rules(std::vector<Rule>& rules) {
  std::sort(rules.begin(), rules.end(), [](const Rule& a, const Rule& b) {
    if (a.confidence != b.confidence) return a.confidence > b.confidence;
    if (a.support != b.support) return a.support > b.support;
    const int c = compare_itemsets(a.antecedent, b.antecedent);
    if (c != 0) return c < 0;
    return compare_itemsets(a.consequent, b.consequent) < 0;
  });
}

}  // namespace

std::vector<Rule> generate_rules(const MiningResult& result,
                                 double min_confidence,
                                 std::size_t num_transactions) {
  std::vector<Rule> rules;
  const double d = static_cast<double>(num_transactions);
  for (std::size_t level = 1; level < result.levels.size(); ++level) {
    const FrequentSet& fk = result.levels[level];
    for (std::size_t x = 0; x < fk.size(); ++x) {
      expand_itemset(result, fk, x, min_confidence, d, rules);
    }
  }
  sort_rules(rules);
  return rules;
}

std::vector<Rule> generate_rules_parallel(const MiningResult& result,
                                          double min_confidence,
                                          std::size_t num_transactions,
                                          std::uint32_t threads) {
  // Flatten (level, index) sources so the interleaved split spreads the
  // expensive long itemsets (which cluster in later levels) over threads.
  std::vector<std::pair<std::size_t, std::size_t>> sources;
  for (std::size_t level = 1; level < result.levels.size(); ++level) {
    for (std::size_t x = 0; x < result.levels[level].size(); ++x) {
      sources.emplace_back(level, x);
    }
  }

  ThreadPool pool(threads);
  const double d = static_cast<double>(num_transactions);
  std::vector<std::vector<Rule>> partial(pool.size());
  pool.run_spmd([&](std::uint32_t tid) {
    for (std::size_t i = tid; i < sources.size(); i += pool.size()) {
      const auto [level, x] = sources[i];
      expand_itemset(result, result.levels[level], x, min_confidence, d,
                     partial[tid]);
    }
  });

  std::vector<Rule> rules;
  for (auto& p : partial) {
    rules.insert(rules.end(), std::make_move_iterator(p.begin()),
                 std::make_move_iterator(p.end()));
  }
  sort_rules(rules);
  return rules;
}

}  // namespace smpmine
