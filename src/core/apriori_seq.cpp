// The sequential association algorithm of paper Section 2.
//
// CCPD at P=1 *is* Apriori with the hash-tree optimizations: the partition
// schemes degenerate to the identity, the per-leaf locks are uncontended,
// and the database "partition" is the whole database. This wrapper pins the
// configuration accordingly so callers get the textbook algorithm without
// threading setup. The count-kernel choice (pointer walk vs frozen flat
// tree) is orthogonal to the parallel scheme and passes through unchanged.
#include "core/miner.hpp"
#include "obs/trace.hpp"

namespace smpmine {

MiningResult mine_sequential(const Database& db, MinerOptions options) {
  SMPMINE_TRACE_SPAN("mine.sequential");
  options.threads = 1;
  options.algorithm = Algorithm::CCPD;
  return mine_ccpd(db, options);
}

}  // namespace smpmine
