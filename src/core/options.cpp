#include "core/options.hpp"

#include <sstream>
#include <stdexcept>

namespace smpmine {

const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::CCPD: return "CCPD";
    case Algorithm::PCCD: return "PCCD";
  }
  return "?";
}

void MinerOptions::validate() {
  if (min_support <= 0.0 || min_support > 1.0) {
    throw std::invalid_argument("min_support must be in (0, 1]");
  }
  if (min_confidence < 0.0 || min_confidence > 1.0) {
    throw std::invalid_argument("min_confidence must be in [0, 1]");
  }
  if (threads == 0) threads = 1;
  if (leaf_threshold == 0) leaf_threshold = 1;
  if (min_fanout < 1) min_fanout = 1;
  if (max_fanout < min_fanout) max_fanout = min_fanout;
  if (fixed_fanout < min_fanout) fixed_fanout = min_fanout;
  if (fixed_fanout > max_fanout) fixed_fanout = max_fanout;
  if (max_iterations < 1) max_iterations = 1;
  if (policy_local_counters(placement)) {
    counter_mode = CounterMode::PerThread;
  } else if (counter_mode == CounterMode::PerThread) {
    // Privatized counters without LCA's placement make no sense as a named
    // configuration; keep the combination but it is only reachable
    // explicitly.
    counter_mode = CounterMode::PerThread;
  }
}

std::string MinerOptions::summary() const {
  std::ostringstream os;
  os << to_string(algorithm) << " P=" << threads
     << " supp=" << min_support * 100.0 << "%"
     << " balance=" << to_string(balance)
     << " hash=" << to_string(hash_scheme)
     << " check=" << to_string(subset_check)
     << " place=" << to_string(placement)
     << " counters=" << to_string(counter_mode)
     << " kernel=" << to_string(count_kernel);
  return os.str();
}

}  // namespace smpmine
