// Candidate generation (paper Section 3.1.1): equivalence-class self-join
// of F(k-1) with subset pruning, shared by the sequential and parallel
// miners. Also computes F1 from raw transaction scans.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "data/database.hpp"
#include "hashtree/hash_tree.hpp"
#include "itemset/eqclass.hpp"
#include "itemset/frequent_set.hpp"
#include "parallel/thread_pool.hpp"

namespace smpmine {

struct CandGenCounters {
  std::uint64_t generated = 0;  ///< candidates inserted into the tree
  std::uint64_t pruned = 0;     ///< join pairs rejected by subset pruning

  CandGenCounters& operator+=(const CandGenCounters& other) {
    generated += other.generated;
    pruned += other.pruned;
    return *this;
  }
};

/// Processes one batch of generation units: joins each unit's member with
/// every later member of its class, prunes (all k-1 subsets frequent —
/// only the k-2 non-generator subsets are actually probed), and hands each
/// surviving candidate to `sink`. Thread-safe when called concurrently on
/// disjoint unit batches with a thread-safe sink.
CandGenCounters generate_candidates_emit(
    const FrequentSet& fk_minus_1, std::span<const EqClass> classes,
    std::span<const GenUnit> units,
    const std::function<void(std::span<const item_t>)>& sink);

/// Convenience: survivors are inserted into `tree` (locked insert, so
/// concurrent batches are safe). A non-null `veto` drops candidates it
/// returns true for (counted as pruned) — the MinerOptions::candidate_veto
/// domain-constraint hook.
CandGenCounters generate_candidates(
    const FrequentSet& fk_minus_1, std::span<const EqClass> classes,
    std::span<const GenUnit> units, HashTree& tree,
    const std::function<bool(std::span<const item_t>)>& veto = nullptr);

/// Counts item frequencies over db[range) into `counts` (size = universe).
void count_items_range(const Database& db, std::uint64_t begin,
                       std::uint64_t end, std::span<count_t> counts);

/// F1: frequent single items with their supports, counted with `pool`
/// (per-thread arrays + reduction). `min_count` is the absolute support
/// threshold.
FrequentSet compute_f1(const Database& db, count_t min_count,
                       ThreadPool& pool);

/// Absolute support threshold for a fractional min-support: an itemset is
/// frequent when count >= ceil(min_support * |D|), with a floor of 1.
count_t absolute_support(double min_support, std::size_t num_transactions);

}  // namespace smpmine
