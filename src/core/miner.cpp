#include "core/miner.hpp"

namespace smpmine {

HashPolicy make_hash_policy(HashScheme scheme, std::uint32_t fanout,
                            const FrequentSet& f1, item_t universe) {
  if (scheme == HashScheme::Indirection) {
    return HashPolicy(fanout, f1.flat(), universe);
  }
  return HashPolicy(scheme, fanout);
}

MiningResult mine(const Database& db, const MinerOptions& options) {
  switch (options.algorithm) {
    case Algorithm::PCCD: return mine_pccd(db, options);
    case Algorithm::CCPD: break;
  }
  return mine_ccpd(db, options);
}

}  // namespace smpmine
