// Brute-force reference miner for correctness testing.
//
// Deliberately shares no machinery with the real miners: supports are
// gathered by enumerating every k-subset of every transaction into a plain
// hash map. Exact but exponential in transaction length — use on small
// databases only (the integration tests do).
#pragma once

#include "core/stats.hpp"
#include "data/database.hpp"

namespace smpmine {

/// All frequent itemsets of `db` at fractional `min_support`, as levels
/// F1..Fmax (same shape as MiningResult::levels). `max_len` caps the
/// enumeration (0 = no cap beyond transaction lengths).
std::vector<FrequentSet> brute_force_frequent(const Database& db,
                                              double min_support,
                                              std::size_t max_len = 0);

/// True when two level vectors contain exactly the same itemsets with the
/// same support counts; on mismatch, `diagnostic` (if non-null) receives a
/// description of the first difference.
bool levels_equal(const std::vector<FrequentSet>& a,
                  const std::vector<FrequentSet>& b,
                  std::string* diagnostic = nullptr);

}  // namespace smpmine
