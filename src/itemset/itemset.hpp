// Itemset primitives.
//
// An itemset is a sorted sequence of distinct items. Throughout the library
// itemsets live in flat arrays (k items back-to-back), so the working
// currency is `std::span<const item_t>` rather than an owning type.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace smpmine {

/// Lexicographic three-way compare of two sorted itemsets.
int compare_itemsets(std::span<const item_t> a, std::span<const item_t> b);

/// True when sorted `subset` ⊆ sorted `superset` (two-pointer merge scan).
bool is_subset_sorted(std::span<const item_t> subset,
                      std::span<const item_t> superset);

/// True when the two sorted itemsets share the first `prefix_len` items.
bool shares_prefix(std::span<const item_t> a, std::span<const item_t> b,
                   std::size_t prefix_len);

/// FNV-1a over the item words; the content hash used by the candidate
/// pruning index.
std::size_t hash_itemset(std::span<const item_t> items);

/// "(1, 4, 5)" rendering for diagnostics and examples.
std::string format_itemset(std::span<const item_t> items);

/// All size-k subsets of a sorted itemset, in lexicographic order
/// (reference implementation used by the brute-force miner and the tests;
/// the hash-tree traversal never materializes subsets).
std::vector<std::vector<item_t>> k_subsets(std::span<const item_t> items,
                                           std::size_t k);

}  // namespace smpmine
