#include "itemset/frequent_set.hpp"

#include <cassert>
#include <stdexcept>

namespace smpmine {
namespace {

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

void ItemsetHashIndex::build(const item_t* items, std::size_t count,
                             std::size_t k) {
  items_ = items;
  k_ = k;
  const std::size_t capacity = next_pow2(count * 2 + 1);
  mask_ = capacity - 1;
  slots_.assign(capacity, npos);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::size_t slot = hash_itemset(record(i)) & mask_;
    while (slots_[slot] != npos) {
      // Records are unique (they come from a set), so no equality probe on
      // insert; just walk to the next free slot.
      slot = (slot + 1) & mask_;
    }
    slots_[slot] = i;
  }
}

std::uint32_t ItemsetHashIndex::find(std::span<const item_t> key) const {
  if (slots_.empty() || key.size() != k_) return npos;
  std::size_t slot = hash_itemset(key) & mask_;
  while (slots_[slot] != npos) {
    const std::uint32_t idx = slots_[slot];
    if (compare_itemsets(record(idx), key) == 0) return idx;
    slot = (slot + 1) & mask_;
  }
  return npos;
}

bool ItemsetHashIndex::contains(std::span<const item_t> key) const {
  return find(key) != npos;
}

FrequentSet::FrequentSet(std::size_t k, std::vector<item_t> flat_items,
                         std::vector<count_t> counts)
    : k_(k), flat_(std::move(flat_items)), counts_(std::move(counts)) {
  if (k_ == 0 || flat_.size() != counts_.size() * k_) {
    throw std::invalid_argument("FrequentSet: inconsistent record shape");
  }
#ifndef NDEBUG
  for (std::size_t i = 1; i < counts_.size(); ++i) {
    assert(compare_itemsets(itemset(i - 1), itemset(i)) < 0 &&
           "FrequentSet records must be strictly sorted");
  }
#endif
  index_.build(flat_.data(), counts_.size(), k_);
}

const count_t* FrequentSet::find_count(std::span<const item_t> itemset) const {
  const std::uint32_t idx = index_.find(itemset);
  return idx == ItemsetHashIndex::npos ? nullptr : &counts_[idx];
}

}  // namespace smpmine
