// Equivalence classes over F(k-1) (paper Section 3.1.1).
//
// Members of F(k-1) sharing their first k-2 items form a class; candidates
// for C(k) are generated only by joining members *within* a class, and a
// candidate's non-generator (k-1)-subsets always live in lexicographically
// *later* classes — which yields the "only the first n-(k-2) classes can
// generate" pruning and gives computation balancing its work units.
#pragma once

#include <cstdint>
#include <vector>

#include "itemset/frequent_set.hpp"
#include "parallel/partition.hpp"

namespace smpmine {

/// One equivalence class: the half-open index range [begin, end) of F(k-1)
/// records sharing a k-2 item prefix.
struct EqClass {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;

  std::uint32_t size() const { return end - begin; }
};

/// Partitions F(k-1) into classes by common k-2 prefix. For k == 2 the
/// prefix is empty, giving one class spanning all of F1.
std::vector<EqClass> build_equivalence_classes(const FrequentSet& fk_minus_1);

/// A unit of candidate-generation work: member `member` of class `cls`
/// joined against every later member of the same class. `weight` is the
/// paper's w_i = |class| - i - 1 (number of join pairs produced).
struct GenUnit {
  std::uint32_t cls = 0;
  std::uint32_t member = 0;  ///< index within the class (0-based)
  double weight = 0.0;
};

/// Enumerates generation units, applying the first-n-(k-2)-classes rule:
/// classes with fewer than k-2 classes after them cannot yield a candidate
/// that survives pruning, so their units are dropped (k > 2 only).
std::vector<GenUnit> generation_units(const std::vector<EqClass>& classes,
                                      std::size_t k);

/// Assigns generation units to `threads` bins under the chosen scheme
/// (block / interleaved / bitonic-greedy). Returns per-thread unit lists.
std::vector<std::vector<GenUnit>> balance_generation(
    const std::vector<GenUnit>& units, std::uint32_t threads,
    PartitionScheme scheme);

/// Sum over classes of C(|S_i|, 2) — the candidate-count bound that feeds
/// the adaptive hash-table sizing (Section 3.1.1).
double total_join_pairs(const std::vector<EqClass>& classes);

}  // namespace smpmine
