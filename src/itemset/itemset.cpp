#include "itemset/itemset.hpp"

#include <sstream>

#include "util/attributes.hpp"

namespace smpmine {

int compare_itemsets(std::span<const item_t> a, std::span<const item_t> b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] < b[i]) return -1;
    if (a[i] > b[i]) return 1;
  }
  if (a.size() < b.size()) return -1;
  if (a.size() > b.size()) return 1;
  return 0;
}

SMPMINE_HOT bool is_subset_sorted(std::span<const item_t> subset,
                                  std::span<const item_t> superset) {
  std::size_t j = 0;
  for (const item_t want : subset) {
    while (j < superset.size() && superset[j] < want) ++j;
    if (j == superset.size() || superset[j] != want) return false;
    ++j;
  }
  return true;
}

bool shares_prefix(std::span<const item_t> a, std::span<const item_t> b,
                   std::size_t prefix_len) {
  if (a.size() < prefix_len || b.size() < prefix_len) return false;
  for (std::size_t i = 0; i < prefix_len; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

std::size_t hash_itemset(std::span<const item_t> items) {
  std::size_t h = 1469598103934665603ULL;  // FNV offset basis
  for (const item_t item : items) {
    h ^= item;
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

std::string format_itemset(std::span<const item_t> items) {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) os << ", ";
    os << items[i];
  }
  os << ')';
  return os.str();
}

std::vector<std::vector<item_t>> k_subsets(std::span<const item_t> items,
                                           std::size_t k) {
  std::vector<std::vector<item_t>> result;
  if (k == 0 || k > items.size()) return result;
  std::vector<std::size_t> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  for (;;) {
    std::vector<item_t> subset(k);
    for (std::size_t i = 0; i < k; ++i) subset[i] = items[idx[i]];
    result.push_back(std::move(subset));
    // Advance the combination odometer.
    std::size_t pos = k;
    while (pos > 0) {
      --pos;
      if (idx[pos] != pos + items.size() - k) break;
      if (pos == 0) return result;
    }
    ++idx[pos];
    for (std::size_t i = pos + 1; i < k; ++i) idx[i] = idx[i - 1] + 1;
  }
}

}  // namespace smpmine
