#include "itemset/eqclass.hpp"

#include "util/checked.hpp"

namespace smpmine {

std::vector<EqClass> build_equivalence_classes(const FrequentSet& f) {
  std::vector<EqClass> classes;
  const std::size_t n = f.size();
  if (n == 0) return classes;
  const std::size_t prefix = f.k() >= 1 ? f.k() - 1 : 0;

  std::uint32_t begin = 0;
  for (std::uint32_t i = 1; i <= n; ++i) {
    const bool boundary =
        i == n || !shares_prefix(f.itemset(begin), f.itemset(i), prefix);
    if (boundary) {
      classes.push_back(EqClass{begin, i});
      begin = i;
    }
  }
#if SMPMINE_CHECKED_ENABLED
  // The classes must tile [0, n) contiguously: the join phase iterates each
  // class independently, so a gap loses candidates and an overlap
  // duplicates them.
  std::uint32_t expected_begin = 0;
  for (const EqClass& c : classes) {
    SMPMINE_ASSERT(c.begin == expected_begin && c.end > c.begin,
                   "equivalence classes must tile the frequent set");
    expected_begin = c.end;
  }
  SMPMINE_ASSERT(expected_begin == n,
                 "equivalence classes must cover the whole frequent set");
#endif
  return classes;
}

std::vector<GenUnit> generation_units(const std::vector<EqClass>& classes,
                                      std::size_t k) {
  std::vector<GenUnit> units;
  // Classes within the last k-2 positions cannot produce a candidate whose
  // k-2 pruning subsets (all in strictly later classes) are all frequent.
  const std::size_t skip_tail = k > 2 ? k - 2 : 0;
  const std::size_t usable =
      classes.size() > skip_tail ? classes.size() - skip_tail : 0;
  for (std::uint32_t c = 0; c < usable; ++c) {
    const std::uint32_t n = classes[c].size();
    // The last member of a class joins with nothing; skip zero-weight units.
    for (std::uint32_t m = 0; m + 1 < n; ++m) {
      units.push_back(GenUnit{c, m, static_cast<double>(n - m - 1)});
    }
  }
  return units;
}

std::vector<std::vector<GenUnit>> balance_generation(
    const std::vector<GenUnit>& units, std::uint32_t threads,
    PartitionScheme scheme) {
  std::vector<double> weights;
  weights.reserve(units.size());
  for (const GenUnit& u : units) weights.push_back(u.weight);

  // The multi-class generalization of bitonic partitioning is the greedy
  // max-first assignment (Section 3.1.2); block/interleaved apply directly.
  Assignment a;
  switch (scheme) {
    case PartitionScheme::Block:
      a = partition_block(weights, threads);
      break;
    case PartitionScheme::Interleaved:
      a = partition_interleaved(weights, threads);
      break;
    case PartitionScheme::Bitonic:
      a = partition_greedy(weights, threads);
      break;
  }

  std::vector<std::vector<GenUnit>> result(threads);
  for (std::uint32_t b = 0; b < threads; ++b) {
    result[b].reserve(a.groups[b].size());
    for (const std::uint32_t e : a.groups[b]) result[b].push_back(units[e]);
  }
#if SMPMINE_CHECKED_ENABLED
  // Every generation unit lands on exactly one thread — the partitioner's
  // own coverage check plus this one bracket the copy above.
  std::size_t assigned = 0;
  for (const auto& bucket : result) assigned += bucket.size();
  SMPMINE_ASSERT(assigned == units.size(),
                 "balanced generation must assign every unit exactly once");
#endif
  return result;
}

double total_join_pairs(const std::vector<EqClass>& classes) {
  double total = 0.0;
  for (const EqClass& c : classes) {
    const double n = c.size();
    total += n * (n - 1.0) / 2.0;
  }
  return total;
}

}  // namespace smpmine
