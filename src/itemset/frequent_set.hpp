// F(k): the frequent k-itemsets of one iteration.
//
// Stored as a flat, lexicographically sorted array of k-item records plus a
// linear-probing content index. The sorted order is what equivalence-class
// construction and the join (Section 3.1.1) rely on; the index serves the
// O(1) "is this (k-1)-subset frequent?" probes of candidate pruning.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "itemset/itemset.hpp"
#include "util/types.hpp"

namespace smpmine {

/// Open-addressing set of itemset contents. Keys reference external flat
/// storage; the index never owns item data.
class ItemsetHashIndex {
 public:
  /// `items` is the flat array (count * k items), which must outlive the
  /// index and not move.
  ItemsetHashIndex() = default;
  void build(const item_t* items, std::size_t count, std::size_t k);

  /// True when the k-itemset `key` is present.
  bool contains(std::span<const item_t> key) const;

  /// Index of `key` in the backing array, or npos.
  std::uint32_t find(std::span<const item_t> key) const;

  static constexpr std::uint32_t npos = 0xFFFFFFFFu;

 private:
  std::span<const item_t> record(std::uint32_t idx) const {
    return {items_ + static_cast<std::size_t>(idx) * k_, k_};
  }

  const item_t* items_ = nullptr;
  std::size_t k_ = 0;
  std::vector<std::uint32_t> slots_;  // npos = empty
  std::size_t mask_ = 0;
};

class FrequentSet {
 public:
  /// Builds F(k) from parallel arrays of records and counts. Records must
  /// be presented in lexicographic order (the miner's tree walk guarantees
  /// it); a debug assertion enforces this.
  FrequentSet(std::size_t k, std::vector<item_t> flat_items,
              std::vector<count_t> counts);

  /// Empty F(k).
  explicit FrequentSet(std::size_t k = 0) : k_(k) {}

  std::size_t k() const { return k_; }
  std::size_t size() const { return counts_.size(); }
  bool empty() const { return counts_.empty(); }

  /// The i-th frequent itemset (sorted position).
  std::span<const item_t> itemset(std::size_t i) const {
    return {flat_.data() + i * k_, k_};
  }
  count_t count(std::size_t i) const { return counts_[i]; }

  /// O(1) expected membership probe (used by pruning).
  bool contains(std::span<const item_t> itemset) const {
    return index_.contains(itemset);
  }

  /// Support count of an itemset, or nullopt-like npos sentinel via found.
  const count_t* find_count(std::span<const item_t> itemset) const;

  const std::vector<item_t>& flat() const { return flat_; }

 private:
  std::size_t k_;
  std::vector<item_t> flat_;
  std::vector<count_t> counts_;
  ItemsetHashIndex index_;
};

}  // namespace smpmine
