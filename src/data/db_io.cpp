#include "data/db_io.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace smpmine {
namespace {

constexpr std::uint64_t kMagic = 0x534D504D494E4531ULL;  // "SMPMINE1"

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what);
}

}  // namespace

void save_ascii(const Database& db, std::ostream& os) {
  for (std::size_t t = 0; t < db.size(); ++t) {
    const auto txn = db.transaction(t);
    for (std::size_t i = 0; i < txn.size(); ++i) {
      if (i) os << ' ';
      os << txn[i];
    }
    os << '\n';
  }
  if (!os) fail("save_ascii: write failure");
}

void save_ascii(const Database& db, const std::string& path) {
  std::ofstream os(path);
  if (!os) fail("save_ascii: cannot open " + path);
  save_ascii(db, os);
}

Database load_ascii(std::istream& is) {
  Database db;
  std::string line;
  std::vector<item_t> txn;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    txn.clear();
    std::istringstream ls(line);
    std::int64_t value = 0;
    while (ls >> value) {
      if (value < 0) {
        fail("load_ascii: negative item id on line " + std::to_string(lineno));
      }
      txn.push_back(static_cast<item_t>(value));
    }
    if (!ls.eof()) {
      fail("load_ascii: malformed token on line " + std::to_string(lineno));
    }
    db.add_transaction(txn);
  }
  return db;
}

Database load_ascii(const std::string& path) {
  std::ifstream is(path);
  if (!is) fail("load_ascii: cannot open " + path);
  return load_ascii(is);
}

void save_binary(const Database& db, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) fail("save_binary: cannot open " + path);
  auto put_u64 = [&](std::uint64_t v) {
    os.write(reinterpret_cast<const char*>(&v), sizeof v);
  };
  put_u64(kMagic);
  put_u64(db.size());
  put_u64(db.total_items());
  for (std::size_t t = 0; t < db.size(); ++t) {
    const auto txn = db.transaction(t);
    put_u64(txn.size());
    os.write(reinterpret_cast<const char*>(txn.data()),
             static_cast<std::streamsize>(txn.size_bytes()));
  }
  if (!os) fail("save_binary: write failure");
}

Database load_binary(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) fail("load_binary: cannot open " + path);
  auto get_u64 = [&]() {
    std::uint64_t v = 0;
    is.read(reinterpret_cast<char*>(&v), sizeof v);
    if (!is) fail("load_binary: truncated file " + path);
    return v;
  };
  if (get_u64() != kMagic) fail("load_binary: bad magic in " + path);
  const std::uint64_t transactions = get_u64();
  const std::uint64_t total_items = get_u64();
  Database db;
  db.reserve(transactions, total_items);
  std::vector<item_t> txn;
  for (std::uint64_t t = 0; t < transactions; ++t) {
    const std::uint64_t len = get_u64();
    txn.resize(len);
    is.read(reinterpret_cast<char*>(txn.data()),
            static_cast<std::streamsize>(len * sizeof(item_t)));
    if (!is) fail("load_binary: truncated transaction in " + path);
    db.add_transaction(txn);
  }
  return db;
}

}  // namespace smpmine
