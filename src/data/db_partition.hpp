// Database partitioning for CCPD support counting (paper Section 3.2.2).
//
// The database is split into contiguous per-thread ranges (contiguity keeps
// each thread's scan sequential, as the paper's blocked partitioning does).
// Two cut rules:
//   - Block: equal transaction counts — the paper's implementation.
//   - Balanced: equal *estimated workload*, where a transaction of length l
//     costs mean_k C(l, k) over the first `horizon` iterations — the static
//     heuristic the paper proposes for the skew caused by variable-length
//     transactions.
#pragma once

#include <cstdint>
#include <vector>

#include "data/database.hpp"

namespace smpmine {

enum class DbPartition {
  Block,     ///< equal transaction counts (the paper's implementation)
  Balanced,  ///< equal estimated mean workload over a fixed horizon
  Adaptive,  ///< re-cut each iteration k by the C(l_t, k) workload of that
             ///< iteration — the paper's proposed future-work scheme;
             ///< contiguous cuts move only boundary transactions, which is
             ///< its "respect the locality of the partition" requirement
};

const char* to_string(DbPartition p);

/// Half-open transaction ranges, one per thread; ranges tile [0, db.size()).
struct DbRanges {
  std::vector<std::uint64_t> bounds;  ///< size threads+1, bounds[0]=0

  std::uint64_t begin(std::uint32_t tid) const { return bounds[tid]; }
  std::uint64_t end(std::uint32_t tid) const { return bounds[tid + 1]; }
  std::uint32_t threads() const {
    return static_cast<std::uint32_t>(bounds.size() - 1);
  }
};

/// Estimated counting workload of one transaction of length `len`:
/// mean over k in [1, horizon] of C(len, min(k, len-k)) — the paper's
/// (sum_k C(l_t, k)) / T heuristic, computed in floating point with a cap
/// so long transactions don't overflow.
double transaction_workload(std::size_t len, std::uint32_t horizon);

/// Workload of one transaction in iteration k alone: C(len, k), capped.
double transaction_workload_at(std::size_t len, std::uint32_t k);

DbRanges partition_database(const Database& db, std::uint32_t threads,
                            DbPartition how, std::uint32_t horizon = 6);

/// The Adaptive re-cut for iteration k: contiguous ranges equalizing the
/// C(l_t, k) workload of this iteration.
DbRanges partition_database_for_iteration(const Database& db,
                                          std::uint32_t threads,
                                          std::uint32_t k);

/// Max/mean of per-range estimated workload — lets benches report how much
/// skew each cut rule leaves.
double ranges_imbalance(const Database& db, const DbRanges& ranges,
                        std::uint32_t horizon = 6);

}  // namespace smpmine
