// Database serialization.
//
// Two formats:
//  - ASCII: one transaction per line, space-separated item ids — the
//    interchange format common to association-mining tools (FIMI style).
//  - Binary: a magic-tagged flat dump of the offset and item arrays, for
//    fast reload of the large Table 2 datasets between bench runs.
#pragma once

#include <iosfwd>
#include <string>

#include "data/database.hpp"

namespace smpmine {

/// Writes one transaction per line ("1 4 5\n"). Throws std::runtime_error
/// on I/O failure.
void save_ascii(const Database& db, const std::string& path);
void save_ascii(const Database& db, std::ostream& os);

/// Parses the ASCII format; blank lines become empty transactions,
/// malformed tokens throw std::runtime_error with the line number.
Database load_ascii(const std::string& path);
Database load_ascii(std::istream& is);

/// Binary round trip. The format is versioned; loading a mismatched
/// version or truncated file throws std::runtime_error.
void save_binary(const Database& db, const std::string& path);
Database load_binary(const std::string& path);

}  // namespace smpmine
