// In-memory transaction database.
//
// Transactions are stored back-to-back in one flat item array with an
// offset table — the layout a sequential disk scan would stream, and the
// unit the CCPD database partitioning divides. Items within a transaction
// are kept sorted and de-duplicated because subset enumeration and the
// hash-tree descent both assume lexicographic order.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/checked.hpp"
#include "util/types.hpp"

namespace smpmine {

class Database {
 public:
  Database() { offsets_.push_back(0); }

  /// Appends one transaction. The items are copied, sorted, and
  /// de-duplicated. Empty transactions are stored (they simply never match).
  void add_transaction(std::span<const item_t> items);

  /// Number of transactions (the paper's D).
  std::size_t size() const { return offsets_.size() - 1; }

  bool empty() const { return size() == 0; }

  /// Read-only view of transaction t's sorted items.
  std::span<const item_t> transaction(std::size_t t) const {
    SMPMINE_ASSERT(t < size(), "transaction index out of range");
    return {items_.data() + offsets_[t], items_.data() + offsets_[t + 1]};
  }

  std::size_t transaction_size(std::size_t t) const {
    SMPMINE_ASSERT(t < size(), "transaction index out of range");
    return offsets_[t + 1] - offsets_[t];
  }

  /// Total item occurrences across all transactions.
  std::size_t total_items() const { return items_.size(); }

  double avg_transaction_size() const {
    return empty() ? 0.0
                   : static_cast<double>(total_items()) /
                         static_cast<double>(size());
  }

  /// Largest item id seen plus one (0 when empty) — the live item universe.
  item_t item_universe() const { return max_item_seen_ ? *max_item_seen_ + 1 : 0; }

  /// FNV-1a 64-bit hash over the items and offsets arrays. Stable across
  /// runs for the same logical content, so run manifests can identify the
  /// dataset a result came from without embedding the data.
  std::uint64_t digest() const;

  /// Raw storage footprint in bytes (items + offsets), the paper's
  /// "Total size" column of Table 2.
  std::size_t storage_bytes() const {
    return items_.size() * sizeof(item_t) +
           offsets_.size() * sizeof(std::uint64_t);
  }

  void reserve(std::size_t transactions, std::size_t items);
  void clear();

 private:
  std::vector<item_t> items_;
  std::vector<std::uint64_t> offsets_;
  std::optional<item_t> max_item_seen_;
};

}  // namespace smpmine
