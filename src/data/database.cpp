#include "data/database.hpp"

#include <algorithm>
#include <functional>

namespace smpmine {

void Database::add_transaction(std::span<const item_t> items) {
  const std::size_t start = items_.size();
  items_.insert(items_.end(), items.begin(), items.end());
  auto begin = items_.begin() + static_cast<std::ptrdiff_t>(start);
  std::sort(begin, items_.end());
  items_.erase(std::unique(begin, items_.end()), items_.end());
  // Subset enumeration and the hash-tree descent assume strictly increasing
  // items; this is the invariant every downstream phase leans on.
  SMPMINE_ASSERT(std::adjacent_find(items_.begin() +
                                        static_cast<std::ptrdiff_t>(start),
                                    items_.end(),
                                    std::greater_equal<item_t>()) ==
                     items_.end(),
                 "stored transaction must be sorted and de-duplicated");
  if (items_.size() > start) {
    const item_t largest = items_.back();
    if (!max_item_seen_ || largest > *max_item_seen_) max_item_seen_ = largest;
  }
  offsets_.push_back(items_.size());
}

std::uint64_t Database::digest() const {
  // FNV-1a 64, fed the value sequences (not raw bytes) so the digest is
  // independent of item_t's width and the host's endianness.
  constexpr std::uint64_t kOffset = 0xcbf29ce484222325ull;
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  std::uint64_t h = kOffset;
  auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xffu;
      h *= kPrime;
    }
  };
  for (const item_t item : items_) mix(item);
  for (const std::uint64_t off : offsets_) mix(off);
  return h;
}

void Database::reserve(std::size_t transactions, std::size_t items) {
  offsets_.reserve(transactions + 1);
  items_.reserve(items);
}

void Database::clear() {
  items_.clear();
  offsets_.assign(1, 0);
  max_item_seen_.reset();
}

}  // namespace smpmine
