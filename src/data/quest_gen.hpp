// IBM Quest synthetic basket-data generator.
//
// The paper's benchmark databases (Table 2: T5.I2.D100K ... T10.I6.D3200K)
// come from the Quest `gen` program described in Agrawal & Srikant, "Fast
// Algorithms for Mining Association Rules" (VLDB'94) §2.4.3. The original
// binary is long gone from IBM's site, so this module re-implements the
// published procedure:
//
//   1. Draw L maximal potentially-frequent itemsets. Sizes are Poisson with
//      mean I. Items of the first pattern are uniform over the N items;
//      each later pattern reuses an exponentially-distributed fraction
//      (mean = correlation) of the previous pattern's items and draws the
//      rest uniformly. Each pattern gets an exponential weight (normalized
//      to sum 1) and a corruption level ~ N(0.5, 0.1) clamped to [0, 1].
//   2. Draw D transactions. Sizes are Poisson with mean T. A transaction is
//      filled by repeatedly picking a pattern by weight and *corrupting* it
//      (dropping random items while a uniform draw stays below the pattern's
//      corruption level). An itemset that overflows the remaining budget is
//      added anyway half the time; otherwise it carries over to the next
//      transaction (Quest's "half the time" rule).
//
// Everything is driven by the seeded Rng, so a (params, seed) pair names a
// dataset reproducibly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "data/database.hpp"
#include "util/rng.hpp"

namespace smpmine {

struct QuestParams {
  std::uint32_t num_transactions = 100'000;  ///< D
  double avg_transaction_len = 10.0;         ///< T
  double avg_pattern_len = 4.0;              ///< I
  std::uint32_t num_patterns = 2'000;        ///< L (paper: 2000)
  std::uint32_t num_items = 1'000;           ///< N (paper: 1000)
  double correlation = 0.25;                 ///< Quest default corr level
  double corruption_mean = 0.5;
  double corruption_sd = 0.1;
  std::uint64_t seed = 1996;

  /// Parses the paper's dataset naming convention, e.g. "T10.I6.D400K"
  /// (K/M suffixes supported). Returns nullopt on malformed names.
  static std::optional<QuestParams> from_name(const std::string& name);

  /// Renders the paper-style name, e.g. "T10.I6.D400K".
  std::string name() const;
};

/// Generates the database. Deterministic for fixed params (including seed).
Database generate_quest(const QuestParams& params);

/// Scales only D by `factor` (used by the benches' --scale flag so laptop
/// runs keep the paper's T/I structure on fewer transactions).
QuestParams scaled(QuestParams params, double factor);

}  // namespace smpmine
