#include "data/quest_gen.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

namespace smpmine {
namespace {

/// One maximal potentially-frequent itemset with its sampling weight and
/// corruption level.
struct Pattern {
  std::vector<item_t> items;
  double weight = 0.0;
  double corruption = 0.0;
};

std::vector<Pattern> make_patterns(const QuestParams& p, Rng& rng) {
  std::vector<Pattern> patterns(p.num_patterns);
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    Pattern& pat = patterns[i];
    // Sizes clustered around I with a few long patterns (Poisson, min 1).
    const std::uint32_t len =
        std::max<std::uint32_t>(1, rng.poisson(p.avg_pattern_len));

    std::vector<item_t> items;
    items.reserve(len);
    if (i > 0) {
      // Correlated reuse from the previous pattern: an exponentially
      // distributed fraction (mean = correlation) of this pattern's items.
      const auto& prev = patterns[i - 1].items;
      const double frac = std::min(1.0, rng.exponential(p.correlation));
      auto reuse = static_cast<std::size_t>(frac * static_cast<double>(len));
      reuse = std::min(reuse, prev.size());
      // Sample `reuse` distinct positions from prev (partial shuffle).
      std::vector<item_t> pool(prev);
      for (std::size_t j = 0; j < reuse; ++j) {
        const std::size_t pick =
            j + static_cast<std::size_t>(rng.uniform(pool.size() - j));
        std::swap(pool[j], pool[pick]);
        items.push_back(pool[j]);
      }
    }
    while (items.size() < len) {
      items.push_back(static_cast<item_t>(rng.uniform(p.num_items)));
    }
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    pat.items = std::move(items);

    pat.weight = rng.exponential(1.0);
    weight_sum += pat.weight;
    pat.corruption =
        std::clamp(rng.normal(p.corruption_mean, p.corruption_sd), 0.0, 1.0);
  }
  for (Pattern& pat : patterns) pat.weight /= weight_sum;
  return patterns;
}

/// Cumulative-weight index for O(log L) weighted pattern picks.
class WeightedPicker {
 public:
  explicit WeightedPicker(const std::vector<Pattern>& patterns) {
    cumulative_.reserve(patterns.size());
    double run = 0.0;
    for (const Pattern& pat : patterns) {
      run += pat.weight;
      cumulative_.push_back(run);
    }
    if (!cumulative_.empty()) cumulative_.back() = 1.0;
  }

  std::size_t pick(Rng& rng) const {
    const double u = rng.uniform01();
    const auto it =
        std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
    return static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                                 static_cast<std::ptrdiff_t>(cumulative_.size()) - 1));
  }

 private:
  std::vector<double> cumulative_;
};

/// Drops items from a pattern instance per Quest's corruption rule: while a
/// uniform draw is below the corruption level, remove one random item.
void corrupt(std::vector<item_t>& items, double corruption, Rng& rng) {
  while (!items.empty() && rng.uniform01() < corruption) {
    const std::size_t victim =
        static_cast<std::size_t>(rng.uniform(items.size()));
    items[victim] = items.back();
    items.pop_back();
  }
}

}  // namespace

Database generate_quest(const QuestParams& p) {
  Rng rng(p.seed);
  Rng pattern_rng = rng.split();
  Rng txn_rng = rng.split();

  const std::vector<Pattern> patterns = make_patterns(p, pattern_rng);
  const WeightedPicker picker(patterns);

  Database db;
  db.reserve(p.num_transactions,
             static_cast<std::size_t>(static_cast<double>(p.num_transactions) *
                                      p.avg_transaction_len));

  std::vector<item_t> txn;
  std::vector<item_t> carry;  // itemset deferred to the next transaction
  for (std::uint32_t t = 0; t < p.num_transactions; ++t) {
    const std::uint32_t target =
        std::max<std::uint32_t>(1, txn_rng.poisson(p.avg_transaction_len));
    txn.clear();
    if (!carry.empty()) {
      txn.insert(txn.end(), carry.begin(), carry.end());
      carry.clear();
    }
    while (txn.size() < target) {
      const Pattern& pat = patterns[picker.pick(txn_rng)];
      std::vector<item_t> instance = pat.items;
      corrupt(instance, pat.corruption, txn_rng);
      if (instance.empty()) continue;
      if (txn.size() + instance.size() > target && !txn.empty()) {
        // Overflowing itemset: added anyway half the time, otherwise
        // carried over to the next transaction (Quest rule).
        if (txn_rng.uniform01() < 0.5) {
          txn.insert(txn.end(), instance.begin(), instance.end());
        } else {
          carry = std::move(instance);
        }
        break;
      }
      txn.insert(txn.end(), instance.begin(), instance.end());
    }
    db.add_transaction(txn);
  }
  return db;
}

std::optional<QuestParams> QuestParams::from_name(const std::string& name) {
  // Expected shape: T<int>.I<int>.D<int>[K|M]. Integer fields are parsed
  // (not %lf) so the '.' separators are unambiguous.
  unsigned t_len = 0, i_len = 0, d_val = 0;
  char suffix = '\0';
  const int matched = std::sscanf(name.c_str(), "T%u.I%u.D%u%c", &t_len,
                                  &i_len, &d_val, &suffix);
  if (matched < 3 || t_len == 0 || i_len == 0 || d_val == 0) {
    return std::nullopt;
  }
  double d = d_val;
  if (matched == 4) {
    if (suffix == 'K' || suffix == 'k') {
      d *= 1e3;
    } else if (suffix == 'M' || suffix == 'm') {
      d *= 1e6;
    } else {
      return std::nullopt;
    }
  }
  QuestParams p;
  p.avg_transaction_len = t_len;
  p.avg_pattern_len = i_len;
  p.num_transactions = static_cast<std::uint32_t>(d);
  return p;
}

std::string QuestParams::name() const {
  char buf[64];
  const std::uint32_t d = num_transactions;
  if (d % 1000 == 0) {
    std::snprintf(buf, sizeof buf, "T%g.I%g.D%uK", avg_transaction_len,
                  avg_pattern_len, d / 1000);
  } else {
    std::snprintf(buf, sizeof buf, "T%g.I%g.D%u", avg_transaction_len,
                  avg_pattern_len, d);
  }
  return buf;
}

QuestParams scaled(QuestParams params, double factor) {
  const double d = static_cast<double>(params.num_transactions) * factor;
  params.num_transactions = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(d + 0.5));
  return params;
}

}  // namespace smpmine
