#include "data/db_partition.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

namespace smpmine {

const char* to_string(DbPartition p) {
  switch (p) {
    case DbPartition::Block: return "block";
    case DbPartition::Balanced: return "balanced";
    case DbPartition::Adaptive: return "adaptive";
  }
  return "?";
}

double transaction_workload_at(std::size_t len, std::uint32_t k) {
  if (k == 0 || k > len) return 0.0;
  // C(len, k) computed incrementally, capped to keep the heuristic finite
  // for pathological transaction lengths.
  double binom = 1.0;
  const std::size_t kk = std::min<std::size_t>(k, len - k);
  for (std::size_t j = 0; j < kk; ++j) {
    binom *= static_cast<double>(len - j) / static_cast<double>(j + 1);
    if (binom > 1e15) return 1e15;
  }
  return binom;
}

double transaction_workload(std::size_t len, std::uint32_t horizon) {
  if (len == 0) return 0.0;
  double sum = 0.0;
  for (std::uint32_t k = 1; k <= horizon; ++k) {
    sum += transaction_workload_at(len, k);
  }
  return sum / static_cast<double>(horizon);
}

namespace {

/// Cuts the prefix sum of per-transaction weights into `threads` equal
/// contiguous slices.
DbRanges cut_by_weight(const Database& db, std::uint32_t threads,
                       const std::function<double(std::size_t)>& weight) {
  DbRanges ranges;
  ranges.bounds.assign(threads + 1, 0);
  const std::uint64_t n = db.size();
  double total = 0.0;
  std::vector<double> prefix(n + 1, 0.0);
  for (std::uint64_t t = 0; t < n; ++t) {
    total += weight(db.transaction_size(t));
    prefix[t + 1] = total;
  }
  std::uint64_t cursor = 0;
  for (std::uint32_t t = 1; t < threads; ++t) {
    const double want =
        total * static_cast<double>(t) / static_cast<double>(threads);
    while (cursor < n && prefix[cursor] < want) ++cursor;
    ranges.bounds[t] = cursor;
  }
  ranges.bounds[threads] = n;
  return ranges;
}

}  // namespace

DbRanges partition_database(const Database& db, std::uint32_t threads,
                            DbPartition how, std::uint32_t horizon) {
  const std::uint64_t n = db.size();
  if (how == DbPartition::Block) {
    DbRanges ranges;
    ranges.bounds.assign(threads + 1, 0);
    const std::uint64_t per = (n + threads - 1) / threads;
    for (std::uint32_t t = 0; t <= threads; ++t) {
      ranges.bounds[t] = std::min<std::uint64_t>(n, t * per);
    }
    return ranges;
  }
  // Balanced and (as a static starting point) Adaptive: cut by the
  // horizon-mean workload estimate.
  return cut_by_weight(db, threads, [horizon](std::size_t len) {
    return transaction_workload(len, horizon);
  });
}

DbRanges partition_database_for_iteration(const Database& db,
                                          std::uint32_t threads,
                                          std::uint32_t k) {
  return cut_by_weight(db, threads, [k](std::size_t len) {
    return transaction_workload_at(len, k);
  });
}

double ranges_imbalance(const Database& db, const DbRanges& ranges,
                        std::uint32_t horizon) {
  const std::uint32_t threads = ranges.threads();
  double max_load = 0.0;
  double sum = 0.0;
  for (std::uint32_t t = 0; t < threads; ++t) {
    double load = 0.0;
    for (std::uint64_t i = ranges.begin(t); i < ranges.end(t); ++i) {
      load += transaction_workload(db.transaction_size(i), horizon);
    }
    max_load = std::max(max_load, load);
    sum += load;
  }
  const double mean = sum / static_cast<double>(threads);
  return mean > 0.0 ? max_load / mean : 1.0;
}

}  // namespace smpmine
