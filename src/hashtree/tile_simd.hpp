// SIMD backends for the flat kernel's leaf containment scan.
//
// The hottest loop of the tiled kernel asks, for every (candidate slot,
// transaction) pair of a leaf run, "are all k SoA item columns present in
// the transaction?". The scalar answer is a pointer merge with one
// unpredictable branch per transaction item; the vector answer broadcasts
// each candidate item and compares it against 8 (AVX2) or 4 (NEON)
// transaction lanes at once, walking chunks monotonically (candidate items
// are strictly increasing, transactions sorted and deduplicated, so the
// scan never needs to back up). All backends return identical check/hit
// counts and perform identical counter updates — the differential tests
// and CI's byte-for-byte simd-matrix leg hold them to it.
//
// Each backend is one free function: AVX2 code is expressed with
// __attribute__((target("avx2"))) so this translation unit builds without
// -mavx2 and the caller (FrozenTree::expand_level) only jumps here after
// the runtime cpuid check (util/cpu_features.hpp). NEON is baseline on
// AArch64, gated by compile-time architecture only.
#pragma once

#include <cstdint>

#include "hashtree/frozen_tree.hpp"

namespace smpmine::tilesimd {

/// One leaf run: candidate slots [cb, ce) of a leaf node against frontier
/// entries [i, j) that reached it. Raw pointers only — the caller owns all
/// buffers and the backends run under the R4 no-allocation contract.
struct LeafRun {
  const item_t* items;    ///< SoA base: item q of slot s = items[q*num_cands+s]
  /// lint-ok: R1 — plain-old-data argument pack built on the caller's
  /// stack per run, never shared across threads; the pointees follow the
  /// flat kernel's own discipline (tree immutable after freeze).
  std::size_t num_cands;
  std::uint32_t k;
  std::uint32_t cb, ce;  ///< lint-ok: R1 — argument pack (above)
  const FlatEntry* fr;
  std::uint32_t i, j;  ///< lint-ok: R1 — argument pack (above)
  const item_t* const* tile_ptr;
  /// lint-ok: R1 — same argument-pack story; counter targets are updated
  /// only through bump() under the selected CounterMode's discipline.
  const std::uint32_t* tile_len;
  CounterMode mode;
  count_t* counts;
  SpinLock* locks;  ///< CounterMode::Locked only
  count_t* local;   ///< CounterMode::PerThread only; lint-ok: R1 (above)
};

struct LeafRunResult {
  std::uint64_t checks = 0;
  std::uint64_t hits = 0;
};

/// Reference implementation (the original pointer-merge loop).
LeafRunResult leaf_run_scalar(const LeafRun& run);

#if defined(__x86_64__)
/// AVX2 implementation; call only when cpu_features().avx2.
LeafRunResult leaf_run_avx2(const LeafRun& run);
#endif

#if defined(__aarch64__)
/// NEON implementation (baseline on AArch64).
LeafRunResult leaf_run_neon(const LeafRun& run);
#endif

}  // namespace smpmine::tilesimd
