// Support-counting traversals (paper Sections 2.1.2 and 4.2).
//
// Three subset-check strategies share one recursion:
//  - LeafVisited: the base algorithm. Internal levels re-descend duplicate
//    hash paths (two transaction items with equal buckets); only leaves are
//    stamped per transaction so no candidate is counted twice.
//  - VisitedFlags: the paper's short-circuit — every node carries a VISITED
//    stamp per thread (P x nodes memory) and duplicate arrivals preempt.
//  - FrameLocal: the reduced k*H*P variant — each recursion frame keeps an
//    H-slot seen set (epoch-reset), which dedups exactly the same descents
//    with memory independent of tree size.
#include <algorithm>
#include <atomic>
#include <cassert>

#include "hashtree/hash_tree.hpp"
#include "itemset/itemset.hpp"
#include "util/attributes.hpp"
#include "util/checked.hpp"

namespace smpmine {

CountContext HashTree::make_context(SubsetCheck mode) const {
  CountContext ctx;
  prepare_context(mode, ctx);
  return ctx;
}

void HashTree::prepare_context(SubsetCheck mode, CountContext& ctx) const {
  // assign() zero-fills in place: once a context's vectors reach their
  // high-water capacity, re-preparing it for the next iteration's tree
  // allocates nothing. Zeroed stamp arrays stay consistent with the
  // monotone ctx.stamp / frame_epoch counters.
  ctx.mode = mode;
  if (config_.counter_mode == CounterMode::PerThread) {
    ctx.local_counts.assign(num_candidates(), 0);
  } else {
    ctx.local_counts.clear();
  }
  if (mode == SubsetCheck::LeafVisited || mode == SubsetCheck::VisitedFlags) {
    ctx.node_stamp.assign(num_nodes(), 0);
  } else {
    ctx.node_stamp.clear();
  }
  if (mode == SubsetCheck::FrameLocal) {
    ctx.frame_seen.assign(static_cast<std::size_t>(config_.k + 1) *
                              config_.fanout,
                          0);
    ctx.frame_epoch.assign(config_.k + 1, 0);
  } else {
    ctx.frame_seen.clear();
    ctx.frame_epoch.clear();
  }
  ctx.stamp = 0;
  ctx.cand_group_stamp.clear();
  ctx.group = 0;
  ctx.internal_visits = 0;
  ctx.leaf_visits = 0;
  ctx.containment_checks = 0;
  ctx.hits = 0;
}

void HashTree::enable_group_dedup(CountContext& ctx) const {
  ctx.cand_group_stamp.assign(num_candidates(), 0);
  ctx.group = 0;
}

SMPMINE_HOT void HashTree::process_leaf(const HTNode* node,
                                        std::span<const item_t> txn,
                                        CountContext& ctx) const {
  if (ctx.mode == SubsetCheck::LeafVisited) {
    // Base-algorithm dedup: a leaf is processed once per transaction even
    // though duplicate hash paths reach it repeatedly.
    if (ctx.node_stamp[node->id] == ctx.stamp) return;
    ctx.node_stamp[node->id] = ctx.stamp;
  }
  const ListNode* ln = node->list->head;
  if (ln == nullptr) return;
  ++ctx.leaf_visits;
  const std::size_t k = config_.k;
  const bool group_dedup = !ctx.cand_group_stamp.empty();
  for (; ln != nullptr; ln = ln->next) {
    const Candidate* cand = ln->cand;
    ++ctx.containment_checks;
    if (!is_subset_sorted(cand->view(k), txn)) continue;
    if (group_dedup) {
      // Once-per-group counting (sequence mining's per-customer support).
      if (ctx.cand_group_stamp[cand->id] == ctx.group) continue;
      ctx.cand_group_stamp[cand->id] = ctx.group;
    }
    ++ctx.hits;
    switch (config_.counter_mode) {
      case CounterMode::Atomic:
        // relaxed-ok: support counters are pure totals; nobody reads them
        // until after the counting barrier, which provides the ordering.
        std::atomic_ref<count_t>(*cand->count)
            .fetch_add(1, std::memory_order_relaxed);
        break;
      case CounterMode::Locked: {
        SpinLockGuard guard(*cand->count_lock);
        ++*cand->count;
        break;
      }
      case CounterMode::PerThread:
        ++ctx.local_counts[cand->id];
        break;
    }
  }
}

SMPMINE_HOT void HashTree::count_rec(const HTNode* node,
                                     std::span<const item_t> txn,
                                     std::size_t start,
                                     CountContext& ctx) const {
  // relaxed-ok: counting runs only after the build barrier, so every
  // `children` publish happened-before this phase; the tree is quiescent
  // and the load needs no ordering of its own.
  HTNode* const* kids = node->children.load(std::memory_order_relaxed);
  if (kids == nullptr) {
    process_leaf(node, txn, ctx);
    return;
  }
  ++ctx.internal_visits;
  const std::size_t k = config_.k;
  const std::size_t d = node->depth;
  // Having chosen d items, a further k-d are needed, so the last viable
  // position is txn.size() - (k - d)  (0-based, inclusive).
  const std::size_t last = txn.size() - (k - d);

  switch (ctx.mode) {
    case SubsetCheck::LeafVisited:
      for (std::size_t i = start; i <= last; ++i) {
        count_rec(kids[policy_->bucket(txn[i])], txn, i + 1, ctx);
      }
      break;
    case SubsetCheck::VisitedFlags:
      for (std::size_t i = start; i <= last; ++i) {
        const HTNode* child = kids[policy_->bucket(txn[i])];
        if (ctx.node_stamp[child->id] == ctx.stamp) continue;  // preempt
        ctx.node_stamp[child->id] = ctx.stamp;
        count_rec(child, txn, i + 1, ctx);
      }
      break;
    case SubsetCheck::FrameLocal: {
      const std::uint32_t epoch = ++ctx.frame_epoch[d];
      std::uint32_t* seen = ctx.frame_seen.data() + d * config_.fanout;
      for (std::size_t i = start; i <= last; ++i) {
        const std::uint32_t b = policy_->bucket(txn[i]);
        if (seen[b] == epoch) continue;  // duplicate bucket at this frame
        seen[b] = epoch;
        count_rec(kids[b], txn, i + 1, ctx);
      }
      break;
    }
  }
}

SMPMINE_HOT void HashTree::count_transaction(std::span<const item_t> txn,
                                             CountContext& ctx) const {
  if (txn.size() < config_.k) return;
  // A context made before remap_depth_first (or for another tree) indexes
  // stale node/candidate ids — silent miscounts, not crashes. Checked
  // builds pin the context to the current tree shape.
  SMPMINE_ASSERT(ctx.mode == SubsetCheck::FrameLocal ||
                     ctx.node_stamp.size() == num_nodes(),
                 "CountContext is stale: node stamps sized for another tree");
  SMPMINE_ASSERT(config_.counter_mode != CounterMode::PerThread ||
                     ctx.local_counts.size() == num_candidates(),
                 "CountContext is stale: local counts sized for another tree");
  SMPMINE_ASSERT(std::is_sorted(txn.begin(), txn.end()),
                 "transactions must be sorted for subset enumeration");
  ++ctx.stamp;
  count_rec(root_, txn, 0, ctx);
}

const std::vector<Candidate*>& HashTree::candidate_index() const {
  if (cand_index_.size() != num_candidates()) {
    cand_index_.assign(num_candidates(), nullptr);
    for_each_candidate([&](const Candidate& cand) {
      cand_index_[cand.id] = const_cast<Candidate*>(&cand);
    });
  }
  return cand_index_;
}

void HashTree::reduce_into_shared(const CountContext& ctx,
                                  std::uint32_t begin_id,
                                  std::uint32_t end_id) const {
  assert(config_.counter_mode == CounterMode::PerThread);
  SMPMINE_ASSERT(end_id <= num_candidates() &&
                     ctx.local_counts.size() >= end_id,
                 "reduction range exceeds the candidate id space");
  // Reducers split the id space, so each shared counter has one writer and
  // plain additions suffice — this is LCA's synchronization-free property.
  const std::vector<Candidate*>& index = candidate_index();
  for (std::uint32_t id = begin_id; id < end_id; ++id) {
    *index[id]->count += ctx.local_counts[id];
  }
}

}  // namespace smpmine
