#include "hashtree/hash_policy.hpp"

#include <cmath>
#include <stdexcept>

#include "parallel/partition.hpp"

namespace smpmine {

const char* to_string(HashScheme s) {
  switch (s) {
    case HashScheme::Interleaved: return "interleaved";
    case HashScheme::Bitonic: return "bitonic";
    case HashScheme::Indirection: return "indirection";
  }
  return "?";
}

HashPolicy::HashPolicy(HashScheme scheme, std::uint32_t fanout)
    : scheme_(scheme), fanout_(fanout) {
  if (fanout_ < 1) throw std::invalid_argument("HashPolicy: fanout must be >= 1");
  if (scheme_ == HashScheme::Indirection) {
    throw std::invalid_argument(
        "HashPolicy: Indirection requires the F1 constructor");
  }
}

HashPolicy::HashPolicy(std::uint32_t fanout,
                       std::span<const item_t> frequent_items, item_t universe)
    : scheme_(HashScheme::Indirection), fanout_(fanout) {
  if (fanout_ < 1) throw std::invalid_argument("HashPolicy: fanout must be >= 1");
  // Bitonic-partition the F1 labels 0..n-1 with P := H; each partition
  // group becomes one hash bucket (Section 4.1's equivalence classes).
  const Assignment a =
      partition_bitonic(join_workloads(frequent_items.size()), fanout_);
  const std::vector<std::uint32_t> label_bucket =
      a.element_to_bin(frequent_items.size());

  table_.assign(universe, 0);
  for (item_t raw = 0; raw < universe; ++raw) table_[raw] = raw % fanout_;
  for (std::size_t label = 0; label < frequent_items.size(); ++label) {
    const item_t raw = frequent_items[label];
    if (raw < universe) table_[raw] = label_bucket[label];
  }
}

std::uint32_t adaptive_fanout(double total_join_pairs, std::uint32_t k,
                              std::uint32_t leaf_threshold,
                              std::uint32_t min_fanout,
                              std::uint32_t max_fanout) {
  if (total_join_pairs <= 0.0 || k == 0) return min_fanout;
  const double h = std::pow(
      total_join_pairs / static_cast<double>(leaf_threshold),
      1.0 / static_cast<double>(k));
  auto fanout = static_cast<std::uint32_t>(std::ceil(h));
  if (fanout < min_fanout) fanout = min_fanout;
  if (fanout > max_fanout) fanout = max_fanout;
  return fanout;
}

}  // namespace smpmine
