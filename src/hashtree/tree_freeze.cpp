// Freeze pass: pointer hash tree -> FrozenTree flat kernel structure.
//
// Runs on the master thread after the build (and remap) barrier, when the
// tree is quiescent — the same phase discipline as remap_depth_first. One
// BFS walk renumbers nodes level by level, which yields both CSR child
// contiguity (an internal node's children get `fanout` consecutive ids)
// and contiguous per-depth id ranges for the level-synchronous kernel.
// Being a per-iteration master phase, the freeze may allocate freely; the
// cost is measured (IterationStats::freeze_seconds) and charged against
// the flat kernel in every benchmark comparison.
#include <new>
#include <stdexcept>

#include "hashtree/frozen_tree.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/checked.hpp"

namespace smpmine {

FrozenTree::FrozenTree(const HashTree& tree, PlacementArenas& arenas)
    : policy_(tree.policy_),
      k_(tree.k()),
      fanout_(tree.fanout()),
      num_nodes_(tree.num_nodes()),
      num_cands_(tree.num_candidates()),
      mode_(tree.counter_mode()),
      simd_(simd_backend()) {
  SMPMINE_TRACE_SPAN_ARG("count.freeze", "nodes", num_nodes_);
  if (k_ > kMaxK) {
    throw std::invalid_argument("FrozenTree: k exceeds kMaxK");
  }
  SMPMINE_PHASE_EPOCH_DECLARE(structure_epoch_, "FrozenTree::structure",
                              "freeze");
  SMPMINE_PHASE_EPOCH_DECLARE(counter_epoch_, "FrozenTree::counts_",
                              "freeze", "count", "reduce");
  SMPMINE_PHASE_EPOCH_WRITE(structure_epoch_);

  Region& structure = arenas.freeze_target();
  first_child_ = structure.alloc_array<std::uint32_t>(num_nodes_);
  cand_begin_ = structure.alloc_array<std::uint32_t>(num_nodes_ + 1);
  items_ = structure.alloc_array<item_t>(static_cast<std::size_t>(k_) *
                                         num_cands_);
  orig_id_ = structure.alloc_array<std::uint32_t>(num_cands_);
  counts_ = arenas.counters().alloc_array<count_t>(num_cands_);
  SMPMINE_PHASE_EPOCH_WRITE(counter_epoch_);
  for (std::uint32_t s = 0; s < num_cands_; ++s) counts_[s] = 0;
  if (mode_ == CounterMode::Locked) {
    locks_ = arenas.counters().alloc_array<SpinLock>(num_cands_);
    for (std::uint32_t s = 0; s < num_cands_; ++s) {
      new (&locks_[s]) SpinLock();
      SMPMINE_LOCK_NAME(&locks_[s], "FrozenTree::locks_");
    }
  }

  // BFS over the pointer tree; queue index == new node id. The queue is
  // FIFO and children are appended fanout-at-a-time, so ids are contiguous
  // per level and per child array.
  std::vector<const HTNode*> order;
  order.reserve(num_nodes_);
  order.push_back(tree.root_);
  std::uint32_t slot = 0;
  for (std::uint32_t id = 0; id < order.size(); ++id) {
    const HTNode* node = order[id];
    // The tree is quiescent; the build's release-publishes happened-before
    // this phase (same reasoning as the counting traversal's load).
    HTNode* const* kids = node->children.load(std::memory_order_acquire);
    cand_begin_[id] = slot;
    if (kids != nullptr) {
      first_child_[id] = static_cast<std::uint32_t>(order.size());
      for (std::uint32_t b = 0; b < fanout_; ++b) order.push_back(kids[b]);
    } else {
      first_child_[id] = kNoChild;
      // Flatten the leaf's list chain into packed slots: column-major item
      // store plus the slot -> original-id map the thaw uses.
      for (const ListNode* ln = node->list->head; ln != nullptr;
           ln = ln->next) {
        const Candidate* cand = ln->cand;
        for (std::uint32_t j = 0; j < k_; ++j) {
          items_[static_cast<std::size_t>(j) * num_cands_ + slot] =
              cand->items()[j];
        }
        orig_id_[slot] = cand->id;
        ++slot;
      }
    }
  }
  cand_begin_[num_nodes_] = slot;
  SMPMINE_ASSERT(order.size() == num_nodes_,
                 "freeze BFS must reach every node exactly once");
  SMPMINE_ASSERT(slot == num_cands_,
                 "freeze must pack every candidate exactly once");

  // BFS depths are nondecreasing along `order`, so level boundaries fall
  // out of one scan over the (already-stored) pointer-node depths.
  level_begin_.clear();
  level_begin_.push_back(0);
  for (std::uint32_t id = 1; id < num_nodes_; ++id) {
    if (order[id]->depth != order[id - 1]->depth) level_begin_.push_back(id);
  }
  level_begin_.push_back(num_nodes_);

  max_level_width_ = 0;
  for (std::size_t d = 0; d + 1 < level_begin_.size(); ++d) {
    max_level_width_ =
        std::max(max_level_width_, level_begin_[d + 1] - level_begin_[d]);
  }
  obs::metric::flatkernel_freezes().inc();
}

void FrozenTree::thaw_counts(const HashTree& tree) const {
  const std::vector<Candidate*>& index = tree.candidate_index();
  // Candidate counters are untouched (zero) while the flat kernel counts,
  // so the addition publishes exactly the frozen supports.
  for (std::uint32_t s = 0; s < num_cands_; ++s) {
    *index[orig_id_[s]]->count += counts_[s];
  }
}

void FrozenTree::reduce_into_shared(const FlatCountContext& ctx,
                                    std::uint32_t begin_slot,
                                    std::uint32_t end_slot) const {
  SMPMINE_ASSERT(end_slot <= num_cands_ &&
                     ctx.local_counts.size() >= end_slot,
                 "reduction range exceeds the frozen slot space");
  SMPMINE_PHASE_EPOCH_WRITE(counter_epoch_);
  // Reducers split the slot space; each shared counter has one writer and
  // plain additions suffice (LCA's synchronization-free reduction).
  for (std::uint32_t s = begin_slot; s < end_slot; ++s) {
    counts_[s] += ctx.local_counts[s];
  }
}

}  // namespace smpmine
