// Leaf-scan backends: scalar reference, AVX2 and NEON vector paths.
//
// See tile_simd.hpp for the contract. The containment test exploits two
// database invariants: transactions are sorted and deduplicated, and a
// candidate's items are strictly increasing — so "all k items present" can
// be answered by a monotone forward scan that never revisits a chunk, and
// presence-by-equality equals the scalar pointer-merge's subset semantics.
#include "hashtree/tile_simd.hpp"

#include <atomic>

#include "util/attributes.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace smpmine::tilesimd {

namespace {

/// Counter update shared by every backend — identical discipline to the
/// pointer kernel's Candidate::count updates.
inline void bump(const LeafRun& run, std::uint32_t s) {
  switch (run.mode) {
    case CounterMode::Atomic:
      // relaxed-ok: support counters are pure totals; nobody reads them
      // until after the counting barrier, which provides the ordering.
      std::atomic_ref<count_t>(run.counts[s])
          .fetch_add(1, std::memory_order_relaxed);
      break;
    case CounterMode::Locked: {
      SpinLockGuard guard(run.locks[s]);
      ++run.counts[s];
      break;
    }
    case CounterMode::PerThread:
      ++run.local[s];
      break;
  }
}

#if defined(__x86_64__)

/// All k candidate items present in txn[0..n)? 8 lanes per step; the scan
/// position only moves forward because both sequences are ascending.
__attribute__((target("avx2"))) inline bool contains_avx2(
    const item_t* cand, std::uint32_t k, const item_t* txn,
    std::uint32_t n) {
  std::uint32_t pos = 0;
  for (std::uint32_t q = 0; q < k; ++q) {
    const item_t want = cand[q];
    const __m256i wv = _mm256_set1_epi32(static_cast<int>(want));
    bool found = false;
    while (pos < n) {
      const std::uint32_t rem = n - pos;
      unsigned eq;
      item_t last;
      if (rem >= 8) {
        const __m256i chunk = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(txn + pos));
        eq = static_cast<unsigned>(_mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpeq_epi32(chunk, wv))));
        last = txn[pos + 7];
      } else {
        // Tail chunk: masked load (no out-of-bounds reads), and the
        // equality mask is clipped to the valid lanes — a masked-out lane
        // reads as 0, which must not match a candidate item id 0.
        alignas(32) static constexpr int kLane[8] = {0, 1, 2, 3, 4, 5, 6, 7};
        const __m256i lane =
            _mm256_load_si256(reinterpret_cast<const __m256i*>(kLane));
        const __m256i valid =
            _mm256_cmpgt_epi32(_mm256_set1_epi32(static_cast<int>(rem)),
                               lane);
        const __m256i chunk = _mm256_maskload_epi32(
            reinterpret_cast<const int*>(txn + pos), valid);
        eq = static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(
                 _mm256_cmpeq_epi32(chunk, wv)))) &
             ((1u << rem) - 1u);
        last = txn[n - 1];
      }
      if (eq != 0) {
        found = true;  // stay on this chunk: the next item may share it
        break;
      }
      if (last < want) {
        pos += 8;  // whole chunk below the target, advance
        continue;
      }
      return false;  // chunk straddles want's rank but want is absent
    }
    if (!found) return false;  // ran off the transaction's end
  }
  return true;
}

#endif  // __x86_64__

#if defined(__aarch64__)

/// NEON variant: 4 lanes per step, scalar tail under 4 items.
inline bool contains_neon(const item_t* cand, std::uint32_t k,
                          const item_t* txn, std::uint32_t n) {
  std::uint32_t pos = 0;
  for (std::uint32_t q = 0; q < k; ++q) {
    const item_t want = cand[q];
    const uint32x4_t wv = vdupq_n_u32(want);
    bool found = false;
    while (pos < n) {
      const std::uint32_t rem = n - pos;
      if (rem >= 4) {
        const uint32x4_t chunk = vld1q_u32(txn + pos);
        if (vmaxvq_u32(vceqq_u32(chunk, wv)) != 0) {
          found = true;
          break;
        }
        if (txn[pos + 3] < want) {
          pos += 4;
          continue;
        }
        return false;
      }
      // Scalar tail: ascending scan, stop at the first item > want.
      for (std::uint32_t u = pos; u < n; ++u) {
        if (txn[u] == want) {
          found = true;
          break;
        }
        if (txn[u] > want) break;
      }
      if (!found) return false;
      break;
    }
    if (!found) return false;
  }
  return true;
}

#endif  // __aarch64__

}  // namespace

SMPMINE_HOT LeafRunResult leaf_run_scalar(const LeafRun& run) {
  LeafRunResult out;
  for (std::uint32_t s = run.cb; s < run.ce; ++s) {
    item_t cand[FrozenTree::kMaxK];
    for (std::uint32_t q = 0; q < run.k; ++q) {
      cand[q] = run.items[static_cast<std::size_t>(q) * run.num_cands + s];
    }
    for (std::uint32_t e = run.i; e < run.j; ++e) {
      ++out.checks;
      const std::uint32_t t = run.fr[e].txn;
      const item_t* p = run.tile_ptr[t];
      const item_t* tend = p + run.tile_len[t];
      bool contained = true;
      for (std::uint32_t q = 0; q < run.k; ++q) {
        const item_t want = cand[q];
        while (p != tend && *p < want) ++p;
        if (p == tend || *p != want) {
          contained = false;
          break;
        }
        ++p;
      }
      if (!contained) continue;
      ++out.hits;
      bump(run, s);
    }
  }
  return out;
}

#if defined(__x86_64__)

__attribute__((target("avx2"))) SMPMINE_HOT LeafRunResult
leaf_run_avx2(const LeafRun& run) {
  LeafRunResult out;
  for (std::uint32_t s = run.cb; s < run.ce; ++s) {
    item_t cand[FrozenTree::kMaxK];
    for (std::uint32_t q = 0; q < run.k; ++q) {
      cand[q] = run.items[static_cast<std::size_t>(q) * run.num_cands + s];
    }
    for (std::uint32_t e = run.i; e < run.j; ++e) {
      ++out.checks;
      const std::uint32_t t = run.fr[e].txn;
      if (!contains_avx2(cand, run.k, run.tile_ptr[t], run.tile_len[t])) {
        continue;
      }
      ++out.hits;
      bump(run, s);
    }
  }
  return out;
}

#endif  // __x86_64__

#if defined(__aarch64__)

SMPMINE_HOT LeafRunResult leaf_run_neon(const LeafRun& run) {
  LeafRunResult out;
  for (std::uint32_t s = run.cb; s < run.ce; ++s) {
    item_t cand[FrozenTree::kMaxK];
    for (std::uint32_t q = 0; q < run.k; ++q) {
      cand[q] = run.items[static_cast<std::size_t>(q) * run.num_cands + s];
    }
    for (std::uint32_t e = run.i; e < run.j; ++e) {
      ++out.checks;
      const std::uint32_t t = run.fr[e].txn;
      if (!contains_neon(cand, run.k, run.tile_ptr[t], run.tile_len[t])) {
        continue;
      }
      ++out.hits;
      bump(run, s);
    }
  }
  return out;
}

#endif  // __aarch64__

}  // namespace smpmine::tilesimd
