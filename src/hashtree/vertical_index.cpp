#include "hashtree/vertical_index.hpp"

#include <algorithm>

#include "hashtree/count_kernel.hpp"
#include "obs/metrics.hpp"
#include "util/checked.hpp"

namespace smpmine {

const char* to_string(CountKernel k) {
  switch (k) {
    case CountKernel::Pointer: return "pointer";
    case CountKernel::Flat: return "flat";
    case CountKernel::Vertical: return "vertical";
    case CountKernel::Auto: return "auto";
  }
  return "?";
}

namespace {

/// Horizontal-kernel cost of one transaction item in "bitmap word"
/// currency. Calibrated on T10.I4.D100K (see DESIGN.md, "Counting kernel
/// v2"): the flat kernel spends roughly this many word-op equivalents per
/// (transaction item, depth level), dominated by subset enumeration and
/// leaf merge scans.
constexpr double kFlatWordsPerItem = 24.0;

}  // namespace

bool vertical_wins(const KernelCostInputs& in) {
  if (in.transactions == 0 || in.candidates == 0) return false;
  const double words =
      static_cast<double>((in.transactions + 63) / 64);
  // Vertical traffic: one k-row AND+popcount stream per candidate, plus
  // the build's zero-and-set double pass over every row.
  const double vertical =
      (static_cast<double>(in.candidates) * in.k +
       2.0 * static_cast<double>(in.distinct_items)) *
      words;
  // Horizontal traffic: every transaction enumerated against the tree,
  // cost per item growing with depth (candidate count x depth vs.
  // transaction count, in the issue's phrasing).
  const double flat = static_cast<double>(in.transactions) *
                      in.avg_transaction_len * in.k * kFlatWordsPerItem;
  return vertical < flat;
}

CountKernel resolve_count_kernel(CountKernel requested,
                                 const KernelCostInputs& in) {
  // Both frozen-layout kernels gather a candidate's items into a fixed
  // kMaxK buffer; past that bound the iteration runs the pointer kernel.
  const bool frozen_ok = in.k <= in.max_flat_k;
  switch (requested) {
    case CountKernel::Pointer:
      return CountKernel::Pointer;
    case CountKernel::Flat:
      return frozen_ok ? CountKernel::Flat : CountKernel::Pointer;
    case CountKernel::Vertical:
      return frozen_ok ? CountKernel::Vertical : CountKernel::Pointer;
    case CountKernel::Auto:
      if (!frozen_ok) return CountKernel::Pointer;
      return vertical_wins(in) ? CountKernel::Vertical : CountKernel::Flat;
  }
  return CountKernel::Pointer;
}

std::vector<item_t> distinct_items(std::span<const item_t> flat) {
  std::vector<item_t> items(flat.begin(), flat.end());
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  return items;
}

VerticalIndex::VerticalIndex(const Database& db,
                             std::span<const item_t> tracked,
                             PlacementArenas& arenas)
    : words_((db.size() + 63) / 64),
      num_rows_(static_cast<std::uint32_t>(tracked.size())),
      num_txns_(db.size()) {
  SMPMINE_PHASE_EPOCH_DECLARE(epoch_, "VerticalIndex::bits_", "vertbuild");
  SMPMINE_ASSERT(std::is_sorted(tracked.begin(), tracked.end()),
                 "VerticalIndex: tracked items must be sorted unique");
  if (num_rows_ > 0) {
    item_to_row_.assign(static_cast<std::size_t>(tracked.back()) + 1, kNoRow);
    for (std::uint32_t r = 0; r < num_rows_; ++r) {
      item_to_row_[tracked[r]] = r;
    }
    bits_ = arenas.vertical_target().alloc_array<std::uint64_t>(
        static_cast<std::uint64_t>(num_rows_) * words_);
  }
  obs::metric::vertkernel_builds().inc();
  obs::metric::vertkernel_rows().inc(num_rows_);
  obs::metric::vertkernel_row_words().inc(
      static_cast<std::uint64_t>(num_rows_) * words_);
}

void VerticalIndex::build_partition(const Database& db, std::uint32_t part,
                                    std::uint32_t parts) {
  SMPMINE_ASSERT(parts > 0 && part < parts, "bad build partition");
  if (num_rows_ == 0 || words_ == 0) return;
  SMPMINE_PHASE_EPOCH_WRITE(epoch_);
  // Word-aligned cut: partition p owns words [wb, we), hence transactions
  // [wb*64, min(we*64, |D|)). Disjoint words => no write sharing.
  const std::uint64_t per = (words_ + parts - 1) / parts;
  const std::uint64_t wb = std::min(words_, part * per);
  const std::uint64_t we = std::min(words_, wb + per);
  if (wb == we) return;
  for (std::uint32_t r = 0; r < num_rows_; ++r) {
    std::uint64_t* row = bits_ + static_cast<std::uint64_t>(r) * words_;
    std::fill(row + wb, row + we, 0);
  }
  const std::uint64_t tb = wb * 64;
  const std::uint64_t te = std::min<std::uint64_t>(num_txns_, we * 64);
  const std::uint32_t* item_to_row = item_to_row_.data();
  const std::size_t universe = item_to_row_.size();
  for (std::uint64_t t = tb; t < te; ++t) {
    const std::uint64_t word = t / 64;
    const std::uint64_t bit = std::uint64_t{1} << (t % 64);
    for (const item_t item : db.transaction(t)) {
      const std::uint32_t r = item < universe ? item_to_row[item] : kNoRow;
      if (r == kNoRow) continue;
      bits_[static_cast<std::uint64_t>(r) * words_ + word] |= bit;
    }
  }
}

}  // namespace smpmine
