// Vertical tid-bitmap index: the Eclat-style counting layout.
//
// The horizontal kernels visit every transaction and ask "which candidates
// does it contain?". In late iterations that inverts badly: a handful of
// deep candidates force a full scan of D per iteration. The vertical index
// flips the loop — one dense bitmap of |D| bits per *item*, built once per
// iteration, and a candidate's support is then
//
//     popcount(row(i1) & row(i2) & ... & row(ik))
//
// streamed over 512-bit blocks (8 x u64), with no tree traversal at all.
// Work is proportional to (candidates x k x |D|/64) instead of
// (|D| x per-transaction traversal), which is exactly the regime where few
// deep candidates remain (see count_kernel.hpp's cost model).
//
// Only the items that can appear in this iteration's candidates get rows:
// every candidate of C(k) joins two members of F(k-1), so its items are a
// subset of F(k-1)'s distinct items.
//
// Memory comes from PlacementArenas::vertical_target() — bump-allocated
// like the frozen CSR arrays, recycled with the iteration's reset, and
// never touched by the hot counting loop (R4: counting allocates nothing).
//
// The build is word-partitioned for parallelism: partition p owns a
// contiguous range of bitmap *words* (not transactions), so two builders
// never write the same u64 even when their transaction ranges would share
// a boundary word. Each builder zeroes its word range in every row, then
// sets bits from its transactions — no atomics, no locks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "alloc/placement.hpp"
#include "data/database.hpp"
#include "util/phase_epoch.hpp"
#include "util/types.hpp"

namespace smpmine {

class VerticalIndex {
 public:
  static constexpr std::uint32_t kNoRow = 0xFFFFFFFFu;
  /// AND+popcount block width in words (8 x 64 = 512-bit blocks).
  static constexpr std::uint32_t kBlockWords = 8;

  /// Allocates rows for `tracked` (strictly sorted, unique item ids —
  /// typically the distinct items of F(k-1)) over `db.size()` transaction
  /// bits. Bitmap storage is bump-allocated from arenas.vertical_target();
  /// the bits are uninitialized until build_partition covers every word
  /// partition. Master-thread, inside the vertbuild phase.
  VerticalIndex(const Database& db, std::span<const item_t> tracked,
                PlacementArenas& arenas);

  VerticalIndex(const VerticalIndex&) = delete;
  VerticalIndex& operator=(const VerticalIndex&) = delete;

  /// Fills word partition `part` of `parts`: zeroes that word range in
  /// every row, then sets one bit per (tracked item, transaction)
  /// occurrence. Partitions write disjoint words, so all `parts` calls may
  /// run concurrently (one per thread under run_spmd); the counting
  /// barrier afterwards publishes the bits.
  void build_partition(const Database& db, std::uint32_t part,
                       std::uint32_t parts);

  std::uint32_t rows() const { return num_rows_; }
  std::uint64_t words() const { return words_; }
  std::uint64_t transactions() const { return num_txns_; }

  /// The item's bitmap row, or nullptr when the item has no row (it cannot
  /// occur in any candidate this index was built for).
  const std::uint64_t* row_bits(item_t item) const {
    const std::uint32_t r =
        item < item_to_row_.size() ? item_to_row_[item] : kNoRow;
    return r == kNoRow ? nullptr : bits_ + static_cast<std::uint64_t>(r) *
                                               words_;
  }

 private:
  /// item id -> row index (kNoRow for untracked), sized to max tracked + 1.
  std::vector<std::uint32_t> item_to_row_;
  /// Row-major bitmaps: row r is bits_[r * words_ .. r * words_ + words_).
  /// Written only by build_partition (disjoint words per partition) inside
  /// the vertbuild phase; read-only while counting.
  /// lint-ok: R1 — word-partitioned single-writer build, then immutable.
  std::uint64_t* bits_ = nullptr;
  std::uint64_t words_ = 0;
  std::uint32_t num_rows_ = 0;
  std::uint64_t num_txns_ = 0;
  /// Phase-epoch stamp (SMPMINE_CHECKED validator): the bitmap plane may
  /// only be written in `vertbuild`.
  /// lint-ok: R1 — checked-build validator, internally synchronized.
  phaseepoch::PhaseEpoch epoch_;
};

/// Collects the distinct items across all itemsets of a flat F(k-1) array
/// (`flat` holds size/k records of k items each). Sorted, unique — the
/// `tracked` input the VerticalIndex constructor wants, and the
/// `distinct_items` input of the kernel cost model.
std::vector<item_t> distinct_items(std::span<const item_t> flat);

}  // namespace smpmine
