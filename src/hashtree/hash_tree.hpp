// The candidate hash tree (paper Section 2.1.1) with parallel build,
// placement-policy-aware allocation, GPP remapping, and the counting
// traversals of Section 4.2.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "alloc/alloc_stats.hpp"
#include "alloc/placement.hpp"
#include "hashtree/hash_policy.hpp"
#include "hashtree/nodes.hpp"
#include "util/thread_annotations.hpp"
#include "util/types.hpp"

namespace smpmine {

/// Subset-checking strategy during support counting (Section 4.2).
enum class SubsetCheck {
  LeafVisited,   ///< baseline: only leaves are deduped per transaction;
                 ///< duplicate hash paths are re-descended
  VisitedFlags,  ///< paper's VISITED flag on every node (P x nodes stamps)
  FrameLocal,    ///< reduced k*H*P variant: per-recursion-frame seen set
};

const char* to_string(SubsetCheck s);

struct HashTreeConfig {
  std::uint32_t k = 2;               ///< itemset length this tree stores
  std::uint32_t fanout = 4;          ///< H
  std::uint32_t leaf_threshold = 8;  ///< paper's T: max itemsets per leaf
  CounterMode counter_mode = CounterMode::Atomic;
};

/// Structural statistics, including the per-leaf occupancy distribution the
/// hash-tree balancing study (Theorem 1) is about.
struct TreeStats {
  std::uint64_t nodes = 0;
  std::uint64_t internal_nodes = 0;
  std::uint64_t leaves = 0;        ///< all leaves, including empty
  std::uint64_t occupied_leaves = 0;
  std::uint64_t candidates = 0;
  std::uint32_t max_depth = 0;
  double mean_leaf_occupancy = 0.0;  ///< over occupied leaves
  double max_leaf_occupancy = 0.0;
  double leaf_occupancy_stddev = 0.0;
  /// max leaf occupancy / mean — the balance figure of merit.
  double occupancy_imbalance() const {
    return mean_leaf_occupancy > 0.0 ? max_leaf_occupancy / mean_leaf_occupancy
                                     : 1.0;
  }
  std::uint64_t bytes_used = 0;  ///< tree-arena bytes
};

/// Per-thread counting state. Create via HashTree::make_context after the
/// tree is fully built (and remapped, if the policy remaps).
struct CountContext {
  SubsetCheck mode = SubsetCheck::FrameLocal;
  /// LCA (CounterMode::PerThread) accumulator, indexed by candidate id.
  std::vector<count_t> local_counts;
  /// Per-transaction stamps: leaves (LeafVisited) or all nodes
  /// (VisitedFlags), indexed by node id; value = current stamp.
  std::vector<std::uint32_t> node_stamp;
  /// FrameLocal seen-sets: (k+1) frames x fanout slots, epoch-reset.
  std::vector<std::uint32_t> frame_seen;
  std::vector<std::uint32_t> frame_epoch;
  std::uint32_t stamp = 0;  ///< per-transaction stamp, incremented per txn

  /// Group-level candidate dedup (off when empty): when enabled via
  /// HashTree::enable_group_dedup, a candidate is counted at most once per
  /// group even across multiple count_transaction calls — sequence mining's
  /// litemset phase needs "once per customer" semantics.
  std::vector<std::uint32_t> cand_group_stamp;
  std::uint32_t group = 0;

  // Traversal instrumentation (deterministic work proxies for the benches).
  std::uint64_t internal_visits = 0;
  std::uint64_t leaf_visits = 0;
  std::uint64_t containment_checks = 0;
  std::uint64_t hits = 0;
};

class HashTree {
 public:
  /// The tree allocates every block from `arenas` per its policy; `policy`
  /// maps items to buckets and must outlive the tree.
  HashTree(const HashTreeConfig& config, const HashPolicy& policy,
           PlacementArenas& arenas);

  HashTree(const HashTree&) = delete;
  HashTree& operator=(const HashTree&) = delete;

  /// Inserts a candidate k-itemset (sorted, exactly k items). Thread-safe;
  /// multiple builders may insert concurrently. Returns the candidate's
  /// dense id. Duplicate insertion is the caller's bug (the join never
  /// produces duplicates) and is not checked.
  std::uint32_t insert(std::span<const item_t> items);

  std::uint32_t num_candidates() const {
    return next_candidate_id_.load(std::memory_order_acquire);
  }
  std::uint32_t num_nodes() const {
    return next_node_id_.load(std::memory_order_acquire);
  }
  std::uint32_t k() const { return config_.k; }
  std::uint32_t fanout() const { return policy_->fanout(); }
  const HashTreeConfig& config() const { return config_; }
  CounterMode counter_mode() const { return config_.counter_mode; }

  /// Prepares a per-thread counting context sized for the current tree.
  CountContext make_context(SubsetCheck mode) const;

  /// Re-sizes an existing context for this tree, reusing its buffers'
  /// capacity. Miners keep one context per thread alive across iterations
  /// and re-prepare it per tree, so the per-iteration hot loop never pays
  /// a fresh allocation once the high-water capacity is reached.
  void prepare_context(SubsetCheck mode, CountContext& ctx) const;

  /// Switches `ctx` to group-dedup counting: after begin_group(ctx, g) each
  /// candidate's counter is incremented at most once until the next group
  /// begins, no matter how many transactions are counted.
  void enable_group_dedup(CountContext& ctx) const;
  static void begin_group(CountContext& ctx) { ++ctx.group; }

  /// Counts every candidate subset of one transaction (Section 2.1.2 /
  /// 4.2). Read-only on the tree structure; counter updates follow the
  /// counter mode. Call only after the build (and remap) phase completes.
  void count_transaction(std::span<const item_t> txn, CountContext& ctx) const;

  /// Adds a PerThread context's local counts into the shared counters —
  /// LCA-GPP's sum-reduction. Single-threaded per candidate range; callers
  /// split [0, num_candidates) across threads.
  void reduce_into_shared(const CountContext& ctx, std::uint32_t begin_id,
                          std::uint32_t end_id) const;

  /// Depth-first remap (GPP): rebuilds every block in counting-traversal
  /// order inside `arenas.remap_target()`, then swaps the root. Node ids
  /// are re-assigned in DFS order; existing CountContexts become stale.
  /// Single-threaded by design (the paper remaps on the master).
  void remap_depth_first();

  /// Visits every candidate (arbitrary order).
  void for_each_candidate(
      const std::function<void(const Candidate&)>& fn) const;

  /// Dense id -> Candidate* index. Built lazily by the first call; callers
  /// must make that first call single-threaded (the miner does, right after
  /// the build/remap phase). Invalidated by remap_depth_first.
  const std::vector<Candidate*>& candidate_index() const;

  TreeStats stats() const;

  /// Addresses touched by a counting traversal of `txn`, in visit order —
  /// feeds the locality analyzer (alloc_stats.hpp). Uses FrameLocal
  /// traversal semantics.
  void access_trace(std::span<const item_t> txn,
                    std::vector<std::uintptr_t>& out) const;

 private:
  /// The freeze pass walks the quiescent pointer tree directly.
  friend class FrozenTree;

  /// A freshly allocated candidate with its list node, placed per the
  /// active policy (co-reserved single block under LPP).
  struct Entry {
    Candidate* cand;
    ListNode* ln;
  };

  HTNode* new_node(std::uint16_t depth);
  /// Splits a full leaf into an internal node. Caller (insert) holds the
  /// node's spinlock across the redistribution and the `children` publish.
  void convert_leaf(HTNode* node) REQUIRES(node->lock);
  Entry make_entry(std::span<const item_t> items);
  void init_counter(Candidate* cand, std::byte* inline_tail);

  void count_rec(const HTNode* node, std::span<const item_t> txn,
                 std::size_t start, CountContext& ctx) const;
  void process_leaf(const HTNode* node, std::span<const item_t> txn,
                    CountContext& ctx) const;

  HTNode* remap_rec(const HTNode* node, Region& target,
                    std::uint32_t& next_id);
  void trace_rec(const HTNode* node, std::span<const item_t> txn,
                 std::size_t start, std::vector<std::uintptr_t>& out,
                 std::vector<std::uint32_t>& seen,
                 std::vector<std::uint32_t>& epoch) const;

  HashTreeConfig config_;
  const HashPolicy* policy_;
  PlacementArenas* arenas_;
  HTNode* root_ = nullptr;
  std::atomic<std::uint32_t> next_candidate_id_{0};
  std::atomic<std::uint32_t> next_node_id_{0};
  // lint-ok: R1 — lazy cache built by the first single-threaded reduction
  // setup after the counting barrier; never touched concurrently.
  mutable std::vector<Candidate*> cand_index_;
};

}  // namespace smpmine
