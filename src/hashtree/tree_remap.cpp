// GPP depth-first remapping (paper Section 5.1, Figure 5) and the locality
// trace used to quantify what remapping buys.
//
// The support-counting phase visits the tree in an order that closely
// approximates depth-first (subsets are generated in lexicographic order).
// GPP rebuilds every block — HTN, hash table, ILH, LN, itemset — into a
// fresh region in exactly that order, so consecutive accesses land on
// consecutive addresses.
#include <cstring>
#include <new>

#include "hashtree/hash_tree.hpp"
#include "obs/trace.hpp"

namespace smpmine {

HTNode* HashTree::remap_rec(const HTNode* node, Region& target,
                            std::uint32_t& next_id) {
  const bool localized = policy_localized(arenas_->policy());
  const bool inline_counter =
      !policy_segregates_counters(arenas_->policy()) &&
      !policy_local_counters(arenas_->policy());
  const bool locked = config_.counter_mode == CounterMode::Locked;
  const std::size_t k = config_.k;

  // HTN (+ILH) first, matching Figure 5's remap order.
  HTNode* copy = nullptr;
  ListHeader* header = nullptr;
  if (localized) {
    auto* block = static_cast<std::byte*>(
        target.alloc(sizeof(HTNode) + sizeof(ListHeader), alignof(HTNode)));
    copy = new (block) HTNode();
    header = new (block + sizeof(HTNode)) ListHeader();
  } else {
    copy = new (target.alloc(sizeof(HTNode), alignof(HTNode))) HTNode();
    header = new (target.alloc(sizeof(ListHeader), alignof(ListHeader)))
        ListHeader();
  }
  copy->list = header;
  copy->depth = node->depth;
  copy->id = next_id++;

  HTNode* const* kids = node->children.load(std::memory_order_acquire);
  if (kids != nullptr) {
    // HTNP directly after its node, then the children depth-first.
    auto** new_kids = static_cast<HTNode**>(
        target.alloc(config_.fanout * sizeof(HTNode*), alignof(HTNode*)));
    for (std::uint32_t b = 0; b < config_.fanout; ++b) {
      new_kids[b] = remap_rec(kids[b], target, next_id);
    }
    // relaxed-ok: the copy is private to the remapping thread; the phase
    // barrier after remap publishes the whole tree to the counting threads.
    copy->children.store(new_kids, std::memory_order_relaxed);
    return copy;
  }

  // Leaf: rebuild the (LN, itemset) chain in traversal order. The original
  // list is walked head-to-tail and the copy preserves that order.
  ListNode** tail = &header->head;
  for (const ListNode* ln = node->list->head; ln != nullptr; ln = ln->next) {
    const Candidate* old_cand = ln->cand;
    std::size_t cand_bytes = Candidate::alloc_size(k);
    if (inline_counter) {
      cand_bytes += sizeof(count_t);
      if (locked) cand_bytes += sizeof(SpinLock);
    }

    ListNode* new_ln = nullptr;
    Candidate* new_cand = nullptr;
    if (localized) {
      auto* block = static_cast<std::byte*>(target.alloc(
          sizeof(ListNode) + cand_bytes, alignof(ListNode)));
      new_ln = new (block) ListNode{nullptr, nullptr};
      new_cand = new (block + sizeof(ListNode)) Candidate();
    } else {
      new_ln = new (target.alloc(sizeof(ListNode), alignof(ListNode)))
          ListNode{nullptr, nullptr};
      new_cand = new (target.alloc(cand_bytes, alignof(Candidate)))
          Candidate();
    }
    new_cand->id = old_cand->id;
    std::memcpy(new_cand->items(), old_cand->items(), k * sizeof(item_t));
    if (inline_counter) {
      auto* cand_tail = reinterpret_cast<std::byte*>(new_cand->items() + k);
      new_cand->count = new (cand_tail) count_t(*old_cand->count);
      new_cand->count_lock =
          locked ? new (cand_tail + sizeof(count_t)) SpinLock() : nullptr;
    } else {
      // Segregated counters keep living in the counters region; the remap
      // re-points at the same blocks (their region is already dense).
      new_cand->count = old_cand->count;
      new_cand->count_lock = old_cand->count_lock;
    }
    new_ln->cand = new_cand;
    *tail = new_ln;
    tail = &new_ln->next;
    ++header->size;
  }
  return copy;
}

void HashTree::remap_depth_first() {
  SMPMINE_TRACE_SPAN_ARG("hashtree.remap", "nodes", num_nodes());
  Region& target = arenas_->remap_target();
  std::uint32_t next_id = 0;
  HTNode* new_root = remap_rec(root_, target, next_id);
  root_ = new_root;
  next_node_id_.store(next_id, std::memory_order_release);
  cand_index_.clear();  // stale pointers into the old tree
}

void HashTree::trace_rec(const HTNode* node, std::span<const item_t> txn,
                         std::size_t start, std::vector<std::uintptr_t>& out,
                         std::vector<std::uint32_t>& seen,
                         std::vector<std::uint32_t>& epoch) const {
  out.push_back(reinterpret_cast<std::uintptr_t>(node));
  // relaxed-ok: traversal tracing runs on a quiescent tree after the build
  // barrier, so the publish already happened-before this load.
  HTNode* const* kids = node->children.load(std::memory_order_relaxed);
  if (kids == nullptr) {
    out.push_back(reinterpret_cast<std::uintptr_t>(node->list));
    for (const ListNode* ln = node->list->head; ln != nullptr; ln = ln->next) {
      out.push_back(reinterpret_cast<std::uintptr_t>(ln));
      out.push_back(reinterpret_cast<std::uintptr_t>(ln->cand));
    }
    return;
  }
  out.push_back(reinterpret_cast<std::uintptr_t>(kids));
  const std::size_t d = node->depth;
  const std::size_t last = txn.size() - (config_.k - d);
  const std::uint32_t e = ++epoch[d];
  std::uint32_t* frame = seen.data() + d * config_.fanout;
  for (std::size_t i = start; i <= last; ++i) {
    const std::uint32_t b = policy_->bucket(txn[i]);
    if (frame[b] == e) continue;
    frame[b] = e;
    trace_rec(kids[b], txn, i + 1, out, seen, epoch);
  }
}

void HashTree::access_trace(std::span<const item_t> txn,
                            std::vector<std::uintptr_t>& out) const {
  if (txn.size() < config_.k) return;
  std::vector<std::uint32_t> seen(
      static_cast<std::size_t>(config_.k + 1) * config_.fanout, 0);
  std::vector<std::uint32_t> epoch(config_.k + 1, 0);
  trace_rec(root_, txn, 0, out, seen, epoch);
}

}  // namespace smpmine
