#include "hashtree/hash_tree.hpp"

namespace smpmine {

const char* to_string(CounterMode m) {
  switch (m) {
    case CounterMode::Atomic: return "atomic";
    case CounterMode::Locked: return "locked";
    case CounterMode::PerThread: return "per-thread";
  }
  return "?";
}

const char* to_string(SubsetCheck s) {
  switch (s) {
    case SubsetCheck::LeafVisited: return "leaf-visited";
    case SubsetCheck::VisitedFlags: return "visited-flags";
    case SubsetCheck::FrameLocal: return "frame-local";
  }
  return "?";
}

}  // namespace smpmine
