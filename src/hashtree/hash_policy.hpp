// Item-to-bucket hash policies for the candidate hash tree (Section 4.1).
//
// The unoptimized tree hashes with `h(i) = i mod H` (equivalent to the
// interleaved partitioning of items over buckets). Tree balancing replaces
// it with the *bitonic* hash function, in two flavors:
//   - the closed form of Theorem 1:
//       h(i) = i mod H          when (i mod 2H) <  H
//            = 2H-1-(i mod 2H)  otherwise,
//   - the indirection vector built by bitonic-partitioning the F1 labels
//     with P := H (Table 1) — exact balancing of the realized item
//     workloads rather than the idealized closed form.
//
// A policy maps *raw item ids*; for the indirection flavor, items outside
// F1 (which can appear in transactions but never in candidates) fall back
// to mod H — any bucket is correct for them because leaf containment checks
// decide membership.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace smpmine {

enum class HashScheme {
  Interleaved,   ///< i mod H (the paper's unoptimized baseline)
  Bitonic,       ///< closed-form bitonic of Theorem 1
  Indirection,   ///< bitonic partitioning of F1 labels via indirection vector
};

const char* to_string(HashScheme s);

class HashPolicy {
 public:
  /// Interleaved or closed-form Bitonic policy over raw ids.
  HashPolicy(HashScheme scheme, std::uint32_t fanout);

  /// Indirection policy: `frequent_items` are the F1 items in lexicographic
  /// order; their labels 0..n-1 are bitonic-partitioned into `fanout`
  /// classes and the composition raw id -> label -> class is flattened into
  /// a lookup table of size `universe`.
  HashPolicy(std::uint32_t fanout, std::span<const item_t> frequent_items,
             item_t universe);

  std::uint32_t fanout() const { return fanout_; }
  HashScheme scheme() const { return scheme_; }

  /// Bucket of an item, in [0, fanout()).
  std::uint32_t bucket(item_t item) const {
    switch (scheme_) {
      case HashScheme::Interleaved:
        return item % fanout_;
      case HashScheme::Bitonic: {
        const std::uint32_t r = item % (2 * fanout_);
        return r < fanout_ ? r : 2 * fanout_ - 1 - r;
      }
      case HashScheme::Indirection:
        return item < table_.size() ? table_[item] : item % fanout_;
    }
    return 0;
  }

  /// The raw indirection table (empty unless scheme() == Indirection);
  /// exposed for the Table 1 unit test.
  const std::vector<std::uint32_t>& indirection_table() const { return table_; }

 private:
  HashScheme scheme_;
  std::uint32_t fanout_;
  std::vector<std::uint32_t> table_;
};

/// Adaptive fan-out (Section 3.1.1): smallest H with T*H^k > total join
/// pairs, i.e. H = ceil((pairs / leaf_threshold)^(1/k)), clamped to
/// [min_fanout, max_fanout].
std::uint32_t adaptive_fanout(double total_join_pairs, std::uint32_t k,
                              std::uint32_t leaf_threshold,
                              std::uint32_t min_fanout = 2,
                              std::uint32_t max_fanout = 512);

}  // namespace smpmine
