// Vertical counting kernel: tid-bitmap AND + popcount per candidate slot.
//
// Where the horizontal kernels enumerate every transaction against the
// tree, the vertical kernel loops over candidate *slots*: a slot's support
// is the popcount of the AND of its k item rows in the VerticalIndex,
// streamed in 8-word (512-bit) blocks. All transactions are covered at
// once — parallelism comes from disjoint slot ranges, not transaction
// ranges — and the tree structure is only used as the slot -> k-itemset
// map (the same SoA columns the leaf scans read).
//
// Counter discipline matches the horizontal kernels per CounterMode so the
// reduce phase and the TSan race suite treat all kernels uniformly, even
// though disjoint slot ranges would make plain stores safe.
#include <atomic>
#include <bit>

#include "hashtree/frozen_tree.hpp"
#include "hashtree/vertical_index.hpp"
#include "obs/ledger/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/attributes.hpp"
#include "util/checked.hpp"

namespace smpmine {

namespace {

/// popcount(rows[0] & ... & rows[k-1]) over `words` u64s. 8-word blocks:
/// the per-block accumulators live in registers and the row streams are
/// perfectly sequential, so this runs at memory bandwidth for small k.
SMPMINE_HOT std::uint64_t and_popcount(
    const std::uint64_t* const* rows, std::uint32_t k, std::uint64_t words) {
  std::uint64_t total = 0;
  std::uint64_t w = 0;
  for (; w + VerticalIndex::kBlockWords <= words;
       w += VerticalIndex::kBlockWords) {
    for (std::uint32_t b = 0; b < VerticalIndex::kBlockWords; ++b) {
      std::uint64_t acc = rows[0][w + b];
      for (std::uint32_t q = 1; q < k; ++q) acc &= rows[q][w + b];
      total += static_cast<std::uint64_t>(std::popcount(acc));
    }
  }
  for (; w < words; ++w) {
    std::uint64_t acc = rows[0][w];
    for (std::uint32_t q = 1; q < k; ++q) acc &= rows[q][w];
    total += static_cast<std::uint64_t>(std::popcount(acc));
  }
  return total;
}

}  // namespace

void FrozenTree::count_slots_vertical(const VerticalIndex& vidx,
                                      std::uint32_t begin_slot,
                                      std::uint32_t end_slot,
                                      FlatCountContext& ctx) const {
  SMPMINE_ASSERT(end_slot <= num_cands_, "slot range out of bounds");
  SMPMINE_ASSERT(mode_ != CounterMode::PerThread ||
                     ctx.local_counts.size() == num_cands_,
                 "FlatCountContext is stale: prepared for another tree");
  // PerThread mode writes only ctx.local_counts here; the shared counters
  // are touched in reduce_into_shared (its own epoch check).
  if (mode_ != CounterMode::PerThread) {
    SMPMINE_PHASE_EPOCH_WRITE(counter_epoch_);
  }
  const std::uint64_t words = vidx.words();
  count_t* local = ctx.local_counts.data();
  for (std::uint32_t s = begin_slot; s < end_slot; ++s) {
    const std::uint64_t slot_start_ns = obs::now_ns();
    const std::uint64_t* rows[kMaxK];
    bool tracked = true;
    for (std::uint32_t q = 0; q < k_; ++q) {
      const item_t item = items_[static_cast<std::size_t>(q) * num_cands_ + s];
      rows[q] = vidx.row_bits(item);
      if (rows[q] == nullptr) {
        tracked = false;  // item below support: this candidate has 0 support
        break;
      }
    }
    const std::uint64_t support =
        tracked && words != 0 ? and_popcount(rows, k_, words) : 0;
    ctx.hits += support;  // hits == total support sum, kernel-independent
    if (support != 0) {
      switch (mode_) {
        case CounterMode::Atomic:
          // relaxed-ok: support counters are pure totals; nobody reads
          // them until after the counting barrier, which orders them.
          std::atomic_ref<count_t>(counts_[s])
              .fetch_add(static_cast<count_t>(support),
                         std::memory_order_relaxed);
          break;
        case CounterMode::Locked: {
          SpinLockGuard guard(locks_[s]);
          counts_[s] += static_cast<count_t>(support);
          break;
        }
        case CounterMode::PerThread:
          local[s] += static_cast<count_t>(support);
          break;
      }
    }
    obs::metric::vertkernel_slot_ns().record(obs::now_ns() - slot_start_ns);
  }
  obs::metric::vertkernel_slots().inc(end_slot - begin_slot);
  // Efficiency-ledger work units: candidate slots intersected by this call
  // (each slot covers the whole database — the vertical kernel's unit).
  SMPMINE_LEDGER_WORK("count", end_slot - begin_slot);
}

}  // namespace smpmine
