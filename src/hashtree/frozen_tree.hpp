// Frozen flat-layout counting kernel.
//
// The pointer hash tree (nodes.hpp) is the right structure for the paper's
// *build* phase — five block kinds, per-leaf locks, placement policies —
// but every counting traversal then pays HTNode* hops, ListNode chases and
// scattered Candidate dereferences: one potential cache miss per edge.
// After the build (and remap) barrier the tree is immutable for the rest
// of the iteration, so FrozenTree snapshots it into a flat kernel layout:
//
//   first_child_[n]    CSR child offsets. Nodes are renumbered in BFS
//                      order, so an internal node's `fanout` children are
//                      contiguous: child(b) = first_child_[n] + b. Leaves
//                      hold kNoChild. BFS also makes every depth level a
//                      contiguous id range (level_begin_), which the tiled
//                      kernel's level-synchronous traversal relies on.
//   cand_begin_[n+1]   Leaf candidate ranges: leaf n owns packed slots
//                      [cand_begin_[n], cand_begin_[n+1]) — the per-leaf
//                      ListNode chains flattened away.
//   items_             All candidate k-itemsets, structure-of-arrays:
//                      item j of slot s is items_[j * num_candidates + s],
//                      so a leaf scan streams columns instead of hopping
//                      header->items blocks.
//   orig_id_[s]        Slot -> original candidate id (for the thaw).
//   counts_[s]         Contiguous counter array, updated per CounterMode
//                      (atomic / locked / per-thread + reduction).
//
// Counting runs a non-recursive, level-synchronous kernel with
// *transaction tiling*: a tile of B transactions descends together, one
// level per step. Per level the (node, transaction) work items are
// bucket-sorted by node id, so each node's CSR row and candidate columns
// are touched once per tile — with a software prefetch of the next row —
// instead of once per transaction. Duplicate hash paths are pruned with
// the same per-frame bucket dedup as SubsetCheck::FrameLocal, under which
// each node is visited at most once per transaction; hit counts and work
// counters therefore match the pointer kernel's FrameLocal traversal
// exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "alloc/placement.hpp"
#include "data/database.hpp"
#include "hashtree/hash_tree.hpp"
#include "util/cpu_features.hpp"
#include "util/phase_epoch.hpp"
#include "util/types.hpp"

namespace smpmine {

class VerticalIndex;

/// One (node, transaction, resume-position) unit of tiled traversal work.
struct FlatEntry {
  std::uint32_t node;  ///< BFS node id
  std::uint32_t txn;   ///< slot in the current tile
  std::uint32_t start; ///< next transaction position to hash
};

/// Per-thread state for the flat kernel. Like CountContext, create once
/// per thread and re-prepare per tree: every buffer is resized in the
/// non-hot driver, never in the traversal itself (R4).
struct FlatCountContext {
  /// LCA (CounterMode::PerThread) accumulator, indexed by frozen slot.
  std::vector<count_t> local_counts;
  /// Double-buffered work frontiers (current level / next level).
  std::vector<FlatEntry> frontier;
  std::vector<FlatEntry> next;
  /// Counting/radix-sort workspace, sized to max(widest BFS level + 1,
  /// 257) — the radix path needs 256 digit buckets + 1.
  std::vector<std::uint32_t> bucket_offsets;
  /// Per-tile hash-bucket cache: bucket(txn item) for every (tile slot,
  /// position), filled once per tile by the driver so the per-level
  /// expansion re-reads instead of re-hashing. bucket_base[s] is slot s's
  /// offset into bucket_cache.
  std::vector<std::uint32_t> bucket_cache;
  std::vector<std::uint32_t> bucket_base;
  /// Per-expansion bucket dedup (fanout slots, epoch-reset).
  std::vector<std::uint32_t> seen;
  std::uint32_t seen_epoch = 0;
  /// The tile's transactions (pointers into the database's flat storage).
  std::vector<const item_t*> tile_ptr;
  std::vector<std::uint32_t> tile_len;

  // Traversal instrumentation — same definitions as CountContext under
  // FrameLocal, so the two kernels are comparable series in the benches.
  std::uint64_t internal_visits = 0;
  std::uint64_t leaf_visits = 0;
  std::uint64_t containment_checks = 0;
  std::uint64_t hits = 0;
  // Flat-kernel mechanism counters.
  std::uint64_t tiles = 0;
  std::uint64_t prefetches = 0;
};

class FrozenTree {
 public:
  /// Largest k the fixed-size leaf-scan buffer supports; miners fall back
  /// to the pointer kernel above it (unreachable for realistic supports).
  static constexpr std::uint32_t kMaxK = 64;
  static constexpr std::uint32_t kNoChild = 0xFFFFFFFFu;
  /// Transactions per tile. Large enough that a popular node's cache lines
  /// are reused across the tile, small enough that the frontier stays
  /// cache-resident.
  static constexpr std::uint32_t kTileSize = 64;

  /// Freezes a fully built (and remapped, if the policy remaps) tree.
  /// Master-thread only, after the build barrier: the pointer tree must be
  /// quiescent. Structure arrays land in arenas.freeze_target(); counters
  /// (and Locked-mode locks) in arenas.counters(), preserving the L-*
  /// policies' segregation of read-write state.
  FrozenTree(const HashTree& tree, PlacementArenas& arenas);

  FrozenTree(const FrozenTree&) = delete;
  FrozenTree& operator=(const FrozenTree&) = delete;

  std::uint32_t num_nodes() const { return num_nodes_; }
  std::uint32_t num_candidates() const { return num_cands_; }
  std::uint32_t k() const { return k_; }
  std::uint32_t fanout() const { return fanout_; }
  CounterMode counter_mode() const { return mode_; }
  std::uint32_t tile_size() const { return tile_; }
  /// The leaf-scan backend this tree dispatches to (resolved from
  /// util/cpu_features.hpp at freeze time).
  SimdBackend simd() const { return simd_; }

  /// Re-sizes a per-thread context for this tree (capacity-reusing, like
  /// HashTree::prepare_context).
  void prepare_context(FlatCountContext& ctx) const;

  /// Counts transactions [begin, end) of `db` through the tiled kernel.
  /// Thread-safe: the frozen structure is read-only; counter updates
  /// follow the counter mode.
  void count_range(const Database& db, std::uint64_t begin, std::uint64_t end,
                   FlatCountContext& ctx) const;

  /// Vertical kernel: counts candidate slots [begin_slot, end_slot) by
  /// AND+popcount over the index's tid-bitmap rows (every transaction at
  /// once — there is no transaction range). Thread-safe for disjoint slot
  /// ranges under any counter mode; the index must have been built for a
  /// superset of this tree's candidate items and barrier-published.
  void count_slots_vertical(const VerticalIndex& vidx,
                            std::uint32_t begin_slot, std::uint32_t end_slot,
                            FlatCountContext& ctx) const;

  /// LCA reduction: adds a PerThread context's local counts into the
  /// shared counter array. Callers split [0, num_candidates) into disjoint
  /// slot ranges across threads.
  void reduce_into_shared(const FlatCountContext& ctx,
                          std::uint32_t begin_slot,
                          std::uint32_t end_slot) const;

  /// Publishes the frozen counts back into the pointer tree's Candidate
  /// counters (which are zero until then), so selection, rule generation
  /// and every existing consumer read supports as usual. Master-thread
  /// only, after the counting (and reduction) barrier.
  void thaw_counts(const HashTree& tree) const;

  /// Test access: the frozen support of one slot and its original id.
  count_t slot_count(std::uint32_t slot) const { return counts_[slot]; }
  std::uint32_t slot_orig_id(std::uint32_t slot) const {
    return orig_id_[slot];
  }

 private:
  /// Processes one sorted level of the frontier: expands internal-node
  /// entries into ctx.next (capacity pre-ensured by the driver) and scans
  /// leaf entries against their candidate slots. Returns the next
  /// frontier's size.
  std::uint32_t expand_level(std::uint32_t depth, FlatCountContext& ctx,
                             std::uint32_t n_frontier) const;
  /// Orders ctx.next's entries by node id for level `level`. Returns true
  /// when the result landed in ctx.frontier (counting-sort scatter), false
  /// when ctx.next was sorted in place and the driver should swap buffers.
  bool sort_level(std::uint32_t level, FlatCountContext& ctx,
                  std::uint32_t n) const;

  const HashPolicy* policy_ = nullptr;
  // Shape scalars: written once by the freeze (single-threaded per tree),
  // read-only while threads count concurrently.
  // lint-ok: R1 — immutable after construction.
  std::uint32_t k_ = 0;
  std::uint32_t fanout_ = 0;
  std::uint32_t num_nodes_ = 0;
  std::uint32_t num_cands_ = 0;
  // lint-ok: R1 — immutable after construction.
  std::uint32_t tile_ = kTileSize;
  CounterMode mode_ = CounterMode::Atomic;
  // lint-ok: R1 — immutable after construction.
  SimdBackend simd_ = SimdBackend::Scalar;

  // Flat arrays, region-owned (see constructor). The structure arrays are
  // written once by the freeze and read-only afterwards.
  // lint-ok: R1 — immutable after construction.
  std::uint32_t* first_child_ = nullptr;
  std::uint32_t* cand_begin_ = nullptr;
  item_t* items_ = nullptr;
  std::uint32_t* orig_id_ = nullptr;
  /// Shared support counters. Update discipline is mode-dependent exactly
  /// as Candidate::count (atomic_ref relaxed / locks_[slot] / disjoint
  /// -range reduction after a barrier); exercised under TSan by
  /// tests/race/test_race_flat_kernel.cpp.
  /// lint-ok: R1 — per-CounterMode discipline, see above.
  count_t* counts_ = nullptr;
  SpinLock* locks_ = nullptr;  ///< only non-null under CounterMode::Locked

  /// BFS level boundaries: nodes of depth d are [level_begin_[d],
  /// level_begin_[d+1]). Depth never exceeds k, so this stays tiny.
  /// lint-ok: R1 — immutable after construction.
  std::vector<std::uint32_t> level_begin_;
  std::uint32_t max_level_width_ = 0;

  /// Phase-epoch stamps (SMPMINE_CHECKED validator, empty structs
  /// otherwise): the structure arrays above may only be written in
  /// `freeze`; the counter array in `freeze` (zero-fill), `count`
  /// (Atomic/Locked modes) and `reduce` (LCA reduction).
  /// lint-ok: R1 — checked-build validator, internally synchronized.
  phaseepoch::PhaseEpoch structure_epoch_;
  /// lint-ok: R1 — checked-build validator, internally synchronized.
  phaseepoch::PhaseEpoch counter_epoch_;
};

}  // namespace smpmine
