// Hash-tree building blocks (paper Figures 2, 3 and 5).
//
// The paper names five block kinds, and the placement policies are defined
// in terms of them, so we keep all five as distinct allocations:
//   HTNode      — hash tree node (HTN)
//   HTNode*[]   — hash table / pointer array (HTNP), internal nodes only
//   ListHeader  — itemset list header (ILH)
//   ListNode    — linked-list node (LN)
//   Candidate   — the itemset record itself, with its support counter
//
// Blocks are allocated raw from an Arena and placement-new'd; the tree never
// destroys individual blocks (trivially destructible throughout) — the
// owning arenas release everything at once.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>

#include "parallel/spinlock.hpp"
#include "util/types.hpp"

namespace smpmine {

/// How support counters are updated during counting.
enum class CounterMode {
  Atomic,     ///< shared counter, atomic increment (default shared mode)
  Locked,     ///< shared counter guarded by a per-candidate spinlock —
              ///< the paper's lock+counter pair, kept for the false-sharing
              ///< study
  PerThread,  ///< LCA: per-thread count arrays + final reduction
};

const char* to_string(CounterMode m);

/// A candidate k-itemset stored in a leaf. The k items follow the header
/// in the same allocation (`items()`); the counter and optional lock live
/// wherever the placement policy put them (inline block, segregated
/// region — see HashTree::insert).
struct Candidate {
  /// lint-ok: R1 — written once at creation (before the leaf link publishes
  /// the candidate); read-only afterwards.
  std::uint32_t id;       ///< dense id in [0, num_candidates)
  /// Shared support counter. Synchronization is mode-dependent — Atomic:
  /// concurrent writers use std::atomic_ref relaxed increments; Locked:
  /// writers hold *count_lock; PerThread: written only by the disjoint-range
  /// reduction after a barrier. Because the discipline varies per
  /// CounterMode at runtime, this field carries no PT_GUARDED_BY (a static
  /// annotation would mis-flag two of the three modes); the per-mode
  /// protocols are exercised under TSan by test_race_ccpd_counters.cpp.
  /// lint-ok: R1 — per-CounterMode discipline, see above.
  count_t* count;
  SpinLock* count_lock;   ///< only non-null under CounterMode::Locked

  item_t* items() { return reinterpret_cast<item_t*>(this + 1); }
  const item_t* items() const {
    return reinterpret_cast<const item_t*>(this + 1);
  }
  std::span<const item_t> view(std::size_t k) const { return {items(), k}; }

  static std::size_t alloc_size(std::size_t k) {
    return sizeof(Candidate) + k * sizeof(item_t);
  }
};
static_assert(alignof(Candidate) >= alignof(item_t),
              "items() placement relies on header alignment");

/// Linked-list node chaining candidates within a leaf (LN).
struct ListNode {
  Candidate* cand;
  ListNode* next;
};

/// Itemset list header (ILH). Internal nodes keep an empty one, exactly as
/// the paper's Figure 3 shows.
struct ListHeader {
  ListNode* head = nullptr;
  std::uint32_t size = 0;
};

/// Hash tree node (HTN). A node is a leaf while `children` is null; the
/// leaf->internal conversion builds the fully-populated child array and
/// publishes it with a release store, so readers that observe `children`
/// non-null can descend without taking the node lock.
///
/// Locking discipline: during the parallel build, `lock` guards the list
/// reached through `list` (head/size) and the leaf->internal transition
/// (HashTree::insert links under SpinLockGuard; HashTree::convert_leaf is
/// REQUIRES(node->lock)). After the build barrier the tree is quiescent and
/// the counting/stats traversals read `list` lock-free — that phase split is
/// why `list` is not PT_GUARDED_BY(lock): annotating it would flag every
/// legitimate quiescent reader. The build-phase protocol is instead checked
/// dynamically by tests/race/test_race_tree_build.cpp under TSan.
struct HTNode {
  std::atomic<HTNode**> children{nullptr};  ///< HTNP, fanout entries
  /// lint-ok: R1 — phase-disciplined, not lock-annotated; see class comment.
  ListHeader* list = nullptr;               ///< ILH
  /// lint-ok: R1 — written once at node creation, read-only afterwards.
  std::uint32_t id = 0;                     ///< dense node id
  /// lint-ok: R1 — written once at node creation, read-only afterwards.
  std::uint16_t depth = 0;                  ///< items hashed to reach it
  SpinLock lock;                            ///< guards leaf insert/convert

  bool is_leaf(std::memory_order order = std::memory_order_acquire) const {
    return children.load(order) == nullptr;
  }
};

}  // namespace smpmine
