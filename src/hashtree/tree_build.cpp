// Tree construction: parallel locked insert and leaf->internal conversion
// (paper Section 3.1.4), with block placement per the active policy.
#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <new>

#include "hashtree/hash_tree.hpp"
#include "itemset/itemset.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/checked.hpp"
#include "util/thread_annotations.hpp"

namespace smpmine {
namespace {

/// Counter-with-lock block used when counters are segregated and the
/// counter mode is Locked.
struct CounterBlock {
  count_t count GUARDED_BY(lock);
  SpinLock lock;
};

}  // namespace

HashTree::HashTree(const HashTreeConfig& config, const HashPolicy& policy,
                   PlacementArenas& arenas)
    : config_(config), policy_(&policy), arenas_(&arenas) {
  assert(config_.k >= 1);
  assert(policy.fanout() == config_.fanout &&
         "config fanout must match the hash policy");
  root_ = new_node(0);
}

HTNode* HashTree::new_node(std::uint16_t depth) {
  HTNode* node = nullptr;
  ListHeader* header = nullptr;
  if (policy_localized(arenas_->policy())) {
    // LPP reservation: HTN and its ILH in one block so touching the node
    // brings its list header into the cache with it.
    void* block = arenas_->tree(BlockKind::Node)
                      .alloc(sizeof(HTNode) + sizeof(ListHeader),
                             alignof(HTNode));
    node = new (block) HTNode();
    header =
        new (static_cast<std::byte*>(block) + sizeof(HTNode)) ListHeader();
  } else {
    node = new (arenas_->tree(BlockKind::Node)
                    .alloc(sizeof(HTNode), alignof(HTNode))) HTNode();
    header = new (arenas_->tree(BlockKind::ListHeader)
                      .alloc(sizeof(ListHeader), alignof(ListHeader)))
        ListHeader();
  }
  node->list = header;
  node->depth = depth;
  // Symbolic identity for the lock-order dump: every node lock is one
  // equivalence class — the ordering discipline is per-class, not
  // per-instance. No-op outside checked builds.
  SMPMINE_LOCK_NAME(&node->lock, "HTNode::lock");
  // relaxed-ok: id allocation only needs atomicity (unique dense ids); the
  // node is published to other threads via the children release store or
  // the build barrier, never through this counter.
  node->id = next_node_id_.fetch_add(1, std::memory_order_relaxed);
  return node;
}

void HashTree::init_counter(Candidate* cand, std::byte* inline_tail) {
  const bool locked = config_.counter_mode == CounterMode::Locked;
  if (inline_tail != nullptr) {
    // Counter (and lock) right after the items — the read-write data
    // interleaved with read-only data that Section 5.2 identifies as the
    // false-sharing source in the non-segregated policies.
    cand->count = new (inline_tail) count_t(0);
    cand->count_lock =
        locked ? new (inline_tail + sizeof(count_t)) SpinLock() : nullptr;
    if (cand->count_lock != nullptr) {
      SMPMINE_LOCK_NAME(cand->count_lock, "Candidate::count_lock");
    }
    return;
  }
  if (locked) {
    auto* block = new (arenas_->counters().alloc(sizeof(CounterBlock),
                                                 alignof(CounterBlock)))
        CounterBlock{0, {}};
    cand->count = &block->count;
    cand->count_lock = &block->lock;
    SMPMINE_LOCK_NAME(cand->count_lock, "Candidate::count_lock");
  } else {
    cand->count = new (
        arenas_->counters().alloc(sizeof(count_t), alignof(count_t)))
        count_t(0);
    cand->count_lock = nullptr;
  }
}

HashTree::Entry HashTree::make_entry(std::span<const item_t> items) {
  const std::size_t k = config_.k;
  const PlacementPolicy policy = arenas_->policy();
  const bool inline_counter =
      !policy_segregates_counters(policy) && !policy_local_counters(policy);

  std::size_t cand_bytes = Candidate::alloc_size(k);
  if (inline_counter) {
    cand_bytes += sizeof(count_t);
    if (config_.counter_mode == CounterMode::Locked) {
      cand_bytes += sizeof(SpinLock);
    }
  }

  Candidate* cand = nullptr;
  ListNode* ln = nullptr;
  if (policy_localized(policy)) {
    // LPP reservation: the list node immediately followed by its itemset
    // block, so walking a leaf list streams LN -> itemset -> LN -> ...
    auto* block = static_cast<std::byte*>(
        arenas_->tree(BlockKind::ListNode)
            .alloc(sizeof(ListNode) + cand_bytes, alignof(ListNode)));
    ln = new (block) ListNode{nullptr, nullptr};
    cand = new (block + sizeof(ListNode)) Candidate();
  } else {
    // Separate blocks in creation order (SPP/GPP), or scattered (Malloc).
    ln = new (arenas_->tree(BlockKind::ListNode)
                  .alloc(sizeof(ListNode), alignof(ListNode)))
        ListNode{nullptr, nullptr};
    cand = new (arenas_->tree(BlockKind::Itemset)
                    .alloc(cand_bytes, alignof(Candidate))) Candidate();
  }
  // relaxed-ok: same as node ids — uniqueness needs atomicity only;
  // publication of the candidate happens through the leaf list under the
  // node lock.
  cand->id = next_candidate_id_.fetch_add(1, std::memory_order_relaxed);
  std::memcpy(cand->items(), items.data(), k * sizeof(item_t));
  init_counter(cand, inline_counter
                         ? reinterpret_cast<std::byte*>(cand->items() + k)
                         : nullptr);
  ln->cand = cand;
  return Entry{cand, ln};
}

std::uint32_t HashTree::insert(std::span<const item_t> items) {
  assert(items.size() == config_.k);
  // The whole descent assumes lexicographic order; an unsorted candidate
  // lands in the wrong leaf and silently never gets counted.
  SMPMINE_ASSERT(std::is_sorted(items.begin(), items.end()),
                 "candidate itemsets must be sorted");
#if SMPMINE_TRACING_ENABLED
  // Build-phase volume counter (trace builds only — insert is the candgen
  // hot path). Together with spinlock.contended_acquires this reads off
  // "how contended was the shared CCPD tree per insertion".
  obs::metric::hashtree_inserts().inc();
#endif
  // Allocate outside any lock so the critical section is just the link.
  const Entry entry = make_entry(items);

  HTNode* node = root_;
  for (;;) {
    HTNode** kids = node->children.load(std::memory_order_acquire);
    if (kids != nullptr) {
      node = kids[policy_->bucket(items[node->depth])];
      continue;
    }
    SpinLockGuard guard(node->lock);
    // relaxed-ok: re-check under the node lock — the converting thread
    // wrote `children` while holding this same lock, so the lock's
    // acquire/release ordering already covers the load.
    kids = node->children.load(std::memory_order_relaxed);
    if (kids != nullptr) {
      continue;  // converted while we waited; resume the descent
    }
    entry.ln->next = node->list->head;
    node->list->head = entry.ln;
    ++node->list->size;
    if (node->list->size > config_.leaf_threshold &&
        node->depth < config_.k) {
      convert_leaf(node);
    }
    return entry.cand->id;
  }
}

void HashTree::convert_leaf(HTNode* node) {
#if SMPMINE_TRACING_ENABLED
  obs::metric::hashtree_leaf_conversions().inc();
  SMPMINE_TRACE_INSTANT_ARG("hashtree.convert_leaf", "depth", node->depth);
#endif
  // Depth-k leaves hold itemsets whose k items are all consumed by the
  // hash path; splitting one would index items()[k] out of bounds.
  SMPMINE_ASSERT(node->depth < config_.k,
                 "leaf at depth k can never be converted");
  const std::uint32_t old_size = node->list->size;
  const std::uint32_t fanout = config_.fanout;
  auto** kids = static_cast<HTNode**>(
      arenas_->tree(BlockKind::HashTable)
          .alloc(fanout * sizeof(HTNode*), alignof(HTNode*)));
  for (std::uint32_t b = 0; b < fanout; ++b) {
    kids[b] = new_node(static_cast<std::uint16_t>(node->depth + 1));
  }
  // Redistribute the leaf's list nodes by the next item's bucket. The list
  // nodes move by pointer; no blocks are reallocated.
  ListNode* ln = node->list->head;
  while (ln != nullptr) {
    ListNode* next = ln->next;
    HTNode* child = kids[policy_->bucket(ln->cand->items()[node->depth])];
    ln->next = child->list->head;
    child->list->head = ln;
    ++child->list->size;
    ln = next;
  }
  node->list->head = nullptr;
  node->list->size = 0;
#if SMPMINE_CHECKED_ENABLED
  // Redistribution must conserve the candidate population: every list node
  // moved, none dropped, none duplicated.
  std::uint32_t redistributed = 0;
  for (std::uint32_t b = 0; b < fanout; ++b) {
    redistributed += kids[b]->list->size;
  }
  SMPMINE_ASSERT(redistributed == old_size,
                 "leaf conversion must conserve the candidate list");
#else
  (void)old_size;
#endif
  // Publish last: readers that see `children` non-null may descend without
  // the lock, so the child lists must be complete first.
  node->children.store(kids, std::memory_order_release);
}

void HashTree::for_each_candidate(
    const std::function<void(const Candidate&)>& fn) const {
  // Iterative DFS; the tree is quiescent when this is called.
  std::vector<const HTNode*> stack{root_};
  while (!stack.empty()) {
    const HTNode* node = stack.back();
    stack.pop_back();
    HTNode* const* kids = node->children.load(std::memory_order_acquire);
    if (kids != nullptr) {
      for (std::uint32_t b = config_.fanout; b-- > 0;) {
        stack.push_back(kids[b]);
      }
      continue;
    }
    for (const ListNode* ln = node->list->head; ln != nullptr; ln = ln->next) {
      fn(*ln->cand);
    }
  }
}

TreeStats HashTree::stats() const {
  TreeStats s;
  s.candidates = num_candidates();
  s.bytes_used = arenas_->tree_stats().bytes_requested;

  double occ_sum = 0.0, occ_sq = 0.0;
  std::vector<std::pair<const HTNode*, std::uint32_t>> stack{{root_, 0u}};
  while (!stack.empty()) {
    const auto [node, depth] = stack.back();
    stack.pop_back();
    ++s.nodes;
    s.max_depth = std::max(s.max_depth, depth);
    HTNode* const* kids = node->children.load(std::memory_order_acquire);
    if (kids != nullptr) {
      ++s.internal_nodes;
      for (std::uint32_t b = 0; b < config_.fanout; ++b) {
        stack.push_back({kids[b], depth + 1});
      }
      continue;
    }
    ++s.leaves;
    const std::uint32_t occ = node->list->size;
    if (occ > 0) {
      ++s.occupied_leaves;
      occ_sum += occ;
      occ_sq += static_cast<double>(occ) * occ;
      s.max_leaf_occupancy =
          std::max(s.max_leaf_occupancy, static_cast<double>(occ));
    }
  }
  if (s.occupied_leaves > 0) {
    const auto n = static_cast<double>(s.occupied_leaves);
    s.mean_leaf_occupancy = occ_sum / n;
    const double var =
        occ_sq / n - s.mean_leaf_occupancy * s.mean_leaf_occupancy;
    s.leaf_occupancy_stddev = var > 0.0 ? std::sqrt(var) : 0.0;
  }
  return s;
}

}  // namespace smpmine
