// Support-counting kernel selection.
//
// Three kernels count candidate supports, plus a per-iteration chooser:
//   Pointer   the paper's recursive traversal over the pointer hash tree;
//   Flat      frozen CSR/SoA snapshot + tiled iterative kernel
//             (frozen_tree.hpp), SIMD-dispatched leaf scans;
//   Vertical  per-frequent-item tid-bitmaps intersected with AND+popcount
//             (vertical_index.hpp) — the Eclat-style attack that wins in
//             late iterations, where few deep candidates make a full
//             horizontal scan of D mostly wasted motion;
//   Auto      picks Flat or Vertical each iteration from the cost model
//             below (both fall back to Pointer past FrozenTree::kMaxK).
//
// The enum lives in hashtree (not core/options.hpp) because the chooser is
// kernel-layer logic; options.hpp re-exports it so existing includes keep
// working.
#pragma once

#include <cstdint>

namespace smpmine {

enum class CountKernel {
  Pointer,   ///< recursive pointer-tree traversal
  Flat,      ///< frozen CSR + tiled horizontal kernel
  Vertical,  ///< tid-bitmap AND + popcount kernel
  Auto,      ///< per-iteration cost-model choice between Flat and Vertical
};

const char* to_string(CountKernel k);

/// Inputs the per-iteration chooser works from. All quantities are for the
/// iteration about to count (candidates/distinct items of level k).
struct KernelCostInputs {
  std::uint32_t k = 0;              ///< candidate size this iteration
  std::uint64_t candidates = 0;     ///< |C(k)| (all threads' shares summed)
  std::uint64_t distinct_items = 0; ///< distinct items across F(k-1)
  std::uint64_t transactions = 0;   ///< |D|
  double avg_transaction_len = 0.0; ///< mean |T|
  std::uint32_t max_flat_k = 0;     ///< FrozenTree::kMaxK (fallback bound)
};

/// Resolves the *requested* kernel to the kernel that will actually run
/// this iteration: Auto applies the cost model, and any frozen-layout
/// kernel degrades to Pointer when k exceeds the flat layout's bound.
/// Deterministic — IterationStats::count_kernel_used records the result.
CountKernel resolve_count_kernel(CountKernel requested,
                                 const KernelCostInputs& in);

/// The Auto cost model, exposed for tests: true when the vertical kernel's
/// modeled word traffic undercuts the horizontal kernel's modeled
/// transaction traffic (see vertical_index.cpp for the constants).
bool vertical_wins(const KernelCostInputs& in);

}  // namespace smpmine
