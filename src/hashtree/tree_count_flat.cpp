// Tiled, non-recursive counting kernel over the frozen CSR layout.
//
// A tile of B transactions descends the tree together, one level per
// step. The frontier is the set of live (node, transaction, position)
// entries; before each level it is ordered by node id (BFS levels are
// contiguous id ranges, so a counting sort over the level's width does
// it in two linear passes). Processing a level then walks *runs* of
// entries that share a node: the node's CSR row and — for leaves — its
// candidate item columns are loaded once per tile instead of once per
// transaction, and the next run's row is software-prefetched while the
// current one is processed.
//
// Dedup invariant: expansion applies the same per-frame bucket dedup as
// SubsetCheck::FrameLocal. Every node has a unique bucket path, its
// parent is processed exactly once per transaction (induction from the
// root), and within that single processing each bucket is descended at
// most once — so each node is visited at most once per (transaction,
// tile) and the frontier never exceeds (visited nodes) entries. The
// driver sizes buffers from exact per-level bounds; the SMPMINE_HOT
// kernels below only ever write through raw pointers (R4).
#include <algorithm>

#include "hashtree/frozen_tree.hpp"
#include "hashtree/tile_simd.hpp"
#include "obs/ledger/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/attributes.hpp"
#include "util/checked.hpp"

namespace smpmine {

namespace {

/// Lookahead distance (in frontier entries) for CSR-row prefetches.
constexpr std::uint32_t kPrefetchAhead = 8;

/// Below this many entries the radix pass's fixed histogram cost beats
/// nothing; std::sort the stragglers instead.
constexpr std::uint32_t kRadixMinEntries = 64;

}  // namespace

void FrozenTree::prepare_context(FlatCountContext& ctx) const {
  if (mode_ == CounterMode::PerThread) {
    ctx.local_counts.assign(num_cands_, 0);
  } else {
    ctx.local_counts.clear();
  }
  ctx.seen.assign(fanout_, 0);
  ctx.seen_epoch = 0;
  ctx.tile_ptr.assign(tile_, nullptr);
  ctx.tile_len.assign(tile_, 0);
  ctx.bucket_base.assign(tile_ + 1u, 0);
  if (ctx.frontier.size() < tile_) ctx.frontier.resize(tile_);
  if (ctx.next.size() < tile_) ctx.next.resize(tile_);
  // The workspace serves both the per-level counting sort (width + 1
  // slots) and the radix pass (256 digit buckets + 1).
  const std::uint32_t want_offsets = std::max(max_level_width_ + 1u, 257u);
  if (ctx.bucket_offsets.size() < want_offsets) {
    ctx.bucket_offsets.resize(want_offsets);
  }
  ctx.internal_visits = 0;
  ctx.leaf_visits = 0;
  ctx.containment_checks = 0;
  ctx.hits = 0;
  ctx.tiles = 0;
  ctx.prefetches = 0;
}

SMPMINE_HOT std::uint32_t FrozenTree::expand_level(
    std::uint32_t depth, FlatCountContext& ctx,
    std::uint32_t n_frontier) const {
  const FlatEntry* fr = ctx.frontier.data();
  FlatEntry* out = ctx.next.data();
  std::uint32_t n_out = 0;
  std::uint32_t* seen = ctx.seen.data();
  const item_t* const* tile_ptr = ctx.tile_ptr.data();
  const std::uint32_t* tile_len = ctx.tile_len.data();
  const std::uint32_t* bcache = ctx.bucket_cache.data();
  const std::uint32_t* bbase = ctx.bucket_base.data();
  count_t* local = ctx.local_counts.data();
  std::uint64_t internal_visits = 0, leaf_visits = 0;
  std::uint64_t checks = 0, hits = 0, prefetches = 0;

  for (std::uint32_t i = 0; i < n_frontier;) {
    const std::uint32_t node = fr[i].node;
    std::uint32_t j = i + 1;
    while (j < n_frontier && fr[j].node == node) ++j;
    if (j + kPrefetchAhead < n_frontier) {
      const std::uint32_t ahead = fr[j + kPrefetchAhead].node;
      SMPMINE_PREFETCH(&first_child_[ahead]);
      SMPMINE_PREFETCH(&cand_begin_[ahead]);
      ++prefetches;
    }
    const std::uint32_t fc = first_child_[node];
    if (fc != kNoChild) {
      // Internal run: expand each entry, deduping buckets per entry — the
      // frame-local seen set, epoch-reset so it is never cleared.
      for (std::uint32_t e = i; e < j; ++e) {
        ++internal_visits;
        const std::uint32_t t = fr[e].txn;
        // Buckets were hashed once for the whole tile by the driver; every
        // level from here on re-reads the cache instead of re-hashing.
        const std::uint32_t* tb = bcache + bbase[t];
        const std::uint32_t last = tile_len[t] - (k_ - depth);
        std::uint32_t epoch = ++ctx.seen_epoch;
        if (epoch == 0) {  // u32 wrap: stale stamps could alias; reset
          for (std::uint32_t b = 0; b < fanout_; ++b) seen[b] = 0;
          epoch = ctx.seen_epoch = 1;
        }
        for (std::uint32_t p = fr[e].start; p <= last; ++p) {
          const std::uint32_t b = tb[p];
          if (seen[b] == epoch) continue;  // duplicate bucket at this frame
          seen[b] = epoch;
          out[n_out].node = fc + b;
          out[n_out].txn = t;
          out[n_out].start = p + 1;
          ++n_out;
        }
      }
    } else {
      const std::uint32_t cb = cand_begin_[node];
      const std::uint32_t ce = cand_begin_[node + 1];
      if (ce != cb) {
        leaf_visits += j - i;
        // Slot-outer, transaction-inner leaf scan, dispatched to the
        // backend resolved at freeze time (tile_simd.cpp). All backends
        // produce identical check/hit counts and counter updates.
        const tilesimd::LeafRun run{items_,   num_cands_, k_,    cb,
                                    ce,       fr,         i,     j,
                                    tile_ptr, tile_len,   mode_, counts_,
                                    locks_,   local};
        tilesimd::LeafRunResult r;
        switch (simd_) {
#if defined(__x86_64__)
          case SimdBackend::Avx2:
            r = tilesimd::leaf_run_avx2(run);
            break;
#endif
#if defined(__aarch64__)
          case SimdBackend::Neon:
            r = tilesimd::leaf_run_neon(run);
            break;
#endif
          default:
            r = tilesimd::leaf_run_scalar(run);
            break;
        }
        checks += r.checks;
        hits += r.hits;
      }
    }
    i = j;
  }

  ctx.internal_visits += internal_visits;
  ctx.leaf_visits += leaf_visits;
  ctx.containment_checks += checks;
  ctx.hits += hits;
  ctx.prefetches += prefetches;
  return n_out;
}

SMPMINE_HOT bool FrozenTree::sort_level(std::uint32_t level,
                                        FlatCountContext& ctx,
                                        std::uint32_t n) const {
  const std::uint32_t base = level_begin_[level];
  const std::uint32_t width = level_begin_[level + 1] - base;
  FlatEntry* in = ctx.next.data();
  // A wide level makes the single-pass counting sort spend more time
  // clearing its width-sized histogram than sorting. With enough entries
  // an 8-bit LSD radix sort amortizes that: ceil(log256(width)) stable
  // passes over fixed 256-slot histograms, ping-ponging between the two
  // frontier buffers. Below kRadixMinEntries even the radix setup loses;
  // comparison-sort the stragglers in place.
  if (width > 2 * n + 64) {
    if (n < kRadixMinEntries) {
      std::sort(in, in + n, [](const FlatEntry& a, const FlatEntry& b) {
        return a.node < b.node;
      });
      return false;  // result stayed in ctx.next
    }
    std::uint32_t* off = ctx.bucket_offsets.data();
    FlatEntry* a = in;
    FlatEntry* b = ctx.frontier.data();
    bool in_frontier = false;
    const std::uint64_t max_key = width - 1;  // 64-bit: shift may reach 32
    for (std::uint32_t shift = 0; max_key >> shift != 0; shift += 8) {
      for (std::uint32_t w = 0; w <= 256; ++w) off[w] = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        ++off[(((a[i].node - base) >> shift) & 0xFFu) + 1];
      }
      for (std::uint32_t w = 0; w < 256; ++w) off[w + 1] += off[w];
      for (std::uint32_t i = 0; i < n; ++i) {
        b[off[((a[i].node - base) >> shift) & 0xFFu]++] = a[i];
      }
      std::swap(a, b);
      in_frontier = !in_frontier;
    }
    return in_frontier;
  }
  std::uint32_t* off = ctx.bucket_offsets.data();
  for (std::uint32_t w = 0; w <= width; ++w) off[w] = 0;
  for (std::uint32_t i = 0; i < n; ++i) ++off[in[i].node - base + 1];
  for (std::uint32_t w = 0; w < width; ++w) off[w + 1] += off[w];
  FlatEntry* out = ctx.frontier.data();
  for (std::uint32_t i = 0; i < n; ++i) out[off[in[i].node - base]++] = in[i];
  return true;  // result scattered into ctx.frontier
}

void FrozenTree::count_range(const Database& db, std::uint64_t begin,
                             std::uint64_t end, FlatCountContext& ctx) const {
  SMPMINE_ASSERT(ctx.seen.size() == fanout_ &&
                     (mode_ != CounterMode::PerThread ||
                      ctx.local_counts.size() == num_cands_),
                 "FlatCountContext is stale: prepared for another tree");
  // PerThread mode writes only ctx.local_counts here; the shared counters
  // are touched in reduce_into_shared (its own epoch check).
  if (mode_ != CounterMode::PerThread) {
    SMPMINE_PHASE_EPOCH_WRITE(counter_epoch_);
  }
  const std::uint64_t tiles_before = ctx.tiles;
  const std::uint64_t prefetches_before = ctx.prefetches;
  const std::uint32_t levels =
      static_cast<std::uint32_t>(level_begin_.size()) - 1;

  for (std::uint64_t t0 = begin; t0 < end; t0 += tile_) {
    const std::uint32_t nb =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(tile_, end - t0));
    std::uint32_t seeds = 0;
    std::uint32_t cache_total = 0;
    for (std::uint32_t s = 0; s < nb; ++s) {
      const auto txn = db.transaction(t0 + s);
      if (txn.size() < k_) continue;  // too short to contain any candidate
      SMPMINE_ASSERT(std::is_sorted(txn.begin(), txn.end()),
                     "transactions must be sorted for subset enumeration");
      ctx.tile_ptr[seeds] = txn.data();
      ctx.tile_len[seeds] = static_cast<std::uint32_t>(txn.size());
      ctx.bucket_base[seeds] = cache_total;
      cache_total += static_cast<std::uint32_t>(txn.size());
      ++seeds;
    }
    if (seeds == 0) continue;
    ++ctx.tiles;
    // Hash every tile item's bucket once here (non-hot, may grow the
    // cache); the per-level expansion only re-reads it. A (txn, position)
    // pair is re-hashed at every surviving level otherwise.
    ctx.bucket_base[seeds] = cache_total;
    if (ctx.bucket_cache.size() < cache_total) {
      ctx.bucket_cache.resize(cache_total);
    }
    for (std::uint32_t s = 0; s < seeds; ++s) {
      const item_t* txn = ctx.tile_ptr[s];
      std::uint32_t* bc = ctx.bucket_cache.data() + ctx.bucket_base[s];
      const std::uint32_t len = ctx.tile_len[s];
      for (std::uint32_t p = 0; p < len; ++p) bc[p] = policy_->bucket(txn[p]);
    }
    // Per-tile latency distribution: the histogram's tail separates "a few
    // slow tiles" (long transactions, deep descents) from uniformly slow
    // counting — invisible in the tile-count sum above. Two clock reads
    // per ~64-transaction tile are noise next to the traversal.
    const std::uint64_t tile_start_ns = obs::now_ns();
    for (std::uint32_t s = 0; s < seeds; ++s) {
      ctx.frontier[s] = FlatEntry{0, s, 0};
    }
    std::uint32_t n_front = seeds;
    for (std::uint32_t d = 0; d < levels && n_front != 0; ++d) {
      // Exact expansion bound for the next frontier: an internal entry
      // emits at most min(remaining positions, fanout) children.
      std::size_t bound = 0;
      for (std::uint32_t i = 0; i < n_front; ++i) {
        const FlatEntry& e = ctx.frontier[i];
        if (first_child_[e.node] == kNoChild) continue;
        const std::uint32_t positions =
            ctx.tile_len[e.txn] - (k_ - d) - e.start + 1;
        bound += std::min(positions, fanout_);
      }
      if (bound == 0) {
        expand_level(d, ctx, n_front);  // pure leaf level: count and stop
        n_front = 0;
        break;
      }
      if (ctx.next.size() < bound) ctx.next.resize(bound + bound / 2);
      if (ctx.frontier.size() < bound) ctx.frontier.resize(bound + bound / 2);
      const std::uint32_t n_next = expand_level(d, ctx, n_front);
      n_front = n_next;
      if (n_front == 0) break;
      if (!sort_level(d + 1, ctx, n_front)) {
        std::swap(ctx.frontier, ctx.next);
      }
    }
    obs::metric::flatkernel_tile_ns().record(obs::now_ns() - tile_start_ns);
  }

  obs::metric::flatkernel_tiles().inc(ctx.tiles - tiles_before);
  obs::metric::flatkernel_prefetches().inc(ctx.prefetches -
                                           prefetches_before);
  // Efficiency-ledger work units: tiles actually counted by this call, at
  // call (batch) granularity per the ledger's overhead policy.
  SMPMINE_LEDGER_WORK("count", ctx.tiles - tiles_before);
}

}  // namespace smpmine
