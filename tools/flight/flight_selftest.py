#!/usr/bin/env python3
"""Round-trip selftest for the smpmine.flight.v1 decoder.

Proves the decoder accepts a well-formed dump (the exact shape the C++
dumper writes), recovers every field, flags truncation instead of choking
on it, and rejects genuinely malformed input. Run by ctest (flight.selftest)
and usable standalone: python3 tools/flight/flight_selftest.py
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import smpmine_flight as dec  # noqa: E402

GOOD = """\
smpmine.flight.v1
reason "signal SIGSEGV"
pid 4242
t_ns 1234567890
build checked=1 tracing=1
iteration 3
events_total 917
lost_threads 0
metric "spinlock.acquire_spins" 128
metric "hashtree.inserts" 0
thread 0 name "main" dumper 0
phase "count" arg 3
held 0
events 2
ev 1000 1 iteration "iteration" "" 3
ev 2000 5 phase_enter "count" "" 3
end thread 0
thread 1 name "worker 1" dumper 1
phase "count" arg 3
held 2
lock 0xdeadbeef "SpinLock" "HTNode::lock"
lock 0xcafe "Mutex" ""
events 3
ev 1500 2 phase_enter "count" "" 3
ev 1600 3 lock_acquire "SpinLock" "HTNode::lock" 3735928559
ev 1700 4 log_warn "log.warn" "tree rebuild \\"forced\\"" 0
end thread 1
end smpmine.flight.v1
"""


def check(cond: bool, what: str) -> None:
    if not cond:
        print(f"FAIL: {what}", file=sys.stderr)
        sys.exit(1)


def main() -> int:
    # --- complete dump round-trips --------------------------------------
    r = dec.parse(GOOD)
    check(r.complete, "complete dump marked complete")
    check(r.warnings == [], f"no warnings on a complete dump: {r.warnings}")
    check(r.reason == "signal SIGSEGV", "reason recovered")
    check(r.pid == 4242 and r.iteration == 3, "pid/iteration recovered")
    check(r.build == {"checked": 1, "tracing": 1}, "build gates recovered")
    check(r.metrics["spinlock.acquire_spins"] == 128, "metric recovered")
    check(len(r.threads) == 2, "both thread blocks parsed")

    main_t, worker = r.threads
    check(main_t.name == "main" and not main_t.dumper, "thread 0 identity")
    check(worker.dumper, "dumper flag on the crashing thread")
    check(worker.phase == "count" and worker.phase_arg == 3,
          "active phase recovered")
    check(len(worker.held) == 2, "held-lock stack recovered")
    check(worker.held[0].name == "HTNode::lock", "symbolic lock name")
    check(worker.held[1].name == "", "unnamed lock tolerated")
    check([e.kind for e in worker.events] ==
          ["phase_enter", "lock_acquire", "log_warn"], "event kinds in order")
    check(worker.events[2].detail == 'tree rebuild "forced"',
          "escaped quotes in detail strings")
    check(worker.events[1].arg == 3735928559, "event arg recovered")

    # Pretty-printer and JSON serializer at least run over the report.
    text = dec.pretty(r, last=16)
    check("HTNode::lock" in text and "count" in text, "pretty-print content")
    check('"schema": "smpmine.flight.v1"' in dec.to_json(r), "json output")

    # --- truncated dump: flagged, not fatal -----------------------------
    lines = GOOD.splitlines()
    truncated = "\n".join(lines[: lines.index("end thread 1")]) + "\n"
    r2 = dec.parse(truncated)
    check(not r2.complete, "truncated dump marked incomplete")
    check(any("truncated" in w for w in r2.warnings),
          "truncation produces a warning")
    check(len(r2.threads) == 2 and len(r2.threads[1].events) == 3,
          "complete lines survive truncation")

    # A torn final line (crash mid-write) is tolerated too.
    torn = truncated + 'ev 1800 6 lock_release "rel'
    r3 = dec.parse(torn)
    check(any("torn" in w for w in r3.warnings), "torn line flagged")

    # --- malformed input rejected ---------------------------------------
    for bad in (
        "not a flight dump\n",
        GOOD.replace("ev 1000 1 iteration", "ev 1000 1 bogus_kind"),
        GOOD.replace("thread 0 name", "gibberish 0 name"),
    ):
        try:
            dec.parse(bad)
        except dec.ParseError:
            pass
        else:
            check(False, f"malformed input accepted: {bad[:40]!r}")

    print("flight decoder selftest: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
