#!/usr/bin/env python3
"""Decoder for smpmine.flight.v1 flight-recorder dumps.

The dump is written by an async-signal-safe handler (raw write(2), see
src/obs/flight/flight_recorder.cpp), so the format is deliberately
line-oriented text: a torn or truncated dump still yields every complete
line, and this decoder reports what is missing instead of choking.

Usage:
  smpmine_flight.py DUMP               pretty-print the report
  smpmine_flight.py DUMP --validate    exit 0 iff structurally complete
  smpmine_flight.py DUMP --json        machine-readable re-serialization

Exit codes: 0 ok; 1 malformed or (under --validate) truncated; 2 usage.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field

MAGIC = "smpmine.flight.v1"
END_MAGIC = "end " + MAGIC

EVENT_KINDS = {
    "none", "phase_enter", "phase_exit", "iteration", "lock_acquire",
    "lock_release", "log_warn", "log_error", "high_water", "send",
    "barrier_wait", "mark",
}


class ParseError(Exception):
    """A line that a complete dump can never contain."""


@dataclass
class Event:
    t_ns: int
    seq: int
    kind: str
    name: str
    detail: str
    arg: int


@dataclass
class HeldLock:
    addr: str
    kind: str
    name: str  # "" when the lock was never SMPMINE_LOCK_NAME'd


@dataclass
class ThreadReport:
    index: int
    name: str
    dumper: bool
    phase: str = ""
    phase_arg: int = 0
    held: list[HeldLock] = field(default_factory=list)
    events: list[Event] = field(default_factory=list)
    complete: bool = False  # saw "end thread <index>"


@dataclass
class FlightReport:
    reason: str = ""
    pid: int = 0
    t_ns: int = 0
    build: dict = field(default_factory=dict)
    iteration: int = 0
    events_total: int = 0
    lost_threads: int = 0
    metrics: dict = field(default_factory=dict)
    threads: list[ThreadReport] = field(default_factory=list)
    complete: bool = False  # saw the final end marker
    warnings: list[str] = field(default_factory=list)


def split_fields(line: str) -> list[str]:
    """Tokenizes one line: whitespace-separated, with quoted strings
    (backslash escapes for quote and backslash)."""
    out: list[str] = []
    i, n = 0, len(line)
    while i < n:
        if line[i].isspace():
            i += 1
            continue
        if line[i] == '"':
            i += 1
            buf = []
            while i < n and line[i] != '"':
                if line[i] == "\\" and i + 1 < n:
                    i += 1
                buf.append(line[i])
                i += 1
            if i >= n:
                raise ParseError("unterminated quoted string")
            i += 1  # closing quote
            out.append('"' + "".join(buf))  # keep a marker for "was quoted"
        else:
            j = i
            while j < n and not line[j].isspace():
                j += 1
            out.append(line[i:j])
            i = j
    return out


def unq(token: str) -> str:
    if not token.startswith('"'):
        raise ParseError(f"expected quoted string, got {token!r}")
    return token[1:]


def num(token: str) -> int:
    try:
        return int(token)
    except ValueError as e:
        raise ParseError(f"expected integer, got {token!r}") from e


def parse(text: str) -> FlightReport:
    """Parses a dump. Raises ParseError only for lines a well-formed dump
    can never contain; truncation is reported via report.complete and
    report.warnings instead."""
    lines = text.splitlines()
    if not lines or lines[0].strip() != MAGIC:
        raise ParseError(f"missing '{MAGIC}' header")

    report = FlightReport()
    current: ThreadReport | None = None
    expect_events = 0

    for lineno, raw in enumerate(lines[1:], start=2):
        line = raw.strip()
        if not line:
            continue
        if line == END_MAGIC:
            report.complete = True
            continue
        try:
            f = split_fields(line)
        except ParseError:
            # A torn final line (crash mid-write): keep what we have.
            report.warnings.append(f"line {lineno}: torn line {line!r}")
            continue
        key = f[0]
        try:
            if key == "reason":
                report.reason = unq(f[1])
            elif key == "pid":
                report.pid = num(f[1])
            elif key == "t_ns":
                report.t_ns = num(f[1])
            elif key == "build":
                for kv in f[1:]:
                    k, _, v = kv.partition("=")
                    report.build[k] = num(v)
            elif key == "iteration":
                report.iteration = num(f[1])
            elif key == "events_total":
                report.events_total = num(f[1])
            elif key == "lost_threads":
                report.lost_threads = num(f[1])
            elif key == "metric":
                report.metrics[unq(f[1])] = num(f[2])
            elif key == "thread":
                # thread <idx> name "<name>" dumper <0|1>
                current = ThreadReport(
                    index=num(f[1]), name=unq(f[3]), dumper=num(f[5]) != 0)
                report.threads.append(current)
                expect_events = 0
            elif key == "phase":
                # phase "<name>" arg <n>
                if current is None:
                    raise ParseError("phase line outside a thread block")
                current.phase = unq(f[1])
                current.phase_arg = num(f[3])
            elif key == "held":
                if current is None:
                    raise ParseError("held line outside a thread block")
                _ = num(f[1])  # declared count; lock lines follow
            elif key == "lock":
                # lock <addr> "<kind>" "<name>"
                if current is None:
                    raise ParseError("lock line outside a thread block")
                current.held.append(
                    HeldLock(addr=f[1], kind=unq(f[2]), name=unq(f[3])))
            elif key == "events":
                if current is None:
                    raise ParseError("events line outside a thread block")
                expect_events = num(f[1])
            elif key == "ev":
                # ev <t_ns> <seq> <kind> "<name>" "<detail>" <arg>
                if current is None:
                    raise ParseError("ev line outside a thread block")
                kind = f[3]
                if kind not in EVENT_KINDS:
                    raise ParseError(f"unknown event kind {kind!r}")
                current.events.append(
                    Event(t_ns=num(f[1]), seq=num(f[2]), kind=kind,
                          name=unq(f[4]), detail=unq(f[5]), arg=num(f[6])))
            elif key == "end" and len(f) >= 3 and f[1] == "thread":
                if current is None or num(f[2]) != current.index:
                    raise ParseError("mismatched 'end thread' marker")
                if expect_events and len(current.events) != expect_events:
                    report.warnings.append(
                        f"thread {current.index}: declared {expect_events} "
                        f"events, parsed {len(current.events)}")
                current.complete = True
                current = None
            else:
                raise ParseError(f"unknown record {key!r}")
        except (IndexError, ParseError) as e:
            raise ParseError(f"line {lineno}: {e} in {line!r}") from e

    if not report.complete:
        report.warnings.append(f"truncated dump: no '{END_MAGIC}' marker")
    for t in report.threads:
        if not t.complete:
            report.warnings.append(
                f"thread {t.index} ({t.name}): block truncated")
    return report


def fmt_ns(t_ns: int) -> str:
    return f"{t_ns / 1e9:.6f}s"


def pretty(report: FlightReport, last: int) -> str:
    out = [f"flight report: {report.reason}  (pid {report.pid}, "
           f"at {fmt_ns(report.t_ns)})"]
    build = " ".join(f"{k}={v}" for k, v in sorted(report.build.items()))
    out.append(f"  build: {build or '?'}   iteration k={report.iteration}   "
               f"events_total={report.events_total}")
    if report.lost_threads:
        out.append(f"  WARNING: {report.lost_threads} thread(s) exceeded the "
                   "record table; their events were dropped")
    nonzero = {k: v for k, v in report.metrics.items() if v}
    if nonzero:
        out.append("  metrics:")
        for name in sorted(nonzero):
            out.append(f"    {name:<34} {nonzero[name]}")
    for t in report.threads:
        marker = "  <-- wrote this dump" if t.dumper else ""
        out.append(f"\nthread {t.index} \"{t.name}\"{marker}")
        phase = t.phase or "(none)"
        out.append(f"  active phase: {phase} (arg {t.phase_arg})")
        if t.held:
            out.append(f"  held locks ({len(t.held)}, acquisition order):")
            for h in t.held:
                label = h.name or "(unnamed)"
                out.append(f"    {label:<28} {h.kind} @ {h.addr}")
        else:
            out.append("  held locks: none")
        events = t.events[-last:] if last else t.events
        out.append(f"  last {len(events)} of {len(t.events)} events:")
        for ev in events:
            arg = f" arg={ev.arg}" if ev.arg else ""
            detail = f" [{ev.detail}]" if ev.detail else ""
            out.append(f"    {fmt_ns(ev.t_ns):>14}  #{ev.seq:<7} "
                       f"{ev.kind:<12} {ev.name}{detail}{arg}")
        if not t.complete:
            out.append("    ... (block truncated)")
    for w in report.warnings:
        out.append(f"\nwarning: {w}")
    return "\n".join(out)


def to_json(report: FlightReport) -> str:
    def thread(t: ThreadReport) -> dict:
        return {
            "index": t.index, "name": t.name, "dumper": t.dumper,
            "phase": t.phase, "phase_arg": t.phase_arg,
            "held": [vars(h) for h in t.held],
            "events": [vars(e) for e in t.events],
            "complete": t.complete,
        }

    return json.dumps({
        "schema": MAGIC,
        "reason": report.reason,
        "pid": report.pid,
        "t_ns": report.t_ns,
        "build": report.build,
        "iteration": report.iteration,
        "events_total": report.events_total,
        "lost_threads": report.lost_threads,
        "metrics": report.metrics,
        "threads": [thread(t) for t in report.threads],
        "complete": report.complete,
        "warnings": report.warnings,
    }, indent=2)


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("dump", help="smpmine.flight.v1 dump file")
    ap.add_argument("--validate", action="store_true",
                    help="exit 1 unless the dump is structurally complete")
    ap.add_argument("--json", action="store_true",
                    help="emit the parsed report as JSON")
    ap.add_argument("--last", type=int, default=16,
                    help="events shown per thread when pretty-printing "
                         "(0 = all; default 16)")
    args = ap.parse_args(argv)

    try:
        with open(args.dump, "r", encoding="utf-8", errors="replace") as fh:
            text = fh.read()
    except OSError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    try:
        report = parse(text)
    except ParseError as e:
        print(f"error: malformed dump: {e}", file=sys.stderr)
        return 1

    if args.validate:
        for w in report.warnings:
            print(f"warning: {w}", file=sys.stderr)
        if not report.complete or any(not t.complete for t in report.threads):
            print("error: dump is truncated", file=sys.stderr)
            return 1
        print(f"ok: {len(report.threads)} thread(s), "
              f"{sum(len(t.events) for t in report.threads)} event(s), "
              f"reason {report.reason!r}")
        return 0

    try:
        print(to_json(report) if args.json else pretty(report, args.last))
    except BrokenPipeError:  # e.g. piped into head; not an error
        sys.stderr.close()  # suppress the interpreter's EPIPE warning
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
